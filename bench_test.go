package arraycomp

// Benchmark harness: one benchmark family per experiment in
// EXPERIMENTS.md. The paper has no numbered tables/figures; its
// evaluation consists of worked examples plus performance claims, each
// regenerated here:
//
//	E1/E2  — analysis cost on the section 5 examples
//	E3     — wavefront: compiled vs thunked vs hand-written
//	E4     — pass-split scheduling (mixed < and > edges)
//	E5     — thunked fallback cost on the unschedulable cycle
//	E6/E7  — runtime collision/empties checks vs statically elided
//	E8     — LINPACK row swap: in-place node splitting vs copying
//	E9     — Jacobi: node splitting vs snapshot vs naive copying
//	E10    — SOR / Livermore 23: pure in-place updates
//	E11    — headline: thunkless ≈ hand-written, thunked far slower
//	E12    — dependence-test costs vs nesting depth
//	E13    — deforestation: fused loops vs intermediate lists

import (
	"fmt"
	"testing"

	"arraycomp/internal/analysis"
	"arraycomp/internal/core"
	"arraycomp/internal/deptest"
	"arraycomp/internal/parser"
	"arraycomp/internal/runtime"
	"arraycomp/internal/schedule"
	"arraycomp/internal/workloads"
)

func mustCompileW(b *testing.B, src string, params map[string]int64, inputs map[string]*runtime.Strict, thunked bool) *core.Program {
	b.Helper()
	opts := core.Options{ForceThunked: thunked, InputBounds: map[string]analysis.ArrayBounds{}}
	for name, a := range inputs {
		opts.InputBounds[name] = analysis.ArrayBounds{Lo: a.B.Lo, Hi: a.B.Hi}
	}
	p, err := core.Compile(src, params, opts)
	if err != nil {
		b.Fatal(err)
	}
	return p
}

func runProg(b *testing.B, p *core.Program, inputs map[string]*runtime.Strict) {
	b.Helper()
	if _, err := p.Run(inputs); err != nil {
		b.Fatal(err)
	}
}

// --- E1/E2: analysis cost on the paper's examples ---

func BenchmarkE1_AnalyzeExample1(b *testing.B) {
	prog, err := parser.ParseProgram(workloads.Example1Src)
	if err != nil {
		b.Fatal(err)
	}
	def := prog.Defs[0]
	env := map[string]int64{"n": 100}
	bounds, _ := analysis.EvalBounds(def, env)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := analysis.Analyze(def, env, bounds, nil, analysis.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE2_AnalyzeExample2(b *testing.B) {
	prog, err := parser.ParseProgram(workloads.Example2Src)
	if err != nil {
		b.Fatal(err)
	}
	def := prog.Defs[0]
	env := map[string]int64{"n": 10, "m": 20}
	bounds, _ := analysis.EvalBounds(def, env)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := analysis.Analyze(def, env, bounds, nil, analysis.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E3: wavefront ---

func benchSizes() []int64 { return []int64{32, 128, 512} }

func BenchmarkE3_Wavefront(b *testing.B) {
	for _, n := range benchSizes() {
		params := map[string]int64{"n": n}
		b.Run(fmt.Sprintf("compiled/n=%d", n), func(b *testing.B) {
			p := mustCompileW(b, workloads.WavefrontSrc, params, nil, false)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				runProg(b, p, nil)
			}
		})
		b.Run(fmt.Sprintf("thunked/n=%d", n), func(b *testing.B) {
			p := mustCompileW(b, workloads.WavefrontSrc, params, nil, true)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				runProg(b, p, nil)
			}
		})
		b.Run(fmt.Sprintf("handwritten/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				workloads.HandWavefront(n)
			}
		})
	}
}

// --- E4: pass-split scheduling ---

func BenchmarkE4_MixedPass(b *testing.B) {
	n := int64(20_000)
	params := map[string]int64{"n": n}
	b.Run("compiled-2passes", func(b *testing.B) {
		p := mustCompileW(b, workloads.MixedPassSrc, params, nil, false)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			runProg(b, p, nil)
		}
	})
	b.Run("thunked", func(b *testing.B) {
		p := mustCompileW(b, workloads.MixedPassSrc, params, nil, true)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			runProg(b, p, nil)
		}
	})
}

// --- E5: unschedulable cycle must run thunked ---

func BenchmarkE5_ThunkedFallback(b *testing.B) {
	n := int64(20_000)
	params := map[string]int64{"n": n}
	p := mustCompileW(b, workloads.CyclicSrc, params, nil, false)
	if mode := p.Defs["a"].Mode(); mode != "thunked" {
		b.Fatalf("mode = %s", mode)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runProg(b, p, nil)
	}
}

// --- E6/E7: runtime checks vs elided checks ---

func BenchmarkE6E7_Checks(b *testing.B) {
	n := int64(100_000)
	// Elided: the even/odd interleave written with stride generators is
	// a provable permutation.
	elided := `a = array (1,n) ([ i := 1.0 | i <- [1,3..n-1] ] ++ [ i := 2.0 | i <- [2,4..n] ])`
	// Checked: the same array written with guards defeats the proof,
	// compiling collision checks, a definedness bitmap and a final
	// sweep.
	checked := `a = array (1,n)
	  ([ i := 1.0 | i <- [1..n], i mod 2 == 1 ] ++
	   [ i := 2.0 | i <- [1..n], i mod 2 == 0 ])`
	params := map[string]int64{"n": n}
	b.Run("checks-elided", func(b *testing.B) {
		p := mustCompileW(b, elided, params, nil, false)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			runProg(b, p, nil)
		}
	})
	b.Run("checks-compiled", func(b *testing.B) {
		p := mustCompileW(b, checked, params, nil, false)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			runProg(b, p, nil)
		}
	})
}

// --- E8: LINPACK row swap ---

func BenchmarkE8_RowSwap(b *testing.B) {
	n := int64(512)
	params := workloads.ParamsFor("rowswap", n)
	in := workloads.Mesh(n, 7)
	inputs := map[string]*runtime.Strict{"a": in}
	b.Run("inplace-nodesplit", func(b *testing.B) {
		p := mustCompileW(b, workloads.RowSwapSrc, params, inputs, false)
		// Benchmark the raw in-place plan on a scratch array, exactly
		// like the hand-written variant (Program.Run would add a
		// defensive clone of the caller-owned input).
		plan := p.Defs["a2"].Plan
		scratch := map[string]*runtime.Strict{"a": in.Clone()}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := plan.Run(scratch); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("thunked-snapshot", func(b *testing.B) {
		p := mustCompileW(b, workloads.RowSwapSrc, params, inputs, true)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			runProg(b, p, inputs)
		}
	})
	b.Run("naive-copying", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			workloads.NaiveRowSwapCopying(in, params["i0"], params["k0"])
		}
	})
	b.Run("handwritten", func(b *testing.B) {
		scratch := in.Clone()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			workloads.HandRowSwap(scratch, params["i0"], params["k0"])
		}
	})
}

// --- E9: Jacobi node splitting ---

func BenchmarkE9_Jacobi(b *testing.B) {
	for _, n := range []int64{64, 256} {
		params := map[string]int64{"n": n}
		in := workloads.Mesh(n, 8)
		inputs := map[string]*runtime.Strict{"a": in}
		b.Run(fmt.Sprintf("nodesplit/n=%d", n), func(b *testing.B) {
			p := mustCompileW(b, workloads.JacobiSrc, params, inputs, false)
			plan := p.Defs["a2"].Plan
			scratch := map[string]*runtime.Strict{"a": in.Clone()}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := plan.Run(scratch); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("thunked-snapshot/n=%d", n), func(b *testing.B) {
			p := mustCompileW(b, workloads.JacobiSrc, params, inputs, true)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				runProg(b, p, inputs)
			}
		})
		if n <= 64 {
			b.Run(fmt.Sprintf("naive-copying/n=%d", n), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					workloads.NaiveJacobiCopying(in)
				}
			})
		}
		if n <= 64 {
			// The trailer baseline is O(updates²) when reading through a
			// stale version; larger sizes take minutes (hacbench e9
			// measures it at n=128).
			b.Run(fmt.Sprintf("trailer/n=%d", n), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					workloads.TrailerJacobi(in)
				}
			})
		}
		b.Run(fmt.Sprintf("handwritten/n=%d", n), func(b *testing.B) {
			scratch := in.Clone()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				workloads.HandJacobi(scratch)
			}
		})
	}
}

// --- E10: SOR and Livermore 23 pure in-place updates ---

func BenchmarkE10_SOR(b *testing.B) {
	n := int64(256)
	params := map[string]int64{"n": n}
	in := workloads.Mesh(n, 9)
	inputs := map[string]*runtime.Strict{"a": in}
	b.Run("inplace", func(b *testing.B) {
		p := mustCompileW(b, workloads.SORSrc, params, inputs, false)
		plan := p.Defs["a2"].Plan
		scratch := map[string]*runtime.Strict{"a": in.Clone()}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := plan.Run(scratch); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("thunked-snapshot", func(b *testing.B) {
		p := mustCompileW(b, workloads.SORSrc, params, inputs, true)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			runProg(b, p, inputs)
		}
	})
	b.Run("handwritten", func(b *testing.B) {
		scratch := in.Clone()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			workloads.HandSOR(scratch)
		}
	})
}

func BenchmarkE10_Livermore23(b *testing.B) {
	n := int64(128)
	params := map[string]int64{"n": n}
	inputs := workloads.Livermore23Inputs(n)
	b.Run("inplace", func(b *testing.B) {
		p := mustCompileW(b, workloads.Livermore23Src, params, inputs, false)
		plan := p.Defs["za2"].Plan
		scratch := map[string]*runtime.Strict{}
		for k, v := range inputs {
			scratch[k] = v
		}
		scratch["za"] = inputs["za"].Clone()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := plan.Run(scratch); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("thunked-snapshot", func(b *testing.B) {
		p := mustCompileW(b, workloads.Livermore23Src, params, inputs, true)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			runProg(b, p, inputs)
		}
	})
	b.Run("handwritten", func(b *testing.B) {
		za := inputs["za"].Clone()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			workloads.HandLivermore23(za, inputs["zr"], inputs["zb"], inputs["zu"], inputs["zv"])
		}
	})
}

// --- E11: headline thunked vs thunkless vs hand-written ---

func BenchmarkE11_Headline(b *testing.B) {
	n := int64(100_000)
	params := map[string]int64{"n": n}
	for _, w := range []struct {
		name, src string
		hand      func()
	}{
		{"squares", workloads.SquaresSrc, func() { workloads.HandSquares(n) }},
		{"recurrence", workloads.RecurrenceSrc, func() { workloads.HandRecurrence(n) }},
	} {
		b.Run(w.name+"/thunkless", func(b *testing.B) {
			p := mustCompileW(b, w.src, params, nil, false)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				runProg(b, p, nil)
			}
		})
		b.Run(w.name+"/thunked", func(b *testing.B) {
			p := mustCompileW(b, w.src, params, nil, true)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				runProg(b, p, nil)
			}
		})
		b.Run(w.name+"/handwritten", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				w.hand()
			}
		})
	}
}

// --- E12: dependence test costs vs nesting depth ---

func depthProblem(d int) deptest.Problem {
	a := make([]int64, d)
	bb := make([]int64, d)
	m := make([]int64, d)
	for k := 0; k < d; k++ {
		a[k] = int64(k + 1)
		bb[k] = int64(k + 2)
		m[k] = 10
	}
	return deptest.NewProblem(0, a, 1, bb, m)
}

func BenchmarkE12_DepTests(b *testing.B) {
	for _, d := range []int{1, 2, 4, 8} {
		p := depthProblem(d)
		v := deptest.AnyVector(d)
		b.Run(fmt.Sprintf("gcd/depth=%d", d), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := deptest.GCDTest(p, v); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("banerjee/depth=%d", d), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := deptest.BanerjeeTest(p, v, true); err != nil {
					b.Fatal(err)
				}
			}
		})
		if d <= 2 {
			b.Run(fmt.Sprintf("exact/depth=%d", d), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := deptest.ExactTest(p, v, deptest.DefaultExactBudget); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
		b.Run(fmt.Sprintf("refine/depth=%d", d), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := deptest.RefineDirections(p, deptest.CombinedTester()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E13: deforestation ---

func BenchmarkE13_Deforestation(b *testing.B) {
	n := int64(100_000)
	x, y := workloads.Vector(n, 1), workloads.Vector(n, 2)
	var sink float64
	b.Run("cons-list", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sink = workloads.SumProductsConsList(x, y)
		}
	})
	b.Run("slice-list", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sink = workloads.SumProductsListComp(x, y)
		}
	})
	b.Run("fused", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sink = workloads.SumProductsFused(x, y)
		}
	})
	_ = sink
}

// --- compile-time cost of the full pipeline ---

func BenchmarkCompileWavefront(b *testing.B) {
	params := map[string]int64{"n": 256}
	for i := 0; i < b.N; i++ {
		if _, err := core.Compile(workloads.WavefrontSrc, params, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScheduleWavefront(b *testing.B) {
	prog, err := parser.ParseProgram(workloads.WavefrontSrc)
	if err != nil {
		b.Fatal(err)
	}
	env := map[string]int64{"n": 256}
	bounds, _ := analysis.EvalBounds(prog.Defs[0], env)
	res, err := analysis.Analyze(prog.Defs[0], env, bounds, nil, analysis.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := schedule.Build(res, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E14: the section 10 parallelization extension ---

func BenchmarkE14_Parallel(b *testing.B) {
	n := int64(768)
	params := map[string]int64{"n": n}
	in := workloads.Mesh(n, 14)
	inputs := map[string]*runtime.Strict{"b": in}
	compileP := func(parallel bool) *core.Program {
		opts := core.Options{
			Parallel:    parallel,
			InputBounds: map[string]analysis.ArrayBounds{"b": {Lo: []int64{1, 1}, Hi: []int64{n, n}}},
		}
		p, err := core.Compile(workloads.JacobiMonolithicSrc, params, opts)
		if err != nil {
			b.Fatal(err)
		}
		return p
	}
	b.Run("sequential", func(b *testing.B) {
		p := compileP(false)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			runProg(b, p, inputs)
		}
	})
	b.Run("parallel", func(b *testing.B) {
		p := compileP(true)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			runProg(b, p, inputs)
		}
	})
	b.Run("handwritten-seq", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			workloads.HandJacobiMonolithic(in)
		}
	})
}
