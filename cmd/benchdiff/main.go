// Command benchdiff is the CI bench-regression gate: it compares a
// fresh hacbench -json run against a committed baseline and exits
// nonzero if any gated label's ns/op regressed beyond the threshold.
//
//	benchdiff -base BENCH_2.json -new /tmp/bench.json -max-regress 25
//
// Baseline arms that exist to be slow (thunked, hand-written, naive,
// trailer, list variants) are skipped by default; -skip overrides the
// substring list and -all gates everything. Output ends with one
// machine-readable summary line — BENCH-OK on success, BENCH-FAIL
// after one BENCH-REGRESS / BENCH-MISSING line per offender — so CI
// logs can be grepped without parsing tables.
//
// Result files record the measuring host (CPU count, GOMAXPROCS, Go
// version); when the two files disagree a BENCH-HOST-MISMATCH line is
// printed, and -require-same-host turns that warning into a failure.
//
// The wall also gates expected orderings WITHIN the new run: a
// repeatable -minspeedup "SLOW|FAST|RATIO" flag asserts that the FAST
// label beats the SLOW one by at least RATIO — e.g.
//
//	benchdiff -new /tmp/b.json -speedup-only \
//	  -minspeedup 'sor 256x256 x20 interp|sor 256x256 x20 native|1.0' \
//	  -minspeedup 'jacobi workers=1|jacobi workers=4|1.5'
//
// so an arm that exists to be faster failing to keep its edge fails
// CI even when neither arm regressed against its own baseline.
// -speedup-only skips the baseline comparison entirely (no -base file
// needed), which is how the multicore wall gates a fresh same-host
// run where no committed cross-host baseline would be comparable.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"arraycomp/internal/benchcmp"
)

func main() {
	var (
		basePath   = flag.String("base", "BENCH_2.json", "committed baseline result file")
		newPath    = flag.String("new", "", "fresh hacbench -json result file (required)")
		maxRegress = flag.Float64("max-regress", 25, "max allowed ns/op regression, percent")
		skipList   = flag.String("skip", strings.Join(benchcmp.DefaultSkip, ","),
			"comma-separated label substrings excluded from gating")
		all         = flag.Bool("all", false, "gate every label, including baseline arms")
		quiet       = flag.Bool("quiet", false, "suppress the per-label table")
		sameHost    = flag.Bool("require-same-host", false, "fail (exit 1) when the two files were measured on different hosts; default is a BENCH-HOST-MISMATCH warning")
		speedupOnly = flag.Bool("speedup-only", false, "skip the baseline comparison; gate only the -minspeedup checks against -new")
	)
	var checks []benchcmp.SpeedupCheck
	flag.Func("minspeedup", "expected ordering 'SLOW|FAST|RATIO' within the new run (repeatable)", func(s string) error {
		c, err := benchcmp.ParseSpeedupCheck(s)
		if err != nil {
			return err
		}
		checks = append(checks, c)
		return nil
	})
	flag.Parse()
	if *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -new is required")
		flag.Usage()
		os.Exit(2)
	}
	if *speedupOnly && len(checks) == 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: -speedup-only without any -minspeedup check gates nothing")
		os.Exit(2)
	}
	fresh, err := benchcmp.Load(*newPath)
	if err != nil {
		die(err)
	}
	failed := false
	if !*speedupOnly {
		base, err := benchcmp.Load(*basePath)
		if err != nil {
			die(err)
		}
		var skip func(string) bool
		if !*all {
			skip = benchcmp.Skipper(strings.Split(*skipList, ","))
		}
		if mismatch := benchcmp.HostMismatch(base, fresh); mismatch != "" {
			// ns/op from different machines are not comparable; say so in a
			// grep-able form, and refuse outright under -require-same-host.
			fmt.Printf("BENCH-HOST-MISMATCH %s\n", mismatch)
			if *sameHost {
				os.Exit(1)
			}
		}
		rep := benchcmp.Compare(base, fresh, *maxRegress, skip)
		if !*quiet {
			fmt.Printf("benchdiff: %s vs %s (wall: +%.0f%%)\n", *basePath, *newPath, *maxRegress)
			rep.WriteTable(os.Stdout)
		}
		rep.WriteMachine(os.Stdout)
		failed = !rep.OK()
	}
	if len(checks) > 0 {
		results, ok := benchcmp.CheckSpeedups(fresh, checks)
		benchcmp.WriteSpeedups(os.Stdout, results)
		failed = failed || !ok
	}
	if failed {
		os.Exit(1)
	}
}

func die(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(1)
}
