// Command haccd is the compile-and-run service: an HTTP daemon that
// compiles array-comprehension programs through a content-addressed
// plan cache and executes them on the process-wide warm worker pool,
// exposing per-phase compile metrics and cache counters.
//
// Endpoints:
//
//	POST /compile  {"source": "...", "params": {"n": 256}, "options": {...}}
//	POST /eval     compile request + {"inputs": {...}, "seed": 1}
//	GET  /metrics  Prometheus text exposition
//	GET  /healthz  liveness
//
// The serving argument is the paper's: every proof and schedule is
// computed at compile time, so the service pays analysis once per
// distinct (source, params, options) and then serves evaluations from
// the cached thunkless plan — `POST /eval` on a warm cache runs no
// parse, analysis, or lowering at all.
//
// Operational guards: per-request timeout, a concurrency limiter,
// request body caps, and graceful drain on SIGTERM/SIGINT.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"arraycomp/internal/core"
)

func main() {
	var (
		addr         = flag.String("addr", ":8347", "listen address")
		cacheEntries = flag.Int("cache-entries", 1024, "max cached plans (0 = unbounded)")
		cacheMB      = flag.Int64("cache-mb", 256, "max cached plan bytes, in MiB (0 = unbounded)")
		timeout      = flag.Duration("timeout", 30*time.Second, "per-request timeout")
		maxBodyMB    = flag.Int64("max-body-mb", 16, "request body cap, in MiB")
		concurrency  = flag.Int("concurrency", 256, "max concurrently served requests")
		drain        = flag.Duration("drain", 30*time.Second, "graceful shutdown budget after SIGTERM")
		tier         = flag.String("tier", "off", "default execution-tier policy for requests that do not set options.tier: off, auto (promote hot plans to compiled native code in the background), or native")
		tierThresh   = flag.Int("tier-threshold", 0, "interpreted evaluations before auto promotion (0 = built-in default)")
	)
	flag.Parse()

	cfg := defaultConfig()
	cfg.cacheEntries = *cacheEntries
	cfg.cacheBytes = *cacheMB << 20
	cfg.timeout = *timeout
	cfg.maxBody = *maxBodyMB << 20
	cfg.concurrency = *concurrency
	tierMode, err := core.ParseTierMode(*tier)
	if err != nil {
		log.Fatalf("haccd: %v", err)
	}
	cfg.tier = tierMode
	cfg.tierThreshold = *tierThresh

	s := newServer(cfg)
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           s.handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("haccd listening on %s (cache: %d entries / %d MiB, concurrency %d)",
		*addr, cfg.cacheEntries, *cacheMB, cfg.concurrency)

	select {
	case err := <-errc:
		log.Fatalf("haccd: %v", err)
	case <-ctx.Done():
		// Graceful drain: stop accepting, let in-flight requests
		// finish within the drain budget, then force-close.
		stop()
		log.Printf("haccd: signal received; draining for up to %s", *drain)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			log.Printf("haccd: drain incomplete: %v", err)
			httpSrv.Close()
		}
		st := s.cache.Stats()
		fmt.Printf("haccd: final cache stats: %s\n", st)
	}
}
