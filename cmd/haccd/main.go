// Command haccd is the compile-and-run service: an HTTP daemon that
// compiles array-comprehension programs through a content-addressed
// plan cache and executes them on the process-wide warm worker pool,
// exposing per-phase compile metrics and cache counters. The service
// itself lives in internal/serve; this command only parses flags.
//
// Endpoints:
//
//	POST /compile    {"source": "...", "params": {"n": 256}, "options": {...}}
//	POST /eval       compile request + {"inputs": {...}, "seed": 1}
//	POST /evalbatch  compile request + {"evals": [{"inputs": ..., "seed": ...}, ...]}
//	GET  /metrics    Prometheus text exposition
//	GET  /healthz    liveness
//
// The serving argument is the paper's: every proof and schedule is
// computed at compile time, so the service pays analysis once per
// distinct (source, params, options) and then serves evaluations from
// the cached thunkless plan — `POST /eval` on a warm cache runs no
// parse, analysis, or lowering at all. With -cache-dir the cache gains
// a persistent tier: certified plans survive restarts and reload with
// zero compile-phase time. With -peers/-self, replicas form a
// consistent-hash fleet where each plan compiles once fleet-wide.
//
// Operational guards: per-request timeout, a concurrency limiter with
// bounded-queue admission control (429 + Retry-After when shedding),
// request body caps, and graceful drain on SIGTERM/SIGINT.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"arraycomp/internal/core"
	"arraycomp/internal/serve"
)

func main() {
	var (
		addr         = flag.String("addr", ":8347", "listen address")
		cacheEntries = flag.Int("cache-entries", 1024, "max cached plans (0 = unbounded)")
		cacheMB      = flag.Int64("cache-mb", 256, "max cached plan bytes, in MiB (0 = unbounded)")
		cacheDir     = flag.String("cache-dir", "", "persistent disk cache directory; certified plans written here survive restarts and reload with zero compile-phase time (empty = memory only)")
		timeout      = flag.Duration("timeout", 30*time.Second, "per-request timeout")
		maxBodyMB    = flag.Int64("max-body-mb", 16, "request body cap, in MiB")
		concurrency  = flag.Int("concurrency", 256, "max concurrently served requests")
		queueDepth   = flag.Int("queue", 0, "max requests queued for a concurrency slot before shedding with 429 (0 = 2x concurrency)")
		maxBatch     = flag.Int("max-batch", serve.DefaultMaxBatch, "max evaluations in one /evalbatch request")
		drain        = flag.Duration("drain", 30*time.Second, "graceful shutdown budget after SIGTERM")
		tier         = flag.String("tier", "off", "default execution-tier policy for requests that do not set options.tier: off, auto (promote hot plans to compiled native code in the background), or native")
		tierThresh   = flag.Int("tier-threshold", 0, "interpreted evaluations before auto promotion (0 = built-in default)")
		peers        = flag.String("peers", "", "comma-separated replica list (host:port or URLs) forming the consistent-hash fleet; empty = standalone")
		self         = flag.String("self", "", "this replica's entry in -peers (required when -peers is set)")
	)
	flag.Parse()

	cfg := serve.DefaultConfig()
	cfg.CacheEntries = *cacheEntries
	cfg.CacheBytes = *cacheMB << 20
	cfg.CacheDir = *cacheDir
	cfg.Timeout = *timeout
	cfg.MaxBody = *maxBodyMB << 20
	cfg.Concurrency = *concurrency
	cfg.QueueDepth = *queueDepth
	cfg.MaxBatch = *maxBatch
	tierMode, err := core.ParseTierMode(*tier)
	if err != nil {
		log.Fatalf("haccd: %v", err)
	}
	cfg.Tier = tierMode
	cfg.TierThreshold = *tierThresh
	if *peers != "" {
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				cfg.Peers = append(cfg.Peers, p)
			}
		}
		cfg.Self = *self
		found := false
		for _, p := range cfg.Peers {
			found = found || p == cfg.Self
		}
		if !found {
			log.Fatalf("haccd: -self %q must be one of -peers %q", *self, *peers)
		}
	}

	s, err := serve.New(cfg)
	if err != nil {
		log.Fatalf("haccd: %v", err)
	}
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("haccd listening on %s (cache: %d entries / %d MiB, disk %q, concurrency %d, fleet of %d)",
		*addr, cfg.CacheEntries, *cacheMB, cfg.CacheDir, cfg.Concurrency, len(cfg.Peers))

	select {
	case err := <-errc:
		log.Fatalf("haccd: %v", err)
	case <-ctx.Done():
		// Graceful drain: stop accepting, let in-flight requests
		// finish within the drain budget, then force-close.
		stop()
		log.Printf("haccd: signal received; draining for up to %s", *drain)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			log.Printf("haccd: drain incomplete: %v", err)
			httpSrv.Close()
		}
		fmt.Printf("haccd: final cache stats: %s\n", s.CacheStats())
	}
}
