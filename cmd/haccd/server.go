package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"net/http"
	"time"

	"arraycomp/internal/analysis"
	"arraycomp/internal/cache"
	"arraycomp/internal/core"
	"arraycomp/internal/metrics"
	"arraycomp/internal/runtime"
)

// config tunes the service.
type config struct {
	cacheEntries int
	cacheBytes   int64
	maxBody      int64
	concurrency  int
	timeout      time.Duration
	// tier is the default execution-tier policy applied to requests
	// that do not set options.tier themselves; tierThreshold likewise.
	tier          core.TierMode
	tierThreshold int
}

func defaultConfig() config {
	return config{
		cacheEntries: 1024,
		cacheBytes:   256 << 20,
		maxBody:      16 << 20,
		concurrency:  256,
		timeout:      30 * time.Second,
	}
}

// server is the haccd HTTP service: compile-through-cache plus
// execution on the process-wide warm worker pool, instrumented end to
// end. One server owns one plan cache and one metric registry.
type server struct {
	cfg   config
	cache *cache.Cache
	reg   *metrics.Registry
	sem   chan struct{} // concurrency limiter; buffered to cfg.concurrency

	reqTotal     *metrics.CounterVec   // by handler
	reqErrors    *metrics.CounterVec   // by handler
	reqSeconds   *metrics.HistogramVec // by handler
	phaseSeconds *metrics.HistogramVec // compile phases, observed on misses only
	evalSeconds  *metrics.Histogram    // pure plan execution time
	optTotal     *metrics.CounterVec   // optimization counters, by kind
	schedTotal   *metrics.CounterVec   // compiled loop schedules, by kind
	tierStats    *metrics.TierStats    // process-wide tiered-execution tallies
}

func newServer(cfg config) *server {
	s := &server{
		cfg:   cfg,
		cache: cache.New(cfg.cacheEntries, cfg.cacheBytes),
		reg:   metrics.NewRegistry(),
		sem:   make(chan struct{}, cfg.concurrency),
	}
	s.reqTotal = s.reg.NewCounterVec("haccd_requests_total", "Requests served, by handler.", "handler")
	s.reqErrors = s.reg.NewCounterVec("haccd_request_errors_total", "Requests that failed, by handler.", "handler")
	s.reqSeconds = s.reg.NewHistogramVec("haccd_request_seconds", "End-to-end request latency, by handler.", "handler", nil)
	s.phaseSeconds = s.reg.NewHistogramVec("haccd_compile_phase_seconds",
		"Compile time per phase, observed only when a request actually compiles (cache misses).", "phase", nil)
	s.evalSeconds = s.reg.NewHistogramM("haccd_eval_run_seconds", "Pure plan execution time of /eval requests.", nil)
	s.optTotal = s.reg.NewCounterVec("haccd_opt_total",
		"Optimizations performed by compiles this process ran, by kind.", "kind")
	s.schedTotal = s.reg.NewCounterVec("haccd_schedules_total",
		"Loops compiled, by execution shape (sequential/shard/tile/wavefront/chains).", "kind")
	s.reg.NewCounterFunc("haccd_cache_hits_total", "Plan cache hits.", func() uint64 { return s.cache.Stats().Hits })
	s.reg.NewCounterFunc("haccd_cache_misses_total", "Plan cache misses (compiles).", func() uint64 { return s.cache.Stats().Misses })
	s.reg.NewCounterFunc("haccd_cache_evictions_total", "Plan cache LRU evictions.", func() uint64 { return s.cache.Stats().Evictions })
	s.reg.NewGaugeFunc("haccd_cache_entries", "Plans currently cached.", func() float64 { return float64(s.cache.Stats().Entries) })
	s.reg.NewGaugeFunc("haccd_cache_bytes", "Charged bytes currently cached.", func() float64 { return float64(s.cache.Stats().Bytes) })
	s.reg.NewGaugeFunc("haccd_cache_native_entries", "Cached plans currently served by the native tier.",
		func() float64 { return float64(s.cache.Stats().NativeEntries) })
	s.reg.NewGaugeFunc("haccd_inflight_requests", "Requests currently holding a concurrency slot.", func() float64 { return float64(len(s.sem)) })
	s.tierStats = &metrics.TierStats{}
	s.reg.NewCounterFuncVec("haccd_tier_runs_total",
		"Evaluations of tier-enabled plans, by the tier that served them (plans compiled with tier off are not tallied).", "tier",
		func() map[string]uint64 {
			return map[string]uint64{
				string(core.TierThunked):     uint64(s.tierStats.ThunkedRuns.Load()),
				string(core.TierInterpreted): uint64(s.tierStats.InterpRuns.Load()),
				string(core.TierNative):      uint64(s.tierStats.NativeRuns.Load()),
			}
		})
	s.reg.NewCounterFunc("haccd_tier_promotions_total", "Successful interpreted-to-native tier promotions.",
		func() uint64 { return uint64(s.tierStats.Promotions.Load()) })
	s.reg.NewCounterFunc("haccd_tier_promote_failures_total", "Native builds that failed; the plan keeps serving interpreted.",
		func() uint64 { return uint64(s.tierStats.PromoteFailures.Load()) })
	s.reg.NewGaugeFunc("haccd_tier_promote_seconds_total", "Wall time spent in background native builds.",
		func() float64 { return float64(s.tierStats.PromoteNs.Load()) / 1e9 })
	return s
}

// handler builds the routed, limited, timeout-wrapped handler chain.
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.Handle("/compile", s.instrument("compile", s.handleCompile))
	mux.Handle("/eval", s.instrument("eval", s.handleEval))
	// The timeout wrapper bounds every response, including queueing
	// time spent waiting for a concurrency slot.
	return http.TimeoutHandler(mux, s.cfg.timeout, `{"error":"request timed out"}`)
}

// instrument wraps a JSON handler with the concurrency limiter, the
// body-size cap, and per-handler metrics.
func (s *server) instrument(name string, fn func(w http.ResponseWriter, r *http.Request) (int, error)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			s.reqErrors.With(name).Inc()
			httpError(w, http.StatusMethodNotAllowed, fmt.Errorf("use POST"))
			return
		}
		select {
		case s.sem <- struct{}{}:
			defer func() { <-s.sem }()
		case <-r.Context().Done():
			s.reqErrors.With(name).Inc()
			httpError(w, http.StatusServiceUnavailable, fmt.Errorf("server at concurrency limit"))
			return
		}
		t0 := time.Now()
		r.Body = http.MaxBytesReader(w, r.Body, s.cfg.maxBody)
		code, err := fn(w, r)
		s.reqSeconds.With(name).Observe(time.Since(t0).Seconds())
		s.reqTotal.With(name).Inc()
		if err != nil {
			s.reqErrors.With(name).Inc()
			httpError(w, code, err)
		}
	})
}

func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.WritePrometheus(w)
}

// --- request/response shapes ---

// boundsJSON is one array's bounds: lo/hi per dimension.
type boundsJSON struct {
	Lo []int64 `json:"lo"`
	Hi []int64 `json:"hi"`
}

// optionsJSON mirrors the semantically relevant core.Options.
type optionsJSON struct {
	Parallel     bool                  `json:"parallel,omitempty"`
	Workers      int                   `json:"workers,omitempty"`
	ForceThunked bool                  `json:"force_thunked,omitempty"`
	NoOptimize   bool                  `json:"no_optimize,omitempty"`
	NoStencil    bool                  `json:"no_stencil,omitempty"`
	NoLinearize  bool                  `json:"no_linearize,omitempty"`
	Certify      bool                  `json:"certify,omitempty"`
	InputBounds  map[string]boundsJSON `json:"input_bounds,omitempty"`
	// Tier is the execution-tier policy: "off", "auto", or "native".
	// Empty means "use the server default" (the -tier flag), which is
	// how a fleet operator turns tiering on without touching clients.
	Tier          string `json:"tier,omitempty"`
	TierThreshold int    `json:"tier_threshold,omitempty"`
	// TierSync makes auto promotion happen inline at the threshold
	// call instead of in the background — slower for that one request,
	// but deterministic; meant for tests and batch clients.
	TierSync bool `json:"tier_sync,omitempty"`
}

func (o optionsJSON) coreOptions() (core.Options, error) {
	opts := core.Options{
		Parallel:     o.Parallel,
		Workers:      o.Workers,
		ForceThunked: o.ForceThunked,
		NoOptimize:   o.NoOptimize,
		NoStencil:    o.NoStencil,
		NoLinearize:  o.NoLinearize,
		Certify:      o.Certify,
	}
	tier, err := core.ParseTierMode(o.Tier)
	if err != nil {
		return opts, err
	}
	opts.Tier = tier
	opts.TierThreshold = o.TierThreshold
	opts.TierSync = o.TierSync
	if len(o.InputBounds) > 0 {
		opts.InputBounds = map[string]analysis.ArrayBounds{}
		for name, b := range o.InputBounds {
			opts.InputBounds[name] = cache.InputBoundsOf(b.Lo, b.Hi)
		}
	}
	return opts, nil
}

// compileRequest is the body of POST /compile (and the compile part
// of POST /eval).
type compileRequest struct {
	Source  string           `json:"source"`
	Params  map[string]int64 `json:"params"`
	Options optionsJSON      `json:"options"`
}

// arrayJSON carries an input or result array.
type arrayJSON struct {
	Lo   []int64   `json:"lo"`
	Hi   []int64   `json:"hi"`
	Data []float64 `json:"data"`
}

// evalRequest is the body of POST /eval. Inputs may be given
// explicitly; any input array declared in options.input_bounds but
// not listed is filled with deterministic pseudo-random data derived
// from Seed and the array name.
type evalRequest struct {
	compileRequest
	Inputs map[string]arrayJSON `json:"inputs,omitempty"`
	Seed   int64                `json:"seed,omitempty"`
}

// reportJSON is the compile-time record attached to the cached plan.
type reportJSON struct {
	PhasesNs map[string]int64  `json:"phases_ns"`
	Counters metrics.Counters  `json:"counters"`
	Modes    map[string]string `json:"modes"`
	Notes    []string          `json:"notes,omitempty"`
}

// compileResponse answers POST /compile. CompileNs and PhasesNs are
// the compile cost paid by THIS request: zero / absent on a cache
// hit, where parse/analyze/lower never run.
type compileResponse struct {
	Key       string           `json:"key"`
	Cache     string           `json:"cache"` // "hit" | "miss"
	CompileNs int64            `json:"compile_ns"`
	PhasesNs  map[string]int64 `json:"phases_ns,omitempty"`
	Report    reportJSON       `json:"report"`
}

// evalResponse answers POST /eval. Tier reports which execution tier
// served THIS evaluation ("thunked", "interpreted", or "native") —
// under an auto policy it flips to native once the background build
// lands, so clients can watch a hot plan tier up across calls.
type evalResponse struct {
	compileResponse
	Result arrayJSON `json:"result"`
	EvalNs int64     `json:"eval_ns"`
	Tier   string    `json:"tier"`
}

// --- handlers ---

// compileThrough serves the compile part of both endpoints: cache
// lookup with singleflight fill, recording phase metrics only when
// this request actually compiled.
func (s *server) compileThrough(req compileRequest) (*cache.Entry, compileResponse, int, error) {
	if req.Source == "" {
		return nil, compileResponse{}, http.StatusBadRequest, fmt.Errorf("missing source")
	}
	opts, err := req.Options.coreOptions()
	if err != nil {
		return nil, compileResponse{}, http.StatusBadRequest, err
	}
	if req.Options.Tier == "" {
		// No per-request policy: apply the server default. This happens
		// before the cache key is computed, so a default-tier server
		// and an explicit-tier client share entries.
		opts.Tier = s.cfg.tier
		opts.TierThreshold = s.cfg.tierThreshold
	}
	// The stats sink is process-wide and deliberately not part of the
	// cache key.
	opts.TierStats = s.tierStats
	entry, hit, err := s.cache.GetOrCompile(req.Source, req.Params, opts)
	if err != nil {
		return nil, compileResponse{}, http.StatusUnprocessableEntity, err
	}
	resp := compileResponse{Key: entry.Key, Cache: "miss", Report: reportOf(entry)}
	if hit {
		// Warm path: no compile phase ran for this request; record
		// nothing in the phase histograms and report zero cost.
		resp.Cache = "hit"
		return entry, resp, 0, nil
	}
	resp.CompileNs = entry.Report.Total().Nanoseconds()
	resp.PhasesNs = map[string]int64{}
	for ph, d := range entry.Report.Phases {
		resp.PhasesNs[ph] = d.Nanoseconds()
		s.phaseSeconds.With(ph).Observe(d.Seconds())
	}
	s.recordOptCounters(entry.Report.Counters)
	return entry, resp, 0, nil
}

// recordOptCounters folds one compilation's optimization counters into
// the process-wide metric families.
func (s *server) recordOptCounters(c metrics.Counters) {
	s.optTotal.With("collision_checks_elided").Add(uint64(c.CollisionChecksElided))
	s.optTotal.With("empties_checks_elided").Add(uint64(c.EmptiesChecksElided))
	s.optTotal.With("thunks_avoided").Add(uint64(c.ThunksAvoided))
	s.optTotal.With("thunked_defs").Add(uint64(c.ThunkedDefs))
	s.optTotal.With("loops_fused").Add(uint64(c.LoopsFused))
	for kind, n := range c.SchedulesByKind {
		s.schedTotal.With(kind).Add(uint64(n))
	}
}

func reportOf(e *cache.Entry) reportJSON {
	rj := reportJSON{
		PhasesNs: map[string]int64{},
		Counters: e.Report.Counters,
		Modes:    map[string]string{},
		Notes:    e.Program.Notes,
	}
	for ph, d := range e.Report.Phases {
		rj.PhasesNs[ph] = d.Nanoseconds()
	}
	for name, cd := range e.Program.Defs {
		rj.Modes[name] = cd.Mode()
	}
	return rj
}

func (s *server) handleCompile(w http.ResponseWriter, r *http.Request) (int, error) {
	var req compileRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		return decodeErrorStatus(err), fmt.Errorf("bad request body: %w", err)
	}
	_, resp, code, err := s.compileThrough(req)
	if err != nil {
		return code, err
	}
	return 0, writeJSON(w, resp)
}

func (s *server) handleEval(w http.ResponseWriter, r *http.Request) (int, error) {
	var req evalRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		return decodeErrorStatus(err), fmt.Errorf("bad request body: %w", err)
	}
	entry, cresp, code, err := s.compileThrough(req.compileRequest)
	if err != nil {
		return code, err
	}
	inputs, err := buildInputs(req)
	if err != nil {
		return http.StatusBadRequest, err
	}
	t0 := time.Now()
	out, tier, err := entry.Program.RunTiered(inputs)
	evalNs := time.Since(t0)
	if err != nil {
		return http.StatusUnprocessableEntity, err
	}
	s.evalSeconds.Observe(evalNs.Seconds())
	return 0, writeJSON(w, evalResponse{
		compileResponse: cresp,
		Result:          arrayJSON{Lo: out.B.Lo, Hi: out.B.Hi, Data: out.Data},
		EvalNs:          evalNs.Nanoseconds(),
		Tier:            string(tier),
	})
}

// buildInputs materializes the run's input arrays: explicit data
// first, then deterministic pseudo-random fill (seeded per array
// name) for every declared input without explicit data — the same
// convention as `hacc run -seed`.
func buildInputs(req evalRequest) (map[string]*runtime.Strict, error) {
	inputs := map[string]*runtime.Strict{}
	for name, a := range req.Inputs {
		b := runtime.Bounds{Lo: a.Lo, Hi: a.Hi}
		if got, want := int64(len(a.Data)), b.Size(); got != want {
			return nil, fmt.Errorf("input %q: %d data elements for bounds of size %d", name, got, want)
		}
		arr := runtime.NewStrict(b)
		copy(arr.Data, a.Data)
		inputs[name] = arr
	}
	for name, b := range req.Options.InputBounds {
		if _, ok := inputs[name]; ok {
			continue
		}
		arr := runtime.NewStrict(runtime.Bounds{Lo: b.Lo, Hi: b.Hi})
		rng := rand.New(rand.NewSource(req.Seed ^ nameSeed(name)))
		for i := range arr.Data {
			arr.Data[i] = rng.Float64()
		}
		inputs[name] = arr
	}
	return inputs, nil
}

// nameSeed derives a per-array seed component so generated inputs are
// independent of map iteration order.
func nameSeed(name string) int64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return int64(h.Sum64())
}

func writeJSON(w http.ResponseWriter, v any) error {
	w.Header().Set("Content-Type", "application/json")
	return json.NewEncoder(w).Encode(v)
}

// decodeErrorStatus maps body-decode failures: an over-cap body
// surfaces as 413, everything else as 400.
func decodeErrorStatus(err error) int {
	var tooLarge *http.MaxBytesError
	if errors.As(err, &tooLarge) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}
