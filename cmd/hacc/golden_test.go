package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"arraycomp/internal/workloads"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestGolden snapshots the CLI's textual output for the paper's two
// section 5 examples: the compilation report, the loop IR dump, and
// the dependence-graph DOT rendering. Any schedule or lowering change
// that alters these surfaces shows up as a reviewable diff; run
// `go test ./cmd/hacc -run TestGolden -update` to accept it.
func TestGolden(t *testing.T) {
	e1 := writeTemp(t, workloads.Example1Src)
	e2 := writeTemp(t, workloads.Example2Src)
	wf := writeTemp(t, workloads.WavefrontSrc)
	cases := []struct {
		name string
		args []string
	}{
		{"example1-report", []string{"report", "-p", "n=4", e1}},
		{"example1-ir", []string{"ir", "-p", "n=4", e1}},
		{"example1-dot", []string{"dot", "-p", "n=4", e1}},
		{"example2-report", []string{"report", "-p", "n=3,m=4", e2}},
		{"example2-ir", []string{"ir", "-p", "n=3,m=4", e2}},
		{"example2-dot", []string{"dot", "-p", "n=3,m=4", e2}},
		// The -O variants snapshot the optimizer's output (fusion,
		// hoisting, strength-reduced subscripts) on the same programs
		// plus the wavefront recurrence; the unadorned `ir` goldens
		// above pin the raw lowering, so a diff here that leaves them
		// untouched is an optimizer change, not a scheduler change.
		{"example1-ir-opt", []string{"ir", "-O", "-p", "n=4", e1}},
		{"example2-ir-opt", []string{"ir", "-O", "-p", "n=3,m=4", e2}},
		{"wavefront-ir-opt", []string{"ir", "-O", "-p", "n=4", wf}},
		// Tiered execution: the wavefront has no free inputs, so both
		// the values and the one-line tier decision are deterministic.
		// -tier auto with -repeat 3 crosses the default threshold and
		// promotes mid-run; -tier native compiles up front. Either way
		// the printed values must match the plain interpreted run —
		// that's the cross-tier equivalence contract at CLI granularity.
		{"run-tier-auto", []string{"run", "-p", "n=4", "-tier", "auto", "-repeat", "3", wf}},
		{"run-tier-native", []string{"run", "-p", "n=4", "-tier", "native", wf}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := run(tc.args, &buf); err != nil {
				t.Fatalf("hacc %s: %v", strings.Join(tc.args, " "), err)
			}
			golden := filepath.Join("testdata", tc.name+".golden")
			if *update {
				if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden file (run with -update to create): %v", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("output differs from %s:\n--- got ---\n%s\n--- want ---\n%s",
					golden, buf.String(), want)
			}
		})
	}
}

// TestFuzzSmoke exercises the fuzz subcommand end to end (interpreter
// backends only; the gogen leg is covered by the oracle tests).
func TestFuzzSmoke(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"fuzz", "-n", "10", "-seed", "1", "-nogogen", "-nonative"}, &buf); err != nil {
		t.Fatalf("hacc fuzz: %v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{"programs: 10", "thunked", "full", "nolinearize", "forcechecks", "noopt", "failures: 0"} {
		if !strings.Contains(out, want) {
			t.Errorf("fuzz summary missing %q:\n%s", want, out)
		}
	}
	if err := run([]string{"fuzz", "-n", "0"}, &buf); err == nil {
		t.Error("fuzz -n 0 must error")
	}
	if err := run([]string{"fuzz", "extra-arg"}, &buf); err == nil {
		t.Error("fuzz with a file argument must error")
	}
}
