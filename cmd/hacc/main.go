// Command hacc is the array-comprehension compiler driver: it parses a
// program in the paper's surface syntax, runs the subscript analysis
// and scheduler, and reports (or executes) the result.
//
// Usage:
//
//	hacc report [-p n=100,m=20] [-in a=1:8,1:8] [-O] [-explain] [-certify] file.hac
//	hacc run     [-p n=100] [-in a=1:8,1:8] [-seed 1] [-show k] [-parallel] [-workers k] [-explain] [-certify] [-stream] [-tier off|auto|native] [-tier-threshold n] [-repeat n] file.hac
//	hacc ir      [-p n=100] [-in …] [-O] [-nostencil] file.hac
//	hacc dot     [-p n=100] [-in …] file.hac
//	hacc emit-go [-p n=100] [-in …] [-O] file.hac   # standalone Go source
//	hacc fuzz    [-n 100] [-seed 1] [-nogogen] [-nonative]  # differential fuzzing
//
// -p binds scalar parameters; -in declares the bounds of free input
// arrays (filled with deterministic pseudo-random data for `run`).
// For the inspection commands (report, ir, emit-go) the loop-IR
// optimizer is off by default so the output shows the scheduler's raw
// lowering; -O turns it on (`hacc ir -O` prints the fused /
// strength-reduced nest). `run` always executes the optimized plan.
// `fuzz` generates random programs and cross-checks every backend
// against the thunked reference, shrink-reporting any divergence.
// -certify re-proves every dependence verdict the compiler acted on
// (concrete witnesses for "dependent", shadow-domain enumeration for
// "independent", schedule-order simulation, parallel-plan conflict
// checks); a falsified claim is a compiler bug and aborts the compile.
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"strings"

	"arraycomp/internal/analysis"
	"arraycomp/internal/core"
	"arraycomp/internal/gencomp"
	"arraycomp/internal/gogen"
	"arraycomp/internal/oracle"
	"arraycomp/internal/runtime"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "hacc:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: hacc <report|run|ir|dot|emit-go|fuzz> [flags] [file.hac]")
	}
	cmd := args[0]
	fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
	paramsFlag := fs.String("p", "", "comma-separated parameter bindings, e.g. n=100,m=20")
	inFlag := fs.String("in", "", "semicolon-separated input bounds, e.g. a=1:8,1:8;b=0:99")
	seed := fs.Int64("seed", 1, "seed for generated input data (run) or first program seed (fuzz)")
	show := fs.Int64("show", 5, "how many leading elements to print (run)")
	thunked := fs.Bool("thunked", false, "force the thunked baseline")
	optimize := fs.Bool("O", false, "run the loop-IR optimizer before report/ir/emit-go output")
	explain := fs.Bool("explain", false, "print the compile report (per-phase timings, optimization counters) before the command output")
	parallel := fs.Bool("parallel", false, "enable parallel scheduling (shard/doacross/wavefront/tiling)")
	certifyFlag := fs.Bool("certify", false, "audit every dependence verdict (witness re-checks + shadow-domain enumeration); falsified claims abort the compile naming the lying layer")
	noStencil := fs.Bool("nostencil", false, "disable the stencil specializer (interior/boundary splitting, halo-fed tiling)")
	workers := fs.Int("workers", 0, "parallel worker count; 0 = GOMAXPROCS at run time (needs -parallel)")
	streamFlag := fs.Bool("stream", false, "execute through the bounded-memory streaming pipeline when the window-legality analysis allows it (run; materialized fallback otherwise)")
	tierFlag := fs.String("tier", "off", "execution tier policy for run: off, auto (promote to compiled native code after -tier-threshold calls), or native (compile natively up front); implies -certify")
	tierThreshold := fs.Int("tier-threshold", 0, "interpreted calls before auto promotion; 0 = default (run)")
	repeat := fs.Int("repeat", 1, "evaluate the program n times (run; >1 exercises tier promotion)")
	fuzzN := fs.Int("n", 100, "number of programs to generate (fuzz)")
	noGogen := fs.Bool("nogogen", false, "skip the emitted-Go backend (fuzz)")
	noNative := fs.Bool("nonative", false, "skip the native execution tier (fuzz)")
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	if cmd == "fuzz" {
		if fs.NArg() != 0 {
			return fmt.Errorf("fuzz takes no source file")
		}
		return runFuzz(*fuzzN, *seed, !*noGogen, !*noNative, w)
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("expected exactly one source file")
	}
	srcBytes, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	params, err := parseParams(*paramsFlag)
	if err != nil {
		return err
	}
	inputBounds, err := parseInputs(*inFlag)
	if err != nil {
		return err
	}
	tierMode, err := core.ParseTierMode(*tierFlag)
	if err != nil {
		return err
	}
	if tierMode != core.TierOff && cmd != "run" {
		return fmt.Errorf("-tier only applies to run")
	}
	if *streamFlag && cmd != "run" {
		return fmt.Errorf("-stream only applies to run")
	}
	opts := core.Options{ForceThunked: *thunked, Parallel: *parallel, Workers: *workers, InputBounds: inputBounds, Certify: *certifyFlag, NoStencil: *noStencil, Stream: *streamFlag,
		// TierSync keeps the CLI deterministic: promotion happens inline
		// at the threshold call, never racing the process exit.
		Tier: tierMode, TierThreshold: *tierThreshold, TierSync: true}
	// Inspection commands show the raw lowering unless -O; execution
	// always optimizes.
	if cmd != "run" {
		opts.NoOptimize = !*optimize
	}
	prog, err := core.Compile(string(srcBytes), params, opts)
	if err != nil {
		return err
	}
	if *explain {
		// The same instrumentation layer the haccd service exposes via
		// GET /metrics: phase timings plus optimization counters.
		fmt.Fprint(w, prog.Stats.String())
	}
	if *certifyFlag && prog.Certs != nil {
		// A compile that got here has zero falsifications (they abort
		// with an error); print the audit trail.
		fmt.Fprint(w, prog.Certs.String())
	}
	switch cmd {
	case "report":
		fmt.Fprint(w, prog.Report())
		return nil
	case "dot":
		for _, name := range prog.Order {
			fmt.Fprint(w, prog.Defs[name].Analysis.Graph.DOT(name))
		}
		return nil
	case "ir":
		for _, name := range prog.Order {
			cd := prog.Defs[name]
			if cd.Plan == nil {
				fmt.Fprintf(w, "-- %s: %s (no loop IR)\n", name, cd.Mode())
				continue
			}
			fmt.Fprint(w, cd.Plan.Program.Dump())
		}
		return nil
	case "emit-go":
		for _, name := range prog.Order {
			cd := prog.Defs[name]
			if cd.Plan == nil {
				return fmt.Errorf("%s compiled %s; only thunkless/in-place plans can be emitted as Go", name, cd.Mode())
			}
			src, err := gogen.EmitFile(cd.Plan.Program, "main", exportName(name))
			if err != nil {
				return err
			}
			fmt.Fprint(w, src)
		}
		return nil
	case "run":
		inputs := map[string]*runtime.Strict{}
		rng := rand.New(rand.NewSource(*seed))
		for name, b := range inputBounds {
			a := runtime.NewStrict(runtime.Bounds{Lo: b.Lo, Hi: b.Hi})
			for i := range a.Data {
				a.Data[i] = rng.Float64()
			}
			inputs[name] = a
		}
		if *repeat < 1 {
			return fmt.Errorf("run: -repeat must be at least 1")
		}
		var out *runtime.Strict
		for i := 0; i < *repeat; i++ {
			out, _, err = prog.RunTiered(inputs)
			if err != nil {
				return err
			}
		}
		if tierMode != core.TierOff {
			fmt.Fprintf(w, "%s\n", prog.TierReport())
		}
		if *streamFlag {
			if rep := prog.StreamReport(); prog.StreamActive() && rep != nil {
				fmt.Fprintf(w, "stream: stages=%d chunk=%d chunks=%d window_d=%d peak_bytes=%d materialized_bytes=%d\n",
					rep.Stages, rep.ChunkSize, rep.Chunks, rep.MaxDist, rep.PeakBytes, rep.MaterializedBytes)
			} else {
				fmt.Fprintf(w, "stream: materialized fallback: %s\n", prog.StreamFallback())
			}
		}
		fmt.Fprintf(w, "result %s %s\n", prog.Result, out.B)
		n := out.B.Size()
		if n > *show {
			n = *show
		}
		for off := int64(0); off < n; off++ {
			fmt.Fprintf(w, "  %s%v = %g\n", prog.Result, out.B.Unlinear(off), out.Data[off])
		}
		return nil
	}
	return fmt.Errorf("unknown command %q", cmd)
}

// runFuzz is the differential-fuzzing entry point: n generated
// programs, every Options ablation cross-checked against the thunked
// reference (and, unless -nogogen, against emitted Go run out of
// process; unless -nonative, against the native execution tier).
// Failures are minimized by the structural shrinker and printed in
// the corpus file format, ready to be checked into
// internal/oracle/testdata/.
func runFuzz(n int, seed int64, withGogen, withNative bool, w io.Writer) error {
	if n <= 0 {
		return fmt.Errorf("fuzz: -n must be positive")
	}
	seeds := make([]uint64, n)
	for i := range seeds {
		seeds[i] = uint64(seed) + uint64(i)
	}
	s := oracle.RunSeeds(seeds, gencomp.Config{}, withGogen, withNative)
	fmt.Fprint(w, s)
	if len(s.Failures) == 0 {
		fmt.Fprintf(w, "FUZZ-OK programs=%d\n", s.Programs)
		return nil
	}
	// One machine-readable line per divergence, so CI steps fail on a
	// grep-able contract (and the exit status) rather than log shape.
	for _, c := range s.Failures {
		backends := map[string]bool{}
		for _, m := range c.Mismatches {
			backends[m.Backend] = true
		}
		names := make([]string, 0, len(backends))
		for b := range backends {
			names = append(names, b)
		}
		sort.Strings(names)
		fmt.Fprintf(w, "FUZZ-FAIL seed=%d backends=%s\n", c.Seed, strings.Join(names, ","))
	}
	const maxReports = 3
	for i, c := range s.Failures {
		if i >= maxReports {
			fmt.Fprintf(w, "\n… and %d more failing seeds\n", len(s.Failures)-maxReports)
			break
		}
		min := oracle.ShrinkFailure(c)
		fmt.Fprintf(w, "\nseed %d diverges; minimized reproducer:\n", c.Seed)
		fmt.Fprint(w, oracle.CorpusString(min.Program))
		report := min
		if !report.Failed() {
			// The gogen-only part of the failure is not re-checked by
			// the shrinker's inner loop; fall back to the original.
			report = c
		}
		for _, m := range report.Mismatches {
			fmt.Fprintf(w, "  %s: %s\n", m.Backend, m.Detail)
		}
	}
	return fmt.Errorf("fuzz: %d of %d programs diverged", len(s.Failures), n)
}

// exportName capitalizes a definition name into an exported Go
// identifier.
func exportName(s string) string {
	if s == "" {
		return "Compiled"
	}
	return strings.ToUpper(s[:1]) + s[1:]
}

func parseParams(s string) (map[string]int64, error) {
	out := map[string]int64{}
	if s == "" {
		return out, nil
	}
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 || kv[0] == "" {
			return nil, fmt.Errorf("bad parameter binding %q", part)
		}
		v, err := strconv.ParseInt(kv[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad parameter value %q: %v", part, err)
		}
		out[kv[0]] = v
	}
	return out, nil
}

func parseInputs(s string) (map[string]analysis.ArrayBounds, error) {
	out := map[string]analysis.ArrayBounds{}
	if s == "" {
		return out, nil
	}
	for _, part := range strings.Split(s, ";") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("bad input declaration %q", part)
		}
		var b analysis.ArrayBounds
		for _, dim := range strings.Split(kv[1], ",") {
			lh := strings.SplitN(strings.TrimSpace(dim), ":", 2)
			if len(lh) != 2 {
				return nil, fmt.Errorf("bad bounds %q (want lo:hi)", dim)
			}
			lo, err := strconv.ParseInt(lh[0], 10, 64)
			if err != nil {
				return nil, err
			}
			hi, err := strconv.ParseInt(lh[1], 10, 64)
			if err != nil {
				return nil, err
			}
			b.Lo = append(b.Lo, lo)
			b.Hi = append(b.Hi, hi)
		}
		out[kv[0]] = b
	}
	return out, nil
}
