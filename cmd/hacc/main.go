// Command hacc is the array-comprehension compiler driver: it parses a
// program in the paper's surface syntax, runs the subscript analysis
// and scheduler, and reports (or executes) the result.
//
// Usage:
//
//	hacc report [-p n=100,m=20] [-in a=1:8,1:8] file.hac
//	hacc run     [-p n=100] [-in a=1:8,1:8] [-seed 1] [-show k] file.hac
//	hacc ir      [-p n=100] [-in …] file.hac
//	hacc dot     [-p n=100] [-in …] file.hac
//	hacc emit-go [-p n=100] [-in …] file.hac   # standalone Go source
//
// -p binds scalar parameters; -in declares the bounds of free input
// arrays (filled with deterministic pseudo-random data for `run`).
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"arraycomp/internal/analysis"
	"arraycomp/internal/core"
	"arraycomp/internal/gogen"
	"arraycomp/internal/runtime"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "hacc:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: hacc <report|run|ir|dot|emit-go> [flags] file.hac")
	}
	cmd := args[0]
	fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
	paramsFlag := fs.String("p", "", "comma-separated parameter bindings, e.g. n=100,m=20")
	inFlag := fs.String("in", "", "semicolon-separated input bounds, e.g. a=1:8,1:8;b=0:99")
	seed := fs.Int64("seed", 1, "seed for generated input data (run)")
	show := fs.Int64("show", 5, "how many leading elements to print (run)")
	thunked := fs.Bool("thunked", false, "force the thunked baseline")
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("expected exactly one source file")
	}
	srcBytes, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	params, err := parseParams(*paramsFlag)
	if err != nil {
		return err
	}
	inputBounds, err := parseInputs(*inFlag)
	if err != nil {
		return err
	}
	opts := core.Options{ForceThunked: *thunked, InputBounds: inputBounds}
	prog, err := core.Compile(string(srcBytes), params, opts)
	if err != nil {
		return err
	}
	switch cmd {
	case "report":
		fmt.Print(prog.Report())
		return nil
	case "dot":
		for _, name := range prog.Order {
			fmt.Print(prog.Defs[name].Analysis.Graph.DOT(name))
		}
		return nil
	case "ir":
		for _, name := range prog.Order {
			cd := prog.Defs[name]
			if cd.Plan == nil {
				fmt.Printf("-- %s: %s (no loop IR)\n", name, cd.Mode())
				continue
			}
			fmt.Print(cd.Plan.Program.Dump())
		}
		return nil
	case "emit-go":
		for _, name := range prog.Order {
			cd := prog.Defs[name]
			if cd.Plan == nil {
				return fmt.Errorf("%s compiled %s; only thunkless/in-place plans can be emitted as Go", name, cd.Mode())
			}
			src, err := gogen.EmitFile(cd.Plan.Program, "main", exportName(name))
			if err != nil {
				return err
			}
			fmt.Print(src)
		}
		return nil
	case "run":
		inputs := map[string]*runtime.Strict{}
		rng := rand.New(rand.NewSource(*seed))
		for name, b := range inputBounds {
			a := runtime.NewStrict(runtime.Bounds{Lo: b.Lo, Hi: b.Hi})
			for i := range a.Data {
				a.Data[i] = rng.Float64()
			}
			inputs[name] = a
		}
		out, err := prog.Run(inputs)
		if err != nil {
			return err
		}
		fmt.Printf("result %s %s\n", prog.Result, out.B)
		n := out.B.Size()
		if n > *show {
			n = *show
		}
		for off := int64(0); off < n; off++ {
			fmt.Printf("  %s%v = %g\n", prog.Result, out.B.Unlinear(off), out.Data[off])
		}
		return nil
	}
	return fmt.Errorf("unknown command %q", cmd)
}

// exportName capitalizes a definition name into an exported Go
// identifier.
func exportName(s string) string {
	if s == "" {
		return "Compiled"
	}
	return strings.ToUpper(s[:1]) + s[1:]
}

func parseParams(s string) (map[string]int64, error) {
	out := map[string]int64{}
	if s == "" {
		return out, nil
	}
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 || kv[0] == "" {
			return nil, fmt.Errorf("bad parameter binding %q", part)
		}
		v, err := strconv.ParseInt(kv[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad parameter value %q: %v", part, err)
		}
		out[kv[0]] = v
	}
	return out, nil
}

func parseInputs(s string) (map[string]analysis.ArrayBounds, error) {
	out := map[string]analysis.ArrayBounds{}
	if s == "" {
		return out, nil
	}
	for _, part := range strings.Split(s, ";") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("bad input declaration %q", part)
		}
		var b analysis.ArrayBounds
		for _, dim := range strings.Split(kv[1], ",") {
			lh := strings.SplitN(strings.TrimSpace(dim), ":", 2)
			if len(lh) != 2 {
				return nil, fmt.Errorf("bad bounds %q (want lo:hi)", dim)
			}
			lo, err := strconv.ParseInt(lh[0], 10, 64)
			if err != nil {
				return nil, err
			}
			hi, err := strconv.ParseInt(lh[1], 10, 64)
			if err != nil {
				return nil, err
			}
			b.Lo = append(b.Lo, lo)
			b.Hi = append(b.Hi, hi)
		}
		out[kv[0]] = b
	}
	return out, nil
}
