package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeTemp(t *testing.T, src string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "prog.hac")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestParseParams(t *testing.T) {
	p, err := parseParams("n=100,m=20")
	if err != nil {
		t.Fatal(err)
	}
	if p["n"] != 100 || p["m"] != 20 {
		t.Errorf("params = %v", p)
	}
	if p, err := parseParams(""); err != nil || len(p) != 0 {
		t.Error("empty params must parse")
	}
	for _, bad := range []string{"n", "n=x", "=5"} {
		if _, err := parseParams(bad); err == nil {
			t.Errorf("parseParams(%q) succeeded", bad)
		}
	}
}

func TestParseInputs(t *testing.T) {
	in, err := parseInputs("a=1:8,1:8;b=0:99")
	if err != nil {
		t.Fatal(err)
	}
	a := in["a"]
	if len(a.Lo) != 2 || a.Lo[0] != 1 || a.Hi[1] != 8 {
		t.Errorf("a bounds = %+v", a)
	}
	b := in["b"]
	if len(b.Lo) != 1 || b.Hi[0] != 99 {
		t.Errorf("b bounds = %+v", b)
	}
	for _, bad := range []string{"a", "a=1", "a=1:", "a=x:2"} {
		if _, err := parseInputs(bad); err == nil {
			t.Errorf("parseInputs(%q) succeeded", bad)
		}
	}
}

func TestRunCommands(t *testing.T) {
	path := writeTemp(t, `a = array (1,n) ([ 1 := 1.0 ] ++ [ i := a!(i-1) + 1.0 | i <- [2..n] ])`)
	for _, cmd := range []string{"report", "ir", "dot", "run"} {
		if err := run([]string{cmd, "-p", "n=5", path}, io.Discard); err != nil {
			t.Errorf("hacc %s: %v", cmd, err)
		}
	}
}

func TestRunWithInputs(t *testing.T) {
	path := writeTemp(t, `param n; a2 = bigupd a [ i := 2.0 * a!i | i <- [1..n] ]`)
	if err := run([]string{"run", "-p", "n=4", "-in", "a=1:4", path}, io.Discard); err != nil {
		t.Errorf("hacc run with inputs: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	path := writeTemp(t, `a = array (1,n) [ i := 1.0 | i <- [1..n] ]`)
	cases := [][]string{
		{},                                  // no args
		{"bogus", "-p", "n=3", path},        // unknown command
		{"report", path},                    // unbound parameter
		{"report", "-p", "n=3"},             // missing file
		{"report", "-p", "n=3", "/no/file"}, // unreadable file
		{"report", "-p", "n=3", path, path}, // too many files
	}
	for _, args := range cases {
		if err := run(args, io.Discard); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

func TestRunStreamFlag(t *testing.T) {
	// A d=1 recurrence pipeline: streamable, so the run must report the
	// pipeline's accounting.
	path := writeTemp(t, `letrec* a = array (1,n) [ i := x!i + 1.0 | i <- [1..n] ];
  b = array (1,n) ([ 1 := a!1 ] ++ [ i := b!(i-1) * 0.5 + a!i | i <- [2..n] ])
in b`)
	var buf strings.Builder
	if err := run([]string{"run", "-stream", "-p", "n=9000", "-in", "x=1:9000", path}, &buf); err != nil {
		t.Fatalf("hacc run -stream: %v", err)
	}
	if !strings.Contains(buf.String(), "stream: stages=") {
		t.Errorf("missing streaming report:\n%s", buf.String())
	}

	// An accumArray reduction cannot stream: same flag, fallback note.
	path = writeTemp(t, `h = accumArray (+) 0.0 (0,9) [ (3*i) mod 10 := 1.0 | i <- [1..n] ]`)
	buf.Reset()
	if err := run([]string{"run", "-stream", "-p", "n=100", path}, &buf); err != nil {
		t.Fatalf("hacc run -stream fallback: %v", err)
	}
	if !strings.Contains(buf.String(), "stream: materialized fallback:") {
		t.Errorf("missing fallback note:\n%s", buf.String())
	}

	// -stream outside run is a usage error.
	if err := run([]string{"report", "-stream", "-p", "n=4", path}, io.Discard); err == nil {
		t.Error("hacc report -stream succeeded, want error")
	}
}

func TestRunThunkedFlag(t *testing.T) {
	path := writeTemp(t, `a = array (1,n) [ i := i*i | i <- [1..n] ]`)
	if err := run([]string{"run", "-thunked", "-p", "n=4", path}, io.Discard); err != nil {
		t.Errorf("hacc run -thunked: %v", err)
	}
}

func TestEmitGoCommand(t *testing.T) {
	path := writeTemp(t, `a = array (1,n) [ i := i*i | i <- [1..n] ]`)
	if err := run([]string{"emit-go", "-p", "n=5", path}, io.Discard); err != nil {
		t.Errorf("hacc emit-go: %v", err)
	}
	// Thunked programs cannot be emitted.
	path2 := writeTemp(t, `a = array (1,n) [ i := a!i | i <- [1..n] ]`)
	if err := run([]string{"emit-go", "-p", "n=5", path2}, io.Discard); err == nil {
		t.Error("emit-go of a thunked plan must error")
	}
}
