// Command hacsoak soaks a running haccd replica or fleet with a
// Zipf-distributed program mix and gates on what comes back. It is
// the operational probe for the fleet-serving claims: a healthy fleet
// under heavy-tailed traffic serves almost everything from cache
// (memory or disk) and sheds with 429 — never 5xx — when saturated.
//
//	hacsoak -url http://127.0.0.1:8347 -requests 100000 -min-hit-rate 0.9
//	hacsoak -url http://h1:8347,http://h2:8347 -requests 100000
//
// Output is one machine-readable line (SOAK-OK requests=... hit_rate=...
// shed=... http5xx=...), and the exit status enforces the gates:
// nonzero when the hit rate is below -min-hit-rate, when 5xx responses
// exceed -max-5xx, or when any transport error occurred. CI greps the
// line and trusts the exit code.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"arraycomp/internal/soak"
)

func main() {
	var (
		urls        = flag.String("url", "http://127.0.0.1:8347", "comma-separated haccd base URLs; with several, requests spread round-robin across the fleet")
		requests    = flag.Int("requests", 10000, "total requests to send")
		concurrency = flag.Int("concurrency", 8, "concurrent soak workers")
		programs    = flag.Int("programs", 64, "distinct programs in the mix")
		zipfS       = flag.Float64("zipf-s", 1.2, "Zipf exponent (>1); larger = hotter head")
		seed        = flag.Int64("seed", 1, "RNG seed for the program-pick sequence")
		n           = flag.Int64("n", 64, "array-size parameter each program compiles with")
		certify     = flag.Bool("certify", false, "compile with the certification audit on (required for plans to reach the disk tier)")
		minHitRate  = flag.Float64("min-hit-rate", 0, "fail (exit 1) when the aggregate hit rate is below this")
		max5xx      = flag.Uint64("max-5xx", 0, "fail (exit 1) when more than this many 5xx responses arrive")
	)
	flag.Parse()

	var targets []string
	for _, u := range strings.Split(*urls, ",") {
		if u = strings.TrimSpace(u); u != "" {
			targets = append(targets, u)
		}
	}
	res, err := soak.Run(soak.Config{
		Targets:     targets,
		Requests:    *requests,
		Concurrency: *concurrency,
		Programs:    *programs,
		ZipfS:       *zipfS,
		Seed:        *seed,
		N:           *n,
		Certify:     *certify,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "hacsoak: %v\n", err)
		os.Exit(2)
	}
	fmt.Println(res.String())

	failed := false
	if res.HitRate() < *minHitRate {
		fmt.Fprintf(os.Stderr, "hacsoak: hit rate %.4f below gate %.4f\n", res.HitRate(), *minHitRate)
		failed = true
	}
	if res.HTTP5xx > *max5xx {
		fmt.Fprintf(os.Stderr, "hacsoak: %d 5xx responses exceed gate %d\n", res.HTTP5xx, *max5xx)
		failed = true
	}
	if res.Errors > 0 {
		fmt.Fprintf(os.Stderr, "hacsoak: %d transport/decode errors\n", res.Errors)
		failed = true
	}
	if failed {
		os.Exit(1)
	}
}
