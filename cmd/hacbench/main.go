// Command hacbench regenerates the experiment tables of EXPERIMENTS.md:
// for every experiment (E1–E20) it runs the relevant workloads through
// the compiled pipeline and the baselines and prints one table row per
// variant, including the qualitative expectation the paper states.
//
// Usage:
//
//	hacbench            # run every experiment
//	hacbench e3 e8 e11  # run a subset
//	hacbench -quick     # smaller sizes / shorter timing
//
// -json FILE merges machine-readable timings (label → ns/op and
// allocs/op) into FILE, keeping entries from earlier runs; -noopt
// disables the loop-IR optimizer and prefixes the labels with "noopt/"
// instead of "opt/", so two runs produce a pre/post comparison in one
// file:
//
//	hacbench -json BENCH.json -noopt e3 e9 e10 e11
//	hacbench -json BENCH.json        e3 e9 e10 e11
//
// -baseline FILE gates the run against a committed result file (the CI
// bench-regression wall): after benching, every gated label must be
// within -maxregress percent of the baseline ns/op or hacbench prints
// BENCH-REGRESS lines and exits nonzero.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	goruntime "runtime"
	"sort"
	"strings"
	"testing"
	"time"

	"arraycomp/internal/analysis"
	"arraycomp/internal/benchcmp"
	"arraycomp/internal/cache"
	"arraycomp/internal/core"
	"arraycomp/internal/depgraph"
	"arraycomp/internal/deptest"
	"arraycomp/internal/idxprop"
	"arraycomp/internal/parser"
	"arraycomp/internal/runtime"
	"arraycomp/internal/schedule"
	"arraycomp/internal/serve"
	"arraycomp/internal/workloads"
)

var (
	quick      = flag.Bool("quick", false, "smaller sizes for a fast smoke run")
	noopt      = flag.Bool("noopt", false, "disable the loop-IR optimizer (pre/post comparisons)")
	jsonPath   = flag.String("json", "", "merge machine-readable results into FILE")
	workersF   = flag.Int("workers", 0, "bench parallel arms at this worker count only (0 = 1, 2 and NumCPU)")
	baseline   = flag.String("baseline", "", "gate this run against a committed result FILE")
	maxRegress = flag.Float64("maxregress", 25, "with -baseline: max allowed ns/op regression, percent")
)

var jsonResults = map[string]benchcmp.Result{}

func main() {
	flag.Parse()
	want := map[string]bool{}
	for _, a := range flag.Args() {
		want[strings.ToLower(a)] = true
	}
	all := len(want) == 0
	for _, exp := range experiments {
		if all || want[exp.id] {
			fmt.Printf("\n### %s — %s\n", strings.ToUpper(exp.id), exp.title)
			if exp.expect != "" {
				fmt.Printf("paper expectation: %s\n", exp.expect)
			}
			exp.run()
		}
	}
	writeJSON()
	gateBaseline()
}

// gateBaseline enforces the bench-regression wall in-process: compare
// this run's results against -baseline and exit nonzero on any gated
// regression, using the same engine as cmd/benchdiff.
func gateBaseline() {
	if *baseline == "" {
		return
	}
	base, err := benchcmp.Load(*baseline)
	die(err)
	rep := benchcmp.Compare(base, jsonResults, *maxRegress, benchcmp.Skipper(benchcmp.DefaultSkip))
	fmt.Printf("\n### baseline gate vs %s (wall: +%.0f%%)\n", *baseline, *maxRegress)
	rep.WriteTable(os.Stdout)
	rep.WriteMachine(os.Stdout)
	if !rep.OK() {
		os.Exit(1)
	}
}

// writeJSON merges this run's results into -json FILE (earlier entries
// under other labels survive, so an opt and a noopt run accumulate).
func writeJSON() {
	if *jsonPath == "" {
		return
	}
	merged := map[string]benchcmp.Result{}
	if data, err := os.ReadFile(*jsonPath); err == nil {
		if err := json.Unmarshal(data, &merged); err != nil {
			die(fmt.Errorf("existing %s is not a result file: %v", *jsonPath, err))
		}
	}
	for k, v := range jsonResults {
		merged[k] = v
	}
	data, err := json.MarshalIndent(merged, "", "  ")
	die(err)
	die(os.WriteFile(*jsonPath, append(data, '\n'), 0o644))
}

type experiment struct {
	id     string
	title  string
	expect string
	run    func()
}

func bench(label string, f func()) float64 {
	return benchW(label, 0, f)
}

// benchW records a parallel arm's worker count in the -json output.
func benchW(label string, workers int, f func()) float64 {
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			f()
		}
	})
	ns := float64(r.T.Nanoseconds()) / float64(r.N)
	fmt.Printf("  %-34s %14.0f ns/op\n", label, ns)
	if *jsonPath != "" || *baseline != "" {
		prefix := "opt/"
		if *noopt {
			prefix = "noopt/"
		}
		res := benchcmp.Result{NsPerOp: ns, AllocsPerOp: r.AllocsPerOp(), Workers: workers}
		// Every entry carries the measuring host so benchdiff can
		// refuse (or flag) cross-host comparisons.
		benchcmp.CurrentHost().Stamp(&res)
		jsonResults[prefix+label] = res
	}
	return ns
}

// record stores a deterministic non-timing measurement (byte counts
// here) under the same label scheme as timing results, so benchdiff's
// ratio engine gates it: a -minspeedup 'MATERIALIZED|PEAK|4.0' check
// over two byte labels asserts peak <= 25% of materialized. The value
// lands in the ns_per_op slot — the field is just "the gated number".
func record(label string, value float64) {
	fmt.Printf("  %-34s %14.0f bytes\n", label, value)
	if *jsonPath != "" || *baseline != "" {
		prefix := "opt/"
		if *noopt {
			prefix = "noopt/"
		}
		res := benchcmp.Result{NsPerOp: value}
		benchcmp.CurrentHost().Stamp(&res)
		jsonResults[prefix+label] = res
	}
}

// workerCounts returns the pool sizes the parallel arms measure:
// -workers pins a single count, otherwise 1, 2 and NumCPU (deduped).
func workerCounts() []int {
	if *workersF > 0 {
		return []int{*workersF}
	}
	counts := []int{1, 2}
	if ncpu := goruntime.NumCPU(); ncpu > 2 {
		counts = append(counts, ncpu)
	}
	return counts
}

func die(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "hacbench:", err)
		os.Exit(1)
	}
}

func compileW(src string, params map[string]int64, inputs map[string]*runtime.Strict, thunked bool) *core.Program {
	opts := core.Options{ForceThunked: thunked, NoOptimize: *noopt, InputBounds: map[string]analysis.ArrayBounds{}}
	for name, a := range inputs {
		opts.InputBounds[name] = analysis.ArrayBounds{Lo: a.B.Lo, Hi: a.B.Hi}
	}
	p, err := core.Compile(src, params, opts)
	die(err)
	return p
}

func runP(p *core.Program, inputs map[string]*runtime.Strict) {
	_, err := p.Run(inputs)
	die(err)
}

func size(big, small int64) int64 {
	if *quick {
		return small
	}
	return big
}

func ratio(a, b float64) string { return fmt.Sprintf("%.1fx", a/b) }

var experiments = []experiment{
	{
		id: "e1", title: "section 5 example 1 dependence graph",
		expect: "edges 1→2 (<) and 1→3 (=); no collisions; no empties",
		run: func() {
			prog, err := parser.ParseProgram(workloads.Example1Src)
			die(err)
			env := map[string]int64{"n": 100}
			bounds, err := analysis.EvalBounds(prog.Defs[0], env)
			die(err)
			res, err := analysis.Analyze(prog.Defs[0], env, bounds, nil, analysis.Options{})
			die(err)
			printGraph(res)
			fmt.Printf("  collision=%s empties-excluded=%v\n", res.Collision, res.NoEmpties)
			sched, err := schedule.Build(res, nil)
			die(err)
			fmt.Printf("  schedule:\n%s", indent(sched.Dump(), "    "))
		},
	},
	{
		id: "e2", title: "section 5 example 2 dependence graph",
		expect: "edges 2→1 (=,>), 1→2 (<,>), 2→3 (<); i forward, j backward",
		run: func() {
			prog, err := parser.ParseProgram(workloads.Example2Src)
			die(err)
			env := map[string]int64{"n": 10, "m": 20}
			bounds, err := analysis.EvalBounds(prog.Defs[0], env)
			die(err)
			res, err := analysis.Analyze(prog.Defs[0], env, bounds, nil, analysis.Options{})
			die(err)
			printGraph(res)
			sched, err := schedule.Build(res, nil)
			die(err)
			fmt.Printf("  schedule:\n%s", indent(sched.Dump(), "    "))
		},
	},
	{
		id: "e3", title: "wavefront recurrence",
		expect: "thunkless ≪ thunked; close to hand-written loops",
		run: func() {
			n := size(256, 64)
			params := map[string]int64{"n": n}
			pc := compileW(workloads.WavefrontSrc, params, nil, false)
			pt := compileW(workloads.WavefrontSrc, params, nil, true)
			c := bench(fmt.Sprintf("compiled n=%d", n), func() { runP(pc, nil) })
			t := bench(fmt.Sprintf("thunked  n=%d", n), func() { runP(pt, nil) })
			h := bench(fmt.Sprintf("handwritten n=%d", n), func() { workloads.HandWavefront(n) })
			fmt.Printf("  thunked/compiled = %s, compiled/hand = %s\n", ratio(t, c), ratio(c, h))
		},
	},
	{
		id: "e4", title: "mixed (<)/(>) acyclic graph: pass splitting",
		expect: "schedulable in 2 passes (3 clauses collapse into 2 loops)",
		run: func() {
			n := size(20000, 2000)
			params := map[string]int64{"n": n}
			p := compileW(workloads.MixedPassSrc, params, nil, false)
			fmt.Printf("  mode=%s loop-passes=%d\n", p.Defs["a"].Mode(), p.Defs["a"].Schedule.LoopPasses)
			bench("compiled 2-pass", func() { runP(p, nil) })
			pt := compileW(workloads.MixedPassSrc, params, nil, true)
			bench("thunked", func() { runP(pt, nil) })
		},
	},
	{
		id: "e5", title: "cycle with both (<) and (>): thunk fallback",
		expect: "no static schedule exists; compiled with thunks",
		run: func() {
			n := size(20000, 2000)
			params := map[string]int64{"n": n}
			p := compileW(workloads.CyclicSrc, params, nil, false)
			fmt.Printf("  mode=%s\n", p.Defs["a"].Mode())
			bench("thunked fallback", func() { runP(p, nil) })
		},
	},
	{
		id: "e6", title: "write-collision detection",
		expect: "provable interleave: zero checks; guarded interleave: checks compiled",
		run: func() {
			n := size(100000, 10000)
			params := map[string]int64{"n": n}
			elided := `a = array (1,n) ([ i := 1.0 | i <- [1,3..n-1] ] ++ [ i := 2.0 | i <- [2,4..n] ])`
			checked := `a = array (1,n)
			  ([ i := 1.0 | i <- [1..n], i mod 2 == 1 ] ++
			   [ i := 2.0 | i <- [1..n], i mod 2 == 0 ])`
			pe := compileW(elided, params, nil, false)
			pcheck := compileW(checked, params, nil, false)
			fmt.Printf("  elided checks:  %+v\n", pe.Defs["a"].Plan.Checks)
			fmt.Printf("  runtime checks: %+v\n", pcheck.Defs["a"].Plan.Checks)
			e := bench("checks elided", func() { runP(pe, nil) })
			c := bench("checks compiled", func() { runP(pcheck, nil) })
			fmt.Printf("  checked/elided = %s\n", ratio(c, e))
		},
	},
	{
		id: "e7", title: "empties detection (permutation argument)",
		expect: "count==size + in-bounds + no collisions ⇒ no definedness tests",
		run: func() {
			params := map[string]int64{"n": 1000}
			p := compileW(workloads.SquaresSrc, params, nil, false)
			res := p.Defs["sq"].Analysis
			fmt.Printf("  squares: empties-excluded=%v checks=%+v\n", res.NoEmpties, p.Defs["sq"].Plan.Checks)
			partial := `a = array (1,n) [ i := 1.0 | i <- [1..n-1] ]`
			pp := compileW(partial, params, nil, false)
			fmt.Printf("  partial: empties-excluded=%v (%s)\n",
				pp.Defs["a"].Analysis.NoEmpties, pp.Defs["a"].Analysis.EmptiesDetail)
		},
	},
	{
		id: "e8", title: "LINPACK row swap (anti cycle, node splitting)",
		expect: "scalar-temp in-place ≪ thunked snapshot ≪ naive per-update copying",
		run: func() {
			n := size(512, 64)
			params := workloads.ParamsFor("rowswap", n)
			in := workloads.Mesh(n, 7)
			inputs := map[string]*runtime.Strict{"a": in}
			p := compileW(workloads.RowSwapSrc, params, inputs, false)
			plan := p.Defs["a2"].Plan
			scratch := map[string]*runtime.Strict{"a": in.Clone()}
			ip := bench("in-place node-split", func() { _, err := plan.Run(scratch); die(err) })
			pt := compileW(workloads.RowSwapSrc, params, inputs, true)
			th := bench("thunked snapshot", func() { runP(pt, inputs) })
			nv := bench("naive per-update copying", func() { workloads.NaiveRowSwapCopying(in, params["i0"], params["k0"]) })
			hw := in.Clone()
			h := bench("hand-written", func() { workloads.HandRowSwap(hw, params["i0"], params["k0"]) })
			fmt.Printf("  naive/in-place = %s, thunked/in-place = %s, in-place/hand = %s\n",
				ratio(nv, ip), ratio(th, ip), ratio(ip, h))
		},
	},
	{
		id: "e9", title: "Jacobi step (carried anti deps, node splitting)",
		expect: "pipeline+rowbuf temps; factor-n fewer copies than naive",
		run: func() {
			n := size(128, 32)
			params := map[string]int64{"n": n}
			in := workloads.Mesh(n, 8)
			inputs := map[string]*runtime.Strict{"a": in}
			p := compileW(workloads.JacobiSrc, params, inputs, false)
			for _, note := range p.Defs["a2"].Plan.Notes {
				fmt.Printf("  note: %s\n", note)
			}
			plan := p.Defs["a2"].Plan
			scratch := map[string]*runtime.Strict{"a": in.Clone()}
			ns := bench("node-split in-place", func() { _, err := plan.Run(scratch); die(err) })
			pt := compileW(workloads.JacobiSrc, params, inputs, true)
			th := bench("thunked snapshot", func() { runP(pt, inputs) })
			nv := bench("naive per-update copying", func() { workloads.NaiveJacobiCopying(in) })
			tr := bench("trailer array", func() { workloads.TrailerJacobi(in) })
			hw := in.Clone()
			h := bench("hand-written (buffers)", func() { workloads.HandJacobi(hw) })
			fmt.Printf("  naive/split = %s, trailer/split = %s, thunked/split = %s, split/hand = %s\n",
				ratio(nv, ns), ratio(tr, ns), ratio(th, ns), ratio(ns, h))
		},
	},
	{
		id: "e10", title: "SOR / Livermore 23 wavefront (pure in-place)",
		expect: "all dependences agree with forward loops: no temps, no thunks",
		run: func() {
			n := size(256, 48)
			params := map[string]int64{"n": n}
			in := workloads.Mesh(n, 9)
			inputs := map[string]*runtime.Strict{"a": in}
			p := compileW(workloads.SORSrc, params, inputs, false)
			plan := p.Defs["a2"].Plan
			scratch := map[string]*runtime.Strict{"a": in.Clone()}
			ip := bench("SOR in-place", func() { _, err := plan.Run(scratch); die(err) })
			hw := in.Clone()
			h := bench("SOR hand-written", func() { workloads.HandSOR(hw) })
			fmt.Printf("  in-place/hand = %s\n", ratio(ip, h))

			ln := size(128, 32)
			lp := map[string]int64{"n": ln}
			linputs := workloads.Livermore23Inputs(ln)
			pl := compileW(workloads.Livermore23Src, lp, linputs, false)
			lplan := pl.Defs["za2"].Plan
			lscratch := map[string]*runtime.Strict{}
			for k, v := range linputs {
				lscratch[k] = v
			}
			lscratch["za"] = linputs["za"].Clone()
			lip := bench("Livermore23 in-place", func() { _, err := lplan.Run(lscratch); die(err) })
			za := linputs["za"].Clone()
			lh := bench("Livermore23 hand-written", func() {
				workloads.HandLivermore23(za, linputs["zr"], linputs["zb"], linputs["zu"], linputs["zv"])
			})
			fmt.Printf("  in-place/hand = %s\n", ratio(lip, lh))
		},
	},
	{
		id: "e11", title: "headline: thunkless vs thunked vs hand-written",
		expect: "thunkless removes the dominant thunk costs (paper: comparable to Fortran)",
		run: func() {
			n := size(100000, 10000)
			params := map[string]int64{"n": n}
			for _, w := range []struct {
				name, src string
				hand      func()
			}{
				{"squares", workloads.SquaresSrc, func() { workloads.HandSquares(n) }},
				{"recurrence", workloads.RecurrenceSrc, func() { workloads.HandRecurrence(n) }},
			} {
				pc := compileW(w.src, params, nil, false)
				pt := compileW(w.src, params, nil, true)
				c := bench(w.name+" thunkless", func() { runP(pc, nil) })
				t := bench(w.name+" thunked", func() { runP(pt, nil) })
				h := bench(w.name+" hand-written", func() { w.hand() })
				fmt.Printf("  thunked/thunkless = %s, thunkless/hand = %s\n", ratio(t, c), ratio(c, h))
			}
		},
	},
	{
		id: "e12", title: "dependence test cost vs nesting depth",
		expect: "GCD and Banerjee linear in depth; exact test exponential",
		run: func() {
			for _, d := range []int{1, 2, 4, 8} {
				p := mkDepthProblem(d)
				v := deptest.AnyVector(d)
				bench(fmt.Sprintf("gcd depth=%d", d), func() { _, _ = deptest.GCDTest(p, v) })
				bench(fmt.Sprintf("banerjee depth=%d", d), func() { _, _ = deptest.BanerjeeTest(p, v, true) })
				if d <= 2 {
					bench(fmt.Sprintf("exact depth=%d", d), func() { _, _ = deptest.ExactTest(p, v, deptest.DefaultExactBudget) })
				}
			}
		},
	},
	{
		id: "e13", title: "deforestation: intermediate lists vs fused loops",
		expect: "fused ≪ slice list ≪ cons list",
		run: func() {
			n := size(100000, 10000)
			x, y := workloads.Vector(n, 1), workloads.Vector(n, 2)
			var sink float64
			c := bench("cons list", func() { sink = workloads.SumProductsConsList(x, y) })
			s := bench("slice list", func() { sink = workloads.SumProductsListComp(x, y) })
			f := bench("fused loop", func() { sink = workloads.SumProductsFused(x, y) })
			_ = sink
			fmt.Printf("  cons/fused = %s, slice/fused = %s\n", ratio(c, f), ratio(s, f))
		},
	}, {
		id: "e14", title: "section 10 extension: parallel dependence-free loops",
		expect: "loops with no carried dependences shard across CPUs (parity on 1 CPU)",
		run: func() {
			n := size(768, 128)
			params := map[string]int64{"n": n}
			in := workloads.Mesh(n, 14)
			inputs := map[string]*runtime.Strict{"b": in}
			mk := func(parallel bool) *core.Program {
				opts := core.Options{
					Parallel:    parallel,
					NoOptimize:  *noopt,
					InputBounds: map[string]analysis.ArrayBounds{"b": {Lo: []int64{1, 1}, Hi: []int64{n, n}}},
				}
				p, err := core.Compile(workloads.JacobiMonolithicSrc, params, opts)
				die(err)
				return p
			}
			ps := mk(false)
			pp := mk(true)
			s := bench("sequential", func() { runP(ps, inputs) })
			p := bench("parallel", func() { runP(pp, inputs) })
			fmt.Printf("  sequential/parallel = %s (GOMAXPROCS-bound)\n", ratio(s, p))
		},
	}, {
		id: "e16", title: "parallel engine v2: doacross/wavefront/tiling schedules",
		expect: "wavefront nests and chains scale with workers on multi-CPU hosts; parity at 1 worker",
		run: func() {
			type kernel struct {
				name, src, def string
				n              int64
				inputs         map[string]*runtime.Strict
				scratch        func() map[string]*runtime.Strict
			}
			sorN := size(256, 48)
			sorIn := workloads.Mesh(sorN, 9)
			l23N := size(128, 32)
			l23In := workloads.Livermore23Inputs(l23N)
			l23Scratch := func() map[string]*runtime.Strict {
				s := map[string]*runtime.Strict{}
				for k, v := range l23In {
					s[k] = v
				}
				s["za"] = l23In["za"].Clone()
				return s
			}
			kernels := []kernel{
				{"SOR", workloads.SORSrc, "a2", sorN,
					map[string]*runtime.Strict{"a": sorIn},
					func() map[string]*runtime.Strict { return map[string]*runtime.Strict{"a": sorIn.Clone()} }},
				{"Livermore23", workloads.Livermore23Src, "za2", l23N, l23In, l23Scratch},
				{"wavefront", workloads.WavefrontSrc, "a", size(256, 64), nil,
					func() map[string]*runtime.Strict { return nil }},
				{"recurrence", workloads.RecurrenceSrc, "a", size(100000, 10000), nil,
					func() map[string]*runtime.Strict { return nil }},
			}
			for _, k := range kernels {
				params := map[string]int64{"n": k.n}
				mkOpts := func(parallel bool, workers int) core.Options {
					opts := core.Options{
						Parallel: parallel, Workers: workers, NoOptimize: *noopt,
						InputBounds: map[string]analysis.ArrayBounds{},
					}
					for name, a := range k.inputs {
						opts.InputBounds[name] = analysis.ArrayBounds{Lo: a.B.Lo, Hi: a.B.Hi}
					}
					return opts
				}
				ps, err := core.Compile(k.src, params, mkOpts(false, 0))
				die(err)
				seqPlan := ps.Defs[k.def].Plan
				scratch := k.scratch()
				s := bench(k.name+" seq", func() { _, err := seqPlan.Run(scratch); die(err) })
				for _, w := range workerCounts() {
					pp, err := core.Compile(k.src, params, mkOpts(true, w))
					die(err)
					plan := pp.Defs[k.def].Plan
					pscratch := k.scratch()
					p := benchW(fmt.Sprintf("%s par w=%d", k.name, w), w,
						func() { _, err := plan.Run(pscratch); die(err) })
					fmt.Printf("    seq/par(w=%d) = %s\n", w, ratio(s, p))
				}
			}
		},
	}, {
		id: "e17", title: "plan cache: cached vs cold compile-and-run",
		expect: "warm requests skip parse/analyze/lower; cached ≈ run-only, ≪ cold",
		run: func() {
			n := size(96, 32)
			params := map[string]int64{"n": n}
			src := workloads.WavefrontSrc
			cold := bench(fmt.Sprintf("cold compile+run n=%d", n), func() {
				p, err := core.Compile(src, params, core.Options{NoOptimize: *noopt})
				die(err)
				_, err = p.Run(nil)
				die(err)
			})
			compileOnly := bench(fmt.Sprintf("compile only n=%d", n), func() {
				_, err := core.Compile(src, params, core.Options{NoOptimize: *noopt})
				die(err)
			})
			c := cache.New(64, 0)
			warm := bench(fmt.Sprintf("cached compile+run n=%d", n), func() {
				e, _, err := c.GetOrCompile(src, params, core.Options{NoOptimize: *noopt})
				die(err)
				_, err = e.Program.Run(nil)
				die(err)
			})
			pre, err := core.Compile(src, params, core.Options{NoOptimize: *noopt})
			die(err)
			runOnly := bench(fmt.Sprintf("run only n=%d", n), func() { runP(pre, nil) })
			fmt.Printf("  cold/cached = %s, cached/run-only = %s, compile share of cold = %.0f%%\n",
				ratio(cold, warm), ratio(warm, runOnly), 100*compileOnly/cold)
			fmt.Printf("  cache stats: %s\n", c.Stats())
		},
	}, {
		id: "e19", title: "tiered native execution: interpreted vs promoted native vs hand",
		expect: "promoted native within 1.5x of hand-written loops under the same calling contract " +
			"(fresh defensive copy of mutated inputs per evaluation)",
		run: func() {
			type kernel struct {
				name, src string
				n         int64
				inputs    map[string]*runtime.Strict
				hand      func() // same contract: clones what it mutates, every call
			}
			sorN := size(256, 48)
			sorIn := workloads.Mesh(sorN, 9)
			l23N := size(128, 32)
			l23In := workloads.Livermore23Inputs(l23N)
			wfN := size(256, 64)
			kernels := []kernel{
				{"wavefront", workloads.WavefrontSrc, wfN, nil,
					func() { workloads.HandWavefront(wfN) }},
				{"SOR", workloads.SORSrc, sorN,
					map[string]*runtime.Strict{"a": sorIn},
					func() { workloads.HandSOR(sorIn.Clone()) }},
				{"Livermore23", workloads.Livermore23Src, l23N, l23In,
					func() {
						workloads.HandLivermore23(l23In["za"].Clone(),
							l23In["zr"], l23In["zb"], l23In["zu"], l23In["zv"])
					}},
			}
			for _, k := range kernels {
				params := map[string]int64{"n": k.n}
				mkOpts := func(tier core.TierMode) core.Options {
					opts := core.Options{NoOptimize: *noopt, Tier: tier, TierSync: true,
						InputBounds: map[string]analysis.ArrayBounds{}}
					for name, a := range k.inputs {
						opts.InputBounds[name] = analysis.ArrayBounds{Lo: a.B.Lo, Hi: a.B.Hi}
					}
					return opts
				}
				pi := compileProg(k.src, params, mkOpts(core.TierOff))
				pn := compileProg(k.src, params, mkOpts(core.TierForced))
				if got := pn.CurrentTier(); got != core.TierNative {
					// Without a working toolchain the tier degrades; the
					// numbers below would silently measure the interpreter.
					die(fmt.Errorf("%s did not reach the native tier: %s", k.name, pn.TierReport()))
				}
				i := bench(k.name+" interpreted", func() { runP(pi, k.inputs) })
				nv := bench(k.name+" native", func() { runP(pn, k.inputs) })
				h := bench(k.name+" hand-written", k.hand)
				fmt.Printf("  interp/native = %s, native/hand = %s  (build %v)\n",
					ratio(i, nv), ratio(nv, h), pn.TierBuildTime().Round(time.Millisecond))
			}
		},
	}, {
		id: "e20", title: "stencil specialization: BCE interiors, native tier, multicore scaling",
		expect: "interior/boundary splitting + slice-based interior loops keep native SOR and " +
			"wavefront at or under hand-written; sharded stencil interiors scale with workers at GOMAXPROCS>1",
		run: func() {
			// Part 1: the two stencil kernels the speedup wall gates,
			// native (gogen BCE interior) against hand-written loops
			// under the same calling contract.
			type kernel struct {
				name, src string
				n         int64
				inputs    map[string]*runtime.Strict
				hand      func()
			}
			sorN := size(256, 48)
			sorIn := workloads.Mesh(sorN, 9)
			wfN := size(256, 64)
			kernels := []kernel{
				{"wavefront stencil", workloads.WavefrontSrc, wfN, nil,
					func() { workloads.HandWavefront(wfN) }},
				{"SOR stencil", workloads.SORSrc, sorN,
					map[string]*runtime.Strict{"a": sorIn},
					func() { workloads.HandSOR(sorIn.Clone()) }},
			}
			for _, k := range kernels {
				params := map[string]int64{"n": k.n}
				mkOpts := func(tier core.TierMode) core.Options {
					opts := core.Options{NoOptimize: *noopt, Tier: tier, TierSync: true,
						InputBounds: map[string]analysis.ArrayBounds{}}
					for name, a := range k.inputs {
						opts.InputBounds[name] = analysis.ArrayBounds{Lo: a.B.Lo, Hi: a.B.Hi}
					}
					return opts
				}
				pi := compileProg(k.src, params, mkOpts(core.TierOff))
				pn := compileProg(k.src, params, mkOpts(core.TierForced))
				if got := pn.CurrentTier(); got != core.TierNative {
					die(fmt.Errorf("%s did not reach the native tier: %s", k.name, pn.TierReport()))
				}
				i := bench(k.name+" interp", func() { runP(pi, k.inputs) })
				nv := bench(k.name+" native", func() { runP(pn, k.inputs) })
				h := bench(k.name+" hand", k.hand)
				fmt.Printf("  interp/native = %s, native/hand = %s\n", ratio(i, nv), ratio(nv, h))
			}
			// Part 2: multicore scaling of a sharded elementwise stencil.
			// workers=1 is always measured so a -workers N run still
			// produces the w=1 reference the speedup wall divides by.
			n := size(768, 128)
			in := workloads.Mesh(n, 14)
			inputs := map[string]*runtime.Strict{"b": in}
			params := map[string]int64{"n": n}
			counts := []int{1}
			for _, w := range workerCounts() {
				if w != 1 {
					counts = append(counts, w)
				}
			}
			var w1 float64
			for _, w := range counts {
				opts := core.Options{
					Parallel: true, Workers: w, NoOptimize: *noopt,
					InputBounds: map[string]analysis.ArrayBounds{"b": {Lo: in.B.Lo, Hi: in.B.Hi}},
				}
				p, err := core.Compile(workloads.JacobiMonolithicSrc, params, opts)
				die(err)
				ns := benchW(fmt.Sprintf("jacobi stencil par w=%d", w), w,
					func() { runP(p, inputs) })
				if w == 1 {
					w1 = ns
				} else if w1 > 0 {
					fmt.Printf("    w=1/w=%d = %s (GOMAXPROCS-bound)\n", w, ratio(w1, ns))
				}
			}
		},
	}, {
		id: "e21", title: "fleet serving: batched /eval vs sequential round trips; disk-tier restart",
		expect: "one /evalbatch round trip amortizes HTTP + decode + cache-lookup overhead: >=3x over " +
			"64 sequential /eval calls on a cold cache; a disk-restored plan loads much faster than a cold compile",
		run: func() {
			// Part 1: the batch argument, measured through the real HTTP
			// stack. Each iteration uses a fresh program (unique cache
			// key) so both arms pay one cold compile; the difference is
			// 64 round trips + 64 request decodes vs 1.
			const batchN = 64
			srv, err := serve.New(serve.Config{
				CacheEntries: 8, CacheBytes: 64 << 20, MaxBody: 16 << 20,
				Concurrency: 64, Timeout: 60 * time.Second,
			})
			die(err)
			ts := httptest.NewServer(srv.Handler())
			defer ts.Close()
			client := &http.Client{Timeout: 60 * time.Second,
				Transport: &http.Transport{MaxIdleConnsPerHost: 4}}
			n := size(64, 16)
			var iter int
			freshSrc := func() string {
				iter++
				return fmt.Sprintf("a = array (1,n) [ j := j*%d.0 + j | j <- [1..n] ]", iter)
			}
			post := func(path string, body any) {
				data, err := json.Marshal(body)
				die(err)
				resp, err := client.Post(ts.URL+path, "application/json", strings.NewReader(string(data)))
				die(err)
				if resp.StatusCode != http.StatusOK {
					msg, _ := io.ReadAll(resp.Body)
					die(fmt.Errorf("%s: status %d: %s", path, resp.StatusCode, msg))
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
			type evalReq struct {
				Source string           `json:"source"`
				Params map[string]int64 `json:"params"`
				Seed   int64            `json:"seed,omitempty"`
			}
			type batchReq struct {
				Source string             `json:"source"`
				Params map[string]int64   `json:"params"`
				Evals  []map[string]int64 `json:"evals"`
			}
			params := map[string]int64{"n": n}
			seq := bench(fmt.Sprintf("eval x%d sequential cold", batchN), func() {
				src := freshSrc()
				for i := 0; i < batchN; i++ {
					post("/eval", evalReq{Source: src, Params: params, Seed: int64(i)})
				}
			})
			evals := make([]map[string]int64, batchN)
			for i := range evals {
				evals[i] = map[string]int64{"seed": int64(i)}
			}
			batch := bench(fmt.Sprintf("evalbatch x%d cold", batchN), func() {
				post("/evalbatch", batchReq{Source: freshSrc(), Params: params, Evals: evals})
			})
			fmt.Printf("  sequential/batch = %s (gate: >= 3.0x)\n", ratio(seq, batch))

			// Part 2: the restart-warmth argument. A certified plan
			// persisted to the disk tier restores (gob decode + loop-IR
			// recompile) without parse/analyze/plan/lower/optimize/
			// certify; cold pays all of them.
			dir, err := os.MkdirTemp("", "hacbench-disk-")
			die(err)
			defer os.RemoveAll(dir)
			wfN := size(96, 32)
			wfParams := map[string]int64{"n": wfN}
			certOpts := core.Options{NoOptimize: *noopt, Certify: true}
			seedCache := cache.New(4, 0)
			die(seedCache.EnableDisk(dir))
			_, _, err = seedCache.GetOrCompile(workloads.WavefrontSrc, wfParams, certOpts)
			die(err)
			if st := seedCache.Stats(); st.DiskWrites != 1 {
				die(fmt.Errorf("plan was not persisted (disk writes = %d)", st.DiskWrites))
			}
			cold := bench(fmt.Sprintf("plan cold compile+certify n=%d", wfN), func() {
				_, err := core.Compile(workloads.WavefrontSrc, wfParams, certOpts)
				die(err)
			})
			restore := bench(fmt.Sprintf("plan disk restore n=%d", wfN), func() {
				c := cache.New(4, 0)
				die(c.EnableDisk(dir))
				_, origin, err := c.GetOrCompile(workloads.WavefrontSrc, wfParams, certOpts)
				die(err)
				if origin != cache.OriginDisk {
					die(fmt.Errorf("restore served from %s, not disk", origin))
				}
			})
			fmt.Printf("  cold/restore = %s\n", ratio(cold, restore))
		},
	}, {
		id: "e22", title: "irregular workloads: subscripted-subscript parallelization (SpMV, histogram, gather)",
		expect: "runtime-verified index-array claims admit parallel irregular loops: SpMV at 4 workers " +
			">= 1.5x over the claims-off (checked sequential) path; the verifier itself is one O(nnz) pass",
		run: func() {
			// Part 1: CSR SpMV. Without the index-property layer the
			// accumulation scatter through row cannot parallelize (or
			// drop its collision tracking); with verified monotone+range
			// claims it mono-shards across the pool. Both arms pay the
			// same per-run work otherwise, so the ratio is the price of
			// not knowing the index array's properties.
			spmvN := size(20000, 2000)
			spmv := workloads.CSRInputs(spmvN, 8, 22)
			nnz := spmv.Params["nnz"]
			mkOpts := func(c workloads.SparseCase, extra core.Options) core.Options {
				opts := extra
				opts.NoOptimize = *noopt
				opts.InputBounds = map[string]analysis.ArrayBounds{}
				for name, a := range c.Inputs {
					opts.InputBounds[name] = analysis.ArrayBounds{Lo: a.B.Lo, Hi: a.B.Hi}
				}
				return opts
			}
			compileCase := func(src string, c workloads.SparseCase, extra core.Options) *core.Program {
				p, err := core.Compile(src, c.Params, mkOpts(c, extra))
				die(err)
				return p
			}
			pOff := compileCase(workloads.SpMVSrc, spmv, core.Options{NoIdxProp: true, Parallel: true, Workers: 4})
			off := benchW(fmt.Sprintf("spmv claims-off nnz=%d", nnz), 4, func() { runP(pOff, spmv.Inputs) })
			for _, w := range workerCounts() {
				pw := compileCase(workloads.SpMVSrc, spmv, core.Options{Parallel: true, Workers: w})
				p := benchW(fmt.Sprintf("spmv par w=%d", w), w, func() { runP(pw, spmv.Inputs) })
				fmt.Printf("    claims-off/par(w=%d) = %s\n", w, ratio(off, p))
			}
			// The verifier's own cost: one pass over the row array —
			// the overhead every claim-conditional run pays before the
			// parallel region.
			rowData := spmv.Inputs["row"].Data
			rowClaims := idxprop.Claims{
				{Array: "row", Kind: idxprop.KMonoNonDec},
				{Array: "row", Kind: idxprop.KRange, Lo: 1, Hi: spmvN},
			}
			vf := bench(fmt.Sprintf("verify pass nnz=%d", nnz), func() {
				if v := idxprop.Verify(rowData, rowClaims); !v.OK {
					die(fmt.Errorf("CSR rows failed verification: %s", v.Reason))
				}
			})
			fmt.Printf("    verify share of claims-off run = %.1f%%\n", 100*vf/off)

			// Part 2: data-dependent histogram, pre-bucketed (monotone)
			// samples: same mono-shard story on an accumArray.
			histN := size(200000, 20000)
			hist := workloads.HistogramIdxInputs(histN, 512, 23, true)
			hOff := compileCase(workloads.HistogramIdxSrc, hist, core.Options{NoIdxProp: true, Parallel: true, Workers: 4})
			ho := benchW(fmt.Sprintf("histogram claims-off n=%d", histN), 4, func() { runP(hOff, hist.Inputs) })
			for _, w := range workerCounts() {
				hw := compileCase(workloads.HistogramIdxSrc, hist, core.Options{Parallel: true, Workers: w})
				p := benchW(fmt.Sprintf("histogram par w=%d", w), w, func() { runP(hw, hist.Inputs) })
				fmt.Printf("    claims-off/par(w=%d) = %s\n", w, ratio(ho, p))
			}

			// Part 3: adjacency gather. The write side is affine, so the
			// loop parallelizes either way; the range claim's value is
			// eliding the per-element bounds/integrality checks on the
			// indirect read.
			adjN := size(50000, 5000)
			adj := workloads.AdjInputs(adjN, 4*adjN, 24)
			gOff := compileCase(workloads.AdjGatherSrc, adj, core.Options{NoIdxProp: true, Parallel: true, Workers: 4})
			go4 := benchW(fmt.Sprintf("adjgather claims-off m=%d", 4*adjN), 4, func() { runP(gOff, adj.Inputs) })
			gOn := compileCase(workloads.AdjGatherSrc, adj, core.Options{Parallel: true, Workers: 4})
			gn := benchW(fmt.Sprintf("adjgather par w=%d", 4), 4, func() { runP(gOn, adj.Inputs) })
			fmt.Printf("    checked/unchecked = %s\n", ratio(go4, gn))

			// Part 4: the fallback tax. A shuffled (non-CSR) entry order
			// fails verification every run and takes the checked
			// sequential path — the cost of a violating index array is
			// one wasted verify pass, never a wrong answer.
			bad := workloads.ShuffleRows(spmv, 25)
			pBad := compileCase(workloads.SpMVSrc, bad, core.Options{Parallel: true, Workers: 4})
			fb := benchW(fmt.Sprintf("spmv violating fallback nnz=%d", nnz), 4, func() { runP(pBad, bad.Inputs) })
			fmt.Printf("    fallback/claims-off = %s (gate: ~1.0x)\n", ratio(fb, off))
		},
	}, {
		id: "e23", title: "streaming execution: bounded-memory chunked pipelines",
		expect: "a long bounded-distance chain streams through O(stages*chunk) ring windows: emit-mode " +
			"peak resident <= 25% of the materialized store at n >= 1e6, results bitwise-identical",
		run: func() {
			n := size(1<<20, 1<<17)
			// A 10-definition chain alternating elementwise maps,
			// backward/forward 3-point smoothing and carried d=1
			// recurrences — every read a constant-offset neighbour, so
			// the window-legality analysis admits the whole pipeline.
			var sb strings.Builder
			sb.WriteString("letrec* s1 = array (1,n) [ i := x!i + 1.0 | i <- [1..n] ]")
			prev := "s1"
			for k := 2; k <= 10; k++ {
				name := fmt.Sprintf("s%d", k)
				sb.WriteString(";\n  ")
				switch k % 3 {
				case 0: // 3-point smooth, copied edges (reads i-1, i, i+1)
					fmt.Fprintf(&sb,
						"%[1]s = array (1,n) ([ 1 := %[2]s!1 ] ++ [ i := (%[2]s!(i-1) + %[2]s!i + %[2]s!(i+1)) / 3.0 | i <- [2..n-1] ] ++ [ n := %[2]s!n ])",
						name, prev)
				case 1: // carried d=1 recurrence
					fmt.Fprintf(&sb,
						"%[1]s = array (1,n) ([ 1 := %[2]s!1 ] ++ [ i := %[1]s!(i-1) * 0.75 + %[2]s!i * 0.25 | i <- [2..n] ])",
						name, prev)
				case 2: // elementwise map
					fmt.Fprintf(&sb, "%s = array (1,n) [ i := %s!i * 0.5 + 0.25 | i <- [1..n] ]", name, prev)
				}
				prev = name
			}
			fmt.Fprintf(&sb, "\nin %s", prev)
			src := sb.String()
			params := map[string]int64{"n": n}
			in := workloads.Vector(n, 31)
			inputs := map[string]*runtime.Strict{"x": in}
			bounds := map[string]analysis.ArrayBounds{"x": {Lo: in.B.Lo, Hi: in.B.Hi}}
			pm := compileProg(src, params, core.Options{NoOptimize: *noopt, InputBounds: bounds})
			ps := compileProg(src, params, core.Options{NoOptimize: *noopt, Stream: true, InputBounds: bounds})
			if !ps.StreamActive() {
				die(fmt.Errorf("pipeline did not stream: %s", ps.StreamFallback()))
			}
			// Bitwise identity first — the mode's contract. One run each.
			want, err := pm.Run(inputs)
			die(err)
			got, tier, err := ps.RunTiered(inputs)
			die(err)
			if tier != core.TierStream {
				die(fmt.Errorf("streamed run reported tier %s, want stream", tier))
			}
			for i := range want.Data {
				if got.Data[i] != want.Data[i] {
					die(fmt.Errorf("streamed result diverges at element %d", i))
				}
			}
			m := bench(fmt.Sprintf("stream pipeline materialized n=%d", n), func() { runP(pm, inputs) })
			c := bench(fmt.Sprintf("stream pipeline collect n=%d", n), func() {
				_, _, err := ps.RunTiered(inputs)
				die(err)
			})
			discard := func(int64, []float64) error { return nil }
			e := bench(fmt.Sprintf("stream pipeline emit n=%d", n), func() {
				_, err := ps.RunStream(inputs, discard)
				die(err)
			})
			// Emit mode is the true streaming shape (/evalstream ships
			// chunks without materializing the result); its deterministic
			// accounting is what the 25% wall gates.
			rep, err := ps.RunStream(inputs, discard)
			die(err)
			record(fmt.Sprintf("stream peak-bytes n=%d", n), float64(rep.PeakBytes))
			record(fmt.Sprintf("stream materialized-bytes n=%d", n), float64(rep.MaterializedBytes))
			fmt.Printf("  stages=%d chunk=%d window_d=%d chunks=%d\n", rep.Stages, rep.ChunkSize, rep.MaxDist, rep.Chunks)
			fmt.Printf("  peak/materialized = %.1f%% (gate: <= 25%%), collect/materialized = %s, emit/materialized = %s\n",
				100*float64(rep.PeakBytes)/float64(rep.MaterializedBytes), ratio(c, m), ratio(e, m))
		},
	},
}

func compileProg(src string, params map[string]int64, opts core.Options) *core.Program {
	p, err := core.Compile(src, params, opts)
	die(err)
	return p
}

func mkDepthProblem(d int) deptest.Problem {
	a := make([]int64, d)
	b := make([]int64, d)
	m := make([]int64, d)
	for k := 0; k < d; k++ {
		a[k] = int64(k + 1)
		b[k] = int64(k + 2)
		m[k] = 10
	}
	return deptest.NewProblem(0, a, 1, b, m)
}

func printGraph(res *analysis.Result) {
	edges := append([]depgraph.Edge(nil), res.Graph.Edges...)
	sort.Slice(edges, func(i, j int) bool { return edges[i].String() < edges[j].String() })
	for _, e := range edges {
		fmt.Printf("  edge: clause%d -> clause%d %s %s\n", e.Src, e.Dst, e.Kind, e.Dir)
	}
}

func indent(s, prefix string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i, l := range lines {
		lines[i] = prefix + l
	}
	return strings.Join(lines, "\n") + "\n"
}
