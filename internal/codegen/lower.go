package codegen

import (
	"fmt"
	"time"

	"arraycomp/internal/analysis"
	"arraycomp/internal/idxprop"
	"arraycomp/internal/lang"
	"arraycomp/internal/loopir"
	"arraycomp/internal/runtime"
	"arraycomp/internal/schedule"
)

// CheckCounts tallies the runtime checks a lowering emitted — the
// quantities the paper's optimizations exist to drive to zero.
type CheckCounts struct {
	CollisionChecks int
	BoundsChecks    int
	DefinedChecks   int
	EmptiesSweeps   int
}

// Plan is a fully lowered, compiled, runnable array program.
type Plan struct {
	Program *loopir.Program
	Exec    *loopir.Exec
	// Checks counts emitted runtime checks.
	Checks CheckCounts
	// Notes records lowering decisions (tier choices, check elisions).
	Notes []string
	// InPlace reports that the plan updates its input array in place
	// (bigupd with single-threaded scheduling).
	InPlace bool
	// Opt reports what the loop-IR optimizer did (nil under NoOptimize).
	Opt *loopir.OptStats
	// OptTime is the time spent in the loop-IR optimizer, so callers
	// can split "lower" from "optimize" in per-phase compile reports.
	OptTime time.Duration
}

// Run executes the plan.
func (p *Plan) Run(inputs map[string]*runtime.Strict) (*runtime.Strict, error) {
	return p.Exec.RunResult(inputs)
}

// LowerOptions tunes lowering.
type LowerOptions struct {
	// Parallel emits dependence-free loop passes as parallel loops
	// (the section 10 extension). Only the outermost eligible loop of
	// a nest is sharded, and only when the plan uses no shared scalar
	// state or definedness bitmaps.
	Parallel bool
	// ForceChecks keeps collision, definedness, bounds, and empties
	// checks in the plan even when the analysis proved them redundant
	// (differential-testing ablation: on programs the reference
	// semantics accepts, the forced checks must never fire).
	ForceChecks bool
	// NoOptimize skips the loop-IR optimizer (fusion, invariant
	// hoisting, strength reduction): the lowered nest compiles and
	// emits exactly as built. Used as an oracle ablation arm and to
	// show the unoptimized IR (`hacc ir` without -O).
	NoOptimize bool
	// Workers fixes the parallel worker budget of the compiled
	// executable. 0 means decide per run (GOMAXPROCS); 1 forces
	// sequential execution even of parallel-scheduled loops.
	Workers int
	// NoStencil disables the stencil specializer (guard splitting,
	// footprint annotation, and the interior kernels keyed on the
	// annotation) while keeping the rest of the optimizer — the
	// `stencil` oracle ablation arm.
	NoStencil bool
	// NoIdxProp disables the subscripted-subscript conditional layer:
	// no claim-assuming plan, no runtime verifier, every indirect
	// subscript stays on the fully checked sequential path (the
	// `idxprop` oracle ablation arm).
	NoIdxProp bool
}

// lowerer carries lowering state.
type lowerer struct {
	res      *analysis.Result
	sched    *schedule.Result
	external map[string]analysis.ArrayBounds
	opts     LowerOptions
	// inParallel suppresses nested parallel marks.
	inParallel bool
	prog       *loopir.Program
	plan       *Plan
	// selfIR is the IR name of the array being built/updated.
	selfIR string
	// trackDefs / checkCollision / checkEmpties per the analysis.
	trackDefs      bool
	checkCollision bool
	accum          runtime.CombineFunc
	// cond is the claim-assumed re-analysis driving dual lowering
	// (nil when absent or disabled); condActive marks the pass
	// currently lowering the claim-assuming variant.
	cond       *analysis.CondResult
	condActive bool
	// declTrack records whether the output declaration carries a
	// definedness bitmap (either variant may need it; the one that
	// does not marks its assigns NoTrack).
	declTrack bool
	// monoAlign is captured by the accumulation clause during the
	// claim-assuming pass and attached to its enclosing loop as a
	// mono-shard schedule.
	monoAlign *loopir.IIdx
	// hooks from node splitting.
	hooks *splitHooks
	// scalarSeq generates unique scalar names.
	scalarSeq int
}

// splitHooks carries node-splitting insertions keyed by schedule
// positions and clause IDs.
type splitHooks struct {
	// beforeLoop stmts run once before the keyed loop pass.
	beforeLoop map[*schedule.Node][]loopir.Stmt
	// instanceStart stmts run at the start of every instance of the
	// keyed loop pass.
	instanceStart map[*schedule.Node][]loopir.Stmt
	// clauseSaves emits extra stores between rhs evaluation and the
	// main write for the keyed clause: each entry is (dst array, dst
	// subs, src VExpr) evaluated in clause scope.
	clauseSaves map[int][]saveStmt
	// clauseAfter stmts run after the keyed clause's write.
	clauseAfter map[int][]loopir.Stmt
	// readRepl / readTarget redirections for the expression translator.
	readRepl   map[*lang.Index]loopir.VExpr
	readTarget map[*lang.Index]string
}

// saveStmt stores rhs into either an array element or a scalar,
// sequenced between a clause's rhs evaluation and its write.
type saveStmt struct {
	array  string // non-empty for array saves
	subs   []loopir.IntExpr
	scalar string // non-empty for scalar saves
	rhs    loopir.VExpr
}

func (s saveStmt) stmt() loopir.Stmt {
	if s.scalar != "" {
		return &loopir.SetScalar{Name: s.scalar, Rhs: s.rhs}
	}
	return &loopir.Assign{Array: s.array, Subs: s.subs, Rhs: s.rhs}
}

func newSplitHooks() *splitHooks {
	return &splitHooks{
		beforeLoop:    map[*schedule.Node][]loopir.Stmt{},
		instanceStart: map[*schedule.Node][]loopir.Stmt{},
		clauseSaves:   map[int][]saveStmt{},
		clauseAfter:   map[int][]loopir.Stmt{},
		readRepl:      map[*lang.Index]loopir.VExpr{},
		readTarget:    map[*lang.Index]string{},
	}
}

func boundsToRuntime(b analysis.ArrayBounds) runtime.Bounds {
	return runtime.Bounds{Lo: append([]int64(nil), b.Lo...), Hi: append([]int64(nil), b.Hi...)}
}

// Lower turns a scheduled analysis result into an executable plan.
// external gives the bounds of arrays the definition reads. The
// schedule must not be thunked (use NewThunkedPlan for that path).
func Lower(res *analysis.Result, sched *schedule.Result, external map[string]analysis.ArrayBounds, opts ...LowerOptions) (*Plan, error) {
	if sched.Thunked {
		return nil, fmt.Errorf("codegen: schedule is thunked (%s); use the thunked evaluator", sched.Reason)
	}
	if res.Collision == analysis.Yes && res.Def.Kind == lang.Monolithic {
		return nil, fmt.Errorf("codegen: %s", res.CollisionDetail)
	}
	var o LowerOptions
	if len(opts) > 0 {
		o = opts[0]
	}
	lw := &lowerer{
		res:      res,
		sched:    sched,
		external: external,
		opts:     o,
		plan:     &Plan{},
		hooks:    newSplitHooks(),
	}
	lw.prog = &loopir.Program{Name: res.Def.Name}
	lw.plan.Program = lw.prog

	// Declare arrays.
	switch res.Def.Kind {
	case lang.BigUpd:
		lw.selfIR = res.Def.Source
		lw.prog.Arrays = append(lw.prog.Arrays, loopir.ArrayDecl{
			Name: lw.selfIR, B: boundsToRuntime(res.Bounds), Role: loopir.RoleInOut,
		})
		lw.plan.InPlace = true
	default:
		lw.selfIR = res.Def.Name
		lw.cond = res.Cond
		if o.ForceChecks || o.NoIdxProp {
			lw.cond = nil
		}
		lw.trackDefs = lw.slowTrack()
		lw.declTrack = lw.trackDefs
		if lw.cond != nil {
			if lw.cond.AllStatic() {
				lw.declTrack = lw.fastTrack()
			} else {
				lw.declTrack = lw.trackDefs || lw.fastTrack()
			}
		}
		lw.checkCollision = res.Def.Kind == lang.Monolithic && (res.Collision == analysis.Maybe || o.ForceChecks)
		lw.prog.Arrays = append(lw.prog.Arrays, loopir.ArrayDecl{
			Name: lw.selfIR, B: boundsToRuntime(res.Bounds), Role: loopir.RoleOut, TrackDefs: lw.declTrack,
		})
	}
	for name := range res.ExternalReads {
		b, ok := external[name]
		if !ok {
			return nil, fmt.Errorf("codegen: no bounds known for external array %q", name)
		}
		lw.prog.Arrays = append(lw.prog.Arrays, loopir.ArrayDecl{
			Name: name, B: boundsToRuntime(b), Role: loopir.RoleIn,
		})
	}

	if res.Def.Kind == lang.Accumulated {
		comb, ok := runtime.Combiner(res.Def.Accum.Combine)
		if !ok {
			return nil, fmt.Errorf("codegen: unknown combining function %q", res.Def.Accum.Combine)
		}
		lw.accum = comb
		lw.prog.AccumOp = res.Def.Accum.Combine
		init, err := lw.baseXlate().valueExpr(res.Def.Accum.Init)
		if err != nil {
			return nil, err
		}
		c, isConst := init.(*loopir.VConst)
		if !isConst {
			return nil, fmt.Errorf("codegen: accumArray default must be a constant")
		}
		if c.Value != 0 {
			lw.prog.Stmts = append(lw.prog.Stmts, &loopir.Fill{Array: lw.selfIR, Value: c.Value})
		}
	}

	// Node splitting for bigupd (may add temps, hooks, redirections).
	if res.Def.Kind == lang.BigUpd {
		if err := lw.planSplits(); err != nil {
			return nil, err
		}
	}

	if lw.cond == nil {
		stmts, err := lw.lowerVariant(false)
		if err != nil {
			return nil, err
		}
		lw.prog.Stmts = append(lw.prog.Stmts, stmts...)

		if lw.trackDefs && (!lw.res.NoEmpties || o.ForceChecks) {
			if lw.res.NoEmpties {
				lw.note("empties excluded statically but checks forced: bitmap + sweep compiled")
			} else {
				lw.note("empties not excluded statically: definedness bitmap + final sweep compiled")
			}
		}
		if lw.res.NoEmpties && !o.ForceChecks {
			lw.note("empties excluded statically: no definedness checks")
		}
		if lw.res.Collision == analysis.No && res.Def.Kind == lang.Monolithic && !o.ForceChecks {
			lw.note("write collisions excluded statically: no collision checks")
		}
	} else if err := lw.lowerDual(); err != nil {
		return nil, err
	}

	if !o.NoOptimize {
		t0 := time.Now()
		st := loopir.OptimizeWith(lw.prog, loopir.OptOptions{NoStencil: o.NoStencil})
		lw.plan.OptTime = time.Since(t0)
		lw.plan.Opt = st
		if st.Changed() {
			lw.note("optimizer: %s", st)
		}
	}

	ex, err := loopir.Compile(lw.prog)
	if err != nil {
		return nil, err
	}
	ex.SetWorkers(o.Workers)
	lw.plan.Exec = ex
	return lw.plan, nil
}

// slowTrack / fastTrack decide whether a variant needs the
// definedness bitmap: the unconditional verdicts for the checked
// variant, the claim-assumed verdicts for the claim-assuming one.
func (lw *lowerer) slowTrack() bool {
	return lw.res.Def.Kind == lang.Monolithic &&
		(!lw.res.NoEmpties || lw.res.Collision == analysis.Maybe || lw.opts.ForceChecks)
}

func (lw *lowerer) fastTrack() bool {
	return lw.res.Def.Kind == lang.Monolithic &&
		(!lw.cond.NoEmpties || lw.cond.Collision == analysis.Maybe)
}

// effCollision / effWriteInBounds / effReadInBounds answer for the
// variant being lowered: the claim-assuming pass consults the
// conditional re-analysis first.
func (lw *lowerer) effCollision() analysis.Verdict {
	if lw.condActive {
		return lw.cond.Collision
	}
	return lw.res.Collision
}

func (lw *lowerer) effWriteInBounds(cl int) bool {
	if lw.condActive && lw.cond.WriteInBounds[cl] {
		return true
	}
	return lw.res.WriteInBounds[cl]
}

func (lw *lowerer) effReadInBounds(rd *analysis.ReadRef) bool {
	if lw.condActive && lw.cond.ReadInBounds[rd] {
		return true
	}
	return lw.res.ReadInBounds[rd]
}

// lowerVariant lowers the scheduled nodes once, under either the
// unconditional verdicts (condActive false: every indirect subscript
// checked) or the claim-assumed ones (condActive true: trusted index
// arrays load unchecked, collision/empties elided per the conditional
// re-analysis), appending the variant's own empties sweep when its
// verdicts require one.
func (lw *lowerer) lowerVariant(condActive bool) ([]loopir.Stmt, error) {
	lw.condActive = condActive
	lw.monoAlign = nil
	if condActive {
		lw.trackDefs = lw.fastTrack()
		lw.checkCollision = lw.res.Def.Kind == lang.Monolithic && lw.cond.Collision == analysis.Maybe
	} else {
		lw.trackDefs = lw.slowTrack()
		lw.checkCollision = lw.res.Def.Kind == lang.Monolithic && (lw.res.Collision == analysis.Maybe || lw.opts.ForceChecks)
	}
	stmts, err := lw.lowerNodes(lw.sched.Nodes, lw.baseXlate())
	if err != nil {
		return nil, err
	}
	noEmpties := lw.res.NoEmpties
	if condActive {
		noEmpties = lw.cond.NoEmpties
	}
	if lw.trackDefs && (!noEmpties || lw.opts.ForceChecks) {
		stmts = append(stmts, &loopir.CheckFull{Array: lw.selfIR})
		lw.plan.Checks.EmptiesSweeps++
	}
	lw.condActive = false
	return stmts, nil
}

// lowerDual lowers the claim-assuming and the fully checked variants
// and merges them under the runtime verifier guard: `if verify(idx)
// then fast else slow`. When every claim was discharged statically the
// checked variant is not built at all. The plan's check counters
// report the claim-assuming variant — those are the checks the
// conditional analysis elides.
func (lw *lowerer) lowerDual() error {
	checks0 := lw.plan.Checks
	fast, err := lw.lowerVariant(true)
	if err != nil {
		return err
	}
	fastChecks := lw.plan.Checks
	if lw.cond.AllStatic() {
		lw.prog.Stmts = append(lw.prog.Stmts, fast...)
		lw.note("idxprop: claims %s proven statically; claim-assuming plan compiled unconditionally", lw.cond.Claims)
		return nil
	}
	slow, err := lw.lowerVariant(false)
	if err != nil {
		return err
	}
	runtimeClaims := lw.cond.Claims.Runtime()
	lw.prog.Stmts = append(lw.prog.Stmts, &loopir.If{
		Cond: verifyGuard(runtimeClaims),
		Then: fast,
		Else: slow,
	})
	lw.note("idxprop: %s; runtime verifier guards the claim-assuming plan, fallback fully checked", lw.cond.Detail)
	// Report the claim-assuming variant's checks: the slow variant
	// exists only as the verifier-failure fallback.
	slowChecks := diffChecks(lw.plan.Checks, fastChecks)
	lw.plan.Checks = diffChecks(fastChecks, checks0)
	lw.note("idxprop: fallback path keeps %d collision, %d bounds, %d definedness checks and %d empties sweeps",
		slowChecks.CollisionChecks, slowChecks.BoundsChecks, slowChecks.DefinedChecks, slowChecks.EmptiesSweeps)
	return nil
}

func diffChecks(a, b CheckCounts) CheckCounts {
	return CheckCounts{
		CollisionChecks: a.CollisionChecks - b.CollisionChecks,
		BoundsChecks:    a.BoundsChecks - b.BoundsChecks,
		DefinedChecks:   a.DefinedChecks - b.DefinedChecks,
		EmptiesSweeps:   a.EmptiesSweeps - b.EmptiesSweeps,
	}
}

// verifyGuard builds the conjunction of per-array runtime verifier
// guards over the given (runtime) claims.
func verifyGuard(claims idxprop.Claims) loopir.BExpr {
	var cond loopir.BExpr
	for _, arr := range claims.Arrays() {
		b := &loopir.BVerify{Array: arr, Claims: claims.ForArray(arr)}
		if cond == nil {
			cond = loopir.BExpr(b)
		} else {
			cond = &loopir.BAnd{L: cond, R: b}
		}
	}
	return cond
}

// cloneInt deep-copies the IntExpr shapes the lowerer produces (the
// mono-shard alignment expression must not share nodes with the loop
// body the optimizer rewrites).
func cloneInt(e loopir.IntExpr) loopir.IntExpr {
	switch x := e.(type) {
	case *loopir.IConst:
		return &loopir.IConst{Value: x.Value}
	case *loopir.IVar:
		return &loopir.IVar{Name: x.Name}
	case *loopir.ILin:
		cp := &loopir.ILin{Const: x.Const, Terms: append([]loopir.ITerm(nil), x.Terms...)}
		return cp
	case *loopir.IBin:
		return &loopir.IBin{Op: x.Op, L: cloneInt(x.L), R: cloneInt(x.R)}
	case *loopir.IIdx:
		cp := &loopir.IIdx{Array: x.Array, CheckBounds: x.CheckBounds}
		for _, s := range x.Subs {
			cp.Subs = append(cp.Subs, cloneInt(s))
		}
		return cp
	}
	return nil
}

func (lw *lowerer) note(format string, args ...any) {
	lw.plan.Notes = append(lw.plan.Notes, fmt.Sprintf(format, args...))
}

func (lw *lowerer) freshScalar(prefix string) string {
	lw.scalarSeq++
	name := fmt.Sprintf("%s$%d", prefix, lw.scalarSeq)
	lw.prog.Scalars = append(lw.prog.Scalars, name)
	return name
}

func (lw *lowerer) baseXlate() *xlate {
	var trusted map[string]bool
	if lw.condActive {
		trusted = lw.cond.Trusted
	}
	return &xlate{
		env:        lw.res.Env,
		idxTrusted: trusted,
		indexVars:  map[string]bool{},
		arrayName: func(surface string) (string, error) {
			if surface == lw.res.Def.Name || surface == lw.res.Def.Source {
				return lw.selfIR, nil
			}
			if _, ok := lw.res.ExternalReads[surface]; ok {
				return surface, nil
			}
			return "", fmt.Errorf("codegen: unknown array %q", surface)
		},
		refFlags: func(ix *lang.Index) (bool, bool) {
			var rd *analysis.ReadRef
			for _, cl := range lw.res.Clauses {
				for _, r := range cl.Reads {
					if r.Ix == ix {
						rd = r
					}
				}
			}
			cb, cd := true, false
			if rd != nil {
				cb = !lw.effReadInBounds(rd) || lw.opts.ForceChecks
			}
			if lw.trackDefs && (ix.Array == lw.res.Def.Name && lw.res.Def.Kind != lang.BigUpd) {
				cd = true
			}
			if cb {
				lw.plan.Checks.BoundsChecks++
			}
			if cd {
				lw.plan.Checks.DefinedChecks++
			}
			return cb, cd
		},
		readRepl:   lw.hooks.readRepl,
		readTarget: lw.hooks.readTarget,
	}
}

func (x *xlate) withIndexVar(v string) *xlate {
	out := *x
	out.indexVars = make(map[string]bool, len(x.indexVars)+1)
	for k := range x.indexVars {
		out.indexVars[k] = true
	}
	out.indexVars[v] = true
	return &out
}

// lowerNodes lowers an ordered node sequence in the given scope.
func (lw *lowerer) lowerNodes(nodes []*schedule.Node, x *xlate) ([]loopir.Stmt, error) {
	var out []loopir.Stmt
	for _, n := range nodes {
		stmts, err := lw.lowerNode(n, x)
		if err != nil {
			return nil, err
		}
		out = append(out, stmts...)
	}
	return out, nil
}

func (lw *lowerer) lowerNode(n *schedule.Node, x *xlate) ([]loopir.Stmt, error) {
	if n.IsLoop() {
		return lw.lowerLoop(n, x)
	}
	return lw.lowerClause(n.Clause, x)
}

func (lw *lowerer) lowerLoop(n *schedule.Node, x *xlate) ([]loopir.Stmt, error) {
	l := n.Loop.Loop
	parallel := lw.parallelEligible(n)
	doacross := !parallel && lw.doacrossEligible(n)
	wasInParallel := lw.inParallel
	if parallel || doacross {
		lw.inParallel = true
	}
	inner := x.withIndexVar(l.Var).withLets(n.Loop.Lets)
	body, err := lw.lowerNodes(n.Body, inner)
	lw.inParallel = wasInParallel
	if err != nil {
		return nil, err
	}
	if pre := lw.hooks.instanceStart[n]; len(pre) > 0 {
		body = append(append([]loopir.Stmt(nil), pre...), body...)
	}
	var from, to, step int64
	last := l.ValueAt(l.Trip())
	if n.Dir == schedule.Backward {
		from, to, step = last, l.First, -l.Stride
	} else {
		from, to, step = l.First, last, l.Stride
	}
	if parallel {
		lw.note("loop %s parallelized (no carried dependences)", l.Var)
	} else if doacross {
		lw.note("loop %s is doacross-eligible (carried dependences follow the pass direction)", l.Var)
	}
	loopStmt := &loopir.Loop{Var: l.Var, From: from, To: to, Step: step, Parallel: parallel, Doacross: doacross, Body: body}
	if lw.monoAlign != nil && !lw.inParallel {
		// The accumulation clause below this loop captured its indirect
		// write subscript: shard on chunks aligned to equal-value runs
		// (sound under the mono + range claims guarding this variant).
		loopStmt.Par = &loopir.ParSchedule{Kind: loopir.ParMonoShard, AlignOn: lw.monoAlign}
		lw.monoAlign = nil
		lw.note("loop %s mono-shard scheduled (chunks aligned on %s runs)", l.Var, lw.cond.MonoArray)
	}
	stmt := loopir.Stmt(loopStmt)
	// Guards on the loop node condition the whole loop.
	stmt, err = lw.wrapGuards(n.Loop.Guards, x.withLets(n.Loop.Lets), stmt)
	if err != nil {
		return nil, err
	}
	out := append([]loopir.Stmt(nil), lw.hooks.beforeLoop[n]...)
	return append(out, stmt), nil
}

// parallelEligible decides whether a schedule-parallel loop pass may
// actually be emitted parallel: the plan must have no shared mutable
// state beyond disjoint array elements — no definedness bitmaps (their
// flag writes would race under possible collisions), no accumulation
// into possibly-shared elements, no node-splitting hooks (their
// carried scalars/buffers are sequential state) — and only the
// outermost eligible loop of a nest is sharded.
func (lw *lowerer) parallelEligible(n *schedule.Node) bool {
	if !lw.opts.Parallel || !n.Parallel || lw.inParallel {
		return false
	}
	return lw.parSafeState()
}

// doacrossEligible mirrors parallelEligible for loops the scheduler
// marked Doacross: the carried dependences all follow the pass
// direction, so the optimizer's planning pass may still find a legal
// pipelined schedule (wavefront, chains) after checking the concrete
// distances. The same shared-state restrictions apply.
func (lw *lowerer) doacrossEligible(n *schedule.Node) bool {
	if !lw.opts.Parallel || !n.Doacross || lw.inParallel {
		return false
	}
	return lw.parSafeState()
}

// parSafeState reports that the plan has no shared mutable state beyond
// disjoint array elements.
func (lw *lowerer) parSafeState() bool {
	if lw.trackDefs {
		return false
	}
	if lw.accum != nil && lw.effCollision() != analysis.No {
		return false
	}
	if len(lw.hooks.clauseSaves) > 0 || len(lw.hooks.instanceStart) > 0 ||
		len(lw.hooks.beforeLoop) > 0 || len(lw.hooks.clauseAfter) > 0 {
		return false
	}
	return true
}

func (lw *lowerer) wrapGuards(guards []lang.Expr, x *xlate, stmt loopir.Stmt) (loopir.Stmt, error) {
	for i := len(guards) - 1; i >= 0; i-- {
		cond, err := x.boolExpr(guards[i])
		if err != nil {
			return nil, err
		}
		stmt = &loopir.If{Cond: cond, Then: []loopir.Stmt{stmt}}
	}
	return stmt, nil
}

func (lw *lowerer) lowerClause(cl *analysis.FlatClause, x *xlate) ([]loopir.Stmt, error) {
	cx := x.withLets(cl.Node.Lets)
	subs, err := lw.writeSubs(cl, cx)
	if err != nil {
		return nil, err
	}
	rhs, err := cx.valueExpr(cl.Clause.Value)
	if err != nil {
		return nil, err
	}
	checkBounds := !lw.effWriteInBounds(cl.ID) || lw.opts.ForceChecks
	if checkBounds {
		lw.plan.Checks.BoundsChecks++
	}
	var stmts []loopir.Stmt
	saves := lw.hooks.clauseSaves[cl.ID]
	if len(saves) > 0 {
		// Node-split sequencing: evaluate the rhs first, then save the
		// old values the future reads need, then write.
		tmp := lw.freshScalar("v")
		stmts = append(stmts, &loopir.SetScalar{Name: tmp, Rhs: rhs})
		for _, s := range saves {
			stmts = append(stmts, s.stmt())
		}
		rhs = &loopir.VScalar{Name: tmp}
	}
	assign := &loopir.Assign{
		Array:       lw.selfIR,
		Subs:        subs,
		Rhs:         rhs,
		CheckBounds: checkBounds,
		NoTrack:     lw.declTrack && !lw.trackDefs,
	}
	if lw.condActive && lw.cond.MonoAccum && lw.accum != nil && lw.opts.Parallel {
		if iidx, ok := subs[0].(*loopir.IIdx); ok && iidx.Array == lw.cond.MonoArray {
			lw.monoAlign = cloneInt(iidx).(*loopir.IIdx)
		}
	}
	if lw.accum != nil {
		assign.Accumulate = lw.accum
		assign.HasAccum = true
	} else if lw.checkCollision {
		assign.CheckCollision = true
		lw.plan.Checks.CollisionChecks++
	}
	stmts = append(stmts, assign)
	stmts = append(stmts, lw.hooks.clauseAfter[cl.ID]...)
	// Clause-level guards.
	if len(cl.Node.Guards) > 0 {
		var conds []loopir.BExpr
		for _, g := range cl.Node.Guards {
			c, err := cx.boolExpr(g)
			if err != nil {
				return nil, err
			}
			conds = append(conds, c)
		}
		cond := conds[0]
		for _, c := range conds[1:] {
			cond = &loopir.BAnd{L: cond, R: c}
		}
		return []loopir.Stmt{&loopir.If{Cond: cond, Then: stmts}}, nil
	}
	return stmts, nil
}

// writeSubs translates a clause's write subscripts, using the affine
// fast path when available.
func (lw *lowerer) writeSubs(cl *analysis.FlatClause, x *xlate) ([]loopir.IntExpr, error) {
	if cl.WriteAffine {
		subs := make([]loopir.IntExpr, len(cl.WriteForms))
		for d, form := range cl.WriteForms {
			lin := &loopir.ILin{Const: form.Const}
			for _, v := range form.Vars() {
				lin.Terms = append(lin.Terms, loopir.ITerm{Var: v, Coeff: form.CoeffOf(v)})
			}
			subs[d] = lin
		}
		return subs, nil
	}
	subs := make([]loopir.IntExpr, len(cl.Clause.Subs))
	for d, s := range cl.Clause.Subs {
		se, err := x.subExpr(s)
		if err != nil {
			return nil, err
		}
		subs[d] = se
	}
	return subs, nil
}
