package codegen

import (
	"fmt"

	"arraycomp/internal/lang"
	"arraycomp/internal/loopir"
)

// xlate translates surface expressions into loop-IR expressions.
// Scalar parameters fold to constants; let bindings are inlined;
// selected array reads can be redirected (node splitting).
type xlate struct {
	// env binds scalar parameters.
	env map[string]int64
	// indexVars are the loop variables in scope.
	indexVars map[string]bool
	// lets are inlined bindings (innermost shadowing applied on entry).
	lets map[string]lang.Expr
	// arrayName maps surface array names to IR array names (e.g. both
	// a bigupd's source and defined name to the in-place array).
	arrayName func(string) (string, error)
	// refFlags decides runtime checks per read.
	refFlags func(ix *lang.Index) (checkBounds, checkDefined bool)
	// readRepl replaces specific reads with a fixed value expression
	// (node-splitting scalar temps).
	readRepl map[*lang.Index]loopir.VExpr
	// readTarget redirects specific reads to a different IR array with
	// the same subscripts (node-splitting shadow/old arrays).
	readTarget map[*lang.Index]string
	// idxTrusted lists index arrays whose range claims are assumed by
	// this lowering (static proof, or a runtime verifier guarding the
	// branch): their indirect subscript loads skip the bounds and
	// integrality checks. nil means every indirect load is checked.
	idxTrusted map[string]bool
}

func (x *xlate) withLets(binds []lang.Binding) *xlate {
	if len(binds) == 0 {
		return x
	}
	out := *x
	out.lets = make(map[string]lang.Expr, len(x.lets)+len(binds))
	for k, v := range x.lets {
		out.lets[k] = v
	}
	for _, b := range binds {
		out.lets[b.Name] = b.Rhs
	}
	return &out
}

// errNotInt marks expressions that cannot be translated to integers.
type errNotInt struct{ e lang.Expr }

func (e *errNotInt) Error() string {
	return fmt.Sprintf("codegen: not an integer expression: %s", lang.ExprString(e.e))
}

// intExpr translates an expression in integer position (subscripts,
// guard operands). It folds parameters, inlines lets, and prefers the
// affine ILin form where the shape allows it.
func (x *xlate) intExpr(e lang.Expr) (loopir.IntExpr, error) {
	raw, err := x.intTree(e)
	if err != nil {
		return nil, err
	}
	return simplifyInt(raw), nil
}

func (x *xlate) intTree(e lang.Expr) (loopir.IntExpr, error) {
	switch n := e.(type) {
	case *lang.IntLit:
		return &loopir.IConst{Value: n.Value}, nil
	case *lang.Var:
		if rhs, ok := x.lets[n.Name]; ok {
			sub := *x
			sub.lets = withoutBinding(x.lets, n.Name)
			return sub.intTree(rhs)
		}
		if x.indexVars[n.Name] {
			return &loopir.IVar{Name: n.Name}, nil
		}
		if v, ok := x.env[n.Name]; ok {
			return &loopir.IConst{Value: v}, nil
		}
		return nil, fmt.Errorf("codegen: unbound variable %q at %s", n.Name, n.Pos())
	case *lang.UnOp:
		if n.Op != lang.OpNeg {
			return nil, &errNotInt{e}
		}
		inner, err := x.intTree(n.X)
		if err != nil {
			return nil, err
		}
		return &loopir.IBin{Op: '-', L: &loopir.IConst{}, R: inner}, nil
	case *lang.BinOp:
		var op byte
		switch n.Op {
		case lang.OpAdd:
			op = '+'
		case lang.OpSub:
			op = '-'
		case lang.OpMul:
			op = '*'
		case lang.OpMod:
			op = '%'
		default:
			// '/' is float division in the surface language and is
			// deliberately not integer-translatable.
			return nil, &errNotInt{e}
		}
		l, err := x.intTree(n.L)
		if err != nil {
			return nil, err
		}
		r, err := x.intTree(n.R)
		if err != nil {
			return nil, err
		}
		return &loopir.IBin{Op: op, L: l, R: r}, nil
	case *lang.Let:
		return x.withLets(n.Binds).intTree(n.Body)
	}
	return nil, &errNotInt{e}
}

// subExpr translates an expression in subscript position: like
// intExpr, except that a bare array read is allowed and becomes an
// indirect subscript load (IIdx) — the subscripted-subscript form
// out!(idx!(g)). Indirection must be the whole subscript; arithmetic
// around an indirect load is not translated.
func (x *xlate) subExpr(e lang.Expr) (loopir.IntExpr, error) {
	if ix, ok := e.(*lang.Index); ok {
		return x.indexSub(ix)
	}
	return x.intExpr(e)
}

// indexSub translates an array read used as a subscript. Checked by
// default: the load verifies its own subscripts are in bounds and the
// value is integral. Arrays in idxTrusted skip both checks — a range
// claim (statically proven or runtime-verified on this branch) already
// guarantees them.
func (x *xlate) indexSub(ix *lang.Index) (loopir.IntExpr, error) {
	name, err := x.arrayName(ix.Array)
	if err != nil {
		return nil, fmt.Errorf("%v at %s", err, ix.Pos())
	}
	subs := make([]loopir.IntExpr, len(ix.Subs))
	for i, s := range ix.Subs {
		se, err := x.intExpr(s) // nested indirection is not supported
		if err != nil {
			return nil, err
		}
		subs[i] = se
	}
	return &loopir.IIdx{Array: name, Subs: subs, CheckBounds: !x.idxTrusted[name]}, nil
}

func withoutBinding(lets map[string]lang.Expr, name string) map[string]lang.Expr {
	out := make(map[string]lang.Expr, len(lets))
	for k, v := range lets {
		if k != name {
			out[k] = v
		}
	}
	return out
}

// simplifyInt folds an IBin tree of +,-,* over constants and variables
// into the affine ILin fast path where possible.
func simplifyInt(e loopir.IntExpr) loopir.IntExpr {
	lin, ok := tryLinear(e)
	if !ok {
		// Recurse into children to linearize subtrees.
		if b, isBin := e.(*loopir.IBin); isBin {
			return &loopir.IBin{Op: b.Op, L: simplifyInt(b.L), R: simplifyInt(b.R)}
		}
		return e
	}
	if len(lin.Terms) == 0 {
		// A term-less linear form is just a constant; keep it as one so
		// constant-position checks (accumArray defaults, trip counts)
		// recognize it.
		return &loopir.IConst{Value: lin.Const}
	}
	return lin
}

// tryLinear converts the expression to Const + Σ coeff·var if it is
// affine.
func tryLinear(e loopir.IntExpr) (*loopir.ILin, bool) {
	type linForm struct {
		c     int64
		coeff map[string]int64
	}
	var walk func(e loopir.IntExpr) (linForm, bool)
	walk = func(e loopir.IntExpr) (linForm, bool) {
		switch n := e.(type) {
		case *loopir.IConst:
			return linForm{c: n.Value}, true
		case *loopir.IVar:
			return linForm{coeff: map[string]int64{n.Name: 1}}, true
		case *loopir.ILin:
			f := linForm{c: n.Const, coeff: map[string]int64{}}
			for _, t := range n.Terms {
				f.coeff[t.Var] += t.Coeff
			}
			return f, true
		case *loopir.IBin:
			l, okL := walk(n.L)
			r, okR := walk(n.R)
			if !okL || !okR {
				return linForm{}, false
			}
			switch n.Op {
			case '+', '-':
				sign := int64(1)
				if n.Op == '-' {
					sign = -1
				}
				out := linForm{c: l.c + sign*r.c, coeff: map[string]int64{}}
				for v, k := range l.coeff {
					out.coeff[v] += k
				}
				for v, k := range r.coeff {
					out.coeff[v] += sign * k
				}
				return out, true
			case '*':
				if len(l.coeff) == 0 {
					out := linForm{c: l.c * r.c, coeff: map[string]int64{}}
					for v, k := range r.coeff {
						out.coeff[v] = k * l.c
					}
					return out, true
				}
				if len(r.coeff) == 0 {
					out := linForm{c: l.c * r.c, coeff: map[string]int64{}}
					for v, k := range l.coeff {
						out.coeff[v] = k * r.c
					}
					return out, true
				}
				return linForm{}, false
			}
			return linForm{}, false
		}
		return linForm{}, false
	}
	f, ok := walk(e)
	if !ok {
		return nil, false
	}
	lin := &loopir.ILin{Const: f.c}
	for _, v := range sortedKeys(f.coeff) {
		if f.coeff[v] != 0 {
			lin.Terms = append(lin.Terms, loopir.ITerm{Var: v, Coeff: f.coeff[v]})
		}
	}
	return lin, true
}

func sortedKeys(m map[string]int64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// valueExpr translates an expression in value (float) position.
func (x *xlate) valueExpr(e lang.Expr) (loopir.VExpr, error) {
	// Integer-only expressions become float conversions of the integer
	// translation (e.g. `i*i` as an element value).
	if ie, err := x.intExpr(e); err == nil {
		if c, isConst := ie.(*loopir.IConst); isConst {
			return &loopir.VConst{Value: float64(c.Value)}, nil
		}
		return &loopir.VFromInt{X: ie}, nil
	}
	switch n := e.(type) {
	case *lang.FloatLit:
		return &loopir.VConst{Value: n.Value}, nil
	case *lang.IntLit:
		return &loopir.VConst{Value: float64(n.Value)}, nil
	case *lang.Var:
		if rhs, ok := x.lets[n.Name]; ok {
			sub := *x
			sub.lets = withoutBinding(x.lets, n.Name)
			return sub.valueExpr(rhs)
		}
		if v, ok := x.env[n.Name]; ok {
			return &loopir.VConst{Value: float64(v)}, nil
		}
		return nil, fmt.Errorf("codegen: unbound variable %q at %s", n.Name, n.Pos())
	case *lang.UnOp:
		if n.Op != lang.OpNeg {
			return nil, fmt.Errorf("codegen: operator %s in value position at %s", n.Op, n.Pos())
		}
		inner, err := x.valueExpr(n.X)
		if err != nil {
			return nil, err
		}
		return &loopir.VNeg{X: inner}, nil
	case *lang.BinOp:
		var op byte
		switch n.Op {
		case lang.OpAdd:
			op = '+'
		case lang.OpSub:
			op = '-'
		case lang.OpMul:
			op = '*'
		case lang.OpDiv:
			op = '/'
		default:
			return nil, fmt.Errorf("codegen: operator %s in value position at %s", n.Op, n.Pos())
		}
		l, err := x.valueExpr(n.L)
		if err != nil {
			return nil, err
		}
		r, err := x.valueExpr(n.R)
		if err != nil {
			return nil, err
		}
		return &loopir.VBin{Op: op, L: l, R: r}, nil
	case *lang.Index:
		return x.indexRead(n)
	case *lang.Call:
		args := make([]loopir.VExpr, len(n.Args))
		for i, a := range n.Args {
			v, err := x.valueExpr(a)
			if err != nil {
				return nil, err
			}
			args[i] = v
		}
		return &loopir.VCall{Fn: n.Fn, Args: args}, nil
	case *lang.Cond:
		c, err := x.boolExpr(n.C)
		if err != nil {
			return nil, err
		}
		th, err := x.valueExpr(n.T)
		if err != nil {
			return nil, err
		}
		el, err := x.valueExpr(n.E)
		if err != nil {
			return nil, err
		}
		return &loopir.VCond{C: c, T: th, E: el}, nil
	case *lang.Let:
		return x.withLets(n.Binds).valueExpr(n.Body)
	}
	return nil, fmt.Errorf("codegen: cannot translate %T in value position", e)
}

// indexRead translates an array selection, honoring read redirection
// and per-reference check flags.
func (x *xlate) indexRead(ix *lang.Index) (loopir.VExpr, error) {
	if repl, ok := x.readRepl[ix]; ok && repl != nil {
		return repl, nil
	}
	var irName string
	if target, ok := x.readTarget[ix]; ok {
		irName = target
	} else {
		name, err := x.arrayName(ix.Array)
		if err != nil {
			return nil, fmt.Errorf("%v at %s", err, ix.Pos())
		}
		irName = name
	}
	subs := make([]loopir.IntExpr, len(ix.Subs))
	for i, s := range ix.Subs {
		se, err := x.subExpr(s)
		if err != nil {
			return nil, err
		}
		subs[i] = se
	}
	cb, cd := false, false
	if x.refFlags != nil {
		cb, cd = x.refFlags(ix)
	}
	return &loopir.ARef{Array: irName, Subs: subs, CheckBounds: cb, CheckDefined: cd}, nil
}

// boolExpr translates guards and conditionals. Comparisons between
// integer-translatable operands use integer comparison; otherwise both
// sides are floats.
func (x *xlate) boolExpr(e lang.Expr) (loopir.BExpr, error) {
	switch n := e.(type) {
	case *lang.BinOp:
		if n.Op.IsComparison() {
			li, lerr := x.intExpr(n.L)
			ri, rerr := x.intExpr(n.R)
			if lerr == nil && rerr == nil {
				return &loopir.BCmpInt{Op: n.Op.String(), L: li, R: ri}, nil
			}
			lf, err := x.valueExpr(n.L)
			if err != nil {
				return nil, err
			}
			rf, err := x.valueExpr(n.R)
			if err != nil {
				return nil, err
			}
			return &loopir.BCmpFloat{Op: n.Op.String(), L: lf, R: rf}, nil
		}
		switch n.Op {
		case lang.OpAnd, lang.OpOr:
			l, err := x.boolExpr(n.L)
			if err != nil {
				return nil, err
			}
			r, err := x.boolExpr(n.R)
			if err != nil {
				return nil, err
			}
			if n.Op == lang.OpAnd {
				return &loopir.BAnd{L: l, R: r}, nil
			}
			return &loopir.BOr{L: l, R: r}, nil
		}
		return nil, fmt.Errorf("codegen: operator %s in boolean position at %s", n.Op, n.Pos())
	case *lang.UnOp:
		if n.Op == lang.OpNot {
			inner, err := x.boolExpr(n.X)
			if err != nil {
				return nil, err
			}
			return &loopir.BNot{X: inner}, nil
		}
	case *lang.Let:
		return x.withLets(n.Binds).boolExpr(n.Body)
	}
	return nil, fmt.Errorf("codegen: cannot translate %T in boolean position", e)
}
