package codegen

import (
	"fmt"

	"arraycomp/internal/affine"
	"arraycomp/internal/analysis"
	"arraycomp/internal/deptest"
	"arraycomp/internal/loopir"
	"arraycomp/internal/runtime"
	"arraycomp/internal/schedule"
)

// Node splitting (paper section 9): after scheduling a bigupd with its
// anti edges relaxed, every anti dependence the schedule violates —
// a read of the old contents whose element is overwritten before the
// read executes — is repaired by materializing the old value:
//
//   - tier "scalar": the kill happens in the same loop instance, after
//     the reading clause was scheduled past the killer; one scalar per
//     instance saved at instance start (the LINPACK row-swap shape).
//   - tier "pipeline": the kill happened exactly one iteration earlier
//     in the innermost loop; a scalar carried across iterations (the
//     inner half of the Jacobi shape).
//   - tier "rowbuf": the kill happened exactly one iteration earlier
//     in the outer loop of a two-level nest, same inner position; a
//     vector temporary holding the previous outer instance's old
//     values (the outer half of the Jacobi shape).
//   - tier "copy": everything else; the whole source array is copied
//     at entry (the paper's naive compilation the better tiers beat by
//     a factor of the loop extent).

// schedPath is a clause's position in the schedule tree.
type schedPath struct {
	nodes []*schedule.Node // from a root node down to the clause leaf
	pos   []int            // sibling index of nodes[i] within its parent body
}

// buildPaths indexes every clause's schedule path.
func buildPaths(sched *schedule.Result) map[int]schedPath {
	out := map[int]schedPath{}
	var walk func(nodes []*schedule.Node, prefixN []*schedule.Node, prefixP []int)
	walk = func(nodes []*schedule.Node, prefixN []*schedule.Node, prefixP []int) {
		for i, n := range nodes {
			pn := append(append([]*schedule.Node(nil), prefixN...), n)
			pp := append(append([]int(nil), prefixP...), i)
			if n.IsLoop() {
				walk(n.Body, pn, pp)
				continue
			}
			out[n.Clause.ID] = schedPath{nodes: pn, pos: pp}
		}
	}
	walk(sched.Nodes, nil, nil)
	return out
}

// loopNodesOf returns the loop pass nodes on a clause's path,
// outermost first.
func (p schedPath) loopNodes() []*schedule.Node {
	var out []*schedule.Node
	for _, n := range p.nodes {
		if n.IsLoop() {
			out = append(out, n)
		}
	}
	return out
}

// EdgeSatisfied reports whether the schedule executes every source
// instance before its sink instance for a dependence from clause srcID
// to clause dstID under the given direction vector. This is the
// correctness condition of thunkless compilation (flow edges), order
// preservation (output edges) and copy-free updates (anti edges).
func EdgeSatisfied(paths map[int]schedPath, srcID, dstID int, dir deptest.Vector) bool {
	rp, ok1 := paths[srcID]
	wp, ok2 := paths[dstID]
	if !ok1 || !ok2 {
		return false
	}
	loopIdx := 0
	for d := 0; ; d++ {
		if d >= len(rp.nodes) || d >= len(wp.nodes) {
			// Same clause, paths exhausted together: same instance,
			// and a clause evaluates its reads before its write.
			return true
		}
		if rp.nodes[d] != wp.nodes[d] {
			// Siblings (possibly split passes of the same source
			// loop): the earlier subtree runs to completion first.
			return rp.pos[d] < wp.pos[d]
		}
		n := rp.nodes[d]
		if !n.IsLoop() {
			// Identical clause leaf: same instance.
			return true
		}
		if loopIdx >= len(dir) {
			return false // defensive: unknown relation
		}
		switch dir[loopIdx] {
		case deptest.DirEqual:
			loopIdx++
			continue
		case deptest.DirLess:
			// Source instance earlier: executed first iff forward.
			return n.Dir == schedule.Forward
		case deptest.DirGreater:
			return n.Dir == schedule.Backward
		default:
			return false
		}
	}
}

// BuildSchedPaths exposes the schedule position index for validation.
func BuildSchedPaths(sched *schedule.Result) map[int]schedPath {
	return buildPaths(sched)
}

// antiSatisfied reports whether the schedule executes the reading
// instance before the killing write for every instance pair admitted
// by the direction vector.
func antiSatisfied(paths map[int]schedPath, dep analysis.AntiDep) bool {
	return EdgeSatisfied(paths, dep.Read.Clause.ID, dep.Writer, dep.Dep.Dir)
}

// planSplits inspects every anti dependence under the chosen schedule
// and installs the repairs.
func (lw *lowerer) planSplits() error {
	paths := buildPaths(lw.sched)
	violated := map[*analysis.ReadRef][]analysis.AntiDep{}
	for _, dep := range lw.res.AntiDeps {
		if !antiSatisfied(paths, dep) {
			violated[dep.Read] = append(violated[dep.Read], dep)
		}
	}
	if len(violated) == 0 {
		lw.note("all anti dependences satisfied by the schedule: in-place update with no copying")
		return nil
	}
	var copyReads []*analysis.ReadRef
	for rd, deps := range violated {
		tier := lw.classifySplit(paths, rd, deps)
		switch tier {
		case "scalar":
			if err := lw.splitScalar(paths, rd, deps); err != nil {
				return err
			}
		case "pipeline":
			if err := lw.splitPipeline(paths, rd); err != nil {
				return err
			}
		case "rowbuf":
			if err := lw.splitRowBuf(paths, rd); err != nil {
				return err
			}
		default:
			copyReads = append(copyReads, rd)
		}
	}
	if len(copyReads) > 0 {
		lw.splitFullCopy(copyReads)
	}
	return nil
}

// classifySplit picks the cheapest applicable tier for a read.
func (lw *lowerer) classifySplit(paths map[int]schedPath, rd *analysis.ReadRef, deps []analysis.AntiDep) string {
	if !rd.Affine {
		return "copy"
	}
	if tier, ok := lw.classifyInstanceKill(paths, rd, deps); ok {
		return tier
	}
	if tier, ok := lw.classifyCarriedKill(paths, rd, deps); ok {
		return tier
	}
	return "copy"
}

// classifyInstanceKill recognizes the same-instance tier: every
// violated kill happens within the same instance of every shared loop,
// the read's subscripts use only those shared loops, and reader and
// writers traverse the same pass nodes.
func (lw *lowerer) classifyInstanceKill(paths map[int]schedPath, rd *analysis.ReadRef, deps []analysis.AntiDep) (string, bool) {
	reader := rd.Clause
	rp := paths[reader.ID]
	for _, dep := range deps {
		if !dep.Dep.Dir.SelfEqual() {
			return "", false
		}
		wp := paths[dep.Writer]
		// Reader and writer must share pass nodes for every shared
		// source loop: the divergence level must have consumed all of
		// the vector.
		common := 0
		loops := 0
		for common < len(rp.nodes) && common < len(wp.nodes) && rp.nodes[common] == wp.nodes[common] {
			if rp.nodes[common].IsLoop() {
				loops++
			}
			common++
		}
		if loops < len(dep.Dep.Dir) {
			return "", false
		}
	}
	// The read's element must be fixed within a shared instance: its
	// subscripts may use only the shared-prefix loops common with every
	// violated writer.
	sharedVars := map[string]bool{}
	first := true
	for _, dep := range deps {
		writer := lw.res.Clauses[dep.Writer]
		n := analysis.SharedLen(reader, writer)
		vars := map[string]bool{}
		for k := 0; k < n; k++ {
			vars[reader.Nest[k].Var] = true
		}
		if first {
			sharedVars = vars
			first = false
		} else {
			for v := range sharedVars {
				if !vars[v] {
					delete(sharedVars, v)
				}
			}
		}
	}
	for _, form := range rd.Forms {
		for _, v := range form.Vars() {
			if !sharedVars[v] {
				return "", false
			}
		}
	}
	return "scalar", true
}

// killDelta computes the uniform per-loop source-space distance δ such
// that the instance y = x + δ of the (self) writer kills the element
// read at instance x, requiring translation-shaped subscripts.
func killDelta(rd *analysis.ReadRef, writer *analysis.FlatClause) (map[string]int64, bool) {
	if !writer.WriteAffine || len(rd.Forms) != len(writer.WriteForms) {
		return nil, false
	}
	delta := map[string]int64{}
	covered := map[string]bool{}
	for d := range rd.Forms {
		rf, wf := rd.Forms[d], writer.WriteForms[d]
		rv, wv := rf.Vars(), wf.Vars()
		if len(rv) != 1 || len(wv) != 1 || rv[0] != wv[0] {
			return nil, false
		}
		v := rv[0]
		k := wf.CoeffOf(v)
		if k == 0 || k != rf.CoeffOf(v) {
			return nil, false
		}
		diff := rf.Const - wf.Const
		if diff%k != 0 {
			return nil, false // no integral kill instance: cannot be uniform
		}
		d := diff / k
		if prev, ok := delta[v]; ok && prev != d {
			return nil, false
		}
		delta[v] = d
		covered[v] = true
	}
	// Every loop of the clause must be pinned by some dimension,
	// otherwise the kill instance is not unique.
	for _, l := range writer.Nest {
		if !covered[l.Var] {
			return nil, false
		}
	}
	return delta, true
}

// execOffset converts a source-space delta on one loop into "killer
// executed m iterations earlier" (m > 0) under the scheduled
// direction, or fails.
func execOffset(l affine.Loop, dir schedule.Direction, delta int64) (int64, bool) {
	if delta%l.Stride != 0 {
		return 0, false
	}
	q := delta / l.Stride // iteration-space delta of the killer
	if dir == schedule.Backward {
		q = -q
	}
	// Killer executed earlier ⇔ q < 0; m = −q.
	return -q, true
}

// classifyCarriedKill recognizes the pipeline and rowbuf tiers: a
// single self kill exactly one iteration earlier on one loop level.
func (lw *lowerer) classifyCarriedKill(paths map[int]schedPath, rd *analysis.ReadRef, deps []analysis.AntiDep) (string, bool) {
	reader := rd.Clause
	for _, dep := range deps {
		if dep.Writer != reader.ID {
			return "", false
		}
	}
	delta, ok := killDelta(rd, reader)
	if !ok {
		return "", false
	}
	loops := paths[reader.ID].loopNodes()
	if len(loops) != len(reader.Nest) {
		return "", false
	}
	var offsets []int64
	for i, l := range reader.Nest {
		m, ok := execOffset(l, loops[i].Dir, delta[l.Var])
		if !ok {
			return "", false
		}
		offsets = append(offsets, m)
	}
	n := len(offsets)
	if n >= 1 && offsets[n-1] == 1 {
		inner := true
		for _, m := range offsets[:n-1] {
			if m != 0 {
				inner = false
			}
		}
		if inner {
			return "pipeline", true
		}
	}
	if n == 2 && offsets[0] == 1 && offsets[1] == 0 {
		return "rowbuf", true
	}
	return "", false
}

// formToILin converts an affine subscript form to the IR fast path.
func formToILin(f affine.Form) *loopir.ILin {
	lin := &loopir.ILin{Const: f.Const}
	for _, v := range f.Vars() {
		lin.Terms = append(lin.Terms, loopir.ITerm{Var: v, Coeff: f.CoeffOf(v)})
	}
	return lin
}

func formsToSubs(forms []affine.Form) []loopir.IntExpr {
	subs := make([]loopir.IntExpr, len(forms))
	for i, f := range forms {
		subs[i] = formToILin(f)
	}
	return subs
}

// substFormVar folds a loop variable to a constant inside a form.
func substFormVar(f affine.Form, v string, val int64) affine.Form {
	k := f.CoeffOf(v)
	if k == 0 {
		return f
	}
	out := affine.Form{Const: f.Const + k*val, Coeff: map[string]int64{}}
	for _, w := range f.Vars() {
		if w != v {
			out.Coeff[w] = f.CoeffOf(w)
		}
	}
	return out
}

// formsInBounds reports whether subscript forms provably stay within
// the self array over the given loops (loops absent from the list are
// assumed absent from the forms).
func (lw *lowerer) formsInBounds(forms []affine.Form, nest affine.Nest) bool {
	if len(forms) != lw.res.Bounds.Rank() {
		return false
	}
	for d, f := range forms {
		lo, hi := f.Const, f.Const
		for _, v := range f.Vars() {
			idx := nest.Index(v)
			if idx < 0 {
				return false
			}
			l := nest[idx]
			a := l.First
			b := l.ValueAt(l.Trip())
			if a > b {
				a, b = b, a
			}
			k := f.CoeffOf(v)
			if k >= 0 {
				lo += k * a
				hi += k * b
			} else {
				lo += k * b
				hi += k * a
			}
		}
		if lo < lw.res.Bounds.Lo[d] || hi > lw.res.Bounds.Hi[d] {
			return false
		}
	}
	return true
}

// splitScalar installs the same-instance tier: one scalar per violated
// read, saved at the start of the deepest shared instance.
func (lw *lowerer) splitScalar(paths map[int]schedPath, rd *analysis.ReadRef, deps []analysis.AntiDep) error {
	reader := rd.Clause
	rp := paths[reader.ID]
	// Deepest common loop pass node with all violated writers.
	depth := len(rp.nodes)
	for _, dep := range deps {
		wp := paths[dep.Writer]
		common := 0
		for common < len(rp.nodes) && common < len(wp.nodes) && rp.nodes[common] == wp.nodes[common] {
			common++
		}
		if common < depth {
			depth = common
		}
	}
	var anchor *schedule.Node
	for d := 0; d < depth; d++ {
		if rp.nodes[d].IsLoop() {
			anchor = rp.nodes[d]
		}
	}
	s := lw.freshScalar("save")
	save := &loopir.SetScalar{Name: s, Rhs: &loopir.ARef{
		Array: lw.selfIR, Subs: formsToSubs(rd.Forms),
	}}
	if anchor != nil {
		lw.hooks.instanceStart[anchor] = append(lw.hooks.instanceStart[anchor], save)
	} else {
		lw.prog.Stmts = append(lw.prog.Stmts, save)
	}
	lw.hooks.readRepl[rd.Ix] = &loopir.VScalar{Name: s}
	lw.note("node splitting: %s!%s saved to a per-instance scalar (same-instance kill)", rd.Ix.Array, loopir.IntExprString(formsToSubs(rd.Forms)[0]))
	return nil
}

// splitPipeline installs the innermost distance-1 tier.
func (lw *lowerer) splitPipeline(paths map[int]schedPath, rd *analysis.ReadRef) error {
	reader := rd.Clause
	loops := paths[reader.ID].loopNodes()
	innerNode := loops[len(loops)-1]
	innerLoop := reader.Nest[len(reader.Nest)-1]
	prev := lw.freshScalar("prev")
	cur := lw.freshScalar("cur")
	// Initialize prev with the read's value at the first executed inner
	// iteration, when provably in bounds.
	firstVal := innerLoop.First
	if innerNode.Dir == schedule.Backward {
		firstVal = innerLoop.ValueAt(innerLoop.Trip())
	}
	initForms := make([]affine.Form, len(rd.Forms))
	for d, f := range rd.Forms {
		initForms[d] = substFormVar(f, innerLoop.Var, firstVal)
	}
	if lw.formsInBounds(initForms, reader.Nest[:len(reader.Nest)-1]) {
		lw.hooks.beforeLoop[innerNode] = append(lw.hooks.beforeLoop[innerNode],
			&loopir.SetScalar{Name: prev, Rhs: &loopir.ARef{Array: lw.selfIR, Subs: formsToSubs(initForms)}})
	}
	lw.hooks.clauseSaves[reader.ID] = append(lw.hooks.clauseSaves[reader.ID],
		saveStmt{scalar: cur, rhs: &loopir.ARef{Array: lw.selfIR, Subs: formsToSubs(reader.WriteForms)}})
	lw.hooks.clauseAfter[reader.ID] = append(lw.hooks.clauseAfter[reader.ID],
		&loopir.SetScalar{Name: prev, Rhs: &loopir.VScalar{Name: cur}})
	lw.hooks.readRepl[rd.Ix] = &loopir.VScalar{Name: prev}
	lw.note("node splitting: %s read pipelined through a carried scalar (inner distance 1)", rd.Ix.Array)
	return nil
}

// splitRowBuf installs the outer distance-1 tier for two-level nests.
func (lw *lowerer) splitRowBuf(paths map[int]schedPath, rd *analysis.ReadRef) error {
	reader := rd.Clause
	loops := paths[reader.ID].loopNodes()
	outerNode, innerNode := loops[0], loops[1]
	outerLoop, innerLoop := reader.Nest[0], reader.Nest[1]
	_ = innerNode
	// Buffer over the inner loop's source value range.
	lo, hi := innerLoop.First, innerLoop.ValueAt(innerLoop.Trip())
	if lo > hi {
		lo, hi = hi, lo
	}
	buf := fmt.Sprintf("rowbuf$%d", len(lw.prog.Arrays))
	lw.prog.Arrays = append(lw.prog.Arrays, loopir.ArrayDecl{
		Name: buf, B: runtime.NewBounds1(lo, hi), Role: loopir.RoleTemp,
	})
	innerKey := []loopir.IntExpr{&loopir.ILin{Terms: []loopir.ITerm{{Var: innerLoop.Var, Coeff: 1}}}}
	// Initialize with the read's values at the first executed outer
	// iteration.
	firstOuter := outerLoop.First
	if outerNode.Dir == schedule.Backward {
		firstOuter = outerLoop.ValueAt(outerLoop.Trip())
	}
	initForms := make([]affine.Form, len(rd.Forms))
	for d, f := range rd.Forms {
		initForms[d] = substFormVar(f, outerLoop.Var, firstOuter)
	}
	if lw.formsInBounds(initForms, affine.Nest{innerLoop}) {
		initLoop := &loopir.Loop{
			Var: innerLoop.Var, From: innerLoop.First, To: innerLoop.ValueAt(innerLoop.Trip()), Step: innerLoop.Stride,
			Body: []loopir.Stmt{&loopir.Assign{
				Array: buf, Subs: innerKey,
				Rhs: &loopir.ARef{Array: lw.selfIR, Subs: formsToSubs(initForms)},
			}},
		}
		lw.hooks.beforeLoop[outerNode] = append(lw.hooks.beforeLoop[outerNode], initLoop)
	}
	lw.hooks.clauseSaves[reader.ID] = append(lw.hooks.clauseSaves[reader.ID],
		saveStmt{array: buf, subs: innerKey, rhs: &loopir.ARef{Array: lw.selfIR, Subs: formsToSubs(reader.WriteForms)}})
	lw.hooks.readRepl[rd.Ix] = &loopir.ARef{Array: buf, Subs: innerKey}
	lw.note("node splitting: %s read buffered through a row temporary (outer distance 1)", rd.Ix.Array)
	return nil
}

// splitFullCopy installs the naive tier: copy the source at entry and
// redirect the reads.
func (lw *lowerer) splitFullCopy(reads []*analysis.ReadRef) {
	old := "old$" + lw.selfIR
	lw.prog.Arrays = append(lw.prog.Arrays, loopir.ArrayDecl{
		Name: old, B: boundsToRuntime(lw.res.Bounds), Role: loopir.RoleTemp,
	})
	lw.prog.Stmts = append(lw.prog.Stmts, &loopir.CopyArray{Dst: old, Src: lw.selfIR})
	for _, rd := range reads {
		lw.hooks.readTarget[rd.Ix] = old
	}
	lw.note("node splitting: %d read(s) fall back to a whole-array entry copy", len(reads))
}
