package codegen

import (
	"fmt"

	"arraycomp/internal/analysis"
	"arraycomp/internal/lang"
	"arraycomp/internal/runtime"
)

// ThunkedPlan evaluates one definition with the general (expensive)
// representations: non-strict thunked arrays for monolithic
// definitions, eager fold with a snapshot for bigupd, eager
// accumulation for accumArray. It is both the fallback when no safe
// static schedule exists and the reference semantics the compiled
// plans are differential-tested against.
type ThunkedPlan struct {
	res *analysis.Result
}

// NewThunkedPlan wraps an analysis result for thunked evaluation.
func NewThunkedPlan(res *analysis.Result) *ThunkedPlan {
	return &ThunkedPlan{res: res}
}

// instance is one clause instance discovered by tree enumeration.
type instance struct {
	cl   *analysis.FlatClause
	s    scope
	subs []int64
}

// enumerate walks the normalized tree, binding generators and
// evaluating guards, and yields clause instances in list order.
func (p *ThunkedPlan) enumerate(ev *evaluator, visit func(inst instance) error) error {
	var walk func(nodes []*analysis.TreeNode, s scope) error
	walk = func(nodes []*analysis.TreeNode, s scope) error {
		for _, n := range nodes {
			ns := s.withLets(n.Lets)
			ok := true
			for _, g := range n.Guards {
				v, err := ev.evalBool(g, ns)
				if err != nil {
					return err
				}
				if !v {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			if n.IsLoop() {
				l := n.Loop
				for t := int64(1); t <= l.Trip(); t++ {
					inner := scope{ints: copyInts(ns.ints), lets: ns.lets}
					inner.ints[l.Var] = l.ValueAt(t)
					if err := walk(n.Children, inner); err != nil {
						return err
					}
				}
				continue
			}
			cl := n.Clause
			subs := make([]int64, len(cl.Clause.Subs))
			for i, se := range cl.Clause.Subs {
				v, err := ev.evalInt(se, ns)
				if err != nil {
					return err
				}
				subs[i] = v
			}
			if err := visit(instance{cl: cl, s: ns, subs: subs}); err != nil {
				return err
			}
		}
		return nil
	}
	return walk(p.res.Roots, scope{ints: map[string]int64{}})
}

func copyInts(m map[string]int64) map[string]int64 {
	out := make(map[string]int64, len(m)+1)
	for k, v := range m {
		out[k] = v
	}
	return out
}

// Run evaluates the definition. inputs must supply every external
// array and, for bigupd, the source array (which is not modified: the
// thunked path is the persistent baseline).
func (p *ThunkedPlan) Run(inputs map[string]*runtime.Strict) (*runtime.Strict, error) {
	switch p.res.Def.Kind {
	case lang.Monolithic:
		return p.runMonolithic(inputs)
	case lang.Accumulated:
		return p.runAccum(inputs)
	case lang.BigUpd:
		return p.runBigupd(inputs)
	}
	return nil, fmt.Errorf("codegen: unknown definition kind %v", p.res.Def.Kind)
}

func strictAccessor(a *runtime.Strict) func([]int64) (float64, error) {
	return func(subs []int64) (float64, error) {
		off, err := a.B.LinearChecked(subs)
		if err != nil {
			return 0, err
		}
		return a.Data[off], nil
	}
}

func (p *ThunkedPlan) baseEvaluator(inputs map[string]*runtime.Strict) (*evaluator, error) {
	ev := &evaluator{
		params: p.res.Env,
		arrays: map[string]func([]int64) (float64, error){},
	}
	for name := range p.res.ExternalReads {
		in, ok := inputs[name]
		if !ok {
			return nil, fmt.Errorf("codegen: thunked run missing input array %q", name)
		}
		ev.arrays[name] = strictAccessor(in)
	}
	return ev, nil
}

func (p *ThunkedPlan) bounds() runtime.Bounds {
	return boundsToRuntime(p.res.Bounds)
}

func (p *ThunkedPlan) runMonolithic(inputs map[string]*runtime.Strict) (*runtime.Strict, error) {
	ev, err := p.baseEvaluator(inputs)
	if err != nil {
		return nil, err
	}
	arr := runtime.NewNonStrict(p.bounds())
	ev.arrays[p.res.Def.Name] = func(subs []int64) (float64, error) {
		return arr.At(subs...)
	}
	err = p.enumerate(ev, func(inst instance) error {
		cl, s := inst.cl, inst.s
		return arr.Define(inst.subs, func() (float64, error) {
			return ev.evalFloat(cl.Clause.Value, s)
		})
	})
	if err != nil {
		return nil, err
	}
	// letrec* strict context: force every element.
	return arr.ForceElements()
}

func (p *ThunkedPlan) runAccum(inputs map[string]*runtime.Strict) (*runtime.Strict, error) {
	ev, err := p.baseEvaluator(inputs)
	if err != nil {
		return nil, err
	}
	comb, ok := runtime.Combiner(p.res.Def.Accum.Combine)
	if !ok {
		return nil, fmt.Errorf("codegen: unknown combining function %q", p.res.Def.Accum.Combine)
	}
	initEv := &evaluator{params: p.res.Env}
	init, err := initEv.evalFloat(p.res.Def.Accum.Init, scope{})
	if err != nil {
		return nil, err
	}
	acc := runtime.NewAccum(p.bounds(), comb, init)
	err = p.enumerate(ev, func(inst instance) error {
		if refersTo(inst.cl, p.res.Def.Name) {
			return fmt.Errorf("codegen: accumArray %s may not read itself", p.res.Def.Name)
		}
		v, err := ev.evalFloat(inst.cl.Clause.Value, inst.s)
		if err != nil {
			return err
		}
		return acc.Add(inst.subs, v)
	})
	if err != nil {
		return nil, err
	}
	return acc.Freeze(), nil
}

func refersTo(cl *analysis.FlatClause, array string) bool {
	for _, rd := range cl.Reads {
		if rd.Ix.Array == array {
			return true
		}
	}
	return false
}

func (p *ThunkedPlan) runBigupd(inputs map[string]*runtime.Strict) (*runtime.Strict, error) {
	ev, err := p.baseEvaluator(inputs)
	if err != nil {
		return nil, err
	}
	src, ok := inputs[p.res.Def.Source]
	if !ok {
		return nil, fmt.Errorf("codegen: thunked bigupd missing source array %q", p.res.Def.Source)
	}
	orig := src.Clone()   // the old contents every `source` read sees
	result := src.Clone() // the evolving fold state
	ev.arrays[p.res.Def.Source] = strictAccessor(orig)
	ev.arrays[p.res.Def.Name] = strictAccessor(result)
	err = p.enumerate(ev, func(inst instance) error {
		v, err := ev.evalFloat(inst.cl.Clause.Value, inst.s)
		if err != nil {
			return err
		}
		off, err := result.B.LinearChecked(inst.subs)
		if err != nil {
			return err
		}
		result.Data[off] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return result, nil
}

// RunThunkedGroup evaluates a set of mutually recursive monolithic
// definitions together: each array is represented non-strictly and the
// thunks may force elements of any array in the group (the paper's
// letrec* with multiple bindings). All arrays are then forced.
func RunThunkedGroup(group []*analysis.Result, inputs map[string]*runtime.Strict) (map[string]*runtime.Strict, error) {
	arrays := map[string]*runtime.NonStrict{}
	groupNames := map[string]bool{}
	for _, res := range group {
		groupNames[res.Def.Name] = true
	}
	evs := make([]*evaluator, len(group))
	plans := make([]*ThunkedPlan, len(group))
	for i, res := range group {
		if res.Def.Kind != lang.Monolithic {
			return nil, fmt.Errorf("codegen: %s: only monolithic arrays may be mutually recursive", res.Def.Name)
		}
		plans[i] = NewThunkedPlan(res)
		ev := &evaluator{params: res.Env, arrays: map[string]func([]int64) (float64, error){}}
		for name := range res.ExternalReads {
			if groupNames[name] {
				continue // wired below as a group member
			}
			in, ok := inputs[name]
			if !ok {
				return nil, fmt.Errorf("codegen: thunked group run missing input array %q", name)
			}
			ev.arrays[name] = strictAccessor(in)
		}
		arrays[res.Def.Name] = runtime.NewNonStrict(plans[i].bounds())
		evs[i] = ev
	}
	// Wire every group member's accessor into every evaluator (the
	// definitions may reference each other in any direction).
	for _, ev := range evs {
		for name, arr := range arrays {
			arr := arr
			ev.arrays[name] = func(subs []int64) (float64, error) {
				return arr.At(subs...)
			}
		}
	}
	for i, res := range group {
		ev := evs[i]
		arr := arrays[res.Def.Name]
		err := plans[i].enumerate(ev, func(inst instance) error {
			cl, s := inst.cl, inst.s
			return arr.Define(inst.subs, func() (float64, error) {
				return ev.evalFloat(cl.Clause.Value, s)
			})
		})
		if err != nil {
			return nil, err
		}
	}
	out := map[string]*runtime.Strict{}
	for name, arr := range arrays {
		s, err := arr.ForceElements()
		if err != nil {
			return nil, fmt.Errorf("codegen: forcing %s: %w", name, err)
		}
		out[name] = s
	}
	return out, nil
}
