package codegen

import (
	"fmt"
	"math"

	"arraycomp/internal/lang"
)

// evaluator is the reference tree-walking interpreter for surface
// expressions, used by the thunked fallback path (and, transitively,
// as the semantics oracle the compiled plans are tested against).
type evaluator struct {
	params map[string]int64
	// arrays resolves array selections; the closure for a non-strict
	// array forces the element.
	arrays map[string]func(subs []int64) (float64, error)
}

// scope is the local binding environment of one clause instance.
type scope struct {
	ints map[string]int64
	lets map[string]lang.Expr
}

func (s scope) withLets(binds []lang.Binding) scope {
	if len(binds) == 0 {
		return s
	}
	out := scope{ints: s.ints, lets: make(map[string]lang.Expr, len(s.lets)+len(binds))}
	for k, v := range s.lets {
		out.lets[k] = v
	}
	for _, b := range binds {
		out.lets[b.Name] = b.Rhs
	}
	return out
}

func (s scope) withoutLet(name string) scope {
	out := scope{ints: s.ints, lets: make(map[string]lang.Expr, len(s.lets))}
	for k, v := range s.lets {
		if k != name {
			out.lets[k] = v
		}
	}
	return out
}

func (ev *evaluator) evalInt(e lang.Expr, s scope) (int64, error) {
	switch n := e.(type) {
	case *lang.IntLit:
		return n.Value, nil
	case *lang.Var:
		if rhs, ok := s.lets[n.Name]; ok {
			return ev.evalInt(rhs, s.withoutLet(n.Name))
		}
		if v, ok := s.ints[n.Name]; ok {
			return v, nil
		}
		if v, ok := ev.params[n.Name]; ok {
			return v, nil
		}
		return 0, fmt.Errorf("eval: unbound integer variable %q at %s", n.Name, n.Pos())
	case *lang.UnOp:
		if n.Op != lang.OpNeg {
			return 0, fmt.Errorf("eval: %s in integer position", n.Op)
		}
		v, err := ev.evalInt(n.X, s)
		return -v, err
	case *lang.BinOp:
		l, err := ev.evalInt(n.L, s)
		if err != nil {
			return 0, err
		}
		r, err := ev.evalInt(n.R, s)
		if err != nil {
			return 0, err
		}
		switch n.Op {
		case lang.OpAdd:
			return l + r, nil
		case lang.OpSub:
			return l - r, nil
		case lang.OpMul:
			return l * r, nil
		case lang.OpMod:
			if r == 0 {
				return 0, fmt.Errorf("eval: mod by zero at %s", n.Pos())
			}
			return l % r, nil
		}
		return 0, fmt.Errorf("eval: %s in integer position at %s", n.Op, n.Pos())
	case *lang.Let:
		return ev.evalInt(n.Body, s.withLets(n.Binds))
	case *lang.Cond:
		c, err := ev.evalBool(n.C, s)
		if err != nil {
			return 0, err
		}
		if c {
			return ev.evalInt(n.T, s)
		}
		return ev.evalInt(n.E, s)
	case *lang.Index:
		// Subscripted subscript: an array element used as an index.
		// The element must hold an exact integer — a fractional
		// subscript has no sound integer reading, matching the compiled
		// plans' checked IIdx semantics.
		v, err := ev.evalFloat(e, s)
		if err != nil {
			return 0, err
		}
		if v != math.Trunc(v) || math.Abs(v) > 1<<53 {
			return 0, fmt.Errorf("eval: %s!(...) = %v is not an integral subscript at %s", n.Array, v, n.Pos())
		}
		return int64(v), nil
	}
	return 0, fmt.Errorf("eval: %T in integer position", e)
}

func (ev *evaluator) evalFloat(e lang.Expr, s scope) (float64, error) {
	switch n := e.(type) {
	case *lang.IntLit:
		return float64(n.Value), nil
	case *lang.FloatLit:
		return n.Value, nil
	case *lang.Var:
		if rhs, ok := s.lets[n.Name]; ok {
			return ev.evalFloat(rhs, s.withoutLet(n.Name))
		}
		if v, ok := s.ints[n.Name]; ok {
			return float64(v), nil
		}
		if v, ok := ev.params[n.Name]; ok {
			return float64(v), nil
		}
		return 0, fmt.Errorf("eval: unbound variable %q at %s", n.Name, n.Pos())
	case *lang.UnOp:
		if n.Op != lang.OpNeg {
			return 0, fmt.Errorf("eval: %s in value position", n.Op)
		}
		v, err := ev.evalFloat(n.X, s)
		return -v, err
	case *lang.BinOp:
		l, err := ev.evalFloat(n.L, s)
		if err != nil {
			return 0, err
		}
		r, err := ev.evalFloat(n.R, s)
		if err != nil {
			return 0, err
		}
		switch n.Op {
		case lang.OpAdd:
			return l + r, nil
		case lang.OpSub:
			return l - r, nil
		case lang.OpMul:
			return l * r, nil
		case lang.OpDiv:
			return l / r, nil
		case lang.OpMod:
			li, err := ev.evalInt(e, s)
			return float64(li), err
		}
		return 0, fmt.Errorf("eval: %s in value position at %s", n.Op, n.Pos())
	case *lang.Index:
		acc, ok := ev.arrays[n.Array]
		if !ok {
			return 0, fmt.Errorf("eval: unknown array %q at %s", n.Array, n.Pos())
		}
		subs := make([]int64, len(n.Subs))
		for i, se := range n.Subs {
			v, err := ev.evalInt(se, s)
			if err != nil {
				return 0, err
			}
			subs[i] = v
		}
		return acc(subs)
	case *lang.Call:
		args := make([]float64, len(n.Args))
		for i, a := range n.Args {
			v, err := ev.evalFloat(a, s)
			if err != nil {
				return 0, err
			}
			args[i] = v
		}
		return applyBuiltin(n.Fn, args, n.Pos())
	case *lang.Cond:
		c, err := ev.evalBool(n.C, s)
		if err != nil {
			return 0, err
		}
		if c {
			return ev.evalFloat(n.T, s)
		}
		return ev.evalFloat(n.E, s)
	case *lang.Let:
		return ev.evalFloat(n.Body, s.withLets(n.Binds))
	}
	return 0, fmt.Errorf("eval: %T in value position", e)
}

func applyBuiltin(fn string, args []float64, pos lang.Pos) (float64, error) {
	need := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("eval: %s expects %d arguments, got %d at %s", fn, n, len(args), pos)
		}
		return nil
	}
	switch fn {
	case "abs":
		return math.Abs(args[0]), need(1)
	case "sqrt":
		return math.Sqrt(args[0]), need(1)
	case "exp":
		return math.Exp(args[0]), need(1)
	case "log":
		return math.Log(args[0]), need(1)
	case "sin":
		return math.Sin(args[0]), need(1)
	case "cos":
		return math.Cos(args[0]), need(1)
	case "min":
		if err := need(2); err != nil {
			return 0, err
		}
		return math.Min(args[0], args[1]), nil
	case "max":
		if err := need(2); err != nil {
			return 0, err
		}
		return math.Max(args[0], args[1]), nil
	case "pow":
		if err := need(2); err != nil {
			return 0, err
		}
		return math.Pow(args[0], args[1]), nil
	}
	return 0, fmt.Errorf("eval: unknown builtin %q at %s", fn, pos)
}

func (ev *evaluator) evalBool(e lang.Expr, s scope) (bool, error) {
	switch n := e.(type) {
	case *lang.BinOp:
		if n.Op.IsComparison() {
			// Prefer exact integer comparison when both sides are
			// integral.
			li, lerr := ev.evalInt(n.L, s)
			ri, rerr := ev.evalInt(n.R, s)
			if lerr == nil && rerr == nil {
				return cmpInt(n.Op, li, ri), nil
			}
			lf, err := ev.evalFloat(n.L, s)
			if err != nil {
				return false, err
			}
			rf, err := ev.evalFloat(n.R, s)
			if err != nil {
				return false, err
			}
			return cmpFloat(n.Op, lf, rf), nil
		}
		switch n.Op {
		case lang.OpAnd, lang.OpOr:
			l, err := ev.evalBool(n.L, s)
			if err != nil {
				return false, err
			}
			r, err := ev.evalBool(n.R, s)
			if err != nil {
				return false, err
			}
			if n.Op == lang.OpAnd {
				return l && r, nil
			}
			return l || r, nil
		}
	case *lang.UnOp:
		if n.Op == lang.OpNot {
			v, err := ev.evalBool(n.X, s)
			return !v, err
		}
	case *lang.Let:
		return ev.evalBool(n.Body, s.withLets(n.Binds))
	}
	return false, fmt.Errorf("eval: %T in boolean position", e)
}

func cmpInt(op lang.Op, l, r int64) bool {
	switch op {
	case lang.OpEq:
		return l == r
	case lang.OpNe:
		return l != r
	case lang.OpLt:
		return l < r
	case lang.OpLe:
		return l <= r
	case lang.OpGt:
		return l > r
	case lang.OpGe:
		return l >= r
	}
	return false
}

func cmpFloat(op lang.Op, l, r float64) bool {
	switch op {
	case lang.OpEq:
		return l == r
	case lang.OpNe:
		return l != r
	case lang.OpLt:
		return l < r
	case lang.OpLe:
		return l <= r
	case lang.OpGt:
		return l > r
	case lang.OpGe:
		return l >= r
	}
	return false
}
