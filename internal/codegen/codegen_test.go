package codegen

import (
	"strings"
	"testing"

	"arraycomp/internal/affine"
	"arraycomp/internal/analysis"
	"arraycomp/internal/lang"
	"arraycomp/internal/loopir"
	"arraycomp/internal/parser"
	"arraycomp/internal/runtime"
	"arraycomp/internal/schedule"
)

func analyzeSrc(t *testing.T, src string, env map[string]int64, srcBounds *analysis.ArrayBounds) *analysis.Result {
	t.Helper()
	prog, err := parser.ParseProgram(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	def := prog.Defs[0]
	var bounds analysis.ArrayBounds
	if def.Kind == lang.BigUpd {
		if srcBounds == nil {
			t.Fatal("bigupd test needs source bounds")
		}
		bounds = *srcBounds
	} else {
		bounds, err = analysis.EvalBounds(def, env)
		if err != nil {
			t.Fatal(err)
		}
	}
	res, err := analysis.Analyze(def, env, bounds, nil, analysis.Options{})
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return res
}

func lower(t *testing.T, src string, env map[string]int64, srcBounds *analysis.ArrayBounds) *Plan {
	t.Helper()
	res := analyzeSrc(t, src, env, srcBounds)
	sched, err := schedule.Build(res, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sched.Thunked && res.Def.Kind == lang.BigUpd {
		sched, err = schedule.Build(res, schedule.KeepFlowOutput)
		if err != nil {
			t.Fatal(err)
		}
	}
	// The shape tests inspect the scheduler's raw lowering, so keep the
	// loop-IR optimizer out of the way.
	plan, err := Lower(res, sched, nil, LowerOptions{NoOptimize: true})
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return plan
}

func TestLowerSquaresProgramShape(t *testing.T) {
	plan := lower(t, `a = array (1,n) [ i := i*i | i <- [1..n] ]`, map[string]int64{"n": 8}, nil)
	dump := plan.Program.Dump()
	for _, want := range []string{"do i = 1, 8, 1", "a[i] :="} {
		if !strings.Contains(dump, want) {
			t.Errorf("dump missing %q:\n%s", want, dump)
		}
	}
	if strings.Contains(dump, "collision-checked") || strings.Contains(dump, "check-full") {
		t.Errorf("checks must be elided:\n%s", dump)
	}
	out, err := plan.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.At(5) != 25 {
		t.Errorf("a(5) = %v", out.At(5))
	}
}

func TestLowerBackwardLoopShape(t *testing.T) {
	plan := lower(t, `a = array (1,n) ([ n := 1.0 ] ++ [ i := a!(i+1) | i <- [1..n-1] ])`,
		map[string]int64{"n": 5}, nil)
	dump := plan.Program.Dump()
	if !strings.Contains(dump, "do i = 4, 1, -1") {
		t.Errorf("backward loop not emitted:\n%s", dump)
	}
}

func TestLowerStrideLoop(t *testing.T) {
	// Stride-2 generator: loop steps by 2 over source values.
	plan := lower(t, `a = array (1,10)
	  ([ i := 1.0 | i <- [1,3..9] ] ++ [ i := 2.0 | i <- [2,4..10] ])`, nil, nil)
	dump := plan.Program.Dump()
	if !strings.Contains(dump, "do i = 1, 9, 2") || !strings.Contains(dump, "do i = 2, 10, 2") {
		t.Errorf("stride loops wrong:\n%s", dump)
	}
	out, err := plan.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.At(3) != 1 || out.At(4) != 2 {
		t.Error("stride values wrong")
	}
	// Odd/even interleave is a provable permutation: no checks.
	if plan.Checks.CollisionChecks != 0 || plan.Checks.EmptiesSweeps != 0 {
		t.Errorf("checks = %+v", plan.Checks)
	}
}

func TestLowerNegativeStrideGenerator(t *testing.T) {
	plan := lower(t, `a = array (1,n) [ i := 1.0 * i | i <- [n,n-1..1] ]`, map[string]int64{"n": 6}, nil)
	out, err := plan.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 6; i++ {
		if out.At(i) != float64(i) {
			t.Errorf("a(%d) = %v", i, out.At(i))
		}
	}
}

func TestLowerGuardEmission(t *testing.T) {
	plan := lower(t, `a = array (1,n)
	  ([ i := 1.0 | i <- [1..n], i mod 2 == 0 ] ++
	   [ i := 2.0 | i <- [1..n], i mod 2 == 1 ])`, map[string]int64{"n": 7}, nil)
	dump := plan.Program.Dump()
	if !strings.Contains(dump, "if (i % 2) == 0 then") {
		t.Errorf("guard missing:\n%s", dump)
	}
	out, err := plan.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.At(2) != 1 || out.At(3) != 2 {
		t.Error("guarded values wrong")
	}
}

func TestLowerLetInlining(t *testing.T) {
	plan := lower(t, `a = array (1,n)
	  [* (let h = n / 2 in [ i := if i <= h then 1.0 else 2.0 ]) | i <- [1..n] *]`,
		map[string]int64{"n": 6}, nil)
	out, err := plan.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.At(3) != 1 || out.At(4) != 2 {
		t.Errorf("let values wrong: %v %v", out.At(3), out.At(4))
	}
}

func TestLowerWhereClauseValue(t *testing.T) {
	plan := lower(t, `a = array (1,n)
	  ([ 1 := 1.0 ] ++
	   [ i := t + t where t = a!(i-1) | i <- [2..n] ])`, map[string]int64{"n": 5}, nil)
	out, err := plan.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.At(4) != 8 {
		t.Errorf("a(4) = %v, want 8", out.At(4))
	}
}

func TestLowerBuiltinsAndFloats(t *testing.T) {
	plan := lower(t, `a = array (1,n) [ i := sqrt(1.0 * i * i) + min(0.5, 2.0) | i <- [1..n] ]`,
		map[string]int64{"n": 4}, nil)
	out, err := plan.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.At(3) != 3.5 {
		t.Errorf("a(3) = %v, want 3.5", out.At(3))
	}
}

func TestLowerAccumFill(t *testing.T) {
	res := analyzeSrc(t, `h = accumArray (+) 7.0 (1,4) [ 2 := 1.0 | i <- [1..3] ]`, nil, nil)
	sched, err := schedule.Build(res, nil)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Lower(res, sched, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan.Program.Dump(), "fill h := 7") {
		t.Errorf("fill missing:\n%s", plan.Program.Dump())
	}
	out, err := plan.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.At(2) != 10 || out.At(1) != 7 {
		t.Errorf("accum values: %v %v", out.At(2), out.At(1))
	}
}

func TestLowerRejectsThunkedSchedule(t *testing.T) {
	res := analyzeSrc(t, `a = array (1,n) [ i := a!i | i <- [1..n] ]`, map[string]int64{"n": 3}, nil)
	sched, err := schedule.Build(res, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !sched.Thunked {
		t.Fatal("expected thunked schedule")
	}
	if _, err := Lower(res, sched, nil); err == nil {
		t.Error("Lower must reject thunked schedules")
	}
}

func TestLowerExternalArrayMissingBounds(t *testing.T) {
	res := analyzeSrc(t, `c = array (1,n) [ i := b!i | i <- [1..n] ]`, map[string]int64{"n": 3}, nil)
	sched, err := schedule.Build(res, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Lower(res, sched, nil); err == nil {
		t.Error("unknown external bounds must fail lowering")
	}
}

func TestThunkedMonolithicOracle(t *testing.T) {
	res := analyzeSrc(t, `a = array (1,n)
	  ([ 1 := 1.0 ] ++ [ i := a!(i-1) * 2.0 | i <- [2..n] ])`, map[string]int64{"n": 6}, nil)
	out, err := NewThunkedPlan(res).Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.At(6) != 32 {
		t.Errorf("a(6) = %v", out.At(6))
	}
}

func TestThunkedBigupdPersistence(t *testing.T) {
	b := analysis.ArrayBounds{Lo: []int64{1}, Hi: []int64{4}}
	res := analyzeSrc(t, `param n; a2 = bigupd a [ i := a!i + 1.0 | i <- [1..n] ]`,
		map[string]int64{"n": 4}, &b)
	in := runtime.NewStrict(runtime.NewBounds1(1, 4))
	in.Set(10, 2)
	out, err := NewThunkedPlan(res).Run(map[string]*runtime.Strict{"a": in})
	if err != nil {
		t.Fatal(err)
	}
	if out.At(2) != 11 || in.At(2) != 10 {
		t.Error("thunked bigupd must be persistent")
	}
}

func TestThunkedAccumSelfReadRejected(t *testing.T) {
	res := analyzeSrc(t, `h = accumArray (+) 0.0 (1,4) [ i := h!1 | i <- [1..4] ]`, nil, nil)
	if _, err := NewThunkedPlan(res).Run(nil); err == nil {
		t.Error("self-reading accumArray must be rejected")
	}
}

func TestTryLinearSimplification(t *testing.T) {
	// (i + 1) * 2 - i  →  2 + i  (affine fast path)
	e := &loopir.IBin{
		Op: '-',
		L: &loopir.IBin{Op: '*',
			L: &loopir.IBin{Op: '+', L: &loopir.IVar{Name: "i"}, R: &loopir.IConst{Value: 1}},
			R: &loopir.IConst{Value: 2}},
		R: &loopir.IVar{Name: "i"},
	}
	lin, ok := tryLinear(e)
	if !ok {
		t.Fatal("expression is affine")
	}
	if got := loopir.IntExprString(lin); got != "2+i" {
		t.Errorf("simplified = %q", got)
	}
	// i * i is not affine.
	if _, ok := tryLinear(&loopir.IBin{Op: '*', L: &loopir.IVar{Name: "i"}, R: &loopir.IVar{Name: "i"}}); ok {
		t.Error("i*i must not linearize")
	}
	// (i % 2) + i keeps the non-affine subtree but simplifies around it.
	mixed := simplifyInt(&loopir.IBin{Op: '+',
		L: &loopir.IBin{Op: '%', L: &loopir.IVar{Name: "i"}, R: &loopir.IConst{Value: 2}},
		R: &loopir.IVar{Name: "i"}})
	if _, isBin := mixed.(*loopir.IBin); !isBin {
		t.Errorf("mixed expression should stay a tree, got %T", mixed)
	}
}

func TestKillDelta(t *testing.T) {
	b := analysis.ArrayBounds{Lo: []int64{1, 1}, Hi: []int64{10, 10}}
	res := analyzeSrc(t, `param n;
	a2 = bigupd a
	  [* [ (i,j) := a!(i-1,j) + a!(i,j-2) + a!(j,i) ] | i <- [2..n-1], j <- [3..n-1] *]`,
		map[string]int64{"n": 10}, &b)
	cl := res.Clauses[0]
	wantDeltas := []struct {
		di, dj int64
		ok     bool
	}{
		{-1, 0, true}, // a!(i-1,j)
		{0, -2, true}, // a!(i,j-2)
		{0, 0, false}, // a!(j,i): transposed, not a translation
	}
	for k, rd := range cl.Reads {
		delta, ok := killDelta(rd, cl)
		if ok != wantDeltas[k].ok {
			t.Errorf("read %d: ok = %v, want %v", k, ok, wantDeltas[k].ok)
			continue
		}
		if !ok {
			continue
		}
		if delta["i"] != wantDeltas[k].di || delta["j"] != wantDeltas[k].dj {
			t.Errorf("read %d: delta = %v", k, delta)
		}
	}
}

func TestExecOffset(t *testing.T) {
	// Forward loop stride 1: delta −1 (killer at i−1) → executed 1 earlier.
	l := affine.Loop{Var: "i", First: 1, Stride: 1, Last: 10}
	if m, ok := execOffset(l, schedule.Forward, -1); !ok || m != 1 {
		t.Errorf("fwd: m=%d ok=%v", m, ok)
	}
	// Forward, delta +1 → killer later (m = −1).
	if m, _ := execOffset(l, schedule.Forward, 1); m != -1 {
		t.Errorf("fwd later: m=%d", m)
	}
	// Backward: delta +1 → executed 1 earlier.
	if m, _ := execOffset(l, schedule.Backward, 1); m != 1 {
		t.Errorf("bwd: m=%d", m)
	}
	// Stride 2, delta −2 forward → 1 iteration earlier.
	l2 := affine.Loop{Var: "i", First: 1, Stride: 2, Last: 9}
	if m, _ := execOffset(l2, schedule.Forward, -2); m != 1 {
		t.Errorf("stride2: m=%d", m)
	}
	// Non-divisible delta fails.
	if _, ok := execOffset(l2, schedule.Forward, -1); ok {
		t.Error("non-divisible delta must fail")
	}
}

func TestLowerBoundsCheckOnUnprovableWrite(t *testing.T) {
	// n+1 writes one past the end for i == n: compiled bounds check
	// must fire at run time.
	plan := lower(t, `a = array (1,n) [ i + 1 := 1.0 | i <- [1..n] ]`, map[string]int64{"n": 4}, nil)
	if plan.Checks.BoundsChecks == 0 {
		t.Fatal("bounds check must be compiled")
	}
	if _, err := plan.Run(nil); err == nil || !strings.Contains(err.Error(), "out of bounds") {
		t.Errorf("want bounds error, got %v", err)
	}
}
