package codegen

import (
	"fmt"
	"math/rand"
	"testing"

	"arraycomp/internal/analysis"
	"arraycomp/internal/depgraph"
	"arraycomp/internal/deptest"
	"arraycomp/internal/lang"
	"arraycomp/internal/parser"
	"arraycomp/internal/schedule"
)

// Independent verification of the scheduler's correctness condition:
// in any non-thunked schedule, EVERY dependence edge's source instance
// executes before its sink instance (section 8's safety property).
// The differential tests check this indirectly through values; here it
// is checked structurally via EdgeSatisfied.

func validateSchedule(t *testing.T, src string, env map[string]int64, srcBounds *analysis.ArrayBounds, keep func(depgraph.Edge) bool) {
	t.Helper()
	res := analyzeSrc2(t, src, env, srcBounds)
	sched, err := schedule.Build(res, keep)
	if err != nil {
		t.Fatal(err)
	}
	if sched.Thunked {
		return // fallback: nothing to validate
	}
	paths := BuildSchedPaths(sched)
	for _, e := range res.Graph.Edges {
		if keep != nil && !keep(e) {
			continue
		}
		if e.Src == e.Dst && e.Dir.SelfEqual() {
			// Same-instance self pairs: flow means ⊥ (the scheduler
			// would have fallen back); anti/output are satisfied by
			// clause-internal evaluation order.
			continue
		}
		if !EdgeSatisfied(paths, e.Src, e.Dst, e.Dir) {
			t.Errorf("schedule violates edge %s:\n%s", e, sched.Dump())
		}
	}
}

func analyzeSrc2(t *testing.T, src string, env map[string]int64, srcBounds *analysis.ArrayBounds) *analysis.Result {
	t.Helper()
	prog, err := parser.ParseProgram(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	def := prog.Defs[0]
	var bounds analysis.ArrayBounds
	if def.Kind == lang.BigUpd {
		if srcBounds == nil {
			t.Fatal("bigupd needs bounds")
		}
		bounds = *srcBounds
	} else {
		bounds, err = analysis.EvalBounds(def, env)
		if err != nil {
			t.Fatal(err)
		}
	}
	res, err := analysis.Analyze(def, env, bounds, nil, analysis.Options{})
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return res
}

func TestScheduleSatisfiesAllEdgesCanonical(t *testing.T) {
	cases := []struct {
		src string
		env map[string]int64
	}{
		{`a = array (1,n) ([ 1 := 1.0 ] ++ [ i := a!(i-1) | i <- [2..n] ])`, map[string]int64{"n": 9}},
		{`a = array (1,n) ([ n := 1.0 ] ++ [ i := a!(i+1) | i <- [1..n-1] ])`, map[string]int64{"n": 9}},
		{`a = array ((1,1),(n,n))
		   ([ (1,j) := 1.0 | j <- [1..n] ] ++
		    [ (i,1) := 1.0 | i <- [2..n] ] ++
		    [ (i,j) := a!(i-1,j) + a!(i,j-1) + a!(i-1,j-1) | i <- [2..n], j <- [2..n] ])`,
			map[string]int64{"n": 7}},
		{`a = array (1,300)
		   [* [3*i := 1.0] ++ [3*i-1 := a!(3*(i-1))] ++ [3*i-2 := a!(3*i)] | i <- [1..100] *]`, nil},
		{`param n; a = array (1,3*n)
		   [* [ i := 1.0 ] ++ [ n + i := a!(i-1) ] ++ [ 2*n + i := a!(n+i+1) + a!i ] | i <- [2..n-1] *]`,
			map[string]int64{"n": 12}},
		{`param n, m; a = array ((1,0),(2*n, m+1))
		   [* ([* [ (2*i, j) := a!(2*i-1, j+1) ] ++ [ (2*i-1, j) := a!(2*i-2, j+1) ] | j <- [1..m] *]) ++
		      [ (2*i, 0) := a!(2*i-3, 1) ] | i <- [1..n] *]`,
			map[string]int64{"n": 6, "m": 8}},
	}
	for i, c := range cases {
		t.Run(fmt.Sprint(i), func(t *testing.T) {
			validateSchedule(t, c.src, c.env, nil, nil)
		})
	}
}

func TestScheduleSatisfiesAllEdgesBigupd(t *testing.T) {
	b := analysis.ArrayBounds{Lo: []int64{1, 1}, Hi: []int64{10, 10}}
	cases := []string{
		// SOR: all edges satisfiable with anti kept.
		`param n; a2 = bigupd a
		  [* [ (i,j) := 0.25 * (a2!(i-1,j) + a2!(i,j-1) + a!(i+1,j) + a!(i,j+1)) ]
		   | i <- [2..n-1], j <- [2..n-1] *]`,
		// Shift: backward loop satisfies the anti edge.
		`param n; a2 = bigupd a [* [ (i,j) := a!(i-1,j) ] | i <- [2..n], j <- [1..n] *]`,
	}
	for i, src := range cases {
		t.Run(fmt.Sprint(i), func(t *testing.T) {
			validateSchedule(t, src, map[string]int64{"n": 10}, &b, nil)
		})
	}
	// Jacobi with anti edges relaxed: flow+output must still all hold.
	validateSchedule(t, `param n; a2 = bigupd a
	  [* [ (i,j) := 0.25 * (a!(i-1,j) + a!(i+1,j) + a!(i,j-1) + a!(i,j+1)) ]
	   | i <- [2..n-1], j <- [2..n-1] *]`,
		map[string]int64{"n": 10}, &b, schedule.KeepFlowOutput)
}

// TestScheduleSatisfiesAllEdgesRandom drives random band/stencil
// programs through the scheduler and validates structurally.
func TestScheduleSatisfiesAllEdgesRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(321))
	for trial := 0; trial < 120; trial++ {
		n := int64(4 + rng.Intn(12))
		o1 := rng.Intn(3) - 1
		o2 := rng.Intn(3) - 1
		sign := func(o int) string {
			switch {
			case o > 0:
				return fmt.Sprintf("- %d", o)
			case o < 0:
				return fmt.Sprintf("+ %d", -o)
			}
			return "+ 0"
		}
		src := fmt.Sprintf(`param n;
		a = array (1,3*n)
		  [* [ i := 1.0 ] ++
		     [ n + i := if i %s < 1 || i %s > n then 0.0 else a!(i %s) ] ++
		     [ 2*n + i := if i %s < 1 || i %s > 2*n then 0.0 else a!(i %s) ]
		   | i <- [1..n] *]`,
			sign(o1), sign(o1), sign(o1), sign(o2), sign(o2), sign(o2))
		validateSchedule(t, src, map[string]int64{"n": n}, nil, nil)
	}
}

// TestEdgeSatisfiedSpotChecks pins the predicate's semantics directly.
func TestEdgeSatisfiedSpotChecks(t *testing.T) {
	res := analyzeSrc2(t, `a = array (1,n) ([ 1 := 1.0 ] ++ [ i := a!(i-1) | i <- [2..n] ])`,
		map[string]int64{"n": 5}, nil)
	sched, err := schedule.Build(res, nil)
	if err != nil || sched.Thunked {
		t.Fatalf("schedule: %v %v", err, sched)
	}
	paths := BuildSchedPaths(sched)
	lt := deptest.Vector{deptest.DirLess}
	gt := deptest.Vector{deptest.DirGreater}
	// The recurrence's self edge (<) holds under the forward loop…
	if !EdgeSatisfied(paths, 1, 1, lt) {
		t.Error("(<) self edge must be satisfied by the forward loop")
	}
	// …while a hypothetical (>) self edge would not.
	if EdgeSatisfied(paths, 1, 1, gt) {
		t.Error("(>) self edge must be violated by the forward loop")
	}
	// Border clause precedes the loop: any cross edge 0→1 holds.
	if !EdgeSatisfied(paths, 0, 1, deptest.Vector{}) {
		t.Error("border-to-loop ordering must hold")
	}
	if EdgeSatisfied(paths, 1, 0, deptest.Vector{}) {
		t.Error("loop-to-border ordering must not hold")
	}
}
