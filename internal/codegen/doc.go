// Package codegen lowers scheduled array comprehensions to the
// imperative loop IR (thunkless compilation, sections 8 and 9) and
// provides the thunked fallback evaluator used when no safe static
// schedule exists (and as the semantics oracle the compiled code is
// tested against).
//
// The lowering walks the schedule tree: loop passes become DO loops
// with the scheduled direction, clauses become element assignments,
// guards become conditionals, and let bindings are inlined (they are
// pure). Runtime checks — write-collision tests, definedness tests,
// bounds tests — are emitted only where the analysis failed to
// discharge them statically.
//
// For bigupd definitions the generator first checks which anti
// dependences the schedule satisfies; the violated ones are broken by
// node splitting (section 9) in three tiers: a per-instance scalar for
// same-instance kills (the LINPACK row-swap pattern), a distance-1
// pipeline scalar or row buffer for uniformly carried kills (the
// Jacobi pattern), and a whole-array entry copy as the general
// fallback (naive compilation).
package codegen
