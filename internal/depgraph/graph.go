// Package depgraph implements the labeled dependence graphs of the
// paper's sections 5 and 8: vertices are s/v clauses (or, during
// nested-loop scheduling, collapsed inner-loop entities), and edges
// carry a dependence kind (flow, anti, output) plus a direction vector
// over the loops shared by source and sink.
//
// The package provides the graph algorithms the paper's schedulers
// need: Tarjan strongly connected components, the quotient DAG,
// topological sorting, reachability, and the modified depth-first
// search of section 8.1.3 that marks nodes 'not-ready' for a loop pass.
package depgraph

import (
	"fmt"
	"sort"
	"strings"

	"arraycomp/internal/deptest"
)

// Kind classifies a dependence edge.
type Kind uint8

const (
	// Flow (true) dependence: the source writes a value the sink reads.
	// Scheduling must compute sources before sinks to avoid thunks.
	Flow Kind = iota
	// Anti dependence: the source reads a value the sink overwrites.
	// Scheduling must compute sources before sinks to avoid copying.
	Anti
	// Output dependence: source and sink write the same element. For
	// plain monolithic arrays this is a write collision (an error); for
	// accumulated arrays with non-commutative combiners it is an
	// ordering constraint.
	Output
)

// String names the kind with the paper's notation (δ, δ̄, δ°).
func (k Kind) String() string {
	switch k {
	case Flow:
		return "flow"
	case Anti:
		return "anti"
	case Output:
		return "output"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Edge is a labeled dependence edge Src → Dst.
type Edge struct {
	Src, Dst int
	Kind     Kind
	// Dir is the direction vector over the loops shared by source and
	// sink, outermost first. Empty for dependences whose endpoints
	// share no loop (the paper's "()" label).
	Dir deptest.Vector
}

// String renders e.g. "1->2 flow (<)".
func (e Edge) String() string {
	return fmt.Sprintf("%d->%d %s %s", e.Src, e.Dst, e.Kind, e.Dir)
}

// Graph is a dependence graph over vertices 0..N-1.
type Graph struct {
	N      int
	Edges  []Edge
	Labels []string // optional, for diagnostics; len 0 or N
}

// New returns an empty graph over n vertices.
func New(n int) *Graph { return &Graph{N: n} }

// Label sets a diagnostic label for vertex v.
func (g *Graph) Label(v int, label string) {
	if g.Labels == nil {
		g.Labels = make([]string, g.N)
	}
	g.Labels[v] = label
}

// LabelOf returns the label of v, or its number.
func (g *Graph) LabelOf(v int) string {
	if g.Labels != nil && g.Labels[v] != "" {
		return g.Labels[v]
	}
	return fmt.Sprintf("#%d", v)
}

// AddEdge appends a labeled edge.
func (g *Graph) AddEdge(src, dst int, kind Kind, dir deptest.Vector) {
	g.Edges = append(g.Edges, Edge{Src: src, Dst: dst, Kind: kind, Dir: dir})
}

// Succs returns the adjacency list (by edge index) of each vertex.
func (g *Graph) Succs() [][]int {
	out := make([][]int, g.N)
	for i, e := range g.Edges {
		out[e.Src] = append(out[e.Src], i)
	}
	return out
}

// InDegrees returns the number of incoming edges per vertex, counting
// only edges satisfying keep (nil keeps all).
func (g *Graph) InDegrees(keep func(Edge) bool) []int {
	in := make([]int, g.N)
	for _, e := range g.Edges {
		if keep == nil || keep(e) {
			in[e.Dst]++
		}
	}
	return in
}

// Filter returns a new graph with the same vertices and only the edges
// satisfying keep.
func (g *Graph) Filter(keep func(Edge) bool) *Graph {
	out := &Graph{N: g.N, Labels: g.Labels}
	for _, e := range g.Edges {
		if keep(e) {
			out.Edges = append(out.Edges, e)
		}
	}
	return out
}

// Subgraph returns the induced subgraph on the given vertices, along
// with the mapping newIndex[i] = oldVertex. Edges to or from vertices
// outside the set are dropped (exactly the paper's rule for building an
// inner loop's dependence subgraph).
func (g *Graph) Subgraph(vertices []int) (*Graph, []int) {
	idx := make(map[int]int, len(vertices))
	for i, v := range vertices {
		idx[v] = i
	}
	out := New(len(vertices))
	if g.Labels != nil {
		out.Labels = make([]string, len(vertices))
		for i, v := range vertices {
			out.Labels[i] = g.Labels[v]
		}
	}
	for _, e := range g.Edges {
		s, okS := idx[e.Src]
		d, okD := idx[e.Dst]
		if okS && okD {
			out.Edges = append(out.Edges, Edge{Src: s, Dst: d, Kind: e.Kind, Dir: e.Dir})
		}
	}
	return out, append([]int(nil), vertices...)
}

// String renders a stable multi-line description.
func (g *Graph) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "graph: %d vertices, %d edges\n", g.N, len(g.Edges))
	edges := append([]Edge(nil), g.Edges...)
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].Src != edges[j].Src {
			return edges[i].Src < edges[j].Src
		}
		if edges[i].Dst != edges[j].Dst {
			return edges[i].Dst < edges[j].Dst
		}
		return edges[i].String() < edges[j].String()
	})
	for _, e := range edges {
		fmt.Fprintf(&b, "  %s -> %s %s %s\n", g.LabelOf(e.Src), g.LabelOf(e.Dst), e.Kind, e.Dir)
	}
	return b.String()
}

// DOT renders the graph in Graphviz dot syntax for visualization.
func (g *Graph) DOT(name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", name)
	for v := 0; v < g.N; v++ {
		fmt.Fprintf(&b, "  n%d [label=%q];\n", v, g.LabelOf(v))
	}
	for _, e := range g.Edges {
		style := "solid"
		switch e.Kind {
		case Anti:
			style = "dashed"
		case Output:
			style = "dotted"
		}
		fmt.Fprintf(&b, "  n%d -> n%d [label=%q, style=%s];\n", e.Src, e.Dst, e.Dir.String(), style)
	}
	b.WriteString("}\n")
	return b.String()
}

// Reachable returns the set of vertices reachable from the seeds
// (including the seeds), following edges that satisfy keep (nil keeps
// all).
func (g *Graph) Reachable(seeds []int, keep func(Edge) bool) []bool {
	succs := make([][]int, g.N)
	for _, e := range g.Edges {
		if keep == nil || keep(e) {
			succs[e.Src] = append(succs[e.Src], e.Dst)
		}
	}
	seen := make([]bool, g.N)
	stack := append([]int(nil), seeds...)
	for _, s := range seeds {
		seen[s] = true
	}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range succs[v] {
			if !seen[w] {
				seen[w] = true
				stack = append(stack, w)
			}
		}
	}
	return seen
}
