package depgraph

import (
	"math/rand"
	"strings"
	"testing"

	"arraycomp/internal/deptest"
)

func dir(t *testing.T, s string) deptest.Vector {
	t.Helper()
	v, err := deptest.ParseVector(s)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestKindStrings(t *testing.T) {
	if Flow.String() != "flow" || Anti.String() != "anti" || Output.String() != "output" {
		t.Error("Kind strings wrong")
	}
}

func TestSCCsSimple(t *testing.T) {
	// 0 -> 1 -> 2 -> 1, 2 -> 3 : components {0}, {1,2}, {3}.
	g := New(4)
	g.AddEdge(0, 1, Flow, nil)
	g.AddEdge(1, 2, Flow, nil)
	g.AddEdge(2, 1, Flow, nil)
	g.AddEdge(2, 3, Flow, nil)
	comps, compOf := g.SCCs()
	if len(comps) != 3 {
		t.Fatalf("components = %v", comps)
	}
	if compOf[1] != compOf[2] {
		t.Error("1 and 2 must share a component")
	}
	if compOf[0] == compOf[1] || compOf[3] == compOf[1] {
		t.Error("0 and 3 must be singletons")
	}
	// Reverse topological order: {3} before {1,2} before {0}.
	if !(compOf[3] < compOf[1] && compOf[1] < compOf[0]) {
		t.Errorf("reverse topological order violated: compOf = %v", compOf)
	}
}

func TestSCCsMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(8)
		g := New(n)
		for e := 0; e < rng.Intn(2*n+1); e++ {
			g.AddEdge(rng.Intn(n), rng.Intn(n), Flow, nil)
		}
		_, compOf := g.SCCs()
		// Brute-force mutual reachability.
		reach := make([][]bool, n)
		for v := 0; v < n; v++ {
			seen := g.Reachable([]int{v}, nil)
			reach[v] = seen
		}
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				mutual := reach[u][v] && reach[v][u]
				if mutual != (compOf[u] == compOf[v]) {
					t.Fatalf("SCC mismatch n=%d u=%d v=%d: mutual=%v compOf=%v\n%s", n, u, v, mutual, compOf, g)
				}
			}
		}
	}
}

func TestIsCyclic(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, Flow, nil)
	g.AddEdge(1, 2, Flow, nil)
	if g.IsCyclic() {
		t.Error("chain must be acyclic")
	}
	g.AddEdge(2, 0, Flow, nil)
	if !g.IsCyclic() {
		t.Error("cycle not detected")
	}
	selfLoop := New(1)
	selfLoop.AddEdge(0, 0, Flow, dir(t, "(<)"))
	if !selfLoop.IsCyclic() {
		t.Error("self-loop must be cyclic")
	}
}

func TestQuotient(t *testing.T) {
	// 0 <-> 1 (cycle), 1 -> 2.
	g := New(3)
	g.Label(0, "A")
	g.Label(1, "B")
	g.Label(2, "C")
	g.AddEdge(0, 1, Flow, dir(t, "(<)"))
	g.AddEdge(1, 0, Flow, dir(t, "(<)"))
	g.AddEdge(1, 2, Flow, dir(t, "(=)"))
	q, comps := g.Quotient()
	if q.N != 2 {
		t.Fatalf("quotient has %d vertices", q.N)
	}
	if q.IsCyclic() {
		t.Error("quotient must be a DAG")
	}
	if len(q.Edges) != 1 || q.Edges[0].Kind != Flow {
		t.Errorf("quotient edges = %v", q.Edges)
	}
	total := 0
	for _, c := range comps {
		total += len(c)
	}
	if total != 3 {
		t.Errorf("components cover %d vertices", total)
	}
	// Labels are aggregated.
	found := false
	for _, l := range q.Labels {
		if strings.Contains(l, "A") && strings.Contains(l, "B") {
			found = true
		}
	}
	if !found {
		t.Errorf("quotient labels = %v", q.Labels)
	}
}

func TestTopoSortDeterministic(t *testing.T) {
	g := New(4)
	g.AddEdge(3, 1, Flow, nil)
	g.AddEdge(3, 0, Flow, nil)
	g.AddEdge(1, 2, Flow, nil)
	g.AddEdge(0, 2, Flow, nil)
	order, err := g.TopoSort(nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{3, 0, 1, 2}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestTopoSortCycleError(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 1, Flow, nil)
	g.AddEdge(1, 0, Flow, nil)
	if _, err := g.TopoSort(nil); err == nil {
		t.Error("cycle must be an error")
	}
}

func TestTopoSortWithFilter(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 1, Flow, dir(t, "(=)"))
	g.AddEdge(1, 0, Flow, dir(t, "(<)"))
	// Considering only (=) edges the graph is acyclic.
	keepEq := func(e Edge) bool { return e.Dir.LeadingDirection() == deptest.DirEqual }
	order, err := g.TopoSort(keepEq)
	if err != nil {
		t.Fatal(err)
	}
	if order[0] != 0 || order[1] != 1 {
		t.Errorf("order = %v", order)
	}
}

func TestTopoSortIsValidOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(10)
		g := New(n)
		// Random DAG: edges only low -> high vertex numbers, then shuffle labels via a permutation.
		perm := rng.Perm(n)
		for e := 0; e < rng.Intn(3*n); e++ {
			u := rng.Intn(n - 1)
			v := u + 1 + rng.Intn(n-u-1)
			g.AddEdge(perm[u], perm[v], Flow, nil)
		}
		order, err := g.TopoSort(nil)
		if err != nil {
			t.Fatalf("unexpected cycle: %v", err)
		}
		posOf := make([]int, n)
		for i, v := range order {
			posOf[v] = i
		}
		for _, e := range g.Edges {
			if posOf[e.Src] >= posOf[e.Dst] {
				t.Fatalf("edge %v violated by order %v", e, order)
			}
		}
	}
}

func TestRootsAndReachable(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, Flow, nil)
	g.AddEdge(2, 1, Flow, nil)
	g.AddEdge(1, 3, Flow, nil)
	roots := g.Roots(nil)
	if len(roots) != 2 || roots[0] != 0 || roots[1] != 2 {
		t.Errorf("roots = %v", roots)
	}
	seen := g.Reachable([]int{0}, nil)
	if !seen[0] || !seen[1] || !seen[3] || seen[2] {
		t.Errorf("reachable = %v", seen)
	}
}

func TestSubgraph(t *testing.T) {
	g := New(4)
	g.Label(0, "A")
	g.Label(2, "C")
	g.AddEdge(0, 2, Flow, dir(t, "(=,<)"))
	g.AddEdge(0, 1, Flow, nil)
	g.AddEdge(1, 2, Flow, nil)
	sub, orig := g.Subgraph([]int{0, 2})
	if sub.N != 2 || len(sub.Edges) != 1 {
		t.Fatalf("sub = %+v", sub)
	}
	if sub.Edges[0].Src != 0 || sub.Edges[0].Dst != 1 {
		t.Errorf("edge remap wrong: %v", sub.Edges[0])
	}
	if orig[1] != 2 || sub.LabelOf(1) != "C" {
		t.Errorf("mapping/labels wrong: %v, %s", orig, sub.LabelOf(1))
	}
}

// notReadyOracle: a node is not-ready iff it is reachable from the
// destination of some blocking edge (in a DAG where every node is
// reachable from a root, this matches the paper's definition).
func notReadyOracle(g *Graph, blocking func(Edge) bool) []bool {
	var seeds []int
	for _, e := range g.Edges {
		if blocking(e) {
			seeds = append(seeds, e.Dst)
		}
	}
	reach := g.Reachable(seeds, nil)
	ready := make([]bool, g.N)
	for v := range ready {
		ready[v] = !reach[v]
	}
	return ready
}

func TestMarkNotReadyPaperExample(t *testing.T) {
	// Section 8.1.2 example: A→B(<), B→C(>), A→C(=). For a forward
	// pass, (>) blocks: C is not-ready (reached via B→C), A and B ready.
	g := New(3)
	g.AddEdge(0, 1, Flow, dir(t, "(<)"))
	g.AddEdge(1, 2, Flow, dir(t, "(>)"))
	g.AddEdge(0, 2, Flow, dir(t, "(=)"))
	blocking := func(e Edge) bool { return e.Dir.LeadingDirection() == deptest.DirGreater }
	ready := g.MarkNotReady(nil, blocking)
	if !ready[0] || !ready[1] || ready[2] {
		t.Errorf("ready = %v, want [true true false]", ready)
	}
}

func TestMarkNotReadyRevisitDowngrade(t *testing.T) {
	// Diamond where one path is clean and the other blocking, and the
	// blocking path is explored second: 0→1 clean, 1→3 clean, 0→2
	// blocking, 2→3 clean. 3 must be downgraded to not-ready even
	// though first reached ready.
	g := New(4)
	g.AddEdge(0, 1, Flow, dir(t, "(<)"))
	g.AddEdge(1, 3, Flow, dir(t, "(<)"))
	g.AddEdge(0, 2, Flow, dir(t, "(>)"))
	g.AddEdge(2, 3, Flow, dir(t, "(<)"))
	blocking := func(e Edge) bool { return e.Dir.LeadingDirection() == deptest.DirGreater }
	ready := g.MarkNotReady(nil, blocking)
	if !ready[0] || !ready[1] || ready[2] || ready[3] {
		t.Errorf("ready = %v, want [true true false false]", ready)
	}
}

func TestMarkNotReadyMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 500; trial++ {
		n := 2 + rng.Intn(9)
		g := New(n)
		perm := rng.Perm(n)
		for e := 0; e < rng.Intn(3*n); e++ {
			u := rng.Intn(n - 1)
			v := u + 1 + rng.Intn(n-u-1)
			d := "(<)"
			if rng.Intn(3) == 0 {
				d = "(>)"
			}
			vec, _ := deptest.ParseVector(d)
			g.AddEdge(perm[u], perm[v], Flow, vec)
		}
		blocking := func(e Edge) bool { return e.Dir.LeadingDirection() == deptest.DirGreater }
		got := g.MarkNotReady(nil, blocking)
		want := notReadyOracle(g, blocking)
		for v := range got {
			if got[v] != want[v] {
				t.Fatalf("MarkNotReady mismatch at %d: got %v want %v\n%s", v, got, want, g)
			}
		}
	}
}

func TestFilterAndInDegrees(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, Flow, dir(t, "(<)"))
	g.AddEdge(1, 2, Anti, dir(t, "(=)"))
	flows := g.Filter(func(e Edge) bool { return e.Kind == Flow })
	if len(flows.Edges) != 1 {
		t.Errorf("filter kept %d edges", len(flows.Edges))
	}
	in := g.InDegrees(nil)
	if in[0] != 0 || in[1] != 1 || in[2] != 1 {
		t.Errorf("in-degrees = %v", in)
	}
}

func TestStringAndDOT(t *testing.T) {
	g := New(2)
	g.Label(0, "clause1")
	g.Label(1, "clause2")
	g.AddEdge(0, 1, Anti, dir(t, "(=,<)"))
	s := g.String()
	if !strings.Contains(s, "clause1 -> clause2 anti (=,<)") {
		t.Errorf("String = %q", s)
	}
	d := g.DOT("test")
	for _, want := range []string{"digraph", "clause1", "style=dashed", "(=,<)"} {
		if !strings.Contains(d, want) {
			t.Errorf("DOT missing %q:\n%s", want, d)
		}
	}
}

func TestSuccs(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, Flow, nil)
	g.AddEdge(0, 2, Anti, nil)
	g.AddEdge(2, 1, Flow, nil)
	succs := g.Succs()
	if len(succs[0]) != 2 || len(succs[2]) != 1 || len(succs[1]) != 0 {
		t.Errorf("Succs = %v", succs)
	}
	// Entries index into g.Edges.
	if g.Edges[succs[2][0]].Dst != 1 {
		t.Error("Succs must index the edge list")
	}
}

func TestLabelOfFallback(t *testing.T) {
	g := New(2)
	if g.LabelOf(1) != "#1" {
		t.Errorf("LabelOf fallback = %q", g.LabelOf(1))
	}
	g.Label(1, "x")
	if g.LabelOf(1) != "x" || g.LabelOf(0) != "#0" {
		t.Error("LabelOf mixed")
	}
}
