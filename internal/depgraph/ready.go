package depgraph

// The paper's section 8.1.3 'not-ready' marking: when scheduling a loop
// pass in one direction, a node must be deferred to a later pass if it
// is reachable from any root of the DAG via a path containing at least
// one edge that disagrees with the pass direction (a (>) edge for a
// forward pass). The algorithm is a modified depth-first search that
// may revisit a node once, when a previously 'ready' node is reached
// again via a 'not-ready' path; its worst case matches DFS,
// O(max(|V|, |E|)).

// MarkNotReady runs the modified DFS over the DAG formed by the edges
// satisfying keep (nil keeps all), with blocking identifying the edges
// that disagree with the intended pass direction. It returns ready[v]
// per vertex. The graph restricted to keep must be acyclic; behaviour
// on cyclic inputs is undefined (the scheduler classifies cyclic graphs
// before calling this).
func (g *Graph) MarkNotReady(keep, blocking func(Edge) bool) (ready []bool) {
	type succ struct {
		dst      int
		blocking bool
	}
	succs := make([][]succ, g.N)
	for _, e := range g.Edges {
		if keep != nil && !keep(e) {
			continue
		}
		succs[e.Src] = append(succs[e.Src], succ{dst: e.Dst, blocking: blocking(e)})
	}
	visited := make([]bool, g.N)
	ready = make([]bool, g.N)
	for i := range ready {
		ready[i] = true
	}
	// visit walks from v with s = "the path from the current root to v
	// contains no blocking edge".
	var visit func(v int, s bool)
	visit = func(v int, s bool) {
		switch {
		case !visited[v]:
			visited[v] = true
			ready[v] = s
		case !s && ready[v]:
			// Revisit: a node first reached 'ready' is now reached via a
			// 'not-ready' path; it and its ready descendants must be
			// remarked.
			ready[v] = false
		default:
			// Already visited and no new information: backtrack.
			return
		}
		for _, w := range succs[v] {
			visit(w.dst, s && !w.blocking)
		}
	}
	for _, r := range g.Roots(keep) {
		visit(r, true)
	}
	return ready
}
