package depgraph

import "fmt"

// TopoSort returns a topological order of g's vertices considering
// only edges that satisfy keep (nil keeps all). Ties are broken by
// vertex number, so the order is deterministic. Returns an error if
// the considered edges form a cycle.
func (g *Graph) TopoSort(keep func(Edge) bool) ([]int, error) {
	in := g.InDegrees(keep)
	succs := make([][]int, g.N)
	for _, e := range g.Edges {
		if keep == nil || keep(e) {
			succs[e.Src] = append(succs[e.Src], e.Dst)
		}
	}
	// Kahn's algorithm with an ordered frontier (smallest vertex first)
	// for determinism.
	var frontier []int
	for v := 0; v < g.N; v++ {
		if in[v] == 0 {
			frontier = append(frontier, v)
		}
	}
	var order []int
	for len(frontier) > 0 {
		// Pop the smallest.
		best := 0
		for i := 1; i < len(frontier); i++ {
			if frontier[i] < frontier[best] {
				best = i
			}
		}
		v := frontier[best]
		frontier[best] = frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		order = append(order, v)
		for _, w := range succs[v] {
			in[w]--
			if in[w] == 0 {
				frontier = append(frontier, w)
			}
		}
	}
	if len(order) != g.N {
		return nil, fmt.Errorf("depgraph: graph is cyclic (%d of %d vertices ordered)", len(order), g.N)
	}
	return order, nil
}

// Roots returns the vertices with in-degree zero over the edges
// satisfying keep (nil keeps all).
func (g *Graph) Roots(keep func(Edge) bool) []int {
	in := g.InDegrees(keep)
	var roots []int
	for v := 0; v < g.N; v++ {
		if in[v] == 0 {
			roots = append(roots, v)
		}
	}
	return roots
}
