package depgraph

// Tarjan strongly connected components. The paper classifies a
// dependence graph's schedulability by its SCCs (section 8.1.2): a
// graph is cyclic iff some SCC has more than one vertex or a self-loop;
// an SCC containing both (<) and (>) loop-carried edges contains a
// cycle with both, which defeats static scheduling.

// SCCs returns the strongly connected components of g in reverse
// topological order (every edge between components goes from a later
// component to an earlier one in the returned slice), plus compOf
// mapping each vertex to its component index.
func (g *Graph) SCCs() (comps [][]int, compOf []int) {
	succs := make([][]int, g.N)
	for _, e := range g.Edges {
		succs[e.Src] = append(succs[e.Src], e.Dst)
	}
	const unvisited = -1
	index := make([]int, g.N)
	low := make([]int, g.N)
	onStack := make([]bool, g.N)
	compOf = make([]int, g.N)
	for i := range index {
		index[i] = unvisited
		compOf[i] = unvisited
	}
	var (
		counter int
		stack   []int
	)
	// Iterative Tarjan to avoid deep recursion on long clause chains.
	type frame struct {
		v    int
		next int
	}
	for start := 0; start < g.N; start++ {
		if index[start] != unvisited {
			continue
		}
		frames := []frame{{v: start}}
		index[start] = counter
		low[start] = counter
		counter++
		stack = append(stack, start)
		onStack[start] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.next < len(succs[f.v]) {
				w := succs[f.v][f.next]
				f.next++
				if index[w] == unvisited {
					index[w] = counter
					low[w] = counter
					counter++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{v: w})
				} else if onStack[w] {
					if index[w] < low[f.v] {
						low[f.v] = index[w]
					}
				}
				continue
			}
			// Post-order for f.v.
			if low[f.v] == index[f.v] {
				var comp []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					compOf[w] = len(comps)
					comp = append(comp, w)
					if w == f.v {
						break
					}
				}
				comps = append(comps, comp)
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				parent := &frames[len(frames)-1]
				if low[f.v] < low[parent.v] {
					low[parent.v] = low[f.v]
				}
			}
		}
	}
	return comps, compOf
}

// IsCyclic reports whether g contains a cycle: an SCC with more than
// one vertex, or a self-loop.
func (g *Graph) IsCyclic() bool {
	for _, e := range g.Edges {
		if e.Src == e.Dst {
			return true
		}
	}
	comps, _ := g.SCCs()
	for _, c := range comps {
		if len(c) > 1 {
			return true
		}
	}
	return false
}

// Quotient collapses each SCC to a single vertex and drops edges
// internal to a component, returning the quotient DAG plus the
// component list (quotient vertex i corresponds to comps[i]). Parallel
// edges between components are kept (their labels matter to the
// scheduler).
func (g *Graph) Quotient() (*Graph, [][]int) {
	comps, compOf := g.SCCs()
	q := New(len(comps))
	if g.Labels != nil {
		q.Labels = make([]string, len(comps))
		for i, c := range comps {
			parts := make([]string, len(c))
			for j, v := range c {
				parts[j] = g.LabelOf(v)
			}
			q.Labels[i] = "{" + join(parts, ",") + "}"
		}
	}
	for _, e := range g.Edges {
		cs, cd := compOf[e.Src], compOf[e.Dst]
		if cs != cd {
			q.Edges = append(q.Edges, Edge{Src: cs, Dst: cd, Kind: e.Kind, Dir: e.Dir})
		}
	}
	return q, comps
}

func join(parts []string, sep string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += sep
		}
		out += p
	}
	return out
}
