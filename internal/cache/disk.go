package cache

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"arraycomp/internal/core"
)

// The persistent tier under the memory LRU: compiled programs whose
// plans are pure data (certified, fully thunkless — see core.Snapshot)
// are written to disk keyed by the same content address as the memory
// cache, so a restarted haccd serves its working set warm, paying only
// deserialization plus closure rebuilding instead of any compile
// phase.
//
// Entry format (all integers little-endian):
//
//	magic   8 bytes  "HACDISK1"
//	version 4 bytes  format version (entries with any other version
//	                 are discarded and recompiled, never migrated)
//	length  8 bytes  payload byte count
//	payload          gob(diskPayload{Key, Snap})
//	sum    32 bytes  SHA-256 over magic+version+length+payload
//
// The checksum makes the whole entry — including the certification
// claim counts inside the snapshot — tamper-evident: flipping the
// certify evidence (or any other byte) breaks the sum and the entry is
// deleted and recompiled. The key rides inside the checksummed payload
// and must match the filename's key, so a valid entry renamed over
// another key is rejected too. This is corruption *detection*, not
// cryptographic authentication: anyone who can write the cache
// directory can forge a checksum, so the directory must be trusted to
// the same degree as the binary.

const (
	diskMagic   = "HACDISK1"
	diskVersion = uint32(1)
	diskExt     = ".hacplan"
)

// diskHeaderLen is magic + version + payload length.
const diskHeaderLen = 8 + 4 + 8

type diskPayload struct {
	// Key is the content address the entry was written under;
	// re-checked against the filename on load.
	Key  string
	Snap *core.Snapshot
}

type diskTier struct {
	dir string
}

func newDiskTier(dir string) (*diskTier, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cache: disk tier: %w", err)
	}
	return &diskTier{dir: dir}, nil
}

func (d *diskTier) path(key string) string {
	return filepath.Join(d.dir, key+diskExt)
}

// write persists one snapshot, atomically (temp file + rename), so a
// concurrent reader or a crash mid-write never observes a torn entry.
func (d *diskTier) write(key string, snap *core.Snapshot) error {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(&diskPayload{Key: key, Snap: snap}); err != nil {
		return err
	}
	var buf bytes.Buffer
	buf.WriteString(diskMagic)
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[0:4], diskVersion)
	binary.LittleEndian.PutUint64(hdr[4:12], uint64(payload.Len()))
	buf.Write(hdr[:])
	buf.Write(payload.Bytes())
	sum := sha256.Sum256(buf.Bytes())
	buf.Write(sum[:])

	tmp, err := os.CreateTemp(d.dir, "."+key+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(buf.Bytes()); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), d.path(key))
}

// load reads, validates, and restores the entry for key. Returns
// (nil, false, nil) on a clean miss (no file). Any validation failure
// deletes the file and returns discarded=true with the reason — the
// caller falls through to the compiler either way.
func (d *diskTier) load(key string, opts core.Options) (prog *core.Program, discarded bool, err error) {
	raw, err := os.ReadFile(d.path(key))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, false, nil
		}
		return nil, false, err
	}
	prog, err = d.validate(key, raw, opts)
	if err != nil {
		os.Remove(d.path(key))
		return nil, true, err
	}
	return prog, false, nil
}

// validate checks structure, version, checksum, and key binding, then
// rebuilds the program (which re-checks the certify gate and that the
// IR still compiles).
func (d *diskTier) validate(key string, raw []byte, opts core.Options) (*core.Program, error) {
	if len(raw) < diskHeaderLen+sha256.Size {
		return nil, fmt.Errorf("cache: disk entry %s truncated (%d bytes)", key, len(raw))
	}
	if string(raw[:8]) != diskMagic {
		return nil, fmt.Errorf("cache: disk entry %s has bad magic", key)
	}
	if v := binary.LittleEndian.Uint32(raw[8:12]); v != diskVersion {
		return nil, fmt.Errorf("cache: disk entry %s has version %d, want %d", key, v, diskVersion)
	}
	plen := binary.LittleEndian.Uint64(raw[12:20])
	if plen != uint64(len(raw)-diskHeaderLen-sha256.Size) {
		return nil, fmt.Errorf("cache: disk entry %s length mismatch", key)
	}
	body := raw[:diskHeaderLen+int(plen)]
	sum := sha256.Sum256(body)
	if !bytes.Equal(sum[:], raw[len(body):]) {
		return nil, fmt.Errorf("cache: disk entry %s checksum mismatch", key)
	}
	var pl diskPayload
	if err := gob.NewDecoder(bytes.NewReader(raw[diskHeaderLen:len(body)])).Decode(&pl); err != nil {
		return nil, fmt.Errorf("cache: disk entry %s: %w", key, err)
	}
	if pl.Key != key {
		return nil, fmt.Errorf("cache: disk entry %s written for key %s", key, pl.Key)
	}
	if pl.Snap == nil {
		return nil, fmt.Errorf("cache: disk entry %s has no snapshot", key)
	}
	return core.RestoreSnapshot(pl.Snap, opts)
}
