package cache

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"arraycomp/internal/core"
	"arraycomp/internal/metrics"
)

func newDiskCache(t *testing.T, dir string) *Cache {
	t.Helper()
	c := New(32, 0)
	if err := c.EnableDisk(dir); err != nil {
		t.Fatal(err)
	}
	return c
}

func certOpts() core.Options { return core.Options{Certify: true} }

// The restart-warmth contract: a second process (here, a second Cache
// over the same directory) serves the first process's compiles from
// disk with zero compile-phase time and bitwise-identical results.
func TestDiskRestartWarmth(t *testing.T) {
	dir := t.TempDir()
	params := map[string]int64{"n": 24}

	c1 := newDiskCache(t, dir)
	e1, origin, err := c1.GetOrCompile(wavefrontSrc, params, certOpts())
	if err != nil || origin != OriginCompile {
		t.Fatalf("cold: origin=%v err=%v", origin, err)
	}
	want, err := e1.Program.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if st := c1.Stats(); st.DiskWrites != 1 {
		t.Fatalf("stats after certified compile: %+v, want 1 disk write", st)
	}

	// "Restart": fresh cache, same directory.
	c2 := newDiskCache(t, dir)
	e2, origin, err := c2.GetOrCompile(wavefrontSrc, params, certOpts())
	if err != nil || origin != OriginDisk {
		t.Fatalf("warm restart: origin=%v err=%v, want disk", origin, err)
	}
	for _, ph := range metrics.CompilePhases {
		if d := e2.Program.Stats.Phases[ph]; d != 0 {
			t.Errorf("disk-restored program charged %v to compile phase %q; must be zero", d, ph)
		}
	}
	if e2.Program.Stats.Phases[metrics.PhaseLoad] <= 0 {
		t.Error("disk-restored program must charge the load phase")
	}
	got, err := e2.Program.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Data {
		if math.Float64bits(got.Data[i]) != math.Float64bits(want.Data[i]) {
			t.Fatalf("element %d differs bitwise after disk restore", i)
		}
	}
	if st := c2.Stats(); st.DiskHits != 1 || st.Misses != 1 {
		t.Fatalf("stats after restore: %+v, want 1 disk hit on 1 miss", st)
	}
	// Third fetch in the same process: memory, not disk.
	if _, origin, _ := c2.GetOrCompile(wavefrontSrc, params, certOpts()); origin != OriginMemory {
		t.Fatalf("second fetch origin=%v, want memory", origin)
	}
}

// diskFile returns the path of the single persisted entry.
func diskFile(t *testing.T, dir string) string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "*"+diskExt))
	if err != nil || len(matches) != 1 {
		t.Fatalf("want exactly one disk entry, got %v (err %v)", matches, err)
	}
	return matches[0]
}

func TestDiskCorruptEntryDiscardedAndRecompiled(t *testing.T) {
	for name, corrupt := range map[string]func([]byte) []byte{
		"flipped payload byte": func(raw []byte) []byte {
			out := append([]byte(nil), raw...)
			out[diskHeaderLen+len(out)/2] ^= 0x40
			return out
		},
		"truncated": func(raw []byte) []byte { return raw[:len(raw)/2] },
		"bad magic": func(raw []byte) []byte {
			out := append([]byte(nil), raw...)
			copy(out, "NOTADISK")
			return out
		},
		"future version": func(raw []byte) []byte {
			out := append([]byte(nil), raw...)
			binary.LittleEndian.PutUint32(out[8:12], 99)
			return out
		},
		"empty file": func([]byte) []byte { return nil },
	} {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			params := map[string]int64{"n": 16}
			c1 := newDiskCache(t, dir)
			if _, _, err := c1.GetOrCompile(wavefrontSrc, params, certOpts()); err != nil {
				t.Fatal(err)
			}
			path := diskFile(t, dir)
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, corrupt(raw), 0o644); err != nil {
				t.Fatal(err)
			}

			c2 := newDiskCache(t, dir)
			var warned []string
			c2.Warnf = func(format string, args ...any) {
				warned = append(warned, fmt.Sprintf(format, args...))
			}
			e, origin, err := c2.GetOrCompile(wavefrontSrc, params, certOpts())
			if err != nil || origin != OriginCompile {
				t.Fatalf("origin=%v err=%v, want clean recompile after corruption", origin, err)
			}
			// The warning must carry the content hash (not just the
			// replica-local path) so operators can correlate the same
			// corrupt plan across replicas.
			key := Key(wavefrontSrc, params, certOpts())
			if len(warned) != 1 || !strings.Contains(warned[0], key) || !strings.Contains(warned[0], path) {
				t.Fatalf("discard warning %q must name content hash %s and path %s", warned, key, path)
			}
			if _, err := e.Program.Run(nil); err != nil {
				t.Fatal(err)
			}
			st := c2.Stats()
			if st.DiskDiscards != 1 {
				t.Fatalf("stats = %+v, want exactly 1 disk discard", st)
			}
			// The recompile re-persisted a valid entry; the next restart
			// is warm again.
			if st.DiskWrites != 1 {
				t.Fatalf("stats = %+v, want the recompile persisted", st)
			}
			c3 := newDiskCache(t, dir)
			if _, origin, err := c3.GetOrCompile(wavefrontSrc, params, certOpts()); err != nil || origin != OriginDisk {
				t.Fatalf("post-repair restart: origin=%v err=%v, want disk", origin, err)
			}
		})
	}
}

// A forged entry whose certification evidence was edited — claims
// count inflated, checksum left stale — must be rejected on load and
// recompiled, never trusted. (The checksum is what binds the certify
// evidence to the plan; see the disk.go format comment for the threat
// model.)
func TestDiskForgedCertifyEvidenceRejected(t *testing.T) {
	dir := t.TempDir()
	params := map[string]int64{"n": 16}
	c1 := newDiskCache(t, dir)
	if _, _, err := c1.GetOrCompile(wavefrontSrc, params, certOpts()); err != nil {
		t.Fatal(err)
	}
	path := diskFile(t, dir)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Forge: decode the payload, flip the certification evidence, and
	// splice the re-encoded payload under the ORIGINAL checksum.
	var pl diskPayload
	payload := raw[diskHeaderLen : len(raw)-sha256.Size]
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&pl); err != nil {
		t.Fatal(err)
	}
	if pl.Snap.CertifiedClaims == 0 {
		t.Fatal("precondition: persisted entry carries certified claims")
	}
	pl.Snap.CertifiedClaims += 1000
	var forged bytes.Buffer
	forged.WriteString(diskMagic)
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[0:4], diskVersion)
	var newPayload bytes.Buffer
	if err := gob.NewEncoder(&newPayload).Encode(&pl); err != nil {
		t.Fatal(err)
	}
	binary.LittleEndian.PutUint64(hdr[4:12], uint64(newPayload.Len()))
	forged.Write(hdr[:])
	forged.Write(newPayload.Bytes())
	forged.Write(raw[len(raw)-sha256.Size:]) // stale checksum from the honest entry
	if err := os.WriteFile(path, forged.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	c2 := newDiskCache(t, dir)
	_, origin, err := c2.GetOrCompile(wavefrontSrc, params, certOpts())
	if err != nil || origin != OriginCompile {
		t.Fatalf("origin=%v err=%v, want the forged entry rejected and recompiled", origin, err)
	}
	if st := c2.Stats(); st.DiskDiscards != 1 {
		t.Fatalf("stats = %+v, want the forged entry discarded", st)
	}
}

// Uncertified compiles must never persist: there is no proof to carry
// across the process boundary.
func TestDiskUncertifiedNeverPersisted(t *testing.T) {
	dir := t.TempDir()
	params := map[string]int64{"n": 16}
	c1 := newDiskCache(t, dir)
	if _, _, err := c1.GetOrCompile(wavefrontSrc, params, core.Options{}); err != nil {
		t.Fatal(err)
	}
	if st := c1.Stats(); st.DiskWrites != 0 {
		t.Fatalf("stats = %+v, uncertified compile must not persist", st)
	}
	if m, _ := filepath.Glob(filepath.Join(dir, "*"+diskExt)); len(m) != 0 {
		t.Fatalf("disk entries written for uncertified compile: %v", m)
	}
	// And a restart recompiles.
	c2 := newDiskCache(t, dir)
	if _, origin, err := c2.GetOrCompile(wavefrontSrc, params, core.Options{}); err != nil || origin != OriginCompile {
		t.Fatalf("origin=%v err=%v, want recompile (nothing persisted)", origin, err)
	}
}

// Thunked programs evaluate through the suspension machinery, which
// is not serializable state — certified or not, they stay memory-only.
func TestDiskThunkedNeverPersisted(t *testing.T) {
	dir := t.TempDir()
	src := `a = array (1,n) [ i := a!i + 1.0 | i <- [1..n] ]` // self-dependent: thunked fallback
	c := newDiskCache(t, dir)
	if _, _, err := c.GetOrCompile(src, map[string]int64{"n": 4}, certOpts()); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.DiskWrites != 0 {
		t.Fatalf("stats = %+v, thunked program must not persist", st)
	}
}

// The satellite contract: 100 concurrent identical failing compiles
// invoke the compiler exactly once (singleflight), every caller sees
// the error, and the failure is cached nowhere — not in memory, not
// on disk. Run under -race in CI.
func TestSingleflightErrorPathNeverCached(t *testing.T) {
	dir := t.TempDir()
	c := newDiskCache(t, dir)
	bad := `a = array (1,n) [ i := z!i | i <- [1..n] ]` // z undeclared
	params := map[string]int64{"n": 8}

	// The compile hook (the flight holder) holds the flight open until
	// every other caller is provably parked on it — SingleflightWaits
	// counts exactly that — then fails. This makes "compiler invoked
	// once" deterministic: while the flight is in the inflight table no
	// other caller can start one, and all n-1 are waiting on it.
	const n = 100
	var compiles atomic.Int64
	wantErr := fmt.Errorf("synthetic compile failure")
	c.compile = func(string, map[string]int64, core.Options) (*core.Program, error) {
		compiles.Add(1)
		deadline := time.Now().Add(10 * time.Second)
		for c.Stats().SingleflightWaits < n-1 {
			if time.Now().After(deadline) {
				return nil, fmt.Errorf("timed out waiting for %d waiters", n-1)
			}
			time.Sleep(time.Millisecond)
		}
		return nil, wantErr
	}

	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, errs[i] = c.GetOrCompile(bad, params, certOpts())
		}(i)
	}
	wg.Wait()

	if got := compiles.Load(); got != 1 {
		t.Fatalf("compiler invoked %d times for %d concurrent identical requests, want exactly 1", got, n)
	}
	for i, err := range errs {
		if err == nil {
			t.Fatalf("caller %d saw no error", i)
		}
		if err != wantErr {
			t.Fatalf("caller %d saw %v, want the one shared compile error", i, err)
		}
	}
	st := c.Stats()
	if st.Entries != 0 {
		t.Fatalf("stats = %+v, failed compile cached in memory", st)
	}
	if st.SingleflightWaits != n-1 {
		t.Fatalf("stats = %+v, want %d singleflight waits", st, n-1)
	}
	if st.DiskWrites != 0 {
		t.Fatalf("stats = %+v, failed compile persisted", st)
	}
	if m, _ := filepath.Glob(filepath.Join(dir, "*")); len(m) != 0 {
		t.Fatalf("failed compile left disk entries: %v", m)
	}
	// Errors are not cached: the next caller compiles again.
	if _, _, err := c.GetOrCompile(bad, params, certOpts()); err == nil {
		t.Fatal("retry after failure: want the error again")
	}
	if got := compiles.Load(); got != 2 {
		t.Fatalf("retry did not re-invoke the compiler (invocations = %d)", got)
	}
}
