package cache

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"arraycomp/internal/analysis"
	"arraycomp/internal/core"
)

const wavefrontSrc = `a = array ((1,1),(n,n))
  ([ (1,j) := 1.0 | j <- [1..n] ] ++
   [ (i,1) := 1.0 | i <- [2..n] ] ++
   [ (i,j) := a!(i-1,j) + a!(i,j-1) | i <- [2..n], j <- [2..n] ])`

func src(i int) string {
	return fmt.Sprintf(`a = array (1,n) [ j := j*%d | j <- [1..n] ]`, i+1)
}

func TestKeyDistinguishesRequests(t *testing.T) {
	base := Key(wavefrontSrc, map[string]int64{"n": 8}, core.Options{})
	cases := map[string]string{
		"source":  Key(wavefrontSrc+" ", map[string]int64{"n": 8}, core.Options{}),
		"params":  Key(wavefrontSrc, map[string]int64{"n": 9}, core.Options{}),
		"options": Key(wavefrontSrc, map[string]int64{"n": 8}, core.Options{Parallel: true}),
		"workers": Key(wavefrontSrc, map[string]int64{"n": 8}, core.Options{Parallel: true, Workers: 2}),
		"bounds": Key(wavefrontSrc, map[string]int64{"n": 8}, core.Options{
			InputBounds: map[string]analysis.ArrayBounds{"b": {Lo: []int64{1}, Hi: []int64{8}}},
		}),
		"certify":        Key(wavefrontSrc, map[string]int64{"n": 8}, core.Options{Certify: true}),
		"tier mode":      Key(wavefrontSrc, map[string]int64{"n": 8}, core.Options{Certify: true, Tier: core.TierAuto}),
		"tier threshold": Key(wavefrontSrc, map[string]int64{"n": 8}, core.Options{Certify: true, Tier: core.TierAuto, TierThreshold: 7}),
		"tier sync":      Key(wavefrontSrc, map[string]int64{"n": 8}, core.Options{Certify: true, Tier: core.TierAuto, TierSync: true}),
	}
	for what, k := range cases {
		if k == base {
			t.Errorf("changing %s did not change the key", what)
		}
	}
	// And the key is stable across map iteration orders.
	again := Key(wavefrontSrc, map[string]int64{"n": 8}, core.Options{})
	if again != base {
		t.Errorf("key not deterministic: %s vs %s", again, base)
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	c := New(3, 0)
	params := map[string]int64{"n": 16}
	get := func(i int) string {
		e, _, err := c.GetOrCompile(src(i), params, core.Options{})
		if err != nil {
			t.Fatalf("compile %d: %v", i, err)
		}
		return e.Key
	}
	k0, k1, k2 := get(0), get(1), get(2)
	get(0)       // touch 0: order now 0,2,1
	k3 := get(3) // evicts 1 (least recently used)
	if st := c.Stats(); st.Evictions != 1 || st.Entries != 3 {
		t.Fatalf("stats = %+v, want 1 eviction, 3 entries", st)
	}
	keys := c.Keys()
	want := []string{k3, k0, k2}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("LRU order = %v, want %v (k1=%s evicted)", keys, want, k1)
		}
	}
	// 1 must now be a miss again.
	_, origin, err := c.GetOrCompile(src(1), params, core.Options{})
	if err != nil || origin.Cached() {
		t.Fatalf("re-fetch of evicted entry: origin=%v err=%v, want cold miss", origin, err)
	}
}

func TestByteCapEnforced(t *testing.T) {
	params := map[string]int64{"n": 16}
	// Find one entry's charge, then allow just under three of them.
	probe := New(0, 0)
	e, _, err := probe.GetOrCompile(src(0), params, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	capBytes := 3*e.Bytes - 1
	c := New(0, capBytes)
	for i := 0; i < 6; i++ {
		if _, _, err := c.GetOrCompile(src(i), params, core.Options{}); err != nil {
			t.Fatal(err)
		}
		if st := c.Stats(); st.Bytes > capBytes {
			t.Fatalf("after insert %d: bytes %d exceed cap %d", i, st.Bytes, capBytes)
		}
	}
	st := c.Stats()
	if st.Entries != 2 || st.Evictions != 4 {
		t.Fatalf("stats = %+v, want 2 entries and 4 evictions under byte cap", st)
	}
}

func TestOversizedEntryNotCached(t *testing.T) {
	c := New(0, 16) // far below any entry's charge
	params := map[string]int64{"n": 16}
	if _, _, err := c.GetOrCompile(src(0), params, core.Options{}); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("oversized entry was cached: %+v", st)
	}
}

// 100 concurrent identical requests must compile exactly once and all
// receive the same Program.
func TestSingleflight(t *testing.T) {
	c := New(8, 0)
	var compiles atomic.Int64
	inner := c.compile
	c.compile = func(s string, p map[string]int64, o core.Options) (*core.Program, error) {
		compiles.Add(1)
		time.Sleep(20 * time.Millisecond) // widen the race window
		return inner(s, p, o)
	}
	const n = 100
	params := map[string]int64{"n": 32}
	var wg sync.WaitGroup
	progs := make([]*core.Program, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			e, _, err := c.GetOrCompile(wavefrontSrc, params, core.Options{})
			if err == nil {
				progs[i] = e.Program
			}
			errs[i] = err
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	if got := compiles.Load(); got != 1 {
		t.Fatalf("compiled %d times under 100 concurrent identical requests, want 1", got)
	}
	for i := 1; i < n; i++ {
		if progs[i] != progs[0] {
			t.Fatalf("request %d got a different Program pointer", i)
		}
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != n-1 {
		t.Fatalf("stats = %+v, want 1 miss and %d hits", st, n-1)
	}
	if st.SingleflightWaits == 0 || st.SingleflightWaits > n-1 {
		t.Fatalf("singleflight waits = %d, want within [1, %d]", st.SingleflightWaits, n-1)
	}
}

// A compile error is returned to every waiter and never cached.
func TestErrorNotCached(t *testing.T) {
	c := New(8, 0)
	bad := `a = array (1,n) [ i := b!i | i <- [1..n] ]` // b undeclared
	for i := 0; i < 2; i++ {
		if _, _, err := c.GetOrCompile(bad, map[string]int64{"n": 4}, core.Options{}); err == nil {
			t.Fatalf("attempt %d: expected compile error", i)
		}
	}
	st := c.Stats()
	if st.Entries != 0 || st.Misses != 2 {
		t.Fatalf("stats = %+v, want 0 entries and 2 misses (errors not cached)", st)
	}
}

// A compile whose certification fails must never be cached: every
// retry (and every singleflight waiter) sees the error, and no entry
// with falsified soundness claims can ever serve a request. The
// certification failure is simulated through the swappable compile
// hook — the real compiler has no known falsifiable claims.
func TestCertifyFailureNotCached(t *testing.T) {
	c := New(8, 0)
	inner := c.compile
	var compiles atomic.Int64
	certErr := fmt.Errorf("core: a: certification falsified 1 claim(s); first: [analysis] forged: falsified")
	c.compile = func(s string, p map[string]int64, o core.Options) (*core.Program, error) {
		compiles.Add(1)
		if o.Certify {
			return nil, certErr
		}
		return inner(s, p, o)
	}
	params := map[string]int64{"n": 8}
	for i := 0; i < 3; i++ {
		_, origin, err := c.GetOrCompile(wavefrontSrc, params, core.Options{Certify: true})
		if err == nil || origin.Cached() {
			t.Fatalf("attempt %d: origin=%v err=%v, want certification error on a cold miss", i, origin, err)
		}
	}
	if got := compiles.Load(); got != 3 {
		t.Fatalf("compiled %d times, want 3 (failures must not be cached)", got)
	}
	if st := c.Stats(); st.Entries != 0 || st.Misses != 3 {
		t.Fatalf("stats = %+v, want 0 entries and 3 misses", st)
	}
	// The same source without certification compiles and caches fine —
	// under a different key, so the failed certify key stays cold.
	if _, origin, err := c.GetOrCompile(wavefrontSrc, params, core.Options{}); err != nil || origin.Cached() {
		t.Fatalf("plain compile after certify failures: origin=%v err=%v", origin, err)
	}
	if st := c.Stats(); st.Entries != 1 {
		t.Fatalf("stats = %+v, want exactly the plain entry cached", st)
	}
}

// A cache hit must evaluate to bitwise-identical output vs a cold
// compile of the same request.
func TestHitBitwiseIdenticalToCold(t *testing.T) {
	params := map[string]int64{"n": 48}
	c := New(8, 0)
	if _, origin, err := c.GetOrCompile(wavefrontSrc, params, core.Options{}); err != nil || origin.Cached() {
		t.Fatalf("warming: origin=%v err=%v", origin, err)
	}
	e, origin, err := c.GetOrCompile(wavefrontSrc, params, core.Options{})
	if err != nil || origin != OriginMemory {
		t.Fatalf("warm fetch: origin=%v err=%v", origin, err)
	}
	warm, err := e.Program.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	coldProg, err := core.Compile(wavefrontSrc, params, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cold, err := coldProg.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(warm.Data) != len(cold.Data) {
		t.Fatalf("size mismatch: %d vs %d", len(warm.Data), len(cold.Data))
	}
	for i := range warm.Data {
		if math.Float64bits(warm.Data[i]) != math.Float64bits(cold.Data[i]) {
			t.Fatalf("element %d differs bitwise: %x vs %x", i,
				math.Float64bits(warm.Data[i]), math.Float64bits(cold.Data[i]))
		}
	}
	// The cached entry carries the original compile report; a hit adds
	// no compile-phase time anywhere.
	if e.Report == nil || e.Report.Total() <= 0 {
		t.Fatalf("cached entry lost its compile report: %+v", e.Report)
	}
}

// Concurrent mixed traffic (hits, misses, evictions) under -race.
func TestConcurrentMixedTraffic(t *testing.T) {
	c := New(4, 0)
	params := map[string]int64{"n": 16}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				e, _, err := c.GetOrCompile(src((g+i)%6), params, core.Options{})
				if err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
				if _, err := e.Program.Run(nil); err != nil {
					t.Errorf("goroutine %d run: %v", g, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if st := c.Stats(); st.Entries > 4 {
		t.Fatalf("entry cap violated: %+v", st)
	}
}

// TestNativeEntriesStat: a cached entry compiled with tiering promotes
// in place (the cache stores the Program, not a snapshot), and the
// stats snapshot counts it — the serving layer's visibility into how
// much of the cache has tiered up.
func TestNativeEntriesStat(t *testing.T) {
	c := New(4, 0)
	params := map[string]int64{"n": 16}
	opts := core.Options{Tier: core.TierAuto, TierThreshold: 2, TierSync: true}
	e, origin, err := c.GetOrCompile(src(0), params, opts)
	if err != nil || origin.Cached() {
		t.Fatalf("cold compile: origin=%v err=%v", origin, err)
	}
	if st := c.Stats(); st.NativeEntries != 0 {
		t.Fatalf("entry counted native before promotion: %+v", st)
	}
	for i := 0; i < 2; i++ {
		if _, err := e.Program.Run(nil); err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
	}
	if tier := e.Program.CurrentTier(); tier != core.TierNative {
		t.Skipf("program did not tier up (plugin support unavailable?): %s — %s",
			tier, e.Program.TierReport())
	}
	st := c.Stats()
	if st.NativeEntries != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 native of 1 entries", st)
	}
	// A hit serves the already-promoted program.
	e2, origin, err := c.GetOrCompile(src(0), params, opts)
	if err != nil || origin != OriginMemory {
		t.Fatalf("warm fetch: origin=%v err=%v", origin, err)
	}
	if e2.Program.CurrentTier() != core.TierNative {
		t.Fatal("cache hit lost the promotion")
	}
}
