// Package cache is the content-addressed compiled-plan cache of the
// serving layer: everything the paper buys — collision-freeness
// proofs, thunkless schedules, doacross plans — is computed at compile
// time, so a service pays the analysis once per distinct (source,
// parameters, options) triple and reuses the compiled Program across
// millions of evaluations.
//
// The cache is keyed by a SHA-256 of a canonical serialization of the
// compilation request, bounded by both an entry count and a byte
// budget with LRU eviction, and uses singleflight admission: N
// concurrent requests for the same missing key run one compile, the
// other N-1 block and share the result. Cached Programs are immutable
// after compilation and safe for concurrent Run (the executor
// allocates per-run frames), so one entry may serve any number of
// simultaneous evaluations.
package cache

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"log"
	"sort"
	"sync"

	"arraycomp/internal/analysis"
	"arraycomp/internal/core"
	"arraycomp/internal/loopir"
	"arraycomp/internal/metrics"
)

// Origin says where GetOrCompile found the program.
type Origin int

const (
	// OriginCompile: a true miss — the compiler ran for this call.
	OriginCompile Origin = iota
	// OriginMemory: served by the in-process LRU (or by waiting on
	// another caller's in-flight compile of the same key).
	OriginMemory
	// OriginDisk: restored from the persistent disk tier — no compile
	// phase ran, only deserialization and closure rebuilding.
	OriginDisk
)

// Cached reports whether the call avoided running the compiler.
func (o Origin) Cached() bool { return o != OriginCompile }

func (o Origin) String() string {
	switch o {
	case OriginMemory:
		return "memory"
	case OriginDisk:
		return "disk"
	default:
		return "compile"
	}
}

// Entry is one cached compilation artifact.
type Entry struct {
	// Key is the content address (hex SHA-256).
	Key string
	// Program is the compiled program, shared by every hit.
	Program *core.Program
	// Report is the compile-time instrumentation record. On a cache
	// hit no compile phase runs, so the serving layer must NOT charge
	// these timings again — they describe the original compilation.
	Report *metrics.CompileReport
	// Bytes is the entry's charged size.
	Bytes int64
}

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Entries   int
	Bytes     int64
	// SingleflightWaits counts callers that blocked on another caller's
	// in-flight compile of the same key instead of compiling themselves.
	SingleflightWaits uint64
	// DiskHits counts misses served by restoring a persisted entry;
	// DiskWrites counts entries persisted; DiskDiscards counts persisted
	// entries rejected on load (corrupt, truncated, forged, wrong
	// version) and deleted. All zero when no disk tier is attached.
	DiskHits     uint64
	DiskWrites   uint64
	DiskDiscards uint64
	// NativeEntries counts cached programs currently being served by
	// the native tier. It is computed at snapshot time (promotion
	// happens in the background, after insertion), so it can grow
	// between snapshots with no cache traffic at all.
	NativeEntries int
}

// flight is one in-progress compile other callers wait on.
type flight struct {
	done chan struct{}
	e    *Entry
	err  error
}

// Cache is a bounded LRU of compiled programs. The zero value is not
// usable; construct with New.
type Cache struct {
	maxEntries int
	maxBytes   int64

	mu       sync.Mutex
	ll       *list.List // front = most recently used; values are *Entry
	byKey    map[string]*list.Element
	inflight map[string]*flight
	bytes    int64

	hits, misses, evictions                    uint64
	sfWaits, diskHits, diskWrites, diskDiscard uint64

	// disk, when non-nil, is the persistent tier misses fall through to
	// before compiling and certified thunkless programs persist into.
	disk *diskTier

	// compile is swappable for tests (singleflight, eviction order).
	compile func(src string, params map[string]int64, opts core.Options) (*core.Program, error)

	// Warnf receives operator-facing warnings (corrupt disk entries and
	// the like). Defaults to log.Printf; replace before serving traffic.
	Warnf func(format string, args ...any)
}

// New builds a cache bounded to maxEntries entries and maxBytes total
// charged bytes (either may be 0 for "unbounded" in that dimension).
func New(maxEntries int, maxBytes int64) *Cache {
	return &Cache{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		ll:         list.New(),
		byKey:      map[string]*list.Element{},
		inflight:   map[string]*flight{},
		compile:    core.Compile,
		Warnf:      log.Printf,
	}
}

// EnableDisk attaches a persistent tier rooted at dir (created if
// missing). Misses check the disk before compiling; compiles whose
// program snapshots (certified, fully thunkless) persist for the next
// process. Call before serving traffic; the cache does not lock dir
// against other processes — entries are content-addressed and written
// atomically, so concurrent writers converge on identical files.
func (c *Cache) EnableDisk(dir string) error {
	d, err := newDiskTier(dir)
	if err != nil {
		return err
	}
	c.mu.Lock()
	c.disk = d
	c.mu.Unlock()
	return nil
}

// Key computes the content address of a compilation request: a
// SHA-256 over a canonical serialization of the source text, the
// parameter binding, and every semantically relevant core.Option.
// Two requests share a compiled plan iff their keys are equal.
func Key(src string, params map[string]int64, opts core.Options) string {
	h := sha256.New()
	writeStr := func(s string) {
		var n [8]byte
		binary.LittleEndian.PutUint64(n[:], uint64(len(s)))
		h.Write(n[:])
		h.Write([]byte(s))
	}
	writeInt := func(v int64) {
		var n [8]byte
		binary.LittleEndian.PutUint64(n[:], uint64(v))
		h.Write(n[:])
	}
	writeStr(src)
	names := make([]string, 0, len(params))
	for k := range params {
		names = append(names, k)
	}
	sort.Strings(names)
	writeInt(int64(len(names)))
	for _, k := range names {
		writeStr(k)
		writeInt(params[k])
	}
	writeInt(int64(opts.ExactBudget))
	writeInt(boolInt(opts.ForceThunked))
	writeInt(boolInt(opts.Parallel))
	writeInt(int64(opts.Workers))
	writeInt(boolInt(opts.NoLinearize))
	writeInt(boolInt(opts.ForceChecks))
	writeInt(boolInt(opts.NoOptimize))
	writeInt(boolInt(opts.NoStencil))
	writeInt(boolInt(opts.NoIdxProp))
	writeInt(boolInt(opts.Certify))
	// Tiering changes what the entry serves with (and TierMode != off
	// forces certification on), so two requests differing only in tier
	// policy must not share a cached Program: the shared tierState would
	// let one caller's promotion leak into the other's policy.
	writeInt(int64(opts.Tier))
	writeInt(int64(opts.TierThreshold))
	writeInt(boolInt(opts.TierSync))
	// Streaming swaps the whole execution engine (windowed pipeline vs
	// materialized store), so a streaming request never shares an
	// entry with a materialized one.
	writeInt(boolInt(opts.Stream))
	arrays := make([]string, 0, len(opts.InputBounds))
	for k := range opts.InputBounds {
		arrays = append(arrays, k)
	}
	sort.Strings(arrays)
	writeInt(int64(len(arrays)))
	for _, k := range arrays {
		writeStr(k)
		b := opts.InputBounds[k]
		writeInt(int64(len(b.Lo)))
		for d := range b.Lo {
			writeInt(b.Lo[d])
			writeInt(b.Hi[d])
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

func boolInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// entryBytes charges an entry for its source text plus the deep size
// of every compiled loop-IR program it retains (loopir.Size walks the
// statement and expression trees), so the byte cap tracks what a plan
// actually holds — a stencil-split tiled nest charges far more than a
// one-loop map of the same source length. Thunked definitions have no
// IR; they get a flat per-definition charge.
const (
	entryBaseBytes = 1 << 10 // fixed per-entry overhead
	defBytes       = 1 << 9  // per thunked (IR-less) definition
)

func entryBytes(src string, prog *core.Program) int64 {
	n := entryBaseBytes + int64(len(src))
	for _, cd := range prog.Defs {
		if cd.Plan != nil && cd.Plan.Program != nil {
			n += loopir.Size(cd.Plan.Program)
		} else {
			n += defBytes
		}
	}
	return n
}

// GetOrCompile returns the compiled program for the request,
// compiling (at most once per key, however many callers race) on a
// miss. The Origin reports how the call was served: memory hit, disk
// restore, or a fresh compile. Compile errors are never cached, in
// memory or on disk — the next caller retries.
func (c *Cache) GetOrCompile(src string, params map[string]int64, opts core.Options) (*Entry, Origin, error) {
	key := Key(src, params, opts)
	c.mu.Lock()
	if el, ok := c.byKey[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		e := el.Value.(*Entry)
		c.mu.Unlock()
		return e, OriginMemory, nil
	}
	if fl, ok := c.inflight[key]; ok {
		// Singleflight wait: someone else is compiling this key.
		c.sfWaits++
		c.mu.Unlock()
		<-fl.done
		if fl.err != nil {
			return nil, OriginCompile, fl.err
		}
		// Served without compiling: count as a hit. (The entry may
		// have been evicted already under a tiny byte cap; the
		// flight result is still valid to use.)
		c.mu.Lock()
		c.hits++
		if el, ok := c.byKey[key]; ok {
			c.ll.MoveToFront(el)
		}
		c.mu.Unlock()
		return fl.e, OriginMemory, nil
	}
	fl := &flight{done: make(chan struct{})}
	c.inflight[key] = fl
	c.misses++
	disk := c.disk
	c.mu.Unlock()

	origin := OriginCompile
	var prog *core.Program
	if disk != nil {
		// Disk tier first: a persisted entry skips every compile phase.
		// Load failures (corrupt, truncated, forged, stale version) have
		// already deleted the file; fall through to the compiler.
		loaded, discarded, err := disk.load(key, opts)
		c.mu.Lock()
		if discarded {
			c.diskDiscard++
			// The content hash — not just the replica-local path — is
			// what lets a fleet operator correlate the same corrupt plan
			// across replicas sharing a cache image.
			c.Warnf("cache: discarded disk entry %s (content hash %s): %v", disk.path(key), key, err)
		}
		if err == nil && loaded != nil {
			c.diskHits++
		}
		c.mu.Unlock()
		if err == nil && loaded != nil {
			prog = loaded
			origin = OriginDisk
		}
	}
	if prog == nil {
		var err error
		prog, err = c.compile(src, params, opts)
		if err != nil {
			fl.err = err
			c.finishFlight(key, fl)
			return nil, OriginCompile, err
		}
		if disk != nil {
			// Persist best-effort: only certified, fully thunkless
			// programs snapshot; everything else stays memory-only.
			if snap, err := prog.Snapshot(); err == nil {
				if disk.write(key, snap) == nil {
					c.mu.Lock()
					c.diskWrites++
					c.mu.Unlock()
				}
			}
		}
	}
	e := &Entry{Key: key, Program: prog, Report: prog.Stats, Bytes: entryBytes(src, prog)}
	fl.e = e
	c.finishFlight(key, fl)
	return e, origin, nil
}

// finishFlight publishes a flight's result, inserting successful
// entries and evicting LRU victims over budget (an entry alone larger
// than the whole byte budget is inserted and immediately evicted, so
// it can never squat in the cache).
func (c *Cache) finishFlight(key string, fl *flight) {
	c.mu.Lock()
	delete(c.inflight, key)
	if fl.err == nil {
		el := c.ll.PushFront(fl.e)
		c.byKey[key] = el
		c.bytes += fl.e.Bytes
		c.evictLocked()
	}
	c.mu.Unlock()
	close(fl.done)
}

// evictLocked removes least-recently-used entries until both caps
// hold — including the most-recently-inserted entry itself when it
// alone exceeds the byte budget. Callers hold c.mu.
func (c *Cache) evictLocked() {
	for (c.maxEntries > 0 && c.ll.Len() > c.maxEntries) ||
		(c.maxBytes > 0 && c.bytes > c.maxBytes) {
		el := c.ll.Back()
		if el == nil {
			return
		}
		e := c.ll.Remove(el).(*Entry)
		delete(c.byKey, e.Key)
		c.bytes -= e.Bytes
		c.evictions++
	}
}

// Stats snapshots the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	native := 0
	for el := c.ll.Front(); el != nil; el = el.Next() {
		if el.Value.(*Entry).Program.CurrentTier() == core.TierNative {
			native++
		}
	}
	return Stats{
		Hits:              c.hits,
		Misses:            c.misses,
		Evictions:         c.evictions,
		Entries:           c.ll.Len(),
		Bytes:             c.bytes,
		NativeEntries:     native,
		SingleflightWaits: c.sfWaits,
		DiskHits:          c.diskHits,
		DiskWrites:        c.diskWrites,
		DiskDiscards:      c.diskDiscard,
	}
}

// Keys returns the cached keys in LRU order, most recent first
// (tests and debugging).
func (c *Cache) Keys() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, c.ll.Len())
	for el := c.ll.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*Entry).Key)
	}
	return out
}

// String renders the stats for logs.
func (s Stats) String() string {
	return fmt.Sprintf("hits=%d misses=%d evictions=%d entries=%d native=%d bytes=%d sfwaits=%d disk_hits=%d disk_writes=%d disk_discards=%d",
		s.Hits, s.Misses, s.Evictions, s.Entries, s.NativeEntries, s.Bytes,
		s.SingleflightWaits, s.DiskHits, s.DiskWrites, s.DiskDiscards)
}

// InputBoundsOf is a convenience for callers building Options from
// runtime arrays: it converts bounds pairs into the analysis form.
func InputBoundsOf(lo, hi []int64) analysis.ArrayBounds {
	return analysis.ArrayBounds{Lo: append([]int64(nil), lo...), Hi: append([]int64(nil), hi...)}
}
