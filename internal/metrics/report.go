// Package metrics is the compiler's instrumentation layer: per-phase
// timings and optimization counters recorded by every Compile (the
// CompileReport), plus a small process-wide metric registry with
// Prometheus text exposition for the haccd service.
//
// Everything the paper buys — collision-freeness proofs, elided
// empties sweeps, thunkless schedules, doacross plans — is computed at
// compile time, so a serving system wants two things from the
// compiler: to know where compile time goes (so cached plans can be
// shown to skip it) and to know *why* each optimization fired (so a
// cached plan stays auditable). The CompileReport records both.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Phase names the compiler phases a CompileReport times. They match
// the pipeline order: parse → analyze → plan (scheduling) → lower
// (codegen) → optimize (loop-IR rewrites).
const (
	PhaseParse    = "parse"
	PhaseAnalyze  = "analyze"
	PhasePlan     = "plan"
	PhaseLower    = "lower"
	PhaseOptimize = "optimize"
	// PhaseCertify times the -certify soundness audit (witness checks
	// and shadow-domain enumeration across all three layers).
	PhaseCertify = "certify"
	// PhasePromote times native tier-up: gogen emission plus the
	// toolchain build and load. Charged at compile time only when the
	// native tier is forced; background promotions account into
	// TierStats.PromoteNs instead (a CompileReport is read-only once
	// compilation returns).
	PhasePromote = "promote"
	// PhaseLoad times restoring a compiled program from the persistent
	// disk cache tier: deserialization plus IR-to-closure compilation.
	// It is the ONLY phase a disk-warm program pays — parse, analyze,
	// plan, lower, optimize, and certify all stay at zero, which is the
	// restart-warmth contract tests assert through Program.Stats.
	PhaseLoad = "load"
)

// Phases lists every compile phase in pipeline order.
var Phases = []string{PhaseParse, PhaseAnalyze, PhasePlan, PhaseLower, PhaseOptimize, PhaseCertify, PhasePromote, PhaseLoad}

// CompilePhases lists the phases that represent actual compilation
// work (everything but PhaseLoad). A program served from the disk tier
// must show zero time across all of them.
var CompilePhases = []string{PhaseParse, PhaseAnalyze, PhasePlan, PhaseLower, PhaseOptimize, PhaseCertify, PhasePromote}

// Counters tallies the optimizations a compilation performed — the
// quantities the paper's analyses exist to maximize.
type Counters struct {
	// CollisionChecksElided counts clause writes whose collision check
	// was discharged statically (the §7 interleave/permutation proofs).
	CollisionChecksElided int `json:"collision_checks_elided"`
	// EmptiesChecksElided counts definitions whose definedness bitmap
	// and final empties sweep were proven redundant (§4).
	EmptiesChecksElided int `json:"empties_checks_elided"`
	// ThunksAvoided counts definitions compiled thunkless or in-place
	// (a static schedule exists; no suspension graph is built).
	ThunksAvoided int `json:"thunks_avoided"`
	// ThunkedDefs counts definitions that fell back to the thunked
	// evaluator (no static schedule, non-strict binding, or a
	// mutually recursive group).
	ThunkedDefs int `json:"thunked_defs"`
	// LoopsFused counts adjacent loop pairs merged by the optimizer.
	LoopsFused int `json:"loops_fused"`
	// SchedulesByKind counts compiled loops by execution shape:
	// "sequential", "shard", "tile", "wavefront", "chains".
	SchedulesByKind map[string]int `json:"schedules_by_kind,omitempty"`
	// ClaimsCertified/ClaimsFalsified/ClaimsSkipped tally the -certify
	// audit outcomes across the analysis, schedule, and plan layers
	// (all zero unless certification ran).
	ClaimsCertified int `json:"claims_certified,omitempty"`
	ClaimsFalsified int `json:"claims_falsified,omitempty"`
	ClaimsSkipped   int `json:"claims_skipped,omitempty"`
	// IdxClaims counts the index-array property claims the conditional
	// subscripted-subscript analysis assumed; IdxClaimsStatic counts how
	// many of them were discharged statically from the index array's own
	// defining comprehension (the rest carry a runtime verifier guard).
	IdxClaims       int `json:"idx_claims,omitempty"`
	IdxClaimsStatic int `json:"idx_claims_static,omitempty"`
}

// AddSchedule bumps the counter for one loop's schedule kind.
func (c *Counters) AddSchedule(kind string) {
	if c.SchedulesByKind == nil {
		c.SchedulesByKind = map[string]int{}
	}
	c.SchedulesByKind[kind]++
}

// CompileReport is the instrumentation record of one Compile: where
// the time went and which optimizations fired. A report is built
// single-threaded during compilation and read-only afterwards, so a
// cached plan may share its report across concurrent readers.
type CompileReport struct {
	// Phases maps phase name to cumulative time spent in it.
	Phases   map[string]time.Duration `json:"phases"`
	Counters Counters                 `json:"counters"`
}

// NewCompileReport returns an empty report.
func NewCompileReport() *CompileReport {
	return &CompileReport{Phases: map[string]time.Duration{}}
}

// AddPhase accumulates time into a phase.
func (r *CompileReport) AddPhase(phase string, d time.Duration) {
	if d < 0 {
		d = 0
	}
	r.Phases[phase] += d
}

// Total returns the summed phase time.
func (r *CompileReport) Total() time.Duration {
	var t time.Duration
	for _, d := range r.Phases {
		t += d
	}
	return t
}

// String renders the report for `hacc -explain` and logs.
func (r *CompileReport) String() string {
	var b strings.Builder
	b.WriteString("compile phases:\n")
	for _, p := range Phases {
		if p == PhasePromote && r.Phases[p] == 0 {
			// Only forced-tier compiles charge a promote phase; keep
			// the report stable for everyone else.
			continue
		}
		fmt.Fprintf(&b, "  %-9s %12v\n", p, r.Phases[p].Round(time.Microsecond))
	}
	fmt.Fprintf(&b, "  %-9s %12v\n", "total", r.Total().Round(time.Microsecond))
	c := r.Counters
	b.WriteString("optimizations:\n")
	fmt.Fprintf(&b, "  collision checks elided  %d\n", c.CollisionChecksElided)
	fmt.Fprintf(&b, "  empties checks elided    %d\n", c.EmptiesChecksElided)
	fmt.Fprintf(&b, "  thunks avoided           %d (thunked: %d)\n", c.ThunksAvoided, c.ThunkedDefs)
	fmt.Fprintf(&b, "  loops fused              %d\n", c.LoopsFused)
	if c.ClaimsCertified+c.ClaimsFalsified+c.ClaimsSkipped > 0 {
		fmt.Fprintf(&b, "  claims certified         %d (falsified: %d, skipped: %d)\n",
			c.ClaimsCertified, c.ClaimsFalsified, c.ClaimsSkipped)
	}
	if len(c.SchedulesByKind) > 0 {
		kinds := make([]string, 0, len(c.SchedulesByKind))
		for k := range c.SchedulesByKind {
			kinds = append(kinds, k)
		}
		sort.Strings(kinds)
		var parts []string
		for _, k := range kinds {
			parts = append(parts, fmt.Sprintf("%s=%d", k, c.SchedulesByKind[k]))
		}
		fmt.Fprintf(&b, "  schedules                %s\n", strings.Join(parts, " "))
	}
	return b.String()
}
