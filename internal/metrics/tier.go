package metrics

import "sync/atomic"

// TierStats is the runtime-side companion of the CompileReport: where
// the CompileReport is written once during compilation and read-only
// afterwards, TierStats is written concurrently by every Run of a
// tiered program, so all fields are atomics. One TierStats is
// typically shared by a whole process (haccd wires it to /metrics);
// passing it via Options.TierStats makes every compiled program
// account into it.
type TierStats struct {
	// ThunkedRuns counts evaluations served by the thunked reference
	// tier (every live definition fell back to suspensions).
	ThunkedRuns atomic.Int64
	// InterpRuns counts evaluations served by the loop-IR interpreter.
	InterpRuns atomic.Int64
	// NativeRuns counts evaluations served by compiled Go.
	NativeRuns atomic.Int64
	// Promotions counts successful interpreted→native tier-ups.
	Promotions atomic.Int64
	// PromoteFailures counts promotions that failed to build or load
	// (the program keeps running interpreted).
	PromoteFailures atomic.Int64
	// PromoteNs accumulates wall time spent in native builds.
	PromoteNs atomic.Int64
}
