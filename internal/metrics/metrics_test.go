package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCompileReportPhases(t *testing.T) {
	r := NewCompileReport()
	r.AddPhase(PhaseParse, 2*time.Millisecond)
	r.AddPhase(PhaseParse, 3*time.Millisecond)
	r.AddPhase(PhaseLower, 5*time.Millisecond)
	r.AddPhase(PhaseOptimize, -time.Second) // clamped
	if got := r.Phases[PhaseParse]; got != 5*time.Millisecond {
		t.Fatalf("parse phase = %v, want 5ms", got)
	}
	if got := r.Total(); got != 10*time.Millisecond {
		t.Fatalf("total = %v, want 10ms", got)
	}
	r.Counters.AddSchedule("wavefront")
	r.Counters.AddSchedule("wavefront")
	r.Counters.AddSchedule("tile")
	s := r.String()
	for _, want := range []string{"parse", "optimize", "wavefront=2", "tile=1"} {
		if !strings.Contains(s, want) {
			t.Errorf("report %q missing %q", s, want)
		}
	}
}

func TestRegistryExposition(t *testing.T) {
	reg := NewRegistry()
	c := reg.NewCounter("test_total", "a counter")
	c.Add(3)
	g := reg.NewGauge("test_gauge", "a gauge")
	g.Set(1.5)
	reg.NewGaugeFunc("test_fn", "a callback gauge", func() float64 { return 42 })
	cv := reg.NewCounterVec("test_labeled_total", "labeled", "kind")
	cv.With("a").Inc()
	cv.With("b").Add(2)
	hv := reg.NewHistogramVec("test_seconds", "latency", "phase", []float64{0.1, 1})
	hv.With("parse").Observe(0.05)
	hv.With("parse").Observe(0.5)
	hv.With("parse").Observe(5)

	var b strings.Builder
	reg.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"# TYPE test_total counter",
		"test_total 3",
		"test_gauge 1.5",
		"test_fn 42",
		`test_labeled_total{kind="a"} 1`,
		`test_labeled_total{kind="b"} 2`,
		`test_seconds_bucket{phase="parse",le="0.1"} 1`,
		`test_seconds_bucket{phase="parse",le="1"} 2`,
		`test_seconds_bucket{phase="parse",le="+Inf"} 3`,
		`test_seconds_count{phase="parse"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	reg := NewRegistry()
	reg.NewCounter("dup", "x")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	reg.NewCounter("dup", "y")
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(nil)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				h.Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("count = %d, want 8000", h.Count())
	}
}
