package metrics

import "sync/atomic"

// VerifyStats counts runtime index-array property verifications — the
// one-pass O(n) checks (idxprop.Verify) that guard claim-conditional
// parallel plans. A verification that passes routes execution to the
// claim-assuming fast branch; a failure routes it to the fully checked
// sequential branch. The counters are atomic: compiled programs are
// shared across concurrent callers.
type VerifyStats struct {
	// Verified counts passes (fast branch taken).
	Verified atomic.Int64
	// Failed counts failures (checked fallback taken).
	Failed atomic.Int64
}

// Record tallies one verdict.
func (s *VerifyStats) Record(ok bool) {
	if ok {
		s.Verified.Add(1)
	} else {
		s.Failed.Add(1)
	}
}

// AddN tallies n verdicts of one kind at once — the bulk entry point
// for tiers that batch their verdict reporting (the native tier reads
// counter deltas after each run instead of hooking every check).
func (s *VerifyStats) AddN(ok bool, n int64) {
	if n <= 0 {
		return
	}
	if ok {
		s.Verified.Add(n)
	} else {
		s.Failed.Add(n)
	}
}

// VerifySnapshot is a point-in-time copy for reports.
type VerifySnapshot struct {
	Verified int64 `json:"verified"`
	Failed   int64 `json:"failed"`
}

// Snapshot reads the counters.
func (s *VerifyStats) Snapshot() VerifySnapshot {
	return VerifySnapshot{Verified: s.Verified.Load(), Failed: s.Failed.Load()}
}
