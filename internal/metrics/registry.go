package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// The registry is a deliberately small subset of the Prometheus data
// model — counters, gauges, label-indexed counters/histograms, and
// callback gauges — with text-format exposition. It exists so haccd
// can serve GET /metrics without pulling a client library into the
// module (the container has no network for new dependencies, and the
// text format is a stable, trivially-writable contract).

// Counter is a monotonically increasing uint64.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value reads the counter.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a settable float64.
type Gauge struct {
	mu sync.Mutex
	v  float64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.mu.Lock(); g.v = v; g.mu.Unlock() }

// Value reads the gauge.
func (g *Gauge) Value() float64 { g.mu.Lock(); defer g.mu.Unlock(); return g.v }

// Histogram is a fixed-bucket cumulative histogram.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // upper bounds, ascending; +Inf implicit
	counts []uint64  // len(bounds)+1, non-cumulative per bucket
	sum    float64
	total  uint64
}

// DefBuckets suit compile/request latencies in seconds: 50µs … 10s.
var DefBuckets = []float64{
	50e-6, 100e-6, 250e-6, 500e-6,
	1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3,
	250e-3, 500e-3, 1, 2.5, 5, 10,
}

// NewHistogram builds a histogram over the given ascending upper
// bounds (nil = DefBuckets).
func NewHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefBuckets
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]uint64, len(bounds)+1),
	}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	h.total++
	h.mu.Unlock()
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.total
}

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

func (h *Histogram) snapshot() (bounds []float64, cum []uint64, sum float64, total uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	bounds = h.bounds
	cum = make([]uint64, len(h.counts))
	var acc uint64
	for i, c := range h.counts {
		acc += c
		cum[i] = acc
	}
	return bounds, cum, h.sum, h.total
}

// metric is one registered family.
type metric struct {
	name, help, typ string
	// collect appends exposition lines (without HELP/TYPE headers).
	collect func(w io.Writer)
}

// Registry holds registered metric families and renders them in
// Prometheus text format. Registration happens at service start;
// collection is safe concurrently with updates.
type Registry struct {
	mu      sync.Mutex
	metrics []*metric
	byName  map[string]bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{byName: map[string]bool{}} }

func (r *Registry) register(name, help, typ string, collect func(io.Writer)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.byName[name] {
		panic(fmt.Sprintf("metrics: duplicate registration of %q", name))
	}
	r.byName[name] = true
	r.metrics = append(r.metrics, &metric{name: name, help: help, typ: typ, collect: collect})
}

// NewCounter registers and returns a counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	c := &Counter{}
	r.register(name, help, "counter", func(w io.Writer) {
		fmt.Fprintf(w, "%s %d\n", name, c.Value())
	})
	return c
}

// NewGauge registers and returns a gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(name, help, "gauge", func(w io.Writer) {
		fmt.Fprintf(w, "%s %s\n", name, formatFloat(g.Value()))
	})
	return g
}

// NewGaugeFunc registers a gauge whose value is read from fn at
// collection time (cache sizes, pool occupancy).
func (r *Registry) NewGaugeFunc(name, help string, fn func() float64) {
	r.register(name, help, "gauge", func(w io.Writer) {
		fmt.Fprintf(w, "%s %s\n", name, formatFloat(fn()))
	})
}

// NewCounterFunc registers a counter whose value is read from fn at
// collection time — for monotonic counts owned by another subsystem
// (the plan cache's hit/miss/eviction tallies).
func (r *Registry) NewCounterFunc(name, help string, fn func() uint64) {
	r.register(name, help, "counter", func(w io.Writer) {
		fmt.Fprintf(w, "%s %d\n", name, fn())
	})
}

// NewCounterFuncVec registers a one-label counter family whose values
// are read from fn at collection time — for monotonic per-label counts
// owned by another subsystem (the execution tiers' run tallies).
// Labels are rendered in sorted order, so the exposition is stable.
func (r *Registry) NewCounterFuncVec(name, help, label string, fn func() map[string]uint64) {
	r.register(name, help, "counter", func(w io.Writer) {
		vals := fn()
		keys := make([]string, 0, len(vals))
		for k := range vals {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(w, "%s{%s=%q} %d\n", name, label, k, vals[k])
		}
	})
}

// NewHistogramM registers and returns an unlabeled histogram (nil
// bounds = DefBuckets).
func (r *Registry) NewHistogramM(name, help string, bounds []float64) *Histogram {
	h := NewHistogram(bounds)
	r.register(name, help, "histogram", func(w io.Writer) {
		bs, cum, sum, total := h.snapshot()
		for bi, ub := range bs {
			fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, formatFloat(ub), cum[bi])
		}
		fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum[len(cum)-1])
		fmt.Fprintf(w, "%s_sum %s\n", name, formatFloat(sum))
		fmt.Fprintf(w, "%s_count %d\n", name, total)
	})
	return h
}

// CounterVec is a counter family indexed by one label.
type CounterVec struct {
	mu    sync.Mutex
	label string
	m     map[string]*Counter
}

// With returns (creating if needed) the counter for a label value.
func (v *CounterVec) With(value string) *Counter {
	v.mu.Lock()
	defer v.mu.Unlock()
	c, ok := v.m[value]
	if !ok {
		c = &Counter{}
		v.m[value] = c
	}
	return c
}

// NewCounterVec registers and returns a one-label counter family.
func (r *Registry) NewCounterVec(name, help, label string) *CounterVec {
	v := &CounterVec{label: label, m: map[string]*Counter{}}
	r.register(name, help, "counter", func(w io.Writer) {
		v.mu.Lock()
		keys := make([]string, 0, len(v.m))
		for k := range v.m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(w, "%s{%s=%q} %d\n", name, v.label, k, v.m[k].Value())
		}
		v.mu.Unlock()
	})
	return v
}

// HistogramVec is a histogram family indexed by one label (e.g. the
// compile phase), all members sharing one bucket layout.
type HistogramVec struct {
	mu     sync.Mutex
	label  string
	bounds []float64
	m      map[string]*Histogram
}

// With returns (creating if needed) the histogram for a label value.
func (v *HistogramVec) With(value string) *Histogram {
	v.mu.Lock()
	defer v.mu.Unlock()
	h, ok := v.m[value]
	if !ok {
		h = NewHistogram(v.bounds)
		v.m[value] = h
	}
	return h
}

// NewHistogramVec registers and returns a one-label histogram family
// (nil bounds = DefBuckets).
func (r *Registry) NewHistogramVec(name, help, label string, bounds []float64) *HistogramVec {
	v := &HistogramVec{label: label, bounds: bounds, m: map[string]*Histogram{}}
	r.register(name, help, "histogram", func(w io.Writer) {
		v.mu.Lock()
		keys := make([]string, 0, len(v.m))
		for k := range v.m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		hists := make([]*Histogram, len(keys))
		for i, k := range keys {
			hists[i] = v.m[k]
		}
		v.mu.Unlock()
		for i, k := range keys {
			bounds, cum, sum, total := hists[i].snapshot()
			for bi, ub := range bounds {
				fmt.Fprintf(w, "%s_bucket{%s=%q,le=%q} %d\n", name, v.label, k, formatFloat(ub), cum[bi])
			}
			fmt.Fprintf(w, "%s_bucket{%s=%q,le=\"+Inf\"} %d\n", name, v.label, k, cum[len(cum)-1])
			fmt.Fprintf(w, "%s_sum{%s=%q} %s\n", name, v.label, k, formatFloat(sum))
			fmt.Fprintf(w, "%s_count{%s=%q} %d\n", name, v.label, k, total)
		}
	})
	return v
}

// WritePrometheus renders every registered family in Prometheus text
// exposition format (version 0.0.4).
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	families := append([]*metric(nil), r.metrics...)
	r.mu.Unlock()
	for _, m := range families {
		fmt.Fprintf(w, "# HELP %s %s\n", m.name, m.help)
		fmt.Fprintf(w, "# TYPE %s %s\n", m.name, m.typ)
		m.collect(w)
	}
}

// formatFloat renders a float the way Prometheus expects (no
// exponent for typical magnitudes, +Inf spelled out).
func formatFloat(f float64) string {
	if math.IsInf(f, 1) {
		return "+Inf"
	}
	s := strconv.FormatFloat(f, 'g', -1, 64)
	// Guard against "+Inf"-like forms sneaking into label values.
	return strings.TrimPrefix(s, "+")
}
