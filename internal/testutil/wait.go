// Package testutil holds small helpers shared by this repo's test
// suites.
package testutil

import (
	"testing"
	"time"
)

// WaitTimeout is WaitFor's deadline. It is deliberately generous — a
// loaded CI machine can stall a goroutine for whole seconds — because
// the helper returns the moment the condition holds: a passing test
// pays only the actual latency, and only a genuinely broken one pays
// the full deadline.
const WaitTimeout = 30 * time.Second

// WaitFor polls cond with exponential backoff until it returns true,
// failing the test after WaitTimeout. It replaces hand-rolled
// wall-clock deadline loops, whose short fixed deadlines flake under
// scheduler pressure.
func WaitFor(t testing.TB, what string, cond func() bool) {
	t.Helper()
	if cond() {
		return
	}
	deadline := time.Now().Add(WaitTimeout)
	backoff := 500 * time.Microsecond
	for {
		time.Sleep(backoff)
		if cond() {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out after %v waiting for %s", WaitTimeout, what)
		}
		if backoff < 50*time.Millisecond {
			backoff *= 2
		}
	}
}
