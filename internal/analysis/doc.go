// Package analysis drives the paper's subscript analysis over a parsed
// array definition: it flattens the nested comprehension tree into a
// loop tree with s/v clause leaves, extracts affine subscript forms,
// pairs array references (write/read → flow, read/write → anti,
// write/write → output), runs the GCD/Banerjee/exact test battery with
// direction-vector refinement, and produces:
//
//   - the labeled dependence graph of sections 5 and 8 (clauses as
//     vertices, direction-vector edges),
//   - the write-collision verdict of section 7 (impossible / possible /
//     certain),
//   - the empties verdict of section 4 (no collisions + in-bounds +
//     count == size ⇒ the written subscripts are a permutation of the
//     index space),
//   - per-reference in-bounds proofs used to elide bounds checks.
//
// The analysis is specialized to a concrete binding of the scalar
// parameters (the paper's statically-known loop bounds); the same
// definition can be re-analyzed under different bindings.
package analysis
