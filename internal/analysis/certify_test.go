package analysis

import (
	"strings"
	"testing"

	"arraycomp/internal/certify"
)

// certifySrc analyzes a source program and certifies the result.
func certifySrc(t *testing.T, src string, env map[string]int64) (*Result, *certify.Report) {
	t.Helper()
	res := analyzeSrc(t, src, env)
	return res, Certify(res)
}

func TestCertifyPaperExample1(t *testing.T) {
	src := `a = array (1,300)
	  [* [3*i := 1.0] ++
	     [3*i-1 := 0.5 * a!(3*(i-1))] ++
	     [3*i-2 := 0.5 * a!(3*i)]
	   | i <- [1..100] *]`
	_, rep := certifySrc(t, src, nil)
	if rep.FalsifiedCount != 0 {
		t.Fatalf("sound analysis falsified:\n%s", rep)
	}
	if rep.CertifiedCount == 0 {
		t.Fatalf("no claims certified: %s", rep.Summary())
	}
}

func TestCertifyIndependentClauses(t *testing.T) {
	// Disjoint strides: 2i vs 2i+1 never collide; the collision 'no'
	// verdict and the refuted directions must all certify (shadow
	// clamp engages at n=100: trips 50 ≤ 64, so exhaustively).
	src := `a = array (1,100)
	  [* [2*i := 1.0] ++ [2*i-1 := 2.0] | i <- [1..50] *]`
	res, rep := certifySrc(t, src, nil)
	if res.Collision != No {
		t.Fatalf("collision = %v (%s)", res.Collision, res.CollisionDetail)
	}
	if rep.FalsifiedCount != 0 {
		t.Fatalf("falsified:\n%s", rep)
	}
	// Certification is deterministic: a second pass agrees.
	sum := Certify(res)
	if sum.FalsifiedCount != rep.FalsifiedCount || sum.CertifiedCount != rep.CertifiedCount {
		t.Fatalf("second pass differs: %s vs %s", sum.Summary(), rep.Summary())
	}
}

func TestCertifyInBoundsClaims(t *testing.T) {
	// Writes 1..n of an array with bounds (1,n): in-bounds claims hold
	// and certify exhaustively at small n.
	src := `a = array (1,10) [* [i := 1.0] | i <- [1..10] *]`
	res, rep := certifySrc(t, src, nil)
	if !res.WriteInBounds[0] {
		t.Fatal("writes must be provably in bounds")
	}
	if !res.NoEmpties {
		t.Fatalf("empties: %s", res.EmptiesDetail)
	}
	if rep.FalsifiedCount != 0 {
		t.Fatalf("falsified:\n%s", rep)
	}
}

func TestCertifyCatchesForgedIndependence(t *testing.T) {
	// Forge an unsound analysis: claim the writes of a definition that
	// definitely collides are in bounds of a *smaller* array. The
	// pointwise re-evaluation must falsify the in-bounds claim.
	src := `a = array (1,10) [* [i := 1.0] | i <- [1..10] *]`
	res := analyzeSrc(t, src, nil)
	res.Bounds = ArrayBounds{Lo: []int64{1}, Hi: []int64{5}} // shrink after the fact
	rep := Certify(res)
	if rep.FalsifiedCount == 0 {
		t.Fatalf("forged in-bounds claim survived:\n%s", rep)
	}
	var hit bool
	for _, c := range rep.Failures {
		if strings.Contains(c.Claim, "in bounds") && len(c.Witness) > 0 {
			hit = true
		}
	}
	if !hit {
		t.Fatalf("no witness-carrying in-bounds falsification:\n%s", rep)
	}
}

func TestCertifyCatchesForgedInstanceCount(t *testing.T) {
	src := `a = array (1,10) [* [i := 1.0] | i <- [1..10] *]`
	res := analyzeSrc(t, src, nil)
	if !res.NoEmpties {
		t.Fatal("precondition: NoEmpties")
	}
	res.Clauses[0].Instances = 7 // forge the count the elision rests on
	rep := Certify(res)
	if rep.FalsifiedCount == 0 {
		t.Fatalf("forged instance count survived:\n%s", rep)
	}
}

func TestCertifyBigUpd(t *testing.T) {
	// The paper's relaxation step: anti deps on the source reads.
	src := `param n;
	a2 = bigupd a
	  [ i := 0.5*(a!(i-1) + a!(i+1)) | i <- [2..n-1] ]`
	env := map[string]int64{"n": 20}
	_, rep := certifySrc(t, src, env)
	if rep.FalsifiedCount != 0 {
		t.Fatalf("falsified:\n%s", rep)
	}
	if rep.CertifiedCount == 0 {
		t.Fatalf("nothing certified: %s", rep.Summary())
	}
}

func TestCertifyLargeBoundsShadowClamped(t *testing.T) {
	// Trips beyond the clamp: certification must stay bounded and not
	// falsify anything, but some certificates lose exhaustiveness.
	src := `a = array (1,100000) [* [i := 1.0] | i <- [1..100000] *]`
	_, rep := certifySrc(t, src, nil)
	if rep.FalsifiedCount != 0 {
		t.Fatalf("falsified:\n%s", rep)
	}
}
