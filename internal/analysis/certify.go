package analysis

import (
	"fmt"

	"arraycomp/internal/affine"
	"arraycomp/internal/certify"
	"arraycomp/internal/deptest"
	"arraycomp/internal/lang"
)

// Certification of the analysis layer's verdicts. The dependence graph
// the rest of the compiler trusts is exactly the set of PairDeps the
// pair walk emitted; everything the walk *refuted* is an independence
// claim downstream passes act on. Certify replays the walk with
// identical options and, for every reference pair:
//
//   - cross-validates each refuted concrete direction vector by shadow
//     enumeration (certify.CertifyIndependence);
//   - demands a concrete witness for each Definite claim
//     (certify.CertifyDependence);
//
// plus the two non-pair claim families: per-reference in-bounds proofs
// (re-evaluated pointwise over the clamped iteration space) and the
// def-level collision/empties verdicts.

// maxCertifyShared bounds the shared-loop depth for which the 3^n
// concrete direction vectors are enumerated; deeper pairs are skipped
// rather than exploding.
const maxCertifyShared = 4

// Certify cross-validates every dependence verdict in r and returns
// the aggregated report. It must be called on a Result produced by
// Analyze (it replays the same pair walk with the stored options).
func Certify(r *Result) *certify.Report {
	rep := certify.NewReport()
	c := &resultCertifier{r: r, rep: rep, wwExhaustive: true}
	c.certifyPairs()
	c.certifyBounds()
	c.certifyDefVerdicts()
	return rep
}

type resultCertifier struct {
	r   *Result
	rep *certify.Report
	// wwFalsified / wwExhaustive summarize the write-write pair
	// certificates for the def-level collision verdict.
	wwFalsified  bool
	wwExhaustive bool
}

// certifyPairs replays the three pair families of Analyze — flow,
// anti, write-write — and certifies each pair's claims.
func (c *resultCertifier) certifyPairs() {
	r := c.r
	target := r.Def.Name
	if r.Def.Kind == lang.BigUpd {
		target = r.Def.Source
	}
	for _, sink := range r.Clauses {
		for _, rd := range sink.Reads {
			switch {
			case r.Def.Kind != lang.BigUpd && rd.Ix.Array == target:
				for wi, writer := range r.Clauses {
					c.certifyPair("flow",
						fmt.Sprintf("flow %s→%s", writer.Label(), sink.Label()),
						writer.WriteForms, rd.Forms, writer, sink,
						r.pairOpts(r.budget, r.WriteInBounds[wi], r.ReadInBounds[rd]), false)
				}
			case r.Def.Kind == lang.BigUpd && rd.Ix.Array == r.Def.Source:
				for wi, writer := range r.Clauses {
					c.certifyPair("anti",
						fmt.Sprintf("anti %s→%s", sink.Label(), writer.Label()),
						rd.Forms, writer.WriteForms, sink, writer,
						r.pairOpts(r.budget, r.ReadInBounds[rd], r.WriteInBounds[wi]), false)
				}
			case r.Def.Kind == lang.BigUpd && rd.Ix.Array == r.Def.Name:
				for wi, writer := range r.Clauses {
					c.certifyPair("flow",
						fmt.Sprintf("flow %s→%s", writer.Label(), sink.Label()),
						writer.WriteForms, rd.Forms, writer, sink,
						r.pairOpts(r.budget, r.WriteInBounds[wi], r.ReadInBounds[rd]), false)
				}
			}
		}
	}
	for i, a := range r.Clauses {
		for j := i; j < len(r.Clauses); j++ {
			b := r.Clauses[j]
			c.certifyPair("output",
				fmt.Sprintf("write collision %s×%s", a.Label(), b.Label()),
				a.WriteForms, b.WriteForms, a, b,
				r.pairOpts(r.budget, r.WriteInBounds[i], r.WriteInBounds[j]), true)
		}
	}
}

// certifyPair re-runs one reference-pair analysis and certifies its
// claims. The claimed deps cover a subset of the concrete direction
// vectors over the shared loops; every uncovered vector is an
// independence claim, every Definite dep a dependence claim. isWW
// marks write-write pairs, whose outcomes also feed the collision
// summary.
func (c *resultCertifier) certifyPair(kind, pair string, srcForms, sinkForms []affine.Form, src, sink *FlatClause, opts PairOptions, isWW bool) {
	if srcForms == nil || sinkForms == nil {
		// Non-affine: the analysis already claimed the fully pessimistic
		// '*…*' dependence, so there is no independence to audit.
		return
	}
	deps, err := AnalyzePairOpts(srcForms, sinkForms, src, sink, opts)
	if err != nil {
		c.record(isWW, certify.Certificate{
			Layer: "analysis", Claim: pair, Status: certify.Skipped,
			Detail: fmt.Sprintf("pair replay failed: %v", err),
		})
		return
	}
	probs, shared, err := pairProblems(srcForms, sinkForms, src, sink)
	if err != nil || len(probs) == 0 {
		c.record(isWW, certify.Certificate{
			Layer: "analysis", Claim: pair, Status: certify.Skipped,
			Detail: "no problem battery",
		})
		return
	}
	total := probs[0].NumLoops()
	if shared > maxCertifyShared {
		c.record(isWW, certify.Certificate{
			Layer: "analysis", Claim: pair, Status: certify.Skipped,
			Detail: fmt.Sprintf("%d shared loops exceed the certification depth", shared),
		})
		return
	}
	covered := func(v deptest.Vector) bool {
		for _, dep := range deps {
			ok := true
			for k := 0; k < shared; k++ {
				if dep.Dir[k] != deptest.DirAny && dep.Dir[k] != v[k] {
					ok = false
					break
				}
			}
			if ok {
				return true
			}
		}
		return false
	}
	// Enumerate the 3^shared concrete direction vectors; each one the
	// walk refuted is an independence claim.
	var enum func(v deptest.Vector, k int)
	enum = func(v deptest.Vector, k int) {
		if k == shared {
			if covered(v) {
				return
			}
			claim := fmt.Sprintf("%s dir %s independent", pair, v[:shared])
			c.record(isWW, certify.CertifyIndependence("analysis", claim, probs, v))
			return
		}
		for _, d := range []deptest.Direction{deptest.DirLess, deptest.DirEqual, deptest.DirGreater} {
			child := v.Clone()
			child[k] = d
			enum(child, k+1)
		}
	}
	enum(deptest.AnyVector(total), 0)
	// Every Definite claim must have a concrete witness.
	for _, dep := range deps {
		if dep.Verdict != deptest.Definite {
			continue
		}
		full := deptest.AnyVector(total)
		copy(full, dep.Dir)
		claim := fmt.Sprintf("%s dir %s definite", pair, dep.Dir)
		c.record(isWW, certify.CertifyDependence("analysis", claim, probs, full))
	}
}

func (c *resultCertifier) record(isWW bool, cert certify.Certificate) {
	if isWW {
		if cert.Status == certify.Falsified {
			c.wwFalsified = true
		}
		if !(cert.Status == certify.Certified && cert.Exhaustive) {
			c.wwExhaustive = false
		}
	}
	c.rep.Record(cert)
}

// boundsCheckBudget caps the enumerated instances per in-bounds
// certificate.
const boundsCheckBudget = 1 << 16

// certifyBounds re-proves every claimed in-bounds verdict pointwise:
// each claimed reference is evaluated (with saturating arithmetic) at
// every instance of the clamped iteration space and compared against
// the array bounds. Out-of-range values in the *full* range falsify
// the claim — that is exactly what FormRange asserted.
func (c *resultCertifier) certifyBounds() {
	r := c.r
	for i, cl := range r.Clauses {
		if r.WriteInBounds[i] {
			c.rep.Record(c.boundsCert(
				fmt.Sprintf("writes of %s in bounds", cl.Label()),
				cl.WriteForms, cl, r.Bounds))
		}
		for _, rd := range cl.Reads {
			if !r.ReadInBounds[rd] {
				continue
			}
			b, ok := c.readBounds(rd.Ix.Array)
			if !ok {
				c.rep.Record(certify.Certificate{
					Layer:  "analysis",
					Claim:  fmt.Sprintf("reads of %s in %s bounds", rd.Ix.Array, cl.Label()),
					Status: certify.Skipped, Detail: "bounds of read array unavailable",
				})
				continue
			}
			c.rep.Record(c.boundsCert(
				fmt.Sprintf("reads of %s in %s in bounds", rd.Ix.Array, cl.Label()),
				rd.Forms, cl, b))
		}
	}
}

func (c *resultCertifier) readBounds(name string) (ArrayBounds, bool) {
	r := c.r
	target := r.Def.Name
	if r.Def.Kind == lang.BigUpd {
		target = r.Def.Source
	}
	if name == target || name == r.Def.Name {
		return r.Bounds, true
	}
	b, ok := r.external[name]
	return b, ok
}

// boundsCert enumerates the clause's clamped iteration space and
// checks every subscript tuple against b.
func (c *resultCertifier) boundsCert(claim string, forms []affine.Form, cl *FlatClause, b ArrayBounds) certify.Certificate {
	if len(forms) != b.Rank() {
		return certify.Certificate{
			Layer: "analysis", Claim: claim, Status: certify.Falsified,
			Detail: fmt.Sprintf("rank mismatch: %d subscripts for rank %d", len(forms), b.Rank()),
		}
	}
	refs := make([]affine.NormalizedRef, len(forms))
	for d, f := range forms {
		ref, err := cl.Nest.Normalize(f)
		if err != nil {
			return certify.Certificate{
				Layer: "analysis", Claim: claim, Status: certify.Skipped,
				Detail: fmt.Sprintf("normalize: %v", err),
			}
		}
		refs[d] = ref
	}
	trips := cl.Nest.Trips()
	clamp := make([]int64, len(trips))
	exhaustive := true
	points := int64(1)
	for k, m := range trips {
		clamp[k] = m
		if clamp[k] > certify.ShadowClamp {
			clamp[k] = certify.ShadowClamp
			exhaustive = false
		}
		if clamp[k] < 0 {
			clamp[k] = 0
		}
		if points > boundsCheckBudget {
			continue
		}
		if clamp[k] == 0 {
			points = 0
		} else if points > boundsCheckBudget/clamp[k] {
			points = boundsCheckBudget + 1
		} else {
			points *= clamp[k]
		}
	}
	for points > boundsCheckBudget {
		maxK := 0
		for k := range clamp {
			if clamp[k] > clamp[maxK] {
				maxK = k
			}
		}
		if clamp[maxK] <= 1 {
			break
		}
		clamp[maxK] /= 2
		exhaustive = false
		points = 1
		for _, m := range clamp {
			if m == 0 {
				points = 0
				break
			}
			if points > boundsCheckBudget/m {
				points = boundsCheckBudget + 1
				break
			}
			points *= m
		}
	}
	pos := make([]int64, len(trips))
	sat := false
	var bad []int64
	var walk func(k int) bool
	walk = func(k int) bool {
		if k == len(trips) {
			for d, ref := range refs {
				v, exact := ref.EvalSat(pos)
				if !exact {
					sat = true
					return false
				}
				if v < b.Lo[d] || v > b.Hi[d] {
					bad = append([]int64(nil), pos...)
					return true
				}
			}
			return false
		}
		for p := int64(1); p <= clamp[k]; p++ {
			pos[k] = p
			if walk(k + 1) {
				return true
			}
		}
		return false
	}
	if walk(0) {
		return certify.Certificate{
			Layer: "analysis", Claim: claim, Status: certify.Falsified,
			Witness: bad, Detail: "subscript leaves the array bounds",
		}
	}
	if sat {
		return certify.Certificate{
			Layer: "analysis", Claim: claim, Status: certify.Skipped,
			Detail: "subscript evaluation saturated",
		}
	}
	return certify.Certificate{
		Layer: "analysis", Claim: claim, Status: certify.Certified, Exhaustive: exhaustive,
	}
}

// certifyDefVerdicts records the def-level summary certificates: the
// collision verdict (backed by the write-write pair certificates) and
// the empties elision (its instance-count arithmetic re-checked
// exactly; its other two legs are certified separately above).
func (c *resultCertifier) certifyDefVerdicts() {
	r := c.r
	if r.Collision == No {
		status := certify.Certified
		detail := ""
		if c.wwFalsified {
			status = certify.Falsified
			detail = "a write-write independence claim was falsified"
		}
		c.rep.Record(certify.Certificate{
			Layer:  "analysis",
			Claim:  fmt.Sprintf("%s: collision verdict 'no'", r.Def.Name),
			Status: status, Detail: detail, Exhaustive: c.wwExhaustive,
		})
	}
	if r.Def.Kind == lang.Monolithic && r.NoEmpties {
		var count int64
		for _, cl := range r.Clauses {
			count += cl.Instances
		}
		cert := certify.Certificate{
			Layer: "analysis",
			Claim: fmt.Sprintf("%s: empties excluded", r.Def.Name),
		}
		switch {
		case count != r.Bounds.Size():
			cert.Status = certify.Falsified
			cert.Detail = fmt.Sprintf("%d instances for %d elements", count, r.Bounds.Size())
		case c.wwFalsified:
			cert.Status = certify.Falsified
			cert.Detail = "collision leg falsified"
		default:
			cert.Status = certify.Certified
			cert.Exhaustive = c.wwExhaustive
		}
		c.rep.Record(cert)
	}
}
