package analysis

import (
	"fmt"

	"arraycomp/internal/affine"
	"arraycomp/internal/deptest"
	"arraycomp/internal/idxprop"
	"arraycomp/internal/lang"
)

// Conditional analysis for subscripted subscripts (Bhosale &
// Eigenmann). The unconditional analysis treats an indirect subscript
// `idx!(g)` as opaque: the scatter `out!(idx!(g))` gets Collision =
// Maybe (full collision checks, definedness bitmap, empties sweep),
// and the gather `x!(idx!(g))` keeps its bounds check. This pass
// re-answers those questions *conditionally on index-array
// properties*: the verdicts in a CondResult hold provided the claims
// do, and the claims are discharged either statically (idxprop.Infer
// over the index array's defining comprehension — the core layer does
// this, it can see the whole program) or by the one-pass runtime
// verifier guarding the claim-assuming plan (loopir.BVerify).

// CondResult is the claim-assumed re-analysis of one definition.
type CondResult struct {
	// Claims are the index-array properties every verdict below
	// assumes, normalized. The core layer marks a claim Static when
	// idxprop.Infer proves it from the index array's own definition;
	// the rest must be verified at runtime.
	Claims idxprop.Claims
	// Verdicts are the property-conditional deptest verdicts backing
	// the re-analysis, for diagnostics and certification.
	Verdicts []deptest.CondVerdict
	// Trusted names the index arrays whose loaded values may be used
	// as unchecked subscripts under Claims: every occurrence of the
	// array in a subscript position was matched by the recognizer,
	// its own subscript is provably within the index array's bounds,
	// and a range claim covers the enclosing context.
	Trusted map[string]bool
	// Collision is the claim-assumed collision verdict (monolithic
	// scatters become No under injectivity + range).
	Collision Verdict
	// NoEmpties is the claim-assumed totality verdict (pigeonhole:
	// injective in-range writes, one per element).
	NoEmpties bool
	// WriteInBounds / ReadInBounds are the claim-assumed bounds
	// proofs, superseding the unconditional ones where true.
	WriteInBounds []bool
	ReadInBounds  map[*ReadRef]bool
	// MonoAccum marks the commutative-accumulation pattern: the
	// single clause writes out!(MonoArray!(g)) with g traversing the
	// index array in position order, so the claim-assuming plan may
	// run under a mono-shard schedule (chunks aligned to equal-value
	// runs; bitwise equal to sequential accumulation).
	MonoAccum bool
	MonoArray string
	// Detail is a one-line human-readable summary for reports.
	Detail string
}

// AllStatic reports whether every claim was discharged statically.
func (c *CondResult) AllStatic() bool {
	for _, cl := range c.Claims {
		if !cl.Static {
			return false
		}
	}
	return true
}

// indirectSub matches a one-level indirect subscript `idx!(inner)`
// against clause cl: idx must be an external rank-1 array whose bounds
// are known, and inner must be affine over the clause nest with a
// value range provably within idx's bounds (the load itself can then
// never fault). Returns the index array name, or "" when the shape
// does not match.
func (r *Result) indirectSub(cl *FlatClause, sub lang.Expr) string {
	ix, ok := sub.(*lang.Index)
	if !ok || len(ix.Subs) != 1 {
		return ""
	}
	if ix.Array == r.Def.Name || ix.Array == r.Def.Source {
		return "" // self-indirection: the values are not inputs
	}
	b, ok := r.external[ix.Array]
	if !ok || b.Rank() != 1 {
		return ""
	}
	isIndex := func(v string) bool { return cl.Nest.Index(v) >= 0 }
	form, err := affine.FromExpr(wrapLets(ix.Subs[0], cl.Lets), isIndex, r.Env)
	if err != nil {
		return ""
	}
	iv, err := FormRange(form, cl)
	if err != nil || iv.Lo < b.Lo[0] || iv.Hi > b.Hi[0] {
		return ""
	}
	return ix.Array
}

// innerForm re-extracts the affine form of the matched indirect
// subscript's inner expression (callers that need the traversal
// coefficient).
func (r *Result) innerForm(cl *FlatClause, sub lang.Expr) (affine.Form, string, bool) {
	ix, ok := sub.(*lang.Index)
	if !ok || len(ix.Subs) != 1 {
		return affine.Form{}, "", false
	}
	isIndex := func(v string) bool { return cl.Nest.Index(v) >= 0 }
	form, err := affine.FromExpr(wrapLets(ix.Subs[0], cl.Lets), isIndex, r.Env)
	if err != nil {
		return affine.Form{}, "", false
	}
	return form, ix.Array, true
}

// analyzeCond builds the conditional re-analysis. It is deliberately
// conservative: any indirect write outside the recognized scatter /
// aligned-accumulation patterns, and the definition gets no
// CondResult at all (the unconditional checked path stands alone).
// Unmatched indirect *reads* merely stay checked in the claim-assuming
// plan.
func (r *Result) analyzeCond() {
	if r.Def.Kind == lang.BigUpd {
		return
	}
	cond := &CondResult{
		Trusted:       map[string]bool{},
		Collision:     r.Collision,
		NoEmpties:     r.NoEmpties,
		WriteInBounds: append([]bool(nil), r.WriteInBounds...),
		ReadInBounds:  map[*ReadRef]bool{},
	}
	indirect := false

	// Writes first: a non-affine write subscript must match one of the
	// two scatter patterns or the whole conditional analysis is off.
	for i, cl := range r.Clauses {
		if cl.WriteAffine {
			continue
		}
		if len(cl.Clause.Subs) != 1 || r.Bounds.Rank() != 1 {
			return
		}
		idx := r.indirectSub(cl, cl.Clause.Subs[0])
		if idx == "" {
			return
		}
		form, _, ok := r.innerForm(cl, cl.Clause.Subs[0])
		if !ok {
			return
		}
		switch r.Def.Kind {
		case lang.Monolithic:
			// Scatter out!(idx!(g)): distinct instances must hit
			// distinct idx positions, so injectivity of the index
			// array's values forces distinct target elements.
			if len(r.Clauses) != 1 || cl.Guarded || len(cl.Nest) != 1 {
				return
			}
			a := form.CoeffOf(cl.Nest[0].Var)
			if (a != 1 && a != -1) || cl.Nest[0].Stride*cl.Nest[0].Stride != 1 {
				return
			}
			v := deptest.ScatterIndependent(idx, r.Bounds.Lo[0], r.Bounds.Hi[0])
			cond.Verdicts = append(cond.Verdicts, v)
			cond.Claims = append(cond.Claims, v.Claims...)
			cond.Collision = No
			cond.WriteInBounds[i] = true
			if cl.Instances == r.Bounds.Size() {
				// Pigeonhole: Instances distinct in-range writes into
				// exactly Instances elements define every element.
				cond.NoEmpties = true
			}
			cond.Trusted[idx] = true
			indirect = true
		case lang.Accumulated:
			if !r.Def.Accum.Commutative() {
				return
			}
			v := deptest.AccumAligned(idx, r.Bounds.Lo[0], r.Bounds.Hi[0])
			cond.Verdicts = append(cond.Verdicts, v)
			cond.Claims = append(cond.Claims, v.Claims...)
			cond.WriteInBounds[i] = true
			cond.Trusted[idx] = true
			indirect = true
			// Mono-shard alignment additionally needs the traversal to
			// visit idx positions in increasing order: a single clause
			// under a single forward unit-stride loop with coefficient
			// +1 on the loop variable.
			if len(r.Clauses) == 1 && len(cl.Nest) == 1 &&
				cl.Nest[0].Stride == 1 && form.CoeffOf(cl.Nest[0].Var) == 1 {
				cond.MonoAccum = true
				cond.MonoArray = idx
			}
		default:
			return
		}
	}

	// Reads: each non-affine read whose every dimension is either
	// affine-in-bounds or a matched indirect subscript becomes
	// in-bounds under range claims. Unmatched reads stay checked.
	for _, cl := range r.Clauses {
		for _, rd := range cl.Reads {
			if rd.Affine || r.ReadInBounds[rd] {
				continue
			}
			b, ok := r.readBounds(rd.Ix.Array)
			if !ok || b.Rank() != len(rd.Ix.Subs) {
				continue
			}
			var claims idxprop.Claims
			var verdicts []deptest.CondVerdict
			matched := true
			isIndex := func(v string) bool { return cl.Nest.Index(v) >= 0 }
			for d, sub := range rd.Ix.Subs {
				if form, err := affine.FromExpr(wrapLets(sub, cl.Lets), isIndex, r.Env); err == nil {
					iv, err := FormRange(form, cl)
					if err != nil || iv.Lo < b.Lo[d] || iv.Hi > b.Hi[d] {
						matched = false
						break
					}
					continue
				}
				idx := r.indirectSub(cl, sub)
				if idx == "" {
					matched = false
					break
				}
				v := deptest.GatherInBounds(idx, b.Lo[d], b.Hi[d])
				verdicts = append(verdicts, v)
				claims = append(claims, v.Claims...)
			}
			if !matched || len(claims) == 0 {
				continue
			}
			cond.Verdicts = append(cond.Verdicts, verdicts...)
			cond.Claims = append(cond.Claims, claims...)
			cond.ReadInBounds[rd] = true
			for _, c := range claims {
				cond.Trusted[c.Array] = true
			}
			indirect = true
		}
	}

	if !indirect {
		return
	}
	cond.Claims = cond.Claims.Normalize()
	empties := "possible"
	if cond.NoEmpties {
		empties = "excluded"
	}
	cond.Detail = fmt.Sprintf("conditional on %s: collision %s, empties %s",
		cond.Claims, cond.Collision, empties)
	r.Cond = cond
	for _, v := range cond.Verdicts {
		r.Diagnostics = append(r.Diagnostics, fmt.Sprintf("idxprop: %s (%s)", v, v.Detail))
	}
}

// readBounds resolves the bounds of an array a clause reads.
func (r *Result) readBounds(name string) (ArrayBounds, bool) {
	if name == r.Def.Name || name == r.Def.Source {
		return r.Bounds, true
	}
	b, ok := r.external[name]
	return b, ok
}
