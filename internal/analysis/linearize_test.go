package analysis

import (
	"testing"

	"arraycomp/internal/deptest"
	"arraycomp/internal/parser"
)

// Linearization (§6's alternative to per-dimension ANDing) models
// memory aliasing exactly for in-bounds references: it refutes
// coupled-dimension false positives and confirms dependences without
// the separability proviso.

// transposedPair builds the write (i,j) / read (j,i) reference pair
// over an n×n iteration space.
func transposedPair(t *testing.T, n int64) (*Result, *FlatClause, *ReadRef) {
	t.Helper()
	prog, err := parser.ParseProgram(`param n;
	a2 = bigupd a [* [ (i,j) := a!(j,i) ] | i <- [1..n], j <- [1..n] *]`)
	if err != nil {
		t.Fatal(err)
	}
	bounds := ArrayBounds{Lo: []int64{1, 1}, Hi: []int64{n, n}}
	res, err := Analyze(prog.Defs[0], map[string]int64{"n": n}, bounds, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cl := res.Clauses[0]
	return res, cl, cl.Reads[0]
}

func vectorsOf(deps []PairDep) map[string]deptest.Result {
	out := map[string]deptest.Result{}
	for _, d := range deps {
		out[d.Dir.String()] = d.Verdict
	}
	return out
}

func TestLinearizationRefutesCoupledVectors(t *testing.T) {
	n := int64(10)
	res, cl, rd := transposedPair(t, n)
	bounds := res.Bounds

	plain, err := AnalyzePairOpts(rd.Forms, cl.WriteForms, cl, cl, PairOptions{Budget: deptest.DefaultExactBudget})
	if err != nil {
		t.Fatal(err)
	}
	lin, err := AnalyzePairOpts(rd.Forms, cl.WriteForms, cl, cl, PairOptions{
		Budget: deptest.DefaultExactBudget, Linearize: &bounds,
	})
	if err != nil {
		t.Fatal(err)
	}
	pv, lv := vectorsOf(plain), vectorsOf(lin)
	// Memory aliasing of (j,i)-read with (i,j)-write requires the kill
	// instance to be the transposed point: y = (x2, x1). Under (<,<)
	// that needs x1 < y1 = x2 and x2 < y2 = x1 — a contradiction the
	// per-dimension tests cannot see.
	if _, kept := pv["(<,<)"]; !kept {
		t.Fatalf("per-dimension analysis should keep (<,<): %v", pv)
	}
	if _, kept := lv["(<,<)"]; kept {
		t.Errorf("linearization must refute (<,<): %v", lv)
	}
	if _, kept := lv["(>,>)"]; kept {
		t.Errorf("linearization must refute (>,>): %v", lv)
	}
	// Everything linearization keeps must also be kept by the plain
	// battery (it is refutation-only at the vector level).
	for v := range lv {
		if _, ok := pv[v]; !ok {
			t.Errorf("linearized analysis invented vector %s", v)
		}
	}
	if len(lv) >= len(pv) {
		t.Errorf("linearization removed nothing: %d vs %d vectors", len(lv), len(pv))
	}
}

func TestLinearizationUpgradesVerdict(t *testing.T) {
	n := int64(10)
	res, cl, rd := transposedPair(t, n)
	bounds := res.Bounds
	plain, err := AnalyzePairOpts(rd.Forms, cl.WriteForms, cl, cl, PairOptions{Budget: deptest.DefaultExactBudget})
	if err != nil {
		t.Fatal(err)
	}
	lin, err := AnalyzePairOpts(rd.Forms, cl.WriteForms, cl, cl, PairOptions{
		Budget: deptest.DefaultExactBudget, Linearize: &bounds,
	})
	if err != nil {
		t.Fatal(err)
	}
	pv, lv := vectorsOf(plain), vectorsOf(lin)
	// The (=,=) self pair (the diagonal i=j) is a definite alias, but
	// the transposed dimensions are not separable, so the per-dimension
	// verdict must stay Possible; the linearized exact test proves it.
	if pv["(=,=)"] == deptest.Definite {
		t.Fatalf("per-dimension verdict for (=,=) should be capped at possible (not separable): %v", pv)
	}
	if lv["(=,=)"] != deptest.Definite {
		t.Errorf("linearized verdict for (=,=) should be definite: %v", lv)
	}
}

func TestLinearizationAblationEdgeCounts(t *testing.T) {
	src := `param n;
	a2 = bigupd a [* [ (i,j) := a!(j,i) ] | i <- [1..n], j <- [1..n] *]`
	prog, err := parser.ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	bounds := ArrayBounds{Lo: []int64{1, 1}, Hi: []int64{10, 10}}
	env := map[string]int64{"n": 10}
	with, err := Analyze(prog.Defs[0], env, bounds, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	without, err := Analyze(prog.Defs[0], env, bounds, nil, Options{NoLinearize: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(with.Graph.Edges) >= len(without.Graph.Edges) {
		t.Errorf("linearization should remove edges: %d with vs %d without",
			len(with.Graph.Edges), len(without.Graph.Edges))
	}
	// Monotone: every edge kept with linearization exists without it.
	have := map[string]bool{}
	for _, e := range without.Graph.Edges {
		have[e.String()] = true
	}
	for _, e := range with.Graph.Edges {
		if !have[e.String()] {
			t.Errorf("linearized analysis invented edge %s", e)
		}
	}
}

func TestLinearizedProblemMatchesOracle(t *testing.T) {
	// The linearized equation must agree with direct offset comparison
	// for in-bounds points.
	res, cl, rd := transposedPair(t, 4)
	probs, _, err := pairProblems(rd.Forms, cl.WriteForms, cl, cl)
	if err != nil {
		t.Fatal(err)
	}
	lin, ok := linearizedProblem(probs, &res.Bounds)
	if !ok {
		t.Fatal("linearization failed")
	}
	n := int64(4)
	// Enumerate instances x (read) and y (write); check lin equation ⟺
	// row-major offsets equal.
	for x1 := int64(1); x1 <= n; x1++ {
		for x2 := int64(1); x2 <= n; x2++ {
			for y1 := int64(1); y1 <= n; y1++ {
				for y2 := int64(1); y2 <= n; y2++ {
					// Read subscript at x: (x2, x1); write at y: (y1, y2).
					readOff := (x2-1)*n + (x1 - 1)
					writeOff := (y1-1)*n + (y2 - 1)
					var lhs int64 = lin.A0
					var rhs int64 = lin.B0
					xs := []int64{x1, x2, 0, 0}
					ys := []int64{0, 0, y1, y2}
					// Combined loop layout: shared prefix is the full
					// 2-loop nest (same clause), so A acts on positions
					// 0,1 and B on the same positions with y values.
					lhs = lin.A0 + lin.A[0]*x1 + lin.A[1]*x2
					rhs = lin.B0 + lin.B[0]*y1 + lin.B[1]*y2
					_ = xs
					_ = ys
					if (lhs == rhs) != (readOff == writeOff) {
						t.Fatalf("linearized equation disagrees at x=(%d,%d) y=(%d,%d): %d=%d vs %d=%d",
							x1, x2, y1, y2, lhs, rhs, readOff, writeOff)
					}
				}
			}
		}
	}
}
