package analysis

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"arraycomp/internal/depgraph"
	"arraycomp/internal/lang"
	"arraycomp/internal/parser"
)

// analyzeSrc parses a single-definition program and analyzes it.
func analyzeSrc(t *testing.T, src string, env map[string]int64) *Result {
	t.Helper()
	prog, err := parser.ParseProgram(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	def := prog.Defs[0]
	var bounds ArrayBounds
	if def.Kind == lang.BigUpd {
		// Tests that use bigupd pass the source bounds via pseudo
		// params lo/hi per dimension; for simplicity all bigupd tests
		// here update an (1..m)×(1..n) or (1..n) array.
		if _, ok := env["m"]; ok {
			bounds = ArrayBounds{Lo: []int64{1, 1}, Hi: []int64{env["m"], env["n"]}}
		} else {
			bounds = ArrayBounds{Lo: []int64{1}, Hi: []int64{env["n"]}}
		}
	} else {
		bounds, err = EvalBounds(def, env)
		if err != nil {
			t.Fatal(err)
		}
	}
	res, err := Analyze(def, env, bounds, nil, Options{})
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return res
}

// edgeSet renders the graph's edges as sorted "src->dst kind dir"
// strings for comparison.
func edgeSet(g *depgraph.Graph) []string {
	var out []string
	for _, e := range g.Edges {
		out = append(out, fmt.Sprintf("%d->%d %s %s", e.Src, e.Dst, e.Kind, e.Dir))
	}
	sort.Strings(out)
	return out
}

func wantEdges(t *testing.T, g *depgraph.Graph, want []string) {
	t.Helper()
	got := edgeSet(g)
	sort.Strings(want)
	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Errorf("edges:\ngot:\n  %s\nwant:\n  %s", strings.Join(got, "\n  "), strings.Join(want, "\n  "))
	}
}

// TestPaperExample1Graph reproduces the dependence graph of the
// paper's section 5, example 1 (experiment E1): clauses at 3i, 3i−1,
// 3i−2 with reads a!(3(i−1)) in clause 2 and a!(3i) in clause 3 give
// exactly the edges 1→2 (<) and 1→3 (=).
func TestPaperExample1Graph(t *testing.T) {
	src := `a = array (1,300)
	  [* [3*i := 1.0] ++
	     [3*i-1 := 0.5 * a!(3*(i-1))] ++
	     [3*i-2 := 0.5 * a!(3*i)]
	   | i <- [1..100] *]`
	res := analyzeSrc(t, src, nil)
	if len(res.Clauses) != 3 {
		t.Fatalf("clauses = %d", len(res.Clauses))
	}
	wantEdges(t, res.Graph, []string{
		"0->1 flow (<)",
		"0->2 flow (=)",
	})
	if res.Collision != No {
		t.Errorf("collision verdict = %v (%s), want no", res.Collision, res.CollisionDetail)
	}
	if !res.NoEmpties {
		t.Errorf("empties not excluded: %s", res.EmptiesDetail)
	}
	for i, ok := range res.WriteInBounds {
		if !ok {
			t.Errorf("clause %d writes not proved in bounds", i)
		}
	}
}

// TestPaperExample2Graph reproduces the shape of section 5, example 2
// (experiment E2): a two-level nest with edges 2→1 (=,>), 1→2 (<,>)
// and 2→3 (<), where clause 3 sits outside the inner loop.
func TestPaperExample2Graph(t *testing.T) {
	src := `param n, m;
	a = array ((1,0),(2*n, m+1))
	  [* ([* [ (2*i, j)   := a!(2*i-1, j+1) ] ++
	          [ (2*i-1, j) := a!(2*i-2, j+1) ]
	        | j <- [1..m] *]) ++
	     [ (2*i, 0) := a!(2*i-3, 1) ]
	   | i <- [1..n] *]`
	res := analyzeSrc(t, src, map[string]int64{"n": 10, "m": 20})
	wantEdges(t, res.Graph, []string{
		"1->0 flow (=,>)",
		"0->1 flow (<,>)",
		"1->2 flow (<)",
	})
}

// TestWavefrontGraph checks the section 3 wavefront recurrence: the
// recurrence clause carries self flow edges (<,=), (=,<), (<,<), and
// the border clauses feed it through loop-independent "()" edges.
func TestWavefrontGraph(t *testing.T) {
	src := `a = array ((1,1),(n,n))
	  ([ (1,j) := 1.0 | j <- [1..n] ] ++
	   [ (i,1) := 1.0 | i <- [2..n] ] ++
	   [ (i,j) := a!(i-1,j) + a!(i,j-1) + a!(i-1,j-1)
	     | i <- [2..n], j <- [2..n] ])`
	res := analyzeSrc(t, src, map[string]int64{"n": 16})
	wantEdges(t, res.Graph, []string{
		"0->2 flow ()",
		"0->2 flow ()", // (i-1,j) and (i-1,j-1) both touch row 1
		"1->2 flow ()",
		"1->2 flow ()", // (i,1)-feeding reads: (i,j-1) at j=2 and (i-1,j-1)
		"2->2 flow (<,<)",
		"2->2 flow (<,=)",
		"2->2 flow (=,<)",
	})
	if res.Collision != No || !res.NoEmpties {
		t.Errorf("wavefront: collision=%v empties=%v (%s)", res.Collision, res.NoEmpties, res.EmptiesDetail)
	}
	if res.SelfBottom {
		t.Error("wavefront must not be flagged self-bottom")
	}
}

func TestCollisionImpossibleEvenOdd(t *testing.T) {
	src := `a = array (1,2*n)
	  ([ 2*i := 1.0 | i <- [1..n] ] ++
	   [ 2*i-1 := 2.0 | i <- [1..n] ])`
	res := analyzeSrc(t, src, map[string]int64{"n": 50})
	if res.Collision != No {
		t.Errorf("collision = %v (%s), want no", res.Collision, res.CollisionDetail)
	}
	if !res.NoEmpties {
		t.Errorf("empties: %s", res.EmptiesDetail)
	}
}

func TestCollisionCertain(t *testing.T) {
	// Two clauses both write element 1.
	src := `a = array (1,n)
	  ([ 1 := 1.0 ] ++ [ 1 := 2.0 ] ++ [ i := 0.0 | i <- [2..n] ])`
	res := analyzeSrc(t, src, map[string]int64{"n": 10})
	if res.Collision != Yes {
		t.Errorf("collision = %v, want yes", res.Collision)
	}
	if res.NoEmpties {
		t.Error("empties must not be excluded when collisions exist")
	}
}

func TestCollisionSelfCarried(t *testing.T) {
	// One clause writing i mod-like pattern: (i mod n)+1 is not affine,
	// so the analysis must be pessimistic (Maybe).
	src := `a = array (1,n) [ i mod n + 1 := 1.0 | i <- [1..n] ]`
	res := analyzeSrc(t, src, map[string]int64{"n": 10})
	if res.Collision != Maybe {
		t.Errorf("collision = %v, want maybe for non-affine writes", res.Collision)
	}
	if res.NoEmpties {
		t.Error("empties must not be provable for non-affine writes")
	}
}

func TestCollisionSelfDefiniteCarried(t *testing.T) {
	// Clause writes (i+1)/... use i - i = constant subscript: every
	// instance writes element 5: certain collision across instances.
	src := `a = array (1,n) [ 5 := 1.0 | i <- [1..n] ]`
	res := analyzeSrc(t, src, map[string]int64{"n": 10})
	if res.Collision != Yes {
		t.Errorf("collision = %v, want yes", res.Collision)
	}
}

func TestEmptiesCountMismatch(t *testing.T) {
	src := `a = array (1,n) [ i := 1.0 | i <- [1..n-1] ]`
	res := analyzeSrc(t, src, map[string]int64{"n": 10})
	if res.Collision != No {
		t.Errorf("collision = %v", res.Collision)
	}
	if res.NoEmpties {
		t.Error("element n is never written; empties must not be excluded")
	}
	if !strings.Contains(res.EmptiesDetail, "9 subscript/value pairs for 10 elements") {
		t.Errorf("detail = %q", res.EmptiesDetail)
	}
}

func TestEmptiesGuarded(t *testing.T) {
	src := `a = array (1,n) [ i := 1.0 | i <- [1..n], i mod 2 == 0 ]`
	res := analyzeSrc(t, src, map[string]int64{"n": 10})
	if res.NoEmpties {
		t.Error("guarded clause cannot prove coverage")
	}
	if !res.Clauses[0].Guarded {
		t.Error("clause must be marked guarded")
	}
}

func TestStaticGuardsFold(t *testing.T) {
	src := `param n;
	a = array (1,n)
	  ([ i := 1.0 | i <- [1..n], n > 0 ] ++
	   [ i := 2.0 | i <- [1..n], n < 0 ])`
	res := analyzeSrc(t, src, map[string]int64{"n": 10})
	// The statically false subtree is dropped before clause
	// registration, so only one clause remains, unguarded (the true
	// guard folded away), and coverage is provable.
	if len(res.Clauses) != 1 {
		t.Fatalf("clauses = %d, want 1 (false branch dropped)", len(res.Clauses))
	}
	if res.Clauses[0].Guarded {
		t.Error("statically true guard must fold away")
	}
	if len(res.Roots) != 1 {
		t.Errorf("roots = %d, want 1", len(res.Roots))
	}
	if !res.NoEmpties {
		t.Errorf("coverage provable after folding: %s", res.EmptiesDetail)
	}
}

func TestOutOfBoundsWriteDetected(t *testing.T) {
	src := `a = array (1,n) [ i + 1 := 1.0 | i <- [1..n] ]`
	res := analyzeSrc(t, src, map[string]int64{"n": 10})
	if res.WriteInBounds[0] {
		t.Error("i+1 over [1..n] writes n+1: must not be proved in bounds")
	}
	if res.NoEmpties {
		t.Error("empties must not be excluded with unproved bounds")
	}
}

func TestReadInBoundsProofs(t *testing.T) {
	src := `a = array (1,n)
	  ([ 1 := 1.0 ] ++
	   [ i := a!(i-1) | i <- [2..n] ])`
	res := analyzeSrc(t, src, map[string]int64{"n": 10})
	cl := res.Clauses[1]
	if len(cl.Reads) != 1 {
		t.Fatalf("reads = %d", len(cl.Reads))
	}
	if !res.ReadInBounds[cl.Reads[0]] {
		t.Error("a!(i-1) over i∈[2..n] is within (1,n); proof missed")
	}
	wantEdges(t, res.Graph, []string{
		"0->1 flow ()",
		"1->1 flow (<)",
	})
}

func TestSelfBottomDetected(t *testing.T) {
	src := `a = array (1,n) [ i := a!i + 1.0 | i <- [1..n] ]`
	res := analyzeSrc(t, src, map[string]int64{"n": 5})
	if !res.SelfBottom {
		t.Error("a!i := a!i+1 must be flagged as ⊥")
	}
}

func TestBigupdRowSwapAntiCycle(t *testing.T) {
	// The paper's LINPACK row-swap fragment (experiment E8): two
	// clauses exchanging rows i0 and k0 produce a pure anti-dependence
	// cycle with (=) edges.
	src := `param m, n, i0, k0;
	a2 = bigupd a
	  ([ (i0,j) := a!(k0,j) | j <- [1..n] ] ++
	   [ (k0,j) := a!(i0,j) | j <- [1..n] ])`
	res := analyzeSrc(t, src, map[string]int64{"m": 8, "n": 8, "i0": 2, "k0": 5})
	// Each clause's read is killed by the other clause's write in the
	// same j instance... but note the two clauses have *different*
	// generator nodes (separate comprehensions), so they share no
	// loops: the anti edges are labeled ().
	wantEdges(t, res.Graph, []string{
		"0->1 anti ()",
		"1->0 anti ()",
	})
	if !res.Graph.IsCyclic() {
		t.Error("row swap must form an anti cycle")
	}
}

func TestBigupdRowSwapSharedLoop(t *testing.T) {
	// Same swap written with a shared generator: the anti edges are
	// labeled (=) exactly as in the paper's figure.
	src := `param m, n, i0, k0;
	a2 = bigupd a
	  [* [ (i0,j) := a!(k0,j) ] ++ [ (k0,j) := a!(i0,j) ] | j <- [1..n] *]`
	res := analyzeSrc(t, src, map[string]int64{"m": 8, "n": 8, "i0": 2, "k0": 5})
	wantEdges(t, res.Graph, []string{
		"0->1 anti (=)",
		"1->0 anti (=)",
	})
}

func TestBigupdJacobiAntiEdges(t *testing.T) {
	// Simplified Jacobi step (experiment E9): the clause reads its
	// four neighbours from the old array; in-place update carries
	// anti edges in both inner and outer directions.
	src := `param n;
	a2 = bigupd a
	  [* [ (i,j) := 0.25 * (a!(i-1,j) + a!(i+1,j) + a!(i,j-1) + a!(i,j+1)) ]
	   | i <- [2..n-1], j <- [2..n-1] *]`
	res := analyzeSrc(t, src, map[string]int64{"m": 10, "n": 10})
	got := edgeSet(res.Graph)
	want := map[string]bool{
		"0->0 anti (<,=)": true, // a!(i+1,j): row below still to be overwritten
		"0->0 anti (>,=)": true, // a!(i-1,j): row above already overwritten
		"0->0 anti (=,<)": true,
		"0->0 anti (=,>)": true,
	}
	for _, e := range got {
		if !want[e] {
			t.Errorf("unexpected edge %s", e)
		}
		delete(want, e)
	}
	for e := range want {
		t.Errorf("missing edge %s", e)
	}
}

func TestBigupdSORWavefront(t *testing.T) {
	// Gauss-Seidel/SOR (experiment E10): reads of north/west use the
	// *new* values — in bigupd form the paper models this as the same
	// array with flow-satisfying directions; the anti edges all agree
	// with forward loops, so no copying and no thunks are needed.
	src := `param n;
	a2 = bigupd a
	  [* [ (i,j) := 0.25 * (a!(i-1,j) + a!(i,j-1) + a!(i+1,j) + a!(i,j+1)) ]
	   | i <- [2..n-1], j <- [2..n-1] *]`
	res := analyzeSrc(t, src, map[string]int64{"m": 10, "n": 10})
	// Anti edges toward not-yet-overwritten neighbours: (<,=) and
	// (=,<) are satisfiable forward; (>,=) and (=,>) are the ones the
	// scheduler must handle (reads of already-overwritten elements see
	// the new values — which is exactly Gauss-Seidel's semantics).
	if !res.Graph.IsCyclic() {
		t.Error("self edges must make the graph cyclic")
	}
}

func TestAccumArrayOrderEdges(t *testing.T) {
	// Non-commutative combiner: colliding writes get output edges.
	srcNC := `h = accumArray right 0.0 (1,5)
	  [* [ i := 1.0 ] ++ [ i := 2.0 ] | i <- [1..5] *]`
	res := analyzeSrc(t, srcNC, nil)
	foundOutput := false
	for _, e := range res.Graph.Edges {
		if e.Kind == depgraph.Output {
			foundOutput = true
		}
	}
	if !foundOutput {
		t.Error("non-commutative accumArray with collisions must have output edges")
	}
	// Commutative: no ordering edges.
	srcC := strings.Replace(srcNC, "accumArray right", "accumArray (+)", 1)
	res2 := analyzeSrc(t, srcC, nil)
	for _, e := range res2.Graph.Edges {
		if e.Kind == depgraph.Output {
			t.Error("commutative accumArray must not add output edges")
		}
	}
}

func TestExternalReadsRecorded(t *testing.T) {
	src := `c = array (1,n) [ i := b!i + 1.0 | i <- [1..n] ]`
	res := analyzeSrc(t, src, map[string]int64{"n": 4})
	if !res.ExternalReads["b"] {
		t.Errorf("external reads = %v, want b", res.ExternalReads)
	}
	if len(res.Graph.Edges) != 0 {
		t.Error("reads of other arrays must not create intra-definition edges")
	}
}

func TestSharedLenUsesNodeIdentity(t *testing.T) {
	// Two comprehensions both use variable name i, but the loops are
	// different generator nodes: no shared loops.
	src := `a = array (1,2*n)
	  ([ i := 1.0 | i <- [1..n] ] ++
	   [ n + i := a!i | i <- [1..n] ])`
	res := analyzeSrc(t, src, map[string]int64{"n": 6})
	for _, e := range res.Graph.Edges {
		if len(e.Dir) != 0 {
			t.Errorf("edge %v should have an empty shared vector", e)
		}
	}
	if len(res.Graph.Edges) == 0 {
		t.Error("the second clause reads elements the first writes; an edge is required")
	}
}

func TestRankMismatchRejected(t *testing.T) {
	prog, err := parser.ParseProgram(`a = array ((1,1),(n,n)) [ i := 1.0 | i <- [1..n] ]`)
	if err != nil {
		t.Fatal(err)
	}
	env := map[string]int64{"n": 4}
	bounds, _ := EvalBounds(prog.Defs[0], env)
	if _, err := Analyze(prog.Defs[0], env, bounds, nil, Options{}); err == nil {
		t.Error("writing 1 subscript into a rank-2 array must be an error")
	}
}

func TestGuardWithArrayRefRejected(t *testing.T) {
	prog, err := parser.ParseProgram(`a = array (1,n) [ i := 1.0 | i <- [1..n], a!i > 0 ]`)
	if err != nil {
		t.Fatal(err)
	}
	env := map[string]int64{"n": 4}
	bounds, _ := EvalBounds(prog.Defs[0], env)
	if _, err := Analyze(prog.Defs[0], env, bounds, nil, Options{}); err == nil {
		t.Error("array selections in guards must be rejected")
	}
}

func TestLetBoundSubscriptsAnalyzable(t *testing.T) {
	// where-bound subscript aliases must stay affine-analyzable.
	src := `a = array (1,n)
	  ([ 1 := 1.0 ] ++
	   [ i := a!d + 1.0 where d = i - 1 | i <- [2..n] ])`
	res := analyzeSrc(t, src, map[string]int64{"n": 8})
	wantEdges(t, res.Graph, []string{
		"0->1 flow ()",
		"1->1 flow (<)",
	})
}

func TestVerdictStrings(t *testing.T) {
	if No.String() != "no" || Maybe.String() != "maybe" || Yes.String() != "yes" {
		t.Error("verdict strings wrong")
	}
}

func TestEvalBoundsErrors(t *testing.T) {
	prog, err := parser.ParseProgram(`a = array (1,q) [ i := 1.0 | i <- [1..q] ]`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := EvalBounds(prog.Defs[0], map[string]int64{}); err == nil {
		t.Error("unbound bound variable must error")
	}
}

func TestArrayBoundsSize(t *testing.T) {
	b := ArrayBounds{Lo: []int64{1, 1}, Hi: []int64{3, 4}}
	if b.Size() != 12 || b.Rank() != 2 {
		t.Error("ArrayBounds size/rank wrong")
	}
	if (ArrayBounds{}).Size() != 0 {
		t.Error("empty bounds size")
	}
}

func TestAnalyzePairDirect(t *testing.T) {
	// The plain AnalyzePair wrapper (budget-only) on the wavefront
	// self pair: write (i,j), read (i-1,j).
	res := analyzeSrc(t, `a = array ((1,1),(n,n))
	  [* [ (i,j) := if i == 1 then 1.0 else a!(i-1,j) ] | i <- [1..n], j <- [1..n] *]`,
		map[string]int64{"n": 6})
	cl := res.Clauses[0]
	deps, err := AnalyzePair(cl.WriteForms, cl.Reads[0].Forms, cl, cl, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(deps) != 1 || deps[0].Dir.String() != "(<,=)" {
		t.Fatalf("deps = %+v", deps)
	}
}
