package analysis

import (
	"fmt"

	"arraycomp/internal/affine"
	"arraycomp/internal/lang"
)

// TreeNode is a normalized comprehension-tree node: Append and
// guard/let plumbing is dissolved, leaving loops (generator nodes) and
// s/v clause leaves, each carrying the guards and bindings that scope
// over it.
type TreeNode struct {
	// Loop is non-nil for loop nodes (with Gen the original generator).
	Loop *affine.Loop
	Gen  *lang.Generator
	// Clause is non-nil for leaves.
	Clause *FlatClause
	// Children of a loop node, in source order.
	Children []*TreeNode
	// Guards that condition this node (dynamic ones only; statically
	// true guards are dropped, statically false subtrees pruned).
	Guards []lang.Expr
	// Lets are comprehension-level bindings scoping over this subtree.
	Lets []lang.Binding
}

// IsLoop reports whether the node is a loop node.
func (n *TreeNode) IsLoop() bool { return n.Loop != nil }

// FlatClause is one s/v clause with its full static context.
type FlatClause struct {
	ID     int
	Clause *lang.Clause
	// Nest is the enclosing loop nest, outermost first.
	Nest affine.Nest
	// NestNodes are the loop tree nodes of the nest; pointer equality
	// identifies the loops two clauses actually share (same generator
	// instance, not merely the same variable name).
	NestNodes []*TreeNode
	// Guards and Lets accumulated from the root to the clause.
	Guards []lang.Expr
	Lets   []lang.Binding
	// WriteForms are the affine forms of the write subscripts (one per
	// array dimension); WriteAffine reports whether every dimension is
	// affine.
	WriteForms  []affine.Form
	WriteAffine bool
	// Reads are the array references in the clause's value.
	Reads []*ReadRef
	// Instances is the product of enclosing trip counts (ignoring
	// guards): the number of s/v pairs this clause contributes.
	Instances int64
	// Guarded reports whether any dynamic guard conditions the clause,
	// which makes Instances an upper bound rather than exact.
	Guarded bool
	// Node is the clause's leaf in the normalized comprehension tree.
	Node *TreeNode
}

// Label renders a short clause description for diagnostics.
func (c *FlatClause) Label() string {
	return fmt.Sprintf("clause%d@%s", c.ID, c.Clause.Pos())
}

// ReadRef is one array selection in a clause value.
type ReadRef struct {
	Clause *FlatClause
	Ix     *lang.Index
	// Forms are the affine subscript forms (per dimension) when Affine.
	Forms  []affine.Form
	Affine bool
}

// flattener builds the tree.
type flattener struct {
	env     map[string]int64
	arrays  map[string]bool // names of arrays in scope (defs + inputs)
	clauses []*FlatClause
	diags   *[]string
	errs    []error
}

func (f *flattener) errf(pos lang.Pos, format string, args ...any) {
	f.errs = append(f.errs, fmt.Errorf("%s: %s", pos, fmt.Sprintf(format, args...)))
}

func (f *flattener) diag(format string, args ...any) {
	*f.diags = append(*f.diags, fmt.Sprintf(format, args...))
}

// Flatten normalizes the comprehension tree of a definition under the
// given parameter binding. It returns the top-level entity list (the
// children of a virtual root) and the flattened clauses in source
// order.
func Flatten(def *lang.ArrayDef, env map[string]int64, arrays map[string]bool, diags *[]string) ([]*TreeNode, []*FlatClause, error) {
	f := &flattener{env: env, arrays: arrays, diags: diags}
	ctx := flattenCtx{}
	roots := f.walk(def.Comp, ctx)
	if len(f.errs) > 0 {
		return nil, nil, f.errs[0]
	}
	// Extract subscript forms now that nests are known.
	for _, cl := range f.clauses {
		f.extractSubscripts(cl)
	}
	if len(f.errs) > 0 {
		return nil, nil, f.errs[0]
	}
	return roots, f.clauses, nil
}

// flattenCtx is the accumulated context on the path from the root.
type flattenCtx struct {
	nest      affine.Nest
	nestNodes []*TreeNode
	guards    []lang.Expr
	lets      []lang.Binding
	// pendGuards/pendLets attach to the next concrete node produced.
	pendGuards []lang.Expr
	pendLets   []lang.Binding
}

func (c flattenCtx) withLoop(node *TreeNode) flattenCtx {
	out := c
	out.nest = append(append(affine.Nest(nil), c.nest...), *node.Loop)
	out.nestNodes = append(append([]*TreeNode(nil), c.nestNodes...), node)
	out.pendGuards = nil
	out.pendLets = nil
	return out
}

func (f *flattener) walk(n lang.CompNode, ctx flattenCtx) []*TreeNode {
	switch x := n.(type) {
	case *lang.Clause:
		cl := &FlatClause{
			ID:        len(f.clauses),
			Clause:    x,
			Nest:      append(affine.Nest(nil), ctx.nest...),
			NestNodes: append([]*TreeNode(nil), ctx.nestNodes...),
			Guards:    concatExprs(ctx.guards, ctx.pendGuards),
			Lets:      concatBinds(ctx.lets, ctx.pendLets),
		}
		cl.Instances = 1
		for _, l := range cl.Nest {
			cl.Instances *= l.Trip()
		}
		cl.Guarded = len(cl.Guards) > 0
		x.ID = cl.ID
		f.clauses = append(f.clauses, cl)
		node := &TreeNode{
			Clause: cl,
			Guards: ctx.pendGuards,
			Lets:   ctx.pendLets,
		}
		cl.Node = node
		return []*TreeNode{node}
	case *lang.Generator:
		loop, err := affine.LoopFromGenerator(x, f.env)
		if err != nil {
			f.errf(x.Pos(), "%v", err)
			return nil
		}
		if loop.Trip() == 0 {
			f.diag("generator %s is empty under this parameter binding; subtree dropped", loop)
			return nil
		}
		node := &TreeNode{
			Loop:   &loop,
			Gen:    x,
			Guards: ctx.pendGuards,
			Lets:   ctx.pendLets,
		}
		inner := ctx.withLoop(node)
		inner.guards = concatExprs(ctx.guards, ctx.pendGuards)
		inner.lets = concatBinds(ctx.lets, ctx.pendLets)
		node.Children = f.walk(x.Body, inner)
		if node.Children == nil {
			return nil
		}
		return []*TreeNode{node}
	case *lang.Guard:
		// Try static evaluation: guards over parameters fold away.
		if v, err := affine.EvalBool(x.Cond, f.env); err == nil {
			if !v {
				f.diag("guard %s is statically false; subtree dropped", lang.ExprString(x.Cond))
				return nil
			}
			return f.walk(x.Body, ctx)
		}
		if len(lang.ArrayRefs(x.Cond)) > 0 {
			f.errf(x.Cond.Pos(), "guards may not select array elements: %s", lang.ExprString(x.Cond))
			return nil
		}
		inner := ctx
		inner.pendGuards = concatExprs(ctx.pendGuards, []lang.Expr{x.Cond})
		return f.walk(x.Body, inner)
	case *lang.Append:
		var out []*TreeNode
		for _, p := range x.Parts {
			out = append(out, f.walk(p, ctx)...)
		}
		return out
	case *lang.CompLet:
		inner := ctx
		inner.pendLets = concatBinds(ctx.pendLets, x.Binds)
		return f.walk(x.Body, inner)
	case nil:
		return nil
	}
	f.errf(n.Pos(), "unknown comprehension node %T", n)
	return nil
}

func concatExprs(a, b []lang.Expr) []lang.Expr {
	if len(b) == 0 {
		return a
	}
	out := make([]lang.Expr, 0, len(a)+len(b))
	out = append(out, a...)
	return append(out, b...)
}

func concatBinds(a, b []lang.Binding) []lang.Binding {
	if len(b) == 0 {
		return a
	}
	out := make([]lang.Binding, 0, len(a)+len(b))
	out = append(out, a...)
	return append(out, b...)
}

// wrapLets wraps an expression in the clause's accumulated bindings so
// that affine extraction sees let-bound subscript aliases.
func wrapLets(e lang.Expr, lets []lang.Binding) lang.Expr {
	if len(lets) == 0 {
		return e
	}
	return &lang.Let{Binds: lets, Body: lang.CloneExpr(e)}
}

// extractSubscripts computes affine forms for the clause's write
// subscripts and for every array read in its value.
func (f *flattener) extractSubscripts(cl *FlatClause) {
	isIndex := func(v string) bool { return cl.Nest.Index(v) >= 0 }
	valueLets := collectValueLets(cl)
	cl.WriteAffine = true
	for _, sub := range cl.Clause.Subs {
		form, err := affine.FromExpr(wrapLets(sub, cl.Lets), isIndex, f.env)
		if err != nil {
			cl.WriteAffine = false
			cl.WriteForms = nil
			f.diag("%s: write subscript %s is not affine: %v", cl.Label(), lang.ExprString(sub), err)
			break
		}
		cl.WriteForms = append(cl.WriteForms, form)
	}
	// Reads appear in the clause value and — for subscripted subscripts
	// like `out!(idx!(g))` — inside write subscripts; both are genuine
	// data dependences on the referenced arrays.
	refs := lang.ArrayRefs(cl.Clause.Value)
	for _, sub := range cl.Clause.Subs {
		refs = append(refs, lang.ArrayRefs(sub)...)
	}
	for _, ix := range refs {
		rr := &ReadRef{Clause: cl, Ix: ix, Affine: true}
		for _, sub := range ix.Subs {
			form, err := affine.FromExpr(wrapLets(sub, concatBinds(cl.Lets, valueLets)), isIndex, f.env)
			if err != nil {
				rr.Affine = false
				rr.Forms = nil
				f.diag("%s: read subscript %s!%s is not affine: %v", cl.Label(), ix.Array, lang.ExprString(sub), err)
				break
			}
			rr.Forms = append(rr.Forms, form)
		}
		cl.Reads = append(cl.Reads, rr)
	}
}

// collectValueLets gathers the expression-level let bindings that
// enclose array references in the clause value, so subscripts like
// `a!(d)` with `where d = i-1` are analyzable. Only top-level lets of
// the value are considered (nested shadowing handled by FromExpr).
func collectValueLets(cl *FlatClause) []lang.Binding {
	var out []lang.Binding
	e := cl.Clause.Value
	for {
		let, ok := e.(*lang.Let)
		if !ok {
			return out
		}
		out = append(out, let.Binds...)
		e = let.Body
	}
}
