package analysis

import (
	"fmt"

	"arraycomp/internal/affine"
	"arraycomp/internal/depgraph"
	"arraycomp/internal/deptest"
	"arraycomp/internal/lang"
)

// ArrayBounds are concrete per-dimension bounds of an array under the
// current parameter binding.
type ArrayBounds struct {
	Lo, Hi []int64
}

// Rank returns the dimension count.
func (b ArrayBounds) Rank() int { return len(b.Lo) }

// Size returns the element count.
func (b ArrayBounds) Size() int64 {
	if b.Rank() == 0 {
		return 0
	}
	n := int64(1)
	for d := range b.Lo {
		e := b.Hi[d] - b.Lo[d] + 1
		if e < 0 {
			e = 0
		}
		n *= e
	}
	return n
}

// EvalBounds evaluates a definition's declared bounds under env.
func EvalBounds(def *lang.ArrayDef, env map[string]int64) (ArrayBounds, error) {
	var out ArrayBounds
	for _, b := range def.Bounds {
		lo, err := affine.EvalInt(b.Lo, env)
		if err != nil {
			return ArrayBounds{}, fmt.Errorf("bounds of %s: %w", def.Name, err)
		}
		hi, err := affine.EvalInt(b.Hi, env)
		if err != nil {
			return ArrayBounds{}, fmt.Errorf("bounds of %s: %w", def.Name, err)
		}
		out.Lo = append(out.Lo, lo)
		out.Hi = append(out.Hi, hi)
	}
	return out, nil
}

// Verdict is a three-valued static finding.
type Verdict uint8

const (
	// No: the property (collision, empties, …) cannot occur.
	No Verdict = iota
	// Maybe: the property may occur; runtime checks are required.
	Maybe
	// Yes: the property certainly occurs; compile-time error territory.
	Yes
)

// String renders the verdict.
func (v Verdict) String() string {
	switch v {
	case No:
		return "no"
	case Maybe:
		return "maybe"
	case Yes:
		return "yes"
	}
	return fmt.Sprintf("Verdict(%d)", uint8(v))
}

// Options tunes the analysis.
type Options struct {
	// ExactBudget is the node budget per exact dependence test.
	ExactBudget int
	// NoLinearize disables the §6 linearization refinement for
	// multi-dimensional subscripts (ablation); by default pairs whose
	// references are provably in bounds are additionally tested
	// against the row-major linearized subscript.
	NoLinearize bool
}

func (o Options) budget() int {
	if o.ExactBudget > 0 {
		return o.ExactBudget
	}
	return deptest.DefaultExactBudget
}

// Result is the complete analysis of one array definition under one
// parameter binding.
type Result struct {
	Def    *lang.ArrayDef
	Env    map[string]int64
	Bounds ArrayBounds

	// Roots is the normalized comprehension tree (children of a
	// virtual root); Clauses the flattened s/v clauses in source order.
	Roots   []*TreeNode
	Clauses []*FlatClause

	// Graph is the dependence graph: vertex i is Clauses[i]; edges
	// carry kind + direction vectors over the endpoints' shared loops.
	Graph *depgraph.Graph

	// Collision is the write-collision verdict (section 7);
	// CollisionDetail explains a Yes/Maybe.
	Collision       Verdict
	CollisionDetail string

	// NoEmpties reports that every element provably receives exactly
	// one definition (section 4), so definedness checks are elided.
	NoEmpties bool
	// EmptiesDetail explains why NoEmpties failed, if it did.
	EmptiesDetail string

	// WriteInBounds[i] reports that clause i's writes are provably
	// within the array bounds (bounds checks elided).
	WriteInBounds []bool
	// ReadInBounds reports per read reference that its subscripts are
	// provably within the *read* array's bounds.
	ReadInBounds map[*ReadRef]bool

	// ExternalReads are arrays (other than the one being defined, and
	// for bigupd other than the source) the definition reads.
	ExternalReads map[string]bool

	// AntiDeps records, for bigupd definitions, each anti dependence
	// with the read reference it originates from — the code generator
	// needs this to decide node splitting per read.
	AntiDeps []AntiDep

	// linearize enables the §6 linearization refinement.
	linearize bool
	// budget is the exact-test budget the analysis ran with, kept so
	// certification can replay the pair walk with identical options.
	budget int
	// external keeps the caller's external-bounds map for the same
	// reason (read in-bounds certification needs the read arrays'
	// bounds).
	external map[string]ArrayBounds

	// SelfBottom warns that some element provably depends on itself
	// (an all-'=' definite self flow edge): the element is ⊥.
	SelfBottom bool

	// Cond is the claim-assumed re-analysis for subscripted-subscript
	// definitions (nil when no indirect pattern was recognized): its
	// verdicts hold conditionally on index-array property claims,
	// discharged statically or by the runtime verifier.
	Cond *CondResult

	Diagnostics []string
}

// Analyze runs the full analysis for one definition. selfBounds are
// the bounds of the array being defined (for bigupd: of the source
// array); external maps other visible array names to their bounds,
// used for read in-bounds proofs.
func Analyze(def *lang.ArrayDef, env map[string]int64, selfBounds ArrayBounds, external map[string]ArrayBounds, opts Options) (*Result, error) {
	res := &Result{
		Def:           def,
		Env:           env,
		Bounds:        selfBounds,
		ReadInBounds:  map[*ReadRef]bool{},
		ExternalReads: map[string]bool{},
	}
	arrays := map[string]bool{def.Name: true}
	if def.Source != "" {
		arrays[def.Source] = true
	}
	for name := range external {
		arrays[name] = true
	}
	roots, clauses, err := Flatten(def, env, arrays, &res.Diagnostics)
	if err != nil {
		return nil, err
	}
	res.Roots = roots
	res.Clauses = clauses

	// The array whose elements the clauses define; for bigupd the
	// clauses update the source array.
	target := def.Name
	if def.Kind == lang.BigUpd {
		target = def.Source
	}

	// Rank checks.
	for _, cl := range clauses {
		if len(cl.Clause.Subs) != selfBounds.Rank() {
			return nil, fmt.Errorf("%s: clause writes %d subscripts, array %s has rank %d",
				cl.Label(), len(cl.Clause.Subs), target, selfBounds.Rank())
		}
	}

	res.Graph = depgraph.New(len(clauses))
	for i, cl := range clauses {
		res.Graph.Label(i, cl.Label())
	}

	budget := opts.budget()
	res.linearize = !opts.NoLinearize
	res.budget = budget
	res.external = external

	// In-bounds proofs first: they gate the linearization refinement.
	res.proveBounds(external)

	// Dependence edges. In a bigupd, reads of the *source* array see
	// the old contents (anti dependences: the read must precede the
	// kill), while reads of the *defined* name see the new contents
	// (flow dependences), which is how the paper's Gauss-Seidel/SOR
	// fragment mixes δ and δ̄ edges on the same clause.
	for _, sink := range clauses {
		for _, rd := range sink.Reads {
			switch {
			case def.Kind != lang.BigUpd && rd.Ix.Array == target:
				if err := res.addFlowEdges(sink, rd, budget); err != nil {
					return nil, err
				}
			case def.Kind == lang.BigUpd && rd.Ix.Array == def.Source:
				if err := res.addAntiEdges(sink, rd, budget); err != nil {
					return nil, err
				}
			case def.Kind == lang.BigUpd && rd.Ix.Array == def.Name:
				if err := res.addFlowEdges(sink, rd, budget); err != nil {
					return nil, err
				}
			default:
				res.ExternalReads[rd.Ix.Array] = true
			}
		}
	}

	// Output dependences / collisions.
	if err := res.analyzeWrites(budget); err != nil {
		return nil, err
	}

	// Empties.
	res.decideEmpties()

	// Property-conditional re-analysis of indirect subscripts.
	res.analyzeCond()

	return res, nil
}

// pairOpts builds the per-pair options: linearization applies when
// both references of the pair are provably within the target array's
// bounds.
func (r *Result) pairOpts(budget int, srcOK, sinkOK bool) PairOptions {
	opts := PairOptions{Budget: budget}
	if r.linearize && srcOK && sinkOK && r.Bounds.Rank() >= 2 {
		b := r.Bounds
		opts.Linearize = &b
	}
	return opts
}

// addFlowEdges adds writer→reader flow edges for one read of the
// defined array.
func (r *Result) addFlowEdges(reader *FlatClause, rd *ReadRef, budget int) error {
	for wi, writer := range r.Clauses {
		deps, err := AnalyzePairOpts(writer.WriteForms, rd.Forms, writer, reader,
			r.pairOpts(budget, r.WriteInBounds[wi], r.ReadInBounds[rd]))
		if err != nil {
			return err
		}
		for _, dep := range deps {
			if writer == reader && dep.Dir.SelfEqual() {
				// A clause instance that reads the very element it
				// writes: the element is ⊥.
				if dep.Verdict == deptest.Definite {
					r.SelfBottom = true
					r.Diagnostics = append(r.Diagnostics,
						fmt.Sprintf("%s: element provably depends on itself (⊥)", writer.Label()))
				} else {
					r.Diagnostics = append(r.Diagnostics,
						fmt.Sprintf("%s: element may depend on itself", writer.Label()))
				}
			}
			r.Graph.AddEdge(wi, reader.ID, depgraph.Flow, dep.Dir)
		}
	}
	return nil
}

// AntiDep is one anti dependence with its originating read reference.
type AntiDep struct {
	Read   *ReadRef
	Writer int // clause ID of the killing write
	Dep    PairDep
}

// addAntiEdges adds reader→writer anti edges for one read of a bigupd
// source array. (Reading the element the same instance overwrites is
// fine as long as the read is evaluated first; the loop-independent
// self anti edge carries exactly that constraint.)
func (r *Result) addAntiEdges(reader *FlatClause, rd *ReadRef, budget int) error {
	for wi, writer := range r.Clauses {
		deps, err := AnalyzePairOpts(rd.Forms, writer.WriteForms, reader, writer,
			r.pairOpts(budget, r.ReadInBounds[rd], r.WriteInBounds[wi]))
		if err != nil {
			return err
		}
		for _, dep := range deps {
			r.Graph.AddEdge(reader.ID, wi, depgraph.Anti, dep.Dir)
			r.AntiDeps = append(r.AntiDeps, AntiDep{Read: rd, Writer: wi, Dep: dep})
		}
	}
	return nil
}

// analyzeWrites decides the write-collision verdict and, where the
// definition's semantics require it (accumArray with a non-commutative
// combiner, bigupd), adds order-preserving output edges.
func (r *Result) analyzeWrites(budget int) error {
	verdict := No
	detail := ""
	orderMatters := r.Def.Kind == lang.BigUpd ||
		(r.Def.Kind == lang.Accumulated && !r.Def.Accum.Commutative())
	for i, a := range r.Clauses {
		for j := i; j < len(r.Clauses); j++ {
			b := r.Clauses[j]
			deps, err := AnalyzePairOpts(a.WriteForms, b.WriteForms, a, b,
				r.pairOpts(budget, r.WriteInBounds[i], r.WriteInBounds[j]))
			if err != nil {
				return err
			}
			for _, dep := range deps {
				if i == j && dep.Dir.SelfEqual() {
					continue // an instance trivially "collides" with itself
				}
				if i == j && dep.Dir.LeadingDirection() == deptest.DirGreater {
					// The symmetric twin of a (<) collision between the
					// same pair; count once.
					continue
				}
				switch dep.Verdict {
				case deptest.Definite:
					if verdict != Yes {
						verdict = Yes
						detail = fmt.Sprintf("%s and %s definitely write the same element (direction %s)", a.Label(), b.Label(), dep.Dir)
					}
				default:
					if verdict == No {
						verdict = Maybe
						detail = fmt.Sprintf("%s and %s may write the same element (direction %s)", a.Label(), b.Label(), dep.Dir)
					}
				}
				if orderMatters {
					// Preserve the list order of colliding writes: the
					// source is the clause whose instance comes first in
					// list order. For i < j (or carried (<) self pairs)
					// that is a; the edge constrains a before b.
					r.Graph.AddEdge(i, j, depgraph.Output, dep.Dir)
				}
			}
		}
	}
	r.Collision = verdict
	r.CollisionDetail = detail
	return nil
}

// proveBounds computes per-reference in-bounds proofs.
func (r *Result) proveBounds(external map[string]ArrayBounds) {
	target := r.Def.Name
	if r.Def.Kind == lang.BigUpd {
		target = r.Def.Source
	}
	boundsOf := func(name string) (ArrayBounds, bool) {
		if name == target || name == r.Def.Name {
			return r.Bounds, true
		}
		b, ok := external[name]
		return b, ok
	}
	r.WriteInBounds = make([]bool, len(r.Clauses))
	for i, cl := range r.Clauses {
		r.WriteInBounds[i] = r.provedInBounds(cl.WriteForms, cl.WriteAffine, cl, r.Bounds)
		if !r.WriteInBounds[i] {
			r.Diagnostics = append(r.Diagnostics,
				fmt.Sprintf("%s: writes not provably in bounds; bounds checks compiled", cl.Label()))
		}
		for _, rd := range cl.Reads {
			b, ok := boundsOf(rd.Ix.Array)
			proved := ok && r.provedInBounds(rd.Forms, rd.Affine, cl, b)
			r.ReadInBounds[rd] = proved
		}
	}
}

func (r *Result) provedInBounds(forms []affine.Form, isAffine bool, cl *FlatClause, b ArrayBounds) bool {
	if !isAffine || len(forms) != b.Rank() {
		return false
	}
	if cl.Guarded {
		// Guards only shrink the iteration space, so the unguarded
		// range proof remains sound (if the full range fits, the
		// guarded range fits).
		_ = cl
	}
	for d, form := range forms {
		iv, err := FormRange(form, cl)
		if err != nil {
			return false
		}
		if iv.Lo < b.Lo[d] || iv.Hi > b.Hi[d] {
			return false
		}
	}
	return true
}

// decideEmpties applies the paper's three conditions: no collisions,
// no out-of-bounds definitions, and pair count equal to the array
// size — together they force the written subscripts to be a
// permutation of the index space.
func (r *Result) decideEmpties() {
	if r.Def.Kind != lang.Monolithic {
		// accumArray fills empties with the default; bigupd updates an
		// existing array. Neither needs the proof.
		r.NoEmpties = true
		return
	}
	if r.Collision != No {
		r.EmptiesDetail = "write collisions not excluded"
		return
	}
	var count int64
	for i, cl := range r.Clauses {
		if cl.Guarded {
			r.EmptiesDetail = fmt.Sprintf("%s is guarded; instance count not static", cl.Label())
			return
		}
		if !r.WriteInBounds[i] {
			r.EmptiesDetail = fmt.Sprintf("%s not provably in bounds", cl.Label())
			return
		}
		count += cl.Instances
	}
	if count != r.Bounds.Size() {
		r.EmptiesDetail = fmt.Sprintf("%d subscript/value pairs for %d elements", count, r.Bounds.Size())
		return
	}
	r.NoEmpties = true
}
