package analysis

import (
	"fmt"

	"arraycomp/internal/affine"
	"arraycomp/internal/deptest"
)

// PairDep is one possible dependence between a source reference and a
// sink reference: a direction vector over their shared loops plus the
// exactness of the finding.
type PairDep struct {
	// Dir is over the shared loops (common nest prefix), outermost
	// first. Components may be '*' only when the pair was not
	// analyzable and everything must be assumed.
	Dir deptest.Vector
	// Verdict is Definite when the exact test proved a dependence
	// (and the subscripts are dimension-separable, so per-dimension
	// definiteness composes), Possible/Unknown otherwise.
	Verdict deptest.Result
}

// SharedLen returns the length of the common nest prefix of two
// clauses — the loops they genuinely share (same generator node, not
// merely the same variable name).
func SharedLen(a, b *FlatClause) int {
	n := 0
	for n < len(a.NestNodes) && n < len(b.NestNodes) && a.NestNodes[n] == b.NestNodes[n] {
		n++
	}
	return n
}

// pairProblems builds one deptest.Problem per subscript dimension for
// a (source reference, sink reference) pair. The combined loop list is
// [shared prefix | source-only | sink-only].
func pairProblems(srcForms, sinkForms []affine.Form, src, sink *FlatClause) ([]deptest.Problem, int, error) {
	if len(srcForms) != len(sinkForms) {
		return nil, 0, fmt.Errorf("analysis: rank mismatch: %d vs %d subscripts", len(srcForms), len(sinkForms))
	}
	shared := SharedLen(src, sink)
	srcOnly := len(src.Nest) - shared
	sinkOnly := len(sink.Nest) - shared
	total := shared + srcOnly + sinkOnly
	bound := make([]int64, total)
	sharedFlag := make([]bool, total)
	for k := 0; k < shared; k++ {
		bound[k] = src.Nest[k].Trip()
		sharedFlag[k] = true
	}
	for k := 0; k < srcOnly; k++ {
		bound[shared+k] = src.Nest[shared+k].Trip()
	}
	for k := 0; k < sinkOnly; k++ {
		bound[shared+srcOnly+k] = sink.Nest[shared+k].Trip()
	}
	probs := make([]deptest.Problem, len(srcForms))
	for d := range srcForms {
		srcRef, err := src.Nest.Normalize(srcForms[d])
		if err != nil {
			return nil, 0, err
		}
		sinkRef, err := sink.Nest.Normalize(sinkForms[d])
		if err != nil {
			return nil, 0, err
		}
		a := make([]int64, total)
		b := make([]int64, total)
		for k := 0; k < shared; k++ {
			a[k] = srcRef.Coeff[k]
			b[k] = sinkRef.Coeff[k]
		}
		for k := 0; k < srcOnly; k++ {
			a[shared+k] = srcRef.Coeff[shared+k]
		}
		for k := 0; k < sinkOnly; k++ {
			b[shared+srcOnly+k] = sinkRef.Coeff[shared+k]
		}
		probs[d] = deptest.Problem{
			A0: srcRef.Const, B0: sinkRef.Const,
			A: a, B: b,
			Bound:  bound,
			Shared: sharedFlag,
		}
	}
	return probs, shared, nil
}

// separable reports whether no combined loop position carries a
// nonzero coefficient in more than one dimension, in which case
// per-dimension Definite verdicts compose into a definite simultaneous
// solution.
func separable(probs []deptest.Problem) bool {
	if len(probs) == 0 {
		return true
	}
	used := make([]bool, probs[0].NumLoops())
	for _, p := range probs {
		for k := range p.A {
			if p.A[k] != 0 || p.B[k] != 0 {
				if used[k] {
					return false
				}
				used[k] = true
			}
		}
	}
	return true
}

// PairOptions tunes one reference-pair analysis.
type PairOptions struct {
	// Budget bounds each exact test.
	Budget int
	// Linearize, when non-nil, additionally tests the row-major
	// linearized subscript against these array bounds — the paper's
	// §6 alternative to per-dimension ANDing. Sound only when both
	// references are provably in bounds (out-of-range subscripts alias
	// memory differently), which the caller must have established.
	// Linearization both refutes coupled-dimension false positives and
	// upgrades verdicts to Definite without the separability proviso.
	Linearize *ArrayBounds
}

// linearizedProblem folds per-dimension problems into one over the
// row-major offset: off = Σ_d mult_d·(sub_d − lo_d) with mult_d the
// product of the extents of the faster-varying dimensions.
func linearizedProblem(probs []deptest.Problem, b *ArrayBounds) (deptest.Problem, bool) {
	if len(probs) != b.Rank() || len(probs) < 2 {
		return deptest.Problem{}, false
	}
	mult := make([]int64, b.Rank())
	m := int64(1)
	for d := b.Rank() - 1; d >= 0; d-- {
		mult[d] = m
		e := b.Hi[d] - b.Lo[d] + 1
		if e < 1 {
			return deptest.Problem{}, false
		}
		m *= e
	}
	total := probs[0].NumLoops()
	lin := deptest.Problem{
		A:      make([]int64, total),
		B:      make([]int64, total),
		Bound:  probs[0].Bound,
		Shared: probs[0].Shared,
	}
	for d, p := range probs {
		lin.A0 += mult[d] * (p.A0 - b.Lo[d])
		lin.B0 += mult[d] * (p.B0 - b.Lo[d])
		for k := 0; k < total; k++ {
			lin.A[k] += mult[d] * p.A[k]
			lin.B[k] += mult[d] * p.B[k]
		}
	}
	return lin, true
}

// AnalyzePair runs the full battery for a source/sink reference pair
// and returns the surviving direction vectors over the shared loops.
// Either side having nil forms (non-affine subscripts) yields the
// fully pessimistic answer: a single '*…*' vector with Verdict
// Possible.
func AnalyzePair(srcForms, sinkForms []affine.Form, src, sink *FlatClause, budget int) ([]PairDep, error) {
	return AnalyzePairOpts(srcForms, sinkForms, src, sink, PairOptions{Budget: budget})
}

// AnalyzePairOpts is AnalyzePair with options.
func AnalyzePairOpts(srcForms, sinkForms []affine.Form, src, sink *FlatClause, opts PairOptions) ([]PairDep, error) {
	budget := opts.Budget
	shared := SharedLen(src, sink)
	if srcForms == nil || sinkForms == nil {
		return []PairDep{{Dir: deptest.AnyVector(shared), Verdict: deptest.Possible}}, nil
	}
	probs, shared, err := pairProblems(srcForms, sinkForms, src, sink)
	if err != nil {
		return nil, err
	}
	// Zero-dimension pair (rank 0 can't happen for real arrays, but a
	// pair with no loops at all reduces to constant comparison).
	total := 0
	if len(probs) > 0 {
		total = probs[0].NumLoops()
	}
	var lin *deptest.Problem
	if opts.Linearize != nil {
		if lp, ok := linearizedProblem(probs, opts.Linearize); ok {
			lin = &lp
		}
	}
	sep := separable(probs)
	inexact := func(v deptest.Vector) (bool, error) {
		for _, p := range probs {
			ok, err := deptest.GCDTest(p, v)
			if err != nil || !ok {
				return false, err
			}
			ok, err = deptest.BanerjeeTest(p, v, true)
			if err != nil || !ok {
				return false, err
			}
		}
		if lin != nil {
			ok, err := deptest.GCDTest(*lin, v)
			if err != nil || !ok {
				return false, err
			}
			ok, err = deptest.BanerjeeTest(*lin, v, true)
			if err != nil || !ok {
				return false, err
			}
		}
		return true, nil
	}
	var out []PairDep
	seen := map[string]bool{}
	var walk func(v deptest.Vector, from int) error
	walk = func(v deptest.Vector, from int) error {
		ok, err := inexact(v)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		split := -1
		for k := from; k < shared; k++ {
			if v[k] == deptest.DirAny {
				split = k
				break
			}
		}
		if split < 0 {
			// Leaf: confirm with the exact test per dimension.
			verdict := deptest.Definite
			for _, p := range probs {
				res, err := deptest.ExactTest(p, v, budget)
				if err != nil {
					return err
				}
				if res == deptest.Impossible {
					return nil // refuted exactly
				}
				if res != deptest.Definite {
					verdict = deptest.Possible
				}
			}
			if verdict == deptest.Definite && !sep {
				verdict = deptest.Possible
			}
			if lin != nil {
				// The linearized equation models memory aliasing
				// exactly for in-bounds references: its exact test both
				// refutes and confirms without the separability
				// proviso.
				res, err := deptest.ExactTest(*lin, v, budget)
				if err != nil {
					return err
				}
				switch res {
				case deptest.Impossible:
					return nil
				case deptest.Definite:
					verdict = deptest.Definite
				}
			}
			// Guards only shrink the instance sets, so a dependence
			// proved over the full ranges may not survive them: cap
			// the verdict at Possible for guarded endpoints.
			if verdict == deptest.Definite && (src.Guarded || sink.Guarded) {
				verdict = deptest.Possible
			}
			dir := v[:shared].Clone()
			if !seen[dir.String()] {
				seen[dir.String()] = true
				out = append(out, PairDep{Dir: dir, Verdict: verdict})
			}
			return nil
		}
		for _, d := range []deptest.Direction{deptest.DirLess, deptest.DirEqual, deptest.DirGreater} {
			child := v.Clone()
			child[split] = d
			if err := walk(child, split+1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(deptest.AnyVector(total), 0); err != nil {
		return nil, err
	}
	return out, nil
}

// FormRange returns the inclusive range a subscript form can take over
// the clause's full iteration space — the straight-line in-bounds
// computation the paper performs "before entering any loops".
func FormRange(form affine.Form, cl *FlatClause) (deptest.Interval, error) {
	ref, err := cl.Nest.Normalize(form)
	if err != nil {
		return deptest.Interval{}, err
	}
	iv := deptest.Interval{Lo: ref.Const, Hi: ref.Const}
	for k, c := range ref.Coeff {
		m := cl.Nest[k].Trip()
		if c >= 0 {
			iv.Lo += c * 1
			iv.Hi += c * m
		} else {
			iv.Lo += c * m
			iv.Hi += c * 1
		}
	}
	return iv, nil
}
