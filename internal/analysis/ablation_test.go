package analysis

import (
	"testing"

	"arraycomp/internal/deptest"
	"arraycomp/internal/parser"
)

// Ablation: starving the exact dependence test must only ever make the
// analysis more conservative, never unsound — verdicts may degrade
// from Definite/No to Possible/Maybe, and every edge found with the
// full budget must still be found with none.

func analyzeWithBudget(t *testing.T, src string, env map[string]int64, budget int) *Result {
	t.Helper()
	prog, err := parser.ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	def := prog.Defs[0]
	bounds, err := EvalBounds(def, env)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Analyze(def, env, bounds, nil, Options{ExactBudget: budget})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestExactBudgetAblationEdgesMonotone(t *testing.T) {
	srcs := []string{
		`a = array (1,300)
		  [* [3*i := 1.0] ++
		     [3*i-1 := 0.5 * a!(3*(i-1))] ++
		     [3*i-2 := 0.5 * a!(3*i)]
		   | i <- [1..100] *]`,
		`a = array ((1,1),(n,n))
		  ([ (1,j) := 1.0 | j <- [1..n] ] ++
		   [ (i,1) := 1.0 | i <- [2..n] ] ++
		   [ (i,j) := a!(i-1,j) + a!(i,j-1) | i <- [2..n], j <- [2..n] ])`,
	}
	env := map[string]int64{"n": 16}
	for _, src := range srcs {
		full := analyzeWithBudget(t, src, env, deptest.DefaultExactBudget)
		starved := analyzeWithBudget(t, src, env, 1)
		// Every full-budget edge must appear in the starved graph (the
		// exact test only ever REMOVES false positives; without it edges
		// can only grow).
		starvedSet := map[string]bool{}
		for _, e := range starved.Graph.Edges {
			starvedSet[e.String()] = true
		}
		for _, e := range full.Graph.Edges {
			if !starvedSet[e.String()] {
				t.Errorf("edge %s lost when exact test starved", e)
			}
		}
		if len(starved.Graph.Edges) < len(full.Graph.Edges) {
			t.Errorf("starved analysis has fewer edges (%d < %d)", len(starved.Graph.Edges), len(full.Graph.Edges))
		}
	}
}

func TestExactBudgetAblationVerdictsDegrade(t *testing.T) {
	// Two clauses that definitely collide: the full budget proves Yes;
	// the starved analysis may only weaken to Maybe, never to No.
	src := `a = array (1,n) ([ 1 := 1.0 ] ++ [ 1 := 2.0 ] ++ [ i := 0.0 | i <- [2..n] ])`
	env := map[string]int64{"n": 8}
	full := analyzeWithBudget(t, src, env, deptest.DefaultExactBudget)
	if full.Collision != Yes {
		t.Fatalf("full budget: collision = %v, want yes", full.Collision)
	}
	starved := analyzeWithBudget(t, src, env, 1)
	if starved.Collision == No {
		t.Fatal("starved analysis must not prove absence of a real collision")
	}
	// Constant subscripts need no search, so even budget 1 stays exact
	// here — both Yes and Maybe are sound; No would be a lie.
}

func TestExactBudgetAblationSafetyOnCollisionFree(t *testing.T) {
	// The even/odd interleave is refuted by the GCD test alone, so the
	// collision verdict must stay No even with no exact budget.
	src := `a = array (1,2*n)
	  ([ 2*i := 1.0 | i <- [1..n] ] ++ [ 2*i-1 := 2.0 | i <- [1..n] ])`
	env := map[string]int64{"n": 20}
	starved := analyzeWithBudget(t, src, env, 1)
	if starved.Collision != No {
		t.Errorf("GCD-refutable collision must stay no, got %v (%s)", starved.Collision, starved.CollisionDetail)
	}
	if !starved.NoEmpties {
		t.Errorf("empties proof must survive starvation: %s", starved.EmptiesDetail)
	}
}
