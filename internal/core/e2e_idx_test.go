package core

import (
	"testing"

	"arraycomp/internal/analysis"
	"arraycomp/internal/runtime"
)

func mkIdxStrict(lo, hi int64, vals []float64) *runtime.Strict {
	a := runtime.NewStrict(runtime.NewBounds1(lo, hi))
	copy(a.Data, vals)
	return a
}

func TestE2EIndirectGather(t *testing.T) {
	src := `g = array (1,n) [ i := x!(p!(i)) | i <- [1..n] ]`
	prog, err := Compile(src, map[string]int64{"n": 4}, Options{
		InputBounds: map[string]analysis.ArrayBounds{
			"x": {Lo: []int64{1}, Hi: []int64{4}},
			"p": {Lo: []int64{1}, Hi: []int64{4}},
		},
	})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	t.Log(prog.Report())
	x := mkIdxStrict(1, 4, []float64{10, 20, 30, 40})
	p := mkIdxStrict(1, 4, []float64{4, 3, 2, 1})
	out, err := prog.Run(map[string]*runtime.Strict{"x": x, "p": p})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	want := []float64{40, 30, 20, 10}
	for i, w := range want {
		if out.Data[i] != w {
			t.Fatalf("out[%d] = %v, want %v", i, out.Data[i], w)
		}
	}
}

func TestE2EIndirectScatter(t *testing.T) {
	src := `s = array (1,n) [ p!(i) := x!(i) | i <- [1..n] ]`
	prog, err := Compile(src, map[string]int64{"n": 4}, Options{
		InputBounds: map[string]analysis.ArrayBounds{
			"x": {Lo: []int64{1}, Hi: []int64{4}},
			"p": {Lo: []int64{1}, Hi: []int64{4}},
		},
	})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	t.Log(prog.Report())
	x := mkIdxStrict(1, 4, []float64{10, 20, 30, 40})
	p := mkIdxStrict(1, 4, []float64{4, 3, 2, 1})
	out, err := prog.Run(map[string]*runtime.Strict{"x": x, "p": p})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	want := []float64{40, 30, 20, 10}
	for i, w := range want {
		if out.Data[i] != w {
			t.Fatalf("out[%d] = %v, want %v", i, out.Data[i], w)
		}
	}
}

func TestE2EIndirectErrors(t *testing.T) {
	src := `s = array (1,n) [ p!(i) := x!(i) | i <- [1..n] ]`
	prog, err := Compile(src, map[string]int64{"n": 4}, Options{
		Parallel: true, Workers: 4,
		InputBounds: map[string]analysis.ArrayBounds{
			"x": {Lo: []int64{1}, Hi: []int64{4}},
			"p": {Lo: []int64{1}, Hi: []int64{4}},
		},
	})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	x := mkIdxStrict(1, 4, []float64{10, 20, 30, 40})
	// Out-of-range index value.
	p := mkIdxStrict(1, 4, []float64{4, 9, 2, 1})
	if _, err := prog.Run(map[string]*runtime.Strict{"x": x, "p": p}); err == nil {
		t.Fatalf("out-of-range scatter index must fail")
	} else {
		t.Logf("oob: %v", err)
	}
	// Colliding writes.
	p2 := mkIdxStrict(1, 4, []float64{1, 1, 2, 2})
	if _, err := prog.Run(map[string]*runtime.Strict{"x": x, "p": p2}); err == nil {
		t.Fatalf("colliding scatter must fail")
	} else {
		t.Logf("collision: %v", err)
	}
	// Non-integral index value.
	p3 := mkIdxStrict(1, 4, []float64{1.5, 2, 3, 4})
	if _, err := prog.Run(map[string]*runtime.Strict{"x": x, "p": p3}); err == nil {
		t.Fatalf("non-integral scatter index must fail")
	} else {
		t.Logf("non-integral: %v", err)
	}
}

func TestE2EHistogram(t *testing.T) {
	// Histogram: commutative accumulation through an index array.
	src := `h = accumArray (+) 0.0 (1,m) [ b!(k) := 1.0 | k <- [1..n] ]`
	prog, err := Compile(src, map[string]int64{"m": 4, "n": 8}, Options{
		Parallel: true, Workers: 4,
		InputBounds: map[string]analysis.ArrayBounds{
			"b": {Lo: []int64{1}, Hi: []int64{8}},
		},
	})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	t.Log(prog.Report())
	// Non-decreasing bucket array: 1 1 2 2 3 3 4 4.
	b := mkIdxStrict(1, 8, []float64{1, 1, 2, 2, 3, 3, 4, 4})
	out, err := prog.Run(map[string]*runtime.Strict{"b": b})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for i := 0; i < 4; i++ {
		if out.Data[i] != 2 {
			t.Fatalf("h[%d] = %v, want 2", i+1, out.Data[i])
		}
	}
	// Unsorted bucket array: mono claim fails at runtime -> sequential
	// checked fallback, same result.
	b2 := mkIdxStrict(1, 8, []float64{4, 1, 2, 3, 2, 1, 4, 3})
	out2, err := prog.Run(map[string]*runtime.Strict{"b": b2})
	if err != nil {
		t.Fatalf("run unsorted: %v", err)
	}
	for i := 0; i < 4; i++ {
		if out2.Data[i] != 2 {
			t.Fatalf("unsorted h[%d] = %v, want 2", i+1, out2.Data[i])
		}
	}
}

func TestE2ESpMV(t *testing.T) {
	// CSR sparse matrix-vector product: y[row[k]] += val[k] * x[col[k]].
	src := `y = accumArray (+) 0.0 (1,m) [ row!(k) := val!(k) * x!(col!(k)) | k <- [1..nnz] ]`
	prog, err := Compile(src, map[string]int64{"m": 3, "nnz": 5}, Options{
		Parallel: true, Workers: 4,
		InputBounds: map[string]analysis.ArrayBounds{
			"row": {Lo: []int64{1}, Hi: []int64{5}},
			"col": {Lo: []int64{1}, Hi: []int64{5}},
			"val": {Lo: []int64{1}, Hi: []int64{5}},
			"x":   {Lo: []int64{1}, Hi: []int64{3}},
		},
	})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	t.Log(prog.Report())
	row := mkIdxStrict(1, 5, []float64{1, 1, 2, 3, 3})
	col := mkIdxStrict(1, 5, []float64{1, 3, 2, 1, 3})
	val := mkIdxStrict(1, 5, []float64{2, 1, 5, 3, 4})
	x := mkIdxStrict(1, 3, []float64{1, 2, 3})
	out, err := prog.Run(map[string]*runtime.Strict{"row": row, "col": col, "val": val, "x": x})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	// y1 = 2*1 + 1*3 = 5; y2 = 5*2 = 10; y3 = 3*1 + 4*3 = 15.
	want := []float64{5, 10, 15}
	for i, w := range want {
		if out.Data[i] != w {
			t.Fatalf("y[%d] = %v, want %v", i+1, out.Data[i], w)
		}
	}
}

func TestE2ENativeTier(t *testing.T) {
	// TierForced: certify + native build must succeed and agree with
	// the interpreter on subscripted-subscript programs.
	src := `y = accumArray (+) 0.0 (1,m) [ row!(k) := val!(k) * x!(col!(k)) | k <- [1..nnz] ]`
	bounds := map[string]analysis.ArrayBounds{
		"row": {Lo: []int64{1}, Hi: []int64{5}},
		"col": {Lo: []int64{1}, Hi: []int64{5}},
		"val": {Lo: []int64{1}, Hi: []int64{5}},
		"x":   {Lo: []int64{1}, Hi: []int64{3}},
	}
	prog, err := Compile(src, map[string]int64{"m": 3, "nnz": 5}, Options{
		Parallel: true, Workers: 4, Tier: TierForced, TierSync: true, InputBounds: bounds,
	})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	row := mkIdxStrict(1, 5, []float64{1, 1, 2, 3, 3})
	col := mkIdxStrict(1, 5, []float64{1, 3, 2, 1, 3})
	val := mkIdxStrict(1, 5, []float64{2, 1, 5, 3, 4})
	x := mkIdxStrict(1, 3, []float64{1, 2, 3})
	in := map[string]*runtime.Strict{"row": row, "col": col, "val": val, "x": x}
	out, tier, err := prog.RunTiered(in)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	t.Logf("tier: %s", tier)
	want := []float64{5, 10, 15}
	for i, w := range want {
		if out.Data[i] != w {
			t.Fatalf("y[%d] = %v, want %v", i+1, out.Data[i], w)
		}
	}
	// Unsorted rows: native verifier must fail the mono claim and
	// fall back to the checked path with identical results.
	in2 := map[string]*runtime.Strict{
		"row": mkIdxStrict(1, 5, []float64{3, 1, 2, 1, 3}),
		"col": col, "val": val, "x": x,
	}
	out2, _, err := prog.RunTiered(in2)
	if err != nil {
		t.Fatalf("run unsorted: %v", err)
	}
	// y1 = 1*3 + 3*1 = 6; y2 = 5*2 = 10; y3 = 2*1 + 4*3 = 14.
	want2 := []float64{6, 10, 14}
	for i, w := range want2 {
		if out2.Data[i] != w {
			t.Fatalf("unsorted y[%d] = %v, want %v", i+1, out2.Data[i], w)
		}
	}
}
