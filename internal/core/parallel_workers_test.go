package core_test

import (
	"strings"
	"testing"

	"arraycomp/internal/analysis"
	"arraycomp/internal/core"
	"arraycomp/internal/runtime"
	"arraycomp/internal/workloads"
)

// TestParallelWorkersMatchSequential runs the benchmark kernels through
// the whole pipeline twice — once sequential, once with Parallel
// scheduling and a forced multi-worker pool — and demands identical
// results. The doacross schedules preserve the sequential dependence
// order exactly, so the comparison is bitwise, not approximate.
func TestParallelWorkersMatchSequential(t *testing.T) {
	mb := func(n int64) analysis.ArrayBounds {
		lo, hi := workloads.MatrixBounds(n)
		return analysis.ArrayBounds{Lo: lo, Hi: hi}
	}
	cases := []struct {
		name, src string
		n         int64
		bounds    map[string]analysis.ArrayBounds
		inputs    func(n int64) map[string]*runtime.Strict
		schedule  string // substring expected in some plan dump; "" = none required
	}{
		{
			name: "sor", src: workloads.SORSrc, n: 128,
			bounds:   map[string]analysis.ArrayBounds{"a": mb(128)},
			inputs:   func(n int64) map[string]*runtime.Strict { return map[string]*runtime.Strict{"a": workloads.Mesh(n, 9)} },
			schedule: "[wavefront",
		},
		{
			name: "livermore23", src: workloads.Livermore23Src, n: 128,
			bounds: map[string]analysis.ArrayBounds{
				"za": mb(128), "zr": mb(128), "zb": mb(128), "zu": mb(128), "zv": mb(128),
			},
			inputs:   workloads.Livermore23Inputs,
			schedule: "[wavefront",
		},
		{
			name: "wavefront", src: workloads.WavefrontSrc, n: 128,
			inputs:   func(int64) map[string]*runtime.Strict { return nil },
			schedule: "[wavefront",
		},
		{
			name: "jacobimono", src: workloads.JacobiMonolithicSrc, n: 80,
			bounds:   map[string]analysis.ArrayBounds{"b": mb(80)},
			inputs:   func(n int64) map[string]*runtime.Strict { return map[string]*runtime.Strict{"b": workloads.Mesh(n, 3)} },
			schedule: "[tile",
		},
		{
			// Unit-distance recurrence: doacross-eligible but unschedulable
			// (a single chain); must still run, sequentially, under
			// Parallel+Workers.
			name: "recurrence", src: workloads.RecurrenceSrc, n: 100000,
			inputs:   func(int64) map[string]*runtime.Strict { return nil },
			schedule: "",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			params := workloads.ParamsFor(c.name, c.n)
			seqProg, err := core.Compile(c.src, params, core.Options{InputBounds: c.bounds})
			if err != nil {
				t.Fatal(err)
			}
			want, err := seqProg.Run(c.inputs(c.n))
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 4} {
				parProg, err := core.Compile(c.src, params, core.Options{
					Parallel: true, Workers: workers, InputBounds: c.bounds,
				})
				if err != nil {
					t.Fatal(err)
				}
				if c.schedule != "" && workers == 4 {
					found := false
					for _, name := range parProg.Order {
						if cd := parProg.Defs[name]; cd.Plan != nil &&
							strings.Contains(cd.Plan.Program.Dump(), c.schedule) {
							found = true
						}
					}
					if !found {
						t.Fatalf("no plan carries a %q schedule", c.schedule)
					}
				}
				got, err := parProg.Run(c.inputs(c.n))
				if err != nil {
					t.Fatal(err)
				}
				if err := workloads.CheckClose(got, want, 0); err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
			}
		})
	}
}
