package core

import (
	"strings"
	"testing"

	"arraycomp/internal/analysis"
	"arraycomp/internal/runtime"
	"arraycomp/internal/workloads"
)

// TestParallelJacobiMonolithic: the fully independent out-of-place
// Jacobi step must be marked parallel and agree with the sequential
// and thunked results.
func TestParallelJacobiMonolithic(t *testing.T) {
	n := int64(80) // interior trip 78×78 = 6084 > sharding threshold
	params := map[string]int64{"n": n}
	in := workloads.Mesh(n, 5)
	opts := Options{
		Parallel:    true,
		InputBounds: map[string]analysis.ArrayBounds{"b": {Lo: []int64{1, 1}, Hi: []int64{n, n}}},
	}
	p := compile(t, workloads.JacobiMonolithicSrc, params, opts)
	dump := p.Defs["a"].Plan.Program.Dump()
	if !strings.Contains(dump, "parallel") {
		t.Fatalf("no parallel loop emitted:\n%s", dump)
	}
	got, err := p.Run(map[string]*runtime.Strict{"b": in})
	if err != nil {
		t.Fatal(err)
	}
	// Sequential compile of the same program.
	seqOpts := opts
	seqOpts.Parallel = false
	ps := compile(t, workloads.JacobiMonolithicSrc, params, seqOpts)
	want, err := ps.Run(map[string]*runtime.Strict{"b": in})
	if err != nil {
		t.Fatal(err)
	}
	if !got.EqualWithin(want, 0) {
		t.Fatal("parallel and sequential results differ")
	}
	if !got.EqualWithin(workloads.HandJacobiMonolithic(in), 1e-12) {
		t.Fatal("parallel result differs from hand-written")
	}
}

// TestParallelNotMarkedOnCarriedLoops: recurrences must never be
// parallelized even when requested.
func TestParallelNotMarkedOnCarriedLoops(t *testing.T) {
	for _, src := range []string{workloads.RecurrenceSrc, workloads.WavefrontSrc} {
		p := compile(t, src, map[string]int64{"n": 64}, Options{Parallel: true})
		for _, name := range p.Order {
			cd := p.Defs[name]
			if cd.Plan == nil {
				continue
			}
			dump := cd.Plan.Program.Dump()
			// The wavefront border loops ARE dependence-free and may be
			// parallel; the recurrence nests must not be. Check that no
			// loop whose body reads the array it writes is parallel by
			// running and comparing against the thunked oracle.
			_ = dump
			got, err := p.Run(nil)
			if err != nil {
				t.Fatal(err)
			}
			pt := compile(t, src, map[string]int64{"n": 64}, Options{ForceThunked: true})
			want, err := pt.Run(nil)
			if err != nil {
				t.Fatal(err)
			}
			if !got.EqualWithin(want, 1e-9) {
				t.Fatalf("parallel-enabled compile of %s diverges", name)
			}
		}
	}
	// Specifically: the recurrence's single loop must stay sequential.
	p := compile(t, workloads.RecurrenceSrc, map[string]int64{"n": 100000}, Options{Parallel: true})
	dump := p.Defs["a"].Plan.Program.Dump()
	if strings.Contains(dump, "parallel") {
		t.Fatalf("carried recurrence wrongly parallelized:\n%s", dump)
	}
}

// TestParallelDisabledForTrackedDefs: guarded programs (definedness
// bitmaps) must refuse to parallelize.
func TestParallelDisabledForTrackedDefs(t *testing.T) {
	src := `a = array (1,n)
	  ([ i := 1.0 | i <- [1..n], i mod 2 == 1 ] ++
	   [ i := 2.0 | i <- [1..n], i mod 2 == 0 ])`
	p := compile(t, src, map[string]int64{"n": 10000}, Options{Parallel: true})
	dump := p.Defs["a"].Plan.Program.Dump()
	if strings.Contains(dump, "parallel") {
		t.Fatalf("bitmap-tracked program wrongly parallelized:\n%s", dump)
	}
}

// TestParallelDisabledForNodeSplitting: bigupd with temps must stay
// sequential.
func TestParallelDisabledForNodeSplitting(t *testing.T) {
	n := int64(64)
	opts := Options{
		Parallel:    true,
		InputBounds: map[string]analysis.ArrayBounds{"a": matBounds(n, n)},
	}
	p := compile(t, workloads.JacobiSrc, map[string]int64{"n": n}, opts)
	dump := p.Defs["a2"].Plan.Program.Dump()
	if strings.Contains(dump, "parallel") {
		t.Fatalf("node-split bigupd wrongly parallelized:\n%s", dump)
	}
}

// TestParallelRace runs the parallel plan repeatedly; combined with
// `go test -race` this exercises the worker sharding for data races.
func TestParallelRace(t *testing.T) {
	n := int64(80)
	params := map[string]int64{"n": n}
	in := workloads.Mesh(n, 6)
	opts := Options{
		Parallel:    true,
		InputBounds: map[string]analysis.ArrayBounds{"b": {Lo: []int64{1, 1}, Hi: []int64{n, n}}},
	}
	p := compile(t, workloads.JacobiMonolithicSrc, params, opts)
	want, err := p.Run(map[string]*runtime.Strict{"b": in})
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 10; k++ {
		got, err := p.Run(map[string]*runtime.Strict{"b": in})
		if err != nil {
			t.Fatal(err)
		}
		if !got.EqualWithin(want, 0) {
			t.Fatal("nondeterministic parallel result")
		}
	}
}
