package core

import (
	"strings"
	"testing"

	"arraycomp/internal/analysis"
	"arraycomp/internal/idxprop"
	"arraycomp/internal/parser"
	"arraycomp/internal/runtime"
)

// Static discharge: the index array's defining comprehension is
// visible in-program, so the claims are proven by inference, the plan
// compiles claim-assuming with no runtime guard, and -certify replays
// the definition through the verifier.
func TestIdxPropStaticDischarge(t *testing.T) {
	src := `letrec*
	  p = array (1,n) [ i := n+1-i | i <- [1..n] ];
	  s = array (1,n) [ p!(i) := x!(i) | i <- [1..n] ];
	in s`
	prog, err := Compile(src, map[string]int64{"n": 4}, Options{
		Parallel: true, Workers: 2, Certify: true,
		InputBounds: map[string]analysis.ArrayBounds{
			"x": {Lo: []int64{1}, Hi: []int64{4}},
		},
	})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	t.Log(prog.Report())
	c := prog.Stats.Counters
	if c.IdxClaims == 0 || c.IdxClaims != c.IdxClaimsStatic {
		t.Fatalf("claims %d, static %d: want all static", c.IdxClaims, c.IdxClaimsStatic)
	}
	found := false
	for _, n := range prog.Notes {
		if strings.Contains(n, "proven statically") {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing static-discharge note; notes: %v", prog.Notes)
	}
	x := mkIdxStrict(1, 4, []float64{10, 20, 30, 40})
	out, err := prog.Run(map[string]*runtime.Strict{"x": x})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	want := []float64{40, 30, 20, 10}
	for i, w := range want {
		if out.Data[i] != w {
			t.Fatalf("s[%d] = %v, want %v", i+1, out.Data[i], w)
		}
	}
	// All claims static: no runtime verification ran.
	if snap := prog.IdxVerify.Snapshot(); snap.Verified != 0 || snap.Failed != 0 {
		t.Fatalf("static plan ran the verifier: %+v", snap)
	}
}

// Runtime claims bump the program's verifier counters on each run.
func TestIdxPropVerifyCounters(t *testing.T) {
	src := `s = array (1,n) [ p!(i) := x!(i) | i <- [1..n] ]`
	prog, err := Compile(src, map[string]int64{"n": 4}, Options{
		Parallel: true, Workers: 2,
		InputBounds: map[string]analysis.ArrayBounds{
			"x": {Lo: []int64{1}, Hi: []int64{4}},
			"p": {Lo: []int64{1}, Hi: []int64{4}},
		},
	})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	x := mkIdxStrict(1, 4, []float64{10, 20, 30, 40})
	good := mkIdxStrict(1, 4, []float64{4, 3, 2, 1})
	if _, err := prog.Run(map[string]*runtime.Strict{"x": x, "p": good}); err != nil {
		t.Fatalf("run: %v", err)
	}
	if snap := prog.IdxVerify.Snapshot(); snap.Verified != 1 || snap.Failed != 0 {
		t.Fatalf("after passing run: %+v", snap)
	}
	// Non-injective index array: verification fails, checked fallback
	// reports the collision as an error.
	bad := mkIdxStrict(1, 4, []float64{1, 1, 2, 2})
	if _, err := prog.Run(map[string]*runtime.Strict{"x": x, "p": bad}); err == nil {
		t.Fatalf("colliding scatter must fail")
	}
	if snap := prog.IdxVerify.Snapshot(); snap.Failed != 1 {
		t.Fatalf("after failing run: %+v", snap)
	}
}

// Forged static claims must falsify: the certifier replays the index
// array's definition and runs the verifier over the concrete values,
// independently of the inference.
func TestIdxPropForgedStaticClaimsFalsify(t *testing.T) {
	srcProg := `letrec*
	  p = array (1,4) [ i := 5 - i | i <- [1..4] ];
	  q = array (1,4) [ i := 2 | i <- [1..4] ];
	  s = array (1,4) [ i := p!(i) + q!(i) | i <- [1..4] ];
	in s`
	prog, err := parser.ParseProgram(srcProg)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	env := map[string]int64{}
	cases := []struct {
		name  string
		claim idxprop.Claim
	}{
		{"injectivity of a constant array", idxprop.Claim{Array: "q", Kind: idxprop.KInjective, Static: true}},
		{"monotonicity of a decreasing array", idxprop.Claim{Array: "p", Kind: idxprop.KMonoNonDec, Static: true}},
		{"range excluding actual values", idxprop.Claim{Array: "p", Kind: idxprop.KRange, Lo: 1, Hi: 2, Static: true}},
		{"claim on an undefined array", idxprop.Claim{Array: "ghost", Kind: idxprop.KInjective, Static: true}},
	}
	for _, tc := range cases {
		crep := certifyStaticClaims(idxprop.Claims{tc.claim}, prog, env)
		if crep.Err() == nil {
			t.Fatalf("forged claim (%s) must falsify: %s", tc.name, crep.Summary())
		}
	}
	// Honest claims certify.
	honest := idxprop.Claims{
		{Array: "p", Kind: idxprop.KInjective, Static: true},
		{Array: "p", Kind: idxprop.KRange, Lo: 1, Hi: 4, Static: true},
		{Array: "q", Kind: idxprop.KMonoNonDec, Static: true},
	}
	if crep := certifyStaticClaims(honest, prog, env); crep.Err() != nil {
		t.Fatalf("honest claims falsified: %v", crep.Err())
	}
}
