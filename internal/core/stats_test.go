package core

import (
	"testing"

	"arraycomp/internal/metrics"
)

const statsWavefrontSrc = `a = array ((1,1),(n,n))
  ([ (1,j) := 1.0 | j <- [1..n] ] ++
   [ (i,1) := 1.0 | i <- [2..n] ] ++
   [ (i,j) := a!(i-1,j) + a!(i,j-1) | i <- [2..n], j <- [2..n] ])`

// Every Compile must attach a compile report with phase timings and
// the optimization counters the analyses earned.
func TestCompileRecordsStats(t *testing.T) {
	p := compile(t, statsWavefrontSrc, map[string]int64{"n": 32}, Options{})
	if p.Stats == nil {
		t.Fatal("Program.Stats is nil")
	}
	c := p.Stats.Counters
	if c.ThunksAvoided != 1 || c.ThunkedDefs != 0 {
		t.Errorf("thunks avoided=%d thunked=%d, want 1/0", c.ThunksAvoided, c.ThunkedDefs)
	}
	// Three clauses, all provably collision-free, empties excluded.
	if c.CollisionChecksElided != 3 {
		t.Errorf("collision checks elided = %d, want 3", c.CollisionChecksElided)
	}
	if c.EmptiesChecksElided != 1 {
		t.Errorf("empties checks elided = %d, want 1", c.EmptiesChecksElided)
	}
	if len(c.SchedulesByKind) == 0 || c.SchedulesByKind["sequential"] == 0 {
		t.Errorf("schedules by kind = %v, want sequential loops counted", c.SchedulesByKind)
	}
	// Phase timings: parse/analyze/plan/lower all ran.
	for _, ph := range []string{metrics.PhaseParse, metrics.PhaseAnalyze, metrics.PhasePlan, metrics.PhaseLower} {
		if p.Stats.Phases[ph] <= 0 {
			t.Errorf("phase %s has zero recorded time", ph)
		}
	}
}

// The thunked baseline records thunked defs and no elision credit.
func TestCompileStatsThunked(t *testing.T) {
	p := compile(t, statsWavefrontSrc, map[string]int64{"n": 8}, Options{ForceThunked: true})
	c := p.Stats.Counters
	if c.ThunkedDefs != 1 || c.ThunksAvoided != 0 {
		t.Errorf("thunked=%d avoided=%d, want 1/0", c.ThunkedDefs, c.ThunksAvoided)
	}
}

// Parallel compilation records the doacross schedule kinds the planner
// chose (wavefront tiles for the §3 recurrence at a forced worker
// count).
func TestCompileStatsParallelSchedules(t *testing.T) {
	p := compile(t, statsWavefrontSrc, map[string]int64{"n": 256}, Options{Parallel: true, Workers: 4})
	kinds := p.Stats.Counters.SchedulesByKind
	if kinds["wavefront"] == 0 {
		t.Errorf("schedules by kind = %v, want a wavefront schedule", kinds)
	}
}
