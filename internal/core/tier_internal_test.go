package core

import (
	"strings"
	"testing"

	"arraycomp/internal/workloads"
)

// TestTierCertifyGateRefusal proves the negative half of the certify
// gate: a program carrying tiering state but no certificate (only
// constructible by reaching into the state — every public compile
// path forces -certify on when tiering is requested) must refuse to
// tier up.
func TestTierCertifyGateRefusal(t *testing.T) {
	p, err := Compile(workloads.SquaresSrc, workloads.ParamsFor("squares", 8), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Certs != nil {
		t.Fatal("plain compile unexpectedly certified")
	}
	p.tier = &tierState{mode: TierAuto, threshold: 1, done: make(chan struct{})}
	err = p.PromoteNative()
	if err == nil || !strings.Contains(err.Error(), "certify") {
		t.Fatalf("PromoteNative on an uncertified program: want certify refusal, got %v", err)
	}
	if p.CurrentTier() == TierNative {
		t.Fatal("uncertified program tiered up anyway")
	}
}

// TestTierForcedFallsBackWhenIneligible: TierForced on a program with
// a thunked schedule must degrade to interpreted with a note, not
// fail the compile.
func TestTierForcedFallsBackWhenIneligible(t *testing.T) {
	p, err := Compile(workloads.CyclicSrc, workloads.ParamsFor("cyclic", 8), Options{Tier: TierForced})
	if err != nil {
		t.Fatalf("forced tier on ineligible program failed the compile: %v", err)
	}
	if p.CurrentTier() == TierNative {
		t.Fatal("thunked-schedule program reached the native tier")
	}
	rep := p.TierReport()
	if !strings.Contains(rep, "native-ineligible") {
		t.Fatalf("TierReport does not explain ineligibility: %q", rep)
	}
}
