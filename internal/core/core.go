// Package core is the compiler pipeline of the reproduction: parse →
// flatten/normalize → subscript analysis → dependence graph → static
// scheduling → code generation, per array definition, with definitions
// ordered by their array-level dependences and mutually recursive
// groups falling back to thunked evaluation.
//
// A Program is compiled against one binding of its scalar parameters
// (the paper's statically-known loop bounds) and can then be run any
// number of times over different input arrays.
package core

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"arraycomp/internal/analysis"
	"arraycomp/internal/certify"
	"arraycomp/internal/codegen"
	"arraycomp/internal/depgraph"
	"arraycomp/internal/idxprop"
	"arraycomp/internal/lang"
	"arraycomp/internal/loopir"
	"arraycomp/internal/metrics"
	"arraycomp/internal/parser"
	"arraycomp/internal/runtime"
	"arraycomp/internal/schedule"
)

// Options tunes compilation.
type Options struct {
	// ExactBudget bounds each exact dependence test (0 = default).
	ExactBudget int
	// ForceThunked skips scheduling and compiles every definition with
	// the general thunked representation (the naive baseline; used for
	// ablation benchmarks).
	ForceThunked bool
	// Parallel emits dependence-free loops as parallel loops sharded
	// across CPUs (the paper's section 10 extension), and lets the
	// optimizer attach doacross schedules (wavefront bands, residue
	// chains) to loops with regular carried dependences.
	Parallel bool
	// Workers fixes the parallel worker budget of compiled plans. 0
	// reads GOMAXPROCS at each run; 1 forces sequential execution.
	// Ignored unless Parallel is set.
	Workers int
	// NoLinearize disables the §6 linearization refinement for
	// multi-dimensional subscripts (ablation).
	NoLinearize bool
	// ForceChecks keeps every runtime check (collision, definedness,
	// bounds, final empties sweep) in compiled plans even when the
	// analysis proved them redundant. Used by the differential-testing
	// oracle: for a correct compiler the forced checks must never fire
	// on programs the reference semantics accepts.
	ForceChecks bool
	// NoOptimize skips the loop-IR optimizer (fusion, invariant
	// hoisting, strength-reduced subscripts, interpreter fast paths
	// keyed on the optimized shapes). Compiled plans then execute the
	// lowered nest exactly as the scheduler built it — the oracle's
	// ablation arm for cross-checking optimized vs unoptimized runs.
	NoOptimize bool
	// NoStencil keeps the optimizer but disables the stencil
	// specializer: no interior/boundary guard splitting, no footprint
	// annotation, and therefore none of the specialized interior
	// kernels in any tier. The `stencil` oracle ablation arm
	// cross-checks this against the specialized paths bitwise.
	NoStencil bool
	// NoIdxProp disables the subscripted-subscript conditional layer
	// (index-array property claims, dual lowering, runtime verifier):
	// indirect subscripts then compile on the fully checked sequential
	// path only. The `idxprop` oracle ablation arm cross-checks this
	// against the claim-conditional plans bitwise.
	NoIdxProp bool
	// InputBounds declares the bounds of free input arrays (arrays read
	// but not defined by the program), required to compile reads of
	// them.
	InputBounds map[string]analysis.ArrayBounds
	// Certify audits every dependence verdict the compiler acted on:
	// dependent claims must produce a re-checked witness, independent
	// claims are cross-validated by exhaustive enumeration over a
	// bounded shadow domain, emitted schedules are simulated against
	// raw accesses, and parallel plans are checked against brute-force
	// conflict sets. Any falsified claim aborts the compile with an
	// error naming the lying layer.
	Certify bool
	// Tier selects the tiered-execution policy (see TierMode). Any
	// mode other than TierOff implies Certify: uncertified programs
	// never tier up, so compilation runs the audit up front.
	Tier TierMode
	// TierThreshold is the number of interpreted calls before TierAuto
	// promotes (0 = DefaultTierThreshold).
	TierThreshold int
	// TierSync makes TierAuto promote synchronously at the threshold
	// call instead of in the background — deterministic tier traces
	// for CLI goldens and tests.
	TierSync bool
	// TierStats, when non-nil, receives this program's per-tier run
	// and promotion counters (shared process-wide by haccd). Not part
	// of the compilation key: it is a sink, not an input.
	TierStats *metrics.TierStats
	// VerifyStats, when non-nil, receives runtime index-property
	// verifier verdicts (shared process-wide by haccd). Like
	// TierStats, a sink — not part of the compilation key.
	VerifyStats *metrics.VerifyStats
	// Stream requests bounded-memory streaming execution: when every
	// definition passes the window-legality analysis
	// (loopir.BuildStreamPlan), Run executes the pipeline as chunked
	// producer/consumer stages over O(d)-sized windows instead of
	// materialized arrays, bit-identical to the materialized path.
	// Programs the analysis rejects fall back to materialized
	// execution with a note. Part of the compilation key.
	Stream bool
}

// CompiledDef is the compilation artifact of one definition.
type CompiledDef struct {
	Def      *lang.ArrayDef
	Analysis *analysis.Result
	Schedule *schedule.Result
	// Plan is the thunkless compiled plan, nil when Thunked is used.
	Plan *codegen.Plan
	// Thunked is the fallback evaluator, nil when Plan is used.
	Thunked *codegen.ThunkedPlan
	// GroupIdx ≥ 0 marks membership in a mutually recursive group
	// evaluated together (Plan and Thunked are both nil then).
	GroupIdx int
	// CloneSource: this in-place plan's source array is live afterwards
	// and must be cloned before running.
	CloneSource bool
}

// Mode describes how the definition was compiled.
func (d *CompiledDef) Mode() string {
	switch {
	case d.GroupIdx >= 0:
		return "thunked-group"
	case d.Plan != nil && d.Plan.InPlace:
		return "in-place"
	case d.Plan != nil:
		return "thunkless"
	default:
		return "thunked"
	}
}

// Program is a compiled program.
type Program struct {
	Source *lang.Program
	Env    map[string]int64
	// Steps is the evaluation order: single definitions and recursive
	// groups interleaved.
	Defs map[string]*CompiledDef
	// Order lists definition names in evaluation order.
	Order []string
	// Groups holds the mutually recursive groups (by analysis results).
	Groups [][]*analysis.Result
	Result string
	Notes  []string
	// Stats is the instrumentation record of this compilation: where
	// the time went (per phase) and which optimizations fired. It is
	// written single-threaded during Compile and read-only afterwards,
	// so cached programs may share it across concurrent readers.
	Stats *metrics.CompileReport
	// Certs aggregates the soundness certificates when Options.Certify
	// was set (nil otherwise). A compile that returns succeeds only
	// with zero falsifications.
	Certs *certify.Report
	// IdxVerify accumulates runtime index-property verifier verdicts
	// across this program's runs (atomic: cached programs are shared).
	IdxVerify metrics.VerifyStats
	// verifySink is the optional process-wide verdict sink
	// (Options.VerifyStats), kept so the native tier can report its
	// batched verdict deltas to the same place the interpreter hook
	// feeds.
	verifySink *metrics.VerifyStats
	// tier is the tiered-execution state (nil when Options.Tier was
	// TierOff and no native plan was adopted).
	tier *tierState
	// streamSt is the streaming-mode state (nil when Options.Stream
	// was off).
	streamSt *streamState
	// allThunked records that every live definition compiled to the
	// thunked reference representation, making the interpreter tier
	// the semantics baseline rather than the scheduler's loop nests.
	allThunked bool
}

// Compile parses and compiles source under the given parameter binding.
func Compile(src string, params map[string]int64, opts Options) (*Program, error) {
	rep := metrics.NewCompileReport()
	t0 := time.Now()
	prog, err := parser.ParseProgram(src)
	rep.AddPhase(metrics.PhaseParse, time.Since(t0))
	if err != nil {
		return nil, err
	}
	return compileProgram(prog, params, opts, rep)
}

// CompileProgram compiles an already parsed program.
func CompileProgram(source *lang.Program, params map[string]int64, opts Options) (*Program, error) {
	return compileProgram(source, params, opts, metrics.NewCompileReport())
}

func compileProgram(source *lang.Program, params map[string]int64, opts Options, rep *metrics.CompileReport) (*Program, error) {
	certifyForcedByTier := false
	if opts.Tier != TierOff && !opts.Certify {
		// Uncertified programs never tier up; run the audit now so a
		// later promotion has a certificate to check.
		opts.Certify = true
		certifyForcedByTier = true
	}
	env := map[string]int64{}
	for k, v := range params {
		env[k] = v
	}
	for _, q := range source.Params {
		if _, ok := env[q.Name]; !ok {
			return nil, fmt.Errorf("core: parameter %q not bound", q.Name)
		}
	}
	p := &Program{
		Source: source,
		Env:    env,
		Defs:   map[string]*CompiledDef{},
		Result: source.Result,
		Stats:  rep,
	}
	if source.Def(source.Result) == nil {
		return nil, fmt.Errorf("core: result array %q is not defined", source.Result)
	}
	if opts.Certify {
		p.Certs = certify.NewReport()
	}
	// certifyMerge folds one layer's certificates into the program
	// report and aborts the compile on any falsification.
	certifyMerge := func(name string, crep *certify.Report, t0 time.Time) error {
		rep.AddPhase(metrics.PhaseCertify, time.Since(t0))
		p.Certs.Merge(crep)
		rep.Counters.ClaimsCertified += crep.CertifiedCount
		rep.Counters.ClaimsFalsified += crep.FalsifiedCount
		rep.Counters.ClaimsSkipped += crep.SkippedCount
		if err := crep.Err(); err != nil {
			return fmt.Errorf("core: %s: %w", name, err)
		}
		return nil
	}

	// Resolve bounds for every definition (bigupd inherits its
	// source's bounds), then order definitions.
	bounds := map[string]analysis.ArrayBounds{}
	for name, b := range opts.InputBounds {
		bounds[name] = b
	}
	// Non-bigupd bounds first; bigupd may chain through other bigupds.
	for _, def := range source.Defs {
		if def.Kind != lang.BigUpd {
			b, err := analysis.EvalBounds(def, env)
			if err != nil {
				return nil, err
			}
			bounds[def.Name] = b
		}
	}
	for changed := true; changed; {
		changed = false
		for _, def := range source.Defs {
			if def.Kind != lang.BigUpd {
				continue
			}
			if _, done := bounds[def.Name]; done {
				continue
			}
			if b, ok := bounds[def.Source]; ok {
				bounds[def.Name] = b
				changed = true
			}
		}
	}
	for _, def := range source.Defs {
		if _, ok := bounds[def.Name]; !ok {
			return nil, fmt.Errorf("core: cannot resolve bounds of %s (bigupd source %q unknown — declare it via InputBounds)", def.Name, def.Source)
		}
	}

	// Analyze every definition.
	tAnalyze := time.Now()
	results := map[string]*analysis.Result{}
	aOpts := analysis.Options{ExactBudget: opts.ExactBudget, NoLinearize: opts.NoLinearize}
	for _, def := range source.Defs {
		external := map[string]analysis.ArrayBounds{}
		for name, b := range bounds {
			if name != def.Name {
				external[name] = b
			}
		}
		res, err := analysis.Analyze(def, env, bounds[def.Name], external, aOpts)
		if err != nil {
			return nil, fmt.Errorf("core: %s: %w", def.Name, err)
		}
		results[def.Name] = res
		if res.Cond != nil && !opts.NoIdxProp {
			// Static discharge: a claim about an index array whose own
			// defining comprehension is visible in-program is proven by
			// inference over that definition; the rest stay runtime
			// claims and compile to a verifier guard.
			nStatic := 0
			for i := range res.Cond.Claims {
				c := &res.Cond.Claims[i]
				if d := source.Def(c.Array); d != nil {
					if props, ok := idxprop.Infer(d, env); ok && props.Satisfies(*c) {
						c.Static = true
					}
				}
				if c.Static {
					nStatic++
				}
			}
			rep.Counters.IdxClaims += len(res.Cond.Claims)
			rep.Counters.IdxClaimsStatic += nStatic
			p.note("%s: idxprop claims %s (%d/%d static)",
				def.Name, res.Cond.Claims, nStatic, len(res.Cond.Claims))
			if opts.Certify {
				t0 := time.Now()
				if err := certifyMerge(def.Name, certifyStaticClaims(res.Cond.Claims, source, env), t0); err != nil {
					return nil, err
				}
			}
		}
		if opts.Certify {
			t0 := time.Now()
			if err := certifyMerge(def.Name, analysis.Certify(res), t0); err != nil {
				return nil, err
			}
		}
	}
	rep.AddPhase(metrics.PhaseAnalyze, time.Since(tAnalyze))

	// Definition-level dependence graph and evaluation order.
	order, groups, err := orderDefs(source, results)
	if err != nil {
		return nil, err
	}
	// Dead-definition elimination: a binding the result does not
	// (transitively) need is never evaluated — the natural operational
	// reading of a non-strict letrec.
	live := liveDefs(source, results)
	var pruned []string
	for _, name := range order {
		if live[name] {
			pruned = append(pruned, name)
		} else {
			p.note("%s: not needed by %s; dropped (dead binding)", name, source.Result)
		}
	}
	order = pruned
	var liveGroups [][]*analysis.Result
	for _, g := range groups {
		if live[g[0].Def.Name] {
			liveGroups = append(liveGroups, g)
		}
	}
	groups = liveGroups
	p.Order = order
	p.Groups = groups

	grouped := map[string]int{}
	for gi, g := range groups {
		for _, res := range g {
			grouped[res.Def.Name] = gi
		}
	}

	// Liveness: does any later definition read this array?
	lastReader := map[string]int{}
	for pos, name := range order {
		res := results[name]
		for ext := range res.ExternalReads {
			lastReader[ext] = pos
		}
		if res.Def.Kind == lang.BigUpd {
			lastReader[res.Def.Source] = pos
		}
	}

	for pos, name := range order {
		def := source.Def(name)
		res := results[name]
		cd := &CompiledDef{Def: def, Analysis: res, GroupIdx: -1}
		p.Defs[name] = cd
		if gi, ok := grouped[name]; ok {
			cd.GroupIdx = gi
			rep.Counters.ThunkedDefs++
			p.note("%s: mutually recursive with its group; thunked group evaluation", name)
			continue
		}
		external := map[string]analysis.ArrayBounds{}
		for n, b := range bounds {
			if n != name {
				external[n] = b
			}
		}
		if opts.ForceThunked {
			cd.Thunked = newThunked(res, rep)
			p.note("%s: thunked (forced)", name)
			continue
		}
		if !def.Strict {
			// A plain letrec gives no strict-context guarantee: the
			// caller may tie a hidden recursive knot through this array
			// (the paper's `letrec a = g (f a)` example), so thunkless
			// compilation is unsafe. This is exactly why the paper
			// introduces letrec*.
			cd.Thunked = newThunked(res, rep)
			p.note("%s: non-strict binding (plain letrec): thunked; use letrec* for thunkless compilation", name)
			continue
		}
		tPlan := time.Now()
		sched, err := schedule.Build(res, nil)
		if err != nil {
			return nil, fmt.Errorf("core: %s: %w", name, err)
		}
		antiRelaxed := false
		if sched.Thunked && def.Kind == lang.BigUpd {
			// Relax the anti edges; node splitting repairs the
			// violated ones during lowering.
			relaxed, err := schedule.Build(res, schedule.KeepFlowOutput)
			if err != nil {
				return nil, fmt.Errorf("core: %s: %w", name, err)
			}
			if !relaxed.Thunked {
				p.note("%s: anti-dependence cycle broken by node splitting (%s)", name, sched.Reason)
				sched = relaxed
				antiRelaxed = true
			}
		}
		rep.AddPhase(metrics.PhasePlan, time.Since(tPlan))
		cd.Schedule = sched
		if sched.Thunked {
			cd.Thunked = newThunked(res, rep)
			p.note("%s: thunked fallback: %s", name, sched.Reason)
			continue
		}
		if opts.Certify {
			t0 := time.Now()
			if err := certifyMerge(name, schedule.Certify(res, sched, antiRelaxed), t0); err != nil {
				return nil, err
			}
		}
		tLower := time.Now()
		plan, err := codegen.Lower(res, sched, external, codegen.LowerOptions{Parallel: opts.Parallel, ForceChecks: opts.ForceChecks, NoOptimize: opts.NoOptimize, Workers: opts.Workers, NoStencil: opts.NoStencil, NoIdxProp: opts.NoIdxProp})
		if err != nil {
			return nil, fmt.Errorf("core: %s: %w", name, err)
		}
		// Lower times the optimizer internally; split it out so the
		// report's "lower" phase is pure codegen.
		rep.AddPhase(metrics.PhaseLower, time.Since(tLower)-plan.OptTime)
		rep.AddPhase(metrics.PhaseOptimize, plan.OptTime)
		recordPlanStats(rep, res, plan)
		cd.Plan = plan
		p.installVerifyHook(plan.Exec, opts.VerifyStats)
		if opts.Certify {
			t0 := time.Now()
			if err := certifyMerge(name, loopir.CertifyPlans(plan.Program), t0); err != nil {
				return nil, err
			}
			t0 = time.Now()
			if err := certifyMerge(name, loopir.CertifySplits(plan.Program), t0); err != nil {
				return nil, err
			}
			t0 = time.Now()
			var static idxprop.Claims
			if res.Cond != nil && !opts.NoIdxProp {
				for _, c := range res.Cond.Claims {
					if c.Static {
						static = append(static, c)
					}
				}
			}
			if err := certifyMerge(name, loopir.CertifyClaims(plan.Program, static), t0); err != nil {
				return nil, err
			}
		}
		if plan.InPlace {
			// The in-place plan destroys its source; clone when the
			// source is still live afterwards (or is the program
			// result under a different name).
			src := def.Source
			if lr, ok := lastReader[src]; ok && lr > pos {
				cd.CloneSource = true
				p.note("%s: source %s live after the update; defensive clone inserted", name, src)
			}
			if source.Def(src) == nil {
				// Caller-owned input: never destroy it.
				cd.CloneSource = true
			}
		}
		for _, n := range plan.Notes {
			p.note("%s: %s", name, n)
		}
	}
	if certifyForcedByTier {
		p.note("tier: -certify enabled automatically (uncertified programs never tier up)")
	}
	if err := p.initTier(opts, rep); err != nil {
		return nil, err
	}
	if opts.Stream {
		var cm func(string, *certify.Report, time.Time) error
		if opts.Certify {
			cm = certifyMerge
		}
		if err := p.initStream(rep, cm); err != nil {
			return nil, err
		}
	}
	return p, nil
}

func (p *Program) note(format string, args ...any) {
	p.Notes = append(p.Notes, fmt.Sprintf(format, args...))
}

// installVerifyHook routes runtime index-property verifier verdicts
// into the program's own counters and, when set, the process-wide sink.
func (p *Program) installVerifyHook(ex *loopir.Exec, sink *metrics.VerifyStats) {
	p.verifySink = sink
	if ex == nil {
		return
	}
	ex.SetVerifyHook(func(_ idxprop.Claims, res idxprop.VerifyResult) {
		p.IdxVerify.Record(res.OK)
		if sink != nil {
			sink.Record(res.OK)
		}
	})
}

// certifyStaticClaims replays every statically discharged index-array
// claim: the index array's defining comprehension is materialized
// (independently of the inference that proved the claim) and the same
// runtime verifier that guards runtime claims is run over the concrete
// values — static discharge is never trusted on the inference's
// say-so alone. A claim marked static without an in-program definition
// is a forgery and falsifies outright.
func certifyStaticClaims(claims idxprop.Claims, source *lang.Program, env map[string]int64) *certify.Report {
	crep := certify.NewReport()
	for _, c := range claims {
		if !c.Static {
			continue
		}
		cert := certify.Certificate{Layer: "idxprop", Claim: c.String(), Exhaustive: true}
		d := source.Def(c.Array)
		if d == nil {
			cert.Status = certify.Falsified
			cert.Detail = "claim marked static but the index array has no in-program definition"
			crep.Record(cert)
			continue
		}
		data, ok := idxprop.Materialize(d, env)
		if !ok {
			cert.Status = certify.Skipped
			cert.Detail = "definition shape not replayable"
			crep.Record(cert)
			continue
		}
		if v := idxprop.Verify(data, idxprop.Claims{c}); !v.OK {
			cert.Status = certify.Falsified
			cert.Detail = v.Reason
		} else {
			cert.Status = certify.Certified
			cert.Witness = []int64{int64(len(data))}
		}
		crep.Record(cert)
	}
	return crep
}

// newThunked builds a thunked fallback plan, charging its construction
// to the lower phase and counting the thunked definition.
func newThunked(res *analysis.Result, rep *metrics.CompileReport) *codegen.ThunkedPlan {
	t0 := time.Now()
	tp := codegen.NewThunkedPlan(res)
	rep.AddPhase(metrics.PhaseLower, time.Since(t0))
	rep.Counters.ThunkedDefs++
	return tp
}

// recordPlanStats accumulates one thunkless/in-place plan's
// optimization counters into the compile report: the checks the
// analysis discharged, the loops the optimizer fused, and the
// execution shape of every compiled loop.
func recordPlanStats(rep *metrics.CompileReport, res *analysis.Result, plan *codegen.Plan) {
	rep.Counters.ThunksAvoided++
	if res.Def.Kind == lang.Monolithic {
		// One collision check per clause write would be required
		// without the §7 proofs; the plan emitted plan.Checks many.
		if elided := len(res.Clauses) - plan.Checks.CollisionChecks; elided > 0 {
			rep.Counters.CollisionChecksElided += elided
		}
		if plan.Checks.EmptiesSweeps == 0 {
			rep.Counters.EmptiesChecksElided++
		}
	}
	if plan.Opt != nil {
		rep.Counters.LoopsFused += plan.Opt.FusedLoops
	}
	loopir.WalkLoops(plan.Program.Stmts, func(l *loopir.Loop) {
		rep.Counters.AddSchedule(loopir.ScheduleKind(l))
	})
}

// orderDefs topologically orders definitions by array-level reads;
// strongly connected groups are returned separately and positioned at
// their first member.
func orderDefs(source *lang.Program, results map[string]*analysis.Result) ([]string, [][]*analysis.Result, error) {
	idx := map[string]int{}
	for i, def := range source.Defs {
		idx[def.Name] = i
	}
	g := depgraph.New(len(source.Defs))
	for i, def := range source.Defs {
		res := results[def.Name]
		deps := map[string]bool{}
		for ext := range res.ExternalReads {
			deps[ext] = true
		}
		if def.Kind == lang.BigUpd {
			deps[def.Source] = true
			// Reads of the defined name inside a bigupd are internal.
			delete(deps, def.Name)
		}
		for dep := range deps {
			if j, ok := idx[dep]; ok {
				g.AddEdge(j, i, depgraph.Flow, nil)
			}
		}
	}
	comps, _ := g.SCCs()
	var groups [][]*analysis.Result
	quotient, qComps := g.Quotient()
	qOrder, err := quotient.TopoSort(nil)
	if err != nil {
		return nil, nil, fmt.Errorf("core: internal: definition quotient cyclic: %w", err)
	}
	_ = comps
	var order []string
	for _, q := range qOrder {
		members := qComps[q]
		sort.Ints(members)
		if len(members) == 1 && !selfLoop(g, members[0]) {
			order = append(order, source.Defs[members[0]].Name)
			continue
		}
		var group []*analysis.Result
		for _, m := range members {
			name := source.Defs[m].Name
			group = append(group, results[name])
			order = append(order, name)
		}
		groups = append(groups, group)
	}
	return order, groups, nil
}

// liveDefs returns the definitions transitively needed by the result.
func liveDefs(source *lang.Program, results map[string]*analysis.Result) map[string]bool {
	live := map[string]bool{}
	var mark func(name string)
	mark = func(name string) {
		if live[name] || source.Def(name) == nil {
			return
		}
		live[name] = true
		res := results[name]
		for ext := range res.ExternalReads {
			mark(ext)
		}
		if res.Def.Kind == lang.BigUpd {
			mark(res.Def.Source)
		}
	}
	mark(source.Result)
	return live
}

func selfLoop(g *depgraph.Graph, v int) bool {
	for _, e := range g.Edges {
		if e.Src == v && e.Dst == v {
			return true
		}
	}
	return false
}

// Run executes the program over the given input arrays and returns the
// result array. Inputs are never mutated (in-place plans run on clones
// when their source is caller-owned or still live), whichever tier
// serves the call. Under a tiering policy (Options.Tier) this call
// counts toward promotion and may be served natively; RunTiered
// additionally reports which tier ran.
func (p *Program) Run(inputs map[string]*runtime.Strict) (*runtime.Strict, error) {
	out, _, err := p.RunTiered(inputs)
	return out, err
}

// runInterp is the interpreted evaluation pipeline: walk the
// evaluation order dispatching each definition to its compiled plan,
// thunked fallback, or recursive group.
func (p *Program) runInterp(inputs map[string]*runtime.Strict) (*runtime.Strict, error) {
	store := map[string]*runtime.Strict{}
	for k, v := range inputs {
		store[k] = v
	}
	ranGroup := map[int]bool{}
	for _, name := range p.Order {
		cd := p.Defs[name]
		switch {
		case cd.GroupIdx >= 0:
			if ranGroup[cd.GroupIdx] {
				continue
			}
			ranGroup[cd.GroupIdx] = true
			outs, err := codegen.RunThunkedGroup(p.Groups[cd.GroupIdx], store)
			if err != nil {
				return nil, err
			}
			for n, a := range outs {
				store[n] = a
			}
		case cd.Thunked != nil:
			out, err := cd.Thunked.Run(store)
			if err != nil {
				return nil, err
			}
			store[name] = out
		default:
			runIn := store
			if cd.Plan.InPlace {
				src, ok := store[cd.Def.Source]
				if !ok {
					return nil, fmt.Errorf("core: missing input array %q", cd.Def.Source)
				}
				if cd.CloneSource {
					src = src.Clone()
				}
				runIn = map[string]*runtime.Strict{}
				for k, v := range store {
					runIn[k] = v
				}
				runIn[cd.Def.Source] = src
			}
			out, err := cd.Plan.Run(runIn)
			if err != nil {
				return nil, err
			}
			store[name] = out
		}
	}
	res, ok := store[p.Result]
	if !ok {
		return nil, fmt.Errorf("core: result array %q was not produced", p.Result)
	}
	return res, nil
}

// Report renders a human-readable compilation report: per definition
// the dependence graph, verdicts, schedule, and emitted checks.
func (p *Program) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "program: result %s, parameters %v\n", p.Result, p.Env)
	for _, name := range p.Order {
		cd := p.Defs[name]
		res := cd.Analysis
		fmt.Fprintf(&b, "\n== %s (%s, %s) ==\n", name, cd.Def.Kind, cd.Mode())
		b.WriteString(res.Graph.String())
		fmt.Fprintf(&b, "collision: %s", res.Collision)
		if res.CollisionDetail != "" {
			fmt.Fprintf(&b, " (%s)", res.CollisionDetail)
		}
		b.WriteByte('\n')
		if res.Def.Kind == lang.Monolithic {
			if res.NoEmpties {
				b.WriteString("empties: excluded\n")
			} else {
				fmt.Fprintf(&b, "empties: possible (%s)\n", res.EmptiesDetail)
			}
		}
		if cd.Schedule != nil {
			b.WriteString("schedule:\n")
			for _, line := range strings.Split(strings.TrimRight(cd.Schedule.Dump(), "\n"), "\n") {
				fmt.Fprintf(&b, "  %s\n", line)
			}
		}
		if cd.Plan != nil {
			fmt.Fprintf(&b, "checks: %+v\n", cd.Plan.Checks)
			for _, n := range cd.Plan.Notes {
				fmt.Fprintf(&b, "note: %s\n", n)
			}
		}
	}
	if len(p.Notes) > 0 {
		b.WriteString("\nnotes:\n")
		for _, n := range p.Notes {
			fmt.Fprintf(&b, "  %s\n", n)
		}
	}
	return b.String()
}
