package core

import (
	"bytes"
	"strings"
	"testing"

	"arraycomp/internal/analysis"
	"arraycomp/internal/metrics"
	"arraycomp/internal/runtime"
)

// roundtrip certifies, compiles, snapshots, gob-encodes, decodes, and
// restores src, then checks the restored program's output is bitwise
// identical to the original's and that it paid zero compile-phase time.
func roundtrip(t *testing.T, src string, params map[string]int64, opts Options, inputs map[string]*runtime.Strict) *Program {
	t.Helper()
	opts.Certify = true
	p := compile(t, src, params, opts)
	want, err := p.Run(inputs)
	if err != nil {
		t.Fatalf("original run: %v\n%s", err, p.Report())
	}

	s, err := p.Snapshot()
	if err != nil {
		t.Fatalf("snapshot: %v\n%s", err, p.Report())
	}
	var buf bytes.Buffer
	if err := s.Encode(&buf); err != nil {
		t.Fatalf("encode: %v", err)
	}
	dec, err := DecodeSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	r, err := RestoreSnapshot(dec, opts)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}

	got, err := r.Run(inputs)
	if err != nil {
		t.Fatalf("restored run: %v\n%s", err, r.Report())
	}
	if !got.EqualWithin(want, 0) {
		t.Fatalf("restored program output differs bitwise from original\n%s", r.Report())
	}
	for _, ph := range metrics.CompilePhases {
		if d := r.Stats.Phases[ph]; d != 0 {
			t.Errorf("restored program charged %v to compile phase %q; must be zero", d, ph)
		}
	}
	if r.Certs == nil || r.Certs.CertifiedCount != p.Certs.CertifiedCount {
		t.Errorf("restored certificate lost: got %+v, want %d certified claims", r.Certs, p.Certs.CertifiedCount)
	}
	return r
}

func TestSnapshotRoundtripSquares(t *testing.T) {
	r := roundtrip(t, `sq = array (1,n) [ i := i*i | i <- [1..n] ]`,
		map[string]int64{"n": 64}, Options{}, nil)
	if _, ok := r.Stats.Phases[metrics.PhaseLoad]; !ok {
		t.Error("restored program must charge the load phase")
	}
}

func TestSnapshotRoundtripWavefront(t *testing.T) {
	src := `a = array ((1,1),(n,n))
	  ([ (1,j) := 1.0 | j <- [1..n] ] ++
	   [ (i,1) := 1.0 | i <- [2..n] ] ++
	   [ (i,j) := a!(i-1,j) + a!(i,j-1) + a!(i-1,j-1)
	     | i <- [2..n], j <- [2..n] ])`
	roundtrip(t, src, map[string]int64{"n": 16}, Options{}, nil)
}

func TestSnapshotRoundtripWavefrontParallel(t *testing.T) {
	src := `a = array ((1,1),(n,n))
	  ([ (1,j) := 1.0 | j <- [1..n] ] ++
	   [ (i,1) := 1.0 | i <- [2..n] ] ++
	   [ (i,j) := a!(i-1,j) + a!(i,j-1) + a!(i-1,j-1)
	     | i <- [2..n], j <- [2..n] ])`
	roundtrip(t, src, map[string]int64{"n": 24}, Options{Parallel: true, Workers: 3}, nil)
}

func TestSnapshotRoundtripAccumArray(t *testing.T) {
	// The accumulating store's combiner is a closure gob cannot carry;
	// the HasAccum marker plus RebindAccum must restore it. The 'right'
	// combiner is order-sensitive, so a silently dropped accumulation
	// (plain store semantics) would still "work" for (+) histograms —
	// exercise both.
	roundtrip(t, `h = accumArray (+) 0.0 (0,9) [ (3*i) mod 10 := 1.0 | i <- [1..n] ]`,
		map[string]int64{"n": 30}, Options{}, nil)
	roundtrip(t, `h = accumArray right 0.0 (1,n)
	  ([ i := 1.0 | i <- [1..n] ] ++ [ i := 2.0 | i <- [1..n] ])`,
		map[string]int64{"n": 5}, Options{}, nil)
}

func TestSnapshotRoundtripInPlace(t *testing.T) {
	src := `param n;
	a2 = bigupd a
	  [* [ (i,j) := 0.25 * (a2!(i-1,j) + a2!(i,j-1) + a!(i+1,j) + a!(i,j+1)) ]
	   | i <- [2..n-1], j <- [2..n-1] *]`
	n := int64(12)
	opts := Options{InputBounds: map[string]analysis.ArrayBounds{"a": matBounds(n, n)}}
	in := makeMatrix(n, n, func(i, j int64) float64 { return float64((i*3+j*5)%7) + 0.25 })
	orig := in.Clone()
	roundtrip(t, src, map[string]int64{"n": n}, opts, map[string]*runtime.Strict{"a": in})
	// The restored in-place plan must still clone the caller's input.
	if !in.EqualWithin(orig, 0) {
		t.Error("restored in-place plan mutated the caller's input")
	}
}

func TestSnapshotRoundtripMultiDef(t *testing.T) {
	src := `letrec*
	  b = array (1,n) [ i := 2.0 * i | i <- [1..n] ];
	  c = array (1,n) [ i := b!i + 1.0 | i <- [1..n] ];
	  d = array (1,n) [ i := c!i * b!i | i <- [1..n] ]
	in d`
	roundtrip(t, src, map[string]int64{"n": 20}, Options{}, nil)
}

func TestSnapshotRefusesUncertified(t *testing.T) {
	p := compile(t, `sq = array (1,n) [ i := i*i | i <- [1..n] ]`,
		map[string]int64{"n": 8}, Options{})
	if _, err := p.Snapshot(); err == nil || !strings.Contains(err.Error(), "uncertified") {
		t.Fatalf("snapshot of uncertified program: err = %v, want uncertified refusal", err)
	}
}

func TestSnapshotRefusesThunked(t *testing.T) {
	src := `param n;
	a = array (1,2*n)
	  [* [ i := if i >= n - 1 then 1.0 else a!(n+i+2) + 1.0 ] ++
	     [ n + i := if i == 1 then 1.0 else a!(i-1) + 1.0 ]
	   | i <- [1..n] *]`
	p := compile(t, src, map[string]int64{"n": 6}, Options{Certify: true})
	if p.Defs["a"].Mode() != "thunked" {
		t.Fatalf("precondition: mode = %s, want thunked", p.Defs["a"].Mode())
	}
	if _, err := p.Snapshot(); err == nil || !strings.Contains(err.Error(), "thunkless") {
		t.Fatalf("snapshot of thunked program: err = %v, want thunkless refusal", err)
	}
}

func TestSnapshotCorruptAccumMarker(t *testing.T) {
	// A decoded snapshot whose accumulating store lost its combiner name
	// must refuse to restore rather than run with plain-store semantics.
	p := compile(t, `h = accumArray (+) 0.0 (0,9) [ i mod 10 := 1.0 | i <- [1..n] ]`,
		map[string]int64{"n": 10}, Options{Certify: true})
	s, err := p.Snapshot()
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	var buf bytes.Buffer
	if err := s.Encode(&buf); err != nil {
		t.Fatalf("encode: %v", err)
	}
	dec, err := DecodeSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	for i := range dec.Defs {
		dec.Defs[i].IR.AccumOp = ""
	}
	if _, err := RestoreSnapshot(dec, Options{}); err == nil || !strings.Contains(err.Error(), "AccumOp") {
		t.Fatalf("restore with dropped combiner: err = %v, want AccumOp error", err)
	}
}
