package core

import (
	"sync"
	"testing"

	"arraycomp/internal/analysis"
	"arraycomp/internal/runtime"
)

// TestConcurrentProgramReuse compiles once and runs the same Program
// from many goroutines at once (each on private inputs). Compiled
// artifacts are meant to be reusable — Exec allocates a fresh frame
// per run and the thunked evaluator builds a fresh non-strict array —
// and this test makes the race detector prove it for every
// representation: thunkless plans, in-place bigupd plans with a
// defensive clone, parallel plans, and the thunked fallback with its
// blackhole bookkeeping.
//
// Note the non-strict runtime itself is single-goroutine by design
// (blackhole detection has no goroutine identity, so two goroutines
// must never share one evaluation in flight); concurrency here is
// always across independent runs.
func TestConcurrentProgramReuse(t *testing.T) {
	mkInput := func() *runtime.Strict {
		u := runtime.NewStrict(runtime.NewBounds1(0, 9))
		for i := range u.Data {
			u.Data[i] = float64(i) + 0.25
		}
		return u
	}
	bounds := map[string]analysis.ArrayBounds{"u": {Lo: []int64{0}, Hi: []int64{9}}}

	cases := []struct {
		name string
		src  string
		opts Options
		mode string // expected Mode() of the result def, "" = don't care
	}{
		{
			name: "thunkless recurrence",
			src:  `a = array (0,9) ([ 0 := u!0 ] ++ [* [ i := 0.5 * a!(i-1) + u!i ] | i <- [1..9] *])`,
			mode: "thunkless",
		},
		{
			name: "in-place bigupd with live source",
			src: `letrec*
			  a = bigupd u [* [ i := 2 * u!i ] | i <- [1..8] *];
			  b = array (0,9) [* [ i := a!i + u!i ] | i <- [0..9] *];
			in b`,
		},
		{
			name: "parallel plan",
			src:  `a = array (0,9) [* [ i := 3 * u!i ] | i <- [0..9] *]`,
			opts: Options{Parallel: true},
		},
		{
			name: "thunked fallback",
			src:  `a = array (0,9) [* [ i := u!i + (if i > 4 then a!(i mod 3) else 0) ] | i <- [0..9] *]`,
			opts: Options{ForceThunked: true},
			mode: "thunked",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opts := tc.opts
			opts.InputBounds = bounds
			p := compile(t, tc.src, nil, opts)
			if tc.mode != "" {
				if m := p.Defs[p.Result].Mode(); m != tc.mode {
					t.Fatalf("result compiled %s, want %s:\n%s", m, tc.mode, p.Report())
				}
			}
			want, err := p.Run(map[string]*runtime.Strict{"u": mkInput()})
			if err != nil {
				t.Fatalf("baseline run: %v", err)
			}
			const goroutines = 8
			const runs = 25
			var wg sync.WaitGroup
			errs := make(chan error, goroutines)
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for r := 0; r < runs; r++ {
						got, err := p.Run(map[string]*runtime.Strict{"u": mkInput()})
						if err != nil {
							errs <- err
							return
						}
						if !got.EqualWithin(want, 0) {
							errs <- errNotEqual
							return
						}
					}
				}()
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}
		})
	}
}

var errNotEqual = &runError{"concurrent run result differs from baseline"}

type runError struct{ msg string }

func (e *runError) Error() string { return e.msg }
