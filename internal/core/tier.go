package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"arraycomp/internal/gogen"
	"arraycomp/internal/metrics"
	"arraycomp/internal/native"
	"arraycomp/internal/runtime"
)

// This file is the tiered execution subsystem: one compiled Program
// can be served by three backends — the thunked reference evaluator,
// the loop-IR interpreter, and native compiled Go — behind a single
// ExecutionPlan interface. The policy mirrors a JIT's: interpret on
// the first calls (compilation already paid for the analysis; the
// interpreter starts instantly), kick off a background native build
// once the program proves hot, and hot-swap to machine code when the
// build lands. Uncertified programs never tier up: promotion replaces
// the interpreter that the oracle differentially tested with code
// from a second backend, so it is gated on the -certify soundness
// audit having passed.

// Tier names an execution backend.
type Tier string

const (
	// TierThunked is the reference evaluator: suspension graphs,
	// demand-driven, the paper's semantics baseline. A program lands
	// here when every live definition fell back to thunks.
	TierThunked Tier = "thunked"
	// TierInterpreted is the loop-IR interpreter: the scheduler's
	// static loop nests executed as Go closures.
	TierInterpreted Tier = "interpreted"
	// TierNative is gogen-emitted Go compiled by the host toolchain
	// and loaded as a plugin (or exec fallback).
	TierNative Tier = "native"
	// TierStream is the bounded-memory streaming pipeline
	// (Options.Stream with every definition window-legal). Streaming
	// replaces the tier ladder: a streaming program neither counts
	// toward promotion nor tiers up to native.
	TierStream Tier = "stream"
)

// TierMode is the tiering policy of a compiled program.
type TierMode int

const (
	// TierOff never tiers up; every Run uses the interpreter (or the
	// thunked evaluator where scheduling fell back). The default.
	TierOff TierMode = iota
	// TierAuto interprets the first TierThreshold calls, then promotes
	// to native in the background and hot-swaps when the build lands.
	TierAuto
	// TierForced builds the native tier during Compile and serves
	// every call natively (falling back to interpreted, with a note,
	// if the program is native-ineligible).
	TierForced
)

// String renders the mode the way the -tier flag spells it.
func (m TierMode) String() string {
	switch m {
	case TierAuto:
		return "auto"
	case TierForced:
		return "native"
	default:
		return "off"
	}
}

// ParseTierMode parses a -tier flag value.
func ParseTierMode(s string) (TierMode, error) {
	switch s {
	case "", "off":
		return TierOff, nil
	case "auto":
		return TierAuto, nil
	case "native", "forced":
		return TierForced, nil
	}
	return TierOff, fmt.Errorf("unknown tier mode %q (want off, auto, or native)", s)
}

// DefaultTierThreshold is the number of interpreted calls before
// TierAuto starts a native build: the first call is often the only
// call, and a toolchain invocation costs ~10⁵ interpreted runs of a
// small program, so tiering must prove the program hot first.
const DefaultTierThreshold = 3

// ExecutionPlan is the uniform interface over the three backends. A
// Program selects one per call; tests select them explicitly to pin
// a tier.
type ExecutionPlan interface {
	// Run evaluates the program over the inputs. Inputs are never
	// mutated, whichever backend serves the call.
	Run(inputs map[string]*runtime.Strict) (*runtime.Strict, error)
	// Tier names the backend.
	Tier() Tier
}

// tierState is the mutable runtime state of a tiered program. The
// native pointer is the hot-swap point: readers load it on every call
// and see either nil (keep interpreting) or a fully built plan —
// never a partial one, because the pointer is published exactly once,
// after Build returns.
type tierState struct {
	mode      TierMode
	threshold int
	sync      bool
	stats     *metrics.TierStats

	calls   atomic.Int64 // tiering-policy call counter (threshold test)
	interp  atomic.Int64 // interpreted/thunked runs actually served
	native  atomic.Pointer[native.Plan]
	started atomic.Bool // promotion singleflight: first CAS winner builds
	done    chan struct{}

	mu            sync.Mutex
	buildErr      error
	ineligible    string // non-empty: why native emission is impossible
	promotedAfter int64  // interpreted calls served before the swap
	buildTime     time.Duration
}

// --- the three backends as ExecutionPlans ---

// interpPlan serves a call from the compiled loop-IR plans (with
// thunked fallbacks where scheduling demanded them).
type interpPlan struct{ p *Program }

func (e interpPlan) Run(in map[string]*runtime.Strict) (*runtime.Strict, error) {
	if ts := e.p.tier; ts != nil {
		ts.interp.Add(1)
		if ts.stats != nil {
			ts.stats.InterpRuns.Add(1)
		}
	}
	return e.p.runInterp(in)
}
func (e interpPlan) Tier() Tier { return TierInterpreted }

// thunkedPlan is the same evaluation pipeline when every live
// definition compiled to the reference representation — reported as
// its own tier because it is the semantics baseline, not the
// scheduler's output.
type thunkedPlan struct{ p *Program }

func (e thunkedPlan) Run(in map[string]*runtime.Strict) (*runtime.Strict, error) {
	if ts := e.p.tier; ts != nil {
		ts.interp.Add(1)
		if ts.stats != nil {
			ts.stats.ThunkedRuns.Add(1)
		}
	}
	return e.p.runInterp(in)
}
func (e thunkedPlan) Tier() Tier { return TierThunked }

// nativePlan serves a call from the loaded native module.
type nativePlan struct {
	p  *Program
	np *native.Plan
}

func (e nativePlan) Run(in map[string]*runtime.Strict) (*runtime.Strict, error) {
	if ts := e.p.tier; ts != nil && ts.stats != nil {
		ts.stats.NativeRuns.Add(1)
	}
	out, err := e.np.Run(in)
	// Fold the emitted verifier's verdicts into the same counters the
	// interpreter hook feeds; without this the native tier runs every
	// BVerify check but the tallies silently undercount.
	if pass, fail := e.np.TakeVerifyDelta(); pass > 0 || fail > 0 {
		e.p.IdxVerify.AddN(true, pass)
		e.p.IdxVerify.AddN(false, fail)
		if sink := e.p.verifySink; sink != nil {
			sink.AddN(true, pass)
			sink.AddN(false, fail)
		}
	}
	return out, err
}
func (e nativePlan) Tier() Tier { return TierNative }

// interpBackend picks the non-native backend by compile shape.
func (p *Program) interpBackend() ExecutionPlan {
	if p.allThunked {
		return thunkedPlan{p}
	}
	return interpPlan{p}
}

// CurrentPlan returns the backend a call made right now would use,
// without advancing the tiering policy.
func (p *Program) CurrentPlan() ExecutionPlan {
	if ts := p.tier; ts != nil {
		if np := ts.native.Load(); np != nil {
			return nativePlan{p, np}
		}
	}
	return p.interpBackend()
}

// CurrentTier reports the tier a call made right now would run at.
func (p *Program) CurrentTier() Tier { return p.CurrentPlan().Tier() }

// selectPlan advances the tiering policy by one call and returns the
// backend to serve it: the call-count bump, the threshold test, and
// the synchronous or background promotion all live here.
func (p *Program) selectPlan() ExecutionPlan {
	ts := p.tier
	if ts == nil {
		return p.interpBackend()
	}
	if np := ts.native.Load(); np != nil {
		return nativePlan{p, np}
	}
	n := ts.calls.Add(1)
	if ts.mode == TierAuto && n >= int64(ts.threshold) && p.tierEligible() {
		if ts.sync {
			if err := p.PromoteNative(); err == nil {
				if np := ts.native.Load(); np != nil {
					return nativePlan{p, np}
				}
			}
		} else if !ts.started.Load() {
			go p.PromoteNative()
		}
	}
	return p.interpBackend()
}

// tierEligible reports whether promotion could possibly succeed:
// every live definition has a thunkless plan gogen can emit, and the
// certify audit passed. The emission half was probed at compile time;
// the certificate half re-checks here because AdoptNative and tests
// may exercise programs compiled without -certify.
func (p *Program) tierEligible() bool {
	ts := p.tier
	if ts == nil {
		return false
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return ts.ineligible == "" && p.Certs != nil && p.Certs.Err() == nil
}

// RunTiered executes the program and reports which tier served the
// call. Run delegates here; callers that need the tier (haccd's eval
// response, hacc -repeat traces) use it directly.
func (p *Program) RunTiered(inputs map[string]*runtime.Strict) (*runtime.Strict, Tier, error) {
	if p.StreamActive() {
		out, err := p.runStream(inputs)
		return out, TierStream, err
	}
	ep := p.selectPlan()
	out, err := ep.Run(inputs)
	return out, ep.Tier(), err
}

// PromoteNative builds the native tier now and hot-swaps to it.
// Singleflight: concurrent callers (including the background
// goroutine TierAuto spawns) coalesce onto one toolchain invocation —
// the first caller builds, everyone blocks until the build lands, and
// all see the same verdict. Promotion refuses uncertified programs.
func (p *Program) PromoteNative() error {
	ts := p.tier
	if ts == nil {
		return fmt.Errorf("core: tiering is off for this program")
	}
	if ts.started.CompareAndSwap(false, true) {
		err := p.buildNative()
		ts.mu.Lock()
		ts.buildErr = err
		ts.mu.Unlock()
		close(ts.done)
	}
	<-ts.done
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return ts.buildErr
}

// buildNative emits, compiles, loads, and publishes the native plan.
// Only ever executed by the singleflight winner.
func (p *Program) buildNative() error {
	ts := p.tier
	fail := func(err error) error {
		if ts.stats != nil {
			ts.stats.PromoteFailures.Add(1)
		}
		return err
	}
	ts.mu.Lock()
	reason := ts.ineligible
	ts.mu.Unlock()
	if reason != "" {
		return fail(fmt.Errorf("core: native-ineligible: %s", reason))
	}
	if p.Certs == nil {
		return fail(fmt.Errorf("core: refusing native tier-up: program was compiled without -certify (uncertified programs never tier up)"))
	}
	if err := p.Certs.Err(); err != nil {
		return fail(fmt.Errorf("core: refusing native tier-up: %w", err))
	}
	spec, err := p.NativeSpec("main")
	if err != nil {
		return fail(err)
	}
	t0 := time.Now()
	plan, err := native.BuildOne(spec, native.Options{})
	d := time.Since(t0)
	if ts.stats != nil {
		ts.stats.PromoteNs.Add(int64(d))
	}
	if err != nil {
		return fail(err)
	}
	ts.mu.Lock()
	ts.buildTime = d
	ts.promotedAfter = ts.interp.Load()
	ts.mu.Unlock()
	if ts.stats != nil {
		ts.stats.Promotions.Add(1)
	}
	// Publish last: a reader that loads non-nil gets a complete plan.
	ts.native.Store(plan)
	return nil
}

// AdoptNative installs an externally built native plan (the batch
// path: the differential harness and the oracle build one module for
// a whole corpus, then hand each program its plan). It deliberately
// bypasses the certify gate — the adopters are the test harnesses
// whose whole purpose is to compare tiers on arbitrary programs.
func (p *Program) AdoptNative(plan *native.Plan) {
	ts := p.tier
	if ts == nil {
		// Program compiled with TierOff: attach a minimal state so the
		// swap still works (tests pin tiers on plain compiles).
		ts = &tierState{mode: TierAuto, threshold: DefaultTierThreshold, done: make(chan struct{})}
		p.tier = ts
	}
	if ts.started.CompareAndSwap(false, true) {
		defer close(ts.done)
	}
	ts.mu.Lock()
	ts.promotedAfter = ts.interp.Load()
	ts.mu.Unlock()
	ts.native.Store(plan)
}

// NativeSpec renders the program as a native build spec under the
// given module key: every live definition's loop-IR plan in
// evaluation order, with the defensive-clone decisions core already
// made. It fails on programs with thunked or grouped definitions —
// the native tier has no suspension machinery.
func (p *Program) NativeSpec(key string) (native.ProgramSpec, error) {
	spec := native.ProgramSpec{Key: key, Result: p.Result}
	for _, name := range p.Order {
		cd := p.Defs[name]
		if cd.Plan == nil {
			return spec, fmt.Errorf("core: %s compiled %s; the native tier needs a thunkless plan", name, cd.Mode())
		}
		u := native.Unit{Name: name, Prog: cd.Plan.Program}
		if cd.Plan.InPlace && cd.CloneSource {
			u.CloneSource = cd.Def.Source
		}
		spec.Units = append(spec.Units, u)
	}
	return spec, nil
}

// initTier wires the tiering state into a freshly compiled program:
// probes gogen emission over every live plan (a program that cannot
// be emitted is marked ineligible, with the reason in the report),
// and for TierForced performs the promotion right now, charged to the
// compile report's promote phase.
func (p *Program) initTier(opts Options, rep *metrics.CompileReport) error {
	p.allThunked = true
	for _, name := range p.Order {
		cd := p.Defs[name]
		if cd.GroupIdx < 0 && cd.Thunked == nil {
			p.allThunked = false
		}
	}
	if opts.Tier == TierOff {
		return nil
	}
	threshold := opts.TierThreshold
	if threshold <= 0 {
		threshold = DefaultTierThreshold
	}
	ts := &tierState{
		mode:      opts.Tier,
		threshold: threshold,
		sync:      opts.TierSync,
		stats:     opts.TierStats,
		done:      make(chan struct{}),
	}
	p.tier = ts
	ts.ineligible = p.probeNativeEligibility()
	if ts.ineligible != "" {
		p.note("tier: native-ineligible: %s", ts.ineligible)
	}
	if opts.Tier == TierForced {
		t0 := time.Now()
		err := p.PromoteNative()
		rep.AddPhase(metrics.PhasePromote, time.Since(t0))
		if err != nil {
			// Forced mode degrades rather than failing the compile: the
			// program still runs, one tier down, and the report says why.
			p.note("tier: native build failed; serving interpreted (%v)", err)
		}
	}
	return nil
}

// probeNativeEligibility dry-runs gogen emission over every live plan
// and returns the first reason native tier-up cannot work ("" when it
// can).
func (p *Program) probeNativeEligibility() string {
	for _, name := range p.Order {
		cd := p.Defs[name]
		if cd.GroupIdx >= 0 {
			return fmt.Sprintf("%s is in a mutually recursive group", name)
		}
		if cd.Plan == nil {
			return fmt.Sprintf("%s fell back to the thunked evaluator", name)
		}
		if _, _, results, err := gogen.EmitFunc(cd.Plan.Program, "probe"); err != nil {
			return fmt.Sprintf("%s: gogen: %v", name, err)
		} else if len(results) != 1 {
			return fmt.Sprintf("%s: plan has %d result arrays", name, len(results))
		}
	}
	return ""
}

// TierReport renders the tiering decision for hacc -explain and the
// run trace — deterministic (no timings), so it can be golden-tested.
func (p *Program) TierReport() string {
	ts := p.tier
	if ts == nil {
		return fmt.Sprintf("tier: %s (tiering off)", p.interpBackend().Tier())
	}
	base := string(p.interpBackend().Tier())
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if ts.native.Load() != nil {
		if ts.mode == TierForced {
			return "tier: native (forced at compile)"
		}
		return fmt.Sprintf("tier: %s → native (promoted after %d calls)", base, ts.promotedAfter)
	}
	if ts.ineligible != "" {
		return fmt.Sprintf("tier: %s (native-ineligible: %s)", base, ts.ineligible)
	}
	if ts.buildErr != nil {
		return fmt.Sprintf("tier: %s (native build failed: %v)", base, ts.buildErr)
	}
	if ts.mode == TierForced {
		return fmt.Sprintf("tier: %s (forced native pending)", base)
	}
	return fmt.Sprintf("tier: %s (native after %d calls; %d so far)", base, ts.threshold, ts.calls.Load())
}

// TierBuildTime reports the native build duration (0 until promoted).
func (p *Program) TierBuildTime() time.Duration {
	ts := p.tier
	if ts == nil {
		return 0
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return ts.buildTime
}
