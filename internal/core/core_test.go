package core

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"arraycomp/internal/analysis"
	"arraycomp/internal/runtime"
)

func compile(t *testing.T, src string, params map[string]int64, opts Options) *Program {
	t.Helper()
	p, err := Compile(src, params, opts)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return p
}

// runBoth compiles the program twice — normally and with the thunked
// baseline forced — runs both on the same inputs, and checks the
// results agree. Returns the compiled result.
func runBoth(t *testing.T, src string, params map[string]int64, opts Options, inputs map[string]*runtime.Strict) *runtime.Strict {
	t.Helper()
	p := compile(t, src, params, opts)
	got, err := p.Run(inputs)
	if err != nil {
		t.Fatalf("compiled run: %v\n%s", err, p.Report())
	}
	optsT := opts
	optsT.ForceThunked = true
	pt := compile(t, src, params, optsT)
	want, err := pt.Run(inputs)
	if err != nil {
		t.Fatalf("thunked run: %v", err)
	}
	if !got.EqualWithin(want, 1e-9) {
		t.Fatalf("compiled and thunked results differ\nreport:\n%s", p.Report())
	}
	return got
}

func TestSquaresEndToEnd(t *testing.T) {
	src := `sq = array (1,n) [ i := i*i | i <- [1..n] ]`
	p := compile(t, src, map[string]int64{"n": 10}, Options{})
	cd := p.Defs["sq"]
	if cd.Mode() != "thunkless" {
		t.Errorf("mode = %s", cd.Mode())
	}
	if c := cd.Plan.Checks; c.CollisionChecks+c.DefinedChecks+c.EmptiesSweeps+c.BoundsChecks != 0 {
		t.Errorf("squares must compile with zero runtime checks: %+v", c)
	}
	out := runBoth(t, src, map[string]int64{"n": 10}, Options{}, nil)
	for i := int64(1); i <= 10; i++ {
		if out.At(i) != float64(i*i) {
			t.Errorf("sq[%d] = %v", i, out.At(i))
		}
	}
}

func TestWavefrontEndToEnd(t *testing.T) {
	src := `a = array ((1,1),(n,n))
	  ([ (1,j) := 1.0 | j <- [1..n] ] ++
	   [ (i,1) := 1.0 | i <- [2..n] ] ++
	   [ (i,j) := a!(i-1,j) + a!(i,j-1) + a!(i-1,j-1)
	     | i <- [2..n], j <- [2..n] ])`
	params := map[string]int64{"n": 12}
	p := compile(t, src, params, Options{})
	if p.Defs["a"].Mode() != "thunkless" {
		t.Fatalf("wavefront must compile thunklessly:\n%s", p.Report())
	}
	if c := p.Defs["a"].Plan.Checks; c.CollisionChecks+c.DefinedChecks+c.EmptiesSweeps != 0 {
		t.Errorf("wavefront checks not elided: %+v", c)
	}
	out := runBoth(t, src, params, Options{}, nil)
	// Spot value: a(3,3) of this recurrence is 13 (Delannoy numbers).
	if out.At(3, 3) != 13 {
		t.Errorf("a(3,3) = %v, want 13", out.At(3, 3))
	}
}

func TestPaperExample1EndToEnd(t *testing.T) {
	// Runnable variant of section 5 example 1 (guarded first instance).
	src := `a = array (1,3*n)
	  [* [3*i := 2.0] ++
	     [3*i-1 := if i == 1 then 1.0 else 0.5 * a!(3*(i-1))] ++
	     [3*i-2 := 0.5 * a!(3*i)]
	   | i <- [1..n] *]`
	params := map[string]int64{"n": 100}
	p := compile(t, src, params, Options{})
	if p.Defs["a"].Mode() != "thunkless" {
		t.Fatalf("example 1 must compile thunklessly:\n%s", p.Report())
	}
	out := runBoth(t, src, params, Options{}, nil)
	// a!(3i) = 2; a!(3i−1) = 0.5·a!(3(i−1)) = 1 for i > 1; a!(3i−2) = 1.
	if out.At(6) != 2 || out.At(5) != 1 || out.At(4) != 1 {
		t.Errorf("values: %v %v %v", out.At(6), out.At(5), out.At(4))
	}
}

func TestBackwardRecurrenceEndToEnd(t *testing.T) {
	src := `a = array (1,n)
	  ([ n := 1.0 ] ++ [ i := 2.0 * a!(i+1) | i <- [1..n-1] ])`
	params := map[string]int64{"n": 20}
	out := runBoth(t, src, params, Options{}, nil)
	if out.At(1) != math.Pow(2, 19) {
		t.Errorf("a(1) = %v", out.At(1))
	}
}

func TestGuardedEvensOddsRuntimeChecks(t *testing.T) {
	// Guards hide the even/odd split from the permutation proof, so
	// collision checks and an empties sweep are compiled — and pass.
	src := `a = array (1,n)
	  ([ i := 1.0 | i <- [1..n], i mod 2 == 0 ] ++
	   [ i := 2.0 | i <- [1..n], i mod 2 == 1 ])`
	params := map[string]int64{"n": 9}
	p := compile(t, src, params, Options{})
	cd := p.Defs["a"]
	if cd.Plan == nil {
		t.Fatalf("must compile (no self reads):\n%s", p.Report())
	}
	if cd.Plan.Checks.CollisionChecks == 0 || cd.Plan.Checks.EmptiesSweeps == 0 {
		t.Errorf("guarded program must carry runtime checks: %+v", cd.Plan.Checks)
	}
	out := runBoth(t, src, params, Options{}, nil)
	if out.At(4) != 1 || out.At(5) != 2 {
		t.Errorf("values: %v %v", out.At(4), out.At(5))
	}
}

func TestDefiniteCollisionIsCompileError(t *testing.T) {
	src := `a = array (1,n) ([ 1 := 1.0 ] ++ [ 1 := 2.0 ] ++ [ i := 0.0 | i <- [2..n] ])`
	if _, err := Compile(src, map[string]int64{"n": 5}, Options{}); err == nil {
		t.Fatal("definite write collision must fail compilation")
	}
}

func TestRuntimeCollisionDetected(t *testing.T) {
	// Non-affine writes: analysis says Maybe, runtime check fires.
	src := `a = array (1,n) [ i mod 3 + 1 := 1.0 | i <- [1..n] ]`
	p := compile(t, src, map[string]int64{"n": 6}, Options{})
	if _, err := p.Run(nil); err == nil || !strings.Contains(err.Error(), "collision") {
		t.Fatalf("want runtime collision error, got %v", err)
	}
}

func TestRuntimeEmptiesDetected(t *testing.T) {
	src := `a = array (1,n) [ i := 1.0 | i <- [1..n], i mod 2 == 0 ]`
	p := compile(t, src, map[string]int64{"n": 6}, Options{})
	if _, err := p.Run(nil); err == nil || !strings.Contains(err.Error(), "empty") {
		t.Fatalf("want runtime empties error, got %v", err)
	}
}

func TestSelfBottomRuntimeError(t *testing.T) {
	src := `a = array (1,n) [ i := a!i + 1.0 | i <- [1..n] ]`
	p := compile(t, src, map[string]int64{"n": 4}, Options{})
	if p.Defs["a"].Mode() != "thunked" {
		t.Fatalf("self-dependent array must fall back to thunks")
	}
	if _, err := p.Run(nil); err == nil || !strings.Contains(err.Error(), "itself") {
		t.Fatalf("want black-hole error, got %v", err)
	}
}

func TestUnschedulableCycleRunsThunked(t *testing.T) {
	// Section 8.1.2's cycle: still *semantically* fine (elements only
	// depend on earlier-defined bands at staggered instances), so the
	// thunked fallback must produce values.
	src := `param n;
	a = array (1,2*n)
	  [* [ i := if i >= n - 1 then 1.0 else a!(n+i+2) + 1.0 ] ++
	     [ n + i := if i == 1 then 1.0 else a!(i-1) + 1.0 ]
	   | i <- [1..n] *]`
	params := map[string]int64{"n": 6}
	p := compile(t, src, params, Options{})
	if p.Defs["a"].Mode() != "thunked" {
		t.Fatalf("mode = %s, want thunked:\n%s", p.Defs["a"].Mode(), p.Report())
	}
	if _, err := p.Run(nil); err != nil {
		t.Fatalf("thunked run failed: %v", err)
	}
}

func TestAccumArrayHistogram(t *testing.T) {
	src := `h = accumArray (+) 0.0 (0,9) [ (3*i) mod 10 := 1.0 | i <- [1..n] ]`
	params := map[string]int64{"n": 30}
	out := runBoth(t, src, params, Options{}, nil)
	var total float64
	for k := int64(0); k <= 9; k++ {
		total += out.At(k)
	}
	if total != 30 {
		t.Errorf("histogram total = %v, want 30", total)
	}
}

func TestAccumArrayNonCommutativeOrder(t *testing.T) {
	// 'right' keeps the LAST value in list order; both paths must
	// agree: list order says the second comprehension wins.
	src := `h = accumArray right 0.0 (1,n)
	  ([ i := 1.0 | i <- [1..n] ] ++ [ i := 2.0 | i <- [1..n] ])`
	params := map[string]int64{"n": 5}
	out := runBoth(t, src, params, Options{}, nil)
	if out.At(3) != 2 {
		t.Errorf("right-combiner kept %v, want 2", out.At(3))
	}
}

func makeMatrix(m, n int64, f func(i, j int64) float64) *runtime.Strict {
	s := runtime.NewStrict(runtime.NewBounds2(1, 1, m, n))
	for i := int64(1); i <= m; i++ {
		for j := int64(1); j <= n; j++ {
			s.Set(f(i, j), i, j)
		}
	}
	return s
}

func matBounds(m, n int64) analysis.ArrayBounds {
	return analysis.ArrayBounds{Lo: []int64{1, 1}, Hi: []int64{m, n}}
}

func TestBigupdRowSwapEndToEnd(t *testing.T) {
	src := `param m, n, i0, k0;
	a2 = bigupd a
	  [* [ (i0,j) := a!(k0,j) ] ++ [ (k0,j) := a!(i0,j) ] | j <- [1..n] *]`
	params := map[string]int64{"m": 6, "n": 7, "i0": 2, "k0": 5}
	opts := Options{InputBounds: map[string]analysis.ArrayBounds{"a": matBounds(6, 7)}}
	in := makeMatrix(6, 7, func(i, j int64) float64 { return float64(i*100 + j) })
	orig := in.Clone()
	p := compile(t, src, params, opts)
	cd := p.Defs["a2"]
	if cd.Mode() != "in-place" {
		t.Fatalf("row swap must compile in place:\n%s", p.Report())
	}
	// The scalar tier must be chosen, not the whole-array copy.
	joined := strings.Join(cd.Plan.Notes, "\n")
	if !strings.Contains(joined, "per-instance scalar") {
		t.Errorf("expected scalar node splitting, notes:\n%s", joined)
	}
	if strings.Contains(joined, "whole-array") {
		t.Errorf("row swap must not need a whole-array copy:\n%s", joined)
	}
	out := runBoth(t, src, params, opts, map[string]*runtime.Strict{"a": in})
	// Caller input must be untouched.
	if !in.EqualWithin(orig, 0) {
		t.Error("caller input mutated")
	}
	if out.At(2, 3) != orig.At(5, 3) || out.At(5, 3) != orig.At(2, 3) {
		t.Error("rows not swapped")
	}
	if out.At(4, 4) != orig.At(4, 4) {
		t.Error("untouched row changed")
	}
}

func TestBigupdJacobiEndToEnd(t *testing.T) {
	src := `param n;
	a2 = bigupd a
	  [* [ (i,j) := 0.25 * (a!(i-1,j) + a!(i+1,j) + a!(i,j-1) + a!(i,j+1)) ]
	   | i <- [2..n-1], j <- [2..n-1] *]`
	n := int64(10)
	params := map[string]int64{"n": n}
	opts := Options{InputBounds: map[string]analysis.ArrayBounds{"a": matBounds(n, n)}}
	in := makeMatrix(n, n, func(i, j int64) float64 { return float64((i*7+j*13)%11) + 0.5 })
	p := compile(t, src, params, opts)
	cd := p.Defs["a2"]
	if cd.Mode() != "in-place" {
		t.Fatalf("jacobi must compile in place with node splitting:\n%s", p.Report())
	}
	joined := strings.Join(cd.Plan.Notes, "\n")
	if !strings.Contains(joined, "pipelined") || !strings.Contains(joined, "row temporary") {
		t.Errorf("jacobi must use the pipeline and rowbuf tiers, notes:\n%s", joined)
	}
	if strings.Contains(joined, "whole-array") {
		t.Errorf("jacobi must not need the whole-array copy:\n%s", joined)
	}
	runBoth(t, src, params, opts, map[string]*runtime.Strict{"a": in})
}

func TestBigupdSOREndToEnd(t *testing.T) {
	// Gauss-Seidel: north/west read the NEW values (a2), south/east
	// the old (a): all dependences agree with forward loops — pure
	// in-place, no node splitting at all.
	src := `param n;
	a2 = bigupd a
	  [* [ (i,j) := 0.25 * (a2!(i-1,j) + a2!(i,j-1) + a!(i+1,j) + a!(i,j+1)) ]
	   | i <- [2..n-1], j <- [2..n-1] *]`
	n := int64(10)
	params := map[string]int64{"n": n}
	opts := Options{InputBounds: map[string]analysis.ArrayBounds{"a": matBounds(n, n)}}
	in := makeMatrix(n, n, func(i, j int64) float64 { return float64((i*3+j*5)%7) + 0.25 })
	p := compile(t, src, params, opts)
	cd := p.Defs["a2"]
	if cd.Mode() != "in-place" {
		t.Fatalf("SOR must compile in place:\n%s", p.Report())
	}
	joined := strings.Join(cd.Plan.Notes, "\n")
	if !strings.Contains(joined, "no copying") {
		t.Errorf("SOR must need no copies, notes:\n%s", joined)
	}
	runBoth(t, src, params, opts, map[string]*runtime.Strict{"a": in})
}

func TestBigupdShiftBackward(t *testing.T) {
	src := `param n;
	a2 = bigupd a [ i := a!(i-1) | i <- [2..n] ]`
	params := map[string]int64{"n": 8}
	opts := Options{InputBounds: map[string]analysis.ArrayBounds{"a": {Lo: []int64{1}, Hi: []int64{8}}}}
	in := runtime.NewStrict(runtime.NewBounds1(1, 8))
	for i := int64(1); i <= 8; i++ {
		in.Set(float64(i), i)
	}
	out := runBoth(t, src, params, opts, map[string]*runtime.Strict{"a": in})
	for i := int64(2); i <= 8; i++ {
		if out.At(i) != float64(i-1) {
			t.Errorf("a2(%d) = %v, want %v", i, out.At(i), i-1)
		}
	}
}

func TestMultiDefChain(t *testing.T) {
	src := `letrec*
	  b = array (1,n) [ i := 2.0 * i | i <- [1..n] ];
	  c = array (1,n) [ i := b!i + 1.0 | i <- [1..n] ];
	in c`
	params := map[string]int64{"n": 6}
	p := compile(t, src, params, Options{})
	if len(p.Order) != 2 || p.Order[0] != "b" || p.Order[1] != "c" {
		t.Fatalf("order = %v", p.Order)
	}
	out := runBoth(t, src, params, Options{}, nil)
	if out.At(4) != 9 {
		t.Errorf("c(4) = %v, want 9", out.At(4))
	}
}

func TestMutuallyRecursiveGroup(t *testing.T) {
	// Even/odd mutual recursion across two arrays.
	src := `param n;
	letrec*
	  ev = array (1,n) [ i := if i == 1 then 1.0 else od!(i-1) + 1.0 | i <- [1..n] ];
	  od = array (1,n) [ i := ev!i * 2.0 | i <- [1..n] ];
	in od`
	params := map[string]int64{"n": 5}
	p := compile(t, src, params, Options{})
	if p.Defs["ev"].Mode() != "thunked-group" || p.Defs["od"].Mode() != "thunked-group" {
		t.Fatalf("modes: ev=%s od=%s", p.Defs["ev"].Mode(), p.Defs["od"].Mode())
	}
	out, err := p.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	// ev(1)=1, od(1)=2, ev(2)=3, od(2)=6, ev(3)=7, od(3)=14 …
	if out.At(3) != 14 {
		t.Errorf("od(3) = %v, want 14", out.At(3))
	}
}

func TestUnboundParameterError(t *testing.T) {
	if _, err := Compile(`a = array (1,n) [ i := 1.0 | i <- [1..n] ]`, nil, Options{}); err == nil {
		t.Fatal("unbound parameter must fail compilation")
	}
}

func TestBigupdMissingSourceBounds(t *testing.T) {
	src := `param n; a2 = bigupd a [ i := a!i | i <- [1..n] ]`
	if _, err := Compile(src, map[string]int64{"n": 4}, Options{}); err == nil {
		t.Fatal("unknown bigupd source bounds must fail compilation")
	}
}

func TestReportContainsEssentials(t *testing.T) {
	src := `a = array (1,n) ([ 1 := 1.0 ] ++ [ i := a!(i-1) + 1.0 | i <- [2..n] ])`
	p := compile(t, src, map[string]int64{"n": 5}, Options{})
	r := p.Report()
	for _, want := range []string{"== a (array, thunkless) ==", "flow (<)", "collision: no", "empties: excluded", "do i forward"} {
		if !strings.Contains(r, want) {
			t.Errorf("report missing %q:\n%s", want, r)
		}
	}
}

// TestRandomRecurrenceDifferential drives randomized forward/backward
// 1-D recurrences through both pipelines and compares.
func TestRandomRecurrenceDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 60; trial++ {
		n := int64(5 + rng.Intn(40))
		off := int64(1 + rng.Intn(3))
		backward := rng.Intn(2) == 0
		var src string
		if backward {
			src = fmt.Sprintf(
				`a = array (1,n) [ i := if i > n - %d then 1.5 else a!(i+%d) + 0.5 | i <- [1..n] ]`,
				off, off)
		} else {
			src = fmt.Sprintf(
				`a = array (1,n) [ i := if i <= %d then 1.5 else a!(i-%d) + 0.5 | i <- [1..n] ]`,
				off, off)
		}
		params := map[string]int64{"n": n}
		p := compile(t, src, params, Options{})
		if p.Defs["a"].Mode() != "thunkless" {
			t.Fatalf("trial %d: mode %s for %s\n%s", trial, p.Defs["a"].Mode(), src, p.Report())
		}
		runBoth(t, src, params, Options{}, nil)
	}
}

// TestRandomBigupdDifferential drives randomized in-place stencils
// through both pipelines.
func TestRandomBigupdDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 40; trial++ {
		n := int64(6 + rng.Intn(10))
		di := rng.Intn(2)
		dj := rng.Intn(2)
		src := fmt.Sprintf(`param n;
	a2 = bigupd a
	  [* [ (i,j) := 0.5 * a!(i-%d,j) + 0.25 * a!(i,j-%d) + 0.125 * a!(i+1,j+1) ]
	   | i <- [2..n-1], j <- [2..n-1] *]`, di, dj)
		params := map[string]int64{"n": n}
		opts := Options{InputBounds: map[string]analysis.ArrayBounds{"a": matBounds(n, n)}}
		in := makeMatrix(n, n, func(i, j int64) float64 {
			return float64(rng.Intn(100)) / 8
		})
		runBoth(t, src, params, opts, map[string]*runtime.Strict{"a": in})
	}
}

func TestDeadDefinitionPruned(t *testing.T) {
	src := `letrec*
	  unused = array (1,n) [ i := 1.0 | i <- [1..n] ];
	  a = array (1,n) [ i := 2.0 | i <- [1..n] ];
	in a`
	p := compile(t, src, map[string]int64{"n": 4}, Options{})
	for _, name := range p.Order {
		if name == "unused" {
			t.Fatalf("dead binding evaluated: order %v", p.Order)
		}
	}
	if _, err := p.Run(nil); err != nil {
		t.Fatal(err)
	}
}

func TestDeadDefinitionWithErrorNeverEvaluated(t *testing.T) {
	// Non-strict letrec semantics: an unused binding whose evaluation
	// would fail (definite collision) must not block the program.
	src := `letrec*
	  broken = array (1,n) ([ 1 := 1.0 ] ++ [ 1 := 2.0 ] ++ [ i := 0.0 | i <- [2..n] ]);
	  a = array (1,n) [ i := 2.0 | i <- [1..n] ];
	in a`
	p := compile(t, src, map[string]int64{"n": 4}, Options{})
	out, err := p.Run(nil)
	if err != nil || out.At(2) != 2 {
		t.Fatalf("run: %v", err)
	}
}

func TestPlainLetrecCompilesThunked(t *testing.T) {
	// Plain letrec gives no strict-context guarantee (the paper's
	// hidden-self-dependence argument), so the definition must stay
	// thunked; the letrec* version of the same program compiles
	// thunklessly.
	lazy := `letrec a = array (1,n) ([ 1 := 1.0 ] ++ [ i := a!(i-1) + 1.0 | i <- [2..n] ]) in a`
	strict := `letrec* a = array (1,n) ([ 1 := 1.0 ] ++ [ i := a!(i-1) + 1.0 | i <- [2..n] ]) in a`
	params := map[string]int64{"n": 6}
	pl := compile(t, lazy, params, Options{})
	if pl.Defs["a"].Mode() != "thunked" {
		t.Errorf("plain letrec mode = %s, want thunked", pl.Defs["a"].Mode())
	}
	ps := compile(t, strict, params, Options{})
	if ps.Defs["a"].Mode() != "thunkless" {
		t.Errorf("letrec* mode = %s, want thunkless", ps.Defs["a"].Mode())
	}
	// Same values either way.
	got, err := pl.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ps.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !got.EqualWithin(want, 0) {
		t.Error("letrec and letrec* results differ")
	}
}
