package core

import (
	"strings"
	"testing"

	"arraycomp/internal/analysis"
	"arraycomp/internal/runtime"
)

// TestBigupdTransposeFullCopy: a transposed in-place update reads
// elements the schedule cannot order before their kills in any uniform
// way — node splitting must fall back to the whole-array entry copy
// (the paper's "naive compilation" tier) and still be correct.
func TestBigupdTransposeFullCopy(t *testing.T) {
	n := int64(8)
	src := `param n;
	a2 = bigupd a [* [ (i,j) := a!(j,i) ] | i <- [1..n], j <- [1..n] *]`
	opts := Options{InputBounds: map[string]analysis.ArrayBounds{"a": matBounds(n, n)}}
	params := map[string]int64{"n": n}
	in := makeMatrix(n, n, func(i, j int64) float64 { return float64(i*10 + j) })
	p := compile(t, src, params, opts)
	cd := p.Defs["a2"]
	if cd.Mode() != "in-place" {
		t.Fatalf("transpose must still lower in place (with a copy):\n%s", p.Report())
	}
	joined := strings.Join(cd.Plan.Notes, "\n")
	if !strings.Contains(joined, "whole-array") {
		t.Fatalf("transpose must use the full-copy tier, notes:\n%s", joined)
	}
	out := runBoth(t, src, params, opts, map[string]*runtime.Strict{"a": in})
	if out.At(2, 5) != in.At(5, 2) {
		t.Errorf("transpose wrong: %v vs %v", out.At(2, 5), in.At(5, 2))
	}
}

// TestBigupdNonAffineReadFullCopy: non-affine read subscripts defeat
// every uniform tier.
func TestBigupdNonAffineReadFullCopy(t *testing.T) {
	n := int64(9)
	src := `param n;
	a2 = bigupd a [ i := a!(n - i + 1) + a!(i mod n + 1) | i <- [1..n] ]`
	opts := Options{InputBounds: map[string]analysis.ArrayBounds{"a": {Lo: []int64{1}, Hi: []int64{n}}}}
	params := map[string]int64{"n": n}
	in := runtime.NewStrict(runtime.NewBounds1(1, n))
	for i := int64(1); i <= n; i++ {
		in.Set(float64(i*i), i)
	}
	p := compile(t, src, params, opts)
	joined := strings.Join(p.Defs["a2"].Plan.Notes, "\n")
	if !strings.Contains(joined, "whole-array") {
		t.Fatalf("non-affine read must use the full-copy tier:\n%s", joined)
	}
	runBoth(t, src, params, opts, map[string]*runtime.Strict{"a": in})
}

// TestBigupdReversalMixedTiers: a!(n+1-i) with forward writes is a
// reversal — distance varies per instance, requiring the copy tier;
// differential check included.
func TestBigupdReversal(t *testing.T) {
	n := int64(10)
	src := `param n;
	a2 = bigupd a [ i := a!(n + 1 - i) | i <- [1..n] ]`
	opts := Options{InputBounds: map[string]analysis.ArrayBounds{"a": {Lo: []int64{1}, Hi: []int64{n}}}}
	params := map[string]int64{"n": n}
	in := runtime.NewStrict(runtime.NewBounds1(1, n))
	for i := int64(1); i <= n; i++ {
		in.Set(float64(i), i)
	}
	out := runBoth(t, src, params, opts, map[string]*runtime.Strict{"a": in})
	for i := int64(1); i <= n; i++ {
		if out.At(i) != float64(n+1-i) {
			t.Errorf("a2(%d) = %v, want %v", i, out.At(i), n+1-i)
		}
	}
}

// TestGuardBetweenLoops exercises guards attached to inner loop nodes
// (conditioning the whole inner loop, not a clause).
func TestGuardBetweenLoops(t *testing.T) {
	src := `param n;
	a = array ((1,1),(n,n))
	  ([* [* [ (i,j) := 1.0 ] | j <- [1..n] *] | i <- [1..n], i mod 2 == 1 *] ++
	   [* [* [ (i,j) := 2.0 ] | j <- [1..n] *] | i <- [1..n], i mod 2 == 0 *])`
	params := map[string]int64{"n": 6}
	p := compile(t, src, params, Options{})
	dump := p.Defs["a"].Plan.Program.Dump()
	if !strings.Contains(dump, "if (i % 2) == 1 then") {
		t.Fatalf("loop-level guard not emitted:\n%s", dump)
	}
	out := runBoth(t, src, params, Options{}, nil)
	if out.At(1, 3) != 1 || out.At(2, 3) != 2 {
		t.Errorf("values: %v %v", out.At(1, 3), out.At(2, 3))
	}
}

// TestThunkedRichExpressions drives the thunked evaluator through
// builtins, float comparisons, boolean operators, lets and mod in
// value position — and checks it against the compiled plan.
func TestThunkedRichExpressions(t *testing.T) {
	src := `param n;
	a = array (1,n)
	  [ i := (if sqrt(1.0 * i) > 2.5 && not (i mod 7 == 0) || i == 1
	          then max(abs(0.0 - i), pow(2.0, 3.0))
	          else let h = min(1.0 * i, 4.0) in h / 2.0 + (i mod 3))
	  | i <- [1..n] ]`
	params := map[string]int64{"n": 40}
	runBoth(t, src, params, Options{}, nil)
}

// TestThunkedGuardsAndLets drives the thunked enumerator through
// guards that mix comparisons and lets.
func TestThunkedGuardsAndLets(t *testing.T) {
	src := `param n;
	a = array (1,n)
	  ([ i := 1.0 | i <- [1..n], i mod 3 == 0 || i mod 3 == 1 ] ++
	   [ i := 2.0 | i <- [1..n], i mod 3 == 2 ])`
	params := map[string]int64{"n": 17}
	runBoth(t, src, params, Options{}, nil)
}

// TestFloatComparisonGuard: a guard comparing float expressions takes
// the BCmpFloat path in both pipelines.
func TestFloatComparisonGuard(t *testing.T) {
	src := `param n;
	a = array (1,n)
	  ([ i := 1.0 | i <- [1..n], 1.0 * i / 2.0 < 3.0 ] ++
	   [ i := 2.0 | i <- [1..n], 1.0 * i / 2.0 >= 3.0 ])`
	params := map[string]int64{"n": 10}
	out := runBoth(t, src, params, Options{}, nil)
	if out.At(5) != 1 || out.At(6) != 2 {
		t.Errorf("values: %v %v", out.At(5), out.At(6))
	}
}

// TestBigupdOverwriteOrderPreserved: two clauses writing the same
// element in one bigupd — fold semantics says the later pair wins, and
// the output-dependence edges must force the compiled plan to agree.
func TestBigupdOverwriteOrderPreserved(t *testing.T) {
	n := int64(6)
	src := `param n;
	a2 = bigupd a [* [ i := 1.0 ] ++ [ i := 2.0 ] | i <- [1..n] *]`
	opts := Options{InputBounds: map[string]analysis.ArrayBounds{"a": {Lo: []int64{1}, Hi: []int64{n}}}}
	params := map[string]int64{"n": n}
	in := runtime.NewStrict(runtime.NewBounds1(1, n))
	out := runBoth(t, src, params, opts, map[string]*runtime.Strict{"a": in})
	for i := int64(1); i <= n; i++ {
		if out.At(i) != 2 {
			t.Errorf("a2(%d) = %v, want 2 (later pair wins)", i, out.At(i))
		}
	}
}

// TestReportGolden pins the report format for the paper's example 1 so
// downstream tooling can rely on it.
func TestReportGolden(t *testing.T) {
	src := `a = array (1,6)
	  [* [3*i := 2.0] ++
	     [3*i-1 := if i == 1 then 1.0 else 0.5 * a!(3*(i-1))] ++
	     [3*i-2 := 0.5 * a!(3*i)]
	   | i <- [1..2] *]`
	p := compile(t, src, nil, Options{})
	got := p.Report()
	for _, want := range []string{
		"== a (array, thunkless) ==",
		"graph: 3 vertices, 2 edges",
		"flow (<)",
		"flow (=)",
		"collision: no",
		"empties: excluded",
		"do i forward doacross [1..2 step 1]",
		"checks: {CollisionChecks:0 BoundsChecks:",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("report missing %q:\n%s", want, got)
		}
	}
}
