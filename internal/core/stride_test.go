package core

import (
	"testing"

	"arraycomp/internal/analysis"
	"arraycomp/internal/runtime"
)

// TestStrideGenerators drives negative-stride and empty-range
// generators through the whole pipeline (parse → analysis → schedule →
// loop IR → interpreter) and cross-checks each against the thunked
// reference. The affine layer normalizes `[hi,hi-1..lo]` into a
// downward loop and `[1..0]`-style ranges into zero trips; these
// tables pin both behaviors element by element.
func TestStrideGenerators(t *testing.T) {
	n := map[string]int64{"n": 6}
	tests := []struct {
		name string
		src  string
		// want maps subscript -> expected value; subscripts not listed
		// are not checked (the cover is still validated by compilation).
		want map[int64]float64
	}{
		{
			name: "descending full cover",
			src:  `a = array (1,n) [* [ i := 2*i ] | i <- [n,n-1..1] *]`,
			want: map[int64]float64{1: 2, 3: 6, 6: 12},
		},
		{
			name: "descending permuted target",
			src:  `a = array (1,n) [* [ n+1-i := 10*i ] | i <- [n,n-1..1] *]`,
			want: map[int64]float64{1: 60, 6: 10},
		},
		{
			name: "backward recurrence via negative stride",
			src: `a = array (1,n) ([ n := 1 ] ++
			        [* [ i := a!(i+1) + 1 ] | i <- [n-1,n-2..1] *])`,
			want: map[int64]float64{6: 1, 5: 2, 1: 6},
		},
		{
			name: "stride 2 interleave",
			src: `a = array (1,n) ([* [ i := 1 ] | i <- [1,3..n] *] ++
			        [* [ i := 2 ] | i <- [2,4..n] *])`,
			want: map[int64]float64{1: 1, 2: 2, 5: 1, 6: 2},
		},
		{
			name: "negative stride 2 interleave",
			src: `a = array (1,n) ([* [ i := 1 ] | i <- [n-1,n-3..1] *] ++
			        [* [ i := 2 ] | i <- [n,n-2..1] *])`,
			want: map[int64]float64{1: 1, 2: 2, 5: 1, 6: 2},
		},
		{
			name: "empty ascending range contributes nothing",
			src: `a = array (0,n) ([* [ i := i ] | i <- [0..n] *] ++
			        [* [ j := 99 ] | j <- [1..0] *])`,
			want: map[int64]float64{0: 0, 6: 6},
		},
		{
			name: "empty descending range contributes nothing",
			src: `a = array (0,n) ([* [ i := i ] | i <- [0..n] *] ++
			        [* [ j := 99 ] | j <- [0,-1..5] *])`,
			want: map[int64]float64{0: 0, 5: 5},
		},
		{
			name: "empty stride-2 range contributes nothing",
			src: `a = array (0,n) ([* [ i := i ] | i <- [0..n] *] ++
			        [* [ j := 99 ] | j <- [2,4..1] *])`,
			want: map[int64]float64{2: 2, 4: 4},
		},
		{
			name: "whole array from empty range plus scalar clause",
			src:  `a = array (1,1) ([ 1 := 7 ] ++ [* [ j := 0 ] | j <- [1..0] *])`,
			want: map[int64]float64{1: 7},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			out := runBoth(t, tt.src, n, Options{}, nil)
			for sub, want := range tt.want {
				if got := out.At(sub); got != want {
					t.Errorf("a[%d] = %v, want %v", sub, got, want)
				}
			}
		})
	}
}

// TestEmptyRangeWholeDefinition pins the degenerate case where the
// only generator is empty: every element is then undefined, which the
// final empties sweep (or the thunked runtime's ⊥) must report.
func TestEmptyRangeWholeDefinition(t *testing.T) {
	src := `a = array (1,n) [* [ i := 1 ] | i <- [1..0] *]`
	for _, opts := range []Options{{}, {ForceThunked: true}} {
		p, err := Compile(src, map[string]int64{"n": 3}, opts)
		if err != nil {
			// A compile-time empties rejection is equally acceptable.
			continue
		}
		if _, err := p.Run(nil); err == nil {
			t.Errorf("opts %+v: all-empty cover ran without error", opts)
		}
	}
}

// TestNegativeStrideDescendingBounds checks a descending-range read of
// an input array (stride normalization on the read side, not just the
// write side).
func TestNegativeStrideDescendingBounds(t *testing.T) {
	src := `a = array (0,n) [* [ i := u!(n-i) ] | i <- [n,n-1..0] *]`
	u := runtime.NewStrict(runtime.NewBounds1(0, 6))
	for i := range u.Data {
		u.Data[i] = float64(i*i + 1)
	}
	bounds := map[string]analysis.ArrayBounds{"u": {Lo: []int64{0}, Hi: []int64{6}}}
	inputs := map[string]*runtime.Strict{"u": u}
	out := runBoth(t, src, map[string]int64{"n": 6}, Options{InputBounds: bounds}, inputs)
	for i := int64(0); i <= 6; i++ {
		if out.At(i) != u.At(6-i) {
			t.Errorf("a[%d] = %v, want u[%d] = %v", i, out.At(i), 6-i, u.At(6-i))
		}
	}
}
