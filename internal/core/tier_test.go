package core_test

// The cross-tier differential harness: every corpus workload plus a
// sweep of gencomp-seeded programs runs through all three execution
// tiers — thunked reference, loop-IR interpreter, native compiled Go
// — and the outputs must be BITWISE identical. Bitwise, not within a
// tolerance: all three backends perform the same IEEE operations in
// the same order (the optimizer rewrites index arithmetic, never the
// float expression trees), inputs are dyadic rationals, and Go does
// not contract float expressions on amd64, so any difference at all
// is a code-generation bug. The suite also covers mid-run promotion
// (interpreted calls, then a hot-swap, then native calls over the
// same program value) and the promotion-race regression (64
// concurrent evaluations during a background build must coalesce
// onto one toolchain invocation and never observe a partial swap).

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"arraycomp/internal/analysis"
	"arraycomp/internal/core"
	"arraycomp/internal/gencomp"
	"arraycomp/internal/metrics"
	"arraycomp/internal/native"
	"arraycomp/internal/oracle"
	"arraycomp/internal/runtime"
	"arraycomp/internal/workloads"
)

// tierCase is one corpus workload of the differential table.
type tierCase struct {
	name   string
	src    string
	params map[string]int64
	inputs map[string]*runtime.Strict
	// wantThunked marks programs whose only schedule is the thunked
	// fallback; they are native-ineligible by construction and the
	// suite asserts exactly that.
	wantThunked bool
}

// tierCorpus is every runnable corpus workload.
func tierCorpus() []tierCase {
	n := int64(24)
	return []tierCase{
		{name: "squares", src: workloads.SquaresSrc, params: workloads.ParamsFor("squares", n)},
		{name: "recurrence", src: workloads.RecurrenceSrc, params: workloads.ParamsFor("recurrence", n)},
		{name: "wavefront", src: workloads.WavefrontSrc, params: workloads.ParamsFor("wavefront", n)},
		{name: "example1", src: workloads.Example1Src, params: workloads.ParamsFor("example1", n)},
		{name: "mixedpass", src: workloads.MixedPassSrc, params: workloads.ParamsFor("mixedpass", n)},
		{name: "cyclic", src: workloads.CyclicSrc, params: workloads.ParamsFor("cyclic", n), wantThunked: true},
		{name: "histogram", src: workloads.HistogramSrc, params: workloads.ParamsFor("histogram", n)},
		{name: "rowswap", src: workloads.RowSwapSrc, params: workloads.ParamsFor("rowswap", n),
			inputs: map[string]*runtime.Strict{"a": workloads.Mesh(n, 1)}},
		{name: "scalerow", src: workloads.ScaleRowSrc, params: workloads.ParamsFor("scalerow", n),
			inputs: map[string]*runtime.Strict{"a": workloads.Mesh(n, 2)}},
		{name: "saxpy", src: workloads.SaxpyRowSrc, params: workloads.ParamsFor("saxpy", n),
			inputs: map[string]*runtime.Strict{"a": workloads.Mesh(n, 3)}},
		{name: "jacobi", src: workloads.JacobiSrc, params: workloads.ParamsFor("jacobi", n),
			inputs: map[string]*runtime.Strict{"a": workloads.Mesh(n, 4)}},
		{name: "sor", src: workloads.SORSrc, params: workloads.ParamsFor("sor", n),
			inputs: map[string]*runtime.Strict{"a": workloads.Mesh(n, 5)}},
		{name: "livermore23", src: workloads.Livermore23Src, params: workloads.ParamsFor("livermore23", n),
			inputs: workloads.Livermore23Inputs(n)},
		{name: "jacobi-monolithic", src: workloads.JacobiMonolithicSrc, params: workloads.ParamsFor("jacobi-mono", n),
			inputs: map[string]*runtime.Strict{"b": workloads.Mesh(n, 6)}},
	}
}

func boundsOf(inputs map[string]*runtime.Strict) map[string]analysis.ArrayBounds {
	out := map[string]analysis.ArrayBounds{}
	for name, a := range inputs {
		out[name] = analysis.ArrayBounds{Lo: a.B.Lo, Hi: a.B.Hi}
	}
	return out
}

// bitwiseEqual fails the test unless a and b agree bit for bit.
func bitwiseEqual(t *testing.T, label string, a, b *runtime.Strict) {
	t.Helper()
	if !a.B.Equal(b.B) {
		t.Fatalf("%s: bounds differ: %s vs %s", label, a.B, b.B)
	}
	for i := range a.Data {
		if math.Float64bits(a.Data[i]) != math.Float64bits(b.Data[i]) {
			t.Fatalf("%s: element %d differs bitwise: %x (%v) vs %x (%v)",
				label, i, math.Float64bits(a.Data[i]), a.Data[i],
				math.Float64bits(b.Data[i]), b.Data[i])
		}
	}
}

// TestTierWorkloadsDifferential runs the whole corpus through all
// three tiers. All eligible workloads share ONE native toolchain
// build (batch emission) — the same discipline the oracle uses.
func TestTierWorkloadsDifferential(t *testing.T) {
	cases := tierCorpus()

	type leg struct {
		tc      tierCase
		interp  *core.Program // plain compile: interpreter tier
		thunked *core.Program // ForceThunked: reference tier
	}
	var legs []leg
	var specs []native.ProgramSpec
	for _, tc := range cases {
		opts := core.Options{InputBounds: boundsOf(tc.inputs)}
		interp, err := core.Compile(tc.src, tc.params, opts)
		if err != nil {
			t.Fatalf("%s: compile: %v", tc.name, err)
		}
		thOpts := opts
		thOpts.ForceThunked = true
		thunked, err := core.Compile(tc.src, tc.params, thOpts)
		if err != nil {
			t.Fatalf("%s: thunked compile: %v", tc.name, err)
		}
		spec, err := interp.NativeSpec(tc.name)
		if tc.wantThunked {
			if err == nil {
				t.Fatalf("%s: expected native-ineligible (thunked schedule), got a spec", tc.name)
			}
		} else if err != nil {
			t.Fatalf("%s: NativeSpec: %v", tc.name, err)
		} else {
			specs = append(specs, spec)
		}
		legs = append(legs, leg{tc: tc, interp: interp, thunked: thunked})
	}

	mod, err := native.Build(specs, native.Options{})
	if err != nil {
		t.Fatalf("native batch build: %v", err)
	}
	defer mod.Close()

	for _, l := range legs {
		l := l
		t.Run(l.tc.name, func(t *testing.T) {
			ref, err := l.thunked.Run(l.tc.inputs)
			if err != nil {
				t.Fatalf("thunked: %v", err)
			}
			got, tier, err := l.interp.RunTiered(l.tc.inputs)
			if err != nil {
				t.Fatalf("interpreted: %v", err)
			}
			wantTier := core.TierInterpreted
			if l.tc.wantThunked {
				wantTier = core.TierThunked
			}
			if tier != wantTier {
				t.Fatalf("interp leg served by %q, want %q", tier, wantTier)
			}
			bitwiseEqual(t, "thunked vs interpreted", ref, got)
			if l.tc.wantThunked {
				return
			}
			// Hot-swap the SAME program to native mid-run and re-run: the
			// swap must be invisible in the outputs.
			l.interp.AdoptNative(mod.Plan(l.tc.name))
			nat, tier, err := l.interp.RunTiered(l.tc.inputs)
			if err != nil {
				t.Fatalf("native: %v", err)
			}
			if tier != core.TierNative {
				t.Fatalf("post-adoption run served by %q, want native", tier)
			}
			bitwiseEqual(t, "interpreted vs native", got, nat)
			// Native must be as repeatable as the interpreter (the plan
			// must not retain state between calls).
			nat2, _, err := l.interp.RunTiered(l.tc.inputs)
			if err != nil {
				t.Fatalf("native rerun: %v", err)
			}
			bitwiseEqual(t, "native rerun", nat, nat2)
		})
	}
}

// TestTierGencompDifferential sweeps generated programs through all
// three tiers: 200 seeds (40 in -short), one shared native build.
func TestTierGencompDifferential(t *testing.T) {
	seeds := 200
	if testing.Short() {
		seeds = 40
	}
	cfg := gencomp.Config{}

	type genCase struct {
		g       *gencomp.Program
		interp  *core.Program
		thunked *core.Program
		key     string
	}
	var cases []genCase
	var specs []native.ProgramSpec
	for seed := uint64(1); int(seed) <= seeds; seed++ {
		g := gencomp.Generate(seed, cfg)
		opts := core.Options{InputBounds: g.Inputs}
		interp, err := core.CompileProgram(g.Prog, g.Params, opts)
		if err != nil {
			continue // compile-rejected programs have no runnable tiers
		}
		thOpts := opts
		thOpts.ForceThunked = true
		thunked, err := core.CompileProgram(g.Prog, g.Params, thOpts)
		if err != nil {
			t.Fatalf("seed %d: thunked compile diverged: %v", seed, err)
		}
		c := genCase{g: g, interp: interp, thunked: thunked, key: fmt.Sprintf("seed%d", seed)}
		if spec, err := interp.NativeSpec(c.key); err == nil {
			specs = append(specs, spec)
		} else {
			c.key = "" // native-ineligible: two-tier comparison only
		}
		cases = append(cases, c)
	}
	if len(cases) == 0 || len(specs) == 0 {
		t.Fatal("generator produced no runnable/eligible programs — sweep is vacuous")
	}
	t.Logf("gencomp sweep: %d compiled, %d native-eligible", len(cases), len(specs))

	mod, err := native.Build(specs, native.Options{})
	if err != nil {
		t.Fatalf("native batch build: %v", err)
	}
	defer mod.Close()

	for _, c := range cases {
		inputs := oracle.FillInputs(c.g)
		ref, refErr := c.thunked.Run(inputs)
		got, gotErr := c.interp.Run(inputs)
		if (refErr == nil) != (gotErr == nil) {
			t.Fatalf("seed %d: thunked err=%v, interpreted err=%v", c.g.Seed, refErr, gotErr)
		}
		if refErr == nil {
			bitwiseEqual(t, fmt.Sprintf("seed %d thunked vs interpreted", c.g.Seed), ref, got)
		}
		if c.key == "" {
			continue
		}
		c.interp.AdoptNative(mod.Plan(c.key))
		nat, natErr := c.interp.Run(inputs)
		if (gotErr == nil) != (natErr == nil) {
			t.Fatalf("seed %d: interpreted err=%v, native err=%v", c.g.Seed, gotErr, natErr)
		}
		if natErr == nil {
			bitwiseEqual(t, fmt.Sprintf("seed %d interpreted vs native", c.g.Seed), got, nat)
		}
	}
}

// TestTierMidRunPromotion drives the real tiering policy end to end:
// interpret below the threshold, promote synchronously at it, serve
// native after — with every output bitwise identical across the swap.
func TestTierMidRunPromotion(t *testing.T) {
	n := int64(16)
	in := map[string]*runtime.Strict{"a": workloads.Mesh(n, 7)}
	p, err := core.Compile(workloads.SORSrc, workloads.ParamsFor("sor", n), core.Options{
		InputBounds: boundsOf(in),
		Tier:        core.TierAuto,
		TierSync:    true, // deterministic: promote inline at the threshold call
	})
	if err != nil {
		t.Fatal(err)
	}
	wantTiers := []core.Tier{
		core.TierInterpreted, core.TierInterpreted, // calls 1, 2
		core.TierNative, core.TierNative, core.TierNative, // threshold (3) onward
	}
	var first *runtime.Strict
	for i, want := range wantTiers {
		out, tier, err := p.RunTiered(in)
		if err != nil {
			t.Fatalf("call %d: %v", i+1, err)
		}
		if tier != want {
			t.Fatalf("call %d served by %q, want %q", i+1, tier, want)
		}
		if first == nil {
			first = out
		} else {
			bitwiseEqual(t, fmt.Sprintf("call %d vs call 1", i+1), first, out)
		}
	}
	if got, want := p.TierReport(), "tier: interpreted → native (promoted after 2 calls)"; got != want {
		t.Fatalf("TierReport = %q, want %q", got, want)
	}
	if p.CurrentTier() != core.TierNative {
		t.Fatalf("CurrentTier = %q, want native", p.CurrentTier())
	}
}

// TestTierParallelNativeForcedWorkers compares a forced-workers
// parallel compile across tiers: the interpreter honours Workers, the
// emitted code shards by GOMAXPROCS — both write disjoint elements
// with identical per-element expressions, so outputs stay bitwise
// identical whatever the worker count.
func TestTierParallelNativeForcedWorkers(t *testing.T) {
	n := int64(32)
	in := map[string]*runtime.Strict{"b": workloads.Mesh(n, 8)}
	opts := core.Options{
		InputBounds: boundsOf(in),
		Parallel:    true,
		Workers:     4,
	}
	seq, err := core.Compile(workloads.JacobiMonolithicSrc, workloads.ParamsFor("jacobi-mono", n),
		core.Options{InputBounds: boundsOf(in)})
	if err != nil {
		t.Fatal(err)
	}
	par, err := core.Compile(workloads.JacobiMonolithicSrc, workloads.ParamsFor("jacobi-mono", n), opts)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := par.NativeSpec("jmono-par")
	if err != nil {
		t.Fatalf("parallel plan is native-ineligible: %v", err)
	}
	mod, err := native.Build([]native.ProgramSpec{spec}, native.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer mod.Close()

	ref, err := seq.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	got, err := par.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	bitwiseEqual(t, "sequential vs parallel interpreter", ref, got)
	par.AdoptNative(mod.Plan("jmono-par"))
	nat, tier, err := par.RunTiered(in)
	if err != nil {
		t.Fatal(err)
	}
	if tier != core.TierNative {
		t.Fatalf("served by %q, want native", tier)
	}
	bitwiseEqual(t, "parallel interpreter vs parallel native", got, nat)
}

// TestTierPromotionRace is the singleflight regression: 64 concurrent
// evaluations arriving while the background build runs must (a) never
// observe a partial swap — every call returns a complete, correct
// result from whichever tier serves it — and (b) coalesce onto ONE
// toolchain invocation. Run under -race this also proves the
// hot-swap itself is data-race free.
func TestTierPromotionRace(t *testing.T) {
	n := int64(16)
	in := map[string]*runtime.Strict{"a": workloads.Mesh(n, 9)}
	p, err := core.Compile(workloads.SORSrc, workloads.ParamsFor("sor", n), core.Options{
		InputBounds:   boundsOf(in),
		Tier:          core.TierAuto,
		TierThreshold: 1, // promote on the very first call
	})
	if err != nil {
		t.Fatal(err)
	}
	refProg, err := core.Compile(workloads.SORSrc, workloads.ParamsFor("sor", n),
		core.Options{InputBounds: boundsOf(in)})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := refProg.Run(in)
	if err != nil {
		t.Fatal(err)
	}

	before := native.Builds()
	const evals = 64
	outs := make([]*runtime.Strict, evals)
	errs := make([]error, evals)
	var wg sync.WaitGroup
	for i := 0; i < evals; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			outs[i], _, errs[i] = p.RunTiered(in)
		}(i)
	}
	wg.Wait()
	// Wait out the background build (PromoteNative joins the flight).
	if err := p.PromoteNative(); err != nil {
		t.Fatalf("promotion failed: %v", err)
	}
	if got := native.Builds() - before; got != 1 {
		t.Fatalf("native built %d times during the race, want exactly 1 (singleflight)", got)
	}
	for i := 0; i < evals; i++ {
		if errs[i] != nil {
			t.Fatalf("eval %d: %v", i, errs[i])
		}
		bitwiseEqual(t, fmt.Sprintf("eval %d", i), ref, outs[i])
	}
	out, tier, err := p.RunTiered(in)
	if err != nil {
		t.Fatal(err)
	}
	if tier != core.TierNative {
		t.Fatalf("post-promotion call served by %q, want native", tier)
	}
	bitwiseEqual(t, "post-promotion", ref, out)
}

// TestTierCertifiedPromotion proves the happy path of the certify
// gate: any tier mode forces -certify on, and a certified program
// promotes cleanly. (The refusal path needs an uncertified program
// with tiering state — constructible only white-box; see
// TestTierCertifyGateRefusal in tier_internal_test.go.)
func TestTierCertifiedPromotion(t *testing.T) {
	c, err := core.Compile(workloads.SquaresSrc, workloads.ParamsFor("squares", 8),
		core.Options{Tier: core.TierAuto})
	if err != nil {
		t.Fatal(err)
	}
	if c.Certs == nil {
		t.Fatal("Tier mode did not force -certify")
	}
	if err := c.PromoteNative(); err != nil {
		t.Fatalf("certified promotion failed: %v", err)
	}
	if c.CurrentTier() != core.TierNative {
		t.Fatalf("tier = %q after promotion, want native", c.CurrentTier())
	}
}

// TestTierNativeVerifyParity: the native tier's fast/checked dual
// lowering must report runtime-verifier verdicts identically to the
// interpreter — one verified tally per passing run, one failed tally
// per failing run, in both the program's own counters and the
// process-wide sink. (Regression: the emitted verifier used to run
// the check and silently drop the verdict, so the server's
// haccd_idxprop_verify_failures_total undercounted whenever a program
// ran native.)
func TestTierNativeVerifyParity(t *testing.T) {
	src := `s = array (1,n) [ p!(i) := x!(i) | i <- [1..n] ]`
	bounds := map[string]analysis.ArrayBounds{
		"x": {Lo: []int64{1}, Hi: []int64{4}},
		"p": {Lo: []int64{1}, Hi: []int64{4}},
	}
	strict4 := func(data ...float64) *runtime.Strict {
		return &runtime.Strict{B: runtime.Bounds{Lo: []int64{1}, Hi: []int64{4}}, Data: data}
	}
	x := strict4(10, 20, 30, 40)
	good := map[string]*runtime.Strict{"x": x, "p": strict4(4, 3, 2, 1)}
	bad := map[string]*runtime.Strict{"x": x, "p": strict4(1, 1, 2, 2)}

	run := func(p *core.Program, in map[string]*runtime.Strict, wantErr bool) *runtime.Strict {
		t.Helper()
		out, _, err := p.RunTiered(in)
		if wantErr != (err != nil) {
			t.Fatalf("run: err = %v, wantErr %v", err, wantErr)
		}
		return out
	}

	// Interpreter leg: one pass, one fail.
	var interpSink metrics.VerifyStats
	interp, err := core.Compile(src, map[string]int64{"n": 4}, core.Options{
		Parallel: true, Workers: 2, InputBounds: bounds, VerifyStats: &interpSink,
	})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	ref := run(interp, good, false)
	run(interp, bad, true)
	want := interp.IdxVerify.Snapshot()
	if want.Verified != 1 || want.Failed != 1 {
		t.Fatalf("interpreter tallies = %+v, want {1 1}", want)
	}

	// Native leg: identical traffic, identical tallies.
	var natSink metrics.VerifyStats
	nat, err := core.Compile(src, map[string]int64{"n": 4}, core.Options{
		Parallel: true, Workers: 2, InputBounds: bounds, VerifyStats: &natSink,
	})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	spec, err := nat.NativeSpec("vparity")
	if err != nil {
		t.Fatalf("NativeSpec: %v", err)
	}
	plan, err := native.BuildOne(spec, native.Options{})
	if err != nil {
		t.Fatalf("native build: %v", err)
	}
	nat.AdoptNative(plan)
	if nat.CurrentTier() != core.TierNative {
		t.Fatalf("tier = %q, want native", nat.CurrentTier())
	}
	got := run(nat, good, false)
	bitwiseEqual(t, "native vs interpreted", ref, got)
	run(nat, bad, true)

	if snap := nat.IdxVerify.Snapshot(); snap != want {
		t.Fatalf("native tallies = %+v, interpreter recorded %+v (tier-inconsistent counters)", snap, want)
	}
	if snap := natSink.Snapshot(); snap != interpSink.Snapshot() {
		t.Fatalf("native sink = %+v, interpreter sink %+v", snap, interpSink.Snapshot())
	}
}
