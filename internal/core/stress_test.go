package core

import (
	"fmt"
	"math/rand"
	"testing"

	"arraycomp/internal/analysis"
	"arraycomp/internal/runtime"
)

// This file stress-tests the full pipeline with randomized program
// families, always differentially against the thunked reference
// semantics.

// TestRandom2DStencilDifferential: monolithic 2-D recurrences with
// random neighbour offsets drawn from the causal (already-computed)
// half-space for a forward/forward scan — and mirrored variants that
// force other loop directions.
func TestRandom2DStencilDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		n := int64(5 + rng.Intn(12))
		// Choose a causal neighbour: (di,dj) lexicographically negative.
		var di, dj int64
		for di == 0 && dj == 0 {
			di = int64(rng.Intn(2))
			dj = int64(rng.Intn(3) - 1)
			if di == 0 && dj > 0 {
				dj = -dj
			}
		}
		// Mirror to exercise backward loops half the time.
		if rng.Intn(2) == 0 {
			di, dj = -di, -dj
		}
		// Spell the offsets with explicit signs ("i - 1" / "i + 1"):
		// naive "i-%d" with a negative offset would print "i--1",
		// which lexes as a line comment.
		offset := func(v string, d int64) string {
			switch {
			case d > 0:
				return fmt.Sprintf("%s - %d", v, d)
			case d < 0:
				return fmt.Sprintf("%s + %d", v, -d)
			}
			return v
		}
		oi, oj := offset("i", di), offset("j", dj)
		src := fmt.Sprintf(`param n;
	a = array ((1,1),(n,n))
	  [* [ (i,j) := if %s < 1 || %s > n || %s < 1 || %s > n
	               then 1.0
	               else a!(%s, %s) + 1.0 ]
	   | i <- [1..n], j <- [1..n] *]`, oi, oi, oj, oj, oi, oj)
		params := map[string]int64{"n": n}
		p := compile(t, src, params, Options{})
		got, err := p.Run(nil)
		if err != nil {
			t.Fatalf("trial %d (di=%d dj=%d): %v\n%s", trial, di, dj, err, p.Report())
		}
		pt := compile(t, src, params, Options{ForceThunked: true})
		want, err := pt.Run(nil)
		if err != nil {
			t.Fatalf("trial %d thunked: %v", trial, err)
		}
		if !got.EqualWithin(want, 1e-9) {
			t.Fatalf("trial %d (di=%d dj=%d): differs\n%s", trial, di, dj, p.Report())
		}
	}
}

// TestRandomBandProgramsDifferential: multi-clause band partitions
// with cross-band reads at random offsets.
func TestRandomBandProgramsDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 40; trial++ {
		n := int64(6 + rng.Intn(20))
		off := int64(rng.Intn(3))
		src := fmt.Sprintf(`param n;
	a = array (1,3*n)
	  [* [ i := 1.0 * i ] ++
	     [ n + i := if i + %d > n then 0.5 else a!(i + %d) * 2.0 ] ++
	     [ 2*n + i := a!(n + i) + a!i ]
	   | i <- [1..n] *]`, off, off)
		params := map[string]int64{"n": n}
		p := compile(t, src, params, Options{})
		got, err := p.Run(nil)
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, p.Report())
		}
		pt := compile(t, src, params, Options{ForceThunked: true})
		want, err := pt.Run(nil)
		if err != nil {
			t.Fatalf("trial %d thunked: %v", trial, err)
		}
		if !got.EqualWithin(want, 1e-9) {
			t.Fatalf("trial %d: differs (off=%d)\n%s", trial, off, p.Report())
		}
	}
}

// TestRandomStrideGenerators: random strides and directions in
// generators, including partial interleaves.
func TestRandomStrideGenerators(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 30; trial++ {
		k := int64(2 + rng.Intn(3)) // stride
		n := k * int64(3+rng.Intn(10))
		// k interleaved comprehensions covering residues 1..k.
		src := `a = array (1,n) (`
		for r := int64(1); r <= k; r++ {
			if r > 1 {
				src += " ++ "
			}
			src += fmt.Sprintf("[ i := %d.0 | i <- [%d,%d..n] ]", r, r, r+k)
		}
		src += ")"
		params := map[string]int64{"n": n}
		p := compile(t, src, params, Options{})
		cd := p.Defs["a"]
		if cd.Plan == nil {
			t.Fatalf("trial %d: no plan\n%s", trial, p.Report())
		}
		// The residue interleave is a provable permutation: no checks.
		if c := cd.Plan.Checks; c.CollisionChecks+c.EmptiesSweeps != 0 {
			t.Errorf("trial %d (k=%d, n=%d): checks not elided: %+v", trial, k, n, c)
		}
		got, err := p.Run(nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := int64(1); i <= n; i++ {
			want := float64((i-1)%k + 1)
			if got.At(i) != want {
				t.Fatalf("trial %d: a(%d) = %v, want %v", trial, i, got.At(i), want)
			}
		}
	}
}

// TestRandomAccumDifferential: random accumulated arrays with
// commutative and non-commutative combiners.
func TestRandomAccumDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	combiners := []string{"(+)", "(*)", "max", "min", "right", "left"}
	for trial := 0; trial < 30; trial++ {
		comb := combiners[rng.Intn(len(combiners))]
		n := int64(10 + rng.Intn(50))
		buckets := int64(3 + rng.Intn(8))
		src := fmt.Sprintf(`h = accumArray %s 1.0 (0,%d)
	  ([ (i * 7) mod %d := 1.0 + 1.0 / i | i <- [1..n] ] ++
	   [ (i * 3) mod %d := 2.0 - 1.0 / i | i <- [1..n] ])`,
			comb, buckets-1, buckets, buckets)
		params := map[string]int64{"n": n}
		p := compile(t, src, params, Options{})
		got, err := p.Run(nil)
		if err != nil {
			t.Fatalf("trial %d (%s): %v\n%s", trial, comb, err, p.Report())
		}
		pt := compile(t, src, params, Options{ForceThunked: true})
		want, err := pt.Run(nil)
		if err != nil {
			t.Fatal(err)
		}
		if !got.EqualWithin(want, 1e-9) {
			t.Fatalf("trial %d (%s): compiled and thunked accumArray differ\n%s", trial, comb, p.Report())
		}
	}
}

// TestRandomMultiClauseBigupd: bigupds with several clauses touching
// disjoint or overlapping rows.
func TestRandomMultiClauseBigupd(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		n := int64(6 + rng.Intn(8))
		r1 := int64(1 + rng.Intn(int(n)))
		r2 := int64(1 + rng.Intn(int(n)))
		src := `param n, r1, r2;
	a2 = bigupd a
	  [* [ (r1,j) := a!(r2,j) + 1.0 ] ++ [ (r2,j) := a!(r1,j) * 2.0 ] | j <- [1..n] *]`
		params := map[string]int64{"n": n, "r1": r1, "r2": r2}
		opts := Options{InputBounds: map[string]analysis.ArrayBounds{"a": matBounds(n, n)}}
		in := makeMatrix(n, n, func(i, j int64) float64 { return float64(rng.Intn(50)) })
		p := compile(t, src, params, opts)
		got, err := p.Run(map[string]*runtime.Strict{"a": in})
		if err != nil {
			t.Fatalf("trial %d (r1=%d r2=%d): %v\n%s", trial, r1, r2, err, p.Report())
		}
		pt := compile(t, src, params, Options{ForceThunked: true, InputBounds: opts.InputBounds})
		want, err := pt.Run(map[string]*runtime.Strict{"a": in})
		if err != nil {
			t.Fatal(err)
		}
		if !got.EqualWithin(want, 1e-9) {
			t.Fatalf("trial %d (r1=%d r2=%d): differs\n%s", trial, r1, r2, p.Report())
		}
	}
}

// TestRandomLetrecChains: chains of definitions reading each other at
// random offsets, exercising definition ordering.
func TestRandomLetrecChains(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 20; trial++ {
		n := int64(8 + rng.Intn(20))
		shift := int64(rng.Intn(3))
		src := fmt.Sprintf(`param n;
	letrec*
	  c = array (1,n) [ i := b!i + a!i | i <- [1..n] ];
	  a = array (1,n) [ i := 1.0 * i | i <- [1..n] ];
	  b = array (1,n) [ i := if i + %d > n then 0.0 else a!(i + %d) | i <- [1..n] ];
	in c`, shift, shift)
		params := map[string]int64{"n": n}
		p := compile(t, src, params, Options{})
		// Order must put a before b before c despite source order.
		pos := map[string]int{}
		for i, name := range p.Order {
			pos[name] = i
		}
		if !(pos["a"] < pos["b"] && pos["b"] < pos["c"]) {
			t.Fatalf("trial %d: order %v", trial, p.Order)
		}
		got, err := p.Run(nil)
		if err != nil {
			t.Fatal(err)
		}
		pt := compile(t, src, params, Options{ForceThunked: true})
		want, err := pt.Run(nil)
		if err != nil {
			t.Fatal(err)
		}
		if !got.EqualWithin(want, 1e-9) {
			t.Fatalf("trial %d: differs", trial)
		}
	}
}

// TestDeepNestSchedulable: 3-level nests still schedule and agree.
func TestDeepNestSchedulable(t *testing.T) {
	src := `param n;
	a = array ((1,1,1),(n,n,n))
	  [* [ (i,j,k) := if k == 1 then 1.0 else a!(i,j,k-1) + 0.5 ]
	   | i <- [1..n], j <- [1..n], k <- [1..n] *]`
	params := map[string]int64{"n": 5}
	p := compile(t, src, params, Options{})
	if p.Defs["a"].Mode() != "thunkless" {
		t.Fatalf("3-D nest must schedule:\n%s", p.Report())
	}
	got, err := p.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.At(2, 3, 4) != 2.5 {
		t.Errorf("a(2,3,4) = %v, want 2.5", got.At(2, 3, 4))
	}
}

// TestEmptyGeneratorProgram: a program whose generator is empty under
// the binding must drop the subtree and report empties.
func TestEmptyGeneratorProgram(t *testing.T) {
	src := `a = array (1,n) ([ i := 1.0 | i <- [1..n] ] ++ [ i := 2.0 | i <- [2..1] ])`
	p := compile(t, src, map[string]int64{"n": 3}, Options{})
	out, err := p.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.At(2) != 1 {
		t.Errorf("a(2) = %v", out.At(2))
	}
}

// TestSingleElementLoops: trip-1 loops must not confuse direction
// scheduling.
func TestSingleElementLoops(t *testing.T) {
	src := `a = array (1,1) [ i := 42.0 | i <- [1..1] ]`
	p := compile(t, src, nil, Options{})
	out, err := p.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.At(1) != 42 {
		t.Error("trip-1 loop broken")
	}
}

// TestLargeNInternalConsistency runs a bigger wavefront to shake out
// any bounds arithmetic issues at scale.
func TestLargeNInternalConsistency(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	src := `a = array ((1,1),(n,n))
	  ([ (1,j) := 1.0 | j <- [1..n] ] ++
	   [ (i,1) := 1.0 | i <- [2..n] ] ++
	   [ (i,j) := 0.5 * a!(i-1,j) + 0.5 * a!(i,j-1) | i <- [2..n], j <- [2..n] ])`
	p := compile(t, src, map[string]int64{"n": 200}, Options{})
	out, err := p.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	// Every interior element is an average of cells that start at 1 on
	// the border: all values must be exactly 1.
	for off := int64(0); off < out.B.Size(); off++ {
		if out.Data[off] != 1 {
			t.Fatalf("element %v = %v, want 1", out.B.Unlinear(off), out.Data[off])
		}
	}
}
