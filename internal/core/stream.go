// Streaming execution wiring: when Options.Stream is set, core tries
// to lower the whole compiled pipeline to bounded-memory chunked
// stages (internal/stream) and routes Run through it. Any definition
// the window-legality analysis rejects makes the *whole program* fall
// back to the materialized path with a note saying why — streaming is
// an execution-mode optimization, never a semantics change, so the
// fallback is silent to callers beyond the reported tier.
package core

import (
	"fmt"
	"sync/atomic"
	"time"

	"arraycomp/internal/certify"
	"arraycomp/internal/loopir"
	"arraycomp/internal/metrics"
	"arraycomp/internal/runtime"
	"arraycomp/internal/stream"
)

// streamState is the streaming-mode state of a compiled program.
type streamState struct {
	pipeline *stream.Pipeline
	// reason is the fallback note when pipeline is nil.
	reason string
	// last holds the most recent run's accounting for reports.
	last atomic.Pointer[stream.Report]
}

// streamDefs derives the per-definition stream plans, in evaluation
// order. It fails on the first definition that cannot stream.
func (p *Program) streamDefs() ([]stream.Def, error) {
	defs := make([]stream.Def, 0, len(p.Order))
	for _, name := range p.Order {
		cd := p.Defs[name]
		if cd.GroupIdx >= 0 || cd.Plan == nil {
			return nil, fmt.Errorf("%s compiled %s; streaming needs thunkless plans", name, cd.Mode())
		}
		if cd.Plan.InPlace {
			return nil, fmt.Errorf("%s updates in place; streaming stages own their windows", name)
		}
		sp, err := loopir.BuildStreamPlan(cd.Plan.Program)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		defs = append(defs, stream.Def{Name: name, Prog: cd.Plan.Program, Plan: sp})
	}
	return defs, nil
}

// initStream attempts to build the streaming pipeline. certifyMerge,
// when non-nil, receives the window-legality replay certificates (the
// certify gate for streams); a falsification aborts via its error.
func (p *Program) initStream(rep *metrics.CompileReport, certifyMerge func(name string, crep *certify.Report, t0 time.Time) error) error {
	t0 := time.Now()
	p.streamSt = &streamState{}
	defs, err := p.streamDefs()
	if err != nil {
		p.streamSt.reason = err.Error()
		p.note("stream: materialized fallback: %v", err)
		rep.AddPhase(metrics.PhasePlan, time.Since(t0))
		return nil
	}
	if certifyMerge != nil {
		for _, d := range defs {
			tc := time.Now()
			if err := certifyMerge(d.Name, loopir.CertifyStream(d.Prog, d.Plan), tc); err != nil {
				return err
			}
		}
	}
	pl, err := stream.Build(defs, p.Result, stream.Config{})
	if err != nil {
		p.streamSt.reason = err.Error()
		p.note("stream: materialized fallback: %v", err)
		rep.AddPhase(metrics.PhasePlan, time.Since(t0))
		return nil
	}
	p.streamSt.pipeline = pl
	p.note("stream: %d-stage pipeline, chunk %d, window d=%d, materialized footprint %d bytes",
		pl.Stages(), pl.ChunkSize(), pl.MaxDist(), pl.MaterializedBytes())
	rep.AddPhase(metrics.PhasePlan, time.Since(t0))
	return nil
}

// StreamActive reports whether Run is served by the streaming
// pipeline.
func (p *Program) StreamActive() bool {
	return p.streamSt != nil && p.streamSt.pipeline != nil
}

// StreamFallback returns the reason streaming fell back to the
// materialized path ("" when streaming is active or was not
// requested).
func (p *Program) StreamFallback() string {
	if p.streamSt == nil {
		return ""
	}
	return p.streamSt.reason
}

// StreamBounds returns the streamed result's rank-1 bounds; ok is
// false when streaming is not active.
func (p *Program) StreamBounds() (lo, hi int64, ok bool) {
	if !p.StreamActive() {
		return 0, 0, false
	}
	lo, hi = p.streamSt.pipeline.ResultBounds()
	return lo, hi, true
}

// StreamReport returns the accounting of the most recent streaming
// run, or nil before the first.
func (p *Program) StreamReport() *stream.Report {
	if p.streamSt == nil {
		return nil
	}
	return p.streamSt.last.Load()
}

// runStream serves one call from the streaming pipeline, recording
// the run's accounting.
func (p *Program) runStream(inputs map[string]*runtime.Strict) (*runtime.Strict, error) {
	out, rep, err := p.streamSt.pipeline.Run(inputs)
	p.streamSt.last.Store(&rep)
	return out, err
}

// RunStream executes the streaming pipeline, delivering result chunks
// to emit in position order without materializing the result (the
// /evalstream path). It fails when streaming is not active — callers
// check StreamActive and fall back to Run.
func (p *Program) RunStream(inputs map[string]*runtime.Strict, emit func(lo int64, data []float64) error) (stream.Report, error) {
	if !p.StreamActive() {
		return stream.Report{}, fmt.Errorf("core: streaming is not active for this program (%s)", p.StreamFallback())
	}
	rep, err := p.streamSt.pipeline.RunEmit(inputs, emit)
	p.streamSt.last.Store(&rep)
	return rep, err
}
