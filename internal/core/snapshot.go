package core

import (
	"encoding/gob"
	"fmt"
	"io"
	"time"

	"arraycomp/internal/certify"
	"arraycomp/internal/codegen"
	"arraycomp/internal/lang"
	"arraycomp/internal/loopir"
	"arraycomp/internal/metrics"
)

// This file is the persistence boundary of the compiler: a compiled
// Program whose every definition reached a thunkless plan is pure data
// (loop-IR nests over concrete integers), so it can be serialized,
// written to a disk cache tier, and restored in a later process with
// zero compile-phase work — the fleet-scale form of the paper's
// compile-once/run-many amortization argument.
//
// Two deliberate restrictions keep the boundary sound:
//
//   - Only CERTIFIED programs snapshot. A disk entry outlives the
//     process that proved its schedules legal, so the proof has to
//     ride along: Snapshot refuses programs compiled without -certify
//     (or whose audit falsified anything), and the restored program
//     carries the certified-claims count so the tiering gate
//     ("uncertified programs never tier up") keeps holding.
//   - Only fully thunkless programs snapshot. Thunked fallbacks and
//     recursive groups evaluate through the analysis-time suspension
//     machinery, which is not data; those programs stay memory-only.

// SnapshotDef is one definition's durable compilation artifact.
type SnapshotDef struct {
	Name string
	// SourceArray is the updated array for in-place plans (bigupd).
	SourceArray string
	InPlace     bool
	CloneSource bool
	Checks      codegen.CheckCounts
	IR          *loopir.Program
}

// Snapshot is the durable form of a compiled Program.
type Snapshot struct {
	Result string
	Env    map[string]int64
	Order  []string
	Notes  []string
	// Counters preserves the original compilation's optimization
	// record (what was elided, fused, scheduled) — the phase timings
	// deliberately do not survive: a restored program reports only the
	// load phase it actually paid.
	Counters metrics.Counters
	// CertifiedClaims is the original audit's certified-claim count;
	// Snapshot never produces an uncertified snapshot.
	CertifiedClaims int
	Defs            []SnapshotDef
}

// Snapshot renders the program in durable form. It fails on programs
// that are not certified or not fully thunkless — the callers (the
// cache's disk tier) treat that as "memory-only entry", not an error
// condition worth surfacing to clients.
func (p *Program) Snapshot() (*Snapshot, error) {
	if p.Certs == nil {
		return nil, fmt.Errorf("core: refusing to snapshot an uncertified program (compile with Certify)")
	}
	if err := p.Certs.Err(); err != nil {
		return nil, fmt.Errorf("core: refusing to snapshot: %w", err)
	}
	s := &Snapshot{
		Result:          p.Result,
		Env:             p.Env,
		Order:           p.Order,
		Notes:           p.Notes,
		Counters:        p.Stats.Counters,
		CertifiedClaims: p.Certs.CertifiedCount,
	}
	for _, name := range p.Order {
		cd := p.Defs[name]
		if cd.GroupIdx >= 0 {
			return nil, fmt.Errorf("core: %s is in a mutually recursive group; snapshots need thunkless plans", name)
		}
		if cd.Plan == nil {
			return nil, fmt.Errorf("core: %s compiled %s; snapshots need thunkless plans", name, cd.Mode())
		}
		s.Defs = append(s.Defs, SnapshotDef{
			Name:        name,
			SourceArray: cd.Def.Source,
			InPlace:     cd.Plan.InPlace,
			CloneSource: cd.CloneSource,
			Checks:      cd.Plan.Checks,
			IR:          cd.Plan.Program,
		})
	}
	return s, nil
}

// Encode writes the snapshot in gob form.
func (s *Snapshot) Encode(w io.Writer) error {
	return gob.NewEncoder(w).Encode(s)
}

// DecodeSnapshot reads a gob-encoded snapshot.
func DecodeSnapshot(r io.Reader) (*Snapshot, error) {
	s := &Snapshot{}
	if err := gob.NewDecoder(r).Decode(s); err != nil {
		return nil, fmt.Errorf("core: decoding snapshot: %w", err)
	}
	return s, nil
}

// RestoreSnapshot rebuilds a runnable Program from its durable form
// under the original request options (the caller guarantees the match
// — in the cache, options are part of the content address). The only
// work performed is closure compilation of the stored IR; the restored
// program's Stats charge it all to the "load" phase, with every
// compile phase at zero — the restart-warmth contract.
func RestoreSnapshot(s *Snapshot, opts Options) (*Program, error) {
	t0 := time.Now()
	rep := metrics.NewCompileReport()
	rep.Counters = s.Counters
	p := &Program{
		Env:    s.Env,
		Defs:   map[string]*CompiledDef{},
		Order:  s.Order,
		Result: s.Result,
		Notes:  s.Notes,
		Stats:  rep,
	}
	// The restored certificate: the claims were proved by the original
	// compilation; the count rides along so the tier gate (uncertified
	// programs never tier up) sees a passing audit.
	p.Certs = certify.NewReport()
	p.Certs.CertifiedCount = s.CertifiedClaims
	for i := range s.Defs {
		d := &s.Defs[i]
		if d.IR == nil {
			return nil, fmt.Errorf("core: snapshot of %s has no IR", d.Name)
		}
		if err := loopir.RebindAccum(d.IR); err != nil {
			return nil, err
		}
		ex, err := loopir.Compile(d.IR)
		if err != nil {
			return nil, fmt.Errorf("core: restoring %s: %w", d.Name, err)
		}
		ex.SetWorkers(opts.Workers)
		p.installVerifyHook(ex, opts.VerifyStats)
		p.Defs[d.Name] = &CompiledDef{
			Def:         &lang.ArrayDef{Name: d.Name, Source: d.SourceArray, Strict: true},
			GroupIdx:    -1,
			Plan:        &codegen.Plan{Program: d.IR, Exec: ex, Checks: d.Checks, InPlace: d.InPlace},
			CloneSource: d.CloneSource,
		}
	}
	for _, name := range s.Order {
		if p.Defs[name] == nil {
			return nil, fmt.Errorf("core: snapshot order names %s but carries no plan for it", name)
		}
	}
	if err := p.initTier(opts, rep); err != nil {
		return nil, err
	}
	if opts.Stream {
		// The stream pipeline is closures, not data: rebuild it from
		// the restored IR. A forged snapshot cannot smuggle an illegal
		// window geometry in — the legality analysis re-derives it
		// here from scratch (and rejection just means materialized
		// fallback, same as at compile time).
		if err := p.initStream(rep, nil); err != nil {
			return nil, err
		}
	}
	rep.AddPhase(metrics.PhaseLoad, time.Since(t0))
	return p, nil
}
