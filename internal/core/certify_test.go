package core

import (
	"testing"

	"arraycomp/internal/analysis"
	"arraycomp/internal/workloads"
)

// certifyWorkloads is the canonical corpus: every paper workload must
// compile with -certify and report zero falsified claims — the
// acceptance bar for the soundness-certification engine.
var certifyWorkloads = []struct {
	name string
	src  string
	// inputs lists free input arrays filled as n×n matrices.
	inputs []string
}{
	{"squares", workloads.SquaresSrc, nil},
	{"recurrence", workloads.RecurrenceSrc, nil},
	{"wavefront", workloads.WavefrontSrc, nil},
	{"example1", workloads.Example1Src, nil},
	{"example2", workloads.Example2Src, nil},
	{"mixedpass", workloads.MixedPassSrc, nil},
	{"cyclic", workloads.CyclicSrc, nil},
	{"rowswap", workloads.RowSwapSrc, []string{"a"}},
	{"jacobi", workloads.JacobiSrc, []string{"a"}},
	{"sor", workloads.SORSrc, []string{"a"}},
	{"livermore23", workloads.Livermore23Src, []string{"za", "zr", "zb", "zu", "zv"}},
	{"scalerow", workloads.ScaleRowSrc, []string{"a"}},
	{"saxpy", workloads.SaxpyRowSrc, []string{"a"}},
	{"histogram", workloads.HistogramSrc, nil},
	{"jacobi-mono", workloads.JacobiMonolithicSrc, []string{"b"}},
}

func certifyCompile(t *testing.T, name, src string, inputs []string, n int64, parallel bool) *Program {
	t.Helper()
	opts := Options{Certify: true, Parallel: parallel}
	if parallel {
		opts.Workers = 4
	}
	if len(inputs) > 0 {
		opts.InputBounds = map[string]analysis.ArrayBounds{}
		lo, hi := workloads.MatrixBounds(n)
		for _, in := range inputs {
			opts.InputBounds[in] = analysis.ArrayBounds{Lo: lo, Hi: hi}
		}
	}
	p, err := Compile(src, workloads.ParamsFor(name, n), opts)
	if err != nil {
		t.Fatalf("%s: certified compile failed: %v", name, err)
	}
	return p
}

// TestCertifyWorkloads certifies the whole corpus, sequential and
// parallel, at a size small enough for exhaustive shadow enumeration
// and at one larger (clamped) size.
func TestCertifyWorkloads(t *testing.T) {
	for _, n := range []int64{12, 96} {
		for _, parallel := range []bool{false, true} {
			for _, wl := range certifyWorkloads {
				p := certifyCompile(t, wl.name, wl.src, wl.inputs, n, parallel)
				if p.Certs == nil {
					t.Fatalf("%s (n=%d parallel=%v): no certification report", wl.name, n, parallel)
				}
				if p.Certs.FalsifiedCount != 0 {
					t.Errorf("%s (n=%d parallel=%v): falsified claims:\n%s", wl.name, n, parallel, p.Certs)
				}
				// Claim counters must mirror the report.
				c := p.Stats.Counters
				if c.ClaimsCertified != p.Certs.CertifiedCount || c.ClaimsFalsified != p.Certs.FalsifiedCount || c.ClaimsSkipped != p.Certs.SkippedCount {
					t.Errorf("%s: counters %d/%d/%d diverge from report %s", wl.name,
						c.ClaimsCertified, c.ClaimsFalsified, c.ClaimsSkipped, p.Certs.Summary())
				}
			}
		}
	}
}

// TestCertifyProducesCertificates: a schedulable workload with real
// dependences must yield a nonzero certificate count (the audit is not
// vacuous), and certification must not change the compiled result.
func TestCertifyProducesCertificates(t *testing.T) {
	n := int64(24)
	p := certifyCompile(t, "wavefront", workloads.WavefrontSrc, nil, n, false)
	if p.Certs.CertifiedCount == 0 {
		t.Fatalf("wavefront certified nothing: %s", p.Certs.Summary())
	}
	got, err := p.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Compile(workloads.WavefrontSrc, map[string]int64{"n": n}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := plain.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !got.EqualWithin(want, 0) {
		t.Fatal("certified compile produced a different result")
	}
}

// TestCertifyReportsThroughProgram: the Certs report is attached only
// when requested.
func TestCertifyReportsThroughProgram(t *testing.T) {
	p := compile(t, workloads.SquaresSrc, map[string]int64{"n": 16}, Options{})
	if p.Certs != nil {
		t.Fatal("Certs attached without Options.Certify")
	}
}
