package shard

import (
	"fmt"
	"testing"
)

func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		// Shaped like real cache keys (hex SHA-256), though Owner only
		// sees opaque strings.
		out[i] = fmt.Sprintf("%064x", i*2654435761)
	}
	return out
}

func TestOwnerDeterministicAndOrderInsensitive(t *testing.T) {
	a := New([]string{"h1:1", "h2:1", "h3:1"}, 0)
	b := New([]string{"h3:1", "h1:1", "h2:1"}, 0)
	for _, k := range keys(1000) {
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("key %s: owner differs across node orderings: %s vs %s", k, a.Owner(k), b.Owner(k))
		}
	}
}

func TestDistributionRoughlyBalanced(t *testing.T) {
	r := New([]string{"h1:1", "h2:1", "h3:1"}, 0)
	counts := map[string]int{}
	const n = 30000
	for _, k := range keys(n) {
		counts[r.Owner(k)]++
	}
	if len(counts) != 3 {
		t.Fatalf("only %d of 3 nodes own keys: %v", len(counts), counts)
	}
	for node, c := range counts {
		frac := float64(c) / n
		if frac < 0.15 || frac > 0.55 {
			t.Errorf("node %s owns %.1f%% of keys; want a rough third: %v", node, 100*frac, counts)
		}
	}
}

func TestConsistencyUnderMembershipChange(t *testing.T) {
	full := New([]string{"h1:1", "h2:1", "h3:1", "h4:1"}, 0)
	less := New([]string{"h1:1", "h2:1", "h3:1"}, 0)
	moved, kept := 0, 0
	for _, k := range keys(10000) {
		was, is := full.Owner(k), less.Owner(k)
		if was == "h4:1" {
			continue // had to move; anywhere is fine
		}
		if was == is {
			kept++
		} else {
			moved++
		}
	}
	// Consistent hashing's contract: keys not owned by the removed node
	// stay put.
	if moved != 0 {
		t.Errorf("%d keys moved between surviving nodes (kept %d); removal must only remap the removed node's keys", moved, kept)
	}
}

func TestDegenerateRings(t *testing.T) {
	if got := New(nil, 0).Owner("k"); got != "" {
		t.Errorf("empty ring owner = %q, want \"\"", got)
	}
	one := New([]string{"solo:1"}, 0)
	for _, k := range keys(100) {
		if one.Owner(k) != "solo:1" {
			t.Fatal("single-node ring must own every key")
		}
	}
	dup := New([]string{"h1:1", "h1:1", "h2:1"}, 0)
	if dup.Len() != 2 {
		t.Errorf("duplicate nodes not collapsed: %v", dup.Nodes())
	}
}
