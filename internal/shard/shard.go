// Package shard places content-addressed cache keys onto a fleet of
// haccd replicas with a consistent-hash ring.
//
// Why consistent hashing instead of key mod N: the plan cache's value
// is its warmth. Under mod-N placement, adding or removing one replica
// remaps nearly every key, so a routine scale-up cold-starts the whole
// fleet's compile cache at once. On the ring, membership changes move
// only the keys adjacent to the changed node (~1/N of the space), so
// the rest of the fleet keeps serving warm hits.
//
// Every replica builds the same ring from the same -peers list and
// routes each request to its owner, so a given (source, params,
// options) triple compiles on exactly one replica and its plan warms
// exactly one memory/disk cache — N replicas give N distinct working
// sets instead of N copies of one.
package shard

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// DefaultReplicas is the virtual-node count per physical node. 128
// points per node keeps the max/min load ratio near 1.2 for small
// fleets while the ring stays a few KB.
const DefaultReplicas = 128

type point struct {
	hash uint64
	node int // index into r.nodes
}

// Ring is an immutable consistent-hash ring; safe for concurrent use.
type Ring struct {
	nodes  []string
	points []point // sorted by hash
}

// New builds a ring of the given nodes with `replicas` virtual nodes
// each (0 means DefaultReplicas). Node order does not matter: two
// rings built from permutations of the same set place every key
// identically. Duplicate nodes are collapsed.
func New(nodes []string, replicas int) *Ring {
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	seen := map[string]bool{}
	r := &Ring{}
	for _, n := range nodes {
		if n == "" || seen[n] {
			continue
		}
		seen[n] = true
		r.nodes = append(r.nodes, n)
	}
	sort.Strings(r.nodes)
	for i, n := range r.nodes {
		for v := 0; v < replicas; v++ {
			r.points = append(r.points, point{hash: hash64(fmt.Sprintf("%s#%d", n, v)), node: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		// Hash ties (astronomically rare) break by node index so
		// permuted input orders still agree.
		return r.points[a].node < r.points[b].node
	})
	return r
}

// Len returns the number of distinct nodes.
func (r *Ring) Len() int { return len(r.nodes) }

// Nodes returns the distinct nodes in sorted order.
func (r *Ring) Nodes() []string { return append([]string(nil), r.nodes...) }

// Owner maps a cache key to the node owning it: the first virtual
// node at or clockwise of the key's hash. Empty rings own nothing and
// return "".
func (r *Ring) Owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap around
	}
	return r.nodes[r.points[i].node]
}

// hash64 is SHA-256 truncated to 64 bits. FNV and friends clump badly
// on the short, near-identical strings virtual nodes are named with
// ("host:port#17"), skewing ownership several-fold; a cryptographic
// hash spreads them uniformly and routing is not a hot path.
func hash64(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}
