package oracle

import (
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"arraycomp/internal/analysis"
	"arraycomp/internal/gencomp"
	"arraycomp/internal/parser"
)

// LoadCorpusFile reads a checked-in regression program. The file is
// ordinary concrete syntax plus `--` header comments that carry the
// harness metadata the seed alone would otherwise provide:
//
//	-- param n = 4
//	-- input u : 0..6
//	-- input w : 0..5 x 0..5
//	param n;
//	letrec* ... in a
//
// Every program the fuzzer ever minimizes gets checked into
// internal/oracle/testdata/ in this format and replayed by
// TestOracleSeedCorpus forever after.
func LoadCorpusFile(path string) (*gencomp.Program, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	src := string(raw)
	p := &gencomp.Program{
		Seed:   1,
		Source: src,
		Params: map[string]int64{},
		Inputs: map[string]analysis.ArrayBounds{},
	}
	for _, line := range strings.Split(src, "\n") {
		line = strings.TrimSpace(line)
		if !strings.HasPrefix(line, "--") {
			continue
		}
		rest := strings.TrimSpace(strings.TrimPrefix(line, "--"))
		switch {
		case strings.HasPrefix(rest, "seed"):
			if v, err := strconv.ParseUint(afterEq(rest), 10, 64); err == nil {
				p.Seed = v
			}
		case strings.HasPrefix(rest, "param"):
			fields := strings.Fields(strings.TrimPrefix(rest, "param"))
			// "n = 4"
			if len(fields) == 3 && fields[1] == "=" {
				v, err := strconv.ParseInt(fields[2], 10, 64)
				if err != nil {
					return nil, fmt.Errorf("%s: bad param line %q", path, line)
				}
				p.Params[fields[0]] = v
			}
		case strings.HasPrefix(rest, "input"):
			// "u : 0..6" or "w : 0..5 x 0..5"
			name, b, err := parseInputDecl(strings.TrimPrefix(rest, "input"))
			if err != nil {
				return nil, fmt.Errorf("%s: %v", path, err)
			}
			p.Inputs[name] = b
		}
	}
	prog, err := parser.ParseProgram(src)
	if err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	p.Prog = prog
	return p, nil
}

// CorpusString renders a program in the corpus file format, ready to
// be checked into internal/oracle/testdata/ and replayed by
// TestOracleSeedCorpus (the inverse of LoadCorpusFile).
func CorpusString(p *gencomp.Program) string {
	var b strings.Builder
	fmt.Fprintf(&b, "-- seed = %d\n", p.Seed)
	params := make([]string, 0, len(p.Params))
	for name := range p.Params {
		params = append(params, name)
	}
	sort.Strings(params)
	for _, name := range params {
		fmt.Fprintf(&b, "-- param %s = %d\n", name, p.Params[name])
	}
	inputs := make([]string, 0, len(p.Inputs))
	for name := range p.Inputs {
		inputs = append(inputs, name)
	}
	sort.Strings(inputs)
	for _, name := range inputs {
		bd := p.Inputs[name]
		dims := make([]string, len(bd.Lo))
		for d := range bd.Lo {
			dims[d] = fmt.Sprintf("%d..%d", bd.Lo[d], bd.Hi[d])
		}
		fmt.Fprintf(&b, "-- input %s : %s\n", name, strings.Join(dims, " x "))
	}
	b.WriteString(p.Source)
	if !strings.HasSuffix(p.Source, "\n") {
		b.WriteByte('\n')
	}
	return b.String()
}

func afterEq(s string) string {
	if i := strings.IndexByte(s, '='); i >= 0 {
		return strings.TrimSpace(s[i+1:])
	}
	return ""
}

func parseInputDecl(s string) (string, analysis.ArrayBounds, error) {
	name, spec, ok := strings.Cut(s, ":")
	if !ok {
		return "", analysis.ArrayBounds{}, fmt.Errorf("bad input line %q", s)
	}
	name = strings.TrimSpace(name)
	var b analysis.ArrayBounds
	for _, dim := range strings.Split(spec, "x") {
		loS, hiS, ok := strings.Cut(strings.TrimSpace(dim), "..")
		if !ok {
			return "", analysis.ArrayBounds{}, fmt.Errorf("bad input range %q", dim)
		}
		lo, err1 := strconv.ParseInt(strings.TrimSpace(loS), 10, 64)
		hi, err2 := strconv.ParseInt(strings.TrimSpace(hiS), 10, 64)
		if err1 != nil || err2 != nil {
			return "", analysis.ArrayBounds{}, fmt.Errorf("bad input range %q", dim)
		}
		b.Lo = append(b.Lo, lo)
		b.Hi = append(b.Hi, hi)
	}
	return name, b, nil
}
