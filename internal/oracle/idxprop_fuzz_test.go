package oracle

import (
	"testing"

	"arraycomp/internal/gencomp"
	"arraycomp/internal/parser"
)

// TestOracleIdxProp is the subscripted-subscript ablation arm: every
// program carries an index-array definition plus an indirect consumer
// (gather, scatter, or histogram), with value shapes spanning
// statically provable, runtime-verifiable, and claim-violating index
// arrays. The corpus asserts three things at once:
//
//   - zero divergence: the claim-conditional parallel plans agree with
//     the thunked reference AND match the NoIdxProp arm bitwise —
//     claim verification either admits the identical-arithmetic fast
//     path or falls back to exactly the checked execution;
//   - zero honest falsifications: the certify arm (which replays every
//     static claim through the materializer and audits every
//     claim-assuming plan relaxation) never rejects an honestly
//     inferred program — a falsification would surface here as a
//     certify-vs-reference mismatch;
//   - verifier coverage: the runtime verifier both passes and fails
//     across the corpus, i.e. the generated shapes genuinely reach
//     both sides of the conditional.
func TestOracleIdxProp(t *testing.T) {
	n := 1000
	if testing.Short() {
		n = 300
	}
	seeds := make([]uint64, n)
	for i := range seeds {
		seeds[i] = 0x1D0000 + uint64(i)
	}
	cfg := gencomp.Config{IdxWeight: 1000}
	s := RunSeeds(seeds, cfg, false, false)
	t.Logf("\n%s", s)
	if s.Programs != n {
		t.Fatalf("ran %d programs, want %d", s.Programs, n)
	}
	for _, c := range s.Failures {
		min := ShrinkFailure(c)
		t.Errorf("seed %d disagrees: %v\nminimized:\n%s", c.Seed, c.Mismatches, min.Program.Source)
		if len(s.Failures) > 5 {
			break
		}
	}
	// Corpus-coverage assertions: the fuzz arm is vacuous unless the
	// runtime verifier actually ran and returned both verdicts, and
	// unless outcomes include both successes and agreed-upon errors.
	if s.IdxVerified == 0 {
		t.Errorf("no program passed runtime claim verification")
	}
	if s.IdxFailed == 0 {
		t.Errorf("no program failed runtime claim verification (violating shapes never reached the verifier)")
	}
	par := s.PerAblation["parallel"]
	if par.OK == 0 || par.Err == 0 {
		t.Errorf("corpus lacks outcome variety under parallel: ok=%d err=%d", par.OK, par.Err)
	}
	if st := s.PerAblation["idxprop"]; st.Mismatch != 0 {
		t.Errorf("idxprop ablation mismatched %d times", st.Mismatch)
	}
	if st := s.PerAblation["certify"]; st.Mismatch != 0 {
		t.Errorf("certify arm mismatched %d times (honest falsification or audit-visible behavior change)", st.Mismatch)
	}
}

// TestIdxGenRoundTrip pins that the subscripted-subscript shapes print
// and re-parse like every other generated program.
func TestIdxGenRoundTrip(t *testing.T) {
	cfg := gencomp.Config{IdxWeight: 1000}
	for seed := uint64(0); seed < 200; seed++ {
		p := gencomp.Generate(seed, cfg)
		if _, err := parser.ParseProgram(p.Source); err != nil {
			t.Fatalf("seed %d: generated source does not parse: %v\n%s", seed, err, p.Source)
		}
	}
}
