// Package oracle is the differential-testing harness: it compiles one
// program under a matrix of Options ablations and executes it on three
// backends — the non-strict thunked runtime (the reference semantics),
// the loop-IR closure interpreter, and gogen-emitted Go built and run
// out of process — then asserts that every execution agrees, element
// by element, including agreement on errors (⊥, collision, empties,
// bounds).
//
// The contract being checked is the paper's central claim: dependence
// analysis, check elision, thunkless scheduling and node splitting are
// semantics-preserving refinements of the naive thunked evaluator. Any
// divergence between an optimized configuration and the ForceThunked
// reference is a compiler bug by definition.
package oracle

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"arraycomp/internal/analysis"
	"arraycomp/internal/core"
	"arraycomp/internal/gencomp"
	"arraycomp/internal/lang"
	"arraycomp/internal/runtime"
)

// Outcome is the observable result of one compile+run: either an error
// (compile-time rejection or runtime ⊥/collision/empties/bounds) or a
// result array. Two outcomes agree when they error together or succeed
// with element-wise equal arrays — the oracle deliberately does not
// require error *messages* to match across backends.
type Outcome struct {
	// Err is the error text; empty means success.
	Err string
	// CompileTime marks Err as a compile-time rejection.
	CompileTime bool
	// Value is the result array when Err is empty.
	Value *runtime.Strict
}

// OK reports success.
func (o Outcome) OK() bool { return o.Err == "" }

func (o Outcome) String() string {
	if o.OK() {
		return fmt.Sprintf("ok %d elements", len(o.Value.Data))
	}
	stage := "runtime"
	if o.CompileTime {
		stage = "compile"
	}
	return fmt.Sprintf("%s error: %s", stage, o.Err)
}

// Ablation is one compiler configuration under test.
type Ablation struct {
	Name string
	Opts core.Options
}

// RefAblation names the reference configuration: every definition
// evaluated by the non-strict thunked runtime, no scheduling, no check
// elision. Its outcome defines correct behavior.
const RefAblation = "thunked"

// Ablations returns the configuration matrix. The thunked entry is the
// reference; the rest must reproduce its observable behavior exactly.
func Ablations() []Ablation {
	return []Ablation{
		{RefAblation, core.Options{ForceThunked: true}},
		{"full", core.Options{}},
		{"nolinearize", core.Options{NoLinearize: true}},
		{"forcechecks", core.Options{ForceChecks: true}},
		// noopt executes the lowered nest with the loop-IR optimizer
		// disabled, so every fuzzed program cross-checks optimized
		// (full) against unoptimized execution element-wise.
		{"noopt", core.Options{NoOptimize: true}},
		// stencil keeps the optimizer but forces the stencil
		// specializer off (no guard splitting, no interior kernels).
		// RunCase additionally holds this arm to a bitwise comparison
		// against full: splitting and the specialized interior
		// kernels re-order nothing, so even the last ulp must match.
		{"stencil", core.Options{NoStencil: true}},
		// parallel runs the doacross/wavefront/tile schedules with a
		// forced multi-worker pool; results (and error messages) must be
		// indistinguishable from sequential execution.
		{"parallel", core.Options{Parallel: true, Workers: 4}},
		// idxprop disables the index-array property layer (no static
		// discharge, no claim-conditional dual plans, no runtime
		// verifier) under the same parallel pool. RunCase holds this arm
		// to a bitwise comparison against parallel: claim-assuming fast
		// paths elide checks but must perform the identical arithmetic,
		// and a failed runtime verification must fall back to exactly
		// the execution this arm always takes.
		{"idxprop", core.Options{NoIdxProp: true, Parallel: true, Workers: 4}},
		// stream requests the bounded-memory chunked engine; programs the
		// window-legality analysis rejects fall back to materialized
		// execution, so every generated program runs under this arm
		// either way. RunCase holds it to a bitwise comparison against
		// full: an engaged pipeline computes each element exactly once
		// with the interpreter's float semantics, so even the last ulp
		// must match.
		{"stream", core.Options{Stream: true}},
		// certify audits every dependence verdict (witness re-checks and
		// shadow-domain enumeration) and turns any falsified claim into
		// a compile error — which then diverges from the reference here,
		// surfacing the lying layer by name. It also cross-checks that
		// the audit itself never changes observable behavior.
		{"certify", core.Options{Certify: true, Parallel: true, Workers: 4}},
	}
}

// Mismatch records one disagreement with the reference outcome.
type Mismatch struct {
	// Backend is "interp:<ablation>" or "gogen".
	Backend string
	Detail  string
}

// Case is the full oracle result for one program.
type Case struct {
	Seed    uint64
	Program *gencomp.Program
	// Ref is the reference (thunked) outcome.
	Ref Outcome
	// ByAblation maps ablation name to its interpreter outcome.
	ByAblation map[string]Outcome
	// Mismatches lists every disagreement found (empty = all agree).
	Mismatches []Mismatch
	// GogenEligible: every live definition compiled to a loop-IR plan
	// under the full configuration, so the case can run as emitted Go.
	GogenEligible bool
	// GogenRan/GogenOutcome are filled by RunGogenBatch.
	GogenRan     bool
	GogenOutcome Outcome
	// NativeEligible/NativeRan/NativeOutcome are the native-tier leg,
	// filled by RunNativeBatch: the full-configuration program with a
	// batch-built native plan adopted, run through the real tier
	// dispatch.
	NativeEligible bool
	NativeRan      bool
	NativeOutcome  Outcome
	// IdxVerified/IdxFailed are the parallel arm's runtime index-claim
	// verifier verdict counters (zero when every claim discharged
	// statically or the program has no subscripted subscripts).
	IdxVerified int64
	IdxFailed   int64
	// StreamEngaged reports that the stream arm actually ran the
	// chunked pipeline (as opposed to the materialized fallback), so
	// sweeps can count how often the window analysis admits generated
	// programs.
	StreamEngaged bool

	// fullProg retains the full-configuration compile for gogen
	// emission and native adoption.
	fullProg *core.Program
}

// Failed reports whether any backend disagreed with the reference.
func (c *Case) Failed() bool { return len(c.Mismatches) > 0 }

// FillInputs builds the deterministic input arrays for a program: each
// declared input is filled from a linear congruential generator seeded
// by the program seed and the array's position in name order. Values
// are dyadic rationals in [0,1) with 16-bit significands, so sums and
// power-of-two products stay exact in float64 and element-wise
// comparison across backends can be bitwise.
func FillInputs(p *gencomp.Program) map[string]*runtime.Strict {
	names := make([]string, 0, len(p.Inputs))
	for n := range p.Inputs {
		names = append(names, n)
	}
	sort.Strings(names)
	out := map[string]*runtime.Strict{}
	for i, n := range names {
		b := p.Inputs[n]
		a := runtime.NewStrict(runtime.Bounds{Lo: b.Lo, Hi: b.Hi})
		lcgFill(a.Data, inputSeed(p.Seed, i))
		out[n] = a
	}
	return out
}

// inputSeed derives the LCG seed for the i-th input (in name order).
func inputSeed(progSeed uint64, i int) uint64 {
	return progSeed*0x9E3779B97F4A7C15 + uint64(i+1)*0xBF58476D1CE4E5B9
}

// lcgFill fills data with dyadic rationals in [0,1).
func lcgFill(data []float64, seed uint64) {
	x := seed
	for i := range data {
		x = x*6364136223846793005 + 1442695040888963407
		data[i] = float64((x>>33)&0xFFFF) / 65536.0
	}
}

// RunCase compiles and runs one program under every ablation and
// cross-checks the interpreter outcomes against the thunked reference.
// The gogen backend is batched separately (RunGogenBatch) because it
// shells out to the Go toolchain.
func RunCase(p *gencomp.Program) *Case {
	c := &Case{Seed: p.Seed, Program: p, ByAblation: map[string]Outcome{}}
	inputs := FillInputs(p)
	for _, ab := range Ablations() {
		opts := ab.Opts
		opts.InputBounds = p.Inputs
		c.ByAblation[ab.Name] = runOnce(p, opts, inputs, ab.Name, c)
	}
	c.Ref = c.ByAblation[RefAblation]
	for _, ab := range Ablations() {
		if ab.Name == RefAblation {
			continue
		}
		if ok, detail := Agree(c.Ref, c.ByAblation[ab.Name]); !ok {
			c.Mismatches = append(c.Mismatches, Mismatch{
				Backend: "interp:" + ab.Name,
				Detail:  detail,
			})
		}
	}
	// The stencil specializer's contract is stronger than the matrix
	// default: interior/boundary splitting and the specialized kernels
	// perform the same float operations in the same order, so the
	// specialized (full) run must match the forced-off run bitwise,
	// not merely within tolerance.
	if ok, detail := BitwiseAgree(c.ByAblation["stencil"], c.ByAblation["full"]); !ok {
		c.Mismatches = append(c.Mismatches, Mismatch{
			Backend: "interp:stencil/bitwise",
			Detail:  detail,
		})
	}
	// The index-property layer's contract is bitwise too: a
	// claim-conditional plan either verifies its claims and runs the
	// unchecked fast path — same arithmetic, same order, no tracking —
	// or falls back to precisely the checked execution that the
	// NoIdxProp arm always performs.
	if ok, detail := BitwiseAgree(c.ByAblation["idxprop"], c.ByAblation["parallel"]); !ok {
		c.Mismatches = append(c.Mismatches, Mismatch{
			Backend: "interp:idxprop/bitwise",
			Detail:  detail,
		})
	}
	// The streaming engine's contract is the strongest of all: a
	// chunked pipeline stores exactly the values the materialized walk
	// stores (each element computed once, same closure semantics, and
	// the window invariants prove the operands identical), so the
	// stream arm must match full bitwise whether or not the pipeline
	// engaged.
	if ok, detail := BitwiseAgree(c.ByAblation["stream"], c.ByAblation["full"]); !ok {
		c.Mismatches = append(c.Mismatches, Mismatch{
			Backend: "interp:stream/bitwise",
			Detail:  detail,
		})
	}
	return c
}

// BitwiseAgree compares two outcomes element-wise at full precision:
// success must match success and every element must carry identical
// bits (NaNs of any payload compare equal). Used for pairs of
// configurations that are required to perform the same operations in
// the same order, where tolerance would mask a real divergence.
func BitwiseAgree(ref, got Outcome) (bool, string) {
	if ref.OK() != got.OK() {
		return false, fmt.Sprintf("reference %s, backend %s", ref, got)
	}
	if !ref.OK() {
		return true, ""
	}
	a, b := ref.Value, got.Value
	if !a.B.Equal(b.B) {
		return false, fmt.Sprintf("bounds differ: %v vs %v", a.B, b.B)
	}
	for i := range a.Data {
		x, y := a.Data[i], b.Data[i]
		if math.Float64bits(x) != math.Float64bits(y) && !(math.IsNaN(x) && math.IsNaN(y)) {
			return false, fmt.Sprintf("element %d differs bitwise: %v vs %v", i, x, y)
		}
	}
	return true, ""
}

// runOnce compiles and runs one configuration, converting panics and
// errors into Outcomes. The "full" arm's compiled program is retained
// on c for later gogen emission; the "parallel" arm's runtime claim
// verdicts are captured for corpus-coverage assertions.
func runOnce(p *gencomp.Program, opts core.Options, inputs map[string]*runtime.Strict, abName string, c *Case) (out Outcome) {
	defer func() {
		if r := recover(); r != nil {
			out = Outcome{Err: fmt.Sprintf("panic: %v", r)}
		}
	}()
	prog, err := core.CompileProgram(p.Prog, p.Params, opts)
	if err != nil {
		return Outcome{Err: err.Error(), CompileTime: true}
	}
	if abName == "full" {
		c.fullProg = prog
		c.GogenEligible = gogenEligible(prog)
	}
	if abName == "stream" {
		c.StreamEngaged = prog.StreamActive()
	}
	defer func() {
		if abName == "parallel" {
			snap := prog.IdxVerify.Snapshot()
			c.IdxVerified, c.IdxFailed = snap.Verified, snap.Failed
		}
	}()
	// Run on private clones: in-place plans may legitimately write
	// into arrays the harness reuses for the next configuration.
	run := map[string]*runtime.Strict{}
	for k, v := range inputs {
		run[k] = v.Clone()
	}
	res, err := prog.Run(run)
	if err != nil {
		return Outcome{Err: err.Error()}
	}
	return Outcome{Value: res}
}

// gogenEligible reports that every definition the program retained
// compiled to a loop-IR plan (thunked and group definitions cannot be
// emitted as Go loops).
func gogenEligible(prog *core.Program) bool {
	for _, name := range prog.Order {
		if prog.Defs[name].Plan == nil {
			return false
		}
	}
	return len(prog.Order) > 0
}

// Agree compares an outcome against the reference. Success must match
// success, and successful values must agree element-wise: bitwise
// equal, or within 1e-9 relative tolerance (NaN matches NaN, and
// infinities must match exactly). Error text is not compared — the
// three backends phrase the same ⊥/collision differently.
func Agree(ref, got Outcome) (bool, string) {
	if ref.OK() != got.OK() {
		return false, fmt.Sprintf("reference %s, backend %s", ref, got)
	}
	if !ref.OK() {
		return true, ""
	}
	a, b := ref.Value, got.Value
	if !a.B.Equal(b.B) {
		return false, fmt.Sprintf("bounds differ: %v vs %v", a.B, b.B)
	}
	for i := range a.Data {
		if !floatsAgree(a.Data[i], b.Data[i]) {
			return false, fmt.Sprintf("element %d differs: %v vs %v", i, a.Data[i], b.Data[i])
		}
	}
	return true, ""
}

func floatsAgree(a, b float64) bool {
	if a == b {
		return true
	}
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return false // non-equal infinities (or inf vs finite)
	}
	tol := 1e-9 * math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return math.Abs(a-b) <= tol
}

// Summary aggregates a corpus run for reporting.
type Summary struct {
	Programs int
	// PerAblation maps ablation name to ok/err counts (outcomes, not
	// verdicts: a clean both-error agreement counts under Err).
	PerAblation map[string]*AblationStats
	// GogenEligible / GogenRan / GogenAgreed count the emitted-Go leg.
	GogenEligible int
	GogenRan      int
	GogenAgreed   int
	// NativeEligible / NativeRan / NativeAgreed count the native-tier
	// leg (RunNativeBatch).
	NativeEligible int
	NativeRan      int
	NativeAgreed   int
	// IdxVerified / IdxFailed total the parallel arm's runtime
	// index-claim verifier verdicts across the corpus.
	IdxVerified int64
	IdxFailed   int64
	// StreamEngaged counts cases where the stream arm ran the chunked
	// pipeline rather than the materialized fallback.
	StreamEngaged int
	// Failures lists every case with at least one mismatch.
	Failures []*Case
}

// AblationStats counts one configuration's outcomes across the corpus.
type AblationStats struct {
	OK, Err, Mismatch int
}

// RunSeeds runs the oracle over a seed range. When withGogen is set the
// gogen-eligible cases are additionally emitted as one Go program and
// cross-checked via `go run` (a single toolchain invocation for the
// whole corpus). When withNative is set the eligible cases also run
// through the native execution tier (one batched plugin/exec build).
func RunSeeds(seeds []uint64, cfg gencomp.Config, withGogen, withNative bool) *Summary {
	s := &Summary{PerAblation: map[string]*AblationStats{}}
	for _, ab := range Ablations() {
		s.PerAblation[ab.Name] = &AblationStats{}
	}
	var cases []*Case
	for _, seed := range seeds {
		c := RunCase(gencomp.Generate(seed, cfg))
		cases = append(cases, c)
		s.Programs++
		for name, out := range c.ByAblation {
			st := s.PerAblation[name]
			if out.OK() {
				st.OK++
			} else {
				st.Err++
			}
		}
		for _, m := range c.Mismatches {
			if st, ok := s.PerAblation[strings.TrimPrefix(m.Backend, "interp:")]; ok {
				st.Mismatch++
			}
		}
		s.IdxVerified += c.IdxVerified
		s.IdxFailed += c.IdxFailed
		if c.StreamEngaged {
			s.StreamEngaged++
		}
	}
	if withGogen {
		RunGogenBatch(cases)
	}
	if withNative {
		RunNativeBatch(cases)
	}
	for _, c := range cases {
		if c.GogenEligible {
			s.GogenEligible++
		}
		if c.GogenRan {
			s.GogenRan++
			agreed := true
			for _, m := range c.Mismatches {
				if m.Backend == "gogen" {
					agreed = false
				}
			}
			if agreed {
				s.GogenAgreed++
			}
		}
		if c.NativeEligible {
			s.NativeEligible++
		}
		if c.NativeRan {
			s.NativeRan++
			agreed := true
			for _, m := range c.Mismatches {
				if m.Backend == "native" {
					agreed = false
				}
			}
			if agreed {
				s.NativeAgreed++
			}
		}
		if c.Failed() {
			s.Failures = append(s.Failures, c)
		}
	}
	return s
}

// String renders the per-ablation summary table.
func (s *Summary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "programs: %d\n", s.Programs)
	for _, ab := range Ablations() {
		st := s.PerAblation[ab.Name]
		role := ""
		if ab.Name == RefAblation {
			role = "  (reference)"
		}
		fmt.Fprintf(&b, "  %-12s ok %4d  err %4d  mismatch %d%s\n",
			ab.Name, st.OK, st.Err, st.Mismatch, role)
	}
	fmt.Fprintf(&b, "  %-12s eligible %d  ran %d  agreed %d\n",
		"gogen", s.GogenEligible, s.GogenRan, s.GogenAgreed)
	fmt.Fprintf(&b, "  %-12s eligible %d  ran %d  agreed %d\n",
		"native", s.NativeEligible, s.NativeRan, s.NativeAgreed)
	if s.IdxVerified+s.IdxFailed > 0 {
		fmt.Fprintf(&b, "  %-12s verified %d  failed %d\n", "idx-verify", s.IdxVerified, s.IdxFailed)
	}
	fmt.Fprintf(&b, "  %-12s engaged %d\n", "stream", s.StreamEngaged)
	fmt.Fprintf(&b, "failures: %d\n", len(s.Failures))
	return b.String()
}

// boundsOf evaluates a definition's concrete bounds the way the
// generator does (bigupd inherits its source's bounds). Used by the
// shrinker when a dropped definition becomes a free input.
func boundsOf(p *gencomp.Program, name string) (analysis.ArrayBounds, bool) {
	def := p.Prog.Def(name)
	if def == nil {
		b, ok := p.Inputs[name]
		return b, ok
	}
	seen := map[string]bool{}
	for def.Kind == lang.BigUpd {
		if seen[def.Name] {
			return analysis.ArrayBounds{}, false
		}
		seen[def.Name] = true
		src := p.Prog.Def(def.Source)
		if src == nil {
			b, ok := p.Inputs[def.Source]
			return b, ok
		}
		def = src
	}
	b, err := analysis.EvalBounds(def, p.Params)
	if err != nil {
		return analysis.ArrayBounds{}, false
	}
	return b, true
}
