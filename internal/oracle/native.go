package oracle

import (
	"fmt"

	"arraycomp/internal/core"
	"arraycomp/internal/native"
)

// RunNativeBatch runs every native-eligible case through the native
// execution tier and compares each outcome against the thunked
// reference. Like RunGogenBatch it batches the whole corpus into ONE
// toolchain invocation — every eligible case's loop-IR plans are
// emitted into a single module, built once, and adopted per program
// via the tier hot-swap. Where the gogen leg round-trips results
// through printed text, this leg exercises the real serving path:
// core.Program.Run dispatching to the loaded native plan, bit-exact.
//
// Cases whose full-configuration compile cannot be rendered as a
// native spec (thunked fallbacks, recursive groups, unemittable IR)
// are skipped, not failed. Mismatches are appended with backend
// "native".
func RunNativeBatch(cases []*Case) {
	type entry struct {
		c   *Case
		key string
	}
	var batch []entry
	var specs []native.ProgramSpec
	for i, c := range cases {
		if c.fullProg == nil {
			continue
		}
		// Corpus replays can share a seed, so the key folds in the batch
		// position to stay unique within the module.
		key := fmt.Sprintf("case%d_seed%d", i, c.Seed)
		spec, err := c.fullProg.NativeSpec(key)
		if err != nil {
			continue
		}
		c.NativeEligible = true
		batch = append(batch, entry{c: c, key: key})
		specs = append(specs, spec)
	}
	if len(specs) == 0 {
		return
	}
	mod, err := native.Build(specs, native.Options{})
	if err != nil {
		// A build failure of the batched module is itself a tiering
		// bug: report it against every eligible case.
		detail := fmt.Sprintf("native build failed: %v", err)
		for _, e := range batch {
			e.c.Mismatches = append(e.c.Mismatches, Mismatch{Backend: "native", Detail: detail})
		}
		return
	}
	defer mod.Close()

	for _, e := range batch {
		e.c.fullProg.AdoptNative(mod.Plan(e.key))
		inputs := FillInputs(e.c.Program)
		out := func() (o Outcome) {
			defer func() {
				if r := recover(); r != nil {
					o = Outcome{Err: fmt.Sprintf("panic: %v", r)}
				}
			}()
			res, tier, err := e.c.fullProg.RunTiered(inputs)
			if err != nil {
				return Outcome{Err: err.Error()}
			}
			if tier != core.TierNative {
				return Outcome{Err: fmt.Sprintf("adopted plan not used: served by %q", tier)}
			}
			return Outcome{Value: res}
		}()
		e.c.NativeRan = true
		e.c.NativeOutcome = out
		if agreed, detail := Agree(e.c.Ref, out); !agreed {
			e.c.Mismatches = append(e.c.Mismatches, Mismatch{Backend: "native", Detail: detail})
		}
	}
}
