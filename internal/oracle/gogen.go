package oracle

import (
	"bufio"
	"context"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"arraycomp/internal/gogen"
	"arraycomp/internal/runtime"
)

// RunGogenBatch emits every gogen-eligible case as functions inside a
// single Go main package, runs it once with `go run`, and compares
// each case's printed result against its reference outcome. Batching
// matters: one toolchain invocation per corpus instead of one per
// program keeps a 200-program short-mode run in seconds.
//
// Cases that fail emission (a plan uses an IR feature gogen does not
// cover yet) are skipped, not failed: emission coverage is a separate
// concern from semantic agreement. Mismatches are appended to each
// case's Mismatches with backend "gogen".
func RunGogenBatch(cases []*Case) {
	if _, err := exec.LookPath("go"); err != nil {
		return
	}
	type emitted struct {
		c      *Case
		driver string // body of the per-case run function
		funcs  []string
	}
	var batch []emitted
	for _, c := range cases {
		if !c.GogenEligible || c.fullProg == nil {
			continue
		}
		funcs, driver, err := emitCase(c, len(batch))
		if err != nil {
			continue
		}
		batch = append(batch, emitted{c: c, driver: driver, funcs: funcs})
	}
	if len(batch) == 0 {
		return
	}

	var b strings.Builder
	b.WriteString("package main\n\n")
	b.WriteString("import (\n\t\"fmt\"\n\t\"math\"\n)\n\n")
	b.WriteString("var _ = math.Abs\n\n")
	b.WriteString("// fill loads deterministic dyadic inputs, mirroring oracle.lcgFill.\n")
	b.WriteString("func fill(n int, seed uint64) []float64 {\n")
	b.WriteString("\tout := make([]float64, n)\n\tx := seed\n\tfor i := range out {\n")
	b.WriteString("\t\tx = x*6364136223846793005 + 1442695040888963407\n")
	b.WriteString("\t\tout[i] = float64((x>>33)&0xFFFF) / 65536.0\n\t}\n\treturn out\n}\n\n")
	b.WriteString("func main() {\n")
	for i := range batch {
		fmt.Fprintf(&b, "\trunCase%d()\n", i)
	}
	b.WriteString("}\n\n")
	for i, e := range batch {
		fmt.Fprintf(&b, "func runCase%d() {\n", i)
		fmt.Fprintf(&b, "\tdefer func() {\n\t\tif r := recover(); r != nil {\n\t\t\tfmt.Printf(\"case %d err %%v\\n\", r)\n\t\t}\n\t}()\n", i)
		b.WriteString(strings.ReplaceAll(e.driver, "%CASE%", strconv.Itoa(i)))
		b.WriteString("}\n\n")
		for _, f := range e.funcs {
			b.WriteString(f)
			b.WriteString("\n")
		}
	}

	dir, err := os.MkdirTemp("", "oracle-gogen")
	if err != nil {
		return
	}
	defer os.RemoveAll(dir)
	if err := os.WriteFile(filepath.Join(dir, "main.go"), []byte(b.String()), 0o644); err != nil {
		return
	}
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module gen\n\ngo 1.24\n"), 0o644); err != nil {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	cmd := exec.CommandContext(ctx, "go", "run", ".")
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "GOFLAGS=-mod=mod")
	out, err := cmd.CombinedOutput()
	if err != nil {
		// A build failure of the emitted batch is itself a gogen bug:
		// report it against every batched case rather than dropping it.
		detail := fmt.Sprintf("go run failed: %v: %s", err, truncate(string(out), 400))
		for _, e := range batch {
			e.c.Mismatches = append(e.c.Mismatches, Mismatch{Backend: "gogen", Detail: detail})
		}
		return
	}

	// Parse "case <i> ok <n> v…" / "case <i> err <msg>" lines.
	outcomes := map[int]Outcome{}
	sc := bufio.NewScanner(strings.NewReader(string(out)))
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 3 || fields[0] != "case" {
			continue
		}
		idx, err := strconv.Atoi(fields[1])
		if err != nil {
			continue
		}
		if fields[2] == "err" {
			outcomes[idx] = Outcome{Err: strings.Join(fields[3:], " ")}
			continue
		}
		vals := make([]float64, 0, len(fields)-4)
		bad := false
		for _, f := range fields[4:] {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				bad = true
				break
			}
			vals = append(vals, v)
		}
		if bad {
			continue
		}
		outcomes[idx] = Outcome{Value: valueFromFlat(vals)}
	}

	for i, e := range batch {
		got, ok := outcomes[i]
		if !ok {
			e.c.Mismatches = append(e.c.Mismatches, Mismatch{
				Backend: "gogen", Detail: "emitted program printed no outcome for this case",
			})
			continue
		}
		e.c.GogenRan = true
		e.c.GogenOutcome = got
		if agreed, detail := agreeFlat(e.c.Ref, got); !agreed {
			e.c.Mismatches = append(e.c.Mismatches, Mismatch{Backend: "gogen", Detail: detail})
		}
	}
}

// emitCase renders one case's compiled plans as Go functions plus the
// driver body that chains them the way core.Program.Run does: inputs
// filled by the shared LCG, each definition's function called in
// schedule order, in-place sources cloned when the compiler marked
// them live.
func emitCase(c *Case, uniq int) (funcs []string, driver string, err error) {
	prog := c.fullProg
	var b strings.Builder

	// Inputs in sorted-name order, matching FillInputs.
	names := make([]string, 0, len(c.Program.Inputs))
	for n := range c.Program.Inputs {
		names = append(names, n)
	}
	sort.Strings(names)
	for i, n := range names {
		bounds := c.Program.Inputs[n]
		fmt.Fprintf(&b, "\t%s := fill(%d, %d)\n", n, bounds.Size(), inputSeed(c.Seed, i))
		fmt.Fprintf(&b, "\t_ = %s\n", n) // the program may not read every input
	}

	caseID := fmt.Sprintf("c%d", uniq)
	for _, name := range prog.Order {
		cd := prog.Defs[name]
		fnName := fmt.Sprintf("%s_%s", caseID, name)
		src, params, results, err := gogen.EmitFunc(cd.Plan.Program, fnName)
		if err != nil {
			return nil, "", err
		}
		if len(results) != 1 {
			return nil, "", fmt.Errorf("plan for %s has %d results", name, len(results))
		}
		funcs = append(funcs, src)

		args := make([]string, len(params))
		for i, p := range params {
			args[i] = p
		}
		if cd.Plan.InPlace && cd.CloneSource {
			// Defensive clone, mirroring core.Program.Run.
			clone := name + "Src"
			fmt.Fprintf(&b, "\t%s := append([]float64(nil), %s...)\n", clone, cd.Def.Source)
			for i, p := range params {
				if p == cd.Def.Source {
					args[i] = clone
				}
			}
		}
		errVar := "err" + name
		fmt.Fprintf(&b, "\t%s, %s := %s(%s)\n", name, errVar, fnName, strings.Join(args, ", "))
		fmt.Fprintf(&b, "\t_ = %s\n", name)
		fmt.Fprintf(&b, "\tif %s != nil {\n\t\tfmt.Printf(\"case %%d err %%v\\n\", %%CASE%%, %s)\n\t\treturn\n\t}\n", errVar, errVar)
	}
	fmt.Fprintf(&b, "\tfmt.Printf(\"case %%d ok %%d\", %%CASE%%, len(%s))\n", prog.Result)
	fmt.Fprintf(&b, "\tfor _, v := range %s {\n\t\tfmt.Printf(\" %%.17g\", v)\n\t}\n\tfmt.Println()\n", prog.Result)
	return funcs, b.String(), nil
}

// valueFromFlat wraps printed values for comparison; only the flat
// data matters (agreeFlat ignores the placeholder bounds).
func valueFromFlat(vals []float64) *runtime.Strict {
	return &runtime.Strict{B: runtime.NewBounds1(0, int64(len(vals))-1), Data: vals}
}

// agreeFlat compares the reference against a parsed gogen outcome. The
// emitted program prints flat data with no bounds, so only length and
// elements are compared (the compiled plan's bounds equal the
// reference bounds by construction — core validated them).
func agreeFlat(ref, got Outcome) (bool, string) {
	if ref.OK() != got.OK() {
		return false, fmt.Sprintf("reference %s, gogen %s", ref, got)
	}
	if !ref.OK() {
		return true, ""
	}
	a, b := ref.Value.Data, got.Value.Data
	if len(a) != len(b) {
		return false, fmt.Sprintf("length differs: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if !floatsAgree(a[i], b[i]) {
			return false, fmt.Sprintf("element %d differs: %v vs %v", i, a[i], b[i])
		}
	}
	return true, ""
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "…"
}
