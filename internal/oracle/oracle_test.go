package oracle

import (
	"math"
	"path/filepath"
	"testing"

	"arraycomp/internal/gencomp"
	"arraycomp/internal/lang"
	"arraycomp/internal/parser"
	"arraycomp/internal/runtime"
)

// TestOracleGenerated is the headline differential test: hundreds of
// generated programs, every Options ablation cross-checked against the
// thunked reference, the gogen-eligible subset additionally built and
// executed as native Go in one batched `go run`, and the same subset
// run through the native execution tier (batched plugin/exec build,
// adopted via the tier hot-swap).
func TestOracleGenerated(t *testing.T) {
	n := 400
	if testing.Short() {
		n = 220
	}
	seeds := make([]uint64, n)
	for i := range seeds {
		seeds[i] = uint64(i)
	}
	s := RunSeeds(seeds, gencomp.Config{}, true, true)
	t.Logf("\n%s", s)
	if s.Programs != n {
		t.Fatalf("ran %d programs, want %d", s.Programs, n)
	}
	for _, c := range s.Failures {
		min := ShrinkFailure(c)
		t.Errorf("seed %d disagrees: %v\nminimized:\n%s", c.Seed, c.Mismatches, min.Program.Source)
		if len(s.Failures) > 5 {
			break
		}
	}
	// The corpus must actually exercise all three backends: a corpus
	// where nothing is gogen-eligible (or nothing errors, or nothing
	// succeeds) would be vacuous.
	if s.GogenRan < 20 {
		t.Errorf("only %d cases ran on the gogen backend", s.GogenRan)
	}
	if s.GogenRan != s.GogenAgreed {
		t.Errorf("gogen: %d ran but only %d agreed", s.GogenRan, s.GogenAgreed)
	}
	if s.NativeRan < 20 {
		t.Errorf("only %d cases ran on the native tier", s.NativeRan)
	}
	if s.StreamEngaged < 20 {
		t.Errorf("only %d cases engaged the streaming pipeline", s.StreamEngaged)
	}
	if s.NativeRan != s.NativeAgreed {
		t.Errorf("native: %d ran but only %d agreed", s.NativeRan, s.NativeAgreed)
	}
	full := s.PerAblation["full"]
	if full.OK == 0 || full.Err == 0 {
		t.Errorf("corpus lacks outcome variety: ok=%d err=%d", full.OK, full.Err)
	}
}

// TestOracleSeedCorpus replays every checked-in regression program.
// Programs land here whenever the fuzzer minimizes a failure, so this
// test is the permanent memorial of every bug the oracle ever caught.
func TestOracleSeedCorpus(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "*.hacc"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no corpus files in testdata/")
	}
	var cases []*Case
	for _, f := range files {
		p, err := LoadCorpusFile(f)
		if err != nil {
			t.Fatalf("load %s: %v", f, err)
		}
		c := RunCase(p)
		cases = append(cases, c)
		if c.Failed() {
			t.Errorf("%s: %v", f, c.Mismatches)
		}
	}
	RunGogenBatch(cases)
	RunNativeBatch(cases)
	for i, c := range cases {
		if c.Failed() {
			t.Errorf("%s (after gogen+native): %v", files[i], c.Mismatches)
		}
	}
}

// TestAgree pins the comparator's semantics.
func TestAgree(t *testing.T) {
	mk := func(vals ...float64) Outcome {
		a := runtime.NewStrict(runtime.NewBounds1(0, int64(len(vals))-1))
		copy(a.Data, vals)
		return Outcome{Value: a}
	}
	errOut := Outcome{Err: "collision at 3"}
	nan := math.NaN()
	inf := math.Inf(1)
	tests := []struct {
		name     string
		ref, got Outcome
		want     bool
	}{
		{"both ok equal", mk(1, 2.5), mk(1, 2.5), true},
		{"both ok within tol", mk(1e9), mk(1e9 + 0.5), true},
		{"both ok differ", mk(1, 2), mk(1, 3), false},
		{"ok vs err", mk(1), errOut, false},
		{"err vs ok", errOut, mk(1), false},
		{"both err (texts differ)", errOut, Outcome{Err: "⊥ at 0"}, true},
		{"nan matches nan", mk(nan), mk(nan), true},
		{"nan vs number", mk(nan), mk(0), false},
		{"inf matches inf", mk(inf), mk(inf), true},
		{"inf vs -inf", mk(inf), mk(math.Inf(-1)), false},
		{"inf vs finite", mk(inf), mk(1e308), false},
	}
	for _, tt := range tests {
		if got, detail := Agree(tt.ref, tt.got); got != tt.want {
			t.Errorf("%s: Agree = %v (%s), want %v", tt.name, got, detail, tt.want)
		}
	}
	a := mk(1, 2)
	b := mk(1, 2)
	b.Value.B = runtime.NewBounds1(1, 2)
	if ok, _ := Agree(a, b); ok {
		t.Error("bounds mismatch not detected")
	}
}

// TestShrink minimizes an error-shaped program under the property
// "the reference still errors" and checks the result is no larger and
// still failing — the CLI's shrink-report path in miniature.
func TestShrink(t *testing.T) {
	var prog *gencomp.Program
	for seed := uint64(0); seed < 500; seed++ {
		p := gencomp.Generate(seed, gencomp.Config{})
		if len(p.Prog.Defs) >= 2 && !RunCase(p).Ref.OK() {
			prog = p
			break
		}
	}
	if prog == nil {
		t.Fatal("no multi-definition erroring program in the first 500 seeds")
	}
	prop := func(p *gencomp.Program) bool { return !RunCase(p).Ref.OK() }
	small := Shrink(prog, prop)
	if !prop(small) {
		t.Fatal("shrink result no longer satisfies the property")
	}
	if len(small.Prog.Defs) > len(prog.Prog.Defs) {
		t.Errorf("shrink grew the program: %d -> %d defs", len(prog.Prog.Defs), len(small.Prog.Defs))
	}
	if len(small.Source) > len(prog.Source) {
		t.Errorf("shrink grew the source: %d -> %d bytes", len(prog.Source), len(small.Source))
	}
	if _, err := parser.ParseProgram(small.Source); err != nil {
		t.Errorf("shrunk source does not parse: %v", err)
	}
}

// TestFillInputsDeterministic pins the input-filling contract the
// emitted gogen driver replicates.
func TestFillInputsDeterministic(t *testing.T) {
	p := gencomp.Generate(7, gencomp.Config{})
	a := FillInputs(p)
	b := FillInputs(p)
	for name := range a {
		if !a[name].EqualWithin(b[name], 0) {
			t.Fatalf("input %s not deterministic", name)
		}
		for _, v := range a[name].Data {
			if v < 0 || v >= 1 {
				t.Fatalf("input %s value %v outside [0,1)", name, v)
			}
			if v*65536 != math.Trunc(v*65536) {
				t.Fatalf("input %s value %v is not a 16-bit dyadic rational", name, v)
			}
		}
	}
}

// FuzzCompileRoundTrip is the native fuzz target: any byte-derived
// seed must generate a program that round-trips through the printer
// and parser and whose ablation outcomes all agree with the reference.
// Run with: go test ./internal/oracle -fuzz FuzzCompileRoundTrip
func FuzzCompileRoundTrip(f *testing.F) {
	for seed := uint64(0); seed < 16; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed uint64) {
		p := gencomp.Generate(seed, gencomp.Config{})
		reparsed, err := parser.ParseProgram(p.Source)
		if err != nil {
			t.Fatalf("seed %d: generated source does not parse: %v\n%s", seed, err, p.Source)
		}
		if again := lang.ProgramString(reparsed); again != p.Source {
			t.Fatalf("seed %d: print/parse/print not a fixpoint", seed)
		}
		c := RunCase(p)
		if c.Failed() {
			min := ShrinkFailure(c)
			t.Fatalf("seed %d: backends disagree: %v\nminimized:\n%s",
				seed, c.Mismatches, min.Program.Source)
		}
	})
}
