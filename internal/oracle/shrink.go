package oracle

import (
	"arraycomp/internal/analysis"
	"arraycomp/internal/gencomp"
	"arraycomp/internal/lang"
	"arraycomp/internal/parser"
)

// Property reports whether a candidate program still exhibits the
// failure being minimized (typically "some backend disagrees with the
// reference").
type Property func(p *gencomp.Program) bool

// Shrink greedily minimizes a failing program while Property holds:
// whole definitions are dropped (their name becomes a free input so
// later reads stay compilable), ++ alternatives are reduced to single
// parts, and guards are stripped. Each accepted step restarts the
// scan, and the search is bounded, so Shrink always terminates with a
// program at least as small as the input and still failing.
func Shrink(p *gencomp.Program, prop Property) *gencomp.Program {
	const maxSteps = 400
	steps := 0
	cur := p
	for {
		accepted := false
		for _, cand := range candidates(cur) {
			steps++
			if steps > maxSteps {
				return cur
			}
			if prop(cand) {
				cur = cand
				accepted = true
				break
			}
		}
		if !accepted {
			return cur
		}
	}
}

// candidates enumerates one-step reductions, smallest-result first.
func candidates(p *gencomp.Program) []*gencomp.Program {
	var out []*gencomp.Program

	// Drop a non-result definition, promoting it to a free input so
	// remaining reads of it still compile (the harness fills inputs
	// deterministically, so the property stays reproducible).
	for i := range p.Prog.Defs {
		name := p.Prog.Defs[i].Name
		if name == p.Prog.Result || len(p.Prog.Defs) == 1 {
			continue
		}
		b, ok := boundsOf(p, name)
		if !ok {
			continue
		}
		c := cloneProgram(p)
		c.Prog.Defs = append(c.Prog.Defs[:i:i], c.Prog.Defs[i+1:]...)
		c.Inputs[name] = b
		if finish(c) {
			out = append(out, c)
		}
	}

	// Reduce a ++ to one of its parts.
	for d := range p.Prog.Defs {
		nAppends := countNodes(p.Prog.Defs[d].Comp, isAppend)
		for ai := 0; ai < nAppends; ai++ {
			parts := appendArity(p.Prog.Defs[d].Comp, ai)
			for pi := 0; pi < parts; pi++ {
				c := cloneProgram(p)
				seen := 0
				c.Prog.Defs[d].Comp = transformComp(c.Prog.Defs[d].Comp, func(n lang.CompNode) lang.CompNode {
					app, ok := n.(*lang.Append)
					if !ok {
						return n
					}
					if seen != ai {
						seen++
						return n
					}
					seen++
					return app.Parts[pi]
				})
				if finish(c) {
					out = append(out, c)
				}
			}
		}
	}

	// Strip a guard.
	for d := range p.Prog.Defs {
		nGuards := countNodes(p.Prog.Defs[d].Comp, isGuard)
		for gi := 0; gi < nGuards; gi++ {
			c := cloneProgram(p)
			seen := 0
			c.Prog.Defs[d].Comp = transformComp(c.Prog.Defs[d].Comp, func(n lang.CompNode) lang.CompNode {
				g, ok := n.(*lang.Guard)
				if !ok {
					return n
				}
				if seen != gi {
					seen++
					return n
				}
				seen++
				return g.Body
			})
			if finish(c) {
				out = append(out, c)
			}
		}
	}
	return out
}

// cloneProgram deep-copies via the concrete syntax: printing and
// re-parsing is the one copy path guaranteed to stay in sync with the
// AST (gencomp's round-trip test enforces the fixpoint).
func cloneProgram(p *gencomp.Program) *gencomp.Program {
	prog, err := parser.ParseProgram(p.Source)
	if err != nil {
		// Source came from ProgramString, so this cannot happen for
		// generator output; fall back to the original on corruption.
		return p
	}
	params := make(map[string]int64, len(p.Params))
	for k, v := range p.Params {
		params[k] = v
	}
	inputs := make(map[string]analysis.ArrayBounds, len(p.Inputs))
	for k, v := range p.Inputs {
		inputs[k] = v
	}
	return &gencomp.Program{Seed: p.Seed, Prog: prog, Params: params, Inputs: inputs}
}

// finish re-renders the candidate's source and validates it still
// parses (a reduction that breaks concrete syntax is discarded).
func finish(c *gencomp.Program) bool {
	c.Source = lang.ProgramString(c.Prog)
	_, err := parser.ParseProgram(c.Source)
	return err == nil
}

// transformComp rewrites a comprehension tree top-down.
func transformComp(n lang.CompNode, f func(lang.CompNode) lang.CompNode) lang.CompNode {
	n = f(n)
	switch x := n.(type) {
	case *lang.Generator:
		x.Body = transformComp(x.Body, f)
	case *lang.Guard:
		x.Body = transformComp(x.Body, f)
	case *lang.Append:
		for i := range x.Parts {
			x.Parts[i] = transformComp(x.Parts[i], f)
		}
	case *lang.CompLet:
		x.Body = transformComp(x.Body, f)
	}
	return n
}

func isAppend(n lang.CompNode) bool { _, ok := n.(*lang.Append); return ok }
func isGuard(n lang.CompNode) bool  { _, ok := n.(*lang.Guard); return ok }

// countNodes counts nodes matching pred in pre-order.
func countNodes(n lang.CompNode, pred func(lang.CompNode) bool) int {
	count := 0
	var walk func(lang.CompNode)
	walk = func(n lang.CompNode) {
		if pred(n) {
			count++
		}
		switch x := n.(type) {
		case *lang.Generator:
			walk(x.Body)
		case *lang.Guard:
			walk(x.Body)
		case *lang.Append:
			for _, p := range x.Parts {
				walk(p)
			}
		case *lang.CompLet:
			walk(x.Body)
		}
	}
	walk(n)
	return count
}

// appendArity returns the part count of the idx-th Append in pre-order.
func appendArity(n lang.CompNode, idx int) int {
	arity := 0
	seen := 0
	var walk func(lang.CompNode)
	walk = func(n lang.CompNode) {
		if app, ok := n.(*lang.Append); ok {
			if seen == idx {
				arity = len(app.Parts)
			}
			seen++
		}
		switch x := n.(type) {
		case *lang.Generator:
			walk(x.Body)
		case *lang.Guard:
			walk(x.Body)
		case *lang.Append:
			for _, p := range x.Parts {
				walk(p)
			}
		case *lang.CompLet:
			walk(x.Body)
		}
	}
	walk(n)
	return arity
}

// ShrinkFailure minimizes a failing case with the standard property:
// "RunCase still reports a mismatch" (interpreter ablations only; the
// gogen leg is excluded from the inner loop to avoid one toolchain
// invocation per candidate). Returns the minimized case.
func ShrinkFailure(c *Case) *Case {
	small := Shrink(c.Program, func(p *gencomp.Program) bool {
		return RunCase(p).Failed()
	})
	return RunCase(small)
}
