package runtime

// Incremental-array runtime schemes (paper section 9). These are the
// run-time fallbacks the paper contrasts with compile-time scheduling:
// naive copying, trailers, and reference counting. All present the
// same persistent interface: Upd returns the updated array value
// without (observably) changing the old one.

// CopyArray is the naive persistent array: every update copies the
// whole store. Semantically bulletproof, operationally the worst case
// the paper's analysis eliminates.
type CopyArray struct {
	B    Bounds
	data []float64
}

// NewCopyArray builds a copying array from a strict array (shared
// nothing).
func NewCopyArray(s *Strict) *CopyArray {
	data := make([]float64, len(s.Data))
	copy(data, s.Data)
	return &CopyArray{B: s.B, data: data}
}

// At reads an element.
func (a *CopyArray) At(subs ...int64) float64 {
	off, err := a.B.LinearChecked(subs)
	if err != nil {
		panic(err)
	}
	return a.data[off]
}

// Upd returns a new array with one element replaced; O(n) copy.
func (a *CopyArray) Upd(v float64, subs ...int64) *CopyArray {
	off, err := a.B.LinearChecked(subs)
	if err != nil {
		panic(err)
	}
	data := make([]float64, len(a.data))
	copy(data, a.data)
	data[off] = v
	return &CopyArray{B: a.B, data: data}
}

// Freeze snapshots to a strict array.
func (a *CopyArray) Freeze() *Strict {
	out := NewStrict(a.B)
	copy(out.Data, a.data)
	return out
}

// --- trailer (version-list) arrays ---

// trailerStore is the shared mutable master owned by the newest version.
type trailerStore struct {
	b    Bounds
	data []float64
}

// trailEntry shadows one element for an older version.
type trailEntry struct {
	off  int64
	old  float64
	next *VersionArray // the version this entry rolls forward to
}

// VersionArray is a trailer array version handle. The newest version
// reads the master directly (O(1)); older versions chase their trail
// toward the master, paying for the updates made since. Updating the
// newest version is O(1); updating an older version rebuilds a fresh
// master (O(n)).
type VersionArray struct {
	store *trailerStore
	trail *trailEntry // nil for the newest version
}

// NewVersionArray builds a trailer array from a strict array.
func NewVersionArray(s *Strict) *VersionArray {
	data := make([]float64, len(s.Data))
	copy(data, s.Data)
	return &VersionArray{store: &trailerStore{b: s.B, data: data}}
}

// Bounds returns the array bounds.
func (a *VersionArray) Bounds() Bounds { return a.store.b }

// Current reports whether this handle is the newest version.
func (a *VersionArray) Current() bool { return a.trail == nil }

// At reads an element, chasing the trail if this is an old version.
func (a *VersionArray) At(subs ...int64) float64 {
	off, err := a.store.b.LinearChecked(subs)
	if err != nil {
		panic(err)
	}
	for v := a; ; {
		if v.trail == nil {
			return v.store.data[off]
		}
		if v.trail.off == off {
			return v.trail.old
		}
		v = v.trail.next
	}
}

// Upd returns the updated array. On the newest version this is O(1):
// the old value moves into a trail entry on the receiver and the new
// handle takes over the master. On an older version the visible
// contents are copied out first.
func (a *VersionArray) Upd(v float64, subs ...int64) *VersionArray {
	off, err := a.store.b.LinearChecked(subs)
	if err != nil {
		panic(err)
	}
	if a.trail == nil {
		next := &VersionArray{store: a.store}
		a.trail = &trailEntry{off: off, old: a.store.data[off], next: next}
		a.store.data[off] = v
		return next
	}
	// Old version: rebuild.
	fresh := a.Freeze()
	out := NewVersionArray(fresh)
	out.store.data[off] = v
	return out
}

// Freeze snapshots this version's contents to a strict array.
func (a *VersionArray) Freeze() *Strict {
	out := NewStrict(a.store.b)
	for off := int64(0); off < a.store.b.Size(); off++ {
		out.Data[off] = a.atLinear(off)
	}
	return out
}

func (a *VersionArray) atLinear(off int64) float64 {
	for v := a; ; {
		if v.trail == nil {
			return v.store.data[off]
		}
		if v.trail.off == off {
			return v.trail.old
		}
		v = v.trail.next
	}
}

// TrailLength returns how many trail entries this version must chase
// to reach the master — a measure of how stale the handle is.
func (a *VersionArray) TrailLength() int {
	n := 0
	for v := a; v.trail != nil; v = v.trail.next {
		n++
	}
	return n
}

// --- reference-counted arrays ---

// RCArray updates in place when it holds the only reference, copying
// otherwise — the run-time single-threadedness check the paper's
// compile-time analysis replaces.
type RCArray struct {
	B    Bounds
	data []float64
	refs *int
}

// NewRCArray builds a reference-counted array (refcount 1).
func NewRCArray(s *Strict) *RCArray {
	data := make([]float64, len(s.Data))
	copy(data, s.Data)
	one := 1
	return &RCArray{B: s.B, data: data, refs: &one}
}

// Retain registers another reference to the same storage.
func (a *RCArray) Retain() *RCArray {
	*a.refs++
	return &RCArray{B: a.B, data: a.data, refs: a.refs}
}

// Release drops this handle's reference.
func (a *RCArray) Release() {
	*a.refs--
}

// Refs returns the current reference count.
func (a *RCArray) Refs() int { return *a.refs }

// At reads an element.
func (a *RCArray) At(subs ...int64) float64 {
	off, err := a.B.LinearChecked(subs)
	if err != nil {
		panic(err)
	}
	return a.data[off]
}

// Upd returns the updated array: in place when single-threaded
// (refcount 1), a copy otherwise.
func (a *RCArray) Upd(v float64, subs ...int64) *RCArray {
	off, err := a.B.LinearChecked(subs)
	if err != nil {
		panic(err)
	}
	if *a.refs == 1 {
		a.data[off] = v
		return a
	}
	data := make([]float64, len(a.data))
	copy(data, a.data)
	data[off] = v
	*a.refs--
	one := 1
	return &RCArray{B: a.B, data: data, refs: &one}
}

// Freeze snapshots to a strict array.
func (a *RCArray) Freeze() *Strict {
	out := NewStrict(a.B)
	copy(out.Data, a.data)
	return out
}
