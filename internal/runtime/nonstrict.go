package runtime

import (
	"errors"
	"fmt"
)

// Cell evaluation states of a non-strict array element.
const (
	cellEmpty      uint8 = iota // no definition: the element is an "empty"
	cellThunk                   // defined but not yet evaluated
	cellInProgress              // being evaluated: re-entry means ⊥ (black hole)
	cellValue                   // evaluated
)

// Errors reported by non-strict array operations.
var (
	// ErrBlackHole: an element's value depends on itself — the element
	// is ⊥ and, in a strict context, so is the whole array.
	ErrBlackHole = errors.New("runtime: <<loop>> element depends on itself (⊥)")
	// ErrEmpty: an element with no definition was demanded.
	ErrEmpty = errors.New("runtime: undefined array element (empty)")
	// ErrCollision: a monolithic array element received two definitions.
	ErrCollision = errors.New("runtime: write collision (element defined twice)")
)

// Thunk is a delayed element computation. It may force other elements
// of the same (or another) array, and reports their errors upward.
type Thunk func() (float64, error)

// NonStrict is the general representation of a non-strict monolithic
// array: every element is a thunk evaluated on demand, memoized after
// the first force, with black-hole detection for circular dependences.
// This is the representation the paper's compiler falls back to when no
// safe static schedule exists, and the baseline its thunkless code is
// measured against.
type NonStrict struct {
	B      Bounds
	state  []uint8
	value  []float64
	thunks []Thunk
}

// NewNonStrict allocates an array of empties.
func NewNonStrict(b Bounds) *NonStrict {
	n := b.Size()
	return &NonStrict{
		B:      b,
		state:  make([]uint8, n),
		value:  make([]float64, n),
		thunks: make([]Thunk, n),
	}
}

// Define installs the thunk for one subscript/value pair. Defining an
// element twice is a write collision.
func (a *NonStrict) Define(subs []int64, t Thunk) error {
	off, err := a.B.LinearChecked(subs)
	if err != nil {
		return err
	}
	return a.DefineLinear(off, t)
}

// DefineLinear installs a thunk by linear offset.
func (a *NonStrict) DefineLinear(off int64, t Thunk) error {
	if a.state[off] != cellEmpty {
		return fmt.Errorf("%w: offset %d (subscript %v)", ErrCollision, off, a.B.Unlinear(off))
	}
	a.state[off] = cellThunk
	a.thunks[off] = t
	return nil
}

// At forces and returns the element at the subscript tuple.
func (a *NonStrict) At(subs ...int64) (float64, error) {
	off, err := a.B.LinearChecked(subs)
	if err != nil {
		return 0, err
	}
	return a.AtLinear(off)
}

// AtLinear forces and returns the element at a linear offset,
// memoizing the result and detecting black holes.
func (a *NonStrict) AtLinear(off int64) (float64, error) {
	switch a.state[off] {
	case cellValue:
		return a.value[off], nil
	case cellEmpty:
		return 0, fmt.Errorf("%w: subscript %v", ErrEmpty, a.B.Unlinear(off))
	case cellInProgress:
		return 0, fmt.Errorf("%w: subscript %v", ErrBlackHole, a.B.Unlinear(off))
	}
	a.state[off] = cellInProgress
	v, err := a.thunks[off]()
	if err != nil {
		// Leave the black hole in place: the element is ⊥.
		return 0, err
	}
	a.state[off] = cellValue
	a.value[off] = v
	a.thunks[off] = nil // allow the closure to be collected
	return v, nil
}

// Defined reports whether the element has a definition (evaluated or not).
func (a *NonStrict) Defined(subs ...int64) bool {
	off, err := a.B.LinearChecked(subs)
	if err != nil {
		return false
	}
	return a.state[off] != cellEmpty
}

// ForceElements is the paper's force-elements: demand every element,
// returning the strictified array. If any element is ⊥ (black hole) or
// an empty, the whole result is ⊥, reported as an error.
func (a *NonStrict) ForceElements() (*Strict, error) {
	out := NewStrict(a.B)
	for off := int64(0); off < a.B.Size(); off++ {
		v, err := a.AtLinear(off)
		if err != nil {
			return nil, err
		}
		out.Data[off] = v
	}
	return out, nil
}

// DefinedCount returns how many elements have definitions, used by the
// straight-line empties check (count == size together with no
// collisions and in-bounds writes ⇒ subscripts form a permutation).
func (a *NonStrict) DefinedCount() int64 {
	var n int64
	for _, s := range a.state {
		if s != cellEmpty {
			n++
		}
	}
	return n
}
