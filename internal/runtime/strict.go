package runtime

import "fmt"

// Strict is a fully evaluated array: flat float64 storage with
// constant-time access, the target representation of thunkless
// compilation and the "Fortran array" baseline.
type Strict struct {
	B    Bounds
	Data []float64
}

// NewStrict allocates a zero-filled strict array.
func NewStrict(b Bounds) *Strict {
	return &Strict{B: b, Data: make([]float64, b.Size())}
}

// At returns the element at the subscript tuple (range-checked).
func (a *Strict) At(subs ...int64) float64 {
	off, err := a.B.LinearChecked(subs)
	if err != nil {
		panic(err)
	}
	return a.Data[off]
}

// Set stores the element at the subscript tuple (range-checked).
func (a *Strict) Set(v float64, subs ...int64) {
	off, err := a.B.LinearChecked(subs)
	if err != nil {
		panic(err)
	}
	a.Data[off] = v
}

// AtLinear returns the element at a row-major offset with no check —
// the constant-time path compiled loops use.
func (a *Strict) AtLinear(off int64) float64 { return a.Data[off] }

// SetLinear stores at a row-major offset with no check.
func (a *Strict) SetLinear(off int64, v float64) { a.Data[off] = v }

// Clone returns an independent copy.
func (a *Strict) Clone() *Strict {
	out := NewStrict(a.B)
	copy(out.Data, a.Data)
	return out
}

// EqualWithin reports elementwise equality within eps.
func (a *Strict) EqualWithin(o *Strict, eps float64) bool {
	if !a.B.Equal(o.B) || len(a.Data) != len(o.Data) {
		return false
	}
	for i := range a.Data {
		d := a.Data[i] - o.Data[i]
		if d < -eps || d > eps {
			return false
		}
	}
	return true
}

// String summarizes the array.
func (a *Strict) String() string {
	return fmt.Sprintf("array %s [%d elements]", a.B, len(a.Data))
}
