// Package runtime provides the array representations the paper
// discusses, both the expensive general ones and the cheap specialized
// ones that subscript analysis unlocks:
//
//   - NonStrict: the fully general non-strict monolithic array whose
//     elements are thunks forced on demand, with black-hole detection
//     for circular element dependences (an element whose value is ⊥).
//     This is the representation a compiler must fall back to when it
//     cannot find a safe static schedule.
//   - Strict: a flat float64 vector with constant-time access — the
//     representation thunkless compiled code uses, and the baseline
//     imperative arrays are measured by.
//   - Accum: Haskell's accumArray (zero or more definitions per
//     element combined by a function, with a default).
//   - Version (trailer) arrays and reference-counted arrays: the
//     classic run-time schemes for incremental update the paper's
//     section 9 contrasts with compile-time scheduled in-place update.
//
// Bounds follow Haskell's `array (l,u)` convention: inclusive on both
// ends, any rank, row-major linearization.
package runtime
