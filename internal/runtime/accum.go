package runtime

import "fmt"

// CombineFunc combines an element's current value with a newly supplied
// one; it is applied as combine(old, new).
type CombineFunc func(old, new float64) float64

// Combiner looks up a named combining function. The names match the
// surface syntax (lang.AccumSpec.Combine).
func Combiner(name string) (CombineFunc, bool) {
	switch name {
	case "+":
		return func(old, new float64) float64 { return old + new }, true
	case "*":
		return func(old, new float64) float64 { return old * new }, true
	case "max":
		return func(old, new float64) float64 {
			if new > old {
				return new
			}
			return old
		}, true
	case "min":
		return func(old, new float64) float64 {
			if new < old {
				return new
			}
			return old
		}, true
	case "right":
		return func(_, new float64) float64 { return new }, true
	case "left":
		return func(old, _ float64) float64 { return old }, true
	}
	return nil, false
}

// Accum is Haskell's accumArray: elements may receive zero or more
// definitions; each is folded in with the combining function, starting
// from the default value.
type Accum struct {
	B       Bounds
	combine CombineFunc
	data    []float64
	hits    []int64
}

// NewAccum builds an accumulated array with every element at init.
func NewAccum(b Bounds, combine CombineFunc, init float64) *Accum {
	n := b.Size()
	data := make([]float64, n)
	for i := range data {
		data[i] = init
	}
	return &Accum{B: b, combine: combine, data: data, hits: make([]int64, n)}
}

// Add folds one subscript/value pair into the array. Out-of-bounds
// subscripts are an error, matching Haskell's accumArray.
func (a *Accum) Add(subs []int64, v float64) error {
	off, err := a.B.LinearChecked(subs)
	if err != nil {
		return fmt.Errorf("accumArray: %w", err)
	}
	a.data[off] = a.combine(a.data[off], v)
	a.hits[off]++
	return nil
}

// Hits returns how many definitions the element has received.
func (a *Accum) Hits(subs ...int64) int64 {
	off, err := a.B.LinearChecked(subs)
	if err != nil {
		return 0
	}
	return a.hits[off]
}

// Freeze returns the accumulated contents as a strict array.
func (a *Accum) Freeze() *Strict {
	out := NewStrict(a.B)
	copy(out.Data, a.data)
	return out
}
