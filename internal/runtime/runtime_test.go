package runtime

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBoundsBasics(t *testing.T) {
	b := NewBounds2(1, 1, 3, 4)
	if b.Rank() != 2 || b.Size() != 12 {
		t.Fatalf("bounds = %+v size %d", b, b.Size())
	}
	if !b.InRange([]int64{1, 1}) || !b.InRange([]int64{3, 4}) {
		t.Error("corners must be in range")
	}
	for _, bad := range [][]int64{{0, 1}, {1, 0}, {4, 1}, {1, 5}, {1}, {1, 1, 1}} {
		if b.InRange(bad) {
			t.Errorf("%v should be out of range", bad)
		}
	}
	if b.String() != "((1,1),(3,4))" {
		t.Errorf("String = %q", b.String())
	}
	if NewBounds1(1, 10).String() != "(1,10)" {
		t.Error("1-D String wrong")
	}
}

func TestBoundsEmpty(t *testing.T) {
	b := NewBounds1(5, 4)
	if b.Size() != 0 {
		t.Errorf("empty bounds size = %d", b.Size())
	}
	if (Bounds{}).Size() != 0 {
		t.Error("rank-0 bounds must have size 0")
	}
}

func TestBoundsLinearRoundTrip(t *testing.T) {
	f := func(lo1, lo2 int8, e1, e2 uint8) bool {
		b := NewBounds2(int64(lo1), int64(lo2), int64(lo1)+int64(e1%7), int64(lo2)+int64(e2%7))
		for off := int64(0); off < b.Size(); off++ {
			subs := b.Unlinear(off)
			if !b.InRange(subs) {
				return false
			}
			if b.Linear(subs) != off {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestBoundsLinearIsRowMajorAndDense(t *testing.T) {
	b := NewBounds2(1, 1, 3, 4)
	seen := map[int64]bool{}
	last := int64(-1)
	for i := int64(1); i <= 3; i++ {
		for j := int64(1); j <= 4; j++ {
			off := b.Linear([]int64{i, j})
			if off != last+1 {
				t.Fatalf("row-major order violated at (%d,%d): off %d after %d", i, j, off, last)
			}
			last = off
			seen[off] = true
		}
	}
	if int64(len(seen)) != b.Size() {
		t.Error("linearization is not dense")
	}
}

func TestBoundsLinearChecked(t *testing.T) {
	b := NewBounds1(1, 5)
	if _, err := b.LinearChecked([]int64{0}); err == nil {
		t.Error("out-of-range must error")
	}
	off, err := b.LinearChecked([]int64{3})
	if err != nil || off != 2 {
		t.Errorf("off = %d err %v", off, err)
	}
}

func TestStrictBasics(t *testing.T) {
	a := NewStrict(NewBounds2(1, 1, 2, 2))
	a.Set(3.5, 2, 1)
	if a.At(2, 1) != 3.5 || a.At(1, 1) != 0 {
		t.Error("Set/At broken")
	}
	c := a.Clone()
	c.Set(9, 1, 1)
	if a.At(1, 1) == 9 {
		t.Error("Clone shares storage")
	}
	if !a.EqualWithin(a, 0) {
		t.Error("EqualWithin reflexivity")
	}
	if a.EqualWithin(c, 0.5) {
		t.Error("EqualWithin must see the difference")
	}
	if !a.EqualWithin(c, 10) {
		t.Error("EqualWithin tolerance ignored")
	}
}

func TestStrictPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("At out of range must panic")
		}
	}()
	NewStrict(NewBounds1(1, 3)).At(4)
}

func TestNonStrictForwardChain(t *testing.T) {
	// a!1 = 1; a!i = a!(i−1) + 1 — forces recursively regardless of
	// definition order.
	n := int64(50)
	a := NewNonStrict(NewBounds1(1, n))
	// Define in reverse order to prove order irrelevance.
	for i := n; i >= 1; i-- {
		i := i
		var th Thunk
		if i == 1 {
			th = func() (float64, error) { return 1, nil }
		} else {
			th = func() (float64, error) {
				v, err := a.At(i - 1)
				return v + 1, err
			}
		}
		if err := a.Define([]int64{i}, th); err != nil {
			t.Fatal(err)
		}
	}
	v, err := a.At(n)
	if err != nil || v != float64(n) {
		t.Fatalf("a!%d = %v, %v", n, v, err)
	}
	s, err := a.ForceElements()
	if err != nil {
		t.Fatal(err)
	}
	if s.At(25) != 25 {
		t.Error("forced contents wrong")
	}
}

func TestNonStrictBlackHole(t *testing.T) {
	a := NewNonStrict(NewBounds1(1, 2))
	_ = a.Define([]int64{1}, func() (float64, error) { return a.At(2) })
	_ = a.Define([]int64{2}, func() (float64, error) { return a.At(1) })
	_, err := a.At(1)
	if !errors.Is(err, ErrBlackHole) {
		t.Errorf("want ErrBlackHole, got %v", err)
	}
	// force-elements must propagate ⊥.
	if _, err := a.ForceElements(); !errors.Is(err, ErrBlackHole) {
		t.Errorf("ForceElements: want ErrBlackHole, got %v", err)
	}
}

func TestNonStrictEmpty(t *testing.T) {
	a := NewNonStrict(NewBounds1(1, 3))
	_ = a.Define([]int64{1}, func() (float64, error) { return 1, nil })
	if _, err := a.At(2); !errors.Is(err, ErrEmpty) {
		t.Errorf("want ErrEmpty, got %v", err)
	}
	if a.DefinedCount() != 1 {
		t.Errorf("DefinedCount = %d", a.DefinedCount())
	}
	if !a.Defined(1) || a.Defined(2) || a.Defined(99) {
		t.Error("Defined wrong")
	}
}

func TestNonStrictCollision(t *testing.T) {
	a := NewNonStrict(NewBounds1(1, 3))
	one := func() (float64, error) { return 1, nil }
	if err := a.Define([]int64{2}, one); err != nil {
		t.Fatal(err)
	}
	if err := a.Define([]int64{2}, one); !errors.Is(err, ErrCollision) {
		t.Errorf("want ErrCollision, got %v", err)
	}
}

func TestNonStrictMemoization(t *testing.T) {
	count := 0
	a := NewNonStrict(NewBounds1(1, 1))
	_ = a.Define([]int64{1}, func() (float64, error) { count++; return 7, nil })
	for k := 0; k < 5; k++ {
		if v, err := a.At(1); v != 7 || err != nil {
			t.Fatal("At broken")
		}
	}
	if count != 1 {
		t.Errorf("thunk ran %d times, want 1", count)
	}
}

func TestNonStrictPartialDemandToleratesBottom(t *testing.T) {
	// Non-strict semantics: an unrelated ⊥ element does not poison
	// elements that don't depend on it.
	a := NewNonStrict(NewBounds1(1, 2))
	_ = a.Define([]int64{1}, func() (float64, error) { return a.At(1) }) // self-loop ⊥
	_ = a.Define([]int64{2}, func() (float64, error) { return 42, nil })
	if v, err := a.At(2); err != nil || v != 42 {
		t.Fatalf("independent element poisoned: %v %v", v, err)
	}
	if _, err := a.At(1); !errors.Is(err, ErrBlackHole) {
		t.Error("self-loop must be a black hole")
	}
}

func TestAccumArray(t *testing.T) {
	plus, ok := Combiner("+")
	if !ok {
		t.Fatal("no + combiner")
	}
	// Histogram: the paper's canonical accumArray example.
	a := NewAccum(NewBounds1(0, 4), plus, 0)
	for _, v := range []int64{1, 3, 1, 1, 4} {
		if err := a.Add([]int64{v}, 1); err != nil {
			t.Fatal(err)
		}
	}
	s := a.Freeze()
	want := []float64{0, 3, 0, 1, 1}
	for i, w := range want {
		if got := s.At(int64(i)); got != w {
			t.Errorf("hist[%d] = %v, want %v", i, got, w)
		}
	}
	if a.Hits(1) != 3 || a.Hits(0) != 0 {
		t.Error("Hits wrong")
	}
	if err := a.Add([]int64{99}, 1); err == nil {
		t.Error("out-of-bounds accumArray add must error")
	}
}

func TestCombinerTable(t *testing.T) {
	cases := []struct {
		name     string
		old, new float64
		want     float64
	}{
		{"+", 2, 3, 5},
		{"*", 2, 3, 6},
		{"max", 2, 3, 3},
		{"min", 2, 3, 2},
		{"right", 2, 3, 3},
		{"left", 2, 3, 2},
	}
	for _, c := range cases {
		f, ok := Combiner(c.name)
		if !ok {
			t.Errorf("no combiner %q", c.name)
			continue
		}
		if got := f(c.old, c.new); got != c.want {
			t.Errorf("%s(%v, %v) = %v, want %v", c.name, c.old, c.new, got, c.want)
		}
	}
	if _, ok := Combiner("bogus"); ok {
		t.Error("bogus combiner must not resolve")
	}
}

func makeSeq(n int64) *Strict {
	s := NewStrict(NewBounds1(1, n))
	for i := int64(1); i <= n; i++ {
		s.Set(float64(i), i)
	}
	return s
}

func TestCopyArrayPersistence(t *testing.T) {
	a := NewCopyArray(makeSeq(5))
	b := a.Upd(99, 3)
	if a.At(3) != 3 || b.At(3) != 99 {
		t.Error("copy array not persistent")
	}
	if b.Freeze().At(1) != 1 {
		t.Error("Freeze wrong")
	}
}

func TestVersionArraySemantics(t *testing.T) {
	v0 := NewVersionArray(makeSeq(5))
	v1 := v0.Upd(100, 1)
	v2 := v1.Upd(200, 2)
	// All three versions observable, newest is O(1).
	if v0.At(1) != 1 || v0.At(2) != 2 {
		t.Error("v0 corrupted")
	}
	if v1.At(1) != 100 || v1.At(2) != 2 {
		t.Error("v1 wrong")
	}
	if v2.At(1) != 100 || v2.At(2) != 200 {
		t.Error("v2 wrong")
	}
	if !v2.Current() || v0.Current() || v1.Current() {
		t.Error("currency flags wrong")
	}
	if v0.TrailLength() != 2 || v2.TrailLength() != 0 {
		t.Errorf("trail lengths: v0=%d v2=%d", v0.TrailLength(), v2.TrailLength())
	}
	// Updating a stale version forks a fresh master.
	v0b := v0.Upd(7, 5)
	if v0b.At(5) != 7 || v0b.At(1) != 1 {
		t.Error("stale update fork wrong")
	}
	if v2.At(5) != 5 {
		t.Error("fork disturbed the main line")
	}
}

func TestVersionArrayMatchesCopyOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	n := int64(12)
	va := NewVersionArray(makeSeq(n))
	ca := NewCopyArray(makeSeq(n))
	versionsV := []*VersionArray{va}
	versionsC := []*CopyArray{ca}
	for step := 0; step < 200; step++ {
		pick := rng.Intn(len(versionsV))
		idx := int64(1 + rng.Intn(int(n)))
		val := float64(rng.Intn(1000))
		versionsV = append(versionsV, versionsV[pick].Upd(val, idx))
		versionsC = append(versionsC, versionsC[pick].Upd(val, idx))
		// Spot-check a random existing version.
		q := rng.Intn(len(versionsV))
		at := int64(1 + rng.Intn(int(n)))
		if got, want := versionsV[q].At(at), versionsC[q].At(at); got != want {
			t.Fatalf("step %d: version %d At(%d) = %v, want %v", step, q, at, got, want)
		}
	}
	// Full comparison at the end.
	for q := range versionsV {
		if !versionsV[q].Freeze().EqualWithin(versionsC[q].Freeze(), 0) {
			t.Fatalf("version %d diverged", q)
		}
	}
}

func TestRCArrayInPlaceVsCopy(t *testing.T) {
	a := NewRCArray(makeSeq(5))
	if a.Refs() != 1 {
		t.Fatal("fresh refcount must be 1")
	}
	// Single reference: update in place (same handle back).
	b := a.Upd(99, 1)
	if b != a {
		t.Error("single-threaded update must be in place")
	}
	// Shared: update must copy.
	c := b.Retain()
	if b.Refs() != 2 {
		t.Fatalf("refs = %d", b.Refs())
	}
	d := c.Upd(55, 2)
	if d == c {
		t.Error("shared update must copy")
	}
	if b.At(2) == 55 {
		t.Error("shared update leaked into the other reference")
	}
	if d.At(2) != 55 || d.Refs() != 1 {
		t.Error("copied array wrong")
	}
	if b.Refs() != 1 {
		t.Errorf("donor refcount not decremented: %d", b.Refs())
	}
	b.Release()
}
