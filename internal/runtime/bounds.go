package runtime

import (
	"fmt"
	"strings"
)

// Bounds describes the index space of an array: per-dimension inclusive
// lower and upper bounds, as in Haskell's `array ((l1,…),(u1,…))`.
type Bounds struct {
	Lo, Hi []int64
}

// NewBounds1 builds 1-D bounds.
func NewBounds1(lo, hi int64) Bounds {
	return Bounds{Lo: []int64{lo}, Hi: []int64{hi}}
}

// NewBounds2 builds 2-D bounds.
func NewBounds2(lo1, lo2, hi1, hi2 int64) Bounds {
	return Bounds{Lo: []int64{lo1, lo2}, Hi: []int64{hi1, hi2}}
}

// Rank returns the number of dimensions.
func (b Bounds) Rank() int { return len(b.Lo) }

// Extent returns the size of dimension d (0 when empty).
func (b Bounds) Extent(d int) int64 {
	e := b.Hi[d] - b.Lo[d] + 1
	if e < 0 {
		return 0
	}
	return e
}

// Size returns the total element count.
func (b Bounds) Size() int64 {
	if b.Rank() == 0 {
		return 0
	}
	size := int64(1)
	for d := range b.Lo {
		size *= b.Extent(d)
	}
	return size
}

// InRange reports whether the subscript tuple lies within bounds.
func (b Bounds) InRange(subs []int64) bool {
	if len(subs) != b.Rank() {
		return false
	}
	for d, s := range subs {
		if s < b.Lo[d] || s > b.Hi[d] {
			return false
		}
	}
	return true
}

// Linear converts a subscript tuple to a row-major linear offset.
// The tuple must be in range; see LinearChecked for the safe variant.
func (b Bounds) Linear(subs []int64) int64 {
	var off int64
	for d, s := range subs {
		off = off*b.Extent(d) + (s - b.Lo[d])
	}
	return off
}

// LinearChecked converts with a range check.
func (b Bounds) LinearChecked(subs []int64) (int64, error) {
	if !b.InRange(subs) {
		return 0, fmt.Errorf("runtime: subscript %v out of bounds %s", subs, b)
	}
	return b.Linear(subs), nil
}

// Unlinear converts a linear offset back to a subscript tuple.
func (b Bounds) Unlinear(off int64) []int64 {
	subs := make([]int64, b.Rank())
	for d := b.Rank() - 1; d >= 0; d-- {
		e := b.Extent(d)
		subs[d] = b.Lo[d] + off%e
		off /= e
	}
	return subs
}

// Equal reports equality of bounds.
func (b Bounds) Equal(o Bounds) bool {
	if b.Rank() != o.Rank() {
		return false
	}
	for d := range b.Lo {
		if b.Lo[d] != o.Lo[d] || b.Hi[d] != o.Hi[d] {
			return false
		}
	}
	return true
}

// String renders "(1,n)" / "((1,1),(m,n))" style bounds.
func (b Bounds) String() string {
	if b.Rank() == 1 {
		return fmt.Sprintf("(%d,%d)", b.Lo[0], b.Hi[0])
	}
	var lo, hi []string
	for d := range b.Lo {
		lo = append(lo, fmt.Sprint(b.Lo[d]))
		hi = append(hi, fmt.Sprint(b.Hi[d]))
	}
	return fmt.Sprintf("((%s),(%s))", strings.Join(lo, ","), strings.Join(hi, ","))
}
