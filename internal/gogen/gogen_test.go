package gogen_test

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"arraycomp/internal/analysis"
	"arraycomp/internal/core"
	"arraycomp/internal/gogen"
	"arraycomp/internal/loopir"
	"arraycomp/internal/runtime"
	"arraycomp/internal/workloads"
)

func compileWorkload(t *testing.T, src string, params map[string]int64, inputBounds map[string]analysis.ArrayBounds) *core.Program {
	t.Helper()
	p, err := core.Compile(src, params, core.Options{InputBounds: inputBounds})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return p
}

func TestEmitSquaresStructure(t *testing.T) {
	p := compileWorkload(t, workloads.SquaresSrc, map[string]int64{"n": 8}, nil)
	src, err := gogen.EmitFile(p.Defs["sq"].Plan.Program, "gen", "Squares")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"package gen",
		"func Squares() ([]float64, error)",
		"for i := int64(1); i <= 8; i += 1 {",
		"sq := make([]float64, 8)",
		"return sq, nil",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("generated source missing %q:\n%s", want, src)
		}
	}
	if strings.Contains(src, "Defs") {
		t.Error("squares needs no definedness bitmap")
	}
}

func TestEmitConditionalIsLazy(t *testing.T) {
	// The else branch reads out of bounds at i=1; eager evaluation in
	// the generated code would panic. The conditional must lower to
	// if/else statements. NoStencil keeps the guard in the IR — the
	// specializer would otherwise resolve it away by splitting the
	// i=1 boundary off (see TestEmitStencilInterior for that path).
	p, err := core.Compile(workloads.Example1Src, map[string]int64{"n": 4}, core.Options{NoStencil: true})
	if err != nil {
		t.Fatal(err)
	}
	src, err := gogen.EmitFile(p.Defs["a"].Plan.Program, "gen", "Ex1")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(src, "} else {") {
		t.Errorf("conditional not lowered to statements:\n%s", src)
	}
}

func TestEmitUnsupportedStatements(t *testing.T) {
	// An accumArray plan without AccumOp must fail loudly.
	p := compileWorkload(t, workloads.HistogramSrc, map[string]int64{"n": 10}, nil)
	prog := p.Defs["h"].Plan.Program
	saved := prog.AccumOp
	prog.AccumOp = ""
	if _, err := gogen.EmitFile(prog, "gen", "H"); err == nil {
		t.Error("missing AccumOp must be an error")
	}
	prog.AccumOp = saved
	if _, err := gogen.EmitFile(prog, "gen", "H"); err != nil {
		t.Errorf("histogram emission failed: %v", err)
	}
}

// lcgFill fills a slice exactly like the generated harness does.
func lcgFill(data []float64, seed uint64) {
	x := seed
	for i := range data {
		x = x*6364136223846793005 + 1442695040888963407
		data[i] = float64((x>>33)&0xFFFF) / 65536.0
	}
}

func checksum(data []float64) float64 {
	var acc float64
	for i, v := range data {
		acc += v * float64(i+1)
	}
	return acc
}

// emitHarness writes a runnable main package: the generated function
// plus a main() that fills inputs with the LCG, runs, and prints each
// result's checksum.
func emitHarness(t *testing.T, dir string, prog *core.Program, def string) (params, results []string) {
	t.Helper()
	plan := prog.Defs[def].Plan
	fn, params, results, err := gogen.EmitFunc(plan.Program, "Compiled")
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	b.WriteString("package main\n\nimport (\n\t\"fmt\"\n\t\"os\"\n")
	if strings.Contains(fn, "math.") {
		b.WriteString("\t\"math\"\n")
	}
	if strings.Contains(fn, "runtime.GOMAXPROCS") {
		b.WriteString("\t\"runtime\"\n")
	}
	if strings.Contains(fn, "sync.WaitGroup") {
		b.WriteString("\t\"sync\"\n")
	}
	b.WriteString(")\n\n")
	b.WriteString(fn)
	b.WriteString(`
func lcgFill(data []float64, seed uint64) {
	x := seed
	for i := range data {
		x = x*6364136223846793005 + 1442695040888963407
		data[i] = float64((x>>33)&0xFFFF) / 65536.0
	}
}

func checksum(data []float64) float64 {
	var acc float64
	for i, v := range data {
		acc += v * float64(i+1)
	}
	return acc
}

func main() {
`)
	for i, name := range params {
		d := plan.Program.Decl(name)
		fmt.Fprintf(&b, "\tin%d := make([]float64, %d)\n", i, d.B.Size())
		fmt.Fprintf(&b, "\tlcgFill(in%d, %d)\n", i, 1000+i)
	}
	var args []string
	for i := range params {
		args = append(args, fmt.Sprintf("in%d", i))
	}
	var outs []string
	for i := range results {
		outs = append(outs, fmt.Sprintf("out%d", i))
	}
	outs = append(outs, "err")
	fmt.Fprintf(&b, "\t%s := Compiled(%s)\n", strings.Join(outs, ", "), strings.Join(args, ", "))
	b.WriteString("\tif err != nil {\n\t\tfmt.Fprintln(os.Stderr, err)\n\t\tos.Exit(1)\n\t}\n")
	for i := range results {
		fmt.Fprintf(&b, "\tfmt.Printf(\"%%.17g\\n\", checksum(out%d))\n", i)
	}
	b.WriteString("}\n")
	if err := os.WriteFile(filepath.Join(dir, "main.go"), []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module gen\n\ngo 1.24\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	return params, results
}

// runGenerated builds and runs the harness, returning the printed
// checksums.
func runGenerated(t *testing.T, dir string) []float64 {
	t.Helper()
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not available")
	}
	cmd := exec.Command("go", "run", ".")
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "GOFLAGS=-mod=mod")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go run: %v\n%s", err, out)
	}
	var sums []float64
	for _, line := range strings.Fields(strings.TrimSpace(string(out))) {
		v, err := strconv.ParseFloat(line, 64)
		if err != nil {
			t.Fatalf("bad harness output %q: %v", out, err)
		}
		sums = append(sums, v)
	}
	return sums
}

// differential runs a workload through the interpreter and the
// generated Go code on identical inputs and compares checksums.
func differential(t *testing.T, src string, params map[string]int64, inputDims map[string][]int64, def string) {
	t.Helper()
	if testing.Short() {
		t.Skip("short mode: skipping go-run differential")
	}
	inputBounds := map[string]analysis.ArrayBounds{}
	for name, dims := range inputDims {
		lo := make([]int64, len(dims))
		for i := range lo {
			lo[i] = 1
		}
		inputBounds[name] = analysis.ArrayBounds{Lo: lo, Hi: dims}
	}
	prog := compileWorkload(t, src, params, inputBounds)
	dir := t.TempDir()
	fnParams, results := emitHarness(t, dir, prog, def)
	got := runGenerated(t, dir)
	if len(got) != len(results) {
		t.Fatalf("harness printed %d checksums, want %d", len(got), len(results))
	}
	// Interpreter on identical inputs.
	plan := prog.Defs[def].Plan
	inputs := map[string]*runtime.Strict{}
	for i, name := range fnParams {
		d := plan.Program.Decl(name)
		a := runtime.NewStrict(d.B)
		lcgFill(a.Data, uint64(1000+i))
		inputs[name] = a
	}
	outs, err := plan.Exec.Run(inputs)
	if err != nil {
		t.Fatal(err)
	}
	for i, name := range results {
		want := checksum(outs[name].Data)
		diff := got[i] - want
		if diff < -1e-9 || diff > 1e-9 {
			t.Errorf("result %s: generated %v, interpreter %v", name, got[i], want)
		}
	}
}

func TestGeneratedSquaresMatchesInterpreter(t *testing.T) {
	differential(t, workloads.SquaresSrc, map[string]int64{"n": 1000}, nil, "sq")
}

func TestGeneratedWavefrontMatchesInterpreter(t *testing.T) {
	differential(t, workloads.WavefrontSrc, map[string]int64{"n": 40}, nil, "a")
}

func TestGeneratedExample1MatchesInterpreter(t *testing.T) {
	differential(t, workloads.Example1Src, map[string]int64{"n": 50}, nil, "a")
}

func TestGeneratedJacobiMatchesInterpreter(t *testing.T) {
	n := int64(24)
	differential(t, workloads.JacobiSrc, map[string]int64{"n": n},
		map[string][]int64{"a": {n, n}}, "a2")
}

func TestGeneratedSORMatchesInterpreter(t *testing.T) {
	n := int64(24)
	differential(t, workloads.SORSrc, map[string]int64{"n": n},
		map[string][]int64{"a": {n, n}}, "a2")
}

func TestGeneratedRowSwapMatchesInterpreter(t *testing.T) {
	n := int64(16)
	differential(t, workloads.RowSwapSrc, workloads.ParamsFor("rowswap", n),
		map[string][]int64{"a": {n, n}}, "a2")
}

func TestGeneratedHistogramMatchesInterpreter(t *testing.T) {
	differential(t, workloads.HistogramSrc, map[string]int64{"n": 500}, nil, "h")
}

func TestGeneratedGuardedChecksMatchInterpreter(t *testing.T) {
	src := `a = array (1,n)
	  ([ i := 1.0 | i <- [1..n], i mod 2 == 1 ] ++
	   [ i := 2.0 | i <- [1..n], i mod 2 == 0 ])`
	differential(t, src, map[string]int64{"n": 101}, nil, "a")
}

func TestGeneratedGofmtClean(t *testing.T) {
	// The emitted source must parse (gofmt -e reports syntax errors).
	p := compileWorkload(t, workloads.WavefrontSrc, map[string]int64{"n": 8}, nil)
	src, err := gogen.EmitFile(p.Defs["a"].Plan.Program, "gen", "Wavefront")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := exec.LookPath("gofmt"); err != nil {
		t.Skip("gofmt not available")
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "gen.go")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := exec.Command("gofmt", "-e", "-l", path).CombinedOutput()
	if err != nil {
		t.Fatalf("gofmt: %v\n%s\nsource:\n%s", err, out, src)
	}
}

// TestNativeSpeed builds the generated Go code for the headline
// workloads and measures it against hand-written loops — the paper's
// "comparable to Fortran" claim with the interpreter substitution
// removed. Reported via -v; skipped in short mode.
func TestNativeSpeed(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not available")
	}
	cases := []struct {
		name   string
		src    string
		params map[string]int64
		def    string
		iters  int
		hand   func() float64 // returns ns/op
	}{
		{
			"squares", workloads.SquaresSrc, map[string]int64{"n": 100000}, "sq", 200,
			func() float64 {
				r := testing.Benchmark(func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						workloads.HandSquares(100000)
					}
				})
				return float64(r.T.Nanoseconds()) / float64(r.N)
			},
		},
		{
			"wavefront", workloads.WavefrontSrc, map[string]int64{"n": 256}, "a", 100,
			func() float64 {
				r := testing.Benchmark(func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						workloads.HandWavefront(256)
					}
				})
				return float64(r.T.Nanoseconds()) / float64(r.N)
			},
		},
	}
	for _, c := range cases {
		prog := compileWorkload(t, c.src, c.params, nil)
		harness, err := gogen.EmitBenchHarness(prog.Defs[c.def].Plan.Program, c.iters)
		if err != nil {
			t.Fatal(err)
		}
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "main.go"), []byte(harness), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module gen\n\ngo 1.24\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		cmd := exec.Command("go", "run", ".")
		cmd.Dir = dir
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("go run: %v\n%s\n%s", err, out, harness)
		}
		fields := strings.Fields(strings.TrimSpace(string(out)))
		gen, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			t.Fatalf("bad output %q", out)
		}
		hand := c.hand()
		t.Logf("%s: generated-Go %.0f ns/op, hand-written %.0f ns/op (ratio %.2fx)",
			c.name, gen, hand, gen/hand)
		if gen > hand*4 {
			t.Errorf("%s: generated code is %.1fx hand-written; want within 4x", c.name, gen/hand)
		}
	}
}

// TestGeneratedParallelLoop: a dependence-free program compiled with
// the Parallel option must emit a sharded goroutine loop that still
// matches the interpreter.
func TestGeneratedParallelLoop(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	n := int64(64)
	inputBounds := map[string]analysis.ArrayBounds{"b": {Lo: []int64{1, 1}, Hi: []int64{n, n}}}
	prog, err := core.Compile(workloads.JacobiMonolithicSrc, map[string]int64{"n": n},
		core.Options{Parallel: true, InputBounds: inputBounds})
	if err != nil {
		t.Fatal(err)
	}
	fn, _, _, err := gogen.EmitFunc(prog.Defs["a"].Plan.Program, "Compiled")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(fn, "sync.WaitGroup") || !strings.Contains(fn, "go func(lo, hi int64)") {
		t.Fatalf("parallel loop not emitted:\n%s", fn)
	}
	// Differential against the interpreter.
	dir := t.TempDir()
	emitParallelHarness(t, dir, fn)
	got := runGenerated(t, dir)
	plan := prog.Defs["a"].Plan
	in := runtime.NewStrict(runtime.NewBounds2(1, 1, n, n))
	lcgFill(in.Data, 1000)
	outs, err := plan.Exec.Run(map[string]*runtime.Strict{"b": in})
	if err != nil {
		t.Fatal(err)
	}
	want := checksum(outs["a"].Data)
	if d := got[0] - want; d < -1e-9 || d > 1e-9 {
		t.Errorf("parallel generated %v, interpreter %v", got[0], want)
	}
}

func emitParallelHarness(t *testing.T, dir, fn string) {
	t.Helper()
	var b strings.Builder
	b.WriteString("package main\n\nimport (\n\t\"fmt\"\n\t\"os\"\n")
	if strings.Contains(fn, "math.") {
		b.WriteString("\t\"math\"\n")
	}
	if strings.Contains(fn, "runtime.GOMAXPROCS") {
		b.WriteString("\t\"runtime\"\n")
	}
	if strings.Contains(fn, "sync.WaitGroup") {
		b.WriteString("\t\"sync\"\n")
	}
	b.WriteString(")\n\n")
	b.WriteString(fn)
	b.WriteString(`
func lcgFill(data []float64, seed uint64) {
	x := seed
	for i := range data {
		x = x*6364136223846793005 + 1442695040888963407
		data[i] = float64((x>>33)&0xFFFF) / 65536.0
	}
}

func checksum(data []float64) float64 {
	var acc float64
	for i, v := range data {
		acc += v * float64(i+1)
	}
	return acc
}

func main() {
	in := make([]float64, 64*64)
	lcgFill(in, 1000)
	out, err := Compiled(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("%.17g\n", checksum(out))
}
`)
	if err := os.WriteFile(filepath.Join(dir, "main.go"), []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module gen\n\ngo 1.24\n"), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestEmitBooleanGuards covers the boolean emission paths (&&, ||,
// not, float comparison) structurally and differentially.
func TestEmitBooleanGuards(t *testing.T) {
	src := `param n;
	a = array (1,n)
	  ([ i := 1.0 | i <- [1..n], (i mod 3 == 0 || i mod 3 == 1) && not (i == 5) ] ++
	   [ i := 2.0 | i <- [1..n], i mod 3 == 2 || i == 5 ])`
	prog := compileWorkload(t, src, map[string]int64{"n": 20}, nil)
	fn, _, _, err := gogen.EmitFunc(prog.Defs["a"].Plan.Program, "G")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"&&", "||", "!("} {
		if !strings.Contains(fn, want) {
			t.Errorf("generated guard missing %q:\n%s", want, fn)
		}
	}
	differential(t, src, map[string]int64{"n": 20}, nil, "a")
}

// TestEmitFloatCondAndBuiltins: float comparison conditions and math
// builtins in the generated code.
func TestEmitFloatCondAndBuiltins(t *testing.T) {
	src := `param n;
	a = array (1,n)
	  [ i := if sqrt(1.0 * i) > 2.0 then pow(2.0, 3.0) else abs(0.0 - i) | i <- [1..n] ]`
	differential(t, src, map[string]int64{"n": 30}, nil, "a")
}

// TestHasErrorPathsClassification pins the goroutine-safety predicate.
func TestHasErrorPathsClassification(t *testing.T) {
	clean := []loopir.Stmt{
		&loopir.Assign{Array: "a", Subs: []loopir.IntExpr{&loopir.IConst{Value: 1}}, Rhs: &loopir.VConst{}},
	}
	if gogen.HasErrorPathsForTest(clean) {
		t.Error("unchecked assign must be clean")
	}
	checked := []loopir.Stmt{
		&loopir.Assign{Array: "a", Subs: []loopir.IntExpr{&loopir.IConst{Value: 1}}, Rhs: &loopir.VConst{}, CheckBounds: true},
	}
	if !gogen.HasErrorPathsForTest(checked) {
		t.Error("bounds-checked assign must be an error path")
	}
	readChecked := []loopir.Stmt{
		&loopir.SetScalar{Name: "s", Rhs: &loopir.ARef{Array: "a", Subs: []loopir.IntExpr{&loopir.IConst{Value: 1}}, CheckBounds: true}},
	}
	if !gogen.HasErrorPathsForTest(readChecked) {
		t.Error("checked read must be an error path")
	}
	condChecked := []loopir.Stmt{
		&loopir.If{Cond: &loopir.BConst{Value: true}, Then: []loopir.Stmt{&loopir.Fail{Msg: "x"}}},
	}
	if !gogen.HasErrorPathsForTest(condChecked) {
		t.Error("Fail inside If must be an error path")
	}
	nestedBool := []loopir.Stmt{
		&loopir.SetScalar{Name: "s", Rhs: &loopir.VCond{
			C: &loopir.BNot{X: &loopir.BCmpFloat{Op: "<",
				L: &loopir.ARef{Array: "a", Subs: []loopir.IntExpr{&loopir.IConst{Value: 1}}, CheckDefined: true},
				R: &loopir.VConst{}}},
			T: &loopir.VConst{}, E: &loopir.VConst{},
		}},
	}
	if !gogen.HasErrorPathsForTest(nestedBool) {
		t.Error("checked read inside a boolean condition must be an error path")
	}
}
