package gogen

import (
	"fmt"

	"arraycomp/internal/loopir"
)

// Stencil interior emission. A loop the optimizer annotated as a
// stencil row (Loop.Sten — the unit-stride inner loop of a recognized
// nest, or a 1-D stencil) whose body is a single unchecked offset-form
// assignment is emitted as constant-width row slices indexed by a
// loop-local counter:
//
//	b := <row base register init>
//	s0 := a[b-66 : b-66+64]    // one slice per (array, offset delta)
//	s1 := a[b-1 : b-1+64]
//	sd := a[b : b+64]
//	for j := int64(0); j < 64; j++ {
//	    sd[j] = omega*(s0[j]+s1[j]+...) + ...
//	}
//
// The width is a compile-time constant (bounds are concrete per
// parameter binding), so Go's prove pass knows each slice's length and
// eliminates every bounds check in the row — the guard cost that kept
// the native tier behind hand-written code on SOR and wavefront. The
// slices alias the same backing array the generic emission indexes, so
// every memory operation happens in the same order on the same
// addresses (Gauss-Seidel reads of elements written earlier in the row
// observe the new values exactly as before) and results are bitwise
// identical. Rows at least 8 wide are unrolled by 4.
//
// Slicing is safe unconditionally: the compiler proved every o+delta
// in range for o in [base, base+W), hence base+delta ≥ 0 and
// base+delta+W ≤ len.

// stencilUnrollMin is the narrowest row worth unrolling by 4.
const stencilUnrollMin = 8

type sliceKey struct {
	arr string
	d   int64
}

// emitStencilLoop emits the BCE-friendly interior form when the loop
// qualifies, reporting whether it did. Callers fall through to the
// generic emission on false.
func (e *emitter) emitStencilLoop(x *loopir.Loop) bool {
	if x.Sten == nil || x.Step != 1 || len(x.Body) != 1 {
		return false
	}
	a, ok := x.Body[0].(*loopir.Assign)
	if !ok || a.CheckBounds || a.CheckCollision || a.Accumulate != nil || a.Off == nil {
		return false
	}
	d := e.decl[a.Array]
	if d == nil || d.TrackDefs {
		return false
	}
	wlin, ok := a.Off.(*loopir.ILin)
	if !ok || len(wlin.Terms) != 1 || wlin.Terms[0].Coeff != 1 {
		return false
	}
	base := wlin.Terms[0].Var
	var baseInit loopir.IntExpr
	for _, ind := range x.Inds {
		if ind.Name == base {
			if ind.Step != 1 {
				return false
			}
			baseInit = ind.Init
		}
	}
	if baseInit == nil {
		return false
	}
	w := x.To - x.From + 1
	if w < 1 {
		return false
	}
	reads := map[sliceKey]bool{}
	if !collectStencilReads(a.Rhs, base, e.decl, reads) {
		return false
	}
	// The write's own slice; reads at the same delta share it.
	dstKey := sliceKey{a.Array, wlin.Const}
	reads[dstKey] = true

	e.line("{")
	e.depth++
	e.line("// stencil interior: %d-wide row over constant-length slices (bounds checks eliminated)", w)
	bv := e.fresh("b")
	e.line("%s := %s", bv, e.intExpr(baseInit))
	slices := map[sliceKey]string{}
	for _, k := range sortedKeys(reads) {
		sv := e.fresh("s")
		slices[k] = sv
		lo := bv
		if k.d != 0 {
			lo = fmt.Sprintf("%s%+d", bv, k.d)
		}
		e.line("%s := %s[%s : %s+%d]", sv, e.ident[k.arr], lo, lo, w)
	}
	jv := e.fresh("j")
	store := func(idx string) {
		rhs, _ := stencilExpr(a.Rhs, base, slices, idx)
		e.line("%s[%s] = %s", slices[dstKey], idx, rhs)
	}
	if w >= stencilUnrollMin {
		e.line("%s := int64(0)", jv)
		// The `j < w-3` form (not `j+3 < w`) keeps the induction
		// analysis simple enough for the prove pass to eliminate the
		// bounds checks on all four unrolled accesses.
		e.line("for ; %s < %d; %s += 4 {", jv, w-3, jv)
		e.depth++
		store(jv)
		store(jv + "+1")
		store(jv + "+2")
		store(jv + "+3")
		e.depth--
		e.line("}")
		e.line("for ; %s < %d; %s++ {", jv, w, jv)
		e.depth++
		store(jv)
		e.depth--
		e.line("}")
	} else {
		e.line("for %s := int64(0); %s < %d; %s++ {", jv, jv, w, jv)
		e.depth++
		store(jv)
		e.depth--
		e.line("}")
	}
	e.depth--
	e.line("}")
	return true
}

func sortedKeys(m map[sliceKey]bool) []sliceKey {
	keys := make([]sliceKey, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0; j-- {
			a, b := keys[j], keys[j-1]
			if a.arr < b.arr || (a.arr == b.arr && a.d < b.d) {
				keys[j], keys[j-1] = keys[j-1], keys[j]
			} else {
				break
			}
		}
	}
	return keys
}

// collectStencilReads validates the body expression and gathers the
// (array, delta) pairs it reads. Anything outside the pure stencil
// fragment — checked or subscript-form accesses, reads off a different
// register, conditionals, int conversions (which could observe the
// unmaintained loop variable) — rejects the emission.
func collectStencilReads(v loopir.VExpr, base string, decl map[string]*loopir.ArrayDecl, out map[sliceKey]bool) bool {
	switch x := v.(type) {
	case *loopir.VConst, *loopir.VScalar:
		return true
	case *loopir.ARef:
		if x.CheckBounds || x.CheckDefined || x.Off == nil {
			return false
		}
		d := decl[x.Array]
		if d == nil || d.TrackDefs {
			return false
		}
		lin, ok := x.Off.(*loopir.ILin)
		if !ok || len(lin.Terms) != 1 || lin.Terms[0].Coeff != 1 || lin.Terms[0].Var != base {
			return false
		}
		out[sliceKey{x.Array, lin.Const}] = true
		return true
	case *loopir.VBin:
		return collectStencilReads(x.L, base, decl, out) && collectStencilReads(x.R, base, decl, out)
	case *loopir.VNeg:
		return collectStencilReads(x.X, base, decl, out)
	case *loopir.VCall:
		for _, arg := range x.Args {
			if !collectStencilReads(arg, base, decl, out) {
				return false
			}
		}
		return true
	}
	return false
}

// stencilExpr renders the body expression with every array access
// rewritten to its row slice at the given index. The shapes were
// validated by collectStencilReads; the bool mirrors it defensively.
func stencilExpr(v loopir.VExpr, base string, slices map[sliceKey]string, idx string) (string, bool) {
	switch x := v.(type) {
	case *loopir.VConst:
		return floatLit(x.Value), true
	case *loopir.VScalar:
		return goName(x.Name), true
	case *loopir.ARef:
		lin := x.Off.(*loopir.ILin)
		return fmt.Sprintf("%s[%s]", slices[sliceKey{x.Array, lin.Const}], idx), true
	case *loopir.VBin:
		l, okL := stencilExpr(x.L, base, slices, idx)
		r, okR := stencilExpr(x.R, base, slices, idx)
		return fmt.Sprintf("(%s %c %s)", l, x.Op, r), okL && okR
	case *loopir.VNeg:
		s, ok := stencilExpr(x.X, base, slices, idx)
		return fmt.Sprintf("(-%s)", s), ok
	case *loopir.VCall:
		args := make([]string, len(x.Args))
		ok := true
		for i, a := range x.Args {
			var okA bool
			args[i], okA = stencilExpr(a, base, slices, idx)
			ok = ok && okA
		}
		fn, known := mathFns[x.Fn]
		if !known {
			return "0", false
		}
		return fn + "(" + join(args, ", ") + ")", ok
	}
	return "0", false
}

func join(parts []string, sep string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += sep
		}
		out += p
	}
	return out
}
