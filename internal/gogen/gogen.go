// Package gogen emits a compiled loop-IR program as standalone Go
// source — the "native back end" counterpart of the in-process closure
// interpreter. The paper compiled to machine code and claimed
// performance comparable to Fortran; emitting real Go loops lets the
// reproduction measure that claim without interpreter overhead.
//
// The generated file is self-contained (standard library only): a
// function per program taking input arrays as []float64 slices and
// returning the result arrays, plus optionally a main() harness that
// builds deterministic inputs, times the function, and prints a
// checksum for differential validation against the interpreter.
package gogen

import (
	"fmt"
	"sort"
	"strings"

	"arraycomp/internal/idxprop"
	"arraycomp/internal/loopir"
)

// emitter accumulates the generated source.
type emitter struct {
	prog   *loopir.Program
	b      strings.Builder
	depth  int
	tmpSeq int
	// arrays maps IR array names to Go identifiers; bounds to layout.
	ident  map[string]string
	decl   map[string]*loopir.ArrayDecl
	failed error
	// errReturn renders the "return nil, …, err" prefix for error paths.
	errReturn func(msg string) string
	// verifyPass/verifyFail, when non-empty, name package-level uint64
	// counters every emitted BVerify verdict bumps atomically — the
	// native tier's replacement for the interpreter's verify hook.
	verifyPass, verifyFail string
}

func (e *emitter) fail(format string, args ...any) {
	if e.failed == nil {
		e.failed = fmt.Errorf("gogen: "+format, args...)
	}
}

func (e *emitter) line(format string, args ...any) {
	for i := 0; i < e.depth; i++ {
		e.b.WriteByte('\t')
	}
	fmt.Fprintf(&e.b, format, args...)
	e.b.WriteByte('\n')
}

func (e *emitter) fresh(prefix string) string {
	e.tmpSeq++
	return fmt.Sprintf("%s%d", prefix, e.tmpSeq)
}

// goName sanitizes an IR identifier (which may contain '$') into a Go
// identifier.
func goName(s string) string {
	out := strings.NewReplacer("$", "_", "'", "_").Replace(s)
	if out == "" {
		return "_x"
	}
	return out
}

// EmitFunc renders the program as one Go function:
//
//	func <name>(in1, in2 []float64, …) ([]float64, …, error)
//
// Input (RoleIn) arrays arrive as parameters in declaration order;
// RoleInOut arrays arrive as parameters, are updated in place and
// returned; RoleOut arrays are allocated and returned; RoleTemp arrays
// are local. Returns the function source plus the parameter and result
// array names in order.
func EmitFunc(p *loopir.Program, name string) (src string, params, results []string, err error) {
	return emitFunc(p, name, "", "")
}

// EmitFuncCounted is EmitFunc with runtime-verifier accounting: every
// BVerify verdict in the emitted function atomically increments
// passVar (verified) or failVar (failed), two package-level uint64
// counters the caller must declare. It exists so the native tier can
// report the same verify tallies the interpreter's hook records —
// without it the compiled fast/checked dual lowering runs the verifier
// but silently drops the verdict, and the process-wide failure counter
// undercounts whenever a program runs native.
func EmitFuncCounted(p *loopir.Program, name, passVar, failVar string) (src string, params, results []string, err error) {
	if passVar == "" || failVar == "" {
		return "", nil, nil, fmt.Errorf("gogen: EmitFuncCounted needs both counter names")
	}
	return emitFunc(p, name, passVar, failVar)
}

func emitFunc(p *loopir.Program, name, passVar, failVar string) (src string, params, results []string, err error) {
	e := &emitter{
		prog:       p,
		ident:      map[string]string{},
		decl:       map[string]*loopir.ArrayDecl{},
		verifyPass: passVar,
		verifyFail: failVar,
	}
	for i := range p.Arrays {
		d := &p.Arrays[i]
		e.ident[d.Name] = goName(d.Name)
		e.decl[d.Name] = d
	}

	var paramDecls []string
	for i := range p.Arrays {
		d := &p.Arrays[i]
		switch d.Role {
		case loopir.RoleIn, loopir.RoleInOut:
			paramDecls = append(paramDecls, e.ident[d.Name]+" []float64")
			params = append(params, d.Name)
		}
		if d.Role == loopir.RoleOut || d.Role == loopir.RoleInOut {
			results = append(results, d.Name)
		}
	}
	retTypes := strings.Repeat("[]float64, ", len(results)) + "error"

	e.line("// %s implements the compiled array program %q.", name, p.Name)
	e.line("func %s(%s) (%s) {", name, strings.Join(paramDecls, ", "), retTypes)
	e.depth++

	zeroReturns := func(msg string) string {
		return strings.Repeat("nil, ", len(results)) + msg
	}

	// Validate input lengths.
	for i := range p.Arrays {
		d := &p.Arrays[i]
		if d.Role == loopir.RoleIn || d.Role == loopir.RoleInOut {
			e.line("if len(%s) != %d {", e.ident[d.Name], d.B.Size())
			e.depth++
			e.line(`return %s`, zeroReturns(fmt.Sprintf(`fmt.Errorf("array %s: want %d elements, got %%d", len(%s))`, d.Name, d.B.Size(), e.ident[d.Name])))
			e.depth--
			e.line("}")
		}
	}
	// Allocate outputs, temps and bitmaps.
	for i := range p.Arrays {
		d := &p.Arrays[i]
		if d.Role == loopir.RoleOut || d.Role == loopir.RoleTemp {
			e.line("%s := make([]float64, %d)", e.ident[d.Name], d.B.Size())
			e.line("_ = %s", e.ident[d.Name])
		}
		if d.TrackDefs {
			e.line("%sDefs := make([]bool, %d)", e.ident[d.Name], d.B.Size())
			e.line("_ = %sDefs", e.ident[d.Name])
		}
	}
	// Scalars.
	for _, s := range p.Scalars {
		e.line("var %s float64", goName(s))
		e.line("_ = %s", goName(s))
	}

	e.errReturn = zeroReturns
	e.emitStmts(p.Stmts)

	rets := make([]string, 0, len(results)+1)
	for _, r := range results {
		rets = append(rets, e.ident[r])
	}
	rets = append(rets, "nil")
	e.line("return %s", strings.Join(rets, ", "))
	e.depth--
	e.line("}")
	if e.failed != nil {
		return "", nil, nil, e.failed
	}
	return e.b.String(), params, results, nil
}

// errReturn builds the return statement prefix for error paths; set by
// EmitFunc before emitting statements.
// (field kept on emitter for access inside statement emission)

func (e *emitter) emitStmts(stmts []loopir.Stmt) {
	for _, s := range stmts {
		e.emitStmt(s)
	}
}

func (e *emitter) emitStmt(s loopir.Stmt) {
	switch x := s.(type) {
	case *loopir.Loop:
		// Scheduled loops take their planned parallel shape when the body
		// has no error paths (a `return err` inside a goroutine closure
		// would not compile; the planner already guarantees the writes
		// are race-free under the schedule).
		if x.Par != nil && !hasErrorPaths(x.Body) && e.emitScheduledLoop(x) {
			return
		}
		// Dependence-free loops without a concrete schedule still shard
		// across CPUs.
		if x.Parallel && x.Par == nil && !hasErrorPaths(x.Body) {
			e.emitParallelLoop(x)
			return
		}
		// Recognized stencil rows become constant-width slice loops the
		// Go compiler can prove in-bounds (see stencil.go).
		if x.Sten != nil && e.emitStencilLoop(x) {
			return
		}
		v := goName(x.Var)
		cmp, next := "<=", fmt.Sprintf("%s += %d", v, x.Step)
		if x.Step < 0 {
			cmp = ">="
		}
		par := ""
		if x.Parallel {
			par = " // parallelizable: no carried dependences"
		}
		if len(x.Inds) > 0 {
			// Strength-reduced offsets: registers start at their row base
			// and advance by a constant stride per iteration.
			e.line("{")
			e.depth++
			for _, ind := range x.Inds {
				e.line("%s := %s", goName(ind.Name), e.intExpr(ind.Init))
			}
		}
		e.line("for %s := int64(%d); %s %s %d; %s {%s", v, x.From, v, cmp, x.To, next, par)
		e.depth++
		e.emitStmts(x.Body)
		for _, ind := range x.Inds {
			if ind.Step != 0 {
				e.line("%s += %d", goName(ind.Name), ind.Step)
			}
		}
		e.depth--
		e.line("}")
		if len(x.Inds) > 0 {
			e.depth--
			e.line("}")
		}
	case *loopir.If:
		cond := e.boolExpr(x.Cond)
		e.line("if %s {", cond)
		e.depth++
		e.emitStmts(x.Then)
		e.depth--
		if len(x.Else) > 0 {
			e.line("} else {")
			e.depth++
			e.emitStmts(x.Else)
			e.depth--
		}
		e.line("}")
	case *loopir.Assign:
		e.emitAssign(x)
	case *loopir.SetScalar:
		rhs := e.valueExpr(x.Rhs)
		e.line("%s = %s", goName(x.Name), rhs)
	case *loopir.CopyArray:
		e.line("copy(%s, %s)", e.ident[x.Dst], e.ident[x.Src])
	case *loopir.CheckFull:
		d := e.decl[x.Array]
		e.line("for off := range %sDefs {", e.ident[x.Array])
		e.depth++
		e.line("if !%sDefs[off] {", e.ident[x.Array])
		e.depth++
		e.line(`return %s`, e.errReturn(fmt.Sprintf(`fmt.Errorf("array %s has an undefined element at offset %%d (empty)", off)`, d.Name)))
		e.depth--
		e.line("}")
		e.depth--
		e.line("}")
	case *loopir.Fail:
		e.line(`return %s`, e.errReturn(fmt.Sprintf("fmt.Errorf(%q)", x.Msg)))
	case *loopir.Fill:
		e.line("for off := range %s {", e.ident[x.Array])
		e.depth++
		e.line("%s[off] = %s", e.ident[x.Array], floatLit(x.Value))
		e.depth--
		e.line("}")
	default:
		e.fail("unknown statement %T", s)
	}
}

// offsetExpr renders the row-major offset of an array access; when
// checked, bounds guards are emitted first. A strength-reduced offset
// (off non-nil, unchecked) replaces the subscript arithmetic with its
// induction-register form.
func (e *emitter) offsetExpr(arr string, subs []loopir.IntExpr, off loopir.IntExpr, checked bool) string {
	d := e.decl[arr]
	if d == nil {
		e.fail("unknown array %q", arr)
		return "0"
	}
	if off != nil && !checked {
		return e.intExpr(off)
	}
	b := d.B
	subExprs := make([]string, len(subs))
	for i, s := range subs {
		subExprs[i] = e.intExpr(s)
	}
	if checked {
		for dim, se := range subExprs {
			tmp := e.fresh("s")
			e.line("%s := %s", tmp, se)
			e.line("if %s < %d || %s > %d {", tmp, b.Lo[dim], tmp, b.Hi[dim])
			e.depth++
			e.line(`return %s`, e.errReturn(fmt.Sprintf(
				`fmt.Errorf("array %s: subscript %%d out of bounds [%d..%d] in dimension %d", %s)`,
				arr, b.Lo[dim], b.Hi[dim], dim, tmp)))
			e.depth--
			e.line("}")
			subExprs[dim] = tmp
		}
	}
	// off = ((s0-lo0)*e1 + (s1-lo1))*e2 + …
	expr := fmt.Sprintf("(%s - %d)", subExprs[0], b.Lo[0])
	for dim := 1; dim < len(subExprs); dim++ {
		expr = fmt.Sprintf("(%s*%d + (%s - %d))", expr, b.Extent(dim), subExprs[dim], b.Lo[dim])
	}
	return expr
}

func (e *emitter) emitAssign(x *loopir.Assign) {
	rhs := e.valueExpr(x.Rhs)
	off := e.fresh("o")
	e.line("%s := %s", off, e.offsetExpr(x.Array, x.Subs, x.Off, x.CheckBounds))
	id := e.ident[x.Array]
	switch {
	case x.Accumulate != nil:
		// The combining function is a Go closure in the IR; generated
		// code re-derives it from the program name conventionally. The
		// code generator records the operation on the Assign via the
		// Accumulate field — unavailable as source — so gogen supports
		// only the named combiners re-looked-up by the caller. To keep
		// the emitted file self-contained we inline addition, the only
		// combiner the compiler emits Fill+Accumulate pairs for by
		// default; other combiners fall back with an error.
		if e.prog.AccumOp == "" {
			e.fail("accumArray emission requires Program.AccumOp")
			return
		}
		switch e.prog.AccumOp {
		case "+":
			e.line("%s[%s] += %s", id, off, rhs)
		case "*":
			e.line("%s[%s] *= %s", id, off, rhs)
		case "max":
			e.line("%s[%s] = math.Max(%s[%s], %s)", id, off, id, off, rhs)
		case "min":
			e.line("%s[%s] = math.Min(%s[%s], %s)", id, off, id, off, rhs)
		case "right":
			e.line("%s[%s] = %s", id, off, rhs)
		case "left":
			e.line("_ = %s // left-combiner keeps the existing value", rhs)
		default:
			e.fail("unknown accumArray combiner %q", e.prog.AccumOp)
		}
		if e.decl[x.Array].TrackDefs {
			e.line("%sDefs[%s] = true", id, off)
		}
	case x.CheckCollision:
		e.line("if %sDefs[%s] {", id, off)
		e.depth++
		e.line(`return %s`, e.errReturn(fmt.Sprintf(`fmt.Errorf("write collision on %s at offset %%d", %s)`, x.Array, off)))
		e.depth--
		e.line("}")
		e.line("%sDefs[%s] = true", id, off)
		e.line("%s[%s] = %s", id, off, rhs)
	case e.decl[x.Array].TrackDefs:
		e.line("%sDefs[%s] = true", id, off)
		e.line("%s[%s] = %s", id, off, rhs)
	default:
		e.line("%s[%s] = %s", id, off, rhs)
	}
}

// --- expressions ---

func (e *emitter) intExpr(x loopir.IntExpr) string {
	switch n := x.(type) {
	case *loopir.IConst:
		return fmt.Sprintf("int64(%d)", n.Value)
	case *loopir.IVar:
		return goName(n.Name)
	case *loopir.ILin:
		if len(n.Terms) == 0 {
			return fmt.Sprintf("int64(%d)", n.Const)
		}
		var parts []string
		if n.Const != 0 {
			parts = append(parts, fmt.Sprint(n.Const))
		}
		for _, t := range n.Terms {
			switch t.Coeff {
			case 1:
				parts = append(parts, goName(t.Var))
			case -1:
				parts = append(parts, "-"+goName(t.Var))
			default:
				parts = append(parts, fmt.Sprintf("%d*%s", t.Coeff, goName(t.Var)))
			}
		}
		return "(" + strings.Join(parts, " + ") + ")"
	case *loopir.IIdx:
		off := e.offsetExpr(n.Array, n.Subs, nil, n.CheckBounds)
		if !n.CheckBounds {
			// A verified range claim already proved every element
			// integral and in bounds.
			return fmt.Sprintf("int64(%s[%s])", e.ident[n.Array], off)
		}
		tmp := e.fresh("ix")
		e.line("%s := %s[%s]", tmp, e.ident[n.Array], off)
		e.line("if float64(int64(%s)) != %s {", tmp, tmp)
		e.depth++
		e.line(`return %s`, e.errReturn(fmt.Sprintf(`fmt.Errorf("array %s holds non-integral subscript value %%v", %s)`, n.Array, tmp)))
		e.depth--
		e.line("}")
		return fmt.Sprintf("int64(%s)", tmp)
	case *loopir.IBin:
		l, r := e.intExpr(n.L), e.intExpr(n.R)
		switch n.Op {
		case '+', '-', '*':
			return fmt.Sprintf("(%s %c %s)", l, n.Op, r)
		case '/':
			return fmt.Sprintf("(%s / %s)", l, r)
		case '%':
			return fmt.Sprintf("(%s %% %s)", l, r)
		}
		e.fail("unknown integer operator %q", string(n.Op))
		return "0"
	}
	e.fail("unknown integer expression %T", x)
	return "0"
}

// valueExpr renders a float expression. Conditionals are lowered to
// statements assigning a temporary so the untaken branch is never
// evaluated (it may read out of bounds).
func (e *emitter) valueExpr(x loopir.VExpr) string {
	switch n := x.(type) {
	case *loopir.VConst:
		return floatLit(n.Value)
	case *loopir.VFromInt:
		return fmt.Sprintf("float64(%s)", e.intExpr(n.X))
	case *loopir.VScalar:
		return goName(n.Name)
	case *loopir.ARef:
		if n.CheckDefined {
			off := e.fresh("o")
			e.line("%s := %s", off, e.offsetExpr(n.Array, n.Subs, n.Off, n.CheckBounds))
			id := e.ident[n.Array]
			e.line("if !%sDefs[%s] {", id, off)
			e.depth++
			e.line(`return %s`, e.errReturn(fmt.Sprintf(`fmt.Errorf("read of undefined element of %s at offset %%d (empty)", %s)`, n.Array, off)))
			e.depth--
			e.line("}")
			return fmt.Sprintf("%s[%s]", id, off)
		}
		return fmt.Sprintf("%s[%s]", e.ident[n.Array], e.offsetExpr(n.Array, n.Subs, n.Off, n.CheckBounds))
	case *loopir.VBin:
		return fmt.Sprintf("(%s %c %s)", e.valueExpr(n.L), n.Op, e.valueExpr(n.R))
	case *loopir.VNeg:
		return fmt.Sprintf("(-%s)", e.valueExpr(n.X))
	case *loopir.VCall:
		args := make([]string, len(n.Args))
		for i, a := range n.Args {
			args[i] = e.valueExpr(a)
		}
		fn, ok := mathFns[n.Fn]
		if !ok {
			e.fail("unknown builtin %q", n.Fn)
			return "0"
		}
		return fmt.Sprintf("%s(%s)", fn, strings.Join(args, ", "))
	case *loopir.VCond:
		tmp := e.fresh("t")
		e.line("var %s float64", tmp)
		cond := e.boolExpr(n.C)
		e.line("if %s {", cond)
		e.depth++
		e.line("%s = %s", tmp, e.valueExpr(n.T))
		e.depth--
		e.line("} else {")
		e.depth++
		e.line("%s = %s", tmp, e.valueExpr(n.E))
		e.depth--
		e.line("}")
		return tmp
	}
	e.fail("unknown value expression %T", x)
	return "0"
}

var mathFns = map[string]string{
	"abs": "math.Abs", "sqrt": "math.Sqrt", "exp": "math.Exp",
	"log": "math.Log", "sin": "math.Sin", "cos": "math.Cos",
	"min": "math.Min", "max": "math.Max", "pow": "math.Pow",
}

var goCmp = map[string]string{
	"==": "==", "/=": "!=", "<": "<", "<=": "<=", ">": ">", ">=": ">=",
}

func (e *emitter) boolExpr(x loopir.BExpr) string {
	switch n := x.(type) {
	case *loopir.BConst:
		return fmt.Sprint(n.Value)
	case *loopir.BCmpInt:
		return fmt.Sprintf("(%s %s %s)", e.intExpr(n.L), goCmp[n.Op], e.intExpr(n.R))
	case *loopir.BCmpFloat:
		return fmt.Sprintf("(%s %s %s)", e.valueExpr(n.L), goCmp[n.Op], e.valueExpr(n.R))
	case *loopir.BAnd:
		return fmt.Sprintf("(%s && %s)", e.boolExpr(n.L), e.boolExpr(n.R))
	case *loopir.BOr:
		return fmt.Sprintf("(%s || %s)", e.boolExpr(n.L), e.boolExpr(n.R))
	case *loopir.BNot:
		return fmt.Sprintf("!(%s)", e.boolExpr(n.X))
	case *loopir.BVerify:
		return e.emitVerify(n)
	}
	e.fail("unknown boolean expression %T", x)
	return "false"
}

// emitVerify renders the one-pass runtime index-property verifier for a
// BVerify guard inline (generated files stay self-contained), mirroring
// idxprop.Verify: integrality and magnitude on every element, then the
// claimed range, monotonicity, and injectivity checks. Returns the name
// of the bool temporary holding the verdict.
func (e *emitter) emitVerify(n *loopir.BVerify) string {
	id := e.ident[n.Array]
	ok := e.fresh("vok")
	var needRange, needMono, needInj bool
	var lo, hi int64
	for _, c := range n.Claims {
		switch c.Kind {
		case idxprop.KRange:
			if needRange {
				if c.Lo > lo {
					lo = c.Lo
				}
				if c.Hi < hi {
					hi = c.Hi
				}
			} else {
				needRange, lo, hi = true, c.Lo, c.Hi
			}
		case idxprop.KMonoNonDec:
			needMono = true
		case idxprop.KInjective:
			needInj = true
		}
	}
	e.line("%s := true", ok)
	if !needRange && !needMono && !needInj {
		e.countVerify(ok)
		return ok
	}
	e.line("{ // verify %s", n.Claims)
	e.depth++
	if needMono {
		e.line("prev := int64(0)")
	}
	if needInj {
		e.line("seen := make(map[int64]bool, len(%s))", id)
	}
	rangeVar := "_"
	if needMono {
		rangeVar = "pos"
	}
	e.line("for %s, v := range %s {", rangeVar, id)
	e.depth++
	e.line("if v != math.Trunc(v) || v > %d || v < -%d {", magLimit, magLimit)
	e.depth++
	e.line("%s = false", ok)
	e.line("break")
	e.depth--
	e.line("}")
	e.line("iv := int64(v)")
	if needRange {
		e.line("if iv < %d || iv > %d {", lo, hi)
		e.depth++
		e.line("%s = false", ok)
		e.line("break")
		e.depth--
		e.line("}")
	}
	if needMono {
		e.line("if pos > 0 && iv < prev {")
		e.depth++
		e.line("%s = false", ok)
		e.line("break")
		e.depth--
		e.line("}")
		e.line("prev = iv")
	}
	if needInj {
		e.line("if seen[iv] {")
		e.depth++
		e.line("%s = false", ok)
		e.line("break")
		e.depth--
		e.line("}")
		e.line("seen[iv] = true")
	}
	e.depth--
	e.line("}")
	e.depth--
	e.line("}")
	e.countVerify(ok)
	return ok
}

// countVerify bumps the caller-declared verdict counters when counted
// emission is on; one verdict per BVerify evaluation, matching the
// interpreter hook's cadence exactly.
func (e *emitter) countVerify(ok string) {
	if e.verifyPass == "" {
		return
	}
	e.line("if %s { atomic.AddUint64(&%s, 1) } else { atomic.AddUint64(&%s, 1) }", ok, e.verifyPass, e.verifyFail)
}

// magLimit mirrors idxprop's magnitude bound on integral subscript
// values (1<<40): the generated verifier must accept and reject exactly
// the same inputs as the interpreter's.
const magLimit = int64(1) << 40

func floatLit(v float64) string {
	s := fmt.Sprintf("%g", v)
	if !strings.ContainsAny(s, ".eE") {
		s += ".0"
	}
	return s
}

// EmitFile wraps EmitFunc into a complete source file (package + imports).
func EmitFile(p *loopir.Program, pkg, funcName string) (string, error) {
	fn, _, _, err := EmitFunc(p, funcName)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "// Code generated by arraycomp (gogen) from program %q. DO NOT EDIT.\n", p.Name)
	fmt.Fprintf(&b, "package %s\n\n", pkg)
	b.WriteString(importsFor(fn))
	b.WriteString(fn)
	return b.String(), nil
}

func importsFor(src string) string {
	var imports []string
	if strings.Contains(src, "fmt.") {
		imports = append(imports, `"fmt"`)
	}
	if strings.Contains(src, "math.") {
		imports = append(imports, `"math"`)
	}
	if strings.Contains(src, "runtime.GOMAXPROCS") {
		imports = append(imports, `"runtime"`)
	}
	if strings.Contains(src, "sync.WaitGroup") {
		imports = append(imports, `"sync"`)
	}
	if len(imports) == 0 {
		return ""
	}
	sort.Strings(imports)
	return "import (\n\t" + strings.Join(imports, "\n\t") + "\n)\n\n"
}

// EmitBenchHarness wraps EmitFunc into a self-timing main package: it
// fills the inputs deterministically, runs the function `iters` times,
// and prints "<ns/op> <checksum-per-result…>" on one line. Used to
// measure the native back end against hand-written loops (EXPERIMENTS
// E11: the paper's "comparable to Fortran" claim without interpreter
// overhead).
func EmitBenchHarness(p *loopir.Program, iters int) (string, error) {
	fn, params, results, err := EmitFunc(p, "Compiled")
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("// Code generated by arraycomp (gogen). DO NOT EDIT.\npackage main\n\nimport (\n\t\"fmt\"\n\t\"os\"\n\t\"time\"\n")
	if strings.Contains(fn, "math.") {
		b.WriteString("\t\"math\"\n")
	}
	if strings.Contains(fn, "runtime.GOMAXPROCS") {
		b.WriteString("\t\"runtime\"\n")
	}
	if strings.Contains(fn, "sync.WaitGroup") {
		b.WriteString("\t\"sync\"\n")
	}
	b.WriteString(")\n\n")
	b.WriteString(fn)
	b.WriteString(`
func lcgFill(data []float64, seed uint64) {
	x := seed
	for i := range data {
		x = x*6364136223846793005 + 1442695040888963407
		data[i] = float64((x>>33)&0xFFFF) / 65536.0
	}
}

func checksum(data []float64) float64 {
	var acc float64
	for i, v := range data {
		acc += v * float64(i+1)
	}
	return acc
}

func main() {
`)
	decl := map[string]*loopir.ArrayDecl{}
	for i := range p.Arrays {
		decl[p.Arrays[i].Name] = &p.Arrays[i]
	}
	for i, name := range params {
		fmt.Fprintf(&b, "\tin%d := make([]float64, %d)\n", i, decl[name].B.Size())
		fmt.Fprintf(&b, "\tlcgFill(in%d, %d)\n", i, 1000+i)
	}
	var args []string
	for i := range params {
		args = append(args, fmt.Sprintf("in%d", i))
	}
	var outs []string
	for i := range results {
		outs = append(outs, fmt.Sprintf("out%d", i))
	}
	outs = append(outs, "err")
	fmt.Fprintf(&b, "\titers := %d\n", iters)
	if len(results) > 0 {
		fmt.Fprintf(&b, "\tvar %s []float64\n", strings.Join(outs[:len(outs)-1], ", []float64\n\tvar "))
	}
	for i := range results {
		fmt.Fprintf(&b, "\t_ = out%d\n", i)
	}
	b.WriteString("\tvar err error\n\tstart := time.Now()\n\tfor k := 0; k < iters; k++ {\n")
	fmt.Fprintf(&b, "\t\t%s = Compiled(%s)\n", strings.Join(outs, ", "), strings.Join(args, ", "))
	b.WriteString("\t\tif err != nil {\n\t\t\tfmt.Fprintln(os.Stderr, err)\n\t\t\tos.Exit(1)\n\t\t}\n\t}\n")
	b.WriteString("\tnsPerOp := time.Since(start).Nanoseconds() / int64(iters)\n")
	b.WriteString("\tfmt.Printf(\"%d\", nsPerOp)\n")
	for i := range results {
		fmt.Fprintf(&b, "\tfmt.Printf(\" %%.17g\", checksum(out%d))\n", i)
	}
	b.WriteString("\tfmt.Println()\n}\n")
	return b.String(), nil
}

// hasErrorPaths reports whether a statement list can emit a `return
// err` (runtime checks); such bodies cannot be wrapped in goroutines.
func hasErrorPaths(stmts []loopir.Stmt) bool {
	for _, s := range stmts {
		switch x := s.(type) {
		case *loopir.Loop:
			if hasErrorPaths(x.Body) {
				return true
			}
		case *loopir.If:
			if boolHasChecks(x.Cond) || hasErrorPaths(x.Then) || hasErrorPaths(x.Else) {
				return true
			}
		case *loopir.Assign:
			if x.CheckBounds || x.CheckCollision || exprHasChecks(x.Rhs) {
				return true
			}
			for _, sub := range x.Subs {
				if intHasChecks(sub) {
					return true
				}
			}
			if intHasChecks(x.Off) {
				return true
			}
		case *loopir.SetScalar:
			if exprHasChecks(x.Rhs) {
				return true
			}
		case *loopir.CheckFull, *loopir.Fail:
			return true
		}
	}
	return false
}

// intHasChecks reports whether an integer expression contains a
// bounds-checked indirect subscript read (which emits a `return err`).
func intHasChecks(x loopir.IntExpr) bool {
	switch n := x.(type) {
	case *loopir.IBin:
		return intHasChecks(n.L) || intHasChecks(n.R)
	case *loopir.IIdx:
		if n.CheckBounds {
			return true
		}
		for _, s := range n.Subs {
			if intHasChecks(s) {
				return true
			}
		}
	}
	return false
}

func exprHasChecks(v loopir.VExpr) bool {
	switch x := v.(type) {
	case *loopir.ARef:
		if x.CheckBounds || x.CheckDefined {
			return true
		}
		for _, s := range x.Subs {
			if intHasChecks(s) {
				return true
			}
		}
		return intHasChecks(x.Off)
	case *loopir.VBin:
		return exprHasChecks(x.L) || exprHasChecks(x.R)
	case *loopir.VNeg:
		return exprHasChecks(x.X)
	case *loopir.VFromInt:
		return intHasChecks(x.X)
	case *loopir.VCall:
		for _, a := range x.Args {
			if exprHasChecks(a) {
				return true
			}
		}
		return false
	case *loopir.VCond:
		return boolHasChecks(x.C) || exprHasChecks(x.T) || exprHasChecks(x.E)
	}
	return false
}

func boolHasChecks(b loopir.BExpr) bool {
	switch x := b.(type) {
	case *loopir.BCmpInt:
		return intHasChecks(x.L) || intHasChecks(x.R)
	case *loopir.BCmpFloat:
		return exprHasChecks(x.L) || exprHasChecks(x.R)
	case *loopir.BAnd:
		return boolHasChecks(x.L) || boolHasChecks(x.R)
	case *loopir.BOr:
		return boolHasChecks(x.L) || boolHasChecks(x.R)
	case *loopir.BNot:
		return boolHasChecks(x.X)
	}
	return false
}

// emitParallelLoop shards the iteration space across GOMAXPROCS
// workers using sync.WaitGroup.
func (e *emitter) emitParallelLoop(x *loopir.Loop) {
	v := goName(x.Var)
	trip := e.fresh("trip")
	var tripVal int64
	if x.Step > 0 {
		tripVal = (x.To-x.From)/x.Step + 1
	} else {
		tripVal = (x.From-x.To)/(-x.Step) + 1
	}
	if tripVal < 1 {
		return // empty loop
	}
	e.line("{ // parallel loop over %s: no carried dependences", v)
	e.depth++
	e.line("%s := int64(%d)", trip, tripVal)
	e.line("workers := int64(runtime.GOMAXPROCS(0))")
	e.line("if workers > %s {", trip)
	e.depth++
	e.line("workers = %s", trip)
	e.depth--
	e.line("}")
	e.line("chunk := (%s + workers - 1) / workers", trip)
	e.line("var wg sync.WaitGroup")
	e.line("for w := int64(0); w < workers; w++ {")
	e.depth++
	e.line("lo, hi := w*chunk, (w+1)*chunk")
	e.line("if hi > %s {", trip)
	e.depth++
	e.line("hi = %s", trip)
	e.depth--
	e.line("}")
	e.line("if lo >= hi {")
	e.depth++
	e.line("break")
	e.depth--
	e.line("}")
	e.line("wg.Add(1)")
	e.line("go func(lo, hi int64) {")
	e.depth++
	e.line("defer wg.Done()")
	e.line("for t := lo; t < hi; t++ {")
	e.depth++
	e.line("%s := int64(%d) + t*int64(%d)", v, x.From, x.Step)
	e.line("_ = %s // may be fully strength-reduced away", v)
	for _, ind := range x.Inds {
		// Rebind per iteration: shards cannot carry the register.
		if ind.Step != 0 {
			e.line("%s := %s + t*int64(%d)", goName(ind.Name), e.intExpr(ind.Init), ind.Step)
		} else {
			e.line("%s := %s", goName(ind.Name), e.intExpr(ind.Init))
		}
	}
	e.emitStmts(x.Body)
	e.depth--
	e.line("}")
	e.depth--
	e.line("}(lo, hi)")
	e.depth--
	e.line("}")
	e.line("wg.Wait()")
	e.depth--
	e.line("}")
}
