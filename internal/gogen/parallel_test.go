package gogen_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"arraycomp/internal/analysis"
	"arraycomp/internal/core"
	"arraycomp/internal/gogen"
	"arraycomp/internal/runtime"
	"arraycomp/internal/workloads"
)

func checkGofmt(t *testing.T, name, src string) {
	t.Helper()
	if _, err := exec.LookPath("gofmt"); err != nil {
		t.Skip("gofmt not available")
	}
	path := filepath.Join(t.TempDir(), "gen.go")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	if out, err := exec.Command("gofmt", "-e", "-l", path).CombinedOutput(); err != nil {
		t.Fatalf("%s: gofmt: %v\n%s\nsource:\n%s", name, err, out, src)
	}
}

// Chains3Src is a third-order recurrence: three independent dependence
// chains (residue classes mod 3).
const chains3Src = `param n;
a = array (1,n)
  ([ i := 1.0 * i | i <- [1..3] ] ++
   [ i := 0.5 * a!(i-3) + 1.0 | i <- [4..n] ])`

// parDifferential compiles src with the Parallel option, checks the
// emitted function carries the expected schedule shape, and runs the
// generated code against the interpreter on identical inputs.
func parDifferential(t *testing.T, src string, params map[string]int64, inputDims map[string][]int64, def string, wantShapes ...string) {
	t.Helper()
	inputBounds := map[string]analysis.ArrayBounds{}
	for name, dims := range inputDims {
		lo := make([]int64, len(dims))
		for i := range lo {
			lo[i] = 1
		}
		inputBounds[name] = analysis.ArrayBounds{Lo: lo, Hi: dims}
	}
	prog, err := core.Compile(src, params, core.Options{Parallel: true, InputBounds: inputBounds})
	if err != nil {
		t.Fatal(err)
	}
	fn, fnParams, results, err := gogen.EmitFunc(prog.Defs[def].Plan.Program, "Compiled")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range wantShapes {
		if !strings.Contains(fn, want) {
			t.Fatalf("emitted function missing %q:\n%s", want, fn)
		}
	}
	if testing.Short() {
		t.Skip("short mode: skipping go-run differential")
	}
	dir := t.TempDir()
	emitHarness(t, dir, prog, def)
	got := runGenerated(t, dir)
	if len(got) != len(results) {
		t.Fatalf("harness printed %d checksums, want %d", len(got), len(results))
	}
	plan := prog.Defs[def].Plan
	inputs := map[string]*runtime.Strict{}
	for i, name := range fnParams {
		d := plan.Program.Decl(name)
		a := runtime.NewStrict(d.B)
		lcgFill(a.Data, uint64(1000+i))
		inputs[name] = a
	}
	outs, err := plan.Exec.Run(inputs)
	if err != nil {
		t.Fatal(err)
	}
	for i, name := range results {
		want := checksum(outs[name].Data)
		diff := got[i] - want
		if diff < -1e-9 || diff > 1e-9 {
			t.Errorf("result %s: generated %v, interpreter %v", name, got[i], want)
		}
	}
}

// TestGeneratedWavefrontSchedule: SOR's doacross nest must emit the
// anti-diagonal tile shape and still match the interpreter exactly.
func TestGeneratedWavefrontSchedule(t *testing.T) {
	n := int64(128)
	parDifferential(t, workloads.SORSrc, workloads.ParamsFor("sor", n),
		map[string][]int64{"a": {n, n}}, "a2",
		"wavefront nest", "sync.WaitGroup")
}

// TestGeneratedTileSchedule: the dependence-free Jacobi interior tiles
// without barriers.
func TestGeneratedTileSchedule(t *testing.T) {
	n := int64(80)
	parDifferential(t, workloads.JacobiMonolithicSrc, workloads.ParamsFor("jacobimono", n),
		map[string][]int64{"b": {n, n}}, "a",
		"tiled nest", "runtime.GOMAXPROCS")
}

// TestGeneratedChainsSchedule: a distance-3 recurrence runs as three
// goroutine chains.
func TestGeneratedChainsSchedule(t *testing.T) {
	n := int64(8192)
	parDifferential(t, chains3Src, map[string]int64{"n": n}, nil, "a",
		"independent dependence chains")
}

// TestForcedChecksSuppressParallelEmission pins the hasErrorPaths ×
// optimizer interplay: with runtime checks forced on, every loop body
// carries error paths and the emitter must fall back to sequential
// loops even though the plans still carry parallel schedules. With the
// optimizer eliminating the checks (the default), the same program
// takes the goroutine shapes.
func TestForcedChecksSuppressParallelEmission(t *testing.T) {
	n := int64(80)
	bounds := map[string]analysis.ArrayBounds{"b": {Lo: []int64{1, 1}, Hi: []int64{n, n}}}
	params := workloads.ParamsFor("jacobimono", n)

	checked, err := core.Compile(workloads.JacobiMonolithicSrc, params,
		core.Options{Parallel: true, ForceChecks: true, InputBounds: bounds})
	if err != nil {
		t.Fatal(err)
	}
	fn, _, _, err := gogen.EmitFunc(checked.Defs["a"].Plan.Program, "Compiled")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(fn, "go func") || strings.Contains(fn, "sync.WaitGroup") {
		t.Fatalf("check-carrying bodies must emit sequentially:\n%s", fn)
	}

	clean, err := core.Compile(workloads.JacobiMonolithicSrc, params,
		core.Options{Parallel: true, InputBounds: bounds})
	if err != nil {
		t.Fatal(err)
	}
	fn, _, _, err = gogen.EmitFunc(clean.Defs["a"].Plan.Program, "Compiled")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(fn, "go func") {
		t.Fatalf("check-eliminated bodies must take the parallel path:\n%s", fn)
	}
}

// TestGeneratedParallelGofmtClean: every scheduled shape must emit
// syntactically valid Go.
func TestGeneratedParallelGofmtClean(t *testing.T) {
	n := int64(128)
	for _, c := range []struct {
		name, src, def string
		params         map[string]int64
		bounds         map[string]analysis.ArrayBounds
	}{
		{"sor", workloads.SORSrc, "a2", workloads.ParamsFor("sor", n),
			map[string]analysis.ArrayBounds{"a": {Lo: []int64{1, 1}, Hi: []int64{n, n}}}},
		{"chains", chains3Src, "a", map[string]int64{"n": 8192}, nil},
		{"jacobimono", workloads.JacobiMonolithicSrc, "a", workloads.ParamsFor("jacobimono", 80),
			map[string]analysis.ArrayBounds{"b": {Lo: []int64{1, 1}, Hi: []int64{80, 80}}}},
	} {
		prog, err := core.Compile(c.src, c.params, core.Options{Parallel: true, InputBounds: c.bounds})
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		src, err := gogen.EmitFile(prog.Defs[c.def].Plan.Program, "gen", "F")
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		checkGofmt(t, c.name, src)
	}
}
