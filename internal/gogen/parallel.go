package gogen

import (
	"arraycomp/internal/loopir"
)

// Emission of planned parallel schedules (loopir.ParSchedule). Each
// shape is rendered inline — generated functions stay self-contained —
// and mirrors the interpreter's executors in internal/loopir/parallel.go:
//
//   - ParShard:     contiguous chunks, one goroutine per worker
//   - ParChains:    g independent residue-class chains of a constant-
//     distance recurrence, one goroutine per chain
//   - ParTile:      cache tiles handed out block-cyclically; the planner
//     guarantees tiles touch disjoint data (row bands when only
//     inner-carried dependences exist)
//   - ParWavefront: anti-diagonal bands of tiles with a WaitGroup
//     barrier between diagonals; per-row prefix statements run in the
//     column-0 tile, so full row order is preserved
//
// Bodies with runtime checks never reach these shapes (the caller gates
// on hasErrorPaths): a `return err` inside a goroutine closure would
// not compile.

// emitScheduledLoop renders x under its attached schedule. Returns
// false when the schedule's shape cannot be matched (the caller then
// falls back to sequential emission).
func (e *emitter) emitScheduledLoop(x *loopir.Loop) bool {
	switch x.Par.Kind {
	case loopir.ParShard:
		e.emitParallelLoop(x)
		return true
	case loopir.ParMonoShard:
		return e.emitMonoShardLoop(x)
	case loopir.ParChains:
		if x.Par.Chains < 2 {
			return false
		}
		e.emitChainsLoop(x)
		return true
	case loopir.ParTile, loopir.ParWavefront:
		return e.emitTiledNest(x)
	}
	return false
}

// emitMonoShardLoop shards a loop whose write subscript (Par.AlignOn)
// was verified non-decreasing: naive chunk boundaries advance to the
// next change of the subscript value, so a run of equal subscripts
// never straddles two goroutines and the result is bitwise identical
// to sequential left-to-right accumulation. Mirrors the interpreter's
// compileMonoShardLoop.
func (e *emitter) emitMonoShardLoop(x *loopir.Loop) bool {
	if x.Par.AlignOn == nil || intHasChecks(x.Par.AlignOn) {
		return false
	}
	v := goName(x.Var)
	var tripVal int64
	if x.Step > 0 {
		tripVal = (x.To-x.From)/x.Step + 1
	} else {
		tripVal = (x.From-x.To)/(-x.Step) + 1
	}
	if tripVal < 1 {
		return true // empty loop: nothing to emit
	}
	trip := e.fresh("trip")
	e.line("{ // mono-shard loop over %s: equal-subscript runs stay in one chunk", v)
	e.depth++
	e.line("%s := int64(%d)", trip, tripVal)
	e.line("workers := int64(runtime.GOMAXPROCS(0))")
	e.line("if workers > %s {", trip)
	e.depth++
	e.line("workers = %s", trip)
	e.depth--
	e.line("}")
	e.line("chunk := (%s + workers - 1) / workers", trip)
	e.line("alignAt := func(t int64) int64 {")
	e.depth++
	e.line("%s := int64(%d) + t*int64(%d)", v, x.From, x.Step)
	e.line("_ = %s", v)
	e.line("return %s", e.intExpr(x.Par.AlignOn))
	e.depth--
	e.line("}")
	e.line("advance := func(t int64) int64 {")
	e.depth++
	e.line("for t > 0 && t < %s && alignAt(t) == alignAt(t-1) {", trip)
	e.depth++
	e.line("t++")
	e.depth--
	e.line("}")
	e.line("return t")
	e.depth--
	e.line("}")
	e.line("var wg sync.WaitGroup")
	e.line("for w := int64(0); w < workers; w++ {")
	e.depth++
	e.line("wg.Add(1)")
	e.line("go func(w int64) {")
	e.depth++
	e.line("defer wg.Done()")
	e.line("lo := advance(w * chunk)")
	e.line("hi := (w + 1) * chunk")
	e.line("if hi > %s {", trip)
	e.depth++
	e.line("hi = %s", trip)
	e.depth--
	e.line("}")
	e.line("hi = advance(hi)")
	e.line("for t := lo; t < hi; t++ {")
	e.depth++
	e.line("%s := int64(%d) + t*int64(%d)", v, x.From, x.Step)
	e.line("_ = %s // may be fully strength-reduced away", v)
	for _, ind := range x.Inds {
		// Chunks start mid-space: rebase the register from the
		// iteration ordinal instead of carrying it.
		if ind.Step != 0 {
			e.line("%s := %s + t*int64(%d)", goName(ind.Name), e.intExpr(ind.Init), ind.Step)
		} else {
			e.line("%s := %s", goName(ind.Name), e.intExpr(ind.Init))
		}
	}
	e.emitStmts(x.Body)
	e.depth--
	e.line("}")
	e.depth--
	e.line("}(w)")
	e.depth--
	e.line("}")
	e.line("wg.Wait()")
	e.depth--
	e.line("}")
	return true
}

// emitChainsLoop runs the residue classes i ≡ r (mod g) of a
// constant-distance recurrence concurrently; every dependence chain
// lies inside one class.
func (e *emitter) emitChainsLoop(x *loopir.Loop) {
	v := goName(x.Var)
	g := int64(x.Par.Chains)
	trip := (x.To-x.From)/x.Step + 1 // planner schedules step 1 only
	if trip < 1 {
		return
	}
	e.line("{ // doacross loop over %s: %d independent dependence chains", v, g)
	e.depth++
	e.line("var wg sync.WaitGroup")
	e.line("for r := int64(0); r < %d; r++ {", g)
	e.depth++
	e.line("wg.Add(1)")
	e.line("go func(r int64) {")
	e.depth++
	e.line("defer wg.Done()")
	e.line("for t := r; t < %d; t += %d {", trip, g)
	e.depth++
	e.line("%s := int64(%d) + t*int64(%d)", v, x.From, x.Step)
	e.line("_ = %s // may be fully strength-reduced away", v)
	for _, ind := range x.Inds {
		// Chains visit iterations out of order: rebase the register
		// from its row ordinal instead of carrying it.
		if ind.Step != 0 {
			e.line("%s := %s + t*int64(%d)", goName(ind.Name), e.intExpr(ind.Init), ind.Step)
		} else {
			e.line("%s := %s", goName(ind.Name), e.intExpr(ind.Init))
		}
	}
	e.emitStmts(x.Body)
	e.depth--
	e.line("}")
	e.depth--
	e.line("}(r)")
	e.depth--
	e.line("}")
	e.line("wg.Wait()")
	e.depth--
	e.line("}")
}

// emitTiledNest renders a 2-D nest under a tile or wavefront schedule.
// The nest shape is the planner's: any per-row prefix assignments
// followed by a step-1 inner loop, both loops step 1.
func (e *emitter) emitTiledNest(x *loopir.Loop) bool {
	if x.Step != 1 || len(x.Body) == 0 {
		return false
	}
	inner, ok := x.Body[len(x.Body)-1].(*loopir.Loop)
	if !ok || inner.Step != 1 {
		return false
	}
	prefix := x.Body[:len(x.Body)-1]
	for _, s := range prefix {
		if _, ok := s.(*loopir.Assign); !ok {
			return false
		}
	}
	ni := x.To - x.From + 1
	nj := inner.To - inner.From + 1
	tI, tJ := x.Par.TileI, x.Par.TileJ
	if ni < 1 || nj < 1 || tI < 1 || tJ < 1 {
		return false
	}
	nti := (ni + tI - 1) / tI
	ntj := (nj + tJ - 1) / tJ
	iv, jv := goName(x.Var), goName(inner.Var)
	wavefront := x.Par.Kind == loopir.ParWavefront

	// runTile renders the body of one (bi, bj) tile: the tile's rows in
	// order, each row running its prefix first (column-0 tiles only)
	// and then the row's slice of inner iterations.
	runTile := func() {
		e.line("iLo := int64(%d) + bi*%d", x.From, tI)
		e.line("iHi := iLo + %d - 1", tI)
		e.line("if iHi > %d {", x.To)
		e.depth++
		e.line("iHi = %d", x.To)
		e.depth--
		e.line("}")
		e.line("jLo := int64(%d) + bj*%d", inner.From, tJ)
		e.line("jHi := jLo + %d - 1", tJ)
		e.line("if jHi > %d {", inner.To)
		e.depth++
		e.line("jHi = %d", inner.To)
		e.depth--
		e.line("}")
		e.line("for %s := iLo; %s <= iHi; %s++ {", iv, iv, iv)
		e.depth++
		for _, ind := range x.Inds {
			// Rows run out of order across tiles: rebase outer registers
			// from the row ordinal.
			if ind.Step != 0 {
				e.line("%s := %s + (%s-int64(%d))*int64(%d)", goName(ind.Name), e.intExpr(ind.Init), iv, x.From, ind.Step)
			} else {
				e.line("%s := %s", goName(ind.Name), e.intExpr(ind.Init))
			}
			e.line("_ = %s", goName(ind.Name))
		}
		if len(prefix) > 0 {
			e.line("if bj == 0 { // per-row prefix runs with the row's first tile")
			e.depth++
			e.emitStmts(prefix)
			e.depth--
			e.line("}")
		}
		for _, ind := range inner.Inds {
			if ind.Step != 0 {
				e.line("%s := %s + (jLo-int64(%d))*int64(%d)", goName(ind.Name), e.intExpr(ind.Init), inner.From, ind.Step)
			} else {
				e.line("%s := %s", goName(ind.Name), e.intExpr(ind.Init))
			}
		}
		e.line("for %s := jLo; %s <= jHi; %s++ {", jv, jv, jv)
		e.depth++
		e.emitStmts(inner.Body)
		for _, ind := range inner.Inds {
			if ind.Step != 0 {
				e.line("%s += %d", goName(ind.Name), ind.Step)
			}
		}
		e.depth--
		e.line("}")
		e.depth--
		e.line("}")
	}

	if wavefront {
		e.line("{ // wavefront nest over %s,%s: %dx%d tiles, anti-diagonal bands", iv, jv, tI, tJ)
		e.depth++
		e.line("nti, ntj := int64(%d), int64(%d)", nti, ntj)
		e.line("for d := int64(0); d < nti+ntj-1; d++ {")
		e.depth++
		e.line("biLo, biHi := d-ntj+1, d")
		e.line("if biLo < 0 {")
		e.depth++
		e.line("biLo = 0")
		e.depth--
		e.line("}")
		e.line("if biHi > nti-1 {")
		e.depth++
		e.line("biHi = nti - 1")
		e.depth--
		e.line("}")
		e.line("var wg sync.WaitGroup")
		e.line("for bi := biLo; bi <= biHi; bi++ {")
		e.depth++
		e.line("wg.Add(1)")
		e.line("go func(bi int64) {")
		e.depth++
		e.line("defer wg.Done()")
		e.line("bj := d - bi")
		runTile()
		e.depth--
		e.line("}(bi)")
		e.depth--
		e.line("}")
		e.line("wg.Wait()")
		e.depth--
		e.line("}")
		e.depth--
		e.line("}")
		return true
	}

	e.line("{ // tiled nest over %s,%s: %dx%d tiles, no cross-tile dependences", iv, jv, tI, tJ)
	e.depth++
	e.line("nt := int64(%d)", nti*ntj)
	e.line("workers := int64(runtime.GOMAXPROCS(0))")
	e.line("if workers > nt {")
	e.depth++
	e.line("workers = nt")
	e.depth--
	e.line("}")
	e.line("var wg sync.WaitGroup")
	e.line("for w := int64(0); w < workers; w++ {")
	e.depth++
	e.line("wg.Add(1)")
	e.line("go func(w int64) {")
	e.depth++
	e.line("defer wg.Done()")
	e.line("for t := w; t < nt; t += workers {")
	e.depth++
	e.line("bi, bj := t/int64(%d), t%%int64(%d)", ntj, ntj)
	runTile()
	e.depth--
	e.line("}")
	e.depth--
	e.line("}(w)")
	e.depth--
	e.line("}")
	e.line("wg.Wait()")
	e.depth--
	e.line("}")
	return true
}
