package gogen

// HasErrorPathsForTest exposes the error-path scan to the external
// test package (the tests moved out of package gogen when core began
// importing gogen for the native tier's emission probe).
var HasErrorPathsForTest = hasErrorPaths
