package idxprop

import (
	"fmt"
	"math"
)

// bitmapLimit caps the injectivity bitmap: ranges wider than this fall
// back to a hash set so an adversarial range claim cannot force a huge
// allocation.
const bitmapLimit = int64(1) << 26

// VerifyResult is the verdict of one runtime verification pass.
type VerifyResult struct {
	OK     bool
	Reason string // first violated claim, for diagnostics
}

// Verify discharges the runtime claims about one index array in a
// single O(n) pass over its elements: integrality and range bounds,
// the non-decreasing adjacent comparison, and injectivity via a seen
// bitmap over the claimed range (hash set when no range is claimed or
// the range is too wide). A sound verifier is the security boundary of
// the whole conditional-parallelization scheme — any failure routes
// execution to the fully checked sequential path, never to undefined
// behavior.
func Verify(data []float64, claims Claims) VerifyResult {
	var (
		needRange bool
		lo, hi    int64
		needMono  bool
		needInj   bool
	)
	for _, c := range claims {
		switch c.Kind {
		case KRange:
			if needRange {
				// Intersect multiple range claims.
				lo, hi = max64(lo, c.Lo), min64(hi, c.Hi)
			} else {
				needRange, lo, hi = true, c.Lo, c.Hi
			}
		case KMonoNonDec:
			needMono = true
		case KInjective:
			needInj = true
		}
	}
	if !needRange && !needMono && !needInj {
		return VerifyResult{OK: true}
	}
	if len(data) == 0 {
		return VerifyResult{OK: true}
	}

	var seenBits []uint64
	var seenSet map[int64]struct{}
	if needInj {
		if needRange && hi >= lo && hi-lo+1 <= bitmapLimit {
			seenBits = make([]uint64, (hi-lo)/64+1)
		} else {
			seenSet = make(map[int64]struct{}, len(data))
		}
	}

	prev := int64(0)
	for pos, v := range data {
		// Every claim requires integral values: a fractional subscript
		// has no sound integer reading.
		if v != math.Trunc(v) || v < -float64(inferMagLimit) || v > float64(inferMagLimit) {
			return VerifyResult{Reason: fmt.Sprintf("element %d is not an integral subscript (%v)", pos, v)}
		}
		iv := int64(v)
		if needRange && (iv < lo || iv > hi) {
			return VerifyResult{Reason: fmt.Sprintf("range(%d..%d) violated at position %d (value %d)", lo, hi, pos, iv)}
		}
		if needMono && pos > 0 && iv < prev {
			return VerifyResult{Reason: fmt.Sprintf("mono violated at position %d (%d < %d)", pos, iv, prev)}
		}
		if needInj {
			if seenBits != nil {
				// iv is in [lo..hi] here: the range check above rejected
				// everything else before we index the bitmap.
				b := iv - lo
				if seenBits[b/64]&(1<<(b%64)) != 0 {
					return VerifyResult{Reason: fmt.Sprintf("inj violated at position %d (value %d repeats)", pos, iv)}
				}
				seenBits[b/64] |= 1 << (b % 64)
			} else {
				if _, dup := seenSet[iv]; dup {
					return VerifyResult{Reason: fmt.Sprintf("inj violated at position %d (value %d repeats)", pos, iv)}
				}
				seenSet[iv] = struct{}{}
			}
		}
		prev = iv
	}
	return VerifyResult{OK: true}
}
