package idxprop

import (
	"arraycomp/internal/affine"
	"arraycomp/internal/lang"
)

// materializeLimit caps the number of elements Materialize will
// produce; certification of a statically discharged claim should never
// force an enormous allocation.
const materializeLimit = int64(1) << 22

// Materialize evaluates the affine builder shape Infer recognizes —
//
//	idx = array (lo,hi) [ a*i + b := s*i + t | i <- [first..last] ]
//
// — to the concrete element values of the index array, for use as an
// independent witness: the certifier replays the definition and runs
// the same runtime verifier (Verify) over the result, so a statically
// discharged claim is never trusted on the inference's say-so alone.
// Returns ok = false when the definition does not match the shape or
// is too large to replay.
func Materialize(def *lang.ArrayDef, env map[string]int64) ([]float64, bool) {
	if def == nil || def.Kind != lang.Monolithic || def.Rank() != 1 {
		return nil, false
	}
	noIndex := func(string) bool { return false }
	loF, err := affine.FromExpr(def.Bounds[0].Lo, noIndex, env)
	if err != nil || !loF.IsConstant() {
		return nil, false
	}
	hiF, err := affine.FromExpr(def.Bounds[0].Hi, noIndex, env)
	if err != nil || !hiF.IsConstant() {
		return nil, false
	}
	lo, hi := loF.Const, hiF.Const
	if lo > hi || !magOK(lo) || !magOK(hi) || hi-lo+1 > materializeLimit {
		return nil, false
	}

	gen, cl := builderShape(def.Comp)
	if gen == nil || cl == nil || len(cl.Subs) != 1 {
		return nil, false
	}
	firstF, err := affine.FromExpr(gen.First, noIndex, env)
	if err != nil || !firstF.IsConstant() {
		return nil, false
	}
	lastF, err := affine.FromExpr(gen.Last, noIndex, env)
	if err != nil || !lastF.IsConstant() {
		return nil, false
	}
	step := int64(1)
	if gen.Second != nil {
		secondF, err := affine.FromExpr(gen.Second, noIndex, env)
		if err != nil || !secondF.IsConstant() {
			return nil, false
		}
		step = secondF.Const - firstF.Const
	}
	if step != 1 && step != -1 {
		return nil, false
	}
	first, last := firstF.Const, lastF.Const
	if !magOK(first) || !magOK(last) {
		return nil, false
	}
	if (step > 0 && first > last) || (step < 0 && first < last) {
		return nil, false
	}

	isIndex := func(v string) bool { return v == gen.Var }
	sub, err := affine.FromExpr(cl.Subs[0], isIndex, env)
	if err != nil {
		return nil, false
	}
	a := sub.CoeffOf(gen.Var)
	if (a != 1 && a != -1) || len(sub.Coeff) != 1 || !magOK(sub.Const) {
		return nil, false
	}
	p1, p2 := a*first+sub.Const, a*last+sub.Const
	if min64(p1, p2) != lo || max64(p1, p2) != hi {
		return nil, false
	}
	val, err := affine.FromExpr(cl.Value, isIndex, env)
	if err != nil || len(val.Coeff) > 1 {
		return nil, false
	}
	s := val.CoeffOf(gen.Var)
	if !magOK(s) || !magOK(val.Const) || !magOK(s*first+val.Const) || !magOK(s*last+val.Const) {
		return nil, false
	}

	data := make([]float64, hi-lo+1)
	for i := first; ; i += step {
		data[a*i+sub.Const-lo] = float64(s*i + val.Const)
		if i == last {
			break
		}
	}
	return data, true
}
