package idxprop

import (
	"math"
	"math/rand"
	"testing"
)

// bruteVerify is the specification Verify must match: evaluate each
// claimed property by definition over the whole array. Any claim
// requires integral values throughout.
func bruteVerify(data []float64, claims Claims) bool {
	var (
		needRange bool
		lo, hi    int64
		needMono  bool
		needInj   bool
	)
	for _, c := range claims {
		switch c.Kind {
		case KRange:
			if needRange {
				lo, hi = max64(lo, c.Lo), min64(hi, c.Hi)
			} else {
				needRange, lo, hi = true, c.Lo, c.Hi
			}
		case KMonoNonDec:
			needMono = true
		case KInjective:
			needInj = true
		}
	}
	if !needRange && !needMono && !needInj {
		return true
	}
	for _, v := range data {
		if v != math.Trunc(v) || v < -float64(inferMagLimit) || v > float64(inferMagLimit) {
			return false
		}
	}
	if needRange {
		for _, v := range data {
			if int64(v) < lo || int64(v) > hi {
				return false
			}
		}
	}
	if needMono {
		for i := 1; i < len(data); i++ {
			if int64(data[i]) < int64(data[i-1]) {
				return false
			}
		}
	}
	if needInj {
		seen := map[int64]bool{}
		for _, v := range data {
			if seen[int64(v)] {
				return false
			}
			seen[int64(v)] = true
		}
	}
	return true
}

// TestVerifyAgainstBruteForce cross-checks the one-pass verifier
// against the by-definition evaluation over thousands of random arrays
// and claim sets — including empty arrays, fractional values, repeated
// values, sorted and shuffled data, and multiple (intersecting) range
// claims. The verifier is the soundness boundary of conditional
// parallelization: a false OK here would admit an unchecked parallel
// region over violating data.
func TestVerifyAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(20260808))
	okCount, failCount := 0, 0
	for trial := 0; trial < 5000; trial++ {
		n := rng.Intn(24)
		data := make([]float64, n)
		for i := range data {
			switch rng.Intn(10) {
			case 0: // fractional — violates integrality
				data[i] = float64(rng.Intn(12)) + 0.5
			case 1: // negative
				data[i] = -float64(rng.Intn(6))
			default:
				data[i] = float64(rng.Intn(12))
			}
		}
		if rng.Intn(3) == 0 {
			// Sorted variants make mono claims pass often enough.
			for i := 1; i < n; i++ {
				if data[i] < data[i-1] {
					data[i] = data[i-1]
				}
			}
		}
		var claims Claims
		if rng.Intn(2) == 0 {
			lo := int64(rng.Intn(8)) - 2
			claims = append(claims, Claim{Array: "p", Kind: KRange, Lo: lo, Hi: lo + int64(rng.Intn(14))})
		}
		if rng.Intn(3) == 0 { // second, intersecting range claim
			lo := int64(rng.Intn(8)) - 2
			claims = append(claims, Claim{Array: "p", Kind: KRange, Lo: lo, Hi: lo + int64(rng.Intn(14))})
		}
		if rng.Intn(2) == 0 {
			claims = append(claims, Claim{Array: "p", Kind: KMonoNonDec})
		}
		if rng.Intn(2) == 0 {
			claims = append(claims, Claim{Array: "p", Kind: KInjective})
		}
		got := Verify(data, claims)
		want := bruteVerify(data, claims)
		if got.OK != want {
			t.Fatalf("trial %d: Verify=%v want %v\ndata=%v\nclaims=%s\nreason=%s",
				trial, got.OK, want, data, claims, got.Reason)
		}
		if got.OK {
			okCount++
		} else {
			failCount++
		}
	}
	// The trial distribution must exercise both verdicts heavily.
	if okCount < 500 || failCount < 500 {
		t.Fatalf("degenerate trial distribution: ok=%d fail=%d", okCount, failCount)
	}
}
