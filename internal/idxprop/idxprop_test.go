package idxprop

import (
	"testing"

	"arraycomp/internal/parser"
)

func TestInferIncreasing(t *testing.T) {
	d, err := parser.ParseDef(`p = array (1,n) [ i := i | i <- [1..n] ]`)
	if err != nil {
		t.Fatal(err)
	}
	p, ok := Infer(d, map[string]int64{"n": 10})
	if !ok {
		t.Fatal("expected static inference to succeed")
	}
	if !p.MonoNonDec || !p.Injective || !p.HasRange || p.Lo != 1 || p.Hi != 10 {
		t.Fatalf("wrong props: %+v", p)
	}
}

func TestInferDecreasing(t *testing.T) {
	d, err := parser.ParseDef(`p = array (1,n) [ i := n + 1 - i | i <- [1..n] ]`)
	if err != nil {
		t.Fatal(err)
	}
	p, ok := Infer(d, map[string]int64{"n": 8})
	if !ok {
		t.Fatal("expected static inference to succeed")
	}
	if p.MonoNonDec {
		t.Fatalf("decreasing map must not be mono non-decreasing: %+v", p)
	}
	if !p.Injective || !p.HasRange || p.Lo != 1 || p.Hi != 8 {
		t.Fatalf("wrong props: %+v", p)
	}
}

func TestInferConstant(t *testing.T) {
	d, err := parser.ParseDef(`p = array (1,n) [ i := 3 | i <- [1..n] ]`)
	if err != nil {
		t.Fatal(err)
	}
	p, ok := Infer(d, map[string]int64{"n": 5})
	if !ok {
		t.Fatal("expected static inference to succeed")
	}
	if !p.MonoNonDec || p.Injective || p.Lo != 3 || p.Hi != 3 {
		t.Fatalf("wrong props: %+v", p)
	}
}

func TestInferReversedWrite(t *testing.T) {
	// Write positions run backward (coeff -1); value at position p is
	// n+1-p: strictly decreasing, injective.
	d, err := parser.ParseDef(`p = array (1,n) [ n + 1 - i := i | i <- [1..n] ]`)
	if err != nil {
		t.Fatal(err)
	}
	p, ok := Infer(d, map[string]int64{"n": 6})
	if !ok {
		t.Fatal("expected static inference to succeed")
	}
	if p.MonoNonDec || !p.Injective || p.Lo != 1 || p.Hi != 6 {
		t.Fatalf("wrong props: %+v", p)
	}
	if p.Slope != -1 {
		t.Fatalf("slope = %d, want -1", p.Slope)
	}
}

func TestInferRejectsNonAffine(t *testing.T) {
	cases := []string{
		`p = array (1,n) [ i := i * i | i <- [1..n] ]`,          // non-affine value
		`p = array (1,n) [ i := q!(i) | i <- [1..n] ]`,          // indirect value
		`p = accumArray (+) 0.0 (1,n) [ i := i | i <- [1..n] ]`, // accumulated
		`p = array (1,n) [ 2*i := i | i <- [1..n] ]`,            // coeff 2: gaps
		`p = array (1,n) [ i := i | i <- [1..n-1] ]`,            // partial cover
		`p = array ((1,1),(n,n)) [ (i,i) := i | i <- [1..n] ]`,  // rank 2
	}
	for _, src := range cases {
		d, err := parser.ParseDef(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		if _, ok := Infer(d, map[string]int64{"n": 10}); ok {
			t.Errorf("Infer accepted %q; want rejection", src)
		}
	}
}

func TestInferGuardedRejected(t *testing.T) {
	d, err := parser.ParseDef(`p = array (1,n) [* [ i := i ] | i <- [1..n], i >= 1 *]`)
	if err != nil {
		t.Skipf("guarded form does not parse: %v", err)
	}
	if _, ok := Infer(d, map[string]int64{"n": 10}); ok {
		t.Error("Infer accepted a guarded builder")
	}
}

func TestVerifyClaims(t *testing.T) {
	rng := func(lo, hi int64) Claim { return Claim{Array: "p", Kind: KRange, Lo: lo, Hi: hi} }
	mono := Claim{Array: "p", Kind: KMonoNonDec}
	inj := Claim{Array: "p", Kind: KInjective}

	cases := []struct {
		name   string
		data   []float64
		claims Claims
		ok     bool
	}{
		{"empty", nil, Claims{mono, inj, rng(1, 5)}, true},
		{"mono ok", []float64{1, 1, 2, 5}, Claims{mono}, true},
		{"mono bad", []float64{1, 3, 2}, Claims{mono}, false},
		{"inj ok", []float64{3, 1, 2}, Claims{inj}, true},
		{"inj dup", []float64{3, 1, 3}, Claims{inj}, false},
		{"range ok", []float64{1, 5, 3}, Claims{rng(1, 5)}, true},
		{"range low", []float64{0, 5}, Claims{rng(1, 5)}, false},
		{"range high", []float64{1, 6}, Claims{rng(1, 5)}, false},
		{"fractional", []float64{1.5}, Claims{rng(1, 5)}, false},
		{"fractional mono", []float64{0.5, 1}, Claims{mono}, false},
		{"inj+range bitmap", []float64{2, 4, 1, 3}, Claims{inj, rng(1, 4)}, true},
		{"inj+range dup", []float64{2, 4, 2}, Claims{inj, rng(1, 4)}, false},
		{"all", []float64{1, 2, 3, 4}, Claims{mono, inj, rng(1, 4)}, true},
		{"no claims", []float64{7.5}, nil, true},
	}
	for _, tc := range cases {
		got := Verify(tc.data, tc.claims)
		if got.OK != tc.ok {
			t.Errorf("%s: Verify = %+v, want ok=%v", tc.name, got, tc.ok)
		}
		if !got.OK && got.Reason == "" {
			t.Errorf("%s: failure must carry a reason", tc.name)
		}
	}
}

func TestVerifyInjNoRangeUsesSet(t *testing.T) {
	// Without a range claim the verifier must still reject duplicates
	// (hash-set path) and huge values must not allocate a bitmap.
	data := []float64{1 << 30, 2, -5, 2}
	r := Verify(data, Claims{{Array: "p", Kind: KInjective}})
	if r.OK {
		t.Fatal("duplicate survived the set path")
	}
}

func TestClaimsNormalizeAndKey(t *testing.T) {
	cs := Claims{
		{Array: "b", Kind: KInjective},
		{Array: "a", Kind: KRange, Lo: 1, Hi: 9},
		{Array: "b", Kind: KInjective},
	}.Normalize()
	if len(cs) != 2 {
		t.Fatalf("dedup failed: %v", cs)
	}
	if cs[0].Array != "a" {
		t.Fatalf("sort failed: %v", cs)
	}
	if cs.Key() == "" || cs.String() == "" {
		t.Fatal("empty renderings")
	}
	if !cs.Has("b", KInjective) || cs.Has("a", KInjective) {
		t.Fatal("Has is wrong")
	}
}

func TestPropsSatisfies(t *testing.T) {
	p := Props{MonoNonDec: true, Injective: true, HasRange: true, Lo: 2, Hi: 8}
	if !p.Satisfies(Claim{Kind: KRange, Lo: 1, Hi: 10}) {
		t.Error("wider range claim should be satisfied")
	}
	if p.Satisfies(Claim{Kind: KRange, Lo: 3, Hi: 10}) {
		t.Error("narrower range claim must not be satisfied")
	}
	if !p.Satisfies(Claim{Kind: KMonoNonDec}) || !p.Satisfies(Claim{Kind: KInjective}) {
		t.Error("ordering claims should be satisfied")
	}
}
