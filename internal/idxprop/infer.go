package idxprop

import (
	"arraycomp/internal/affine"
	"arraycomp/internal/lang"
)

// inferMagLimit bounds every intermediate magnitude of static
// inference: inferred values must stay exactly representable as
// float64 (the runtime element type) and far from int64 overflow.
const inferMagLimit = int64(1) << 40

// Infer derives index-array properties statically from a defining
// comprehension. It recognizes the affine builder shape
//
//	idx = array (lo,hi) [ a*i + b := s*i + t | i <- [first..last] ]
//
// with a = ±1 (a bijection between iterations and positions) and an
// integral affine value: the value-at-position map is then itself
// affine with slope m = s·a, so
//
//	m > 0 → strictly increasing  → monotone and injective
//	m = 0 → constant             → monotone, injective only if |idx| ≤ 1
//	m < 0 → strictly decreasing  → injective
//
// and the endpoint values give the exact range. The writes must cover
// the declared bounds exactly (the definition's own emptiness analysis
// covers the rest). Any other shape returns ok = false; such arrays can
// still carry runtime-verified claims.
func Infer(def *lang.ArrayDef, env map[string]int64) (Props, bool) {
	if def == nil || def.Kind != lang.Monolithic || def.Rank() != 1 {
		return Props{}, false
	}
	noIndex := func(string) bool { return false }
	loF, err := affine.FromExpr(def.Bounds[0].Lo, noIndex, env)
	if err != nil || !loF.IsConstant() {
		return Props{}, false
	}
	hiF, err := affine.FromExpr(def.Bounds[0].Hi, noIndex, env)
	if err != nil || !hiF.IsConstant() {
		return Props{}, false
	}
	lo, hi := loF.Const, hiF.Const
	if lo > hi || !magOK(lo) || !magOK(hi) {
		return Props{}, false
	}

	gen, cl := builderShape(def.Comp)
	if gen == nil || cl == nil || len(cl.Subs) != 1 {
		return Props{}, false
	}
	isIndex := func(v string) bool { return v == gen.Var }
	firstF, err := affine.FromExpr(gen.First, noIndex, env)
	if err != nil || !firstF.IsConstant() {
		return Props{}, false
	}
	lastF, err := affine.FromExpr(gen.Last, noIndex, env)
	if err != nil || !lastF.IsConstant() {
		return Props{}, false
	}
	step := int64(1)
	if gen.Second != nil {
		secondF, err := affine.FromExpr(gen.Second, noIndex, env)
		if err != nil || !secondF.IsConstant() {
			return Props{}, false
		}
		step = secondF.Const - firstF.Const
	}
	if step != 1 && step != -1 {
		return Props{}, false
	}
	first, last := firstF.Const, lastF.Const
	if !magOK(first) || !magOK(last) {
		return Props{}, false
	}
	if (step > 0 && first > last) || (step < 0 && first < last) {
		return Props{}, false // empty builder defines nothing
	}

	sub, err := affine.FromExpr(cl.Subs[0], isIndex, env)
	if err != nil {
		return Props{}, false
	}
	a := sub.CoeffOf(gen.Var)
	if (a != 1 && a != -1) || len(sub.Coeff) != 1 || !magOK(sub.Const) {
		return Props{}, false
	}
	// Positions are a·i + b over a contiguous i range: contiguous. They
	// must cover [lo..hi] exactly.
	p1, p2 := a*first+sub.Const, a*last+sub.Const
	if min64(p1, p2) != lo || max64(p1, p2) != hi {
		return Props{}, false
	}

	val, err := affine.FromExpr(cl.Value, isIndex, env)
	if err != nil {
		return Props{}, false
	}
	s := val.CoeffOf(gen.Var)
	if len(val.Coeff) > 1 {
		return Props{}, false
	}
	if !magOK(s) || !magOK(val.Const) {
		return Props{}, false
	}
	v1 := s*first + val.Const
	v2 := s*last + val.Const
	if !magOK(v1) || !magOK(v2) {
		return Props{}, false
	}

	m := s * a // value-at-position slope
	p := Props{
		Slope:    m,
		HasRange: true,
		Lo:       min64(v1, v2),
		Hi:       max64(v1, v2),
	}
	switch {
	case m > 0:
		p.MonoNonDec = true
		p.Injective = true
	case m == 0:
		p.MonoNonDec = true
		p.Injective = hi == lo
	default:
		p.Injective = true
	}
	return p, true
}

// builderShape unwraps the comprehension down to a single generator
// over a single unguarded clause, tolerating CompLet wrappers (their
// bindings are resolved lazily by the affine extractor only when the
// subscript references them, which the recognized shape never does).
func builderShape(c lang.CompNode) (*lang.Generator, *lang.Clause) {
	for {
		switch x := c.(type) {
		case *lang.Generator:
			cl, ok := x.Body.(*lang.Clause)
			if !ok {
				return nil, nil
			}
			return x, cl
		case *lang.Append:
			if len(x.Parts) != 1 {
				return nil, nil
			}
			c = x.Parts[0]
		default:
			return nil, nil
		}
	}
}

func magOK(v int64) bool { return v > -inferMagLimit && v < inferMagLimit }

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
