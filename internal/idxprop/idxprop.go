// Package idxprop is the index-array property layer of the
// subscripted-subscript extension (Bhosale & Eigenmann, "Compile-Time
// Parallelization of Subscripted Subscript Patterns"): it infers and
// verifies the three properties that make `a!(idx!(i))` gathers and
// scatters parallelizable —
//
//   - value range   (every element integral and within [Lo..Hi]),
//   - monotonicity  (non-decreasing in position order),
//   - injectivity   (pairwise distinct values),
//
// The properties form a small lattice per array: strictly monotone
// implies both monotone and injective; each property is independent
// otherwise. A fact is established one of two ways:
//
//   - statically, when the index array is built by an affine
//     comprehension visible in the same program (Infer): the
//     value-at-position map is affine, so slope and endpoints decide
//     everything at compile time;
//   - at runtime, as a conditional Claim discharged by a one-pass O(n)
//     verifier (Verify) executed before the parallel region; on failure
//     the program falls back to the fully checked sequential path.
//
// Higher layers consume claims through deptest's property-conditional
// verdicts and the loop IR's BVerify guard.
package idxprop

import (
	"fmt"
	"sort"
	"strings"
)

// Kind is one index-array property.
type Kind uint8

const (
	// KRange: every element is integral and lies within [Lo..Hi].
	KRange Kind = iota + 1
	// KMonoNonDec: elements are non-decreasing in position order.
	KMonoNonDec
	// KInjective: elements are pairwise distinct.
	KInjective
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KRange:
		return "range"
	case KMonoNonDec:
		return "mono"
	case KInjective:
		return "inj"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Claim is one property claimed of one array. Static claims were proven
// at compile time from the array's defining comprehension and need no
// runtime verification (the certifier re-proves them instead); runtime
// claims must be discharged by Verify before any plan that relies on
// them may run.
type Claim struct {
	Array  string
	Kind   Kind
	Lo, Hi int64 // KRange only
	Static bool
}

// String renders e.g. "inj(idx)" or "range(idx,1..100)".
func (c Claim) String() string {
	if c.Kind == KRange {
		return fmt.Sprintf("range(%s,%d..%d)", c.Array, c.Lo, c.Hi)
	}
	return fmt.Sprintf("%s(%s)", c.Kind, c.Array)
}

// Claims is a canonical (sorted, deduplicated) claim set.
type Claims []Claim

// Normalize sorts and deduplicates in place and returns the receiver.
func (cs Claims) Normalize() Claims {
	sort.Slice(cs, func(i, j int) bool {
		if cs[i].Array != cs[j].Array {
			return cs[i].Array < cs[j].Array
		}
		if cs[i].Kind != cs[j].Kind {
			return cs[i].Kind < cs[j].Kind
		}
		if cs[i].Lo != cs[j].Lo {
			return cs[i].Lo < cs[j].Lo
		}
		return cs[i].Hi < cs[j].Hi
	})
	out := cs[:0]
	for _, c := range cs {
		if len(out) > 0 && out[len(out)-1] == c {
			continue
		}
		out = append(out, c)
	}
	return out
}

// String renders the conditional-verdict notation "{inj(idx), range(idx,1..9)}".
func (cs Claims) String() string {
	parts := make([]string, len(cs))
	for i, c := range cs {
		parts[i] = c.String()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// Key is a stable fingerprint of the claim set for cache keys.
func (cs Claims) Key() string {
	parts := make([]string, len(cs))
	for i, c := range cs {
		s := c.String()
		if c.Static {
			s += "/s"
		}
		parts[i] = s
	}
	return strings.Join(parts, ";")
}

// ForArray returns the claims about the named array.
func (cs Claims) ForArray(name string) Claims {
	var out Claims
	for _, c := range cs {
		if c.Array == name {
			out = append(out, c)
		}
	}
	return out
}

// Runtime returns the claims that require runtime verification.
func (cs Claims) Runtime() Claims {
	var out Claims
	for _, c := range cs {
		if !c.Static {
			out = append(out, c)
		}
	}
	return out
}

// Arrays returns the distinct array names claimed about, sorted.
func (cs Claims) Arrays() []string {
	seen := map[string]bool{}
	var out []string
	for _, c := range cs {
		if !seen[c.Array] {
			seen[c.Array] = true
			out = append(out, c.Array)
		}
	}
	sort.Strings(out)
	return out
}

// Has reports whether the set contains a claim of the given kind about
// the array (any range for KRange).
func (cs Claims) Has(array string, kind Kind) bool {
	for _, c := range cs {
		if c.Array == array && c.Kind == kind {
			return true
		}
	}
	return false
}

// Props are the statically inferred properties of one index array.
type Props struct {
	// Slope is the affine value-at-position slope; its sign decides the
	// ordering facts below (kept for diagnostics).
	Slope int64
	// MonoNonDec: values never decrease with position.
	MonoNonDec bool
	// Injective: values are pairwise distinct.
	Injective bool
	// HasRange with [Lo..Hi]: every value integral and in range.
	HasRange bool
	Lo, Hi   int64
}

// Satisfies reports whether the inferred properties prove the claim.
func (p Props) Satisfies(c Claim) bool {
	switch c.Kind {
	case KRange:
		return p.HasRange && p.Lo >= c.Lo && p.Hi <= c.Hi
	case KMonoNonDec:
		return p.MonoNonDec
	case KInjective:
		return p.Injective
	}
	return false
}

// String renders the property set.
func (p Props) String() string {
	var parts []string
	if p.MonoNonDec {
		parts = append(parts, "mono")
	}
	if p.Injective {
		parts = append(parts, "inj")
	}
	if p.HasRange {
		parts = append(parts, fmt.Sprintf("range %d..%d", p.Lo, p.Hi))
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, ", ")
}
