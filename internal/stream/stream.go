// Package stream is the bounded-memory streaming execution engine:
// it runs a pipeline of stream-legal loop-IR programs (see
// loopir.BuildStreamPlan) as chunked producer/consumer stages
// connected by bounded channels, holding O(d)-sized sliding windows
// per array instead of materialized O(n) arrays.
//
// Execution model. The union of the pipeline's output ranges is cut
// into fixed chunks. Every stage walks the same chunk grid: for chunk
// c it first drains its input channels until each upstream window
// covers the chunk plus that edge's forward lookahead, then executes
// its loops restricted to the write positions inside the chunk, then
// emits an immutable copy of its own chunk to every consumer (and the
// collector, for the result stage). Windows slide by one chunk per
// step, retaining exactly the backward history the stream plan proved
// sufficient.
//
// Bitwise identity with the materialized path is by construction, not
// by tolerance: each element is computed once (the compiler proved
// writes collision-free), by the same closure semantics the loop-IR
// interpreter uses (plain Go float64 arithmetic, the same math.*
// builtins, the same short-circuit booleans), reading operands that
// the window invariants prove are the same values the materialized
// order would observe. The oracle's `stream` ablation arm cross-checks
// this bit-for-bit on generated programs.
//
// Memory accounting is deterministic, not RSS sampling: an accountant
// charges every live buffer (resident inputs, windows, in-flight
// chunks, and the materialized result when collecting) and records the
// high-water mark, so CI can gate the streaming-vs-materialized peak
// ratio without scheduler noise.
package stream

import (
	"fmt"
	"sync"
	"sync/atomic"

	"arraycomp/internal/loopir"
	"arraycomp/internal/runtime"
)

// DefaultChunkSize is the chunk grid pitch when the caller does not
// set one. It is raised automatically to the pipeline's max window
// distance so one chunk of lookahead always suffices.
const DefaultChunkSize = 4096

// defaultChanDepth is the bounded-channel capacity beyond the
// lookahead chunks a consumer holds unconsumed — the producer may run
// at most this many chunks ahead before blocking (back-pressure).
const defaultChanDepth = 2

// Def is one pipeline stage: a compiled definition with its stream
// plan. Name is the definition's array name — the name consumers
// declare as RoleIn when they read it.
type Def struct {
	Name string
	Prog *loopir.Program
	Plan *loopir.StreamPlan
}

// Config tunes pipeline construction.
type Config struct {
	// ChunkSize is the chunk grid pitch (0 = DefaultChunkSize). It is
	// raised to the pipeline's max window distance when smaller.
	ChunkSize int64
	// ChanDepth is the per-edge channel capacity beyond the lookahead
	// requirement (0 = defaultChanDepth).
	ChanDepth int
}

// Report is the outcome accounting of one pipeline run.
type Report struct {
	// PeakBytes is the high-water mark of live streaming memory:
	// resident inputs + windows + in-flight chunks (+ the materialized
	// result when collecting).
	PeakBytes int64
	// MaterializedBytes is what the interpreted pipeline would hold
	// live at its peak: every input plus every definition's output.
	MaterializedBytes int64
	// Chunks is the number of grid chunks each stage walked.
	Chunks int64
	// ChunkSize is the grid pitch used.
	ChunkSize int64
	// Stages is the stage count.
	Stages int
	// MaxDist is the largest window distance in the pipeline.
	MaxDist int64
}

// Pipeline is a compiled streaming pipeline: per-stage closure
// programs plus the edge topology. It is immutable after Build and
// safe for concurrent Runs.
type Pipeline struct {
	defs   []Def
	comp   []*compiledDef
	result int // index of the result stage
	chunk  int64
	depth  int
	nCh    int64 // grid chunk count
	gridLo int64
	// edges[i] lists stage i's upstream edges.
	edges [][]edgeSpec
	// consumers[i] counts stage i's downstream readers (excluding the
	// collector).
	consumers []int
	// resident[i] maps frame array slots to external input names for
	// stage i.
	resident []map[int]string
	// residentNames is the deduplicated external input set with the
	// bounds each must have.
	residentNames map[string]runtime.Bounds
	maxDist       int64
	matBytes      int64 // materialized-path live bytes (inputs + outputs)
}

// edgeSpec is the Build-time description of one producer→consumer
// window.
type edgeSpec struct {
	from   int // producer stage
	slot   int // consumer frame array slot
	back   int64
	fwd    int64
	kAhead int64 // lookahead chunks: ceil(fwd/chunk)
	srcLo  int64
}

// Build compiles a pipeline from definitions in evaluation order.
// Every read of an earlier definition's output must be windowable
// (constant offsets); reads of external arrays are held resident.
func Build(defs []Def, result string, cfg Config) (*Pipeline, error) {
	if len(defs) == 0 {
		return nil, fmt.Errorf("stream: empty pipeline")
	}
	p := &Pipeline{
		defs:          defs,
		chunk:         cfg.ChunkSize,
		depth:         cfg.ChanDepth,
		result:        -1,
		residentNames: map[string]runtime.Bounds{},
	}
	if p.chunk <= 0 {
		p.chunk = DefaultChunkSize
	}
	if p.depth <= 0 {
		p.depth = defaultChanDepth
	}
	prodIdx := map[string]int{}
	for i, d := range defs {
		if d.Prog == nil || d.Plan == nil {
			return nil, fmt.Errorf("stream: stage %s has no plan", d.Name)
		}
		if d.Plan.Out != d.Name {
			return nil, fmt.Errorf("stream: stage %s writes %s; stages must write their own name", d.Name, d.Plan.Out)
		}
		if _, dup := prodIdx[d.Name]; dup {
			return nil, fmt.Errorf("stream: duplicate stage %s", d.Name)
		}
		prodIdx[d.Name] = i
		if d.Name == result {
			p.result = i
		}
		if d.Plan.MaxDist > p.maxDist {
			p.maxDist = d.Plan.MaxDist
		}
	}
	if p.result < 0 {
		return nil, fmt.Errorf("stream: result %s is not a stage", result)
	}
	if p.chunk < p.maxDist {
		p.chunk = p.maxDist
	}
	// Grid and per-stage topology.
	gridLo, gridHi := defs[0].Plan.Lo, defs[0].Plan.Hi
	p.edges = make([][]edgeSpec, len(defs))
	p.consumers = make([]int, len(defs))
	p.resident = make([]map[int]string, len(defs))
	p.comp = make([]*compiledDef, len(defs))
	for i, d := range defs {
		if d.Plan.Lo < gridLo {
			gridLo = d.Plan.Lo
		}
		if d.Plan.Hi > gridHi {
			gridHi = d.Plan.Hi
		}
		cd, err := compileDef(d)
		if err != nil {
			return nil, fmt.Errorf("stream: stage %s: %w", d.Name, err)
		}
		p.comp[i] = cd
		p.resident[i] = map[int]string{}
		for _, w := range d.Plan.Reads {
			slot, ok := cd.arraySlot[w.Array]
			if !ok {
				// The plan saw a read the compiled body never evaluates
				// (can't happen today; defensive).
				continue
			}
			src, produced := prodIdx[w.Array]
			if !produced {
				decl := d.Prog.Decl(w.Array)
				if decl == nil {
					return nil, fmt.Errorf("stream: stage %s reads undeclared %s", d.Name, w.Array)
				}
				if have, seen := p.residentNames[w.Array]; seen && !have.Equal(decl.B) {
					return nil, fmt.Errorf("stream: input %s declared with two different bounds", w.Array)
				}
				p.residentNames[w.Array] = decl.B
				p.resident[i][slot] = w.Array
				continue
			}
			if src >= i {
				return nil, fmt.Errorf("stream: stage %s reads %s out of evaluation order", d.Name, w.Array)
			}
			if !w.Windowable {
				return nil, fmt.Errorf("stream: stage %s needs %s resident, but it is a pipeline stage output", d.Name, w.Array)
			}
			sp := defs[src].Plan
			decl := d.Prog.Decl(w.Array)
			if decl == nil || decl.B.Rank() != 1 || decl.B.Lo[0] != sp.Lo || decl.B.Hi[0] != sp.Hi {
				return nil, fmt.Errorf("stream: stage %s declares %s with bounds differing from its producer", d.Name, w.Array)
			}
			kAhead := (w.Fwd + p.chunk - 1) / p.chunk
			p.edges[i] = append(p.edges[i], edgeSpec{from: src, slot: slot, back: w.Back, fwd: w.Fwd, kAhead: kAhead, srcLo: sp.Lo})
			p.consumers[src]++
		}
	}
	p.gridLo = gridLo
	p.nCh = (gridHi-gridLo)/p.chunk + 1
	// Materialized-path live bytes: every external input plus every
	// definition's output stays in the interpreter's store for the
	// whole run.
	for _, b := range p.residentNames {
		p.matBytes += b.Size() * 8
	}
	for _, d := range defs {
		p.matBytes += (d.Plan.Hi - d.Plan.Lo + 1) * 8
	}
	return p, nil
}

// ChunkSize reports the grid pitch the pipeline will run with.
func (p *Pipeline) ChunkSize() int64 { return p.chunk }

// MaxDist reports the pipeline's largest window distance.
func (p *Pipeline) MaxDist() int64 { return p.maxDist }

// Stages reports the stage count.
func (p *Pipeline) Stages() int { return len(p.defs) }

// MaterializedBytes reports the materialized path's live footprint.
func (p *Pipeline) MaterializedBytes() int64 { return p.matBytes }

// ResultBounds returns the rank-1 bounds of the streamed result.
func (p *Pipeline) ResultBounds() (lo, hi int64) {
	plan := p.defs[p.result].Plan
	return plan.Lo, plan.Hi
}

// Run executes the pipeline and materializes the result array.
func (p *Pipeline) Run(inputs map[string]*runtime.Strict) (*runtime.Strict, Report, error) {
	return p.run(inputs, nil, true)
}

// RunEmit executes the pipeline, delivering each non-empty result
// chunk to emit in position order without materializing the result.
// The data slice is only valid during the callback. A non-nil error
// from emit aborts the run.
func (p *Pipeline) RunEmit(inputs map[string]*runtime.Strict, emit func(lo int64, data []float64) error) (Report, error) {
	_, rep, err := p.run(inputs, emit, false)
	return rep, err
}

// --- run state ---

// accountant is the deterministic live-byte meter.
type accountant struct {
	cur, peak atomic.Int64
}

func (a *accountant) charge(b int64) {
	c := a.cur.Add(b)
	for {
		pk := a.peak.Load()
		if c <= pk || a.peak.CompareAndSwap(pk, c) {
			return
		}
	}
}

func (a *accountant) release(b int64) { a.cur.Add(-b) }

// chunkMsg is one emitted chunk: an immutable copy of the producer's
// window over [start, start+len(data)), refcounted across receivers
// for accounting.
type chunkMsg struct {
	idx   int64
	start int64
	data  []float64
	bytes int64
	refs  atomic.Int32
	acct  *accountant
}

func (m *chunkMsg) release() {
	if m.refs.Add(-1) == 0 && m.bytes > 0 {
		m.acct.release(m.bytes)
	}
}

// runEdge is the per-run state of one upstream window.
type runEdge struct {
	spec    edgeSpec
	ch      chan *chunkMsg
	buf     []float64
	base    int64 // absolute position of buf[0]
	recvIdx int64 // last integrated chunk index
}

// run drives one execution. collect materializes the result; emit, if
// non-nil, receives result chunks in order.
func (p *Pipeline) run(inputs map[string]*runtime.Strict, emit func(int64, []float64) error, collect bool) (*runtime.Strict, Report, error) {
	acct := &accountant{}
	rep := Report{
		MaterializedBytes: p.matBytes,
		Chunks:            p.nCh,
		ChunkSize:         p.chunk,
		Stages:            len(p.defs),
		MaxDist:           p.maxDist,
	}
	// Validate and charge resident inputs.
	for name, b := range p.residentNames {
		in, ok := inputs[name]
		if !ok {
			return nil, rep, fmt.Errorf("stream: missing input array %q", name)
		}
		if !in.B.Equal(b) {
			return nil, rep, fmt.Errorf("stream: input %s has bounds %v..%v, want %v..%v", name, in.B.Lo, in.B.Hi, b.Lo, b.Hi)
		}
		acct.charge(b.Size() * 8)
	}
	// Abort plumbing: first error wins, every blocked send/recv
	// unblocks on the closed channel.
	var abortOnce sync.Once
	abortCh := make(chan struct{})
	var abortErr error
	abort := func(err error) {
		abortOnce.Do(func() {
			abortErr = err
			close(abortCh)
		})
	}
	// Wire the edges: one channel per producer→consumer pair, plus the
	// collector channel off the result stage.
	chans := make([][]*runEdge, len(p.defs)) // consumer-side
	outs := make([][]chan *chunkMsg, len(p.defs))
	for i := range p.defs {
		for _, es := range p.edges[i] {
			e := &runEdge{
				spec:    es,
				ch:      make(chan *chunkMsg, int64(p.depth)+es.kAhead),
				buf:     make([]float64, es.back+p.chunk+es.kAhead*p.chunk),
				recvIdx: -1,
			}
			chans[i] = append(chans[i], e)
			outs[es.from] = append(outs[es.from], e.ch)
		}
	}
	collectCh := make(chan *chunkMsg, p.depth)
	outs[p.result] = append(outs[p.result], collectCh)

	var wg sync.WaitGroup
	for i := range p.defs {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			if err := p.runStage(si, inputs, chans[si], outs[si], acct, abortCh); err != nil {
				abort(err)
			}
		}(i)
	}
	// Collector: drain the result stage in chunk order.
	var out *runtime.Strict
	resPlan := p.defs[p.result].Plan
	if collect {
		out = runtime.NewStrict(runtime.NewBounds1(resPlan.Lo, resPlan.Hi))
		acct.charge(out.B.Size() * 8)
	}
	var collectErr error
collector:
	for got := int64(0); got < p.nCh; got++ {
		select {
		case m := <-collectCh:
			if len(m.data) > 0 {
				if emit != nil && collectErr == nil {
					if err := emit(m.start, m.data); err != nil {
						collectErr = err
						abort(fmt.Errorf("stream: emit: %w", err))
					}
				}
				if collect {
					copy(out.Data[m.start-resPlan.Lo:], m.data)
				}
			}
			m.release()
		case <-abortCh:
			break collector
		}
	}
	wg.Wait()
	rep.PeakBytes = acct.peak.Load()
	if abortErr != nil {
		return nil, rep, abortErr
	}
	return out, rep, nil
}

// runStage walks the chunk grid for one stage.
func (p *Pipeline) runStage(si int, inputs map[string]*runtime.Strict, edges []*runEdge, outs []chan *chunkMsg, acct *accountant, abortCh <-chan struct{}) error {
	cd := p.comp[si]
	plan := p.defs[si].Plan
	C := p.chunk
	// Own output window: [clo-SelfBack, chi], zero-initialized like a
	// fresh materialized output.
	ownBuf := make([]float64, plan.SelfBack+C)
	ownBase := p.gridLo - plan.SelfBack
	winBytes := int64(len(ownBuf)) * 8
	for _, e := range edges {
		e.base = p.gridLo - e.spec.back
		winBytes += int64(len(e.buf)) * 8
	}
	acct.charge(winBytes)
	defer acct.release(winBytes)
	// Frame: readers resolve array slots to resident slices, upstream
	// windows, or the own window.
	f := &frame{
		vars:    make([]int64, cd.nVars),
		scalars: make([]float64, cd.nScalars),
		readFn:  make([]func(int64) float64, cd.nArrays),
	}
	f.write = func(pos int64, v float64) { ownBuf[pos-ownBase] = v }
	if cd.selfSlot >= 0 {
		f.readFn[cd.selfSlot] = func(pos int64) float64 { return ownBuf[pos-ownBase] }
	}
	for slot, name := range p.resident[si] {
		in := inputs[name]
		data, lo := in.Data, in.B.Lo[0]
		f.readFn[slot] = func(pos int64) float64 { return data[pos-lo] }
	}
	for _, e := range edges {
		e := e
		f.readFn[e.spec.slot] = func(pos int64) float64 { return e.buf[pos-e.base] }
	}
	for slot, fn := range f.readFn {
		if fn == nil {
			return fmt.Errorf("stream: stage %s: array slot %d unresolved", p.defs[si].Name, slot)
		}
	}

	for ci := int64(0); ci < p.nCh; ci++ {
		clo := p.gridLo + ci*C
		chi := clo + C - 1
		if ci > 0 {
			// Slide: retain the backward history, zero the fresh span
			// of the own window (fresh-array semantics).
			copy(ownBuf[:plan.SelfBack], ownBuf[C:])
			for k := plan.SelfBack; k < int64(len(ownBuf)); k++ {
				ownBuf[k] = 0
			}
			ownBase += C
			for _, e := range edges {
				copy(e.buf[:int64(len(e.buf))-C], e.buf[C:])
				e.base += C
			}
		}
		// Drain upstream until every window covers this chunk's reads
		// plus lookahead.
		for _, e := range edges {
			need := ci + e.spec.kAhead
			if need > p.nCh-1 {
				need = p.nCh - 1
			}
			for e.recvIdx < need {
				select {
				case m := <-e.ch:
					if len(m.data) > 0 {
						dst := m.start - e.base
						if dst < 0 || dst+int64(len(m.data)) > int64(len(e.buf)) {
							m.release()
							return fmt.Errorf("stream: stage %s: chunk %d from %s outside window", p.defs[si].Name, m.idx, p.defs[e.spec.from].Name)
						}
						copy(e.buf[dst:], m.data)
					}
					e.recvIdx = m.idx
					m.release()
				case <-abortCh:
					return nil
				}
			}
		}
		// Execute the chunk: top-level statements in program order,
		// loops clamped to write positions inside [clo, chi].
		for _, ts := range cd.tops {
			if ts.run == nil {
				f.scalars[ts.scalar] = ts.setFn(f)
				continue
			}
			lo, hi := ts.from, ts.to
			if w := clo - ts.cw; w > lo {
				lo = w
			}
			if w := chi - ts.cw; w < hi {
				hi = w
			}
			if lo <= hi {
				ts.run(f, lo, hi)
			}
		}
		// Emit the immutable chunk copy.
		s, e := clo, chi
		if plan.Lo > s {
			s = plan.Lo
		}
		if plan.Hi < e {
			e = plan.Hi
		}
		var data []float64
		if s <= e {
			data = make([]float64, e-s+1)
			copy(data, ownBuf[s-ownBase:])
		}
		if len(outs) == 0 {
			continue
		}
		m := &chunkMsg{idx: ci, start: s, data: data, bytes: int64(len(data)) * 8, acct: acct}
		m.refs.Store(int32(len(outs)))
		if m.bytes > 0 {
			acct.charge(m.bytes)
		}
		for _, ch := range outs {
			select {
			case ch <- m:
			case <-abortCh:
				return nil
			}
		}
	}
	return nil
}
