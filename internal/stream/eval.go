// Closure compilation of one streaming stage. This mirrors
// loopir/compile.go's value semantics exactly — plain Go float64
// arithmetic, the same math.* builtins, short-circuit booleans — so a
// chunked execution stores bit-identical values to the materialized
// interpreter. It compiles only the shapes BuildStreamPlan admits
// (affine subscripts, check-free reads, rank-1 unit-step loops);
// anything else is a build error, never a silent approximation.
//
// Compilation happens once at Pipeline.Build; the closures take an
// explicit *frame so concurrent runs of a shared pipeline never touch
// shared mutable state.
package stream

import (
	"fmt"
	"math"

	"arraycomp/internal/loopir"
)

// frame is the per-run, per-stage evaluation state.
type frame struct {
	vars    []int64
	scalars []float64
	// readFn resolves an array slot to a positional reader (resident
	// slice, upstream window, or the stage's own window).
	readFn []func(int64) float64
	// write stores into the stage's own window.
	write func(int64, float64)
}

type (
	intFn   func(*frame) int64
	floatFn func(*frame) float64
	boolFn  func(*frame) bool
	stmtFn  func(*frame)
)

// topStmt is one top-level statement: a scalar set (run is nil) or a
// loop, whose run executes iterations lo..hi of the variable range
// (the stage clamps to the chunk via the write offset cw).
type topStmt struct {
	scalar int
	setFn  floatFn
	run    func(f *frame, lo, hi int64)
	from   int64
	to     int64
	cw     int64
}

// compiledDef is the immutable compiled form of one stage.
type compiledDef struct {
	nVars    int
	nScalars int
	nArrays  int
	// selfSlot is the own-output array slot, -1 when the stage never
	// reads itself.
	selfSlot  int
	arraySlot map[string]int
	tops      []topStmt
}

type defCompiler struct {
	out        string
	varSlot    map[string]int
	scalarSlot map[string]int
	arraySlot  map[string]int
	err        error
}

func (c *defCompiler) fail(format string, args ...any) {
	if c.err == nil {
		c.err = fmt.Errorf(format, args...)
	}
}

func (c *defCompiler) varOf(name string) int {
	if s, ok := c.varSlot[name]; ok {
		return s
	}
	s := len(c.varSlot)
	c.varSlot[name] = s
	return s
}

func (c *defCompiler) scalarOf(name string) int {
	if s, ok := c.scalarSlot[name]; ok {
		return s
	}
	s := len(c.scalarSlot)
	c.scalarSlot[name] = s
	return s
}

func (c *defCompiler) arrayOf(name string) int {
	if s, ok := c.arraySlot[name]; ok {
		return s
	}
	s := len(c.arraySlot)
	c.arraySlot[name] = s
	return s
}

// compileDef compiles one stream-legal program into its stage form.
func compileDef(d Def) (*compiledDef, error) {
	c := &defCompiler{
		out:        d.Plan.Out,
		varSlot:    map[string]int{},
		scalarSlot: map[string]int{},
		arraySlot:  map[string]int{},
	}
	var tops []topStmt
	for _, s := range d.Prog.Stmts {
		switch x := s.(type) {
		case *loopir.SetScalar:
			tops = append(tops, topStmt{scalar: c.scalarOf(x.Name), setFn: c.float(x.Rhs)})
		case *loopir.Loop:
			cw, ok := writeOffsetOf(x.Body, x.Var, c.out)
			if !ok {
				c.fail("loop over %s: write subscript is not %s+c", x.Var, x.Var)
				break
			}
			vs := c.varOf(x.Var)
			body := c.stmts(x.Body)
			tops = append(tops, topStmt{
				scalar: -1,
				from:   x.From,
				to:     x.To,
				cw:     cw,
				run: func(f *frame, lo, hi int64) {
					for i := lo; i <= hi; i++ {
						f.vars[vs] = i
						for _, st := range body {
							st(f)
						}
					}
				},
			})
		case *loopir.Assign:
			// A constant-subscript point assign (lowered base case):
			// subscripts are interpreted positionally, so it compiles
			// like a loop body and runs in the one chunk containing its
			// write position.
			w, ok := constIntOf(x.Subs)
			if !ok {
				c.fail("top-level assign to %s has a non-constant subscript", x.Array)
				break
			}
			body := c.stmts([]loopir.Stmt{x})
			tops = append(tops, topStmt{
				scalar: -1,
				from:   w,
				to:     w,
				run: func(f *frame, lo, hi int64) {
					for _, st := range body {
						st(f)
					}
				},
			})
		default:
			c.fail("top-level %T is not streamable", s)
		}
	}
	if c.err != nil {
		return nil, c.err
	}
	cd := &compiledDef{
		nVars:     len(c.varSlot),
		nScalars:  len(c.scalarSlot),
		nArrays:   len(c.arraySlot),
		selfSlot:  -1,
		arraySlot: map[string]int{},
		tops:      tops,
	}
	for n, s := range c.arraySlot {
		if n == c.out {
			cd.selfSlot = s
		} else {
			cd.arraySlot[n] = s
		}
	}
	return cd, nil
}

// writeOffsetOf finds the loop's write offset: every Assign targets
// out at var+cw. Mirrors loopir's stream legality matcher.
func writeOffsetOf(body []loopir.Stmt, v, out string) (int64, bool) {
	cw, n := int64(0), 0
	var walk func(stmts []loopir.Stmt) bool
	walk = func(stmts []loopir.Stmt) bool {
		for _, s := range stmts {
			switch x := s.(type) {
			case *loopir.Assign:
				if x.Array != out || len(x.Subs) != 1 {
					return false
				}
				off, ok := constOffset(x.Subs[0], v)
				if !ok {
					return false
				}
				if n == 0 {
					cw = off
				} else if off != cw {
					return false
				}
				n++
			case *loopir.If:
				if !walk(x.Then) || !walk(x.Else) {
					return false
				}
			case *loopir.Loop:
				return false
			}
		}
		return true
	}
	if !walk(body) || n == 0 {
		return 0, false
	}
	return cw, true
}

// constIntOf matches a single constant subscript.
func constIntOf(subs []loopir.IntExpr) (int64, bool) {
	if len(subs) != 1 {
		return 0, false
	}
	switch x := subs[0].(type) {
	case *loopir.IConst:
		return x.Value, true
	case *loopir.ILin:
		if len(x.Terms) == 0 {
			return x.Const, true
		}
	}
	return 0, false
}

// constOffset matches var+c with coefficient 1.
func constOffset(e loopir.IntExpr, v string) (int64, bool) {
	switch x := e.(type) {
	case *loopir.IVar:
		if x.Name == v {
			return 0, true
		}
	case *loopir.ILin:
		if len(x.Terms) == 1 && x.Terms[0].Var == v && x.Terms[0].Coeff == 1 {
			return x.Const, true
		}
	}
	return 0, false
}

func (c *defCompiler) stmts(body []loopir.Stmt) []stmtFn {
	var out []stmtFn
	for _, s := range body {
		switch x := s.(type) {
		case *loopir.Assign:
			pos := c.integer(x.Subs[0])
			val := c.float(x.Rhs)
			out = append(out, func(f *frame) { f.write(pos(f), val(f)) })
		case *loopir.SetScalar:
			slot := c.scalarOf(x.Name)
			val := c.float(x.Rhs)
			out = append(out, func(f *frame) { f.scalars[slot] = val(f) })
		case *loopir.If:
			cond := c.boolean(x.Cond)
			th := c.stmts(x.Then)
			el := c.stmts(x.Else)
			out = append(out, func(f *frame) {
				branch := el
				if cond(f) {
					branch = th
				}
				for _, st := range branch {
					st(f)
				}
			})
		default:
			c.fail("loop body %T is not streamable", s)
			return nil
		}
	}
	return out
}

func (c *defCompiler) integer(e loopir.IntExpr) intFn {
	switch x := e.(type) {
	case *loopir.IConst:
		v := x.Value
		return func(*frame) int64 { return v }
	case *loopir.IVar:
		slot := c.varOf(x.Name)
		return func(f *frame) int64 { return f.vars[slot] }
	case *loopir.ILin:
		k := x.Const
		if len(x.Terms) == 0 {
			return func(*frame) int64 { return k }
		}
		if len(x.Terms) == 1 {
			slot := c.varOf(x.Terms[0].Var)
			coeff := x.Terms[0].Coeff
			if coeff == 1 {
				return func(f *frame) int64 { return k + f.vars[slot] }
			}
			return func(f *frame) int64 { return k + coeff*f.vars[slot] }
		}
		type term struct {
			slot  int
			coeff int64
		}
		terms := make([]term, len(x.Terms))
		for i, t := range x.Terms {
			terms[i] = term{c.varOf(t.Var), t.Coeff}
		}
		return func(f *frame) int64 {
			v := k
			for _, t := range terms {
				v += t.coeff * f.vars[t.slot]
			}
			return v
		}
	}
	c.fail("integer expression %T is not streamable", e)
	return func(*frame) int64 { return 0 }
}

func (c *defCompiler) float(e loopir.VExpr) floatFn {
	switch x := e.(type) {
	case *loopir.VConst:
		v := x.Value
		return func(*frame) float64 { return v }
	case *loopir.VFromInt:
		fn := c.integer(x.X)
		return func(f *frame) float64 { return float64(fn(f)) }
	case *loopir.VScalar:
		slot := c.scalarOf(x.Name)
		return func(f *frame) float64 { return f.scalars[slot] }
	case *loopir.ARef:
		if len(x.Subs) != 1 || x.CheckBounds || x.CheckDefined {
			c.fail("read of %s is not streamable", x.Array)
			return func(*frame) float64 { return 0 }
		}
		slot := c.arrayOf(x.Array)
		pos := c.integer(x.Subs[0])
		return func(f *frame) float64 { return f.readFn[slot](pos(f)) }
	case *loopir.VBin:
		l, r := c.float(x.L), c.float(x.R)
		switch x.Op {
		case '+':
			return func(f *frame) float64 { return l(f) + r(f) }
		case '-':
			return func(f *frame) float64 { return l(f) - r(f) }
		case '*':
			return func(f *frame) float64 { return l(f) * r(f) }
		case '/':
			return func(f *frame) float64 { return l(f) / r(f) }
		}
		c.fail("unknown float operator %q", string(x.Op))
	case *loopir.VNeg:
		fn := c.float(x.X)
		return func(f *frame) float64 { return -fn(f) }
	case *loopir.VCall:
		return c.call(x)
	case *loopir.VCond:
		cond := c.boolean(x.C)
		th, el := c.float(x.T), c.float(x.E)
		return func(f *frame) float64 {
			if cond(f) {
				return th(f)
			}
			return el(f)
		}
	default:
		c.fail("value expression %T is not streamable", e)
	}
	return func(*frame) float64 { return 0 }
}

func (c *defCompiler) call(x *loopir.VCall) floatFn {
	args := make([]floatFn, len(x.Args))
	for i, a := range x.Args {
		args[i] = c.float(a)
	}
	need := func(n int) bool {
		if len(args) != n {
			c.fail("builtin %s expects %d arguments, got %d", x.Fn, n, len(args))
			return false
		}
		return true
	}
	switch x.Fn {
	case "abs":
		if need(1) {
			a := args[0]
			return func(f *frame) float64 { return math.Abs(a(f)) }
		}
	case "sqrt":
		if need(1) {
			a := args[0]
			return func(f *frame) float64 { return math.Sqrt(a(f)) }
		}
	case "exp":
		if need(1) {
			a := args[0]
			return func(f *frame) float64 { return math.Exp(a(f)) }
		}
	case "log":
		if need(1) {
			a := args[0]
			return func(f *frame) float64 { return math.Log(a(f)) }
		}
	case "sin":
		if need(1) {
			a := args[0]
			return func(f *frame) float64 { return math.Sin(a(f)) }
		}
	case "cos":
		if need(1) {
			a := args[0]
			return func(f *frame) float64 { return math.Cos(a(f)) }
		}
	case "min":
		if need(2) {
			a, b := args[0], args[1]
			return func(f *frame) float64 { return math.Min(a(f), b(f)) }
		}
	case "max":
		if need(2) {
			a, b := args[0], args[1]
			return func(f *frame) float64 { return math.Max(a(f), b(f)) }
		}
	case "pow":
		if need(2) {
			a, b := args[0], args[1]
			return func(f *frame) float64 { return math.Pow(a(f), b(f)) }
		}
	default:
		c.fail("unknown builtin %q", x.Fn)
	}
	return func(*frame) float64 { return 0 }
}

func (c *defCompiler) boolean(b loopir.BExpr) boolFn {
	switch x := b.(type) {
	case *loopir.BConst:
		v := x.Value
		return func(*frame) bool { return v }
	case *loopir.BCmpInt:
		l, r := c.integer(x.L), c.integer(x.R)
		switch x.Op {
		case "==":
			return func(f *frame) bool { return l(f) == r(f) }
		case "/=":
			return func(f *frame) bool { return l(f) != r(f) }
		case "<":
			return func(f *frame) bool { return l(f) < r(f) }
		case "<=":
			return func(f *frame) bool { return l(f) <= r(f) }
		case ">":
			return func(f *frame) bool { return l(f) > r(f) }
		case ">=":
			return func(f *frame) bool { return l(f) >= r(f) }
		}
		c.fail("unknown comparison %q", x.Op)
	case *loopir.BCmpFloat:
		l, r := c.float(x.L), c.float(x.R)
		switch x.Op {
		case "==":
			return func(f *frame) bool { return l(f) == r(f) }
		case "/=":
			return func(f *frame) bool { return l(f) != r(f) }
		case "<":
			return func(f *frame) bool { return l(f) < r(f) }
		case "<=":
			return func(f *frame) bool { return l(f) <= r(f) }
		case ">":
			return func(f *frame) bool { return l(f) > r(f) }
		case ">=":
			return func(f *frame) bool { return l(f) >= r(f) }
		}
		c.fail("unknown comparison %q", x.Op)
	case *loopir.BAnd:
		l, r := c.boolean(x.L), c.boolean(x.R)
		return func(f *frame) bool { return l(f) && r(f) }
	case *loopir.BOr:
		l, r := c.boolean(x.L), c.boolean(x.R)
		return func(f *frame) bool { return l(f) || r(f) }
	case *loopir.BNot:
		fn := c.boolean(x.X)
		return func(f *frame) bool { return !fn(f) }
	default:
		c.fail("boolean expression %T is not streamable", b)
	}
	return func(*frame) bool { return false }
}
