package stream_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"arraycomp/internal/analysis"
	"arraycomp/internal/core"
	"arraycomp/internal/loopir"
	"arraycomp/internal/runtime"
	"arraycomp/internal/stream"
)

func b1(lo, hi int64) runtime.Bounds { return runtime.NewBounds1(lo, hi) }

func inBounds(name string, lo, hi int64) map[string]analysis.ArrayBounds {
	return map[string]analysis.ArrayBounds{name: {Lo: []int64{lo}, Hi: []int64{hi}}}
}

// iv / off build the two subscript shapes streaming admits.
func iv(v string) loopir.IntExpr { return &loopir.IVar{Name: v} }
func off(v string, c int64) loopir.IntExpr {
	return &loopir.ILin{Const: c, Terms: []loopir.ITerm{{Var: v, Coeff: 1}}}
}

func aref(a string, s loopir.IntExpr) loopir.VExpr {
	return &loopir.ARef{Array: a, Subs: []loopir.IntExpr{s}}
}

// fill deterministically fills an array with dyadic rationals so
// float comparisons are exact.
func fill(b runtime.Bounds, seed int64) *runtime.Strict {
	a := runtime.NewStrict(b)
	r := rand.New(rand.NewSource(seed))
	for i := range a.Data {
		a.Data[i] = float64(r.Intn(1<<20)-1<<19) / 1024.0
	}
	return a
}

// runMaterialized executes the defs through the loop-IR interpreter in
// order, exactly like core's runInterp store walk.
func runMaterialized(t *testing.T, defs []stream.Def, inputs map[string]*runtime.Strict, result string) *runtime.Strict {
	t.Helper()
	store := map[string]*runtime.Strict{}
	for k, v := range inputs {
		store[k] = v
	}
	for _, d := range defs {
		ex, err := loopir.Compile(d.Prog)
		if err != nil {
			t.Fatalf("compile %s: %v", d.Name, err)
		}
		out, err := ex.RunResult(store)
		if err != nil {
			t.Fatalf("run %s: %v", d.Name, err)
		}
		store[d.Name] = out
	}
	return store[result]
}

// mkDef wraps a program into a stream.Def, deriving its plan.
func mkDef(t *testing.T, name string, prog *loopir.Program) stream.Def {
	t.Helper()
	sp, err := loopir.BuildStreamPlan(prog)
	if err != nil {
		t.Fatalf("BuildStreamPlan(%s): %v", name, err)
	}
	return stream.Def{Name: name, Prog: prog, Plan: sp}
}

// smoothProg builds out[i] = (src[i-1] + src[i] + src[i+1]) / 3 over
// the interior with copied edges — a bounded-distance consumer with
// both backward and forward reads.
func smoothProg(name, src string, lo, hi int64) *loopir.Program {
	v := "i"
	sum := &loopir.VBin{Op: '+',
		L: &loopir.VBin{Op: '+', L: aref(src, off(v, -1)), R: aref(src, iv(v))},
		R: aref(src, off(v, 1))}
	return &loopir.Program{
		Name: name,
		Arrays: []loopir.ArrayDecl{
			{Name: src, B: b1(lo, hi), Role: loopir.RoleIn},
			{Name: name, B: b1(lo, hi), Role: loopir.RoleOut},
		},
		Stmts: []loopir.Stmt{
			&loopir.Loop{Var: v, From: lo, To: lo, Step: 1, Body: []loopir.Stmt{
				&loopir.Assign{Array: name, Subs: []loopir.IntExpr{iv(v)}, Rhs: aref(src, iv(v))},
			}},
			&loopir.Loop{Var: v, From: lo + 1, To: hi - 1, Step: 1, Body: []loopir.Stmt{
				&loopir.Assign{Array: name, Subs: []loopir.IntExpr{iv(v)},
					Rhs: &loopir.VBin{Op: '/', L: sum, R: &loopir.VConst{Value: 3}}},
			}},
			&loopir.Loop{Var: v, From: hi, To: hi, Step: 1, Body: []loopir.Stmt{
				&loopir.Assign{Array: name, Subs: []loopir.IntExpr{iv(v)}, Rhs: aref(src, iv(v))},
			}},
		},
	}
}

// ewmaProg builds the recurrence out[lo] = src[lo];
// out[i] = out[i-1]*0.75 + src[i]*0.25 — carried distance 1.
func ewmaProg(name, src string, lo, hi int64) *loopir.Program {
	v := "i"
	return &loopir.Program{
		Name: name,
		Arrays: []loopir.ArrayDecl{
			{Name: src, B: b1(lo, hi), Role: loopir.RoleIn},
			{Name: name, B: b1(lo, hi), Role: loopir.RoleOut},
		},
		Stmts: []loopir.Stmt{
			&loopir.Loop{Var: v, From: lo, To: lo, Step: 1, Body: []loopir.Stmt{
				&loopir.Assign{Array: name, Subs: []loopir.IntExpr{iv(v)}, Rhs: aref(src, iv(v))},
			}},
			&loopir.Loop{Var: v, From: lo + 1, To: hi, Step: 1, Body: []loopir.Stmt{
				&loopir.Assign{Array: name, Subs: []loopir.IntExpr{iv(v)},
					Rhs: &loopir.VBin{Op: '+',
						L: &loopir.VBin{Op: '*', L: aref(name, off(v, -1)), R: &loopir.VConst{Value: 0.75}},
						R: &loopir.VBin{Op: '*', L: aref(src, iv(v)), R: &loopir.VConst{Value: 0.25}}}},
			}},
		},
	}
}

// diffPipeline runs a pipeline streamed (at the given chunk size) and
// materialized and requires bitwise equality.
func diffPipeline(t *testing.T, defs []stream.Def, result string, inputs map[string]*runtime.Strict, chunk int64) stream.Report {
	t.Helper()
	pl, err := stream.Build(defs, result, stream.Config{ChunkSize: chunk})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	got, rep, err := pl.Run(inputs)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := runMaterialized(t, defs, inputs, result)
	if !got.B.Equal(want.B) {
		t.Fatalf("bounds differ: %v vs %v", got.B, want.B)
	}
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("element %d differs: streamed %v, materialized %v", i, got.Data[i], want.Data[i])
		}
	}
	return rep
}

func TestStreamBitwiseChain(t *testing.T) {
	const lo, hi = 1, 10007 // deliberately not a chunk multiple
	x := fill(b1(lo, hi), 42)
	defs := []stream.Def{
		mkDef(t, "a", smoothProg("a", "x", lo, hi)),
		mkDef(t, "b", ewmaProg("b", "a", lo, hi)),
		mkDef(t, "c", smoothProg("c", "b", lo, hi)),
	}
	for _, chunk := range []int64{1, 2, 7, 64, 4096, 1 << 20} {
		t.Run(fmt.Sprintf("chunk%d", chunk), func(t *testing.T) {
			diffPipeline(t, defs, "c", map[string]*runtime.Strict{"x": x}, chunk)
		})
	}
}

// TestStreamBitwiseDiamond exercises one producer feeding two
// consumers joined by a final stage (chunk refcounting and multi-edge
// back-pressure).
func TestStreamBitwiseDiamond(t *testing.T) {
	const lo, hi = 1, 5003
	v := "i"
	x := fill(b1(lo, hi), 7)
	join := &loopir.Program{
		Name: "j",
		Arrays: []loopir.ArrayDecl{
			{Name: "l", B: b1(lo, hi), Role: loopir.RoleIn},
			{Name: "r", B: b1(lo, hi), Role: loopir.RoleIn},
			{Name: "j", B: b1(lo, hi), Role: loopir.RoleOut},
		},
		Stmts: []loopir.Stmt{
			&loopir.Loop{Var: v, From: lo, To: hi, Step: 1, Body: []loopir.Stmt{
				&loopir.Assign{Array: "j", Subs: []loopir.IntExpr{iv(v)},
					Rhs: &loopir.VCall{Fn: "max", Args: []loopir.VExpr{aref("l", iv(v)), aref("r", iv(v))}}},
			}},
		},
	}
	defs := []stream.Def{
		mkDef(t, "s", smoothProg("s", "x", lo, hi)),
		mkDef(t, "l", ewmaProg("l", "s", lo, hi)),
		mkDef(t, "r", smoothProg("r", "s", lo, hi)),
		mkDef(t, "j", join),
	}
	diffPipeline(t, defs, "j", map[string]*runtime.Strict{"x": x}, 128)
}

// TestStreamGuardsAndScalars covers If guards, VCond, and per-iteration
// scalar temporaries under chunking.
func TestStreamGuardsAndScalars(t *testing.T) {
	const lo, hi = 1, 3001
	v := "i"
	x := fill(b1(lo, hi), 11)
	p := &loopir.Program{
		Name:    "g",
		Scalars: []string{"t"},
		Arrays: []loopir.ArrayDecl{
			{Name: "x", B: b1(lo, hi), Role: loopir.RoleIn},
			{Name: "g", B: b1(lo, hi), Role: loopir.RoleOut},
		},
		Stmts: []loopir.Stmt{
			&loopir.Loop{Var: v, From: lo, To: hi, Step: 1, Body: []loopir.Stmt{
				&loopir.SetScalar{Name: "t", Rhs: &loopir.VBin{Op: '*', L: aref("x", iv(v)), R: &loopir.VConst{Value: 0.5}}},
				&loopir.If{
					Cond: &loopir.BCmpFloat{Op: ">", L: &loopir.VScalar{Name: "t"}, R: &loopir.VConst{Value: 0}},
					Then: []loopir.Stmt{&loopir.Assign{Array: "g", Subs: []loopir.IntExpr{iv(v)},
						Rhs: &loopir.VCond{
							C: &loopir.BCmpInt{Op: "<", L: iv(v), R: &loopir.IConst{Value: 100}},
							T: &loopir.VScalar{Name: "t"},
							E: &loopir.VCall{Fn: "abs", Args: []loopir.VExpr{&loopir.VScalar{Name: "t"}}}}}},
					Else: []loopir.Stmt{&loopir.Assign{Array: "g", Subs: []loopir.IntExpr{iv(v)},
						Rhs: &loopir.VNeg{X: &loopir.VScalar{Name: "t"}}}},
				},
			}},
		},
	}
	defs := []stream.Def{mkDef(t, "g", p)}
	diffPipeline(t, defs, "g", map[string]*runtime.Strict{"x": x}, 256)
}

// TestStreamEmitOrder checks RunEmit delivers chunks in position order
// and their concatenation is the materialized result.
func TestStreamEmitOrder(t *testing.T) {
	const lo, hi = 1, 4099
	x := fill(b1(lo, hi), 3)
	defs := []stream.Def{mkDef(t, "e", ewmaProg("e", "x", lo, hi))}
	pl, err := stream.Build(defs, "e", stream.Config{ChunkSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	var got []float64
	next := int64(lo)
	rep, err := pl.RunEmit(map[string]*runtime.Strict{"x": x}, func(clo int64, data []float64) error {
		if clo != next {
			return fmt.Errorf("chunk at %d, expected %d", clo, next)
		}
		next = clo + int64(len(data))
		got = append(got, data...)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Chunks == 0 || rep.PeakBytes <= 0 {
		t.Fatalf("report not populated: %+v", rep)
	}
	want := runMaterialized(t, defs, map[string]*runtime.Strict{"x": x}, "e")
	if len(got) != len(want.Data) {
		t.Fatalf("emitted %d elements, want %d", len(got), len(want.Data))
	}
	for i := range got {
		if got[i] != want.Data[i] {
			t.Fatalf("element %d differs", i)
		}
	}
}

// TestStreamEmitAbort propagates an emit error as the run error.
func TestStreamEmitAbort(t *testing.T) {
	const lo, hi = 1, 10000
	x := fill(b1(lo, hi), 5)
	defs := []stream.Def{mkDef(t, "e", ewmaProg("e", "x", lo, hi))}
	pl, err := stream.Build(defs, "e", stream.Config{ChunkSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	_, err = pl.RunEmit(map[string]*runtime.Strict{"x": x}, func(int64, []float64) error {
		calls++
		if calls == 3 {
			return fmt.Errorf("client went away")
		}
		return nil
	})
	if err == nil {
		t.Fatalf("emit error must abort the run")
	}
}

// TestStreamPeakBytes: a long bounded-distance chain must hold far
// less than the materialized store. The accounting is deterministic,
// so the bound is exact, not statistical.
func TestStreamPeakBytes(t *testing.T) {
	const lo, hi = 1, 1<<18 + 13
	x := fill(b1(lo, hi), 9)
	var defs []stream.Def
	src := "x"
	for s := 0; s < 8; s++ {
		name := fmt.Sprintf("s%d", s)
		defs = append(defs, mkDef(t, name, smoothProg(name, src, lo, hi)))
		src = name
	}
	pl, err := stream.Build(defs, src, stream.Config{ChunkSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	// Emit mode is the true streaming shape (/evalstream ships chunks
	// without materializing the result), so the peak there is the
	// resident input plus O(stages·chunk) of windows and in-flight
	// chunks.
	rep, err := pl.RunEmit(map[string]*runtime.Strict{"x": x}, func(int64, []float64) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if rep.MaterializedBytes < 9*8*(hi-lo) {
		t.Fatalf("materialized accounting too small: %d", rep.MaterializedBytes)
	}
	if 4*rep.PeakBytes > rep.MaterializedBytes {
		t.Fatalf("peak %d is not ≤ 25%% of materialized %d", rep.PeakBytes, rep.MaterializedBytes)
	}
	// Collect mode additionally holds the materialized result; still
	// far below the full store for a long chain.
	_, crep, err := pl.Run(map[string]*runtime.Strict{"x": x})
	if err != nil {
		t.Fatal(err)
	}
	if 2*crep.PeakBytes > crep.MaterializedBytes {
		t.Fatalf("collect peak %d is not ≤ 50%% of materialized %d", crep.PeakBytes, crep.MaterializedBytes)
	}
}

// TestStreamMissingInput reports a clean error.
func TestStreamMissingInput(t *testing.T) {
	defs := []stream.Def{mkDef(t, "e", ewmaProg("e", "x", 1, 100))}
	pl, err := stream.Build(defs, "e", stream.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := pl.Run(nil); err == nil {
		t.Fatalf("missing input must error")
	}
}

// TestStreamRejectsResidentStageOutput: a stage output read at a
// non-constant-offset position cannot stream.
func TestStreamRejectsResidentStageOutput(t *testing.T) {
	const lo, hi = 1, 100
	v := "i"
	rev := &loopir.Program{
		Name: "r",
		Arrays: []loopir.ArrayDecl{
			{Name: "a", B: b1(lo, hi), Role: loopir.RoleIn},
			{Name: "r", B: b1(lo, hi), Role: loopir.RoleOut},
		},
		Stmts: []loopir.Stmt{
			&loopir.Loop{Var: v, From: lo, To: hi, Step: 1, Body: []loopir.Stmt{
				// r[i] = a[101-i]: affine but not offset-1 — needs a
				// resident again.
				&loopir.Assign{Array: "r", Subs: []loopir.IntExpr{iv(v)},
					Rhs: aref("a", &loopir.ILin{Const: 101, Terms: []loopir.ITerm{{Var: v, Coeff: -1}}})},
			}},
		},
	}
	defs := []stream.Def{
		mkDef(t, "a", smoothProg("a", "x", lo, hi)),
		mkDef(t, "r", rev),
	}
	if _, err := stream.Build(defs, "r", stream.Config{}); err == nil {
		t.Fatalf("reversal over a stage output must not stream")
	}
}

// --- core-level integration: Options.Stream end to end ---

// TestCoreStreamBitwise compiles a source pipeline with and without
// Options.Stream and requires bitwise-equal results plus the stream
// tier report.
func TestCoreStreamBitwise(t *testing.T) {
	src := `letrec* a = array (1,n) [ i := x!i + 1.0 | i <- [1..n] ];
  b = array (1,n) ([ 1 := a!1 ] ++ [ i := b!(i-1) * 0.5 + a!i | i <- [2..n] ]);
  res = array (1,n) [ i := b!i * 2.0 | i <- [1..n] ]
in res`
	n := int64(20000)
	base, err := core.Compile(src, map[string]int64{"n": n}, core.Options{
		InputBounds: inBounds("x", 1, n),
	})
	if err != nil {
		t.Fatalf("compile materialized: %v", err)
	}
	st, err := core.Compile(src, map[string]int64{"n": n}, core.Options{
		InputBounds: inBounds("x", 1, n),
		Stream:      true,
	})
	if err != nil {
		t.Fatalf("compile streaming: %v", err)
	}
	if !st.StreamActive() {
		t.Fatalf("streaming should be active; fallback: %s", st.StreamFallback())
	}
	x := fill(b1(1, n), 21)
	inputs := map[string]*runtime.Strict{"x": x}
	want, err := base.Run(inputs)
	if err != nil {
		t.Fatal(err)
	}
	got, tier, err := st.RunTiered(inputs)
	if err != nil {
		t.Fatal(err)
	}
	if tier != core.TierStream {
		t.Fatalf("tier = %s, want stream", tier)
	}
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("element %d differs", i)
		}
	}
	rep := st.StreamReport()
	if rep == nil || rep.PeakBytes <= 0 || rep.MaterializedBytes <= rep.PeakBytes {
		t.Fatalf("stream report unconvincing: %+v", rep)
	}
}

// TestCoreStreamFallback: an accumArray program cannot stream and must
// fall back with a reason, still producing correct results.
func TestCoreStreamFallback(t *testing.T) {
	src := `h = accumArray (+) 0.0 (0,9) [ (3*i) mod 10 := 1.0 | i <- [1..n] ]`
	n := int64(100)
	p, err := core.Compile(src, map[string]int64{"n": n}, core.Options{Stream: true})
	if err != nil {
		t.Fatal(err)
	}
	if p.StreamActive() {
		t.Fatalf("accumArray must not stream")
	}
	if p.StreamFallback() == "" {
		t.Fatalf("fallback reason missing")
	}
	out, tier, err := p.RunTiered(nil)
	if err != nil {
		t.Fatal(err)
	}
	if tier == core.TierStream {
		t.Fatalf("fallback must not report the stream tier")
	}
	var sum float64
	for _, v := range out.Data {
		sum += v
	}
	if sum != float64(n) {
		t.Fatalf("histogram sum %v, want %v", sum, float64(n))
	}
}

// TestCoreStreamCertify: streaming under -certify replays window
// legality into the certificate report.
func TestCoreStreamCertify(t *testing.T) {
	src := `e = array (1,n) ([ 1 := x!1 ] ++ [ i := e!(i-1) * 0.5 + x!i | i <- [2..n] ])`
	n := int64(5000)
	p, err := core.Compile(src, map[string]int64{"n": n}, core.Options{
		InputBounds: inBounds("x", 1, n),
		Stream:      true,
		Certify:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !p.StreamActive() {
		t.Fatalf("streaming should be active; fallback: %s", p.StreamFallback())
	}
	if p.Certs == nil || p.Certs.CertifiedCount == 0 {
		t.Fatalf("certification report empty")
	}
	found := false
	for _, note := range p.Notes {
		if strings.HasPrefix(note, "stream:") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no stream note in %v", p.Notes)
	}
}
