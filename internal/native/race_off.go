//go:build !race

package native

// raceEnabled reports whether this binary is race-instrumented. A
// plugin must be built with the same race setting as its host or
// plugin.Open rejects it for mismatched runtime packages.
const raceEnabled = false
