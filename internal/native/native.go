// Package native is the compiled-Go execution tier: it takes the
// loop-IR plans of one or more compiled programs, emits them as a
// standalone Go package through gogen, builds that package with the
// host toolchain, and loads the result back into the process so a
// compiled program runs as real machine code instead of interpreter
// closures — the paper's "comparable to Fortran" claim made the hot
// path, not just an offline measurement.
//
// Two load mechanisms are supported:
//
//   - plugin: `go build -buildmode=plugin` + plugin.Open. The emitted
//     entry points become in-process function values, so a native call
//     costs exactly one function call plus the program's own loops.
//     When the host binary is race-instrumented the plugin is built
//     with -race too (the runtimes must match).
//   - exec: a portable fallback for platforms (or sandboxes) where
//     plugins are unsupported. The same emitted source is built as an
//     ordinary binary whose main() serves evaluations over a binary
//     stdin/stdout protocol; the host keeps one persistent subprocess
//     per module and streams float64 bits, so results are bitwise
//     identical to the in-process path.
//
// Mode selection is automatic (plugin, falling back to exec on any
// build or load failure) and can be forced with HAC_NATIVE_MODE=plugin
// or HAC_NATIVE_MODE=exec — the latter is how CI tests the
// plugin-unsupported path on a plugin-capable platform.
//
// Builds are batched: one Build call with N program specs produces ONE
// toolchain invocation and one loaded module serving all N programs,
// which is what keeps a 200-program differential suite at seconds
// instead of minutes.
package native

import (
	"fmt"
	"math"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"arraycomp/internal/gogen"
	"arraycomp/internal/loopir"
	"arraycomp/internal/runtime"
)

// Unit is one compiled definition inside a program, in evaluation
// order: the lowered loop-IR plan plus the defensive-clone decision
// core made for in-place updates whose source stays live.
type Unit struct {
	// Name is the definition (result array) name.
	Name string
	// Prog is the lowered loop-IR program of this definition.
	Prog *loopir.Program
	// CloneSource, when non-empty, names the input array that must be
	// cloned before this unit runs (in-place plan, live source).
	CloneSource string
}

// ProgramSpec describes one program to compile natively: its units in
// evaluation order and the name of the result definition.
type ProgramSpec struct {
	// Key addresses the program inside the module (any non-empty
	// string, unique within one Build call — callers typically use the
	// plan-cache content address or a corpus seed).
	Key string
	// Units are the compiled definitions in evaluation order.
	Units []Unit
	// Result names the unit whose output is the program result.
	Result string
}

// Mode selects the load mechanism.
type Mode string

const (
	// ModeAuto tries plugin first and falls back to exec.
	ModeAuto Mode = ""
	// ModePlugin requires in-process loading via plugin.Open.
	ModePlugin Mode = "plugin"
	// ModeExec requires the persistent-subprocess fallback.
	ModeExec Mode = "exec"
)

// EnvMode is the environment variable that overrides the build mode
// ("plugin" or "exec"); it exists so CI can force the
// plugin-unsupported fallback path on a plugin-capable host.
const EnvMode = "HAC_NATIVE_MODE"

// Options tunes a Build.
type Options struct {
	// Mode forces a load mechanism; ModeAuto (the default) prefers
	// plugin and falls back to exec. The HAC_NATIVE_MODE environment
	// variable, when set, wins over this field.
	Mode Mode
	// BuildTimeout bounds the toolchain invocation (default 3m).
	BuildTimeout time.Duration
}

// Module is one loaded native build serving the programs of a Build
// call. A module is safe for concurrent use; in exec mode concurrent
// calls are serialized over the single subprocess pipe.
type Module struct {
	mode  Mode
	plans map[string]*Plan
	proc  *execProc
}

// Plan is one program's native execution plan.
type Plan struct {
	key    string
	mode   Mode
	fn     func(map[string][]float64) ([]float64, error)
	proc   *execProc
	inputs []string
	bounds runtime.Bounds
	// flatPool recycles the name→data map marshalled on every call, so
	// the steady-state host overhead per Run is the result slice and
	// its Strict header only.
	flatPool sync.Pool
	// verifyFn reads the module's cumulative verify verdicts (plugin
	// mode; exec mode queries over the protocol instead).
	verifyFn func() (uint64, uint64)
	// vmu guards the last-seen counters behind TakeVerifyDelta.
	vmu                sync.Mutex
	lastPass, lastFail uint64
}

// Builds counts completed native toolchain invocations in this
// process — the observable side of promotion singleflight: however
// many concurrent evaluations race a tier-up, the count rises once.
var builds atomic.Int64

// Builds returns the number of native builds this process has run.
func Builds() int64 { return builds.Load() }

// modSeq makes plugin package paths process-unique: the Go plugin
// runtime refuses to open two distinct plugins sharing a package
// path, so every build gets a fresh module name.
var modSeq atomic.Int64

// Build emits, compiles, and loads the given programs as one native
// module. All specs share a single toolchain invocation.
func Build(specs []ProgramSpec, opts Options) (*Module, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("native: no programs to build")
	}
	if _, err := exec.LookPath("go"); err != nil {
		return nil, fmt.Errorf("native: go toolchain unavailable: %w", err)
	}
	src, metas, err := emitModuleSource(specs)
	if err != nil {
		return nil, err
	}
	timeout := opts.BuildTimeout
	if timeout <= 0 {
		timeout = 3 * time.Minute
	}
	mode := opts.Mode
	if env := Mode(os.Getenv(EnvMode)); env == ModePlugin || env == ModeExec {
		mode = env
	}

	dir, err := os.MkdirTemp("", "hacnative")
	if err != nil {
		return nil, fmt.Errorf("native: %w", err)
	}
	modName := fmt.Sprintf("hacnative%d_%d", os.Getpid(), modSeq.Add(1))
	if err := os.WriteFile(filepath.Join(dir, "main.go"), []byte(src), 0o644); err != nil {
		os.RemoveAll(dir)
		return nil, fmt.Errorf("native: %w", err)
	}
	gomod := fmt.Sprintf("module %s\n\ngo 1.24\n", modName)
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte(gomod), 0o644); err != nil {
		os.RemoveAll(dir)
		return nil, fmt.Errorf("native: %w", err)
	}

	m := &Module{plans: map[string]*Plan{}}
	var pluginErr error
	if mode == ModePlugin || mode == ModeAuto {
		entries, verifies, err := buildAndOpenPlugin(dir, timeout)
		if err == nil {
			m.mode = ModePlugin
			for _, spec := range specs {
				fn, ok := entries[spec.Key]
				if !ok {
					os.RemoveAll(dir)
					return nil, fmt.Errorf("native: plugin is missing entry %q", spec.Key)
				}
				meta := metas[spec.Key]
				m.plans[spec.Key] = &Plan{key: spec.Key, mode: ModePlugin, fn: fn, verifyFn: verifies[spec.Key], inputs: meta.inputs, bounds: meta.bounds}
			}
			builds.Add(1)
			os.RemoveAll(dir)
			return m, nil
		}
		pluginErr = err
		if mode == ModePlugin {
			os.RemoveAll(dir)
			return nil, fmt.Errorf("native: plugin mode forced but unavailable: %w", err)
		}
	}

	proc, err := buildAndStartExec(dir, timeout)
	if err != nil {
		os.RemoveAll(dir)
		if pluginErr != nil {
			return nil, fmt.Errorf("native: plugin failed (%v); exec fallback failed: %w", pluginErr, err)
		}
		return nil, err
	}
	m.mode = ModeExec
	m.proc = proc
	for _, spec := range specs {
		meta := metas[spec.Key]
		m.plans[spec.Key] = &Plan{key: spec.Key, mode: ModeExec, proc: proc, inputs: meta.inputs, bounds: meta.bounds}
	}
	builds.Add(1)
	// The running binary keeps its inode alive; the directory can go.
	os.RemoveAll(dir)
	return m, nil
}

// BuildOne is the single-program convenience used by tier promotion.
func BuildOne(spec ProgramSpec, opts Options) (*Plan, error) {
	m, err := Build([]ProgramSpec{spec}, opts)
	if err != nil {
		return nil, err
	}
	return m.Plan(spec.Key), nil
}

// Mode reports the load mechanism the module ended up with.
func (m *Module) Mode() Mode { return m.mode }

// Plan returns the plan for a spec key, or nil.
func (m *Module) Plan(key string) *Plan { return m.plans[key] }

// Close releases the module's subprocess (exec mode). Plugins cannot
// be unloaded; closing a plugin module is a no-op. A leaked exec
// module self-collects when the host process exits (the child sees
// EOF on its stdin pipe).
func (m *Module) Close() error {
	if m.proc != nil {
		return m.proc.close()
	}
	return nil
}

// Mode reports the plan's load mechanism.
func (p *Plan) Mode() Mode { return p.mode }

// Inputs lists the external input arrays the plan consumes.
func (p *Plan) Inputs() []string { return append([]string(nil), p.inputs...) }

// Run executes the native program. Semantics match the interpreter
// tier exactly: inputs are never mutated (the emitted driver clones
// in-place sources core marked live), runtime checks surface as
// errors, and the result carries the compiled bounds.
func (p *Plan) Run(inputs map[string]*runtime.Strict) (*runtime.Strict, error) {
	flat, _ := p.flatPool.Get().(map[string][]float64)
	if flat == nil {
		flat = make(map[string][]float64, len(p.inputs))
	}
	for _, name := range p.inputs {
		a, ok := inputs[name]
		if !ok {
			p.flatPool.Put(flat)
			return nil, fmt.Errorf("native: missing input array %q", name)
		}
		flat[name] = a.Data
	}
	var out []float64
	var err error
	if p.mode == ModePlugin {
		out, err = p.fn(flat)
	} else {
		out, err = p.proc.call(p.key, p.inputs, flat)
	}
	// Neither callee retains flat past its return; drop the data
	// references and recycle the map.
	for k := range flat {
		delete(flat, k)
	}
	p.flatPool.Put(flat)
	if err != nil {
		return nil, err
	}
	if int64(len(out)) != p.bounds.Size() {
		return nil, fmt.Errorf("native: program %q returned %d elements, bounds %s want %d",
			p.key, len(out), p.bounds, p.bounds.Size())
	}
	return &runtime.Strict{B: p.bounds, Data: out}, nil
}

// verifyCounts reads the module's cumulative (verified, failed)
// runtime-verifier verdicts for this program. In exec mode the query
// crosses the protocol as an "nvq:"-prefixed key; a dead subprocess
// reads as zero (the counters died with it).
func (p *Plan) verifyCounts() (pass, fail uint64) {
	if p.mode == ModePlugin {
		if p.verifyFn == nil {
			return 0, 0
		}
		return p.verifyFn()
	}
	out, err := p.proc.call("nvq:"+p.key, nil, nil)
	if err != nil || len(out) != 2 {
		return 0, 0
	}
	return math.Float64bits(out[0]), math.Float64bits(out[1])
}

// TakeVerifyDelta returns the runtime-verifier verdicts recorded since
// the previous call (or since load), so the host can fold native-tier
// verifications into the same counters the interpreter hook feeds.
// Deltas are consumed exactly once; concurrent callers split them.
func (p *Plan) TakeVerifyDelta() (pass, fail int64) {
	curPass, curFail := p.verifyCounts()
	p.vmu.Lock()
	defer p.vmu.Unlock()
	if curPass < p.lastPass || curFail < p.lastFail {
		// Counter regression (exec subprocess restarted or died):
		// resynchronize without inventing negative deltas.
		p.lastPass, p.lastFail = curPass, curFail
		return 0, 0
	}
	pass = int64(curPass - p.lastPass)
	fail = int64(curFail - p.lastFail)
	p.lastPass, p.lastFail = curPass, curFail
	return pass, fail
}

// planMeta is the host-side metadata captured during emission.
type planMeta struct {
	inputs []string
	bounds runtime.Bounds
}

// emitModuleSource renders all specs into one self-contained main
// package: per-unit functions from gogen, a driver per program that
// chains them the way core.Program.Run does, an Entries registry for
// the plugin path, and a protocol main() for the exec path.
func emitModuleSource(specs []ProgramSpec) (string, map[string]*planMeta, error) {
	metas := map[string]*planMeta{}
	var funcs strings.Builder
	var entries strings.Builder
	var verifies strings.Builder
	entries.WriteString("// Entries maps program keys to their native entry points.\nvar Entries = map[string]func(map[string][]float64) ([]float64, error){\n")
	verifies.WriteString("// VerifyCounts reads a program's cumulative runtime-verifier\n// verdicts (verified, failed) — the native mirror of the host's\n// VerifyStats, queried after runs so no verdict is dropped.\nvar VerifyCounts = map[string]func() (uint64, uint64){\n")
	seen := map[string]bool{}
	for i, spec := range specs {
		if spec.Key == "" || seen[spec.Key] {
			return "", nil, fmt.Errorf("native: spec %d has empty or duplicate key %q", i, spec.Key)
		}
		seen[spec.Key] = true
		fmt.Fprintf(&funcs, "var nvPass_%d, nvFail_%d uint64\n\n", i, i)
		meta, err := emitProgram(&funcs, spec, i)
		if err != nil {
			return "", nil, err
		}
		metas[spec.Key] = meta
		fmt.Fprintf(&entries, "\t%q: nrun_%d,\n", spec.Key, i)
		fmt.Fprintf(&verifies, "\t%q: func() (uint64, uint64) { return atomic.LoadUint64(&nvPass_%d), atomic.LoadUint64(&nvFail_%d) },\n", spec.Key, i, i)
	}
	entries.WriteString("}\n")
	verifies.WriteString("}\n")

	var b strings.Builder
	b.WriteString("// Code generated by arraycomp (internal/native). DO NOT EDIT.\npackage main\n\n")
	imports := []string{`"bufio"`, `"encoding/binary"`, `"fmt"`, `"io"`, `"math"`, `"os"`, `"sync/atomic"`}
	if strings.Contains(funcs.String(), "runtime.GOMAXPROCS") {
		imports = append(imports, `"runtime"`)
	}
	if strings.Contains(funcs.String(), "sync.WaitGroup") {
		imports = append(imports, `"sync"`)
	}
	b.WriteString("import (\n")
	for _, imp := range imports {
		b.WriteString("\t" + imp + "\n")
	}
	b.WriteString(")\n\nvar _ = math.Abs\n\n")
	b.WriteString(entries.String())
	b.WriteString("\n")
	b.WriteString(verifies.String())
	b.WriteString("\n")
	b.WriteString(funcs.String())
	b.WriteString(protocolMain)
	return b.String(), metas, nil
}

// emitProgram renders one spec: its unit functions plus the driver.
func emitProgram(b *strings.Builder, spec ProgramSpec, idx int) (*planMeta, error) {
	if len(spec.Units) == 0 {
		return nil, fmt.Errorf("native: program %q has no units", spec.Key)
	}
	// produced maps a definition name to its driver-local variable.
	produced := map[string]string{}
	external := map[string]string{}
	var externalOrder []string
	var driver strings.Builder

	resolve := func(name string) string {
		if v, ok := produced[name]; ok {
			return v
		}
		if v, ok := external[name]; ok {
			return v
		}
		v := fmt.Sprintf("e%d", len(externalOrder))
		external[name] = v
		externalOrder = append(externalOrder, name)
		return v
	}

	var resultVar string
	var resultBounds runtime.Bounds
	var calls strings.Builder
	for j, u := range spec.Units {
		fnName := fmt.Sprintf("nf_%d_%d", idx, j)
		src, params, results, err := gogen.EmitFuncCounted(u.Prog, fnName,
			fmt.Sprintf("nvPass_%d", idx), fmt.Sprintf("nvFail_%d", idx))
		if err != nil {
			return nil, fmt.Errorf("native: program %q unit %s: %w", spec.Key, u.Name, err)
		}
		if len(results) != 1 {
			return nil, fmt.Errorf("native: program %q unit %s has %d result arrays, want 1", spec.Key, u.Name, len(results))
		}
		b.WriteString(src)
		b.WriteString("\n")

		args := make([]string, len(params))
		for k, pn := range params {
			args[k] = resolve(pn)
		}
		if u.CloneSource != "" {
			// Defensive clone, mirroring core.Program.Run: the in-place
			// source is caller-owned or still live afterwards.
			cv := fmt.Sprintf("c%d_%d", idx, j)
			fmt.Fprintf(&calls, "\t%s := append([]float64(nil), %s...)\n", cv, resolve(u.CloneSource))
			for k, pn := range params {
				if pn == u.CloneSource {
					args[k] = cv
				}
			}
		}
		out := fmt.Sprintf("d%d", j)
		produced[u.Name] = out
		fmt.Fprintf(&calls, "\t%s, err%d := %s(%s)\n", out, j, fnName, strings.Join(args, ", "))
		fmt.Fprintf(&calls, "\tif err%d != nil {\n\t\treturn nil, err%d\n\t}\n", j, j)
		fmt.Fprintf(&calls, "\t_ = %s\n", out)
		if u.Name == spec.Result {
			resultVar = out
			d := u.Prog.Decl(results[0])
			if d == nil {
				return nil, fmt.Errorf("native: program %q unit %s: result decl %q missing", spec.Key, u.Name, results[0])
			}
			resultBounds = d.B
		}
	}
	if resultVar == "" {
		return nil, fmt.Errorf("native: program %q never defines result %q", spec.Key, spec.Result)
	}

	fmt.Fprintf(&driver, "func nrun_%d(in map[string][]float64) ([]float64, error) {\n", idx)
	for _, name := range externalOrder {
		fmt.Fprintf(&driver, "\t%s, ok%s := in[%q]\n", external[name], external[name], name)
		fmt.Fprintf(&driver, "\tif !ok%s {\n\t\treturn nil, fmt.Errorf(\"native: missing input array %%q\", %q)\n\t}\n", external[name], name)
	}
	driver.WriteString(calls.String())
	fmt.Fprintf(&driver, "\treturn %s, nil\n}\n\n", resultVar)
	b.WriteString(driver.String())

	return &planMeta{inputs: externalOrder, bounds: resultBounds}, nil
}

// buildAndOpenPlugin compiles the emitted package as a Go plugin and
// loads its entry and verify-counter registries. The plugin is
// race-instrumented iff this binary is: the Go runtime refuses to mix
// race and non-race images.
func buildAndOpenPlugin(dir string, timeout time.Duration) (entryMap, verifyMap, error) {
	args := []string{"build", "-buildmode=plugin"}
	if raceEnabled {
		args = append(args, "-race")
	}
	args = append(args, "-o", "plan.so", ".")
	if out, err := runGo(dir, timeout, args...); err != nil {
		return nil, nil, fmt.Errorf("plugin build: %v: %s", err, truncate(out, 400))
	}
	return openPlugin(filepath.Join(dir, "plan.so"))
}

// runGo invokes the toolchain in dir with CGO enabled (plugins need
// it) and module mode pinned.
func runGo(dir string, timeout time.Duration, args ...string) (string, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "GOFLAGS=-mod=mod", "CGO_ENABLED=1")
	done := make(chan struct{})
	timer := time.AfterFunc(timeout, func() {
		select {
		case <-done:
		default:
			if cmd.Process != nil {
				cmd.Process.Kill()
			}
		}
	})
	out, err := cmd.CombinedOutput()
	close(done)
	timer.Stop()
	return string(out), err
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "…"
}
