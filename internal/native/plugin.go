package native

import (
	"fmt"
	"plugin"
)

// entryMap is the exported registry type the emitted source declares.
type entryMap = map[string]func(map[string][]float64) ([]float64, error)

// verifyMap is the exported verify-counter registry: per program key,
// a reader of the cumulative (verified, failed) verdict counters.
type verifyMap = map[string]func() (uint64, uint64)

// openPlugin loads a built plugin and extracts its Entries and
// VerifyCounts registries.
func openPlugin(path string) (entryMap, verifyMap, error) {
	p, err := plugin.Open(path)
	if err != nil {
		return nil, nil, fmt.Errorf("plugin open: %w", err)
	}
	sym, err := p.Lookup("Entries")
	if err != nil {
		return nil, nil, fmt.Errorf("plugin lookup: %w", err)
	}
	entries, ok := sym.(*entryMap)
	if !ok {
		return nil, nil, fmt.Errorf("plugin Entries has type %T, want *map[string]func(map[string][]float64) ([]float64, error)", sym)
	}
	vsym, err := p.Lookup("VerifyCounts")
	if err != nil {
		return nil, nil, fmt.Errorf("plugin lookup: %w", err)
	}
	verifies, ok := vsym.(*verifyMap)
	if !ok {
		return nil, nil, fmt.Errorf("plugin VerifyCounts has type %T, want *map[string]func() (uint64, uint64)", vsym)
	}
	return *entries, *verifies, nil
}
