package native

import (
	"fmt"
	"plugin"
)

// entryMap is the exported registry type the emitted source declares.
type entryMap = map[string]func(map[string][]float64) ([]float64, error)

// openPlugin loads a built plugin and extracts its Entries registry.
func openPlugin(path string) (entryMap, error) {
	p, err := plugin.Open(path)
	if err != nil {
		return nil, fmt.Errorf("plugin open: %w", err)
	}
	sym, err := p.Lookup("Entries")
	if err != nil {
		return nil, fmt.Errorf("plugin lookup: %w", err)
	}
	entries, ok := sym.(*entryMap)
	if !ok {
		return nil, fmt.Errorf("plugin Entries has type %T, want *map[string]func(map[string][]float64) ([]float64, error)", sym)
	}
	return *entries, nil
}
