package native

// protocolMain is the exec-mode server appended to every emitted
// module: main() reads length-prefixed evaluation requests on stdin
// and writes status-prefixed results on stdout, with float64s framed
// as raw IEEE bits (bitwise-identical to the in-process plugin path).
// In plugin mode the same source compiles but main is never invoked.
//
// Framing per request:
//
//	u32 keyLen, key bytes
//	u32 nInputs, then per input: u32 nameLen, name, u64 count, count×u64 float bits
//
// Reply: u8 status — 0 ok (u64 count + count×u64 bits),
// 1 program error, 2 protocol error (both: u32 msgLen + msg).
// EOF while reading a key length is a clean shutdown.
//
// A key of the form "nvq:<program key>" is a verify-counter query: the
// reply is an ok frame of exactly two u64 slots carrying the program's
// cumulative (verified, failed) runtime-verifier verdicts as raw bit
// patterns — framed like float64s so the reply path is shared, decoded
// back to integers host-side.
const protocolMain = `
func srvReadU32(r *bufio.Reader) (uint32, error) {
	var b [4]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}

func srvReadU64(r *bufio.Reader) (uint64, error) {
	var b [8]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}

func srvWriteErr(w *bufio.Writer, status byte, msg string) {
	w.WriteByte(status)
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], uint32(len(msg)))
	w.Write(b[:])
	w.WriteString(msg)
	w.Flush()
}

func main() {
	in := bufio.NewReader(os.Stdin)
	out := bufio.NewWriter(os.Stdout)
	for {
		keyLen, err := srvReadU32(in)
		if err != nil {
			return // EOF between requests: clean shutdown
		}
		keyBuf := make([]byte, keyLen)
		if _, err := io.ReadFull(in, keyBuf); err != nil {
			return
		}
		nInputs, err := srvReadU32(in)
		if err != nil {
			return
		}
		inputs := make(map[string][]float64, nInputs)
		for i := uint32(0); i < nInputs; i++ {
			nameLen, err := srvReadU32(in)
			if err != nil {
				return
			}
			nameBuf := make([]byte, nameLen)
			if _, err := io.ReadFull(in, nameBuf); err != nil {
				return
			}
			count, err := srvReadU64(in)
			if err != nil {
				return
			}
			data := make([]float64, count)
			for j := range data {
				bits, err := srvReadU64(in)
				if err != nil {
					return
				}
				data[j] = math.Float64frombits(bits)
			}
			inputs[string(nameBuf)] = data
		}
		if len(keyBuf) > 4 && string(keyBuf[:4]) == "nvq:" {
			vf, ok := VerifyCounts[string(keyBuf[4:])]
			if !ok {
				srvWriteErr(out, 2, fmt.Sprintf("unknown verify-query key %q", keyBuf))
				continue
			}
			pass, fail := vf()
			out.WriteByte(0)
			var b [8]byte
			binary.LittleEndian.PutUint64(b[:], 2)
			out.Write(b[:])
			binary.LittleEndian.PutUint64(b[:], pass)
			out.Write(b[:])
			binary.LittleEndian.PutUint64(b[:], fail)
			out.Write(b[:])
			if err := out.Flush(); err != nil {
				return
			}
			continue
		}
		fn, ok := Entries[string(keyBuf)]
		if !ok {
			srvWriteErr(out, 2, fmt.Sprintf("unknown program key %q", keyBuf))
			continue
		}
		res, err := func() (r []float64, e error) {
			defer func() {
				if p := recover(); p != nil {
					e = fmt.Errorf("%v", p)
				}
			}()
			return fn(inputs)
		}()
		if err != nil {
			srvWriteErr(out, 1, err.Error())
			continue
		}
		out.WriteByte(0)
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], uint64(len(res)))
		out.Write(b[:])
		for _, v := range res {
			binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
			out.Write(b[:])
		}
		if err := out.Flush(); err != nil {
			return
		}
	}
}
`
