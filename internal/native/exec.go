package native

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os/exec"
	"path/filepath"
	"sync"
	"time"
)

// execProc is a persistent native-plan subprocess speaking the binary
// evaluation protocol over stdin/stdout. Calls are serialized by a
// mutex (one request/reply in flight); float64s cross the pipe as raw
// IEEE bits so exec-mode results are bitwise identical to plugin mode.
type execProc struct {
	mu   sync.Mutex
	cmd  *exec.Cmd
	in   *bufio.Writer
	out  *bufio.Reader
	wc   io.WriteCloser
	dead error
}

// buildAndStartExec compiles the emitted package as an ordinary
// binary and starts it as a persistent evaluation server.
func buildAndStartExec(dir string, timeout time.Duration) (*execProc, error) {
	if out, err := runGo(dir, timeout, "build", "-o", "planbin", "."); err != nil {
		return nil, fmt.Errorf("native: exec build: %v: %s", err, truncate(out, 400))
	}
	cmd := exec.Command(filepath.Join(dir, "planbin"))
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, fmt.Errorf("native: %w", err)
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, fmt.Errorf("native: %w", err)
	}
	cmd.Stderr = nil
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("native: exec start: %w", err)
	}
	// The child exits on stdin EOF, so even a leaked proc collects
	// when the host process dies and the pipe closes.
	go cmd.Wait()
	return &execProc{
		cmd: cmd,
		in:  bufio.NewWriter(stdin),
		out: bufio.NewReader(stdout),
		wc:  stdin,
	}, nil
}

// call runs one evaluation round-trip.
func (p *execProc) call(key string, order []string, inputs map[string][]float64) ([]float64, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.dead != nil {
		return nil, p.dead
	}
	out, err := p.callLocked(key, order, inputs)
	if err != nil {
		if _, ok := err.(*progError); ok {
			// A program error (runtime check fired in the emitted code)
			// is an expected outcome; the stream stays framed and usable.
			return nil, fmt.Errorf("%s", err.Error())
		}
		// A protocol-level failure poisons the proc: the stream is no
		// longer framed and no further call can trust it.
		p.dead = fmt.Errorf("native: exec subprocess failed: %w", err)
		p.wc.Close()
		if p.cmd.Process != nil {
			p.cmd.Process.Kill()
		}
		return nil, p.dead
	}
	return out, nil
}

// progError marks an in-protocol program error (a runtime check in
// the emitted code fired); it leaves the stream healthy.
type progError struct{ msg string }

func (e *progError) Error() string { return e.msg }

func (p *execProc) callLocked(key string, order []string, inputs map[string][]float64) ([]float64, error) {
	w := p.in
	writeU32 := func(v uint32) { binary.Write(w, binary.LittleEndian, v) }
	writeU64 := func(v uint64) { binary.Write(w, binary.LittleEndian, v) }
	writeU32(uint32(len(key)))
	w.WriteString(key)
	writeU32(uint32(len(order)))
	for _, name := range order {
		data := inputs[name]
		writeU32(uint32(len(name)))
		w.WriteString(name)
		writeU64(uint64(len(data)))
		for _, v := range data {
			writeU64(math.Float64bits(v))
		}
	}
	if err := w.Flush(); err != nil {
		return nil, err
	}

	var status [1]byte
	if _, err := io.ReadFull(p.out, status[:]); err != nil {
		return nil, err
	}
	switch status[0] {
	case 0:
		var n uint64
		if err := binary.Read(p.out, binary.LittleEndian, &n); err != nil {
			return nil, err
		}
		if n > 1<<32 {
			return nil, fmt.Errorf("implausible result length %d", n)
		}
		out := make([]float64, n)
		buf := make([]byte, 8)
		for i := range out {
			if _, err := io.ReadFull(p.out, buf); err != nil {
				return nil, err
			}
			out[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf))
		}
		return out, nil
	case 1, 2:
		var n uint32
		if err := binary.Read(p.out, binary.LittleEndian, &n); err != nil {
			return nil, err
		}
		msg := make([]byte, n)
		if _, err := io.ReadFull(p.out, msg); err != nil {
			return nil, err
		}
		if status[0] == 1 {
			return nil, &progError{msg: string(msg)}
		}
		return nil, fmt.Errorf("protocol error: %s", msg)
	default:
		return nil, fmt.Errorf("bad status byte %d", status[0])
	}
}

// close shuts the subprocess down by closing its stdin.
func (p *execProc) close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.dead == nil {
		p.dead = fmt.Errorf("native: exec subprocess closed")
	}
	err := p.wc.Close()
	return err
}
