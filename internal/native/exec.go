package native

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os/exec"
	"path/filepath"
	"sync"
	"time"
)

// execProc is a persistent native-plan subprocess speaking the binary
// evaluation protocol over stdin/stdout. Calls are serialized by a
// mutex (one request/reply in flight); float64s cross the pipe as raw
// IEEE bits so exec-mode results are bitwise identical to plugin mode.
type execProc struct {
	mu   sync.Mutex
	cmd  *exec.Cmd
	in   *bufio.Writer
	out  *bufio.Reader
	wc   io.WriteCloser
	dead error
	// scratch is the fixed-width framing buffer; calls are serialized
	// under mu, so one buffer serves every integer/float on the wire
	// (encoding/binary's reflective Write/Read would allocate per
	// element, which dominates the per-call cost on large arrays).
	scratch [8]byte
}

// buildAndStartExec compiles the emitted package as an ordinary
// binary and starts it as a persistent evaluation server.
func buildAndStartExec(dir string, timeout time.Duration) (*execProc, error) {
	if out, err := runGo(dir, timeout, "build", "-o", "planbin", "."); err != nil {
		return nil, fmt.Errorf("native: exec build: %v: %s", err, truncate(out, 400))
	}
	cmd := exec.Command(filepath.Join(dir, "planbin"))
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, fmt.Errorf("native: %w", err)
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, fmt.Errorf("native: %w", err)
	}
	cmd.Stderr = nil
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("native: exec start: %w", err)
	}
	// The child exits on stdin EOF, so even a leaked proc collects
	// when the host process dies and the pipe closes.
	go cmd.Wait()
	return &execProc{
		cmd: cmd,
		in:  bufio.NewWriter(stdin),
		out: bufio.NewReader(stdout),
		wc:  stdin,
	}, nil
}

// call runs one evaluation round-trip.
func (p *execProc) call(key string, order []string, inputs map[string][]float64) ([]float64, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.dead != nil {
		return nil, p.dead
	}
	out, err := p.callLocked(key, order, inputs)
	if err != nil {
		if _, ok := err.(*progError); ok {
			// A program error (runtime check fired in the emitted code)
			// is an expected outcome; the stream stays framed and usable.
			return nil, fmt.Errorf("%s", err.Error())
		}
		// A protocol-level failure poisons the proc: the stream is no
		// longer framed and no further call can trust it.
		p.dead = fmt.Errorf("native: exec subprocess failed: %w", err)
		p.wc.Close()
		if p.cmd.Process != nil {
			p.cmd.Process.Kill()
		}
		return nil, p.dead
	}
	return out, nil
}

// progError marks an in-protocol program error (a runtime check in
// the emitted code fired); it leaves the stream healthy.
type progError struct{ msg string }

func (e *progError) Error() string { return e.msg }

func (p *execProc) callLocked(key string, order []string, inputs map[string][]float64) ([]float64, error) {
	w := p.in
	writeU32 := func(v uint32) {
		binary.LittleEndian.PutUint32(p.scratch[:4], v)
		w.Write(p.scratch[:4])
	}
	writeU64 := func(v uint64) {
		binary.LittleEndian.PutUint64(p.scratch[:8], v)
		w.Write(p.scratch[:8])
	}
	writeU32(uint32(len(key)))
	w.WriteString(key)
	writeU32(uint32(len(order)))
	for _, name := range order {
		data := inputs[name]
		writeU32(uint32(len(name)))
		w.WriteString(name)
		writeU64(uint64(len(data)))
		for _, v := range data {
			writeU64(math.Float64bits(v))
		}
	}
	if err := w.Flush(); err != nil {
		return nil, err
	}

	readU32 := func() (uint32, error) {
		if _, err := io.ReadFull(p.out, p.scratch[:4]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint32(p.scratch[:4]), nil
	}
	readU64 := func() (uint64, error) {
		if _, err := io.ReadFull(p.out, p.scratch[:8]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint64(p.scratch[:8]), nil
	}
	if _, err := io.ReadFull(p.out, p.scratch[:1]); err != nil {
		return nil, err
	}
	status := p.scratch[0]
	switch status {
	case 0:
		n, err := readU64()
		if err != nil {
			return nil, err
		}
		if n > 1<<32 {
			return nil, fmt.Errorf("implausible result length %d", n)
		}
		out := make([]float64, n)
		for i := range out {
			bits, err := readU64()
			if err != nil {
				return nil, err
			}
			out[i] = math.Float64frombits(bits)
		}
		return out, nil
	case 1, 2:
		n, err := readU32()
		if err != nil {
			return nil, err
		}
		msg := make([]byte, n)
		if _, err := io.ReadFull(p.out, msg); err != nil {
			return nil, err
		}
		if status == 1 {
			return nil, &progError{msg: string(msg)}
		}
		return nil, fmt.Errorf("protocol error: %s", msg)
	default:
		return nil, fmt.Errorf("bad status byte %d", status)
	}
}

// close shuts the subprocess down by closing its stdin.
func (p *execProc) close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.dead == nil {
		p.dead = fmt.Errorf("native: exec subprocess closed")
	}
	err := p.wc.Close()
	return err
}
