package native_test

import (
	"math"
	"strings"
	"testing"

	"arraycomp/internal/loopir"
	"arraycomp/internal/native"
	"arraycomp/internal/runtime"
)

// iv is shorthand for a loop-variable subscript.
func iv(name string) []loopir.IntExpr {
	return []loopir.IntExpr{&loopir.IVar{Name: name}}
}

func aref(arr, idx string) *loopir.ARef {
	return &loopir.ARef{Array: arr, Subs: iv(idx)}
}

// squaresProg builds dst[i] = src[i]*src[i] over n elements.
func squaresProg(n int64) *loopir.Program {
	return &loopir.Program{
		Name: "squares",
		Arrays: []loopir.ArrayDecl{
			{Name: "src", B: runtime.NewBounds1(0, n-1), Role: loopir.RoleIn},
			{Name: "dst", B: runtime.NewBounds1(0, n-1), Role: loopir.RoleOut},
		},
		Stmts: []loopir.Stmt{
			&loopir.Loop{Var: "i", From: 0, To: n - 1, Step: 1, Body: []loopir.Stmt{
				&loopir.Assign{Array: "dst", Subs: iv("i"),
					Rhs: &loopir.VBin{Op: '*', L: aref("src", "i"), R: aref("src", "i")}},
			}},
		},
	}
}

// plusProg builds out[i] = in[i] + c.
func plusProg(name, in, out string, n int64, c float64) *loopir.Program {
	return &loopir.Program{
		Name: name,
		Arrays: []loopir.ArrayDecl{
			{Name: in, B: runtime.NewBounds1(0, n-1), Role: loopir.RoleIn},
			{Name: out, B: runtime.NewBounds1(0, n-1), Role: loopir.RoleOut},
		},
		Stmts: []loopir.Stmt{
			&loopir.Loop{Var: "i", From: 0, To: n - 1, Step: 1, Body: []loopir.Stmt{
				&loopir.Assign{Array: out, Subs: iv("i"),
					Rhs: &loopir.VBin{Op: '+', L: aref(in, "i"), R: &loopir.VConst{Value: c}}},
			}},
		},
	}
}

// inoutProg builds v[i] = v[i] + 1 updating v in place (RoleInOut).
func inoutProg(n int64) *loopir.Program {
	return &loopir.Program{
		Name: "bump",
		Arrays: []loopir.ArrayDecl{
			{Name: "v", B: runtime.NewBounds1(0, n-1), Role: loopir.RoleInOut},
		},
		Stmts: []loopir.Stmt{
			&loopir.Loop{Var: "i", From: 0, To: n - 1, Step: 1, Body: []loopir.Stmt{
				&loopir.Assign{Array: "v", Subs: iv("i"),
					Rhs: &loopir.VBin{Op: '+', L: aref("v", "i"), R: &loopir.VConst{Value: 1}}},
			}},
		},
	}
}

// failProg builds a program whose body raises a runtime error.
func failProg(n int64) *loopir.Program {
	return &loopir.Program{
		Name: "boom",
		Arrays: []loopir.ArrayDecl{
			{Name: "out", B: runtime.NewBounds1(0, n-1), Role: loopir.RoleOut},
		},
		Stmts: []loopir.Stmt{&loopir.Fail{Msg: "boom: proven collision"}},
	}
}

func testSpecs(n int64) []native.ProgramSpec {
	return []native.ProgramSpec{
		{Key: "squares", Units: []native.Unit{{Name: "dst", Prog: squaresProg(n)}}, Result: "dst"},
		{Key: "chain", Units: []native.Unit{
			{Name: "a", Prog: plusProg("a", "src", "a", n, 1)},
			{Name: "b", Prog: plusProg("b", "a", "b", n, 2)},
		}, Result: "b"},
		{Key: "bump", Units: []native.Unit{{Name: "v2", Prog: inoutProg(n), CloneSource: "v"}}, Result: "v2"},
		{Key: "boom", Units: []native.Unit{{Name: "out", Prog: failProg(n)}}, Result: "out"},
	}
}

func inputsFor(n int64) map[string]*runtime.Strict {
	b := runtime.NewBounds1(0, n-1)
	src := runtime.NewStrict(b)
	v := runtime.NewStrict(b)
	for i := range src.Data {
		src.Data[i] = float64(i) / 4
		v.Data[i] = float64(i) * 2
	}
	return map[string]*runtime.Strict{"src": src, "v": v}
}

// runModule drives every spec through a built module and returns the
// outputs (nil data marks the expected error case).
func runModule(t *testing.T, m *native.Module, n int64) map[string][]float64 {
	t.Helper()
	in := inputsFor(n)
	out := map[string][]float64{}
	for _, key := range []string{"squares", "chain", "bump"} {
		p := m.Plan(key)
		if p == nil {
			t.Fatalf("module has no plan %q", key)
		}
		res, err := p.Run(in)
		if err != nil {
			t.Fatalf("%s: %v", key, err)
		}
		if got := res.B.Size(); got != n {
			t.Fatalf("%s: result size %d, want %d", key, got, n)
		}
		out[key] = res.Data
	}
	// The in-place unit must never scribble on the caller's input.
	for i, v := range in["v"].Data {
		if v != float64(i)*2 {
			t.Fatalf("bump mutated caller input at %d: %v", i, v)
		}
	}
	if _, err := m.Plan("boom").Run(in); err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("boom: want runtime error, got %v", err)
	}
	if _, err := m.Plan("squares").Run(map[string]*runtime.Strict{}); err == nil {
		t.Fatal("squares with no inputs: want missing-input error")
	}
	// The error round-trips must leave the module usable (exec mode
	// keeps one stream; a program error must not poison it).
	if _, err := m.Plan("squares").Run(in); err != nil {
		t.Fatalf("squares after error: %v", err)
	}
	return out
}

func checkValues(t *testing.T, out map[string][]float64, n int64) {
	t.Helper()
	for i := int64(0); i < n; i++ {
		x := float64(i) / 4
		if got := out["squares"][i]; got != x*x {
			t.Fatalf("squares[%d] = %v, want %v", i, got, x*x)
		}
		if got := out["chain"][i]; got != x+3 {
			t.Fatalf("chain[%d] = %v, want %v", i, got, x+3)
		}
		if got := out["bump"][i]; got != float64(i)*2+1 {
			t.Fatalf("bump[%d] = %v, want %v", i, got, float64(i)*2+1)
		}
	}
}

// TestPluginMode exercises the in-process plugin path (skipped where
// the platform genuinely cannot build plugins).
func TestPluginMode(t *testing.T) {
	m, err := native.Build(testSpecs(8), native.Options{Mode: native.ModePlugin})
	if err != nil {
		t.Skipf("plugin mode unavailable here: %v", err)
	}
	defer m.Close()
	if m.Mode() != native.ModePlugin {
		t.Fatalf("mode = %q, want plugin", m.Mode())
	}
	checkValues(t, runModule(t, m, 8), 8)
}

// TestExecMode exercises the subprocess fallback path directly.
func TestExecMode(t *testing.T) {
	m, err := native.Build(testSpecs(8), native.Options{Mode: native.ModeExec})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if m.Mode() != native.ModeExec {
		t.Fatalf("mode = %q, want exec", m.Mode())
	}
	checkValues(t, runModule(t, m, 8), 8)
}

// TestEnvForcedExec is the plugin-unsupported-platform drill CI runs:
// HAC_NATIVE_MODE=exec must force the fallback even when Build is
// asked for auto mode on a plugin-capable host.
func TestEnvForcedExec(t *testing.T) {
	t.Setenv(native.EnvMode, "exec")
	m, err := native.Build(testSpecs(4), native.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if m.Mode() != native.ModeExec {
		t.Fatalf("mode = %q, want exec under %s=exec", m.Mode(), native.EnvMode)
	}
	checkValues(t, runModule(t, m, 4), 4)
}

// TestModesBitwiseIdentical asserts the two load mechanisms return
// bit-for-bit equal floats — exec mode frames raw IEEE bits, so any
// drift here is a protocol bug.
func TestModesBitwiseIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("two toolchain builds")
	}
	exe, err := native.Build(testSpecs(8), native.Options{Mode: native.ModeExec})
	if err != nil {
		t.Fatal(err)
	}
	defer exe.Close()
	plug, err := native.Build(testSpecs(8), native.Options{Mode: native.ModePlugin})
	if err != nil {
		t.Skipf("plugin mode unavailable here: %v", err)
	}
	defer plug.Close()
	a := runModule(t, plug, 8)
	b := runModule(t, exe, 8)
	for key := range a {
		for i := range a[key] {
			if math.Float64bits(a[key][i]) != math.Float64bits(b[key][i]) {
				t.Fatalf("%s[%d]: plugin %x vs exec %x", key, i,
					math.Float64bits(a[key][i]), math.Float64bits(b[key][i]))
			}
		}
	}
}

// TestRunAllocs pins the host-side allocation budget of Plan.Run: the
// flat input map is pooled and the exec protocol frames through a
// fixed scratch buffer, so a steady-state call allocates only the
// result slice and its Strict header (≤2 allocations).
func TestRunAllocs(t *testing.T) {
	for _, mode := range []native.Mode{native.ModePlugin, native.ModeExec} {
		t.Run(string(mode), func(t *testing.T) {
			m, err := native.Build(testSpecs(64), native.Options{Mode: mode})
			if err != nil {
				if mode == native.ModePlugin {
					t.Skipf("plugin mode unavailable here: %v", err)
				}
				t.Fatal(err)
			}
			defer m.Close()
			in := inputsFor(64)
			p := m.Plan("squares")
			if _, err := p.Run(in); err != nil {
				t.Fatal(err)
			}
			allocs := testing.AllocsPerRun(200, func() {
				if _, err := p.Run(in); err != nil {
					t.Fatal(err)
				}
			})
			if allocs > 2 {
				t.Fatalf("Plan.Run allocates %.0f times per call, budget is 2", allocs)
			}
		})
	}
}

// TestBuildErrors covers the spec-validation failures.
func TestBuildErrors(t *testing.T) {
	if _, err := native.Build(nil, native.Options{}); err == nil {
		t.Fatal("empty build: want error")
	}
	specs := []native.ProgramSpec{
		{Key: "dup", Units: []native.Unit{{Name: "dst", Prog: squaresProg(4)}}, Result: "dst"},
		{Key: "dup", Units: []native.Unit{{Name: "dst", Prog: squaresProg(4)}}, Result: "dst"},
	}
	if _, err := native.Build(specs, native.Options{}); err == nil {
		t.Fatal("duplicate keys: want error")
	}
	bad := []native.ProgramSpec{{Key: "k", Units: []native.Unit{{Name: "dst", Prog: squaresProg(4)}}, Result: "nope"}}
	if _, err := native.Build(bad, native.Options{}); err == nil {
		t.Fatal("missing result: want error")
	}
}
