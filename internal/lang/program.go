package lang

import "fmt"

// DefKind distinguishes the three array-producing forms the paper
// compiles.
type DefKind uint8

const (
	// Monolithic is `array bounds svpairs`: every element defined at
	// creation, exactly once.
	Monolithic DefKind = iota
	// Accumulated is `accumArray f z bounds svpairs`: zero or more
	// definitions per element, combined with f starting from z.
	Accumulated
	// BigUpd is `bigupd old svpairs`: a semi-monolithic update of an
	// existing array (fold of upd over the pairs).
	BigUpd
)

// String names the kind.
func (k DefKind) String() string {
	switch k {
	case Monolithic:
		return "array"
	case Accumulated:
		return "accumArray"
	case BigUpd:
		return "bigupd"
	}
	return fmt.Sprintf("DefKind(%d)", uint8(k))
}

// Bound is one dimension's bounds pair (Lo, Hi), inclusive on both
// ends as in Haskell's `array (l,u)`.
type Bound struct {
	Lo, Hi Expr
}

// AccumSpec carries the extra operands of an accumulated array.
type AccumSpec struct {
	// Combine is the combining function applied as combine(old, new).
	// Recognized names: "+", "*", "max", "min", "right" (keep newest),
	// "left" (keep oldest). Commutativity/associativity of the choice
	// decides whether s/v pair order may be changed (paper section 7).
	Combine string
	// Init is the default element value for elements receiving no
	// definitions.
	Init Expr
}

// Commutative reports whether the combining function is known
// associative and commutative, in which case reordering s/v pairs is
// semantics-preserving.
func (a *AccumSpec) Commutative() bool {
	switch a.Combine {
	case "+", "*", "max", "min":
		return true
	}
	return false
}

// ArrayDef is one array binding: name = array/accumArray/bigupd form.
type ArrayDef struct {
	Name   string
	Kind   DefKind
	Bounds []Bound
	Comp   CompNode
	// Source is the array being updated, for BigUpd only.
	Source string
	// Accum is non-nil for Accumulated only.
	Accum *AccumSpec
	// Strict records that the binding came from a letrec* (evaluated in
	// a strict context: every element demanded before the array is
	// used). Bindings from plain letrec keep non-strict semantics and
	// compile to thunks unless analysis proves strictness another way.
	Strict bool
	DefPos Pos
}

// Rank returns the number of dimensions.
func (d *ArrayDef) Rank() int { return len(d.Bounds) }

// Param is a scalar integer parameter of a program (array extents such
// as n, m are the common case).
type Param struct {
	Name string
	Pos  Pos
}

// Program is a compilation unit: scalar parameters, a set of
// (potentially mutually recursive) array definitions, and the name of
// the result array.
type Program struct {
	Params []Param
	Defs   []*ArrayDef
	Result string
}

// Def returns the definition of the named array, or nil.
func (p *Program) Def(name string) *ArrayDef {
	for _, d := range p.Defs {
		if d.Name == name {
			return d
		}
	}
	return nil
}

// HasParam reports whether name is a declared scalar parameter.
func (p *Program) HasParam(name string) bool {
	for _, q := range p.Params {
		if q.Name == name {
			return true
		}
	}
	return false
}
