package lang

import "fmt"

// Pos is a source position (1-based line and column). The zero Pos
// means "no position" (synthesized nodes).
type Pos struct {
	Line, Col int
}

// IsValid reports whether the position refers to actual source text.
func (p Pos) IsValid() bool { return p.Line > 0 }

// String renders "line:col" or "-" for the zero position.
func (p Pos) String() string {
	if !p.IsValid() {
		return "-"
	}
	return fmt.Sprintf("%d:%d", p.Line, p.Col)
}
