package lang

// InspectExpr walks e depth-first, calling f for every node. If f
// returns false for a node its children are skipped.
func InspectExpr(e Expr, f func(Expr) bool) {
	if e == nil || !f(e) {
		return
	}
	switch x := e.(type) {
	case *Var, *IntLit, *FloatLit:
	case *BinOp:
		InspectExpr(x.L, f)
		InspectExpr(x.R, f)
	case *UnOp:
		InspectExpr(x.X, f)
	case *Index:
		for _, s := range x.Subs {
			InspectExpr(s, f)
		}
	case *Call:
		for _, a := range x.Args {
			InspectExpr(a, f)
		}
	case *Cond:
		InspectExpr(x.C, f)
		InspectExpr(x.T, f)
		InspectExpr(x.E, f)
	case *Let:
		for _, b := range x.Binds {
			InspectExpr(b.Rhs, f)
		}
		InspectExpr(x.Body, f)
	}
}

// InspectComp walks a comprehension tree depth-first, calling f for
// every comprehension node. If f returns false the node's children are
// skipped. Expressions inside nodes are not entered; use InspectExpr on
// them explicitly where needed.
func InspectComp(n CompNode, f func(CompNode) bool) {
	if n == nil || !f(n) {
		return
	}
	switch x := n.(type) {
	case *Clause:
	case *Generator:
		InspectComp(x.Body, f)
	case *Guard:
		InspectComp(x.Body, f)
	case *Append:
		for _, p := range x.Parts {
			InspectComp(p, f)
		}
	case *CompLet:
		InspectComp(x.Body, f)
	}
}

// Clauses collects every s/v clause of the tree in left-to-right
// (source) order.
func Clauses(n CompNode) []*Clause {
	var out []*Clause
	InspectComp(n, func(c CompNode) bool {
		if cl, ok := c.(*Clause); ok {
			out = append(out, cl)
		}
		return true
	})
	return out
}

// ArrayRefs collects every Index expression in e, in evaluation order.
func ArrayRefs(e Expr) []*Index {
	var out []*Index
	InspectExpr(e, func(x Expr) bool {
		if ix, ok := x.(*Index); ok {
			out = append(out, ix)
		}
		return true
	})
	return out
}

// FreeVars returns the set of variable names appearing free in e,
// treating let-bound names as bound in their bodies. Array names in
// Index nodes are not included (they live in a separate namespace).
func FreeVars(e Expr) map[string]bool {
	free := map[string]bool{}
	var walk func(e Expr, bound map[string]bool)
	walk = func(e Expr, bound map[string]bool) {
		switch x := e.(type) {
		case nil:
		case *Var:
			if !bound[x.Name] {
				free[x.Name] = true
			}
		case *IntLit, *FloatLit:
		case *BinOp:
			walk(x.L, bound)
			walk(x.R, bound)
		case *UnOp:
			walk(x.X, bound)
		case *Index:
			for _, s := range x.Subs {
				walk(s, bound)
			}
		case *Call:
			for _, a := range x.Args {
				walk(a, bound)
			}
		case *Cond:
			walk(x.C, bound)
			walk(x.T, bound)
			walk(x.E, bound)
		case *Let:
			// Non-recursive let: rhs sees the outer scope.
			for _, b := range x.Binds {
				walk(b.Rhs, bound)
			}
			inner := map[string]bool{}
			for k := range bound {
				inner[k] = true
			}
			for _, b := range x.Binds {
				inner[b.Name] = true
			}
			walk(x.Body, inner)
		}
	}
	walk(e, map[string]bool{})
	return free
}

// CloneExpr returns a deep copy of e.
func CloneExpr(e Expr) Expr {
	switch x := e.(type) {
	case nil:
		return nil
	case *Var:
		c := *x
		return &c
	case *IntLit:
		c := *x
		return &c
	case *FloatLit:
		c := *x
		return &c
	case *BinOp:
		return &BinOp{Op: x.Op, L: CloneExpr(x.L), R: CloneExpr(x.R)}
	case *UnOp:
		return &UnOp{Op: x.Op, X: CloneExpr(x.X), OpPos: x.OpPos}
	case *Index:
		subs := make([]Expr, len(x.Subs))
		for i, s := range x.Subs {
			subs[i] = CloneExpr(s)
		}
		return &Index{Array: x.Array, Subs: subs, Bang: x.Bang}
	case *Call:
		args := make([]Expr, len(x.Args))
		for i, a := range x.Args {
			args[i] = CloneExpr(a)
		}
		return &Call{Fn: x.Fn, Args: args, FnPos: x.FnPos}
	case *Cond:
		return &Cond{If: x.If, C: CloneExpr(x.C), T: CloneExpr(x.T), E: CloneExpr(x.E)}
	case *Let:
		binds := make([]Binding, len(x.Binds))
		for i, b := range x.Binds {
			binds[i] = Binding{Name: b.Name, Rhs: CloneExpr(b.Rhs), Pos: b.Pos}
		}
		return &Let{LetPos: x.LetPos, Binds: binds, Body: CloneExpr(x.Body)}
	}
	panic("lang: CloneExpr: unknown node")
}

// SubstVar returns e with every free occurrence of name replaced by a
// deep copy of repl. Let-bound shadowing is respected.
func SubstVar(e Expr, name string, repl Expr) Expr {
	switch x := e.(type) {
	case nil:
		return nil
	case *Var:
		if x.Name == name {
			return CloneExpr(repl)
		}
		return x
	case *IntLit, *FloatLit:
		return x
	case *BinOp:
		return &BinOp{Op: x.Op, L: SubstVar(x.L, name, repl), R: SubstVar(x.R, name, repl)}
	case *UnOp:
		return &UnOp{Op: x.Op, X: SubstVar(x.X, name, repl), OpPos: x.OpPos}
	case *Index:
		subs := make([]Expr, len(x.Subs))
		for i, s := range x.Subs {
			subs[i] = SubstVar(s, name, repl)
		}
		return &Index{Array: x.Array, Subs: subs, Bang: x.Bang}
	case *Call:
		args := make([]Expr, len(x.Args))
		for i, a := range x.Args {
			args[i] = SubstVar(a, name, repl)
		}
		return &Call{Fn: x.Fn, Args: args, FnPos: x.FnPos}
	case *Cond:
		return &Cond{If: x.If, C: SubstVar(x.C, name, repl), T: SubstVar(x.T, name, repl), E: SubstVar(x.E, name, repl)}
	case *Let:
		binds := make([]Binding, len(x.Binds))
		shadowed := false
		for i, b := range x.Binds {
			binds[i] = Binding{Name: b.Name, Rhs: SubstVar(b.Rhs, name, repl), Pos: b.Pos}
			if b.Name == name {
				shadowed = true
			}
		}
		body := x.Body
		if !shadowed {
			body = SubstVar(body, name, repl)
		}
		return &Let{LetPos: x.LetPos, Binds: binds, Body: body}
	}
	panic("lang: SubstVar: unknown node")
}
