package lang

import "fmt"

// Expr is the interface implemented by every expression node.
type Expr interface {
	exprNode()
	// Pos returns the position of the node's leftmost token.
	Pos() Pos
}

// Op is a binary or unary operator.
type Op uint8

// Binary and unary operators of the expression language.
const (
	OpAdd Op = iota // +
	OpSub           // -
	OpMul           // *
	OpDiv           // /
	OpMod           // `mod`
	OpNeg           // unary -
	OpEq            // ==
	OpNe            // /=
	OpLt            // <
	OpLe            // <=
	OpGt            // >
	OpGe            // >=
	OpAnd           // &&
	OpOr            // ||
	OpNot           // not
)

// String renders the operator's concrete syntax.
func (o Op) String() string {
	switch o {
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	case OpMod:
		return "mod"
	case OpNeg:
		return "-"
	case OpEq:
		return "=="
	case OpNe:
		return "/="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpAnd:
		return "&&"
	case OpOr:
		return "||"
	case OpNot:
		return "not"
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// IsComparison reports whether the operator yields a boolean from two
// numbers.
func (o Op) IsComparison() bool {
	switch o {
	case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
		return true
	}
	return false
}

// IsLogical reports whether the operator combines booleans.
func (o Op) IsLogical() bool { return o == OpAnd || o == OpOr || o == OpNot }

// Var is a variable reference: a loop index, a scalar parameter, a
// let-bound name, or an array name in non-subscript position.
type Var struct {
	Name    string
	NamePos Pos
}

// IntLit is an integer literal.
type IntLit struct {
	Value   int64
	LitPos  Pos
	Literal string // original spelling, "" if synthesized
}

// FloatLit is a floating-point literal.
type FloatLit struct {
	Value   float64
	LitPos  Pos
	Literal string
}

// BinOp is a binary operation L Op R.
type BinOp struct {
	Op   Op
	L, R Expr
}

// UnOp is a unary operation (negation or logical not).
type UnOp struct {
	Op    Op
	X     Expr
	OpPos Pos
}

// Index is an array element selection a!(s1, …, sd). One subscript per
// array dimension.
type Index struct {
	Array string // array name
	Subs  []Expr
	Bang  Pos
}

// Call is a call to a builtin scalar function (abs, min, max, sqrt, …).
type Call struct {
	Fn    string
	Args  []Expr
	FnPos Pos
}

// Cond is a conditional expression `if c then t else e`.
type Cond struct {
	If      Pos
	C, T, E Expr
}

// Binding is one name = expr binding in a let/where.
type Binding struct {
	Name string
	Rhs  Expr
	Pos  Pos
}

// Let is `let binds in body` (or the equivalent `body where binds`).
type Let struct {
	LetPos Pos
	Binds  []Binding
	Body   Expr
}

func (*Var) exprNode()      {}
func (*IntLit) exprNode()   {}
func (*FloatLit) exprNode() {}
func (*BinOp) exprNode()    {}
func (*UnOp) exprNode()     {}
func (*Index) exprNode()    {}
func (*Call) exprNode()     {}
func (*Cond) exprNode()     {}
func (*Let) exprNode()      {}

// Pos implementations.
func (e *Var) Pos() Pos      { return e.NamePos }
func (e *IntLit) Pos() Pos   { return e.LitPos }
func (e *FloatLit) Pos() Pos { return e.LitPos }
func (e *BinOp) Pos() Pos    { return e.L.Pos() }
func (e *UnOp) Pos() Pos     { return e.OpPos }
func (e *Index) Pos() Pos    { return e.Bang }
func (e *Call) Pos() Pos     { return e.FnPos }
func (e *Cond) Pos() Pos     { return e.If }
func (e *Let) Pos() Pos      { return e.LetPos }

// Num returns an IntLit with no position, a convenience for
// synthesized subscript arithmetic.
func Num(v int64) *IntLit { return &IntLit{Value: v} }

// Name returns a positionless Var.
func Name(s string) *Var { return &Var{Name: s} }

// Add, Sub, Mul are convenience constructors for synthesized arithmetic.
func Add(l, r Expr) *BinOp { return &BinOp{Op: OpAdd, L: l, R: r} }

// Sub builds l − r.
func Sub(l, r Expr) *BinOp { return &BinOp{Op: OpSub, L: l, R: r} }

// Mul builds l × r.
func Mul(l, r Expr) *BinOp { return &BinOp{Op: OpMul, L: l, R: r} }

// At builds the selection array!(subs…).
func At(array string, subs ...Expr) *Index { return &Index{Array: array, Subs: subs} }
