package lang

import (
	"testing"
)

// buildSample returns a!(i-1) + let t = b!j in t * k
func buildSample() Expr {
	return Add(
		At("a", Sub(Name("i"), Num(1))),
		&Let{
			Binds: []Binding{{Name: "t", Rhs: At("b", Name("j"))}},
			Body:  Mul(Name("t"), Name("k")),
		},
	)
}

func TestInspectExprVisitsAll(t *testing.T) {
	var kinds []string
	InspectExpr(buildSample(), func(e Expr) bool {
		switch e.(type) {
		case *Index:
			kinds = append(kinds, "index")
		case *Var:
			kinds = append(kinds, "var")
		case *Let:
			kinds = append(kinds, "let")
		}
		return true
	})
	indexCount, letCount := 0, 0
	for _, k := range kinds {
		switch k {
		case "index":
			indexCount++
		case "let":
			letCount++
		}
	}
	if indexCount != 2 || letCount != 1 {
		t.Errorf("visited %v", kinds)
	}
}

func TestInspectExprPrune(t *testing.T) {
	count := 0
	InspectExpr(buildSample(), func(e Expr) bool {
		count++
		_, isLet := e.(*Let)
		return !isLet // skip let subtree
	})
	// Root BinOp, Index a, its Sub, i, 1, Let = 6 nodes.
	if count != 6 {
		t.Errorf("visited %d nodes, want 6", count)
	}
}

func TestFreeVars(t *testing.T) {
	fv := FreeVars(buildSample())
	for _, want := range []string{"i", "j", "k"} {
		if !fv[want] {
			t.Errorf("missing free var %q in %v", want, fv)
		}
	}
	if fv["t"] {
		t.Error("let-bound t must not be free")
	}
	if fv["a"] || fv["b"] {
		t.Error("array names must not be reported as free scalars")
	}
}

func TestFreeVarsShadowing(t *testing.T) {
	// let i = k in i + j : i bound, k free (in rhs), j free.
	e := &Let{
		Binds: []Binding{{Name: "i", Rhs: Name("k")}},
		Body:  Add(Name("i"), Name("j")),
	}
	fv := FreeVars(e)
	if fv["i"] || !fv["j"] || !fv["k"] {
		t.Errorf("fv = %v", fv)
	}
}

func TestArrayRefs(t *testing.T) {
	refs := ArrayRefs(buildSample())
	if len(refs) != 2 || refs[0].Array != "a" || refs[1].Array != "b" {
		t.Errorf("refs = %+v", refs)
	}
}

func TestCloneExprIsDeep(t *testing.T) {
	orig := buildSample().(*BinOp)
	cl := CloneExpr(orig).(*BinOp)
	if ExprString(orig) != ExprString(cl) {
		t.Fatal("clone must print identically")
	}
	// Mutating the clone must not affect the original.
	cl.L.(*Index).Subs[0] = Num(99)
	if ExprString(orig) == ExprString(cl) {
		t.Error("clone shares structure with original")
	}
}

func TestSubstVar(t *testing.T) {
	e := Add(Name("i"), At("a", Name("i")))
	got := ExprString(SubstVar(e, "i", Add(Name("j"), Num(1))))
	want := "j + 1 + a!(j + 1)"
	if got != want {
		t.Errorf("SubstVar = %q, want %q", got, want)
	}
}

func TestSubstVarRespectsShadowing(t *testing.T) {
	// let i = i in i : outer i in rhs substituted, body i untouched.
	e := &Let{
		Binds: []Binding{{Name: "i", Rhs: Name("i")}},
		Body:  Name("i"),
	}
	got := ExprString(SubstVar(e, "i", Num(7)))
	want := "let i = 7 in i"
	if got != want {
		t.Errorf("SubstVar = %q, want %q", got, want)
	}
}

func TestClausesOrder(t *testing.T) {
	comp := &Generator{
		Var: "i", First: Num(1), Last: Name("n"),
		Body: &Append{Parts: []CompNode{
			&Clause{Subs: []Expr{Name("i")}, Value: Num(1)},
			&Guard{Cond: Num(1), Body: &Clause{Subs: []Expr{Name("i")}, Value: Num(2)}},
			&CompLet{Body: &Clause{Subs: []Expr{Name("i")}, Value: Num(3)}},
		}},
	}
	cls := Clauses(comp)
	if len(cls) != 3 {
		t.Fatalf("clauses = %d, want 3", len(cls))
	}
	for i, want := range []int64{1, 2, 3} {
		if cls[i].Value.(*IntLit).Value != want {
			t.Errorf("clause %d value = %v", i, cls[i].Value)
		}
	}
}

func TestOpPredicates(t *testing.T) {
	if !OpLt.IsComparison() || OpAdd.IsComparison() {
		t.Error("IsComparison wrong")
	}
	if !OpAnd.IsLogical() || OpMul.IsLogical() {
		t.Error("IsLogical wrong")
	}
}

func TestDefKindStrings(t *testing.T) {
	if Monolithic.String() != "array" || Accumulated.String() != "accumArray" || BigUpd.String() != "bigupd" {
		t.Error("DefKind strings wrong")
	}
}

func TestPosString(t *testing.T) {
	if (Pos{}).String() != "-" || (Pos{3, 7}).String() != "3:7" {
		t.Error("Pos.String wrong")
	}
	if (Pos{}).IsValid() || !(Pos{1, 1}).IsValid() {
		t.Error("Pos.IsValid wrong")
	}
}
