package lang

import (
	"strings"
	"testing"
)

func TestCompString(t *testing.T) {
	comp := &Generator{
		Var: "i", First: Num(1), Last: Name("n"),
		Body: &Append{Parts: []CompNode{
			&Clause{Subs: []Expr{Name("i")}, Value: &FloatLit{Value: 1, Literal: "1.0"}},
			&Guard{
				Cond: &BinOp{Op: OpEq, L: &BinOp{Op: OpMod, L: Name("i"), R: Num(2)}, R: Num(0)},
				Body: &Clause{Subs: []Expr{Add(Name("i"), Num(1))}, Value: Num(2)},
			},
			&CompLet{
				Binds: []Binding{{Name: "v", Rhs: Mul(Name("i"), Num(3))}},
				Body:  &Clause{Subs: []Expr{Name("i"), Name("i")}, Value: Name("v")},
			},
		}},
	}
	got := CompString(comp)
	for _, want := range []string{
		"[* (",
		"[ i := 1.0 ]",
		"[* [ (i + 1) := 2 ] | i mod 2 == 0 *]",
		"[ (i + 1) := 2 ]",
		"(let v = i * 3 in [ (i,i) := v ])",
		"| i <- [1..n] *]",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("CompString missing %q:\n%s", want, got)
		}
	}
}

func TestCompStringStrideGenerator(t *testing.T) {
	comp := &Generator{
		Var: "i", First: Num(2), Second: Num(4), Last: Name("n"),
		Body: &Clause{Subs: []Expr{Name("i")}, Value: Num(0)},
	}
	if got := CompString(comp); !strings.Contains(got, "i <- [2,4..n]") {
		t.Errorf("stride generator rendering: %s", got)
	}
}

func TestDefString(t *testing.T) {
	def := &ArrayDef{
		Name: "h", Kind: Accumulated,
		Accum:  &AccumSpec{Combine: "+", Init: &FloatLit{Value: 0, Literal: "0.0"}},
		Bounds: []Bound{{Lo: Num(0), Hi: Num(9)}},
		Comp:   &Clause{Subs: []Expr{Num(1)}, Value: Num(1)},
	}
	got := DefString(def)
	if !strings.Contains(got, "h = accumArray (+) 0.0 (0,9)") {
		t.Errorf("DefString = %q", got)
	}
	upd := &ArrayDef{
		Name: "a2", Kind: BigUpd, Source: "a",
		Comp: &Clause{Subs: []Expr{Num(1)}, Value: Num(1)},
	}
	if got := DefString(upd); !strings.Contains(got, "a2 = bigupd a") {
		t.Errorf("DefString = %q", got)
	}
}

func TestDefStringMultiDimBounds(t *testing.T) {
	def := &ArrayDef{
		Name: "a", Kind: Monolithic,
		Bounds: []Bound{{Lo: Num(1), Hi: Name("m")}, {Lo: Num(1), Hi: Name("n")}},
		Comp:   &Clause{Subs: []Expr{Name("i"), Name("j")}, Value: Num(0)},
	}
	if got := DefString(def); !strings.Contains(got, "((1,1),(m,n))") {
		t.Errorf("DefString = %q", got)
	}
}

func TestHasParam(t *testing.T) {
	p := &Program{Params: []Param{{Name: "n"}}}
	if !p.HasParam("n") || p.HasParam("m") {
		t.Error("HasParam wrong")
	}
}

func TestCloneAndSubstCoverAllNodes(t *testing.T) {
	e := &Cond{
		C: &BinOp{Op: OpLt, L: Name("i"), R: Name("n")},
		T: &Call{Fn: "min", Args: []Expr{Name("i"), &UnOp{Op: OpNeg, X: Num(3)}}},
		E: &FloatLit{Value: 2.5, Literal: "2.5"},
	}
	if ExprString(CloneExpr(e)) != ExprString(e) {
		t.Error("CloneExpr of cond/call/unop not faithful")
	}
	s := SubstVar(e, "i", Num(7))
	if !strings.Contains(ExprString(s), "7 < n") || !strings.Contains(ExprString(s), "min(7, -3)") {
		t.Errorf("SubstVar = %s", ExprString(s))
	}
	// Substitution into guards/lets of unrelated names is identity.
	if ExprString(SubstVar(e, "zzz", Num(1))) != ExprString(e) {
		t.Error("SubstVar of absent name must be identity")
	}
}
