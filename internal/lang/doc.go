// Package lang defines the abstract syntax of the array-comprehension
// language the paper compiles: a small Haskell-like expression language
// plus nested list comprehensions ([* … *] brackets), monolithic array
// expressions (`array bounds svpairs`), accumulated arrays, recursive
// bindings in a strict context (letrec*), and semi-monolithic updates
// (bigupd).
//
// Go has no algebraic data types, so the AST follows the interface +
// type-switch idiom used by go/ast: Expr and CompNode are closed
// interfaces (an unexported marker method), and consumers dispatch with
// type switches.
package lang
