package lang

// CompNode is a node of a nested list comprehension expression tree
// (paper section 3.1). Each node denotes a list of subscript/value
// pairs; generators replicate their body across an index range, append
// nodes concatenate alternatives, guards filter, lets bind common
// subexpressions, and clauses are the leaves.
type CompNode interface {
	compNode()
	Pos() Pos
}

// Clause is an s/v clause: the singleton list [ subs := value ]. It
// plays the role of an assignment statement in an imperative DO loop.
type Clause struct {
	Subs   []Expr // one subscript expression per array dimension
	Value  Expr
	Assign Pos
	// ID is assigned during analysis; 0 until then. Clauses are the
	// vertices of dependence graphs.
	ID int
}

// Generator is `[* body | var <- [first, second .. last] *]`: one
// instance of body per index value, appended in index order. When
// Second is nil the stride is 1 (the common `[lo..hi]` form).
type Generator struct {
	Var    string
	First  Expr
	Second Expr // nil for stride 1
	Last   Expr
	Body   CompNode
	VarPos Pos
}

// Guard is `[* body | cond *]`: body if cond holds, else the empty list.
type Guard struct {
	Cond Expr
	Body CompNode
}

// Append concatenates the part lists with ++.
type Append struct {
	Parts   []CompNode
	PlusPos Pos
}

// CompLet is `let binds in body` at comprehension level: the bindings
// scope over every clause of body (the paper's shared common
// subexpression `where v = E3`).
type CompLet struct {
	Binds  []Binding
	Body   CompNode
	LetPos Pos
}

func (*Clause) compNode()    {}
func (*Generator) compNode() {}
func (*Guard) compNode()     {}
func (*Append) compNode()    {}
func (*CompLet) compNode()   {}

// Pos implementations.
func (n *Clause) Pos() Pos    { return n.Assign }
func (n *Generator) Pos() Pos { return n.VarPos }
func (n *Guard) Pos() Pos     { return n.Cond.Pos() }
func (n *Append) Pos() Pos {
	if len(n.Parts) > 0 {
		return n.Parts[0].Pos()
	}
	return n.PlusPos
}
func (n *CompLet) Pos() Pos { return n.LetPos }
