package lang

import (
	"fmt"
	"strconv"
	"strings"
)

// precedence levels, loosest first.
const (
	precOr = iota + 1
	precAnd
	precCmp
	precAdd
	precMul
	precUnary
	precAtom
)

func opPrec(o Op) int {
	switch o {
	case OpOr:
		return precOr
	case OpAnd:
		return precAnd
	case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
		return precCmp
	case OpAdd, OpSub:
		return precAdd
	case OpMul, OpDiv, OpMod:
		return precMul
	}
	return precUnary
}

// ExprString renders e in the concrete syntax accepted by the parser.
func ExprString(e Expr) string {
	var b strings.Builder
	writeExpr(&b, e, 0)
	return b.String()
}

func writeExpr(b *strings.Builder, e Expr, outer int) {
	switch x := e.(type) {
	case nil:
		b.WriteString("<nil>")
	case *Var:
		b.WriteString(x.Name)
	case *IntLit:
		if x.Literal != "" {
			b.WriteString(x.Literal)
		} else {
			b.WriteString(strconv.FormatInt(x.Value, 10))
		}
	case *FloatLit:
		if x.Literal != "" {
			b.WriteString(x.Literal)
		} else {
			b.WriteString(strconv.FormatFloat(x.Value, 'g', -1, 64))
		}
	case *BinOp:
		p := opPrec(x.Op)
		if p < outer {
			b.WriteByte('(')
		}
		writeExpr(b, x.L, p)
		if x.Op == OpMod {
			b.WriteString(" mod ")
		} else {
			fmt.Fprintf(b, " %s ", x.Op)
		}
		writeExpr(b, x.R, p+1)
		if p < outer {
			b.WriteByte(')')
		}
	case *UnOp:
		if precUnary < outer {
			b.WriteByte('(')
		}
		if x.Op == OpNot {
			b.WriteString("not ")
		} else {
			b.WriteByte('-')
		}
		writeExpr(b, x.X, precUnary)
		if precUnary < outer {
			b.WriteByte(')')
		}
	case *Index:
		b.WriteString(x.Array)
		b.WriteByte('!')
		if len(x.Subs) == 1 {
			// a!i for simple subscripts, a!(i+1) otherwise.
			if isAtom(x.Subs[0]) {
				writeExpr(b, x.Subs[0], precAtom)
				return
			}
		}
		b.WriteByte('(')
		for i, s := range x.Subs {
			if i > 0 {
				b.WriteString(",")
			}
			writeExpr(b, s, 0)
		}
		b.WriteByte(')')
	case *Call:
		b.WriteString(x.Fn)
		b.WriteByte('(')
		for i, a := range x.Args {
			if i > 0 {
				b.WriteString(", ")
			}
			writeExpr(b, a, 0)
		}
		b.WriteByte(')')
	case *Cond:
		if outer > 0 {
			b.WriteByte('(')
		}
		b.WriteString("if ")
		writeExpr(b, x.C, 0)
		b.WriteString(" then ")
		writeExpr(b, x.T, 0)
		b.WriteString(" else ")
		writeExpr(b, x.E, 0)
		if outer > 0 {
			b.WriteByte(')')
		}
	case *Let:
		if outer > 0 {
			b.WriteByte('(')
		}
		b.WriteString("let ")
		for i, bd := range x.Binds {
			if i > 0 {
				b.WriteString("; ")
			}
			b.WriteString(bd.Name)
			b.WriteString(" = ")
			writeExpr(b, bd.Rhs, 0)
		}
		b.WriteString(" in ")
		writeExpr(b, x.Body, 0)
		if outer > 0 {
			b.WriteByte(')')
		}
	default:
		fmt.Fprintf(b, "<?expr %T>", e)
	}
}

func isAtom(e Expr) bool {
	switch e.(type) {
	case *Var, *IntLit, *FloatLit:
		return true
	}
	return false
}

// CompString renders a comprehension tree in concrete syntax.
func CompString(n CompNode) string {
	var b strings.Builder
	writeComp(&b, n)
	return b.String()
}

func writeComp(b *strings.Builder, n CompNode) {
	switch x := n.(type) {
	case nil:
		b.WriteString("<nil>")
	case *Clause:
		b.WriteString("[ ")
		if len(x.Subs) == 1 {
			writeExpr(b, x.Subs[0], precAtom)
		} else {
			b.WriteByte('(')
			for i, s := range x.Subs {
				if i > 0 {
					b.WriteString(",")
				}
				writeExpr(b, s, 0)
			}
			b.WriteByte(')')
		}
		b.WriteString(" := ")
		writeExpr(b, x.Value, 0)
		b.WriteString(" ]")
	case *Generator:
		b.WriteString("[* ")
		writeComp(b, x.Body)
		b.WriteString(" | ")
		b.WriteString(x.Var)
		b.WriteString(" <- [")
		writeExpr(b, x.First, 0)
		if x.Second != nil {
			b.WriteString(",")
			writeExpr(b, x.Second, 0)
		}
		b.WriteString("..")
		writeExpr(b, x.Last, 0)
		b.WriteString("] *]")
	case *Guard:
		b.WriteString("[* ")
		writeComp(b, x.Body)
		b.WriteString(" | ")
		writeExpr(b, x.Cond, 0)
		b.WriteString(" *]")
	case *Append:
		b.WriteByte('(')
		for i, p := range x.Parts {
			if i > 0 {
				b.WriteString(" ++ ")
			}
			writeComp(b, p)
		}
		b.WriteByte(')')
	case *CompLet:
		b.WriteString("(let ")
		for i, bd := range x.Binds {
			if i > 0 {
				b.WriteString("; ")
			}
			b.WriteString(bd.Name)
			b.WriteString(" = ")
			writeExpr(b, bd.Rhs, 0)
		}
		b.WriteString(" in ")
		writeComp(b, x.Body)
		b.WriteByte(')')
	default:
		fmt.Fprintf(b, "<?comp %T>", n)
	}
}

// DefString renders an array definition.
func DefString(d *ArrayDef) string {
	var b strings.Builder
	b.WriteString(d.Name)
	b.WriteString(" = ")
	switch d.Kind {
	case Monolithic:
		b.WriteString("array ")
	case Accumulated:
		comb := d.Accum.Combine
		if comb == "+" || comb == "*" {
			// Operator combiners parse back only in section form.
			comb = "(" + comb + ")"
		}
		fmt.Fprintf(&b, "accumArray %s ", comb)
		writeExpr(&b, d.Accum.Init, precAtom)
		b.WriteByte(' ')
	case BigUpd:
		fmt.Fprintf(&b, "bigupd %s ", d.Source)
	}
	if d.Kind != BigUpd {
		writeBounds(&b, d.Bounds)
		b.WriteByte(' ')
	}
	writeComp(&b, d.Comp)
	return b.String()
}

func writeBounds(b *strings.Builder, bounds []Bound) {
	if len(bounds) == 1 {
		b.WriteByte('(')
		writeExpr(b, bounds[0].Lo, 0)
		b.WriteString(",")
		writeExpr(b, bounds[0].Hi, 0)
		b.WriteByte(')')
		return
	}
	b.WriteString("((")
	for i, bd := range bounds {
		if i > 0 {
			b.WriteString(",")
		}
		writeExpr(b, bd.Lo, 0)
	}
	b.WriteString("),(")
	for i, bd := range bounds {
		if i > 0 {
			b.WriteString(",")
		}
		writeExpr(b, bd.Hi, 0)
	}
	b.WriteString("))")
}

// ProgramString renders a whole program.
func ProgramString(p *Program) string {
	var b strings.Builder
	if len(p.Params) > 0 {
		b.WriteString("param ")
		for i, q := range p.Params {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(q.Name)
		}
		b.WriteString(";\n")
	}
	b.WriteString("letrec*\n")
	for _, d := range p.Defs {
		b.WriteString("  ")
		b.WriteString(DefString(d))
		b.WriteString(";\n")
	}
	b.WriteString("in ")
	b.WriteString(p.Result)
	b.WriteString("\n")
	return b.String()
}
