package gencomp

import (
	"arraycomp/internal/lang"
)

// Subscripted-subscript generation: an index-array definition plus a
// consumer that subscripts through it (gather, scatter, or histogram
// accumulation). The index array's value shape is drawn from both
// satisfying distributions (identity, reversal, constant — in range,
// injective and/or monotone as the consumer requires) and violating
// ones (out-of-range values, collisions under a scatter), and each
// shape is rendered either as the recognizable affine builder — the
// claims are then discharged statically — or as a guard-split builder
// computing the same values, which defeats the static recognizer so
// the claims stay runtime and exercise the one-pass verifier on every
// execution. Violating arrays route the claim-assuming plan to its
// checked fallback; the fuzz oracle proves the routing is silent
// (bitwise parity with the NoIdxProp ablation) and that genuine
// errors — collisions, out-of-range subscripts — are reported
// identically with and without the conditional layer.

// idxShape is one index-array value distribution.
type idxShape struct {
	// value renders the element value at generator variable v.
	value func(v string) lang.Expr
	// runtime renders the builder as a guard-split (non-recognizable)
	// comprehension so the claims must be verified at runtime.
	runtime bool
}

// indirectDefs appends an index-array definition and one consumer
// subscripting through it. The consumer is generated last so it is the
// program result and the pair is never dead-code eliminated.
func (g *gen) indirectDefs(idxName, consName string) []*lang.ArrayDef {
	n := g.env["n"]
	// Extent of the index array and its consumer; clamped so gathers
	// into the input vector u (bounds 0..n+2) stay in range for the
	// satisfying shapes.
	m := 2 + g.rng.Int63n(g.cfg.MaxExtent-1)
	if m > n+2 {
		m = n + 2
	}

	shape := g.idxShape(m)
	idxDef := g.indexArrayDef(idxName, m, shape)
	consDef := g.indirectConsumer(consName, idxName, m)
	return []*lang.ArrayDef{idxDef, consDef}
}

// idxShape draws the value distribution.
func (g *gen) idxShape(m int64) idxShape {
	identity := func(v string) lang.Expr { return lang.Name(v) }
	reversal := func(v string) lang.Expr { return lang.Sub(lang.Num(m+1), lang.Name(v)) }
	c := 1 + g.rng.Int63n(m)
	constant := func(string) lang.Expr { return lang.Num(c) }
	oob := func(v string) lang.Expr { return lang.Add(lang.Name(v), lang.Num(m)) }
	switch g.pick(20, 20, 8, 16, 16, 10, 10) {
	case 0: // identity, statically discharged (mono + inj + range)
		return idxShape{value: identity}
	case 1: // reversal, statically discharged (inj + range, not mono)
		return idxShape{value: reversal}
	case 2: // constant, statically discharged (mono + range, not inj)
		return idxShape{value: constant}
	case 3: // identity behind a guard split: runtime verifier passes
		return idxShape{value: identity, runtime: true}
	case 4: // reversal, runtime: mono claims fail -> checked fallback
		return idxShape{value: reversal, runtime: true}
	case 5: // out of range, runtime: range claims fail, errors must agree
		return idxShape{value: oob, runtime: true}
	default: // constant, runtime: collisions under a scatter must agree
		return idxShape{value: constant, runtime: true}
	}
}

// indexArrayDef builds `idx = array (1,m) [ i := value(i) | ... ]`,
// either as the plain recognizable cover or as an even/odd guard split
// over the same values.
func (g *gen) indexArrayDef(name string, m int64, shape idxShape) *lang.ArrayDef {
	def := &lang.ArrayDef{
		Name:   name,
		Kind:   lang.Monolithic,
		Bounds: []lang.Bound{{Lo: lang.Num(1), Hi: g.boundExpr(m)}},
		Strict: true,
	}
	if !shape.runtime {
		v := g.freshVar()
		def.Comp = g.genNode(v, 1, m, 1, &lang.Clause{
			Subs:  []lang.Expr{lang.Name(v)},
			Value: shape.value(v),
		})
		return def
	}
	// Guard split: same values, but the Append + guards defeat the
	// static recognizer, so every claim stays runtime.
	part := func(even bool) lang.CompNode {
		v := g.freshVar()
		cond := lang.Expr(&lang.BinOp{Op: lang.OpEq,
			L: &lang.BinOp{Op: lang.OpMod, L: lang.Name(v), R: lang.Num(2)}, R: lang.Num(0)})
		if !even {
			cond = &lang.UnOp{Op: lang.OpNot, X: cond}
		}
		return g.genNode(v, 1, m, 1, &lang.Guard{Cond: cond, Body: &lang.Clause{
			Subs:  []lang.Expr{lang.Name(v)},
			Value: shape.value(v),
		}})
	}
	def.Comp = &lang.Append{Parts: []lang.CompNode{part(true), part(false)}}
	return def
}

// indirectConsumer builds the definition subscripting through idxName:
// a scatter, a gather from the input vector u, or a histogram-style
// commutative accumulation.
func (g *gen) indirectConsumer(name, idxName string, m int64) *lang.ArrayDef {
	v := g.freshVar()
	load := lang.At(idxName, lang.Name(v))
	switch g.pick(35, 30, 35) {
	case 0: // scatter: cons!(idx!(v)) := value
		return &lang.ArrayDef{
			Name:   name,
			Kind:   lang.Monolithic,
			Bounds: []lang.Bound{{Lo: lang.Num(1), Hi: g.boundExpr(m)}},
			Strict: true,
			Comp: g.genNode(v, 1, m, 1, &lang.Clause{
				Subs:  []lang.Expr{load},
				Value: lang.Add(lang.Name(v), lang.Num(int64(g.intn(4)))),
			}),
		}
	case 1: // gather: cons!(v) := u!(idx!(v))
		return &lang.ArrayDef{
			Name:   name,
			Kind:   lang.Monolithic,
			Bounds: []lang.Bound{{Lo: lang.Num(1), Hi: g.boundExpr(m)}},
			Strict: true,
			Comp: g.genNode(v, 1, m, 1, &lang.Clause{
				Subs:  []lang.Expr{lang.Name(v)},
				Value: &lang.Index{Array: "u", Subs: []lang.Expr{load}},
			}),
		}
	default: // histogram: cons = accumArray (+) 0 (1,m) [ idx!(v) := w ]
		return &lang.ArrayDef{
			Name:   name,
			Kind:   lang.Accumulated,
			Bounds: []lang.Bound{{Lo: lang.Num(1), Hi: g.boundExpr(m)}},
			Accum:  &lang.AccumSpec{Combine: "+", Init: lang.Num(0)},
			Strict: true,
			Comp: g.genNode(v, 1, m, 1, &lang.Clause{
				Subs:  []lang.Expr{load},
				Value: lang.Num(1 + int64(g.intn(3))),
			}),
		}
	}
}
