// Package gencomp generates random-but-well-formed array-comprehension
// programs for differential testing. The generator is seeded and
// deterministic: the same seed always yields the same program, so any
// failure found by the fuzzing oracle is reproducible from its seed
// alone.
//
// Programs are built as lang ASTs from a weighted grammar that covers
// the paper's interesting corners on purpose: affine and deliberately
// non-affine subscripts, nested generators, guards, appends, lets,
// negative and non-unit strides, empty ranges, letrec* self-reference
// (recurrences and wavefronts), accumArray with every combiner, bigupd
// chains, and — at low weight — shapes that must fail identically on
// every backend (collisions, empties, out-of-bounds reads, ⊥).
package gencomp

import (
	"fmt"
	"math/rand"

	"arraycomp/internal/analysis"
	"arraycomp/internal/lang"
)

// Program is one generated test case: the AST, its rendered source,
// and everything needed to compile and run it.
type Program struct {
	// Seed reproduces the program via Generate(Seed, cfg).
	Seed uint64
	// Prog is the generated AST (bindings are letrec*, i.e. strict).
	Prog *lang.Program
	// Source is the concrete syntax (lang.ProgramString of Prog); it
	// must re-parse to an equivalent program.
	Source string
	// Params binds every scalar parameter the program declares.
	Params map[string]int64
	// Inputs declares the bounds of the free input arrays the program
	// may read.
	Inputs map[string]analysis.ArrayBounds
}

// Config tunes the generator.
type Config struct {
	// MaxDefs bounds the number of array definitions (default 3).
	MaxDefs int
	// MaxExtent bounds each dimension's extent (default 6).
	MaxExtent int64
	// ErrorWeight is the per-definition permille chance of an
	// error-shaped definition (collision, partial cover, out-of-bounds
	// read, self-⊥). Default 80 (8%). Set 0 for clean programs only.
	ErrorWeight int
	// IdxWeight is the per-program permille chance of appending a
	// subscripted-subscript pair: an index-array definition plus a
	// consumer (gather/scatter/histogram) subscripting through it, with
	// value shapes spanning statically provable, runtime-verifiable,
	// and claim-violating index arrays. Default 0 (off); the idxprop
	// fuzz arm sets it high.
	IdxWeight int
}

func (c Config) withDefaults() Config {
	if c.MaxDefs <= 0 {
		c.MaxDefs = 3
	}
	if c.MaxExtent <= 0 {
		c.MaxExtent = 6
	}
	if c.ErrorWeight == 0 {
		c.ErrorWeight = 80
	}
	if c.ErrorWeight < 0 {
		c.ErrorWeight = 0
	}
	return c
}

// Generate builds the program for one seed.
func Generate(seed uint64, cfg Config) *Program {
	cfg = cfg.withDefaults()
	g := &gen{
		rng: rand.New(rand.NewSource(int64(seed))),
		cfg: cfg,
		env: map[string]int64{},
	}
	prog := g.program()
	return &Program{
		Seed:   seed,
		Prog:   prog,
		Source: lang.ProgramString(prog),
		Params: g.env,
		Inputs: g.inputs(),
	}
}

// arr is an array visible to later definitions.
type arr struct {
	name   string
	bounds analysis.ArrayBounds
	input  bool
}

type gen struct {
	rng    *rand.Rand
	cfg    Config
	env    map[string]int64
	arrs   []arr
	defs   []*lang.ArrayDef
	varSeq int
}

// vrange is an in-scope integer variable with its concrete range.
type vrange struct {
	name     string
	min, max int64
}

func (g *gen) intn(n int) int { return g.rng.Intn(n) }
func (g *gen) chance(permille int) bool {
	return g.rng.Intn(1000) < permille
}

// pick returns a weighted choice index.
func (g *gen) pick(weights ...int) int {
	total := 0
	for _, w := range weights {
		total += w
	}
	r := g.rng.Intn(total)
	for i, w := range weights {
		if r < w {
			return i
		}
		r -= w
	}
	return len(weights) - 1
}

func (g *gen) inputs() map[string]analysis.ArrayBounds {
	out := map[string]analysis.ArrayBounds{}
	for _, a := range g.arrs {
		if a.input {
			out[a.name] = a.bounds
		}
	}
	return out
}

// program generates the whole test case.
func (g *gen) program() *lang.Program {
	// One scalar parameter n, bound to a small extent; bounds
	// expressions reference it about half the time.
	n := 2 + g.rng.Int63n(g.cfg.MaxExtent-1)
	g.env["n"] = n

	// Two free input arrays with generous bounds: a vector and a
	// matrix. Both are always declared and filled by the harness.
	g.arrs = append(g.arrs,
		arr{name: "u", bounds: analysis.ArrayBounds{Lo: []int64{0}, Hi: []int64{n + 2}}, input: true},
		arr{name: "w", bounds: analysis.ArrayBounds{Lo: []int64{0, 0}, Hi: []int64{n + 1, n + 1}}, input: true},
	)

	nDefs := 1 + g.intn(g.cfg.MaxDefs)
	for k := 0; k < nDefs; k++ {
		name := fmt.Sprintf("%c", 'a'+k)
		def := g.arrayDef(name)
		g.defs = append(g.defs, def)
		b := g.boundsOf(def)
		g.arrs = append(g.arrs, arr{name: name, bounds: b})
	}
	if g.cfg.IdxWeight > 0 && g.chance(g.cfg.IdxWeight) {
		k := len(g.defs)
		idxName := fmt.Sprintf("%c", 'a'+k)
		consName := fmt.Sprintf("%c", 'a'+k+1)
		// Appended last so the consumer is the program result: the
		// indirect pair is always live.
		for _, def := range g.indirectDefs(idxName, consName) {
			g.defs = append(g.defs, def)
			g.arrs = append(g.arrs, arr{name: def.Name, bounds: g.boundsOf(def)})
		}
	}
	prog := &lang.Program{
		Params: []lang.Param{{Name: "n"}},
		Defs:   g.defs,
		Result: g.defs[len(g.defs)-1].Name,
	}
	return prog
}

// boundsOf evaluates a definition's concrete bounds (bigupd inherits
// its source's).
func (g *gen) boundsOf(def *lang.ArrayDef) analysis.ArrayBounds {
	if def.Kind == lang.BigUpd {
		for _, a := range g.arrs {
			if a.name == def.Source {
				return a.bounds
			}
		}
	}
	b, err := analysis.EvalBounds(def, g.env)
	if err != nil {
		panic(fmt.Sprintf("gencomp: internal: generated unevaluable bounds: %v", err))
	}
	return b
}

// boundExpr renders a concrete bound value as either a literal or an
// expression over the parameter n when the value allows it.
func (g *gen) boundExpr(v int64) lang.Expr {
	n := g.env["n"]
	if v == n && g.chance(500) {
		return lang.Name("n")
	}
	if v == n+1 && g.chance(400) {
		return lang.Add(lang.Name("n"), lang.Num(1))
	}
	if v == n-1 && g.chance(400) {
		return lang.Sub(lang.Name("n"), lang.Num(1))
	}
	return lang.Num(v)
}

// freshBounds picks a rank and concrete bounds for a new array.
func (g *gen) freshBounds() (rank int, lo, hi []int64) {
	rank = 1
	if g.chance(300) {
		rank = 2
	}
	for d := 0; d < rank; d++ {
		l := int64(g.pick(5, 4, 1)) // 0, 1, or 2
		extent := 1 + g.rng.Int63n(g.cfg.MaxExtent)
		if rank == 2 && extent > 5 {
			extent = 5 // keep 2-D sizes small
		}
		lo = append(lo, l)
		hi = append(hi, l+extent-1)
	}
	return rank, lo, hi
}

func (g *gen) langBounds(lo, hi []int64) []lang.Bound {
	var out []lang.Bound
	for d := range lo {
		out = append(out, lang.Bound{Lo: g.boundExpr(lo[d]), Hi: g.boundExpr(hi[d])})
	}
	return out
}

// arrayDef generates one definition.
func (g *gen) arrayDef(name string) *lang.ArrayDef {
	// bigupd requires an existing source; weight it once defs exist.
	bigupdW := 0
	if len(g.arrs) > 2 || g.chance(300) { // inputs alone are legal sources too
		bigupdW = 18
	}
	switch g.pick(60, 18, bigupdW) {
	case 0:
		return g.monolithic(name)
	case 1:
		return g.accumArray(name)
	default:
		return g.bigupd(name)
	}
}

// --- monolithic definitions ---

func (g *gen) monolithic(name string) *lang.ArrayDef {
	rank, lo, hi := g.freshBounds()
	def := &lang.ArrayDef{
		Name:   name,
		Kind:   lang.Monolithic,
		Bounds: g.langBounds(lo, hi),
		Strict: true,
	}
	errShape := g.chance(g.cfg.ErrorWeight)
	if rank == 2 {
		def.Comp = g.monolithic2D(name, lo, hi, errShape)
		return def
	}
	def.Comp = g.monolithic1D(name, lo[0], hi[0], errShape)
	return def
}

// monolithic1D picks one of the 1-D coverage patterns.
func (g *gen) monolithic1D(name string, lo, hi int64, errShape bool) lang.CompNode {
	if errShape {
		return g.errShape1D(name, lo, hi)
	}
	switch g.pick(22, 22, 14, 12, 10, 8, 6, 6) {
	case 0: // plain full cover, ascending
		return g.coverGen(name, lo, hi, false)
	case 1: // forward or backward recurrence with a base clause
		return g.recurrence(name, lo, hi)
	case 2: // full cover, descending generator
		return g.coverGen(name, lo, hi, true)
	case 3: // guard split: even/odd halves via mod guards
		return g.guardSplit(name, lo, hi)
	case 4: // permuted cover: i ↦ lo+hi-i
		v := g.freshVar()
		return g.genNode(v, lo, hi, 1, &lang.Clause{
			Subs:  []lang.Expr{lang.Sub(lang.Add(lang.Num(lo), lang.Num(hi)), lang.Name(v))},
			Value: g.value(2, []vrange{{v, lo, hi}}, g.readables(name)),
		})
	case 5: // strided interleave: two stride-2 generators covering all
		return g.strideSplit(name, lo, hi)
	case 6: // cover plus an empty-range appendix
		parts := []lang.CompNode{g.coverGen(name, lo, hi, false)}
		v := g.freshVar()
		parts = append(parts, g.genNode(v, 1, 0, 1, &lang.Clause{
			Subs:  []lang.Expr{lang.Name(v)},
			Value: lang.Num(99),
		}))
		return &lang.Append{Parts: parts}
	default: // non-affine safe cover: (i*i) mod e + lo over a larger range
		// may collide (quadratic residues); collisions are legitimate
		// error-agreement cases, so this pattern rides the line by
		// construction — use extent 1..2 only, where i*i mod e is
		// injective enough, or accept the occasional collision case.
		e := hi - lo + 1
		v := g.freshVar()
		sub := lang.Add(&lang.BinOp{Op: lang.OpMod, L: lang.Name(v), R: lang.Num(e)}, lang.Num(lo))
		return g.genNode(v, 0, e-1, 1, &lang.Clause{
			Subs:  []lang.Expr{sub},
			Value: g.value(2, []vrange{{v, 0, e - 1}}, g.readables(name)),
		})
	}
}

// errShape1D: deliberately broken definitions — every backend must
// agree on the failure.
func (g *gen) errShape1D(name string, lo, hi int64) lang.CompNode {
	v := g.freshVar()
	switch g.pick(30, 30, 25, 15) {
	case 0: // collision: cover plus one duplicate write
		return &lang.Append{Parts: []lang.CompNode{
			g.coverGen(name, lo, hi, false),
			&lang.Clause{Subs: []lang.Expr{lang.Num(lo)}, Value: lang.Num(7)},
		}}
	case 1: // partial cover: an element never defined
		if hi > lo {
			return g.genNode(v, lo+1, hi, 1, &lang.Clause{
				Subs:  []lang.Expr{lang.Name(v)},
				Value: g.value(2, []vrange{{v, lo + 1, hi}}, g.readables(name)),
			})
		}
		// Single-element array: fall back to a collision.
		return &lang.Append{Parts: []lang.CompNode{
			&lang.Clause{Subs: []lang.Expr{lang.Num(lo)}, Value: lang.Num(1)},
			&lang.Clause{Subs: []lang.Expr{lang.Num(lo)}, Value: lang.Num(2)},
		}}
	case 2: // out-of-bounds write
		return &lang.Append{Parts: []lang.CompNode{
			g.coverGen(name, lo, hi, false),
			&lang.Clause{Subs: []lang.Expr{lang.Num(hi + 1)}, Value: lang.Num(1)},
		}}
	default: // self-⊥: an element that depends on itself
		return g.genNode(v, lo, hi, 1, &lang.Clause{
			Subs:  []lang.Expr{lang.Name(v)},
			Value: lang.At(name, lang.Name(v)),
		})
	}
}

// coverGen is the canonical full cover [ i := V | i <- [lo..hi] ],
// optionally with a descending generator.
func (g *gen) coverGen(name string, lo, hi int64, desc bool) lang.CompNode {
	v := g.freshVar()
	cl := &lang.Clause{
		Subs:  []lang.Expr{lang.Name(v)},
		Value: g.value(2, []vrange{{v, lo, hi}}, g.readables(name)),
	}
	if desc {
		return g.genNode(v, hi, lo, -1, cl)
	}
	return g.genNode(v, lo, hi, 1, cl)
}

// recurrence builds base ++ step with a self-read of the previous (or
// next) element; direction is random, and the descending direction uses
// a negative-stride generator.
func (g *gen) recurrence(name string, lo, hi int64) lang.CompNode {
	if hi == lo {
		return g.coverGen(name, lo, hi, false)
	}
	v := g.freshVar()
	backward := g.chance(400)
	var base *lang.Clause
	var step lang.CompNode
	if backward {
		base = &lang.Clause{Subs: []lang.Expr{lang.Num(hi)}, Value: g.baseValue()}
		selfRead := lang.At(name, lang.Add(lang.Name(v), lang.Num(1)))
		step = g.genNode(v, hi-1, lo, -1, &lang.Clause{
			Subs:  []lang.Expr{lang.Name(v)},
			Value: g.combine(selfRead, g.value(1, []vrange{{v, lo, hi - 1}}, g.readables(name))),
		})
	} else {
		base = &lang.Clause{Subs: []lang.Expr{lang.Num(lo)}, Value: g.baseValue()}
		selfRead := lang.At(name, lang.Sub(lang.Name(v), lang.Num(1)))
		step = g.genNode(v, lo+1, hi, 1, &lang.Clause{
			Subs:  []lang.Expr{lang.Name(v)},
			Value: g.combine(selfRead, g.value(1, []vrange{{v, lo + 1, hi}}, g.readables(name))),
		})
	}
	return &lang.Append{Parts: []lang.CompNode{base, step}}
}

// guardSplit covers the range with two guarded clauses (even/odd).
func (g *gen) guardSplit(name string, lo, hi int64) lang.CompNode {
	v1, v2 := g.freshVar(), g.freshVar()
	evenCond := func(v string) lang.Expr {
		return &lang.BinOp{Op: lang.OpEq,
			L: &lang.BinOp{Op: lang.OpMod, L: lang.Name(v), R: lang.Num(2)}, R: lang.Num(0)}
	}
	part := func(v string, even bool) lang.CompNode {
		cond := evenCond(v)
		if !even {
			cond = &lang.UnOp{Op: lang.OpNot, X: cond}
		}
		return &lang.Generator{Var: v, First: lang.Num(lo), Last: lang.Num(hi),
			Body: &lang.Guard{Cond: cond, Body: &lang.Clause{
				Subs:  []lang.Expr{lang.Name(v)},
				Value: g.value(2, []vrange{{v, lo, hi}}, g.readables(name)),
			}}}
	}
	return &lang.Append{Parts: []lang.CompNode{part(v1, true), part(v2, false)}}
}

// strideSplit covers [lo..hi] with two interleaved stride-2 generators.
func (g *gen) strideSplit(name string, lo, hi int64) lang.CompNode {
	if hi == lo {
		return g.coverGen(name, lo, hi, false)
	}
	v1, v2 := g.freshVar(), g.freshVar()
	p1 := &lang.Generator{Var: v1, First: lang.Num(lo), Second: lang.Num(lo + 2), Last: lang.Num(hi),
		Body: &lang.Clause{Subs: []lang.Expr{lang.Name(v1)},
			Value: g.value(2, []vrange{{v1, lo, hi}}, g.readables(name))}}
	p2 := &lang.Generator{Var: v2, First: lang.Num(lo + 1), Second: lang.Num(lo + 3), Last: lang.Num(hi),
		Body: &lang.Clause{Subs: []lang.Expr{lang.Name(v2)},
			Value: g.value(2, []vrange{{v2, lo, hi}}, g.readables(name))}}
	return &lang.Append{Parts: []lang.CompNode{p1, p2}}
}

// monolithic2D: border + interior wavefront, plain nested cover, or a
// transposed cover.
func (g *gen) monolithic2D(name string, lo, hi []int64, errShape bool) lang.CompNode {
	i, j := g.freshVar(), g.freshVar()
	ri := vrange{i, lo[0], hi[0]}
	rj := vrange{j, lo[1], hi[1]}
	if errShape {
		// Interior-only cover: the border stays empty.
		if hi[0] > lo[0] && hi[1] > lo[1] {
			inner := g.genNode(j, lo[1]+1, hi[1], 1, &lang.Clause{
				Subs:  []lang.Expr{lang.Name(i), lang.Name(j)},
				Value: g.value(2, []vrange{ri, rj}, g.readables(name)),
			})
			return g.genNode(i, lo[0]+1, hi[0], 1, inner)
		}
		errShape = false
	}
	if (hi[0] > lo[0] && hi[1] > lo[1]) && g.chance(400) {
		return g.wavefront(name, lo, hi)
	}
	transpose := hi[0]-lo[0] == hi[1]-lo[1] && g.chance(250)
	subs := []lang.Expr{lang.Name(i), lang.Name(j)}
	if transpose {
		subs = []lang.Expr{
			lang.Add(lang.Sub(lang.Name(j), lang.Num(lo[1])), lang.Num(lo[0])),
			lang.Add(lang.Sub(lang.Name(i), lang.Num(lo[0])), lang.Num(lo[1])),
		}
	}
	inner := g.genNode(j, lo[1], hi[1], 1, &lang.Clause{
		Subs:  subs,
		Value: g.value(2, []vrange{ri, rj}, g.readables(name)),
	})
	return g.genNode(i, lo[0], hi[0], 1, inner)
}

// wavefront: first row and first column are bases; the interior reads
// the north and west neighbors.
func (g *gen) wavefront(name string, lo, hi []int64) lang.CompNode {
	i, j := g.freshVar(), g.freshVar()
	row := g.genNode(j, lo[1], hi[1], 1, &lang.Clause{
		Subs:  []lang.Expr{lang.Num(lo[0]), lang.Name(j)},
		Value: g.baseValue(),
	})
	col := g.genNode(i, lo[0]+1, hi[0], 1, &lang.Clause{
		Subs:  []lang.Expr{lang.Name(i), lang.Num(lo[1])},
		Value: g.baseValue(),
	})
	north := lang.At(name, lang.Sub(lang.Name(i), lang.Num(1)), lang.Name(j))
	west := lang.At(name, lang.Name(i), lang.Sub(lang.Name(j), lang.Num(1)))
	interior := g.genNode(i, lo[0]+1, hi[0], 1,
		g.genNode(j, lo[1]+1, hi[1], 1, &lang.Clause{
			Subs:  []lang.Expr{lang.Name(i), lang.Name(j)},
			Value: g.combine(north, west),
		}))
	return &lang.Append{Parts: []lang.CompNode{row, col, interior}}
}

// --- accumArray definitions ---

var combiners = []string{"+", "+", "+", "max", "min", "*", "right", "left"}

func (g *gen) accumArray(name string) *lang.ArrayDef {
	_, lo, hi := g.freshBounds()
	lo, hi = lo[:1], hi[:1] // accumulations stay rank 1
	e := hi[0] - lo[0] + 1
	comb := combiners[g.intn(len(combiners))]
	init := lang.Expr(lang.Num(0))
	if comb == "*" || comb == "min" {
		init = lang.Num(1)
	}
	def := &lang.ArrayDef{
		Name:   name,
		Kind:   lang.Accumulated,
		Bounds: g.langBounds(lo, hi),
		Accum:  &lang.AccumSpec{Combine: comb, Init: init},
		Strict: true,
	}
	v := g.freshVar()
	span := e + g.rng.Int63n(2*e+1) // scatter range, often > extent
	// Histogram-style scatter: (v mod e) + lo hits elements repeatedly.
	sub := lang.Add(&lang.BinOp{Op: lang.OpMod, L: lang.Name(v), R: lang.Num(e)}, lang.Num(lo[0]))
	val := g.accumValue(comb, v, span)
	cl := &lang.Clause{Subs: []lang.Expr{sub}, Value: val}
	var body lang.CompNode = cl
	if g.chance(250) { // guarded scatter
		body = &lang.Guard{Cond: &lang.BinOp{Op: lang.OpNe,
			L: &lang.BinOp{Op: lang.OpMod, L: lang.Name(v), R: lang.Num(3)}, R: lang.Num(0)}, Body: cl}
	}
	def.Comp = g.genNode(v, 0, span-1, 1, body)
	return def
}

// accumValue keeps combiner-specific exactness: products use powers of
// two (exactly representable over the whole overflow-free range), sums
// use small integers (exact in float64, reassociation-safe).
func (g *gen) accumValue(comb, v string, span int64) lang.Expr {
	switch comb {
	case "*":
		if g.chance(500) {
			return &lang.FloatLit{Value: 0.5}
		}
		return lang.Num(2)
	case "right", "left":
		// Order matters: make each hit distinguishable.
		return lang.Add(lang.Name(v), lang.Num(1))
	default:
		return g.value(1, []vrange{{v, 0, span - 1}}, nil)
	}
}

// --- bigupd definitions ---

func (g *gen) bigupd(name string) *lang.ArrayDef {
	src := g.arrs[g.intn(len(g.arrs))]
	def := &lang.ArrayDef{
		Name:   name,
		Kind:   lang.BigUpd,
		Source: src.name,
		Strict: true,
	}
	b := src.bounds
	if b.Rank() == 1 {
		def.Comp = g.bigupd1D(name, src)
		return def
	}
	// Rank 2: update one row from another row (the paper's row
	// operations), reading old contents.
	j := g.freshVar()
	r0 := b.Lo[0] + g.rng.Int63n(b.Hi[0]-b.Lo[0]+1)
	r1 := b.Lo[0] + g.rng.Int63n(b.Hi[0]-b.Lo[0]+1)
	read := lang.At(src.name, lang.Num(r1), lang.Name(j))
	def.Comp = g.genNode(j, b.Lo[1], b.Hi[1], 1, &lang.Clause{
		Subs:  []lang.Expr{lang.Num(r0), lang.Name(j)},
		Value: g.combine(read, g.value(1, []vrange{{j, b.Lo[1], b.Hi[1]}}, nil)),
	})
	return def
}

func (g *gen) bigupd1D(name string, src arr) lang.CompNode {
	lo, hi := src.bounds.Lo[0], src.bounds.Hi[0]
	v := g.freshVar()
	switch g.pick(40, 30, 20, 10) {
	case 0: // pointwise in-range update reading the old value
		return g.genNode(v, lo, hi, 1, &lang.Clause{
			Subs:  []lang.Expr{lang.Name(v)},
			Value: g.combine(lang.At(src.name, lang.Name(v)), g.value(1, []vrange{{v, lo, hi}}, nil)),
		})
	case 1: // shift: read the old neighbor (anti dependences; node splitting)
		if hi == lo {
			return g.genNode(v, lo, hi, 1, &lang.Clause{
				Subs: []lang.Expr{lang.Name(v)}, Value: lang.At(src.name, lang.Name(v)),
			})
		}
		return g.genNode(v, lo, hi-1, 1, &lang.Clause{
			Subs:  []lang.Expr{lang.Name(v)},
			Value: g.combine(lang.At(src.name, lang.Add(lang.Name(v), lang.Num(1))), lang.Num(1)),
		})
	case 2: // Gauss-Seidel flavor: read the *new* previous element
		if hi == lo {
			return g.genNode(v, lo, hi, 1, &lang.Clause{
				Subs: []lang.Expr{lang.Name(v)}, Value: lang.At(src.name, lang.Name(v)),
			})
		}
		return g.genNode(v, lo+1, hi, 1, &lang.Clause{
			Subs: []lang.Expr{lang.Name(v)},
			Value: g.combine(
				lang.At(name, lang.Sub(lang.Name(v), lang.Num(1))),
				lang.At(src.name, lang.Name(v))),
		})
	default: // single-element poke
		at := lo + g.rng.Int63n(hi-lo+1)
		return &lang.Clause{Subs: []lang.Expr{lang.Num(at)}, Value: g.value(1, nil, nil)}
	}
}

// --- expressions ---

var varNames = []string{"i", "j", "k", "l", "p", "q"}

func (g *gen) freshVar() string {
	// Generator variables may shadow freely across defs; uniqueness per
	// nest is guaranteed by drawing without replacement per definition
	// in practice (collisions across sibling nests are harmless and
	// legal, but same-nest duplicates are avoided by sequence).
	g.varSeq++
	return varNames[g.varSeq%len(varNames)]
}

// varSeq cycles variable names.
// (declared on gen below via struct extension)

// genNode wraps body in a generator with the given concrete range.
func (g *gen) genNode(v string, first, last, stride int64, body lang.CompNode) lang.CompNode {
	gen := &lang.Generator{Var: v, First: lang.Num(first), Last: lang.Num(last), Body: body}
	if stride != 1 {
		gen.Second = lang.Num(first + stride)
	}
	return gen
}

// combine joins two value expressions with an exactness-preserving
// operator.
func (g *gen) combine(l, r lang.Expr) lang.Expr {
	switch g.pick(45, 25, 15, 15) {
	case 0:
		return lang.Add(l, r)
	case 1:
		return lang.Sub(l, r)
	case 2:
		return &lang.Call{Fn: "max", Args: []lang.Expr{l, r}}
	default:
		return &lang.BinOp{Op: lang.OpMul, L: &lang.FloatLit{Value: 0.5}, R: lang.Add(l, r)}
	}
}

// baseValue is a small leaf constant.
func (g *gen) baseValue() lang.Expr {
	switch g.pick(50, 30, 20) {
	case 0:
		return lang.Num(int64(g.intn(5)))
	case 1:
		return &lang.FloatLit{Value: float64(g.intn(8)) / 2}
	default:
		return lang.Name("n")
	}
}

// readable is an array a value expression may read, with its bounds.
type readable struct {
	name   string
	bounds analysis.ArrayBounds
}

// readables lists every array a definition may read: inputs and all
// previously defined arrays (never the one being defined — self-reads
// are inserted only by the structured patterns, which know how to keep
// them well-founded).
func (g *gen) readables(self string) []readable {
	var out []readable
	for _, a := range g.arrs {
		if a.name != self {
			out = append(out, readable{name: a.name, bounds: a.bounds})
		}
	}
	return out
}

// value generates a value expression of bounded depth over the given
// in-scope variables and readable arrays.
func (g *gen) value(depth int, vars []vrange, reads []readable) lang.Expr {
	if depth <= 0 || g.chance(300) {
		return g.valueLeaf(vars)
	}
	switch g.pick(30, 22, 14, 10, 8, 8, 8) {
	case 0:
		return lang.Add(g.value(depth-1, vars, reads), g.value(depth-1, vars, reads))
	case 1:
		if len(reads) > 0 {
			return g.safeRead(reads[g.intn(len(reads))], vars)
		}
		return g.valueLeaf(vars)
	case 2:
		return lang.Sub(g.value(depth-1, vars, reads), g.value(depth-1, vars, reads))
	case 3:
		return &lang.BinOp{Op: lang.OpMul, L: &lang.FloatLit{Value: 0.5}, R: g.value(depth-1, vars, reads)}
	case 4:
		fn := []string{"max", "min"}[g.intn(2)]
		return &lang.Call{Fn: fn, Args: []lang.Expr{
			g.value(depth-1, vars, reads), g.value(depth-1, vars, reads)}}
	case 5:
		if len(vars) > 0 {
			v := vars[g.intn(len(vars))]
			// Three guard flavors, chosen to exercise the stencil
			// splitter's edge cases: a midpoint split (interior plus
			// boundary strips), an edge equality (1-wide boundary with a
			// maximal interior), and a whole-range-true condition (the
			// guard is constant, resolved in place — no clones at all).
			var cond lang.Expr
			switch g.pick(50, 25, 25) {
			case 0:
				cond = &lang.BinOp{Op: lang.OpLe, L: lang.Name(v.name), R: lang.Num((v.min + v.max) / 2)}
			case 1:
				cond = &lang.BinOp{Op: lang.OpEq, L: lang.Name(v.name), R: lang.Num(v.min)}
			default:
				cond = &lang.BinOp{Op: lang.OpLe, L: lang.Name(v.name), R: lang.Num(v.max)}
			}
			return &lang.Cond{C: cond,
				T: g.value(depth-1, vars, reads),
				E: g.value(depth-1, vars, reads)}
		}
		return g.valueLeaf(vars)
	default:
		// let-bound common subexpression
		rhs := g.value(depth-1, vars, reads)
		body := lang.Add(lang.Name("t"), g.valueLeaf(vars))
		return &lang.Let{Binds: []lang.Binding{{Name: "t", Rhs: rhs}}, Body: body}
	}
}

func (g *gen) valueLeaf(vars []vrange) lang.Expr {
	switch g.pick(35, 25, 20, 20) {
	case 0:
		return lang.Num(int64(g.intn(5)))
	case 1:
		if len(vars) > 0 {
			return lang.Name(vars[g.intn(len(vars))].name)
		}
		return lang.Num(int64(g.intn(5)))
	case 2:
		return &lang.FloatLit{Value: float64(g.intn(16)) / 4}
	default:
		return lang.Name("n")
	}
}

// safeRead builds an in-bounds read of the array: per dimension either
// a clamped affine map of a variable, a mod-clamped map (non-affine on
// purpose), or an in-range constant.
func (g *gen) safeRead(r readable, vars []vrange) lang.Expr {
	subs := make([]lang.Expr, r.bounds.Rank())
	for d := range subs {
		lo, hi := r.bounds.Lo[d], r.bounds.Hi[d]
		e := hi - lo + 1
		var candidates []vrange
		for _, v := range vars {
			if v.min >= 0 {
				candidates = append(candidates, v)
			}
		}
		if len(candidates) == 0 || g.chance(250) {
			subs[d] = lang.Num(lo + g.rng.Int63n(e))
			continue
		}
		v := candidates[g.intn(len(candidates))]
		if v.max-v.min <= hi-lo && g.chance(600) {
			// affine shift: v - v.min + lo, provably in bounds
			subs[d] = g.shiftExpr(v, lo)
		} else {
			// non-affine clamp: (v mod e) + lo, in bounds for v ≥ 0
			subs[d] = lang.Add(&lang.BinOp{Op: lang.OpMod, L: lang.Name(v.name), R: lang.Num(e)}, lang.Num(lo))
		}
	}
	return &lang.Index{Array: r.name, Subs: subs}
}

// shiftExpr renders v - v.min + lo without redundant zero terms.
func (g *gen) shiftExpr(v vrange, lo int64) lang.Expr {
	delta := lo - v.min
	switch {
	case delta == 0:
		return lang.Name(v.name)
	case delta > 0:
		return lang.Add(lang.Name(v.name), lang.Num(delta))
	default:
		return lang.Sub(lang.Name(v.name), lang.Num(-delta))
	}
}
