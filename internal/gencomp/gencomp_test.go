package gencomp

import (
	"strings"
	"testing"

	"arraycomp/internal/core"
	"arraycomp/internal/lang"
	"arraycomp/internal/parser"
)

func TestDeterministic(t *testing.T) {
	for seed := uint64(0); seed < 50; seed++ {
		a := Generate(seed, Config{})
		b := Generate(seed, Config{})
		if a.Source != b.Source {
			t.Fatalf("seed %d: two generations differ:\n%s\n----\n%s", seed, a.Source, b.Source)
		}
		if a.Params["n"] != b.Params["n"] {
			t.Fatalf("seed %d: params differ", seed)
		}
	}
}

// TestRoundTrip checks that every generated program's source re-parses
// to a program that prints identically: the generator only emits
// concrete syntax the parser accepts, which is what lets the oracle
// shrink by re-parsing.
func TestRoundTrip(t *testing.T) {
	n := 300
	if testing.Short() {
		n = 120
	}
	for seed := uint64(0); seed < uint64(n); seed++ {
		p := Generate(seed, Config{})
		reparsed, err := parser.ParseProgram(p.Source)
		if err != nil {
			t.Fatalf("seed %d: generated source does not parse: %v\n%s", seed, err, p.Source)
		}
		again := lang.ProgramString(reparsed)
		if again != p.Source {
			t.Errorf("seed %d: print/parse/print not a fixpoint:\n%s\n----\n%s", seed, p.Source, again)
		}
	}
}

// TestCompileSmoke compiles a batch of generated programs and checks
// the corpus has useful variety: most programs compile, some schedule
// thunkless, some need thunks, and all three definition kinds appear.
func TestCompileSmoke(t *testing.T) {
	n := 200
	if testing.Short() {
		n = 100
	}
	var compiled, failed, thunked, planned int
	kinds := map[lang.DefKind]int{}
	for seed := uint64(0); seed < uint64(n); seed++ {
		p := Generate(seed, Config{})
		for _, def := range p.Prog.Defs {
			kinds[def.Kind]++
		}
		prog, err := core.CompileProgram(p.Prog, p.Params, core.Options{InputBounds: p.Inputs})
		if err != nil {
			failed++
			continue
		}
		compiled++
		for _, d := range prog.Defs {
			if d.Plan != nil {
				planned++
			} else {
				thunked++
			}
		}
	}
	if compiled < n/2 {
		t.Errorf("only %d/%d generated programs compile", compiled, n)
	}
	if planned == 0 || thunked == 0 {
		t.Errorf("corpus lacks scheduling variety: planned=%d thunked=%d", planned, thunked)
	}
	for _, k := range []lang.DefKind{lang.Monolithic, lang.Accumulated, lang.BigUpd} {
		if kinds[k] == 0 {
			t.Errorf("corpus never generated kind %v", k)
		}
	}
	t.Logf("compiled=%d failed=%d planned-defs=%d thunked-defs=%d kinds=%v",
		compiled, failed, planned, thunked, kinds)
}

// TestErrorWeightZero checks the clean-program knob: with ErrorWeight
// disabled the corpus should compile at a much higher rate.
func TestErrorWeightZero(t *testing.T) {
	var failed int
	const n = 100
	for seed := uint64(0); seed < n; seed++ {
		p := Generate(seed, Config{ErrorWeight: -1})
		if strings.TrimSpace(p.Source) == "" {
			t.Fatalf("seed %d: empty source", seed)
		}
		if _, err := core.CompileProgram(p.Prog, p.Params, core.Options{InputBounds: p.Inputs}); err != nil {
			failed++
		}
	}
	if failed > n/4 {
		t.Errorf("clean corpus: %d/%d fail to compile", failed, n)
	}
}
