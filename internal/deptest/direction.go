package deptest

import (
	"fmt"
	"strings"
)

// Direction is a per-loop constraint on the relative positions of the
// source instance x and the sink instance y of a potential dependence.
// The paper writes these as the components of a direction vector, e.g.
// (=, <, >, *).
type Direction uint8

const (
	// DirAny places no constraint on x vs y (written *).
	DirAny Direction = iota
	// DirLess constrains x < y: the source instance is "earlier" in the
	// loop's index range than the sink instance.
	DirLess
	// DirEqual constrains x = y: source and sink occur in the same loop
	// instance.
	DirEqual
	// DirGreater constrains x > y: the source instance is "later" than
	// the sink instance.
	DirGreater
)

// String renders the direction with the paper's glyphs.
func (d Direction) String() string {
	switch d {
	case DirAny:
		return "*"
	case DirLess:
		return "<"
	case DirEqual:
		return "="
	case DirGreater:
		return ">"
	}
	return fmt.Sprintf("Direction(%d)", uint8(d))
}

// Refinements returns the strict refinements of d. DirAny refines to
// {<, =, >}; the specific directions have no further refinement.
func (d Direction) Refinements() []Direction {
	if d == DirAny {
		return []Direction{DirLess, DirEqual, DirGreater}
	}
	return nil
}

// Admits reports whether a concrete relation between instances x and y
// satisfies the constraint d.
func (d Direction) Admits(x, y int64) bool {
	switch d {
	case DirAny:
		return true
	case DirLess:
		return x < y
	case DirEqual:
		return x == y
	case DirGreater:
		return x > y
	}
	return false
}

// Reverse returns the direction seen from the opposite endpoint: if the
// source-to-sink constraint is x < y, then sink-to-source it is y > x.
// DirAny and DirEqual are self-reverse.
func (d Direction) Reverse() Direction {
	switch d {
	case DirLess:
		return DirGreater
	case DirGreater:
		return DirLess
	}
	return d
}

// Vector is a direction vector: one Direction per shared loop,
// outermost first.
type Vector []Direction

// AnyVector returns the unconstrained vector (*, *, ..., *) of length d.
func AnyVector(d int) Vector {
	v := make(Vector, d)
	return v // zero value of Direction is DirAny
}

// EqualVector returns (=, =, ..., =) of length d.
func EqualVector(d int) Vector {
	v := make(Vector, d)
	for i := range v {
		v[i] = DirEqual
	}
	return v
}

// String renders the vector as the paper writes it, e.g. "(=,<,*)".
// The empty vector renders as "()", the label the paper uses for
// dependences whose endpoints share no loop.
func (v Vector) String() string {
	parts := make([]string, len(v))
	for i, d := range v {
		parts[i] = d.String()
	}
	return "(" + strings.Join(parts, ",") + ")"
}

// ParseVector parses the textual form produced by String, e.g. "(=,<)".
func ParseVector(s string) (Vector, error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "(") || !strings.HasSuffix(s, ")") {
		return nil, fmt.Errorf("deptest: direction vector %q must be parenthesized", s)
	}
	inner := strings.TrimSpace(s[1 : len(s)-1])
	if inner == "" {
		return Vector{}, nil
	}
	parts := strings.Split(inner, ",")
	v := make(Vector, len(parts))
	for i, p := range parts {
		switch strings.TrimSpace(p) {
		case "*":
			v[i] = DirAny
		case "<":
			v[i] = DirLess
		case "=":
			v[i] = DirEqual
		case ">":
			v[i] = DirGreater
		default:
			return nil, fmt.Errorf("deptest: bad direction %q in vector %q", p, s)
		}
	}
	return v, nil
}

// Clone returns an independent copy of v.
func (v Vector) Clone() Vector {
	c := make(Vector, len(v))
	copy(c, v)
	return c
}

// Reverse returns the vector as seen from the opposite endpoint
// (every component reversed).
func (v Vector) Reverse() Vector {
	c := make(Vector, len(v))
	for i, d := range v {
		c[i] = d.Reverse()
	}
	return c
}

// IsFullyRefined reports whether no component is DirAny.
func (v Vector) IsFullyRefined() bool {
	for _, d := range v {
		if d == DirAny {
			return false
		}
	}
	return true
}

// Admits reports whether concrete source instances xs and sink
// instances ys satisfy every component constraint.
func (v Vector) Admits(xs, ys []int64) bool {
	for i, d := range v {
		if !d.Admits(xs[i], ys[i]) {
			return false
		}
	}
	return true
}

// LeadingDirection returns the first (outermost) component that is not
// DirEqual, or DirEqual if all components are "=" or the vector is
// empty. This identifies the loop level that carries the dependence:
// a vector (=,<,…) is loop-independent at the outer level and carried
// at the second level.
func (v Vector) LeadingDirection() Direction {
	for _, d := range v {
		if d != DirEqual {
			return d
		}
	}
	return DirEqual
}

// CarriedLevel returns the 0-based loop level carrying the dependence
// (the first non-"=" component), or −1 for a loop-independent
// dependence (all "=" or empty). Components that are DirAny count as
// carrying, since they admit non-equal instances.
func (v Vector) CarriedLevel() int {
	for i, d := range v {
		if d != DirEqual {
			return i
		}
	}
	return -1
}

// Equal reports componentwise equality.
func (v Vector) Equal(o Vector) bool {
	if len(v) != len(o) {
		return false
	}
	for i := range v {
		if v[i] != o[i] {
			return false
		}
	}
	return true
}

// Plausible reports whether the vector could label a dependence in a
// sequential elementwise reading at all; it is used to discard the
// self-dependence vector (=,…,=) between a reference pair from the
// same clause when source and sink are the same access. All other
// vectors are plausible.
func (v Vector) SelfEqual() bool {
	for _, d := range v {
		if d != DirEqual {
			return false
		}
	}
	return true
}
