package deptest

// The Banerjee inequality test (the paper's second inexact test,
// derived from Theorem 2, the bounded-rational-solution test).
//
// Write h(x, y) = f(x) − g(y) = (a0 − b0) + Σ (a_k·x_k − b_k·y_k).
// Bound each loop-k term according to the direction constraint placed
// on that loop, sum the per-term bounds, and declare a dependence
// impossible when the resulting interval [min_R h, max_R h] does not
// bracket zero, i.e. when the dependence equation h = 0 has no rational
// solution in R.
//
// Two bound computations are provided:
//
//   - TermBoundsClassical: the closed-form positive/negative-part
//     formulas of Banerjee's thesis as presented (for functional
//     arrays) in the paper's section 6. For the < and > classes these
//     relax the triangular region to a rectangle, so they may be
//     slightly wider than tight.
//
//   - TermBoundsExact: exact per-term bounds obtained by evaluating the
//     bilinear-free (linear) term at the vertices of the constrained
//     region, which is a lattice polytope with integral vertices.
//
// Both are valid necessary tests; the exact bounds dominate (are
// contained in) the classical ones, a relationship checked by the
// property tests.

// Interval is an inclusive integer interval [Lo, Hi]. An endpoint at
// a saturation bound (Lo ≤ SatMin or Hi ≥ SatMax) means the true
// endpoint overflowed and is treated as unbounded in that direction:
// once saturation occurs the interval can only widen, never flip, so
// the Banerjee refutation stays merely conservative instead of
// unsound.
type Interval struct {
	Lo, Hi int64
}

// WholeInterval is the fully saturated interval: both endpoints
// unknown, so every value is (conservatively) contained.
var WholeInterval = Interval{SatMin, SatMax}

// Contains reports whether t lies in the interval, treating saturated
// endpoints as ±∞.
func (iv Interval) Contains(t int64) bool {
	lowOK := iv.Lo <= t || iv.Lo <= SatMin
	highOK := t <= iv.Hi || iv.Hi >= SatMax
	return lowOK && highOK
}

// Add sums two intervals elementwise (Minkowski sum), saturating.
// Saturated endpoints are sticky: ±∞ plus anything stays ±∞, so a
// later finite term cannot "wash out" an earlier overflow and shrink
// the interval below its true extent.
func (iv Interval) Add(o Interval) Interval {
	var s SatOps
	lo := s.Add(iv.Lo, o.Lo)
	if iv.Lo <= SatMin || o.Lo <= SatMin {
		lo = SatMin
	}
	hi := s.Add(iv.Hi, o.Hi)
	if iv.Hi >= SatMax || o.Hi >= SatMax {
		hi = SatMax
	}
	return Interval{lo, hi}
}

// TermBoundsClassical bounds a·x − b·y for x, y ∈ [1..m] under
// direction constraint d using the closed-form positive/negative-part
// formulas. m must be ≥ 1, and ≥ 2 for the strict directions (callers
// handle the empty-region case separately). If the bound arithmetic
// leaves the saturation range the whole line is returned — an
// overflowed bound carries no refutation power.
func TermBoundsClassical(a, b, m int64, d Direction) Interval {
	var s SatOps
	var iv Interval
	switch d {
	case DirAny:
		// Paper's lemma for k ∈ Q*:
		//   (a−b) − (a⁻+b⁺)(M−1) ≤ a·x − b·y ≤ (a−b) + (a⁺+b⁻)(M−1)
		iv = Interval{
			Lo: s.Sub(s.Sub(a, b), s.Mul(s.Add(NegPart(a), PosPart(b)), m-1)),
			Hi: s.Add(s.Sub(a, b), s.Mul(s.Add(PosPart(a), NegPart(b)), m-1)),
		}
	case DirEqual:
		// x = y: term is (a−b)·x over x ∈ [1..M].
		t := s.Sub(a, b)
		iv = Interval{
			Lo: s.Sub(t, s.Mul(NegPart(t), m-1)),
			Hi: s.Add(t, s.Mul(PosPart(t), m-1)),
		}
	case DirLess:
		// x < y: substitute y = x + δ with x ∈ [1..M−1], δ ∈ [1..M−1]
		// (rectangular relaxation of the triangle x + δ ≤ M):
		//   a·x − b·y = (a−b)·x − b·δ.
		t := s.Sub(a, b)
		iv = Interval{
			Lo: s.Sub(s.Sub(s.Sub(t, s.Mul(NegPart(t), m-2)), b), s.Mul(PosPart(b), m-2)),
			Hi: s.Add(s.Sub(s.Add(t, s.Mul(PosPart(t), m-2)), b), s.Mul(NegPart(b), m-2)),
		}
	case DirGreater:
		// x > y: substitute x = y + δ with y ∈ [1..M−1], δ ∈ [1..M−1]:
		//   a·x − b·y = (a−b)·y + a·δ.
		t := s.Sub(a, b)
		iv = Interval{
			Lo: s.Sub(s.Add(s.Sub(t, s.Mul(NegPart(t), m-2)), a), s.Mul(NegPart(a), m-2)),
			Hi: s.Add(s.Add(s.Add(t, s.Mul(PosPart(t), m-2)), a), s.Mul(PosPart(a), m-2)),
		}
	default:
		panic("deptest: unknown direction")
	}
	if s.Overflowed {
		return WholeInterval
	}
	return iv
}

// TermBoundsExact bounds a·x − b·y for x, y ∈ [1..m] under direction
// constraint d exactly, by evaluating the linear form at the vertices
// of the constrained region. m must be ≥ 1, and ≥ 2 for the strict
// directions.
// The vertex evaluations saturate; any overflow yields the whole
// line, since a wrapped vertex value could otherwise shrink (or flip)
// the interval and refute a real dependence.
func TermBoundsExact(a, b, m int64, d Direction) Interval {
	var s SatOps
	eval := func(x, y int64) int64 { return s.Sub(s.Mul(a, x), s.Mul(b, y)) }
	var iv Interval
	switch d {
	case DirAny:
		// Rectangle [1..m]×[1..m]; vertices (1,1),(1,m),(m,1),(m,m).
		vals := []int64{eval(1, 1), eval(1, m), eval(m, 1), eval(m, m)}
		iv = Interval{minAll(vals...), maxAll(vals...)}
	case DirEqual:
		// Segment x=y ∈ [1..m]; vertices at x=1 and x=m.
		vals := []int64{eval(1, 1), eval(m, m)}
		iv = Interval{minAll(vals...), maxAll(vals...)}
	case DirLess:
		// Triangle 1 ≤ x, x+1 ≤ y ≤ m; vertices (1,2),(1,m),(m−1,m).
		vals := []int64{eval(1, 2), eval(1, m), eval(m-1, m)}
		iv = Interval{minAll(vals...), maxAll(vals...)}
	case DirGreater:
		// Triangle 1 ≤ y, y+1 ≤ x ≤ m; vertices (2,1),(m,1),(m,m−1).
		vals := []int64{eval(2, 1), eval(m, 1), eval(m, m-1)}
		iv = Interval{minAll(vals...), maxAll(vals...)}
	default:
		panic("deptest: unknown direction")
	}
	if s.Overflowed {
		return WholeInterval
	}
	return iv
}

// TermBoundsUnshared bounds the contribution of a loop that surrounds
// only one of the two references (the paper's unshared-loop lemma). If
// the source side is surrounded (coefficient a, bound m on x) the term
// is a·x; if the sink side, −b·y. Callers encode "not surrounded" as a
// zero coefficient, so this is simply the shared DirAny bound — kept as
// a named function to mirror the paper's lemma and for direct testing.
func TermBoundsUnshared(a, b, m int64) Interval {
	return TermBoundsExact(a, b, m, DirAny)
}

// BanerjeeBounds computes [min_R h, max_R h] − delta offset excluded —
// i.e. the achievable range of Σ a_k·x_k − Σ b_k·y_k under direction
// vector v, using the classical formulas for shared loops and the
// unshared-loop lemma elsewhere. It does not include the constant
// a0 − b0.
func BanerjeeBounds(p Problem, v Vector, exact bool) (Interval, error) {
	if err := p.Validate(); err != nil {
		return Interval{}, err
	}
	if err := p.checkVector(v); err != nil {
		return Interval{}, err
	}
	if p.EmptyDomain() {
		// No iteration points at all: there is no achievable value to
		// bound. Callers (BanerjeeTest, ExactTest) report independence
		// before asking for bounds.
		return Interval{}, errEmptyDomain
	}
	var total Interval
	for k := range p.A {
		d := v[k]
		if !p.Shared[k] {
			d = DirAny // unshared loops carry no direction constraint
		}
		var tb Interval
		if exact {
			tb = TermBoundsExact(p.A[k], p.B[k], p.Bound[k], d)
		} else {
			tb = TermBoundsClassical(p.A[k], p.B[k], p.Bound[k], d)
		}
		total = total.Add(tb)
	}
	return total, nil
}

// BanerjeeTest runs the Banerjee inequality test under direction vector
// v: a dependence is possible only if the bounds on h = f − g bracket
// zero, i.e. the bounds on Σ a_k x_k − b_k y_k bracket b0 − a0. When
// exact is true, the per-term vertex bounds are used instead of the
// classical formulas (a strictly sharper, still merely necessary,
// test).
func BanerjeeTest(p Problem, v Vector, exact bool) (possible bool, err error) {
	if err := p.Validate(); err != nil {
		return false, err
	}
	if err := p.checkVector(v); err != nil {
		return false, err
	}
	if p.EmptyDomain() || p.regionEmpty(v) {
		return false, nil
	}
	iv, err := BanerjeeBounds(p, v, exact)
	if err != nil {
		return false, err
	}
	return iv.Contains(p.Delta()), nil
}
