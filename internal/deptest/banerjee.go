package deptest

// The Banerjee inequality test (the paper's second inexact test,
// derived from Theorem 2, the bounded-rational-solution test).
//
// Write h(x, y) = f(x) − g(y) = (a0 − b0) + Σ (a_k·x_k − b_k·y_k).
// Bound each loop-k term according to the direction constraint placed
// on that loop, sum the per-term bounds, and declare a dependence
// impossible when the resulting interval [min_R h, max_R h] does not
// bracket zero, i.e. when the dependence equation h = 0 has no rational
// solution in R.
//
// Two bound computations are provided:
//
//   - TermBoundsClassical: the closed-form positive/negative-part
//     formulas of Banerjee's thesis as presented (for functional
//     arrays) in the paper's section 6. For the < and > classes these
//     relax the triangular region to a rectangle, so they may be
//     slightly wider than tight.
//
//   - TermBoundsExact: exact per-term bounds obtained by evaluating the
//     bilinear-free (linear) term at the vertices of the constrained
//     region, which is a lattice polytope with integral vertices.
//
// Both are valid necessary tests; the exact bounds dominate (are
// contained in) the classical ones, a relationship checked by the
// property tests.

// Interval is an inclusive integer interval [Lo, Hi].
type Interval struct {
	Lo, Hi int64
}

// Contains reports whether t lies in the interval.
func (iv Interval) Contains(t int64) bool { return iv.Lo <= t && t <= iv.Hi }

// Add sums two intervals elementwise (Minkowski sum).
func (iv Interval) Add(o Interval) Interval {
	return Interval{iv.Lo + o.Lo, iv.Hi + o.Hi}
}

// TermBoundsClassical bounds a·x − b·y for x, y ∈ [1..m] under
// direction constraint d using the closed-form positive/negative-part
// formulas. m must be ≥ 1, and ≥ 2 for the strict directions (callers
// handle the empty-region case separately).
func TermBoundsClassical(a, b, m int64, d Direction) Interval {
	switch d {
	case DirAny:
		// Paper's lemma for k ∈ Q*:
		//   (a−b) − (a⁻+b⁺)(M−1) ≤ a·x − b·y ≤ (a−b) + (a⁺+b⁻)(M−1)
		return Interval{
			Lo: (a - b) - (NegPart(a)+PosPart(b))*(m-1),
			Hi: (a - b) + (PosPart(a)+NegPart(b))*(m-1),
		}
	case DirEqual:
		// x = y: term is (a−b)·x over x ∈ [1..M].
		t := a - b
		return Interval{
			Lo: t - NegPart(t)*(m-1),
			Hi: t + PosPart(t)*(m-1),
		}
	case DirLess:
		// x < y: substitute y = x + δ with x ∈ [1..M−1], δ ∈ [1..M−1]
		// (rectangular relaxation of the triangle x + δ ≤ M):
		//   a·x − b·y = (a−b)·x − b·δ.
		t := a - b
		return Interval{
			Lo: t - NegPart(t)*(m-2) - b - PosPart(b)*(m-2),
			Hi: t + PosPart(t)*(m-2) - b + NegPart(b)*(m-2),
		}
	case DirGreater:
		// x > y: substitute x = y + δ with y ∈ [1..M−1], δ ∈ [1..M−1]:
		//   a·x − b·y = (a−b)·y + a·δ.
		t := a - b
		return Interval{
			Lo: t - NegPart(t)*(m-2) + a - NegPart(a)*(m-2),
			Hi: t + PosPart(t)*(m-2) + a + PosPart(a)*(m-2),
		}
	}
	panic("deptest: unknown direction")
}

// TermBoundsExact bounds a·x − b·y for x, y ∈ [1..m] under direction
// constraint d exactly, by evaluating the linear form at the vertices
// of the constrained region. m must be ≥ 1, and ≥ 2 for the strict
// directions.
func TermBoundsExact(a, b, m int64, d Direction) Interval {
	eval := func(x, y int64) int64 { return a*x - b*y }
	switch d {
	case DirAny:
		// Rectangle [1..m]×[1..m]; vertices (1,1),(1,m),(m,1),(m,m).
		vals := []int64{eval(1, 1), eval(1, m), eval(m, 1), eval(m, m)}
		return Interval{minAll(vals...), maxAll(vals...)}
	case DirEqual:
		// Segment x=y ∈ [1..m]; vertices at x=1 and x=m.
		vals := []int64{eval(1, 1), eval(m, m)}
		return Interval{minAll(vals...), maxAll(vals...)}
	case DirLess:
		// Triangle 1 ≤ x, x+1 ≤ y ≤ m; vertices (1,2),(1,m),(m−1,m).
		vals := []int64{eval(1, 2), eval(1, m), eval(m-1, m)}
		return Interval{minAll(vals...), maxAll(vals...)}
	case DirGreater:
		// Triangle 1 ≤ y, y+1 ≤ x ≤ m; vertices (2,1),(m,1),(m,m−1).
		vals := []int64{eval(2, 1), eval(m, 1), eval(m, m-1)}
		return Interval{minAll(vals...), maxAll(vals...)}
	}
	panic("deptest: unknown direction")
}

// TermBoundsUnshared bounds the contribution of a loop that surrounds
// only one of the two references (the paper's unshared-loop lemma). If
// the source side is surrounded (coefficient a, bound m on x) the term
// is a·x; if the sink side, −b·y. Callers encode "not surrounded" as a
// zero coefficient, so this is simply the shared DirAny bound — kept as
// a named function to mirror the paper's lemma and for direct testing.
func TermBoundsUnshared(a, b, m int64) Interval {
	return TermBoundsExact(a, b, m, DirAny)
}

// BanerjeeBounds computes [min_R h, max_R h] − delta offset excluded —
// i.e. the achievable range of Σ a_k·x_k − Σ b_k·y_k under direction
// vector v, using the classical formulas for shared loops and the
// unshared-loop lemma elsewhere. It does not include the constant
// a0 − b0.
func BanerjeeBounds(p Problem, v Vector, exact bool) (Interval, error) {
	if err := p.Validate(); err != nil {
		return Interval{}, err
	}
	if err := p.checkVector(v); err != nil {
		return Interval{}, err
	}
	var total Interval
	for k := range p.A {
		d := v[k]
		if !p.Shared[k] {
			d = DirAny // unshared loops carry no direction constraint
		}
		var tb Interval
		if exact {
			tb = TermBoundsExact(p.A[k], p.B[k], p.Bound[k], d)
		} else {
			tb = TermBoundsClassical(p.A[k], p.B[k], p.Bound[k], d)
		}
		total = total.Add(tb)
	}
	return total, nil
}

// BanerjeeTest runs the Banerjee inequality test under direction vector
// v: a dependence is possible only if the bounds on h = f − g bracket
// zero, i.e. the bounds on Σ a_k x_k − b_k y_k bracket b0 − a0. When
// exact is true, the per-term vertex bounds are used instead of the
// classical formulas (a strictly sharper, still merely necessary,
// test).
func BanerjeeTest(p Problem, v Vector, exact bool) (possible bool, err error) {
	if err := p.Validate(); err != nil {
		return false, err
	}
	if err := p.checkVector(v); err != nil {
		return false, err
	}
	if p.regionEmpty(v) {
		return false, nil
	}
	iv, err := BanerjeeBounds(p, v, exact)
	if err != nil {
		return false, err
	}
	return iv.Contains(p.Delta()), nil
}
