package deptest

// The exact bounded-integer-solution test: decide whether the
// dependence equation Σ a_k·x_k − Σ b_k·y_k = b0 − a0 has an integer
// solution with 1 ≤ x_k, y_k ≤ M_k satisfying the direction vector.
// This is the paper's "if and only if" definition of dependence. The
// cost is exponential in the nesting depth, so the solver takes a node
// budget: for one loop a closed form (linear diophantine + interval
// intersection) answers in O(1); deeper nests branch loop by loop and
// solve the innermost loop in closed form, pruning with exact interval
// arithmetic on the remaining terms.

// Result is a three-valued test outcome. Inexact tests only ever say
// Impossible or Possible; the exact test can say Definite ("a
// dependence certainly exists"), Impossible, or Unknown (budget
// exhausted).
type Result uint8

const (
	// Impossible: no dependence can exist under the given constraints.
	Impossible Result = iota
	// Possible: a dependence may exist (inexact test satisfied).
	Possible
	// Definite: a dependence certainly exists (exact test found a
	// solution).
	Definite
	// Unknown: the exact solver exhausted its budget before deciding.
	Unknown
)

// String renders the result.
func (r Result) String() string {
	switch r {
	case Impossible:
		return "impossible"
	case Possible:
		return "possible"
	case Definite:
		return "definite"
	case Unknown:
		return "unknown"
	}
	return "Result(?)"
}

// CanDepend reports whether the result leaves a dependence on the
// table (everything but Impossible). Pessimistic analyses must treat
// Possible and Unknown as dependences.
func (r Result) CanDepend() bool { return r != Impossible }

// DefaultExactBudget is the default node budget for ExactTest. It is
// ample for the 1–2 level nests the paper recommends exact testing on.
const DefaultExactBudget = 1 << 20

// tRange is a possibly-empty integer interval used for the free
// parameter of a diophantine solution family.
type tRange struct {
	lo, hi int64
	empty  bool
}

// The solver's working range is exactly the saturation range of the
// shared intmath helpers.
func fullRange() tRange { return tRange{lo: SatMin, hi: SatMax} }

func (r tRange) isEmpty() bool { return r.empty || r.lo > r.hi }

// constrain intersects r with the solutions of coeff·t ⋈ rhs where ⋈ is
// ≤ (le=true) or ≥ (le=false).
func (r tRange) constrainLE(coeff, rhs int64) tRange {
	if r.isEmpty() {
		return r
	}
	switch {
	case coeff == 0:
		if 0 <= rhs {
			return r
		}
		return tRange{empty: true}
	case coeff > 0:
		r.hi = minI64(r.hi, FloorDiv(rhs, coeff))
	default:
		r.lo = maxI64(r.lo, CeilDiv(rhs, coeff))
	}
	return r
}

func (r tRange) constrainGE(coeff, rhs int64) tRange {
	// coeff·t ≥ rhs  ⇔  −coeff·t ≤ −rhs
	return r.constrainLE(-coeff, -rhs)
}

// solveSingleLoop decides exactly whether a·x − b·y = c has an integer
// solution with x, y ∈ [1..m] under direction d. O(1). The second
// result reports whether the arithmetic stayed exact; when false the
// answer is unreliable and the caller must treat the branch as
// undecided.
func solveSingleLoop(a, b, c, m int64, d Direction) (found, ok bool) {
	var s SatOps
	if (d == DirLess || d == DirGreater) && m < 2 {
		return false, true
	}
	if d == DirEqual {
		// (a−b)·x = c, x ∈ [1..m].
		t := s.Sub(a, b)
		if s.Overflowed {
			return false, false
		}
		if t == 0 {
			return c == 0, true
		}
		if c%t != 0 {
			return false, true
		}
		x := c / t
		return 1 <= x && x <= m, true
	}
	g, u, v := ExtGCD(a, s.Neg(b)) // a·u + (−b)·v = g
	if g == 0 {
		// a = b = 0: equation is 0 = c for any x, y in the region.
		return c == 0, !s.Overflowed
	}
	if c%g != 0 {
		return false, !s.Overflowed
	}
	// Particular solution: x0 = u·(c/g), y0 = v·(c/g).
	// General: x = x0 + (b/g)·t, y = y0 + (a/g)·t   (since a·(b/g) − b·(a/g) = 0).
	q := c / g
	x0, y0 := s.Mul(u, q), s.Mul(v, q)
	sx, sy := b/g, a/g
	r := fullRange()
	// 1 ≤ x0 + sx·t ≤ m
	r = r.constrainGE(sx, s.Sub(1, x0))
	r = r.constrainLE(sx, s.Sub(m, x0))
	// 1 ≤ y0 + sy·t ≤ m
	r = r.constrainGE(sy, s.Sub(1, y0))
	r = r.constrainLE(sy, s.Sub(m, y0))
	switch d {
	case DirLess: // x ≤ y − 1: (x0−y0) + (sx−sy)·t ≤ −1
		r = r.constrainLE(s.Sub(sx, sy), s.Sub(-1, s.Sub(x0, y0)))
	case DirGreater: // x ≥ y + 1
		r = r.constrainGE(s.Sub(sx, sy), s.Sub(1, s.Sub(x0, y0)))
	}
	if s.Overflowed {
		return false, false
	}
	return !r.isEmpty(), true
}

// exactSolver carries the recursion state for ExactTest.
type exactSolver struct {
	p        Problem
	v        Vector
	budget   int
	suffix   []Interval // suffix[k] = exact achievable range of terms k.. (inclusive)
	timeout  bool
	overflow bool // some branch was skipped because its arithmetic saturated
}

func (s *exactSolver) spend() bool {
	s.budget--
	if s.budget < 0 {
		s.timeout = true
		return false
	}
	return true
}

// solve decides whether terms k.. can make exactly `target`.
func (s *exactSolver) solve(k int, target int64) bool {
	if s.timeout {
		return false
	}
	d := s.p.NumLoops()
	if k == d {
		return target == 0
	}
	if !s.suffix[k].Contains(target) {
		return false
	}
	a, b, m := s.p.A[k], s.p.B[k], s.p.Bound[k]
	dir := s.v[k]
	if !s.p.Shared[k] {
		dir = DirAny
	}
	if k == d-1 {
		if !s.spend() {
			return false
		}
		found, ok := solveSingleLoop(a, b, target, m, dir)
		if !ok {
			s.overflow = true
			return false
		}
		return found
	}
	rest := s.suffix[k+1]
	// step(term, exact) prunes on the suffix interval and recurses.
	// Branches whose term or remaining-target arithmetic saturated are
	// skipped with the overflow flag set: a "found" answer therefore
	// only ever rests on exact arithmetic, while "not found" decays to
	// Unknown when anything was skipped.
	step := func(term int64, exact bool) bool {
		var so SatOps
		need := so.Sub(target, term)
		if !exact || so.Overflowed {
			s.overflow = true
			return false
		}
		return rest.Contains(need) && s.solve(k+1, need)
	}
	switch dir {
	case DirEqual:
		for z := int64(1); z <= m; z++ {
			if !s.spend() {
				return false
			}
			var so SatOps
			term := so.Mul(so.Sub(a, b), z)
			if step(term, !so.Overflowed) {
				return true
			}
		}
	case DirAny:
		for x := int64(1); x <= m; x++ {
			for y := int64(1); y <= m; y++ {
				if !s.spend() {
					return false
				}
				var so SatOps
				term := so.Sub(so.Mul(a, x), so.Mul(b, y))
				if step(term, !so.Overflowed) {
					return true
				}
			}
		}
	case DirLess:
		for x := int64(1); x < m; x++ {
			for y := x + 1; y <= m; y++ {
				if !s.spend() {
					return false
				}
				var so SatOps
				term := so.Sub(so.Mul(a, x), so.Mul(b, y))
				if step(term, !so.Overflowed) {
					return true
				}
			}
		}
	case DirGreater:
		for y := int64(1); y < m; y++ {
			for x := y + 1; x <= m; x++ {
				if !s.spend() {
					return false
				}
				var so SatOps
				term := so.Sub(so.Mul(a, x), so.Mul(b, y))
				if step(term, !so.Overflowed) {
					return true
				}
			}
		}
	}
	return false
}

// ExactTest decides the bounded integer solution test under direction
// vector v with the given node budget (use DefaultExactBudget when in
// doubt). It returns Definite, Impossible, or Unknown.
func ExactTest(p Problem, v Vector, budget int) (Result, error) {
	if err := p.Validate(); err != nil {
		return Unknown, err
	}
	if err := p.checkVector(v); err != nil {
		return Unknown, err
	}
	if p.EmptyDomain() || p.regionEmpty(v) {
		return Impossible, nil
	}
	// Cheap refutations first, exactly as the paper prescribes.
	if ok, _ := GCDTest(p, v); !ok {
		return Impossible, nil
	}
	if ok, _ := BanerjeeTest(p, v, true); !ok {
		return Impossible, nil
	}
	delta, exact := p.DeltaSat()
	if !exact {
		// The dependence equation's constant cannot be represented; no
		// enumeration over it can be trusted.
		return Unknown, nil
	}
	d := p.NumLoops()
	if d == 0 {
		if delta == 0 {
			return Definite, nil
		}
		return Impossible, nil
	}
	s := &exactSolver{p: p, v: v, budget: budget, suffix: make([]Interval, d+1)}
	for k := d - 1; k >= 0; k-- {
		dir := v[k]
		if !p.Shared[k] {
			dir = DirAny
		}
		tb := TermBoundsExact(p.A[k], p.B[k], p.Bound[k], dir)
		s.suffix[k] = tb.Add(s.suffix[k+1])
	}
	found := s.solve(0, delta)
	if found {
		return Definite, nil
	}
	if s.timeout || s.overflow {
		return Unknown, nil
	}
	return Impossible, nil
}
