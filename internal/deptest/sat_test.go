package deptest

import (
	"math/big"
	"testing"
)

// bigTerm computes a·x − b·y in arbitrary precision (ground truth for
// the saturating implementations under test).
func bigTerm(a, b, x, y int64) *big.Int {
	ax := new(big.Int).Mul(big.NewInt(a), big.NewInt(x))
	by := new(big.Int).Mul(big.NewInt(b), big.NewInt(y))
	return ax.Sub(ax, by)
}

// bigClamp clamps a big value into the saturation range.
func bigClamp(v *big.Int) int64 {
	if v.Cmp(big.NewInt(SatMax)) > 0 {
		return SatMax
	}
	if v.Cmp(big.NewInt(SatMin)) < 0 {
		return SatMin
	}
	return v.Int64()
}

// Regression tests for the int64-overflow and degenerate-range bugs in
// the dependence tests: term bounds at ±2^62-scale coefficients used
// to wrap and flip an interval (refuting real dependences), and empty
// iteration ranges used to be a Validate error rather than a clean
// "independent" verdict.

func TestSatOps(t *testing.T) {
	cases := []struct {
		name string
		got  int64
		want int64
		ovf  bool
	}{
		{"add small", SatAdd(3, 4), 7, false},
		{"add clamp hi", SatAdd(SatMax, 1), SatMax, true},
		{"add clamp lo", SatAdd(SatMin, -1), SatMin, true},
		{"sub small", SatSub(3, 4), -1, false},
		{"sub clamp hi", SatSub(SatMax, SatMin), SatMax, true},
		{"sub clamp lo", SatSub(SatMin, SatMax), SatMin, true},
		{"mul small", SatMul(-6, 7), -42, false},
		{"mul zero", SatMul(0, SatMax), 0, false},
		{"mul clamp hi", SatMul(1<<40, 1<<40), SatMax, true},
		{"mul clamp lo", SatMul(1<<40, -(1 << 40)), SatMin, true},
		{"mul neg neg", SatMul(-(1 << 40), -(1 << 40)), SatMax, true},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("%s: got %d, want %d", c.name, c.got, c.want)
		}
	}
	var s SatOps
	s.Add(1, 2)
	s.Mul(10, 10)
	if s.Overflowed {
		t.Error("in-range ops must not set Overflowed")
	}
	s.Mul(1<<62-1, 2)
	if !s.Overflowed {
		t.Error("saturating op must set Overflowed")
	}
	// Inputs outside the saturation range are clamped (and flagged) too.
	var s2 SatOps
	if got := s2.Add(int64(1)<<62, 0); got != SatMax || !s2.Overflowed {
		t.Errorf("out-of-range input: got %d ovf=%v", got, s2.Overflowed)
	}
}

func TestIntervalSaturationSemantics(t *testing.T) {
	// Saturated endpoints behave as ±∞ for containment.
	if !WholeInterval.Contains(SatMax) || !WholeInterval.Contains(SatMin) || !WholeInterval.Contains(0) {
		t.Error("WholeInterval must contain everything")
	}
	if (Interval{Lo: -5, Hi: SatMax}).Contains(-6) {
		t.Error("finite Lo must still exclude")
	}
	if !(Interval{Lo: -5, Hi: SatMax}).Contains(1 << 62) {
		t.Error("saturated Hi must act as +inf")
	}
	// Stickiness: ±∞ plus a finite interval stays ±∞; a later finite
	// term must not wash the overflow out and shrink the interval.
	got := Interval{Lo: SatMin, Hi: SatMax}.Add(Interval{Lo: 100, Hi: 200})
	if got != WholeInterval {
		t.Errorf("sticky saturation violated: %+v", got)
	}
	// Finite + finite that overflows saturates rather than wrapping.
	got = Interval{Lo: 1, Hi: SatMax - 1}.Add(Interval{Lo: 1, Hi: SatMax - 1})
	if got.Hi != SatMax {
		t.Errorf("overflowing Add must saturate, got %+v", got)
	}
}

// TestBanerjeeOverflowRegression pins the satellite-1 bug: with a
// 2^61-scale coefficient the classical Hi bound (a−b) + a⁺·(m−1)
// wrapped int64 negative, flipping the interval and refuting the very
// real dependence a·1 − 0·1 = delta.
func TestBanerjeeOverflowRegression(t *testing.T) {
	big := int64(1) << 61
	p := NewProblem(0, []int64{big}, big, []int64{0}, []int64{16})
	v := mustVector(t, "(*)")
	// Witness x=1, y=1: big·1 − 0·1 = big = delta. The test must not
	// refute it.
	for _, exact := range []bool{false, true} {
		ok, err := BanerjeeTest(p, v, exact)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Errorf("BanerjeeTest(exact=%v) refuted a dependence with witness x=1,y=1 at 2^61 coefficients", exact)
		}
	}
	if ok, _ := GCDTest(p, v); !ok {
		t.Error("GCD test refuted a real dependence at 2^61 scale")
	}
	res, err := ExactTest(p, v, DefaultExactBudget)
	if err != nil {
		t.Fatal(err)
	}
	if res == Impossible {
		t.Errorf("ExactTest = impossible, but x=1,y=1 is a solution")
	}
}

// TestTermBoundsLargeCoefficients sweeps ±2^62-scale coefficients
// through both bound computations and checks the returned intervals
// against a saturating brute-force evaluation: every achievable value
// must be contained (the interval may only be wider, never flipped).
func TestTermBoundsLargeCoefficients(t *testing.T) {
	huge := []int64{SatMin, -(int64(1) << 61), -1, 0, 1, int64(1) << 61, SatMax}
	dirs := []Direction{DirAny, DirLess, DirEqual, DirGreater}
	for _, a := range huge {
		for _, b := range huge {
			for _, m := range []int64{2, 5, 64} {
				for _, d := range dirs {
					cl := TermBoundsClassical(a, b, m, d)
					ex := TermBoundsExact(a, b, m, d)
					if cl.Lo > cl.Hi {
						t.Fatalf("classical interval flipped: a=%d b=%d m=%d %v: %+v", a, b, m, d, cl)
					}
					if ex.Lo > ex.Hi {
						t.Fatalf("exact interval flipped: a=%d b=%d m=%d %v: %+v", a, b, m, d, ex)
					}
					for x := int64(1); x <= m; x++ {
						for y := int64(1); y <= m; y++ {
							if !d.Admits(x, y) {
								continue
							}
							// Ground truth in big arithmetic, clamped
							// monotonically: the computed interval (with
							// saturated endpoints read as ±∞) must contain
							// the clamp of every achievable value.
							val := bigClamp(bigTerm(a, b, x, y))
							if !cl.Contains(val) {
								t.Fatalf("classical bound drops achievable value: a=%d b=%d m=%d %v x=%d y=%d val=%d iv=%+v",
									a, b, m, d, x, y, val, cl)
							}
							if !ex.Contains(val) {
								t.Fatalf("exact bound drops achievable value: a=%d b=%d m=%d %v x=%d y=%d val=%d iv=%+v",
									a, b, m, d, x, y, val, ex)
							}
						}
					}
				}
			}
		}
	}
}

// TestEmptyRangeIndependent pins the satellite-2 edge cases: loops
// with zero or negative bounds have an empty iteration domain, which
// every test must report as "independent" — previously Validate
// rejected them as errors.
func TestEmptyRangeIndependent(t *testing.T) {
	cases := []struct {
		name string
		p    Problem
		v    string
	}{
		{"zero bound", NewProblem(0, []int64{1}, 0, []int64{1}, []int64{0}), "(*)"},
		{"negative bound", NewProblem(0, []int64{2}, 1, []int64{2}, []int64{-3}), "(*)"},
		{"one empty loop of two", NewProblem(0, []int64{1, 1}, 0, []int64{1, 1}, []int64{5, 0}), "(*,*)"},
		{"empty with equal dir", NewProblem(0, []int64{1}, 0, []int64{1}, []int64{0}), "(=)"},
		{"empty zero coefficients", NewProblem(3, []int64{0}, 3, []int64{0}, []int64{-1}), "(*)"},
	}
	for _, c := range cases {
		v := mustVector(t, c.v)
		if err := c.p.Validate(); err != nil {
			t.Fatalf("%s: Validate must accept empty ranges, got %v", c.name, err)
		}
		if !c.p.EmptyDomain() {
			t.Fatalf("%s: EmptyDomain = false", c.name)
		}
		if ok, err := GCDTest(c.p, v); err != nil || ok {
			t.Errorf("%s: GCDTest = (%v, %v), want independent", c.name, ok, err)
		}
		for _, exact := range []bool{false, true} {
			if ok, err := BanerjeeTest(c.p, v, exact); err != nil || ok {
				t.Errorf("%s: BanerjeeTest(exact=%v) = (%v, %v), want independent", c.name, exact, ok, err)
			}
		}
		if res, err := ExactTest(c.p, v, DefaultExactBudget); err != nil || res != Impossible {
			t.Errorf("%s: ExactTest = (%v, %v), want impossible", c.name, res, err)
		}
		if deps, _, err := RefineDirectionsExact(c.p, DefaultExactBudget); err != nil || len(deps) != 0 {
			t.Errorf("%s: RefineDirectionsExact = (%v, %v), want no directions", c.name, deps, err)
		}
	}
}

// TestZeroCoefficientGCD pins the gcd(0,0) normalization: with all
// coefficients zero the GCD test degenerates to "delta == 0" exactly.
func TestZeroCoefficientGCD(t *testing.T) {
	type tc struct {
		name     string
		p        Problem
		v        string
		possible bool
	}
	cases := []tc{
		{"all zero, delta zero", NewProblem(7, []int64{0, 0}, 7, []int64{0, 0}, []int64{4, 4}), "(*,*)", true},
		{"all zero, delta nonzero", NewProblem(7, []int64{0, 0}, 8, []int64{0, 0}, []int64{4, 4}), "(*,*)", false},
		{"equal dir cancels to zero, delta zero", NewProblem(0, []int64{3}, 0, []int64{3}, []int64{4}), "(=)", true},
		{"equal dir cancels to zero, delta nonzero", NewProblem(0, []int64{3}, 1, []int64{3}, []int64{4}), "(=)", false},
		{"zero against nonzero", NewProblem(0, []int64{0}, 5, []int64{2}, []int64{10}), "(*)", false},
	}
	for _, c := range cases {
		v := mustVector(t, c.v)
		got, err := GCDTest(c.p, v)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if got != c.possible {
			t.Errorf("%s: GCDTest = %v, want %v", c.name, got, c.possible)
		}
		// The exact test must agree with brute force on these tiny
		// domains (mirroring the exhaustive banerjee_test loops).
		want := bruteForceDependence(c.p, v)
		res, err := ExactTest(c.p, v, DefaultExactBudget)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if (res == Definite) != want || res == Unknown {
			t.Errorf("%s: ExactTest = %v, brute force = %v", c.name, res, want)
		}
	}
}

// TestExactTestLargeCoefficientSoundness: at coefficient scales where
// the solver's arithmetic saturates, the exact test may answer
// Unknown but must never answer Impossible when a witness exists, and
// never Definite when brute force finds none.
func TestExactTestLargeCoefficientSoundness(t *testing.T) {
	// Ground truth in big arithmetic: does a·x − b·y = B0 − A0 have a
	// solution in the region?
	bruteBig := func(p Problem, v Vector) bool {
		delta := new(big.Int).Sub(big.NewInt(p.B0), big.NewInt(p.A0))
		for x := int64(1); x <= p.Bound[0]; x++ {
			for y := int64(1); y <= p.Bound[0]; y++ {
				if !v[0].Admits(x, y) {
					continue
				}
				if bigTerm(p.A[0], p.B[0], x, y).Cmp(delta) == 0 {
					return true
				}
			}
		}
		return false
	}
	huge := []int64{-(int64(1) << 61), -(int64(1) << 40), int64(1) << 40, int64(1) << 61, SatMax}
	for _, a := range huge {
		for _, b := range huge {
			for _, delta := range []int64{0, a - b, a, -b} {
				p := NewProblem(0, []int64{a}, delta, []int64{b}, []int64{8})
				v := mustVector(t, "(*)")
				want := bruteBig(p, v)
				res, err := ExactTest(p, v, DefaultExactBudget)
				if err != nil {
					t.Fatal(err)
				}
				if want && res == Impossible {
					t.Errorf("a=%d b=%d delta=%d: ExactTest refuted a dependence brute force found", a, b, delta)
				}
				if !want && res == Definite {
					t.Errorf("a=%d b=%d delta=%d: ExactTest claims definite, brute force finds none", a, b, delta)
				}
			}
		}
	}
}
