package deptest

import (
	"testing"
	"testing/quick"
)

func TestDirectionString(t *testing.T) {
	cases := map[Direction]string{
		DirAny: "*", DirLess: "<", DirEqual: "=", DirGreater: ">",
	}
	for d, want := range cases {
		if got := d.String(); got != want {
			t.Errorf("%v.String() = %q, want %q", uint8(d), got, want)
		}
	}
}

func TestDirectionAdmits(t *testing.T) {
	type probe struct {
		x, y int64
		want map[Direction]bool
	}
	probes := []probe{
		{1, 2, map[Direction]bool{DirAny: true, DirLess: true, DirEqual: false, DirGreater: false}},
		{2, 2, map[Direction]bool{DirAny: true, DirLess: false, DirEqual: true, DirGreater: false}},
		{3, 2, map[Direction]bool{DirAny: true, DirLess: false, DirEqual: false, DirGreater: true}},
	}
	for _, p := range probes {
		for d, want := range p.want {
			if got := d.Admits(p.x, p.y); got != want {
				t.Errorf("%v.Admits(%d, %d) = %v, want %v", d, p.x, p.y, got, want)
			}
		}
	}
}

func TestDirectionReverse(t *testing.T) {
	if DirLess.Reverse() != DirGreater || DirGreater.Reverse() != DirLess {
		t.Error("strict directions must swap under Reverse")
	}
	if DirEqual.Reverse() != DirEqual || DirAny.Reverse() != DirAny {
		t.Error("= and * must be self-reverse")
	}
	// Reverse is an involution and agrees with swapping arguments of Admits.
	f := func(dRaw uint8, x, y int8) bool {
		d := Direction(dRaw % 4)
		if d.Reverse().Reverse() != d {
			return false
		}
		return d.Admits(int64(x), int64(y)) == d.Reverse().Admits(int64(y), int64(x))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestVectorRoundTrip(t *testing.T) {
	cases := []string{"()", "(=)", "(<)", "(>)", "(*)", "(=,<)", "(<,>)", "(=,<,>,*)"}
	for _, s := range cases {
		v, err := ParseVector(s)
		if err != nil {
			t.Fatalf("ParseVector(%q): %v", s, err)
		}
		if got := v.String(); got != s {
			t.Errorf("round trip %q -> %q", s, got)
		}
	}
}

func TestParseVectorErrors(t *testing.T) {
	for _, s := range []string{"", "=,<", "(?)", "(=,)", "(<,>"} {
		if _, err := ParseVector(s); err == nil {
			t.Errorf("ParseVector(%q) succeeded, want error", s)
		}
	}
}

func TestVectorLeadingAndCarried(t *testing.T) {
	cases := []struct {
		s       string
		leading Direction
		level   int
	}{
		{"()", DirEqual, -1},
		{"(=,=)", DirEqual, -1},
		{"(<)", DirLess, 0},
		{"(=,<)", DirLess, 1},
		{"(=,>)", DirGreater, 1},
		{"(>,<)", DirGreater, 0},
		{"(=,*,<)", DirAny, 1},
	}
	for _, c := range cases {
		v, err := ParseVector(c.s)
		if err != nil {
			t.Fatal(err)
		}
		if got := v.LeadingDirection(); got != c.leading {
			t.Errorf("%s.LeadingDirection() = %v, want %v", c.s, got, c.leading)
		}
		if got := v.CarriedLevel(); got != c.level {
			t.Errorf("%s.CarriedLevel() = %d, want %d", c.s, got, c.level)
		}
	}
}

func TestVectorSelfEqual(t *testing.T) {
	mustParse := func(s string) Vector {
		v, err := ParseVector(s)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	if !mustParse("(=,=)").SelfEqual() || !mustParse("()").SelfEqual() {
		t.Error("all-= vectors must be SelfEqual")
	}
	if mustParse("(=,<)").SelfEqual() || mustParse("(*)").SelfEqual() {
		t.Error("vectors with non-= components must not be SelfEqual")
	}
}

func TestVectorReverseAdmits(t *testing.T) {
	v, _ := ParseVector("(=,<,>)")
	xs := []int64{3, 1, 5}
	ys := []int64{3, 2, 4}
	if !v.Admits(xs, ys) {
		t.Fatal("vector should admit the probe instances")
	}
	if !v.Reverse().Admits(ys, xs) {
		t.Fatal("reversed vector must admit swapped instances")
	}
}

func TestAnyAndEqualVectors(t *testing.T) {
	if got := AnyVector(3).String(); got != "(*,*,*)" {
		t.Errorf("AnyVector(3) = %s", got)
	}
	if got := EqualVector(2).String(); got != "(=,=)" {
		t.Errorf("EqualVector(2) = %s", got)
	}
	if AnyVector(2).IsFullyRefined() {
		t.Error("AnyVector must not be fully refined")
	}
	if !EqualVector(2).IsFullyRefined() {
		t.Error("EqualVector must be fully refined")
	}
}
