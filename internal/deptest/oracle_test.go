package deptest

// Brute-force oracle used to validate every test in this package: it
// enumerates all (x, y) assignments within the region (feasible only
// for tiny bounds) and checks the dependence equation directly.

// bruteForceDependence exhaustively decides whether the dependence
// equation has an integer solution in the constrained region.
func bruteForceDependence(p Problem, v Vector) bool {
	d := p.NumLoops()
	xs := make([]int64, d)
	ys := make([]int64, d)
	var rec func(k int) bool
	rec = func(k int) bool {
		if k == d {
			var h int64
			for i := 0; i < d; i++ {
				h += p.A[i]*xs[i] - p.B[i]*ys[i]
			}
			return h == p.Delta()
		}
		dir := v[k]
		if !p.Shared[k] {
			dir = DirAny
		}
		for x := int64(1); x <= p.Bound[k]; x++ {
			for y := int64(1); y <= p.Bound[k]; y++ {
				if !dir.Admits(x, y) {
					continue
				}
				xs[k], ys[k] = x, y
				if rec(k + 1) {
					return true
				}
			}
		}
		return false
	}
	return rec(0)
}

// bruteForceTermBounds computes the exact min/max of a·x − b·y over the
// constrained region by enumeration.
func bruteForceTermBounds(a, b, m int64, d Direction) (Interval, bool) {
	first := true
	var iv Interval
	for x := int64(1); x <= m; x++ {
		for y := int64(1); y <= m; y++ {
			if !d.Admits(x, y) {
				continue
			}
			t := a*x - b*y
			if first {
				iv = Interval{t, t}
				first = false
			} else {
				iv.Lo = minI64(iv.Lo, t)
				iv.Hi = maxI64(iv.Hi, t)
			}
		}
	}
	return iv, !first
}
