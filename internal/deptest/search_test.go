package deptest

import (
	"math/rand"
	"sort"
	"testing"
)

func vectorSetStrings(vs []Vector) []string {
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = v.String()
	}
	sort.Strings(out)
	return out
}

func TestRefineDirectionsWavefront(t *testing.T) {
	// Write a!i, read a!(i−1): only (<) should survive refinement.
	p := NewProblem(0, []int64{1}, -1, []int64{1}, []int64{100})
	leaves, stats, err := RefineDirections(p, CombinedTester())
	if err != nil {
		t.Fatal(err)
	}
	got := vectorSetStrings(leaves)
	if len(got) != 1 || got[0] != "(<)" {
		t.Errorf("wavefront refinement = %v, want [(<)]", got)
	}
	if stats.Probes == 0 {
		t.Error("search must report probes")
	}
}

func TestRefineDirectionsTwoLevel(t *testing.T) {
	// Paper section 5, example 2 shape: write a!(i, j), read a!(i, j+1)
	// linearized per dimension. Dimension 1: x1 = y1 (only '='
	// component survives); dimension 2: x2 = y2 + 1 (only '>').
	// Combined per-dimension refinement is exercised in package
	// analysis; here we probe the second dimension alone with the first
	// loop unconstrained-but-equal-coefficient.
	p := NewProblem(0, []int64{0, 1}, 1, []int64{0, 1}, []int64{20, 20})
	leaves, _, err := RefineDirections(p, CombinedTester())
	if err != nil {
		t.Fatal(err)
	}
	got := vectorSetStrings(leaves)
	// First loop does not constrain the equation (coefficients 0), so
	// all three directions survive there; second loop must be '>'.
	want := []string{"(<,>)", "(=,>)", "(>,>)"}
	if len(got) != len(want) {
		t.Fatalf("refinement = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("refinement = %v, want %v", got, want)
		}
	}
}

func TestRefineDirectionsNoDependence(t *testing.T) {
	p := NewProblem(0, []int64{2}, 1, []int64{2}, []int64{100})
	leaves, stats, err := RefineDirections(p, CombinedTester())
	if err != nil {
		t.Fatal(err)
	}
	if len(leaves) != 0 {
		t.Errorf("2i vs 2j+1 must have no surviving vectors, got %v", vectorSetStrings(leaves))
	}
	if stats.Probes != 1 || stats.Pruned != 1 {
		t.Errorf("root refutation should prune immediately: %+v", stats)
	}
}

func TestRefineDirectionsUnsharedLoopsStayAny(t *testing.T) {
	p := NewProblem(0, []int64{1, 1}, 0, []int64{1, 0}, []int64{5, 5})
	p.Shared[1] = false // second loop surrounds only the source
	leaves, _, err := RefineDirections(p, CombinedTester())
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range leaves {
		if v[1] != DirAny {
			t.Errorf("unshared loop component must stay '*', got %v", v)
		}
	}
	if len(leaves) == 0 {
		t.Error("x1 + x2 = y1 clearly has solutions; refinement must keep some vector")
	}
}

// TestRefineDirectionsCompleteness: every direction vector under which
// the oracle finds a dependence must survive refinement (the search
// only prunes with necessary tests).
func TestRefineDirectionsCompleteness(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 800; trial++ {
		d := 1 + rng.Intn(2)
		a := make([]int64, d)
		b := make([]int64, d)
		m := make([]int64, d)
		for k := 0; k < d; k++ {
			a[k] = int64(rng.Intn(7) - 3)
			b[k] = int64(rng.Intn(7) - 3)
			m[k] = int64(1 + rng.Intn(4))
		}
		p := NewProblem(int64(rng.Intn(9)-4), a, int64(rng.Intn(9)-4), b, m)
		leaves, _, err := RefineDirections(p, CombinedTester())
		if err != nil {
			t.Fatal(err)
		}
		have := map[string]bool{}
		for _, v := range leaves {
			have[v.String()] = true
		}
		// Enumerate all fully refined vectors and compare to oracle.
		var enumerate func(v Vector, k int)
		enumerate = func(v Vector, k int) {
			if k == d {
				if bruteForceDependence(p, v) && !have[v.String()] {
					t.Fatalf("refinement lost a real dependence vector %v for %+v", v, p)
				}
				return
			}
			for _, dir := range []Direction{DirLess, DirEqual, DirGreater} {
				v[k] = dir
				enumerate(v, k+1)
			}
		}
		enumerate(make(Vector, d), 0)
	}
}

// TestRefineDirectionsExactFiltersFalsePositives: the exact pass must
// remove vectors the inexact battery wrongly kept.
func TestRefineDirectionsExactFiltersFalsePositives(t *testing.T) {
	// Write a!(2i), read a!(i): dependence needs 2x = y. Under (>)
	// (x > y) that needs 2x = y < x ⇒ x < 0: impossible, but Banerjee's
	// rational relaxation over a small region can keep it. Use the
	// exact pass to check only true vectors remain.
	p := NewProblem(0, []int64{2}, 0, []int64{1}, []int64{10})
	refined, _, err := RefineDirectionsExact(p, DefaultExactBudget)
	if err != nil {
		t.Fatal(err)
	}
	for _, rd := range refined {
		if rd.Verdict == Definite {
			// Confirm against the oracle.
			if !bruteForceDependence(p, rd.Vector) {
				t.Errorf("exact pass kept a false vector %v", rd.Vector)
			}
		}
		if rd.Vector.String() == "(>)" {
			t.Errorf("(>) must be filtered for write 2i / read i")
		}
	}
	// (<) must survive: 2x = y with x < y, e.g. x=1, y=2.
	found := false
	for _, rd := range refined {
		if rd.Vector.String() == "(<)" && rd.Verdict == Definite {
			found = true
		}
	}
	if !found {
		t.Error("(<) must survive exact refinement for write 2i / read i")
	}
}

func TestSearchStatsPruning(t *testing.T) {
	// A problem with no dependence at all must probe exactly once.
	p := NewProblem(0, []int64{4}, 2, []int64{4}, []int64{50, 50}[:1])
	_, stats, err := RefineDirections(p, CombinedTester())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Probes != 1 {
		t.Errorf("expected a single probe, got %d", stats.Probes)
	}
}

func TestBanerjeeTesterAdapter(t *testing.T) {
	p := NewProblem(0, []int64{1}, 50, []int64{1}, []int64{10})
	for _, exact := range []bool{false, true} {
		ok, err := BanerjeeTester(exact)(p, AnyVector(1))
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			t.Errorf("BanerjeeTester(exact=%v) must refute the out-of-range pair", exact)
		}
	}
}

func TestVectorEqual(t *testing.T) {
	a := mustVector(t, "(=,<)")
	if !a.Equal(mustVector(t, "(=,<)")) {
		t.Error("equal vectors not Equal")
	}
	if a.Equal(mustVector(t, "(=,>)")) || a.Equal(mustVector(t, "(=)")) {
		t.Error("unequal vectors Equal")
	}
}

func TestDirectionRefinements(t *testing.T) {
	refs := DirAny.Refinements()
	if len(refs) != 3 {
		t.Fatalf("DirAny refines to %d directions", len(refs))
	}
	for _, d := range []Direction{DirLess, DirEqual, DirGreater} {
		if d.Refinements() != nil {
			t.Errorf("%v must have no refinements", d)
		}
	}
}
