package deptest

// The direction-vector refinement search tree (the approach the paper
// attributes to Burke & Cytron). Start from the unconstrained vector
// (*,…,*); if a test refutes a dependence there, it is refuted for
// every refinement and the whole subtree is pruned. Otherwise split the
// leftmost '*' into '<', '=', '>' and recurse. The leaves that survive
// are the direction vectors under which a dependence remains possible.
//
// In the common scientific-code cases the tree collapses after one or
// two probes, giving the O(n)-or-even-O(1) behaviour the paper cites;
// in the worst case it degenerates to the O(3^n) exhaustive battery.

// Tester is a dependence test: it reports whether a dependence is
// possible under the given direction vector.
type Tester func(p Problem, v Vector) (bool, error)

// BanerjeeTester adapts BanerjeeTest to the Tester shape.
func BanerjeeTester(exact bool) Tester {
	return func(p Problem, v Vector) (bool, error) {
		return BanerjeeTest(p, v, exact)
	}
}

// CombinedTester refutes with the GCD test first and the Banerjee
// (exact-bounds) test second — the battery the paper recommends.
func CombinedTester() Tester {
	return func(p Problem, v Vector) (bool, error) {
		ok, err := GCDTest(p, v)
		if err != nil || !ok {
			return false, err
		}
		return BanerjeeTest(p, v, true)
	}
}

// SearchStats reports the work done by a refinement search.
type SearchStats struct {
	Probes int // number of Tester invocations
	Pruned int // number of interior nodes whose subtree was pruned
}

// RefineDirections returns every fully refined direction vector under
// which `test` cannot refute a dependence, using the hierarchical
// search tree. Components for unshared loops are left as '*' (they can
// carry no constraint) and count as refined.
func RefineDirections(p Problem, test Tester) ([]Vector, SearchStats, error) {
	var (
		out   []Vector
		stats SearchStats
	)
	if err := p.Validate(); err != nil {
		return nil, stats, err
	}
	var walk func(v Vector, from int) error
	walk = func(v Vector, from int) error {
		stats.Probes++
		ok, err := test(p, v)
		if err != nil {
			return err
		}
		if !ok {
			stats.Pruned++
			return nil
		}
		// Find the next refinable component.
		split := -1
		for k := from; k < len(v); k++ {
			if v[k] == DirAny && p.Shared[k] {
				split = k
				break
			}
		}
		if split < 0 {
			out = append(out, v.Clone())
			return nil
		}
		for _, d := range []Direction{DirLess, DirEqual, DirGreater} {
			child := v.Clone()
			child[split] = d
			if err := walk(child, split+1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(AnyVector(p.NumLoops()), 0); err != nil {
		return nil, stats, err
	}
	return out, stats, nil
}

// RefineDirectionsExact refines with the inexact battery and then
// confirms each surviving leaf with the exact test under the given
// budget. It returns, per leaf, the exact verdict (Definite,
// Impossible, or Unknown when the budget ran out — callers must treat
// Unknown pessimistically as a possible dependence).
type RefinedDirection struct {
	Vector  Vector
	Verdict Result
}

// RefineDirectionsExact runs RefineDirections with CombinedTester and
// upgrades each surviving vector with an exact verdict.
func RefineDirectionsExact(p Problem, budget int) ([]RefinedDirection, SearchStats, error) {
	leaves, stats, err := RefineDirections(p, CombinedTester())
	if err != nil {
		return nil, stats, err
	}
	out := make([]RefinedDirection, 0, len(leaves))
	for _, v := range leaves {
		res, err := ExactTest(p, v, budget)
		if err != nil {
			return nil, stats, err
		}
		if res == Impossible {
			continue // the exact test refuted what the inexact battery allowed
		}
		out = append(out, RefinedDirection{Vector: v, Verdict: res})
	}
	return out, stats, nil
}
