package deptest

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestTermBoundsExactMatchesOracle: the vertex evaluation must equal
// brute-force min/max for every direction class.
func TestTermBoundsExactMatchesOracle(t *testing.T) {
	for _, d := range []Direction{DirAny, DirLess, DirEqual, DirGreater} {
		for a := int64(-4); a <= 4; a++ {
			for b := int64(-4); b <= 4; b++ {
				for m := int64(1); m <= 6; m++ {
					if (d == DirLess || d == DirGreater) && m < 2 {
						continue // empty region, callers pre-check
					}
					want, nonEmpty := bruteForceTermBounds(a, b, m, d)
					if !nonEmpty {
						continue
					}
					got := TermBoundsExact(a, b, m, d)
					if got != want {
						t.Fatalf("TermBoundsExact(a=%d b=%d m=%d %v) = %+v, want %+v", a, b, m, d, got, want)
					}
				}
			}
		}
	}
}

// TestTermBoundsClassicalContainsExact: the classical formulas are a
// relaxation; their interval must contain the exact interval.
func TestTermBoundsClassicalContainsExact(t *testing.T) {
	f := func(a8, b8 int8, mRaw uint8, dRaw uint8) bool {
		d := Direction(dRaw % 4)
		m := int64(mRaw%16) + 1
		if (d == DirLess || d == DirGreater) && m < 2 {
			return true
		}
		a, b := int64(a8), int64(b8)
		exact := TermBoundsExact(a, b, m, d)
		classical := TermBoundsClassical(a, b, m, d)
		return classical.Lo <= exact.Lo && exact.Hi <= classical.Hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

// TestTermBoundsClassicalExactForLooseDirections: for * and = the
// classical formulas are tight (no relaxation is involved).
func TestTermBoundsClassicalExactForLooseDirections(t *testing.T) {
	for _, d := range []Direction{DirAny, DirEqual} {
		for a := int64(-5); a <= 5; a++ {
			for b := int64(-5); b <= 5; b++ {
				for m := int64(1); m <= 7; m++ {
					if got, want := TermBoundsClassical(a, b, m, d), TermBoundsExact(a, b, m, d); got != want {
						t.Fatalf("classical %v bounds not tight: a=%d b=%d m=%d got %+v want %+v", d, a, b, m, got, want)
					}
				}
			}
		}
	}
}

func TestTermBoundsUnsharedLemma(t *testing.T) {
	// Loop surrounds only the source: term a·x, x ∈ [1..M]. Encoded as
	// b = 0; the lemma's bounds are a − a⁻(M−1) ≤ a·x ≤ a + a⁺(M−1).
	for a := int64(-5); a <= 5; a++ {
		for m := int64(1); m <= 7; m++ {
			got := TermBoundsUnshared(a, 0, m)
			want := Interval{a - NegPart(a)*(m-1), a + PosPart(a)*(m-1)}
			if got != want {
				t.Fatalf("unshared source bounds a=%d m=%d: got %+v want %+v", a, m, got, want)
			}
		}
	}
	// Loop surrounds only the sink: term −b·y.
	for b := int64(-5); b <= 5; b++ {
		for m := int64(1); m <= 7; m++ {
			got := TermBoundsUnshared(0, b, m)
			want := Interval{-b - PosPart(b)*(m-1), -b + NegPart(b)*(m-1)}
			if got != want {
				t.Fatalf("unshared sink bounds b=%d m=%d: got %+v want %+v", b, m, got, want)
			}
		}
	}
}

func TestBanerjeeRefutesOutOfRange(t *testing.T) {
	// a!(i) vs a!(j + 50) over i, j ∈ [1..10]: max of x − y is 9, the
	// needed difference is 50 ⇒ impossible.
	p := NewProblem(0, []int64{1}, 50, []int64{1}, []int64{10})
	if ok, _ := BanerjeeTest(p, AnyVector(1), false); ok {
		t.Error("Banerjee must refute i vs j+50 over [1..10]")
	}
}

func TestBanerjeeDirectional(t *testing.T) {
	// The wavefront flow dependence: write a!(i), read a!(i−1). Source
	// (write) instance x, sink (read) instance y satisfy x = y − 1, so
	// only (<) admits a dependence.
	p := NewProblem(0, []int64{1}, -1, []int64{1}, []int64{100})
	for _, c := range []struct {
		dir  string
		want bool
	}{
		{"(<)", true},
		{"(=)", false},
		{"(>)", false},
		{"(*)", true},
	} {
		ok, err := BanerjeeTest(p, mustVector(t, c.dir), false)
		if err != nil {
			t.Fatal(err)
		}
		if ok != c.want {
			t.Errorf("Banerjee %s for write a!i / read a!(i−1): got %v, want %v", c.dir, ok, c.want)
		}
	}
}

func TestBanerjeeEmptyRegion(t *testing.T) {
	// Single-iteration loop cannot carry a (<) dependence.
	p := NewProblem(0, []int64{1}, 0, []int64{1}, []int64{1})
	if ok, _ := BanerjeeTest(p, mustVector(t, "(<)"), false); ok {
		t.Error("(<) over a single-iteration loop must be refuted")
	}
	if ok, _ := BanerjeeTest(p, mustVector(t, "(=)"), false); !ok {
		t.Error("(=) over a single-iteration loop with equal subscripts must be possible")
	}
}

// TestBanerjeeSoundness: Banerjee (both forms) must never refute a
// dependence the oracle finds.
func TestBanerjeeSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	dirs := []Direction{DirAny, DirLess, DirEqual, DirGreater}
	for trial := 0; trial < 3000; trial++ {
		d := 1 + rng.Intn(2)
		a := make([]int64, d)
		b := make([]int64, d)
		m := make([]int64, d)
		v := make(Vector, d)
		for k := 0; k < d; k++ {
			a[k] = int64(rng.Intn(9) - 4)
			b[k] = int64(rng.Intn(9) - 4)
			m[k] = int64(1 + rng.Intn(5))
			v[k] = dirs[rng.Intn(len(dirs))]
		}
		p := NewProblem(int64(rng.Intn(11)-5), a, int64(rng.Intn(11)-5), b, m)
		real := bruteForceDependence(p, v)
		for _, exact := range []bool{false, true} {
			ok, err := BanerjeeTest(p, v, exact)
			if err != nil {
				t.Fatal(err)
			}
			if real && !ok {
				t.Fatalf("Banerjee(exact=%v) refuted a real dependence: %+v %v", exact, p, v)
			}
		}
	}
}

// TestBanerjeeExactSharperThanClassical: whenever the exact-bounds form
// says "possible", so must the classical form (exact ⊆ classical).
func TestBanerjeeExactSharperThanClassical(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	dirs := []Direction{DirAny, DirLess, DirEqual, DirGreater}
	for trial := 0; trial < 3000; trial++ {
		d := 1 + rng.Intn(3)
		a := make([]int64, d)
		b := make([]int64, d)
		m := make([]int64, d)
		v := make(Vector, d)
		for k := 0; k < d; k++ {
			a[k] = int64(rng.Intn(13) - 6)
			b[k] = int64(rng.Intn(13) - 6)
			m[k] = int64(1 + rng.Intn(9))
			v[k] = dirs[rng.Intn(len(dirs))]
		}
		p := NewProblem(int64(rng.Intn(21)-10), a, int64(rng.Intn(21)-10), b, m)
		sharp, _ := BanerjeeTest(p, v, true)
		loose, _ := BanerjeeTest(p, v, false)
		if sharp && !loose {
			t.Fatalf("exact-bounds Banerjee allowed what classical refuted: %+v %v", p, v)
		}
	}
}

func TestIntervalHelpers(t *testing.T) {
	iv := Interval{-2, 5}
	if !iv.Contains(0) || !iv.Contains(-2) || !iv.Contains(5) {
		t.Error("Contains endpoints/interior failed")
	}
	if iv.Contains(-3) || iv.Contains(6) {
		t.Error("Contains out of range failed")
	}
	sum := iv.Add(Interval{1, 2})
	if sum != (Interval{-1, 7}) {
		t.Errorf("Add = %+v", sum)
	}
}
