package deptest

import (
	"errors"
	"fmt"
)

// Problem is one single-dimension dependence question between a source
// reference with subscript f(x) = A0 + Σ A[k]·x[k] and a sink reference
// with subscript g(y) = B0 + Σ B[k]·y[k], over NumLoops() normalized
// loops. Loop k runs over [1..Bound[k]] (the paper's M_k).
//
// Loops that surround only one of the two references (the "unshared
// loops" of the paper's final lemma in section 6) are modeled with a
// zero coefficient on the side they do not surround and Shared[k] =
// false; direction constraints are meaningful only for shared loops.
//
// Multi-dimensional subscripts are handled one dimension at a time and
// combined by the caller (a dependence requires every dimension to
// admit a solution under the same direction vector); see package
// analysis.
type Problem struct {
	A0, B0 int64
	A, B   []int64
	Bound  []int64
	Shared []bool
}

// NewProblem builds a Problem over d fully shared loops with bounds m.
func NewProblem(a0 int64, a []int64, b0 int64, b []int64, m []int64) Problem {
	d := len(a)
	shared := make([]bool, d)
	for i := range shared {
		shared[i] = true
	}
	return Problem{A0: a0, A: a, B0: b0, B: b, Bound: m, Shared: shared}
}

// NumLoops returns the number of loops in the problem.
func (p Problem) NumLoops() int { return len(p.A) }

// Validate checks structural consistency.
func (p Problem) Validate() error {
	d := len(p.A)
	if len(p.B) != d || len(p.Bound) != d || len(p.Shared) != d {
		return fmt.Errorf("deptest: inconsistent problem arity: |A|=%d |B|=%d |Bound|=%d |Shared|=%d",
			len(p.A), len(p.B), len(p.Bound), len(p.Shared))
	}
	for k := range p.A {
		if !p.Shared[k] && p.A[k] != 0 && p.B[k] != 0 {
			return fmt.Errorf("deptest: loop %d marked unshared but has coefficients on both sides", k)
		}
	}
	return nil
}

// ErrVectorArity is returned when a direction vector's length does not
// match the problem's loop count.
var ErrVectorArity = errors.New("deptest: direction vector length does not match problem loop count")

// checkVector validates v against p and rejects direction constraints
// on unshared loops (the relative order of instances of an unshared
// loop is meaningless).
func (p Problem) checkVector(v Vector) error {
	if len(v) != p.NumLoops() {
		return fmt.Errorf("%w: vector %v, loops %d", ErrVectorArity, v, p.NumLoops())
	}
	for k, d := range v {
		if d != DirAny && !p.Shared[k] {
			return fmt.Errorf("deptest: direction %v constrains unshared loop %d", v, k)
		}
	}
	return nil
}

// Delta returns the constant term B0 − A0 of the dependence equation
// Σ A[k]x[k] − Σ B[k]y[k] = B0 − A0, saturated into [SatMin, SatMax].
// A saturated delta (|B0 − A0| > 2^62) compares correctly against
// saturating interval bounds because clamping is monotone; callers
// that need to know whether the value is exact use DeltaSat.
func (p Problem) Delta() int64 { d, _ := p.DeltaSat(); return d }

// DeltaSat returns the saturated constant term and whether it is
// exact (no overflow).
func (p Problem) DeltaSat() (int64, bool) {
	var s SatOps
	d := s.Sub(p.B0, p.A0)
	return d, !s.Overflowed
}

// errEmptyDomain flags a dependence question over zero iteration
// points; the tests report "independent" rather than an error.
var errEmptyDomain = errors.New("deptest: empty iteration domain")

// EmptyDomain reports whether some loop has a non-positive bound. A
// normalized loop with Bound < 1 runs zero iterations, so the whole
// iteration domain is empty and no dependence can exist. Historically
// Validate rejected such problems outright, which made degenerate
// (empty or negative) ranges an error path; they are a legitimate
// "independent" answer.
func (p Problem) EmptyDomain() bool {
	for _, m := range p.Bound {
		if m < 1 {
			return true
		}
	}
	return false
}

// regionEmpty reports whether the constrained region is empty for some
// loop — e.g. constraint x<y over a loop with a single iteration.
func (p Problem) regionEmpty(v Vector) bool {
	for k, d := range v {
		if (d == DirLess || d == DirGreater) && p.Bound[k] < 2 {
			return true
		}
	}
	return false
}
