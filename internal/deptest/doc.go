// Package deptest implements the number-theoretic subscript-analysis
// tests of Anderson & Hudak, "Compilation of Haskell Array Comprehensions
// for Scientific Computing" (PLDI 1990), section 6.
//
// Given two linear (affine) subscript expressions
//
//	f(x1..xd) = a0 + Σ ak·xk
//	g(y1..yd) = b0 + Σ bk·yk
//
// over d normalized loops (each index ranging over [1..Mk]), a dependence
// between the two array references exists iff the dependence equation
//
//	f(x1..xd) − g(y1..yd) = 0
//
// has an integer solution within the region of interest R, possibly
// further constrained per loop by a direction (x=y, x<y, x>y, or
// unconstrained). The package provides:
//
//   - the GCD test (Theorem 1: any-integer-solution, necessary only),
//   - the Banerjee inequality test (Theorem 2: bounded-rational-solution,
//     necessary only), in both the classical positive/negative-part
//     formula form and an exact per-term vertex form,
//   - an exact bounded-integer-solution test (closed form for a single
//     loop, branch-and-bound for nests),
//   - the direction-vector refinement search tree that discovers which
//     direction vectors admit a dependence.
//
// All tests answer the same question — "can these two references touch
// the same element under these constraints?" — and are used by higher
// layers to detect write collisions (output dependences), schedule
// thunkless evaluation (flow dependences), and schedule in-place updates
// (anti-dependences).
package deptest
