package deptest

// Basic integer number theory used by the dependence tests.

// Abs returns the absolute value of t.
func Abs(t int64) int64 {
	if t < 0 {
		return -t
	}
	return t
}

// GCD returns the greatest common divisor of a and b, always non-negative.
// GCD(0, 0) is 0 by convention, so that "g divides c" degenerates to
// "c == 0" exactly as required by the GCD test over an empty coefficient
// set.
func GCD(a, b int64) int64 {
	a, b = Abs(a), Abs(b)
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// GCDAll returns the gcd of all values, 0 for an empty list.
func GCDAll(vals ...int64) int64 {
	var g int64
	for _, v := range vals {
		g = GCD(g, v)
	}
	return g
}

// ExtGCD returns (g, u, v) with g = gcd(a, b) ≥ 0 and a·u + b·v = g.
func ExtGCD(a, b int64) (g, u, v int64) {
	// Iterative extended Euclid on the signed values, fixing sign at the end.
	oldR, r := a, b
	oldS, s := int64(1), int64(0)
	oldT, t := int64(0), int64(1)
	for r != 0 {
		q := oldR / r
		oldR, r = r, oldR-q*r
		oldS, s = s, oldS-q*s
		oldT, t = t, oldT-q*t
	}
	if oldR < 0 {
		oldR, oldS, oldT = -oldR, -oldS, -oldT
	}
	return oldR, oldS, oldT
}

// Divides reports whether g divides c, with the convention that 0
// divides only 0.
func Divides(g, c int64) bool {
	if g == 0 {
		return c == 0
	}
	return c%g == 0
}

// PosPart returns t⁺ = max(t, 0), the positive part of t as defined in
// Banerjee's thesis and used throughout the paper's section 6.
func PosPart(t int64) int64 {
	if t > 0 {
		return t
	}
	return 0
}

// NegPart returns t⁻ = max(−t, 0), the negative part of t. Note that
// t = t⁺ − t⁻ and |t| = t⁺ + t⁻.
func NegPart(t int64) int64 {
	if t < 0 {
		return -t
	}
	return 0
}

// FloorDiv returns ⌊a/b⌋ for b ≠ 0 (division rounding toward −∞).
func FloorDiv(a, b int64) int64 {
	q := a / b
	if (a%b != 0) && ((a < 0) != (b < 0)) {
		q--
	}
	return q
}

// CeilDiv returns ⌈a/b⌉ for b ≠ 0 (division rounding toward +∞).
func CeilDiv(a, b int64) int64 {
	q := a / b
	if (a%b != 0) && ((a < 0) == (b < 0)) {
		q++
	}
	return q
}

// Saturating arithmetic. The dependence tests manipulate products of
// coefficients and trip counts; with user-visible parameters both can
// approach 2^62, so the intermediate bound arithmetic can wrap int64
// and silently flip an interval — turning a real dependence into a
// certified "independent" and breaking every downstream optimization.
// Instead of big integers, all bound computation clamps into
// [SatMin, SatMax]. Clamping is monotone (x ≤ y ⟹ sat(x) ≤ sat(y)),
// and SatOps additionally records whether any step left the exact
// range, so callers can either treat a saturated bound as ±∞ or
// discard the computation as "unknown" — both conservative.
const (
	// SatMax is the upper saturation bound, 2^62 − 1. Keeping a factor
	// of two of headroom below MaxInt64 means a single post-clamp
	// addition of two in-range values cannot wrap before being clamped.
	SatMax = int64(1)<<62 - 1
	// SatMin is the lower saturation bound, −2^62.
	SatMin = -(int64(1) << 62)
)

// SatOps is a saturating evaluator that records overflow. The zero
// value is ready to use; after a sequence of operations, Overflowed
// reports whether any intermediate left [SatMin, SatMax] (in which
// case the results are clamped and no longer exact).
type SatOps struct {
	Overflowed bool
}

func (s *SatOps) clamp(v int64) int64 {
	if v > SatMax {
		s.Overflowed = true
		return SatMax
	}
	if v < SatMin {
		s.Overflowed = true
		return SatMin
	}
	return v
}

// Add returns a + b clamped into [SatMin, SatMax].
func (s *SatOps) Add(a, b int64) int64 {
	a, b = s.clamp(a), s.clamp(b)
	// Inputs are in range, so |a + b| ≤ 2^63 − 2: the raw sum cannot
	// wrap and a single clamp is exact.
	return s.clamp(a + b)
}

// Sub returns a − b clamped into [SatMin, SatMax].
func (s *SatOps) Sub(a, b int64) int64 {
	a, b = s.clamp(a), s.clamp(b)
	return s.clamp(a - b)
}

// Neg returns −a clamped into [SatMin, SatMax].
func (s *SatOps) Neg(a int64) int64 {
	return s.clamp(-s.clamp(a))
}

// Mul returns a·b clamped into [SatMin, SatMax].
func (s *SatOps) Mul(a, b int64) int64 {
	a, b = s.clamp(a), s.clamp(b)
	if a == 0 || b == 0 {
		return 0
	}
	pos := (a > 0) == (b > 0)
	aa, bb := a, b
	if aa < 0 {
		aa = -aa // in range: |a| ≤ 2^62
	}
	if bb < 0 {
		bb = -bb
	}
	if aa > SatMax/bb {
		// The only in-range product whose magnitude exceeds SatMax is
		// exactly −2^62 = SatMin; keep that case exact.
		if !pos && aa <= (int64(1)<<62)/bb && aa*bb == int64(1)<<62 {
			return SatMin
		}
		s.Overflowed = true
		if pos {
			return SatMax
		}
		return SatMin
	}
	p := aa * bb
	if !pos {
		p = -p
	}
	return p
}

// SatAdd is a convenience wrapper for a single saturating addition.
func SatAdd(a, b int64) int64 { var s SatOps; return s.Add(a, b) }

// SatSub is a convenience wrapper for a single saturating subtraction.
func SatSub(a, b int64) int64 { var s SatOps; return s.Sub(a, b) }

// SatMul is a convenience wrapper for a single saturating product.
func SatMul(a, b int64) int64 { var s SatOps; return s.Mul(a, b) }

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func minAll(vals ...int64) int64 {
	m := vals[0]
	for _, v := range vals[1:] {
		m = minI64(m, v)
	}
	return m
}

func maxAll(vals ...int64) int64 {
	m := vals[0]
	for _, v := range vals[1:] {
		m = maxI64(m, v)
	}
	return m
}
