package deptest

// Basic integer number theory used by the dependence tests.

// Abs returns the absolute value of t.
func Abs(t int64) int64 {
	if t < 0 {
		return -t
	}
	return t
}

// GCD returns the greatest common divisor of a and b, always non-negative.
// GCD(0, 0) is 0 by convention, so that "g divides c" degenerates to
// "c == 0" exactly as required by the GCD test over an empty coefficient
// set.
func GCD(a, b int64) int64 {
	a, b = Abs(a), Abs(b)
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// GCDAll returns the gcd of all values, 0 for an empty list.
func GCDAll(vals ...int64) int64 {
	var g int64
	for _, v := range vals {
		g = GCD(g, v)
	}
	return g
}

// ExtGCD returns (g, u, v) with g = gcd(a, b) ≥ 0 and a·u + b·v = g.
func ExtGCD(a, b int64) (g, u, v int64) {
	// Iterative extended Euclid on the signed values, fixing sign at the end.
	oldR, r := a, b
	oldS, s := int64(1), int64(0)
	oldT, t := int64(0), int64(1)
	for r != 0 {
		q := oldR / r
		oldR, r = r, oldR-q*r
		oldS, s = s, oldS-q*s
		oldT, t = t, oldT-q*t
	}
	if oldR < 0 {
		oldR, oldS, oldT = -oldR, -oldS, -oldT
	}
	return oldR, oldS, oldT
}

// Divides reports whether g divides c, with the convention that 0
// divides only 0.
func Divides(g, c int64) bool {
	if g == 0 {
		return c == 0
	}
	return c%g == 0
}

// PosPart returns t⁺ = max(t, 0), the positive part of t as defined in
// Banerjee's thesis and used throughout the paper's section 6.
func PosPart(t int64) int64 {
	if t > 0 {
		return t
	}
	return 0
}

// NegPart returns t⁻ = max(−t, 0), the negative part of t. Note that
// t = t⁺ − t⁻ and |t| = t⁺ + t⁻.
func NegPart(t int64) int64 {
	if t < 0 {
		return -t
	}
	return 0
}

// FloorDiv returns ⌊a/b⌋ for b ≠ 0 (division rounding toward −∞).
func FloorDiv(a, b int64) int64 {
	q := a / b
	if (a%b != 0) && ((a < 0) != (b < 0)) {
		q--
	}
	return q
}

// CeilDiv returns ⌈a/b⌉ for b ≠ 0 (division rounding toward +∞).
func CeilDiv(a, b int64) int64 {
	q := a / b
	if (a%b != 0) && ((a < 0) == (b < 0)) {
		q++
	}
	return q
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func minAll(vals ...int64) int64 {
	m := vals[0]
	for _, v := range vals[1:] {
		m = minI64(m, v)
	}
	return m
}

func maxAll(vals ...int64) int64 {
	m := vals[0]
	for _, v := range vals[1:] {
		m = maxI64(m, v)
	}
	return m
}
