package deptest

import (
	"math/rand"
	"testing"
)

func TestSolveSingleLoopClosedForm(t *testing.T) {
	// Cross-check the closed form against brute force over a dense grid.
	for a := int64(-5); a <= 5; a++ {
		for b := int64(-5); b <= 5; b++ {
			for c := int64(-12); c <= 12; c++ {
				for m := int64(1); m <= 6; m++ {
					for _, d := range []Direction{DirAny, DirLess, DirEqual, DirGreater} {
						want := false
						for x := int64(1); x <= m; x++ {
							for y := int64(1); y <= m; y++ {
								if d.Admits(x, y) && a*x-b*y == c {
									want = true
								}
							}
						}
						got, ok := solveSingleLoop(a, b, c, m, d)
						if !ok {
							t.Fatalf("solveSingleLoop(a=%d b=%d c=%d m=%d %v) saturated on tiny inputs", a, b, c, m, d)
						}
						if got != want {
							t.Fatalf("solveSingleLoop(a=%d b=%d c=%d m=%d %v) = %v, want %v", a, b, c, m, d, got, want)
						}
					}
				}
			}
		}
	}
}

func TestExactTestMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	dirs := []Direction{DirAny, DirLess, DirEqual, DirGreater}
	for trial := 0; trial < 2500; trial++ {
		d := 1 + rng.Intn(3)
		a := make([]int64, d)
		b := make([]int64, d)
		m := make([]int64, d)
		v := make(Vector, d)
		for k := 0; k < d; k++ {
			a[k] = int64(rng.Intn(9) - 4)
			b[k] = int64(rng.Intn(9) - 4)
			m[k] = int64(1 + rng.Intn(5))
			v[k] = dirs[rng.Intn(len(dirs))]
		}
		p := NewProblem(int64(rng.Intn(13)-6), a, int64(rng.Intn(13)-6), b, m)
		want := bruteForceDependence(p, v)
		got, err := ExactTest(p, v, DefaultExactBudget)
		if err != nil {
			t.Fatal(err)
		}
		if got == Unknown {
			t.Fatalf("exact test ran out of budget on a tiny problem: %+v %v", p, v)
		}
		if (got == Definite) != want {
			t.Fatalf("ExactTest(%+v, %v) = %v, oracle says %v", p, v, got, want)
		}
	}
}

func TestExactTestLargeBoundsSingleLoop(t *testing.T) {
	// Closed form must handle big bounds in O(1): 3x − 5y = 1 over
	// [1..10^9] has solutions (e.g. x=2, y=1).
	p := NewProblem(0, []int64{3}, -1, []int64{5}, []int64{1_000_000_000})
	res, err := ExactTest(p, AnyVector(1), 100)
	if err != nil {
		t.Fatal(err)
	}
	if res != Definite {
		t.Errorf("3x − 5y = 1 over huge range: got %v, want definite", res)
	}
	// 3x − 6y = 1 has no integer solutions at all.
	p = NewProblem(0, []int64{3}, -1, []int64{6}, []int64{1_000_000_000})
	if res, _ := ExactTest(p, AnyVector(1), 100); res != Impossible {
		t.Errorf("3x − 6y = 1: got %v, want impossible", res)
	}
}

func TestExactTestBudgetExhaustion(t *testing.T) {
	// A 3-deep nest with gcd-compatible coefficients forces real
	// enumeration; with budget 1 the solver must give up, not lie.
	p := NewProblem(0, []int64{1, 1, 1}, 0, []int64{1, 1, 1}, []int64{50, 50, 50})
	v := Vector{DirAny, DirAny, DirAny}
	res, err := ExactTest(p, v, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Budget 1 may or may not suffice depending on pruning; the
	// contract is only that the answer is one of the three honest
	// outcomes and never a wrong refutation. i=j=k trivially solves
	// this system, so Impossible would be a lie.
	if res == Impossible {
		t.Errorf("budget-starved exact test returned a wrong refutation")
	}
}

func TestExactTestZeroLoops(t *testing.T) {
	p := NewProblem(7, nil, 7, nil, nil)
	if res, _ := ExactTest(p, Vector{}, 10); res != Definite {
		t.Error("matching constant subscripts must be a definite dependence")
	}
	p = NewProblem(7, nil, 8, nil, nil)
	if res, _ := ExactTest(p, Vector{}, 10); res != Impossible {
		t.Error("distinct constant subscripts must be impossible")
	}
}

func TestExactTestPaperExample1(t *testing.T) {
	// Paper section 5, example 1: clauses write 3i, 3i−1, 3i−2 and
	// clause 2 reads a!(3(i−1)) = 3i−3, clause 3 reads a!(3i).
	// Flow edge 1→2: write 3x vs read 3y−3 ⇒ 3x = 3y−3 ⇒ x = y−1,
	// i.e. only direction (<) admits a dependence.
	p := NewProblem(0, []int64{3}, -3, []int64{3}, []int64{100})
	if res, _ := ExactTest(p, mustVector(t, "(<)"), DefaultExactBudget); res != Definite {
		t.Error("edge 1→2 must be definite under (<)")
	}
	for _, dir := range []string{"(=)", "(>)"} {
		if res, _ := ExactTest(p, mustVector(t, dir), DefaultExactBudget); res != Impossible {
			t.Errorf("edge 1→2 must be impossible under %s", dir)
		}
	}
	// Flow edge 1→3: write 3x vs read 3y ⇒ x = y ⇒ only (=).
	p = NewProblem(0, []int64{3}, 0, []int64{3}, []int64{100})
	if res, _ := ExactTest(p, mustVector(t, "(=)"), DefaultExactBudget); res != Definite {
		t.Error("edge 1→3 must be definite under (=)")
	}
	for _, dir := range []string{"(<)", "(>)"} {
		if res, _ := ExactTest(p, mustVector(t, dir), DefaultExactBudget); res != Impossible {
			t.Errorf("edge 1→3 must be impossible under %s", dir)
		}
	}
	// No dependence at all between the 3i−1 clause writes and the 3i
	// clause writes (output-dependence question): 3x−1 = 3y never.
	p = NewProblem(-1, []int64{3}, 0, []int64{3}, []int64{100})
	if res, _ := ExactTest(p, AnyVector(1), DefaultExactBudget); res != Impossible {
		t.Error("writes at 3i−1 and 3j can never collide")
	}
}

func TestResultStringsAndCanDepend(t *testing.T) {
	if Impossible.CanDepend() {
		t.Error("Impossible.CanDepend() must be false")
	}
	for _, r := range []Result{Possible, Definite, Unknown} {
		if !r.CanDepend() {
			t.Errorf("%v.CanDepend() must be true", r)
		}
	}
	want := map[Result]string{Impossible: "impossible", Possible: "possible", Definite: "definite", Unknown: "unknown"}
	for r, s := range want {
		if r.String() != s {
			t.Errorf("%d.String() = %q, want %q", r, r.String(), s)
		}
	}
}
