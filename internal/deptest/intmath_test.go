package deptest

import (
	"testing"
	"testing/quick"
)

func TestGCDBasics(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{0, 0, 0},
		{0, 5, 5},
		{5, 0, 5},
		{12, 18, 6},
		{-12, 18, 6},
		{12, -18, 6},
		{-12, -18, 6},
		{7, 13, 1},
		{1, 1000000, 1},
	}
	for _, c := range cases {
		if got := GCD(c.a, c.b); got != c.want {
			t.Errorf("GCD(%d, %d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestGCDAll(t *testing.T) {
	if got := GCDAll(); got != 0 {
		t.Errorf("GCDAll() = %d, want 0", got)
	}
	if got := GCDAll(6, 9, 15); got != 3 {
		t.Errorf("GCDAll(6,9,15) = %d, want 3", got)
	}
	if got := GCDAll(0, 0, 4); got != 4 {
		t.Errorf("GCDAll(0,0,4) = %d, want 4", got)
	}
}

func TestExtGCDIdentity(t *testing.T) {
	f := func(a, b int32) bool {
		g, u, v := ExtGCD(int64(a), int64(b))
		if g != GCD(int64(a), int64(b)) {
			return false
		}
		return int64(a)*u+int64(b)*v == g
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDivides(t *testing.T) {
	cases := []struct {
		g, c int64
		want bool
	}{
		{0, 0, true},
		{0, 1, false},
		{3, 9, true},
		{3, 10, false},
		{3, -9, true},
		{-0, 0, true},
		{1, 12345, true},
	}
	for _, c := range cases {
		if got := Divides(c.g, c.c); got != c.want {
			t.Errorf("Divides(%d, %d) = %v, want %v", c.g, c.c, got, c.want)
		}
	}
}

func TestPosNegParts(t *testing.T) {
	f := func(t32 int32) bool {
		v := int64(t32)
		pp, np := PosPart(v), NegPart(v)
		if pp < 0 || np < 0 {
			return false
		}
		// t = t⁺ − t⁻ and |t| = t⁺ + t⁻, the identities the Banerjee
		// derivation relies on.
		return pp-np == v && pp+np == Abs(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFloorCeilDiv(t *testing.T) {
	cases := []struct{ a, b, floor, ceil int64 }{
		{7, 2, 3, 4},
		{-7, 2, -4, -3},
		{7, -2, -4, -3},
		{-7, -2, 3, 4},
		{6, 3, 2, 2},
		{-6, 3, -2, -2},
		{0, 5, 0, 0},
	}
	for _, c := range cases {
		if got := FloorDiv(c.a, c.b); got != c.floor {
			t.Errorf("FloorDiv(%d, %d) = %d, want %d", c.a, c.b, got, c.floor)
		}
		if got := CeilDiv(c.a, c.b); got != c.ceil {
			t.Errorf("CeilDiv(%d, %d) = %d, want %d", c.a, c.b, got, c.ceil)
		}
	}
}

func TestFloorCeilDivProperty(t *testing.T) {
	f := func(a int32, b int32) bool {
		if b == 0 {
			return true
		}
		A, B := int64(a), int64(b)
		fd := FloorDiv(A, B)
		cd := CeilDiv(A, B)
		// Floor remainder r = A − fd·B lies in [0, |B|) with the sign
		// of B; ceil remainder lies in (−|B|, 0] with the sign of −B.
		rf := A - fd*B
		rc := A - cd*B
		if Abs(rf) >= Abs(B) || Abs(rc) >= Abs(B) {
			return false
		}
		if rf != 0 && (rf < 0) != (B < 0) {
			return false
		}
		if rc != 0 && (rc < 0) == (B < 0) {
			return false
		}
		// Floor and ceil differ by exactly 0 (exact division) or 1.
		if rf == 0 {
			return fd == cd
		}
		return cd == fd+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
