package deptest

import (
	"fmt"

	"arraycomp/internal/idxprop"
)

// Property-conditional dependence verdicts (Bhosale & Eigenmann's
// subscripted-subscript extension). The static tests in this package
// cannot decide questions whose subscripts load another array —
// `out!(idx!(i))` is not affine in the loop variables — but they become
// decidable *conditionally*: independence holds provided the index
// array satisfies named properties (injectivity, monotonicity, value
// range). The conditions are discharged either statically, when the
// index array's defining comprehension is visible in-program
// (idxprop.Infer), or by a one-pass runtime verifier executed before
// the plan that relies on the verdict (idxprop.Verify, lowered as the
// loop IR's BVerify guard).

// CondVerdict is one property-conditional verdict: Outcome holds
// provided every claim in Claims does.
type CondVerdict struct {
	// Outcome names what is being claimed conditionally:
	// "independent", "in-bounds", or "order-aligned".
	Outcome string
	// Claims are the index-array properties the outcome depends on.
	Claims idxprop.Claims
	// Detail says which reference pair or pattern produced the verdict.
	Detail string
}

// String renders the paper-style notation, e.g.
// "independent-if {inj(p), range(p,1..8)}".
func (v CondVerdict) String() string {
	return fmt.Sprintf("%s-if %s", v.Outcome, v.Claims.Normalize())
}

// ScatterIndependent is the output-dependence rule for a monolithic
// scatter `out!(idx!(g))` over distinct positions g: two distinct
// instances write distinct elements — no collision — iff idx is
// injective, and every write is in bounds iff idx's values lie within
// out's index range [lo..hi]. (Injectivity of the whole index array
// implies injectivity on any traversed window.)
func ScatterIndependent(idxArr string, lo, hi int64) CondVerdict {
	return CondVerdict{
		Outcome: "independent",
		Claims: idxprop.Claims{
			{Array: idxArr, Kind: idxprop.KInjective},
			{Array: idxArr, Kind: idxprop.KRange, Lo: lo, Hi: hi},
		}.Normalize(),
		Detail: fmt.Sprintf("scatter through %s", idxArr),
	}
}

// GatherInBounds is the bounds rule for an indirect read
// `x!(idx!(g))`: the outer selection is in bounds iff idx's values lie
// within x's index range [lo..hi]. No ordering property is needed —
// reads cannot collide.
func GatherInBounds(idxArr string, lo, hi int64) CondVerdict {
	return CondVerdict{
		Outcome: "in-bounds",
		Claims: idxprop.Claims{
			{Array: idxArr, Kind: idxprop.KRange, Lo: lo, Hi: hi},
		}.Normalize(),
		Detail: fmt.Sprintf("gather through %s", idxArr),
	}
}

// AccumAligned is the reduction rule for a commutative accumArray
// writing `out!(idx!(g))` with g traversing idx positions in
// increasing order: chunk boundaries aligned to the next change of
// idx's value partition the iterations so that all writes to one
// element stay inside one chunk — bitwise equal to sequential
// left-to-right accumulation — iff idx is non-decreasing; writes are
// in bounds iff its values lie within out's range [lo..hi].
func AccumAligned(idxArr string, lo, hi int64) CondVerdict {
	return CondVerdict{
		Outcome: "order-aligned",
		Claims: idxprop.Claims{
			{Array: idxArr, Kind: idxprop.KMonoNonDec},
			{Array: idxArr, Kind: idxprop.KRange, Lo: lo, Hi: hi},
		}.Normalize(),
		Detail: fmt.Sprintf("aligned accumulation through %s", idxArr),
	}
}
