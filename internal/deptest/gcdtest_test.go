package deptest

import (
	"math/rand"
	"testing"
)

func mustVector(t *testing.T, s string) Vector {
	t.Helper()
	v, err := ParseVector(s)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestGCDTestClassic(t *testing.T) {
	// a!(2i) vs a!(2j+1): even vs odd subscripts can never collide.
	p := NewProblem(0, []int64{2}, 1, []int64{2}, []int64{100})
	ok, err := GCDTestAny(p)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("GCD test must refute dependence between 2i and 2j+1")
	}

	// a!(2i) vs a!(2j): possible (gcd 2 divides 0).
	p = NewProblem(0, []int64{2}, 0, []int64{2}, []int64{100})
	if ok, _ := GCDTestAny(p); !ok {
		t.Error("GCD test must allow dependence between 2i and 2j")
	}

	// a!(3i) vs a!(3j+1): impossible.
	p = NewProblem(0, []int64{3}, 1, []int64{3}, []int64{100})
	if ok, _ := GCDTestAny(p); ok {
		t.Error("GCD test must refute dependence between 3i and 3j+1")
	}
}

func TestGCDTestIgnoresBounds(t *testing.T) {
	// a!(i) vs a!(j+1000) with i,j ∈ [1..10]: clearly impossible, but
	// the GCD test cannot see bounds (gcd 1 divides everything).
	p := NewProblem(0, []int64{1}, 1000, []int64{1}, []int64{10})
	if ok, _ := GCDTestAny(p); !ok {
		t.Error("GCD test should (wrongly but by design) allow the out-of-range dependence")
	}
	// ...while the Banerjee test refutes it.
	if ok, _ := BanerjeeTest(p, AnyVector(1), false); ok {
		t.Error("Banerjee test must refute the out-of-range dependence")
	}
}

func TestGCDTestDirectionEqual(t *testing.T) {
	// Under (=) the instance variables collapse: a!(2i) vs a!(2i+1)
	// within the same instance needs (2−2)x = 1, impossible; under (*)
	// it needs gcd(2,2)=2 | 1, also impossible.
	p := NewProblem(0, []int64{2}, 1, []int64{2}, []int64{50})
	if ok, _ := GCDTest(p, mustVector(t, "(=)")); ok {
		t.Error("(=) collision between 2i and 2i+1 must be refuted")
	}
	// a!(3i) vs a!(i): under (=) needs (3−1)x = 0 ⇒ x=0 out of range,
	// but the GCD test only checks divisibility: 2 | 0 holds, so it
	// must answer "possible". (The exact test refines this; see below.)
	p = NewProblem(0, []int64{3}, 0, []int64{1}, []int64{50})
	if ok, _ := GCDTest(p, mustVector(t, "(=)")); !ok {
		t.Error("GCD (=) test is divisibility-only and must allow 3i vs i")
	}
	res, err := ExactTest(p, mustVector(t, "(=)"), DefaultExactBudget)
	if err != nil {
		t.Fatal(err)
	}
	if res != Impossible {
		t.Errorf("exact (=) test for 3i vs i: got %v, want impossible (x=0 is out of range)", res)
	}
}

func TestGCDTestEmptyCoefficients(t *testing.T) {
	// Zero-loop problem: dependence iff constants match.
	p := NewProblem(5, nil, 5, nil, nil)
	if ok, _ := GCDTestAny(p); !ok {
		t.Error("constant subscripts 5 and 5 must depend")
	}
	p = NewProblem(5, nil, 6, nil, nil)
	if ok, _ := GCDTestAny(p); ok {
		t.Error("constant subscripts 5 and 6 must not depend")
	}
}

func TestGCDTestVectorArity(t *testing.T) {
	p := NewProblem(0, []int64{1, 2}, 0, []int64{1, 2}, []int64{10, 10})
	if _, err := GCDTest(p, mustVector(t, "(=)")); err == nil {
		t.Error("arity mismatch must be an error")
	}
}

// TestGCDTestSoundness: the GCD test must never refute a dependence the
// brute-force oracle finds (it is a necessary condition).
func TestGCDTestSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	dirs := []Direction{DirAny, DirLess, DirEqual, DirGreater}
	for trial := 0; trial < 2000; trial++ {
		d := 1 + rng.Intn(2)
		a := make([]int64, d)
		b := make([]int64, d)
		m := make([]int64, d)
		v := make(Vector, d)
		for k := 0; k < d; k++ {
			a[k] = int64(rng.Intn(9) - 4)
			b[k] = int64(rng.Intn(9) - 4)
			m[k] = int64(1 + rng.Intn(5))
			v[k] = dirs[rng.Intn(len(dirs))]
		}
		p := NewProblem(int64(rng.Intn(11)-5), a, int64(rng.Intn(11)-5), b, m)
		ok, err := GCDTest(p, v)
		if err != nil {
			t.Fatal(err)
		}
		if bruteForceDependence(p, v) && !ok {
			t.Fatalf("GCD test refuted a real dependence: %+v %v", p, v)
		}
	}
}
