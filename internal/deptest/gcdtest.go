package deptest

// GCDTest is the paper's first inexact test (derived from Theorem 1,
// the any-integer-solution test): a dependence can exist under
// direction vector v only if
//
//	gcd(…, a_j − b_j, …, a_k, …, b_k, …) | b_0 − a_0
//
// where j ranges over Q= (loops constrained to x=y, whose two instance
// variables collapse into one with coefficient a_j − b_j) and k ranges
// over Q< ∪ Q> ∪ Q* (loops whose instances stay independent,
// contributing both coefficients).
//
// It returns true when a dependence is *possible* (the test cannot
// refute it) and false when a dependence is *impossible*. The loop
// bounds are ignored entirely — that is exactly the information this
// test gives up relative to the exact test.
func GCDTest(p Problem, v Vector) (possible bool, err error) {
	if err := p.Validate(); err != nil {
		return false, err
	}
	if err := p.checkVector(v); err != nil {
		return false, err
	}
	if p.EmptyDomain() {
		// Zero iteration points: trivially independent. (The other
		// tests agree; see Problem.EmptyDomain.)
		return false, nil
	}
	var s SatOps
	var g int64
	for k := range p.A {
		if v[k] == DirEqual {
			g = GCD(g, s.Sub(p.A[k], p.B[k]))
		} else {
			g = GCD(g, p.A[k])
			g = GCD(g, p.B[k])
		}
	}
	delta, exact := p.DeltaSat()
	if s.Overflowed || !exact {
		// A clamped coefficient or constant would make the divisibility
		// check meaningless; the test simply cannot refute.
		return true, nil
	}
	return Divides(g, delta), nil
}

// GCDTestAny runs the GCD test with no direction constraints, the
// starting point of the refinement hierarchy.
func GCDTestAny(p Problem) (bool, error) {
	return GCDTest(p, AnyVector(p.NumLoops()))
}
