package soak

import (
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"arraycomp/internal/serve"
	"arraycomp/internal/testutil"
)

// startFleet brings up n in-process haccd replicas on real loopback
// listeners sharing one consistent-hash peer list, and returns their
// base URLs plus the servers (for cache-stat assertions).
func startFleet(t *testing.T, n int, mut func(c *serve.Config)) ([]string, []*serve.Server) {
	t.Helper()
	listeners := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range listeners {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = l
		addrs[i] = l.Addr().String()
	}
	servers := make([]*serve.Server, n)
	urls := make([]string, n)
	for i := range listeners {
		cfg := serve.DefaultConfig()
		cfg.CacheEntries = 256
		cfg.Peers = append([]string(nil), addrs...)
		cfg.Self = addrs[i]
		if mut != nil {
			mut(&cfg)
		}
		s, err := serve.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewUnstartedServer(s.Handler())
		ts.Listener.Close()
		ts.Listener = listeners[i]
		ts.Start()
		t.Cleanup(ts.Close)
		servers[i] = s
		urls[i] = "http://" + addrs[i]
	}
	return urls, servers
}

// The headline soak: 100k Zipf-mixed requests sprayed across a
// 3-replica fleet. Routing concentrates each program on its owner, so
// the fleet compiles each program at most ~once and the aggregate hit
// rate clears 90% by a wide margin. Zero shedding, zero 5xx.
func TestSoakFleetHitRate(t *testing.T) {
	if testing.Short() {
		t.Skip("100k-request soak skipped in -short mode")
	}
	urls, servers := startFleet(t, 3, nil)
	res, err := Run(Config{
		Targets:     urls,
		Requests:    100_000,
		Concurrency: 16,
		Programs:    64,
		ZipfS:       1.2,
		Seed:        42,
		N:           32,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Log(res.String())
	if got := res.HitRate(); got < 0.90 {
		t.Errorf("aggregate hit rate = %.4f, want >= 0.90", got)
	}
	if res.HTTP5xx != 0 {
		t.Errorf("soak saw %d 5xx responses, want 0", res.HTTP5xx)
	}
	if res.Shed != 0 {
		t.Errorf("soak was shed %d times below the watermark, want 0", res.Shed)
	}
	if res.Errors != 0 {
		t.Errorf("soak saw %d transport/decode errors, want 0", res.Errors)
	}
	// Warm-replica routing: fleet-wide misses stay within a small
	// multiple of the program count (a dead-heat race on a cold key can
	// double-compile, but nothing worse).
	var misses uint64
	for _, s := range servers {
		misses += s.CacheStats().Misses
	}
	if misses > 3*64 {
		t.Errorf("fleet-wide misses = %d for 64 programs; routing is not concentrating keys", misses)
	}
	// The machine-readable line must carry every gated counter.
	line := res.String()
	for _, field := range []string{"SOAK-OK", "hit_rate=", "shed=", "http5xx=", "p50_us=", "p99_us=", "throughput_rps="} {
		if !strings.Contains(line, field) {
			t.Errorf("result line missing %q: %s", field, line)
		}
	}
}

// Above the watermark the fleet sheds instead of queueing without
// bound: a starved single-slot replica answers 429s, and the soak
// counts them. The slot is pinned by a genuinely slow batch (a long
// reduction holds the concurrency slot for seconds) so the test does
// not depend on request timing — important on a single-core host,
// where fast handlers serialize and a queue can never form naturally.
func TestSoakShedsAboveWatermark(t *testing.T) {
	urls, servers := startFleet(t, 1, func(c *serve.Config) {
		c.Concurrency = 1
		c.QueueDepth = 1
		// The slot-holding batch burns ~3s of CPU natively but >30s
		// under the race detector; keep the server's request timeout
		// out of the picture so it finishes 200 either way.
		c.Timeout = 3 * time.Minute
	})

	// Occupy the only slot: 32 O(n) reductions with an O(1) result
	// keep the /evalbatch handler in flight for seconds of CPU.
	slowBatch := `{"source": "h = accumArray (+) 0.0 (0,9) [ (3*i) mod 10 := 1.0 | i <- [1..n] ]", "params": {"n": 6000000}, "evals": [` +
		strings.Repeat(`{"seed": 1},`, 31) + `{"seed": 1}]}`
	batchDone := make(chan int, 1)
	go func() {
		resp, err := http.Post(urls[0]+"/evalbatch", "application/json", strings.NewReader(slowBatch))
		if err != nil {
			batchDone <- -1
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		batchDone <- resp.StatusCode
	}()
	testutil.WaitFor(t, "slow batch to occupy the concurrency slot", func() bool {
		_, inflight := servers[0].DebugLoad()
		return inflight == 1
	})

	res, err := Run(Config{
		Targets:     urls,
		Requests:    64,
		Concurrency: 8, // 8 workers into 1 (held) slot + 1 queue seat
		Programs:    4,
		Seed:        7,
		N:           64,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Log(res.String())
	if res.Shed == 0 {
		t.Error("8-way traffic into a starved 1-slot 1-queue replica never shed; admission control is not engaging")
	}
	if res.HTTP5xx != 0 {
		t.Errorf("shedding must be 429, not 5xx; saw %d 5xx", res.HTTP5xx)
	}
	if code := <-batchDone; code != http.StatusOK {
		t.Fatalf("slot-holding batch finished with status %d", code)
	}

	// The same replica below the watermark sheds nothing.
	res2, err := Run(Config{
		Targets:     urls,
		Requests:    200,
		Concurrency: 1,
		Programs:    4,
		Seed:        7,
		N:           64,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Shed != 0 {
		t.Errorf("sequential traffic shed %d times, want 0", res2.Shed)
	}
}
