// Package soak drives a haccd replica or fleet with a Zipf-distributed
// program mix and reports cache behaviour under sustained load.
//
// The workload models the fleet argument quantitatively: real plan
// traffic is heavy-tailed (a few hot programs dominate, a long tail of
// rare ones), which is exactly the regime where a content-addressed
// cache pays off — the hot head hits memory, the warm middle hits
// disk, and only the cold tail compiles. A uniform mix would understate
// the cache; a single program would overstate it. Zipf(s) spans both
// extremes with one knob.
//
// The engine is shared by `cmd/hacsoak` (CLI against a running daemon)
// and the fleet soak tests (in-process replicas), so the numbers a CI
// gate checks and the numbers an operator measures come from the same
// code path.
package soak

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Config describes one soak run.
type Config struct {
	// Targets are base URLs (e.g. "http://127.0.0.1:8347"). With more
	// than one, workers spread requests round-robin across the fleet —
	// every replica fields traffic for every program, so routing (not
	// client-side pinning) is what keeps the hit rate up.
	Targets []string
	// Requests is the total request count across all workers.
	Requests int
	// Concurrency is the worker count (default 8).
	Concurrency int
	// Programs is the number of distinct programs in the mix (default 64).
	Programs int
	// ZipfS is the Zipf exponent s > 1 (default 1.2); larger = more
	// skew toward the hot head.
	ZipfS float64
	// Seed makes the program-pick sequence reproducible.
	Seed int64
	// N is the array-size parameter every program is compiled with
	// (default 64).
	N int64
	// Certify compiles every program with the certification audit on.
	// Only certified plans are admitted to the disk tier, so a soak
	// meant to exercise restart warmth must set this.
	Certify bool
	// Client overrides the HTTP client (tests); nil builds one with
	// keep-alive sized to Concurrency.
	Client *http.Client
}

// Result is what one soak run observed.
type Result struct {
	Requests   int           // completed requests (any status)
	Hits       uint64        // 200s served from the memory tier
	Misses     uint64        // 200s that compiled
	Disk       uint64        // 200s restored from the disk tier
	Shed       uint64        // 429s
	HTTP5xx    uint64        // 5xx responses
	Errors     uint64        // transport/decode failures
	Duration   time.Duration // wall clock of the whole run
	P50        time.Duration // latency percentiles over completed requests
	P99        time.Duration
	Throughput float64 // completed requests per second
}

// HitRate is warm serves (memory + disk) over all evaluated requests.
func (r Result) HitRate() float64 {
	total := r.Hits + r.Misses + r.Disk
	if total == 0 {
		return 0
	}
	return float64(r.Hits+r.Disk) / float64(total)
}

// String renders the machine-readable result line the CI gate greps.
func (r Result) String() string {
	return fmt.Sprintf(
		"SOAK-OK requests=%d hit_rate=%.4f hits=%d misses=%d disk=%d shed=%d http5xx=%d errors=%d throughput_rps=%.1f p50_us=%d p99_us=%d",
		r.Requests, r.HitRate(), r.Hits, r.Misses, r.Disk, r.Shed, r.HTTP5xx, r.Errors,
		r.Throughput, r.P50.Microseconds(), r.P99.Microseconds())
}

// programSource returns the i-th program of the mix. Each differs in a
// constant, so each has its own cache key but identical compile cost —
// the mix stresses the cache, not the compiler.
func programSource(i int) string {
	return fmt.Sprintf("a = array (1,n) [ j := j * %d.0 + j | j <- [1..n] ]", i+1)
}

// evalRequestBody matches haccd's POST /eval request shape.
type evalRequestBody struct {
	Source  string           `json:"source"`
	Params  map[string]int64 `json:"params"`
	Options *optionsBody     `json:"options,omitempty"`
	Seed    int64            `json:"seed,omitempty"`
}

type optionsBody struct {
	Certify bool `json:"certify,omitempty"`
}

// evalResponseBody is the slice of haccd's /eval response the soak
// engine cares about.
type evalResponseBody struct {
	Cache string `json:"cache"`
}

// Run executes the configured soak and aggregates what came back.
// Only transport-level failures abort the run; HTTP-level failures
// (shed, 5xx) are counted and reported — judging them is the caller's
// job (CI gates on the counters).
func Run(cfg Config) (Result, error) {
	if len(cfg.Targets) == 0 {
		return Result{}, fmt.Errorf("soak: no targets")
	}
	if cfg.Requests <= 0 {
		return Result{}, fmt.Errorf("soak: requests must be positive")
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 8
	}
	if cfg.Programs <= 0 {
		cfg.Programs = 64
	}
	if cfg.ZipfS <= 1 {
		cfg.ZipfS = 1.2
	}
	if cfg.N <= 0 {
		cfg.N = 64
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{
			Timeout: 60 * time.Second,
			Transport: &http.Transport{
				MaxIdleConns:        cfg.Concurrency * 2,
				MaxIdleConnsPerHost: cfg.Concurrency,
			},
		}
	}
	for i, tgt := range cfg.Targets {
		cfg.Targets[i] = strings.TrimRight(tgt, "/")
	}

	var (
		res       Result
		latencies = make([]int64, cfg.Requests)
		next      atomic.Int64 // request ordinals, claimed by workers
		wg        sync.WaitGroup
	)
	t0 := time.Now()
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Per-worker RNG: same Seed → same aggregate mix, no lock
			// contention on a shared source.
			rng := rand.New(rand.NewSource(cfg.Seed + int64(w)*7919))
			zipf := rand.NewZipf(rng, cfg.ZipfS, 1, uint64(cfg.Programs-1))
			for {
				i := next.Add(1) - 1
				if i >= int64(cfg.Requests) {
					return
				}
				prog := int(zipf.Uint64())
				req := evalRequestBody{
					Source: programSource(prog),
					Params: map[string]int64{"n": cfg.N},
					Seed:   i,
				}
				if cfg.Certify {
					req.Options = &optionsBody{Certify: true}
				}
				body, _ := json.Marshal(req)
				target := cfg.Targets[i%int64(len(cfg.Targets))]
				rt0 := time.Now()
				resp, err := client.Post(target+"/eval", "application/json", bytes.NewReader(body))
				latencies[i] = time.Since(rt0).Nanoseconds()
				if err != nil {
					atomic.AddUint64(&res.Errors, 1)
					continue
				}
				switch {
				case resp.StatusCode == http.StatusOK:
					var er evalResponseBody
					if decodeErr := json.NewDecoder(resp.Body).Decode(&er); decodeErr != nil {
						atomic.AddUint64(&res.Errors, 1)
					} else {
						switch er.Cache {
						case "hit":
							atomic.AddUint64(&res.Hits, 1)
						case "disk":
							atomic.AddUint64(&res.Disk, 1)
						default:
							atomic.AddUint64(&res.Misses, 1)
						}
					}
				case resp.StatusCode == http.StatusTooManyRequests:
					atomic.AddUint64(&res.Shed, 1)
				case resp.StatusCode >= 500:
					atomic.AddUint64(&res.HTTP5xx, 1)
				default:
					atomic.AddUint64(&res.Errors, 1)
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(w)
	}
	wg.Wait()
	res.Duration = time.Since(t0)
	res.Requests = cfg.Requests
	sort.Slice(latencies, func(a, b int) bool { return latencies[a] < latencies[b] })
	res.P50 = time.Duration(latencies[cfg.Requests/2])
	res.P99 = time.Duration(latencies[cfg.Requests*99/100])
	if secs := res.Duration.Seconds(); secs > 0 {
		res.Throughput = float64(cfg.Requests) / secs
	}
	return res, nil
}
