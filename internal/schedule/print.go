package schedule

import (
	"fmt"
	"strings"
)

// Dump renders the schedule as an indented outline for diagnostics and
// golden tests, e.g.:
//
//	do i forward [1..100]
//	  clause0
//	  clause1
func (r *Result) Dump() string {
	var b strings.Builder
	if r.Thunked {
		fmt.Fprintf(&b, "thunked: %s\n", r.Reason)
		return b.String()
	}
	writeNodes(&b, r.Nodes, 0)
	return b.String()
}

func writeNodes(b *strings.Builder, nodes []*Node, depth int) {
	for _, n := range nodes {
		for i := 0; i < depth; i++ {
			b.WriteString("  ")
		}
		if n.IsLoop() {
			l := n.Loop.Loop
			par := ""
			if n.Parallel {
				par = " parallel"
			} else if n.Doacross {
				par = " doacross"
			}
			fmt.Fprintf(b, "do %s %s%s [%d..%d step %d]\n", l.Var, n.Dir, par, l.First, l.Last, l.Stride)
			writeNodes(b, n.Body, depth+1)
			continue
		}
		fmt.Fprintf(b, "%s\n", n.Clause.Label())
	}
}

// Clauses returns every clause in the schedule in execution order of a
// single traversal (loop bodies flattened depth-first).
func (r *Result) Clauses() []*Node {
	var out []*Node
	var walk func(ns []*Node)
	walk = func(ns []*Node) {
		for _, n := range ns {
			if n.IsLoop() {
				walk(n.Body)
			} else {
				out = append(out, n)
			}
		}
	}
	walk(r.Nodes)
	return out
}
