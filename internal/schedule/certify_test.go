package schedule

import (
	"strings"
	"testing"
)

func TestCertifyForwardSchedule(t *testing.T) {
	// Paper example 1: the forward schedule is legal; every order
	// claim must certify with no falsifications.
	src := `a = array (1,300)
	  [* [3*i := 1.0] ++
	     [3*i-1 := 0.5 * a!(3*(i-1))] ++
	     [3*i-2 := 0.5 * a!(3*i)]
	   | i <- [1..100] *]`
	res := analyzeSrc(t, src, nil)
	sched, err := Build(res, nil)
	if err != nil || sched.Thunked {
		t.Fatalf("schedule: err=%v thunked=%v", err, sched.Thunked)
	}
	rep := Certify(res, sched, false)
	if rep.FalsifiedCount != 0 {
		t.Fatalf("legal schedule falsified:\n%s", rep)
	}
	if rep.CertifiedCount == 0 {
		t.Fatalf("no order claims certified: %s", rep.Summary())
	}
}

func TestCertifyCatchesFlippedDirection(t *testing.T) {
	// Forge an illegal schedule by flipping every loop direction: the
	// (<)-carried flow dependence now runs backward and the write no
	// longer precedes its read.
	src := `a = array (1,300)
	  [* [3*i := 1.0] ++
	     [3*i-1 := 0.5 * a!(3*(i-1))]
	   | i <- [1..100] *]`
	res := analyzeSrc(t, src, nil)
	sched, err := Build(res, nil)
	if err != nil || sched.Thunked {
		t.Fatalf("schedule: err=%v thunked=%v", err, sched.Thunked)
	}
	var flip func(ns []*Node)
	flip = func(ns []*Node) {
		for _, n := range ns {
			if n.IsLoop() {
				n.Dir = -n.Dir
				flip(n.Body)
			}
		}
	}
	flip(sched.Nodes)
	rep := Certify(res, sched, false)
	if rep.FalsifiedCount == 0 {
		t.Fatalf("flipped schedule survived certification:\n%s", rep)
	}
	found := false
	for _, c := range rep.Failures {
		if strings.Contains(c.Claim, "flow") && len(c.Witness) > 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no witness-carrying flow falsification:\n%s", rep)
	}
}

func TestCertifyThunkedMakesNoClaims(t *testing.T) {
	// The Gauss-Seidel relaxation has an anti cycle under KeepAll; the
	// thunk fallback claims nothing.
	src := `param n;
	a2 = bigupd a
	  [ i := 0.5*(a!(i-1) + a!(i+1)) | i <- [2..n-1] ]`
	env := map[string]int64{"n": 30}
	res := analyzeSrc(t, src, env)
	sched, err := Build(res, KeepAll)
	if err != nil {
		t.Fatal(err)
	}
	if !sched.Thunked {
		t.Skip("schedule unexpectedly static; relaxed-path test covers it")
	}
	rep := Certify(res, sched, false)
	if rep.CertifiedCount+rep.FalsifiedCount+rep.SkippedCount != 0 {
		t.Fatalf("thunked schedule produced certificates: %s", rep.Summary())
	}
}

func TestCertifyRelaxedAnti(t *testing.T) {
	// Same relaxation built with anti edges dropped (the node-splitting
	// path): certification with antiRelaxed must skip the anti claim,
	// and without it must falsify — the emitted order really does kill
	// a!(i-1) before the read, which is exactly what node splitting
	// compensates for.
	src := `param n;
	a2 = bigupd a
	  [ i := 0.5*(a!(i-1) + a!(i+1)) | i <- [2..n-1] ]`
	env := map[string]int64{"n": 30}
	res := analyzeSrc(t, src, env)
	sched, err := Build(res, KeepFlowOutput)
	if err != nil || sched.Thunked {
		t.Fatalf("relaxed schedule: err=%v thunked=%v", err, sched.Thunked)
	}
	rep := Certify(res, sched, true)
	if rep.FalsifiedCount != 0 {
		t.Fatalf("relaxed certification falsified:\n%s", rep)
	}
	skippedAnti := false
	for _, c := range rep.Skips {
		if strings.Contains(c.Claim, "anti") {
			skippedAnti = true
		}
	}
	if !skippedAnti {
		t.Fatalf("anti claim not skipped under relaxation: %s", rep.Summary())
	}

	strict := Certify(res, sched, false)
	if strict.FalsifiedCount == 0 {
		t.Fatalf("relaxed order passed strict anti certification:\n%s", strict)
	}
}

func TestCertifyLargeBoundsClamped(t *testing.T) {
	src := `a = array (1,100000) [* [i := 1.0] | i <- [1..100000] *]`
	res := analyzeSrc(t, src, nil)
	sched, err := Build(res, nil)
	if err != nil || sched.Thunked {
		t.Fatalf("schedule: err=%v thunked=%v", err, sched.Thunked)
	}
	rep := Certify(res, sched, false)
	if rep.FalsifiedCount != 0 {
		t.Fatalf("falsified:\n%s", rep)
	}
}
