// Package schedule implements the static scheduling algorithms of the
// paper's section 8: given the labeled dependence graph of an array
// comprehension, it chooses loop directions, orders s/v clauses within
// loop instances, and splits loops into consecutive passes so that
// every dependence source is computed before its sink — the condition
// for compiling the array without thunks.
//
// The scheduler recurses over the normalized comprehension tree. At
// each loop level it treats nested inner loops as single entities,
// classifies the level's dependence edges into loop-carried ('<'/'>',
// constraining the loop direction) and loop-independent ('=' or '()',
// constraining entity order within an instance), collapses strongly
// connected components, and applies the paper's multi-pass static
// scheduling algorithm (section 8.1.3) built on the modified-DFS
// 'not-ready' marking. Edges whose leading component is '=' are
// stripped and pushed down to the inner level (section 8.2.3).
//
// When a cycle defeats static scheduling — a cycle containing both '<'
// and '>' carried edges, or a loop-independent '='/'()' cycle — the
// scheduler reports a thunk fallback (or, for cycles containing an
// anti-dependence edge, leaves node splitting to the code generator,
// section 9).
package schedule
