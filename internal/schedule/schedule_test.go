package schedule

import (
	"strings"
	"testing"

	"arraycomp/internal/analysis"
	"arraycomp/internal/lang"
	"arraycomp/internal/parser"
)

func analyzeSrc(t *testing.T, src string, env map[string]int64) *analysis.Result {
	t.Helper()
	prog, err := parser.ParseProgram(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	def := prog.Defs[0]
	var bounds analysis.ArrayBounds
	if def.Kind == lang.BigUpd {
		if _, ok := env["m"]; ok {
			bounds = analysis.ArrayBounds{Lo: []int64{1, 1}, Hi: []int64{env["m"], env["n"]}}
		} else {
			bounds = analysis.ArrayBounds{Lo: []int64{1}, Hi: []int64{env["n"]}}
		}
	} else {
		bounds, err = analysis.EvalBounds(def, env)
		if err != nil {
			t.Fatal(err)
		}
	}
	res, err := analysis.Analyze(def, env, bounds, nil, analysis.Options{})
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return res
}

func build(t *testing.T, src string, env map[string]int64) *Result {
	t.Helper()
	sched, err := Build(analyzeSrc(t, src, env), nil)
	if err != nil {
		t.Fatalf("schedule: %v", err)
	}
	return sched
}

// loopDirs collects "var:direction" for every loop pass in order.
func loopDirs(r *Result) []string {
	var out []string
	var walk func(ns []*Node)
	walk = func(ns []*Node) {
		for _, n := range ns {
			if n.IsLoop() {
				out = append(out, n.Loop.Loop.Var+":"+n.Dir.String())
				walk(n.Body)
			}
		}
	}
	walk(r.Nodes)
	return out
}

func TestSquaresTrivialSchedule(t *testing.T) {
	r := build(t, `a = array (1,n) [ i := i*i | i <- [1..n] ]`, map[string]int64{"n": 10})
	if r.Thunked {
		t.Fatalf("thunked: %s", r.Reason)
	}
	dirs := loopDirs(r)
	if len(dirs) != 1 || dirs[0] != "i:forward" {
		t.Errorf("dirs = %v", dirs)
	}
	if r.LoopPasses != 1 {
		t.Errorf("passes = %d", r.LoopPasses)
	}
}

func TestForwardChain(t *testing.T) {
	// a!i needs a!(i-1): (<) edge forces forward.
	r := build(t, `a = array (1,n)
	  ([ 1 := 1.0 ] ++ [ i := a!(i-1) + 1.0 | i <- [2..n] ])`, map[string]int64{"n": 10})
	if r.Thunked {
		t.Fatalf("thunked: %s", r.Reason)
	}
	dirs := loopDirs(r)
	if len(dirs) != 1 || dirs[0] != "i:forward" {
		t.Errorf("dirs = %v", dirs)
	}
	// The border clause must come before the loop (a "()" ordering
	// edge feeds the first loop instance).
	if r.Nodes[0].IsLoop() || !r.Nodes[1].IsLoop() {
		t.Errorf("order wrong:\n%s", r.Dump())
	}
}

func TestBackwardChain(t *testing.T) {
	// a!i needs a!(i+1): (>) edge forces backward.
	r := build(t, `a = array (1,n)
	  ([ n := 1.0 ] ++ [ i := a!(i+1) + 1.0 | i <- [1..n-1] ])`, map[string]int64{"n": 10})
	if r.Thunked {
		t.Fatalf("thunked: %s", r.Reason)
	}
	dirs := loopDirs(r)
	if len(dirs) != 1 || dirs[0] != "i:backward" {
		t.Errorf("dirs = %v", dirs)
	}
}

// TestPaperExample1Schedule: clauses at 3i, 3i−1 (reads 3(i−1)), 3i−2
// (reads 3i): edges 1→2 (<), 1→3 (=). Forward loop; clause 1 before
// clause 3 within the instance; clause 2 anywhere.
func TestPaperExample1Schedule(t *testing.T) {
	r := build(t, `a = array (1,300)
	  [* [3*i := 1.0] ++
	     [3*i-1 := 0.5 * a!(3*(i-1))] ++
	     [3*i-2 := 0.5 * a!(3*i)]
	   | i <- [1..100] *]`, nil)
	if r.Thunked {
		t.Fatalf("thunked: %s", r.Reason)
	}
	dirs := loopDirs(r)
	if len(dirs) != 1 || dirs[0] != "i:forward" {
		t.Errorf("dirs = %v", dirs)
	}
	// Within the single pass, clause0 must precede clause2.
	clauses := r.Clauses()
	pos := map[int]int{}
	for i, n := range clauses {
		pos[n.Clause.ID] = i
	}
	if pos[0] > pos[2] {
		t.Errorf("clause0 must precede clause2:\n%s", r.Dump())
	}
	if r.LoopPasses != 1 {
		t.Errorf("expected a single pass, got %d:\n%s", r.LoopPasses, r.Dump())
	}
}

// TestPaperExample2Schedule: the section 5 example 2 shape — inner
// loop forced backward by the (=,>) edge, outer loop forward by the
// (<,…) edges.
func TestPaperExample2Schedule(t *testing.T) {
	r := build(t, `param n, m;
	a = array ((1,0),(2*n, m+1))
	  [* ([* [ (2*i, j)   := a!(2*i-1, j+1) ] ++
	          [ (2*i-1, j) := a!(2*i-2, j+1) ]
	        | j <- [1..m] *]) ++
	     [ (2*i, 0) := a!(2*i-3, 1) ]
	   | i <- [1..n] *]`, map[string]int64{"n": 10, "m": 20})
	if r.Thunked {
		t.Fatalf("thunked: %s", r.Reason)
	}
	dirs := loopDirs(r)
	want := []string{"i:forward", "j:backward"}
	if strings.Join(dirs, ",") != strings.Join(want, ",") {
		t.Errorf("dirs = %v, want %v\n%s", dirs, want, r.Dump())
	}
}

// TestMixedDirectionPassScheduling reproduces section 8.1.2's acyclic
// example (experiment E4): edges A→B(<), B→C(>), A→C(=). Three
// single-clause "vertices" must be scheduled in at most 2 passes
// (paper: "3 different schedules that can collapse the 3 loops into 2
// loops").
func TestMixedDirectionPassScheduling(t *testing.T) {
	// A writes band 1..n; B band n+1..2n reads A at earlier i (<);
	// C band 2n+1..3n reads B at later i (>) and A at same i (=).
	r := build(t, `param n;
	a = array (1,3*n)
	  [* [ i := 1.0 ] ++
	     [ n + i := a!(i-1) ] ++
	     [ 2*n + i := a!(n+i+1) + a!i ]
	   | i <- [2..n-1] *]`, map[string]int64{"n": 20})
	if r.Thunked {
		t.Fatalf("thunked: %s", r.Reason)
	}
	if r.LoopPasses != 2 {
		t.Errorf("passes = %d, want 2 (A and B collapse into the first pass)\n%s", r.LoopPasses, r.Dump())
	}
}

// TestUnschedulableCycleFallsBackToThunks reproduces section 8.1.2's
// cyclic example (experiment E5): A→B(<) and B→A(>) — no loop
// direction and no splitting satisfies both, so the compiler must fall
// back to thunks.
func TestUnschedulableCycleFallsBackToThunks(t *testing.T) {
	// A (band 1..n) reads B at later i; B (band n+1..2n) reads A at
	// earlier i... A→B(<): A's write at earlier i feeds B; B→A(>): B's
	// write at later i feeds A.
	r := build(t, `param n;
	a = array (1,2*n)
	  [* [ i := a!(n+i+1) ] ++
	     [ n + i := a!(i-1) ]
	   | i <- [2..n-1] *]`, map[string]int64{"n": 20})
	if !r.Thunked {
		t.Fatalf("expected thunk fallback, got schedule:\n%s", r.Dump())
	}
	if !strings.Contains(r.Reason, "(<) and (>)") {
		t.Errorf("reason = %q", r.Reason)
	}
}

func TestLoopIndependentCycleFallsBack(t *testing.T) {
	// Two clauses feeding each other in the same instance: (=) cycle.
	r := build(t, `param n;
	a = array (1,2*n)
	  [* [ i := a!(n+i) ] ++
	     [ n + i := a!i ]
	   | i <- [1..n] *]`, map[string]int64{"n": 10})
	if !r.Thunked {
		t.Fatalf("expected thunk fallback:\n%s", r.Dump())
	}
	if !strings.Contains(r.Reason, "(=)") {
		t.Errorf("reason = %q", r.Reason)
	}
}

func TestSelfDependentElementFallsBack(t *testing.T) {
	r := build(t, `a = array (1,n) [ i := a!i + 1.0 | i <- [1..n] ]`, map[string]int64{"n": 5})
	if !r.Thunked {
		t.Fatal("self-dependent element must defeat thunkless compilation")
	}
}

func TestWavefrontSchedule(t *testing.T) {
	r := build(t, `a = array ((1,1),(n,n))
	  ([ (1,j) := 1.0 | j <- [1..n] ] ++
	   [ (i,1) := 1.0 | i <- [2..n] ] ++
	   [ (i,j) := a!(i-1,j) + a!(i,j-1) + a!(i-1,j-1)
	     | i <- [2..n], j <- [2..n] ])`, map[string]int64{"n": 16})
	if r.Thunked {
		t.Fatalf("thunked: %s", r.Reason)
	}
	dirs := loopDirs(r)
	// Border loops (either direction, scheduled forward by default),
	// then the recurrence nest forward-forward.
	want := "j:forward,i:forward,i:forward,j:forward"
	if strings.Join(dirs, ",") != want {
		t.Errorf("dirs = %v\n%s", dirs, r.Dump())
	}
	// Borders must precede the recurrence loop nest.
	if !strings.Contains(r.Dump(), "clause2") {
		t.Fatalf("dump:\n%s", r.Dump())
	}
	last := r.Nodes[len(r.Nodes)-1]
	if !last.IsLoop() || last.Loop.Loop.Var != "i" {
		t.Errorf("recurrence nest must come last:\n%s", r.Dump())
	}
}

func TestInnerBackwardOuterForward(t *testing.T) {
	// Write (i,j) reading (i, j+1) and (i-1, j): inner backward,
	// outer forward.
	r := build(t, `param n, m;
	a = array ((1,1),(n,m))
	  [* [ (i,j) := (if j == m then 1.0 else a!(i,j+1)) +
	                (if i == 1 then 0.0 else a!(i-1,j)) ]
	   | i <- [1..n], j <- [1..m] *]`, map[string]int64{"n": 8, "m": 9})
	if r.Thunked {
		t.Fatalf("thunked: %s", r.Reason)
	}
	dirs := loopDirs(r)
	want := []string{"i:forward", "j:backward"}
	if strings.Join(dirs, ",") != strings.Join(want, ",") {
		t.Errorf("dirs = %v, want %v", dirs, want)
	}
}

func TestBigupdSORInPlaceSchedule(t *testing.T) {
	// Gauss-Seidel/SOR (experiment E10): anti edges (<,=),(=,<) —
	// wait, the reads of already-overwritten neighbours produce
	// (>,=),(=,>) anti edges whose sources must run before sinks:
	// source is the read. Scheduling anti+flow together must find
	// forward/forward with no fallback.
	r := build(t, `param n;
	a2 = bigupd a
	  [* [ (i,j) := 0.25 * (a!(i-1,j) + a!(i,j-1) + a!(i+1,j) + a!(i,j+1)) ]
	   | i <- [2..n-1], j <- [2..n-1] *]`, map[string]int64{"m": 12, "n": 12})
	// The four self anti edges include (>,=) and (=,>) (reads of
	// north/west elements overwritten earlier) — those conflict with
	// (<,=)/(=,<), so pure scheduling must fall back; node splitting
	// (codegen) handles it. What matters here: the fallback reason
	// names the (<)/(>) cycle.
	if !r.Thunked {
		t.Logf("schedule:\n%s", r.Dump())
		t.Fatal("jacobi-style bigupd has conflicting anti directions; expected fallback before node splitting")
	}
}

func TestBigupdTriangularInPlace(t *testing.T) {
	// Prefix scaling reading only the already-final element itself:
	// a2!(i) = 2 * a!(i) — self anti edge (=) only; trivially in place.
	r := build(t, `param n;
	a2 = bigupd a [ i := 2.0 * a!i | i <- [1..n] ]`, map[string]int64{"n": 10})
	if r.Thunked {
		t.Fatalf("scaling must schedule in place: %s", r.Reason)
	}
	dirs := loopDirs(r)
	if len(dirs) != 1 {
		t.Errorf("dirs = %v", dirs)
	}
}

func TestBigupdShiftDirection(t *testing.T) {
	// a2!i = a!(i-1): the read of the element one to the left must
	// happen before that element is overwritten: anti edge (read i-1
	// instance x; write instance y=x... source read at instance x
	// reads element x-1, written by instance x-1: source must precede
	// sink ⇒ (>) anti edge ⇒ backward loop. Classic shift-in-place.
	r := build(t, `param n;
	a2 = bigupd a [ i := a!(i-1) | i <- [2..n] ]`, map[string]int64{"n": 10})
	if r.Thunked {
		t.Fatalf("shift must schedule: %s", r.Reason)
	}
	dirs := loopDirs(r)
	if len(dirs) != 1 || dirs[0] != "i:backward" {
		t.Errorf("dirs = %v, want [i:backward]", dirs)
	}
}

func TestScheduleKeepPredicate(t *testing.T) {
	res := analyzeSrc(t, `param n;
	a2 = bigupd a
	  [* [ (i,j) := 0.25 * (a!(i-1,j) + a!(i,j-1) + a!(i+1,j) + a!(i,j+1)) ]
	   | i <- [2..n-1], j <- [2..n-1] *]`, map[string]int64{"m": 12, "n": 12})
	// Dropping anti edges entirely (node splitting handles them) must
	// leave a schedulable graph.
	r, err := Build(res, KeepFlowOutput)
	if err != nil {
		t.Fatal(err)
	}
	if r.Thunked {
		t.Fatalf("without anti edges the update is trivially schedulable: %s", r.Reason)
	}
}

func TestDumpAndClauses(t *testing.T) {
	r := build(t, `a = array (1,n) [ i := i*i | i <- [1..n] ]`, map[string]int64{"n": 4})
	d := r.Dump()
	// No dependences at all: the loop is both forward and parallel.
	if !strings.Contains(d, "do i forward parallel [1..4 step 1]") || !strings.Contains(d, "clause0") {
		t.Errorf("dump:\n%s", d)
	}
	if len(r.Clauses()) != 1 {
		t.Error("Clauses() wrong")
	}
	thunked := &Result{Thunked: true, Reason: "because"}
	if !strings.Contains(thunked.Dump(), "thunked: because") {
		t.Error("thunked dump wrong")
	}
}

func TestDirectionString(t *testing.T) {
	if Forward.String() != "forward" || Backward.String() != "backward" {
		t.Error("direction strings wrong")
	}
}

// TestParallelMarks: loops with carried dependences must not be marked
// parallel; dependence-free loops must be.
func TestParallelMarks(t *testing.T) {
	// Recurrence: the (<) self edge is carried — not parallel.
	r := build(t, `a = array (1,n)
	  ([ 1 := 1.0 ] ++ [ i := a!(i-1) + 1.0 | i <- [2..n] ])`, map[string]int64{"n": 10})
	for _, n := range r.Nodes {
		if n.IsLoop() && n.Parallel {
			t.Errorf("carried loop marked parallel:\n%s", r.Dump())
		}
	}
	// Wavefront: the border loops are dependence-free (parallel), the
	// recurrence nest is not.
	w := build(t, `a = array ((1,1),(n,n))
	  ([ (1,j) := 1.0 | j <- [1..n] ] ++
	   [ (i,1) := 1.0 | i <- [2..n] ] ++
	   [ (i,j) := a!(i-1,j) + a!(i,j-1) | i <- [2..n], j <- [2..n] ])`,
		map[string]int64{"n": 8})
	var borderParallel, nestParallel int
	var walk func(ns []*Node, depth int)
	walk = func(ns []*Node, depth int) {
		for _, n := range ns {
			if !n.IsLoop() {
				continue
			}
			leaf := len(n.Body) == 1 && !n.Body[0].IsLoop()
			if depth == 0 && leaf && n.Parallel {
				borderParallel++
			}
			if !leaf || depth > 0 {
				if n.Parallel {
					nestParallel++
				}
			}
			walk(n.Body, depth+1)
		}
	}
	walk(w.Nodes, 0)
	if borderParallel != 2 {
		t.Errorf("border loops parallel = %d, want 2\n%s", borderParallel, w.Dump())
	}
	if nestParallel != 0 {
		t.Errorf("recurrence nest wrongly parallel (%d loops)\n%s", nestParallel, w.Dump())
	}
}
