package schedule

import (
	"fmt"
	"sort"

	"arraycomp/internal/analysis"
	"arraycomp/internal/depgraph"
	"arraycomp/internal/deptest"
)

// Direction is a scheduled loop direction in normalized index space.
type Direction int8

const (
	// Forward runs the loop from its first source value onward.
	Forward Direction = 1
	// Backward runs the loop from its last source value back.
	Backward Direction = -1
)

// String renders the direction.
func (d Direction) String() string {
	if d == Backward {
		return "backward"
	}
	return "forward"
}

// Node is one element of a schedule: either a clause leaf or one pass
// of a loop (a loop may be split into several consecutive Nodes).
type Node struct {
	// Clause is non-nil for leaves.
	Clause *analysis.FlatClause
	// Loop is non-nil for loop passes; it is the tree node carrying
	// the generator, guards and lets.
	Loop *analysis.TreeNode
	// Dir is the scheduled direction of a loop pass.
	Dir Direction
	// Parallel reports that no dependence is carried at this loop
	// level among the pass's contents, so its instances may execute
	// concurrently — the section 10 extension (the paper: "such
	// transformations need to focus on finding innermost loops with no
	// loop-carried dependences"; the same information identifies
	// parallel outer loops).
	Parallel bool
	// Doacross reports that dependences ARE carried at this loop level,
	// but every one of them points in the scheduled direction: the pass
	// admits pipelined (doacross) execution if concrete dependence
	// distances permit — wavefront bands over 2-D nests, residue-class
	// chains for constant-distance recurrences. Mutually exclusive with
	// Parallel.
	Doacross bool
	// Body is the ordered contents of a loop pass.
	Body []*Node
}

// IsLoop reports whether the node is a loop pass.
func (n *Node) IsLoop() bool { return n.Loop != nil }

// Result is a complete schedule (or a thunk fallback).
type Result struct {
	// Nodes is the ordered top-level sequence.
	Nodes []*Node
	// Thunked reports that no safe static schedule exists; Reason says
	// why. Nodes is nil in that case.
	Thunked bool
	Reason  string
	// LoopPasses counts emitted loop passes (diagnostics: loop
	// splitting shows up as extra passes).
	LoopPasses int
	Diags      []string
}

// clauseEdge is a dependence edge with resolved clause endpoints.
type clauseEdge struct {
	src, dst *analysis.FlatClause
	kind     depgraph.Kind
	dir      deptest.Vector
}

// fallback aborts scheduling with a reason.
type fallback struct{ reason string }

func (f *fallback) Error() string { return f.reason }

// KeepAll keeps every dependence edge.
func KeepAll(depgraph.Edge) bool { return true }

// KeepFlowOutput keeps flow and output edges (the monolithic-array
// schedule, where anti edges do not exist).
func KeepFlowOutput(e depgraph.Edge) bool { return e.Kind != depgraph.Anti }

// Build schedules the analyzed definition using the edges selected by
// keep (nil keeps all). On an unschedulable cycle it returns a Result
// with Thunked set rather than an error; errors are reserved for
// malformed inputs.
func Build(res *analysis.Result, keep func(depgraph.Edge) bool) (*Result, error) {
	if keep == nil {
		keep = KeepAll
	}
	var edges []clauseEdge
	for _, e := range res.Graph.Edges {
		if !keep(e) {
			continue
		}
		edges = append(edges, clauseEdge{
			src:  res.Clauses[e.Src],
			dst:  res.Clauses[e.Dst],
			kind: e.Kind,
			dir:  e.Dir,
		})
	}
	s := &scheduler{out: &Result{}}
	nodes, err := s.level(res.Roots, edges, -1)
	if err != nil {
		if fb, ok := err.(*fallback); ok {
			return &Result{Thunked: true, Reason: fb.reason, Diags: s.out.Diags}, nil
		}
		return nil, err
	}
	s.out.Nodes = nodes
	return s.out, nil
}

type scheduler struct {
	out *Result
}

func (s *scheduler) diag(format string, args ...any) {
	s.out.Diags = append(s.out.Diags, fmt.Sprintf(format, args...))
}

// level schedules the children of the loop at nest position p (p = -1
// for the virtual root). edges are the dependence edges whose
// endpoints both lie under these entities.
func (s *scheduler) level(entities []*analysis.TreeNode, edges []clauseEdge, p int) ([]*Node, error) {
	if len(entities) == 0 {
		return nil, nil
	}
	entIdx := map[*analysis.TreeNode]int{}
	for i, e := range entities {
		entIdx[e] = i
	}
	entityOf := func(c *analysis.FlatClause) (int, error) {
		var node *analysis.TreeNode
		if len(c.NestNodes) > p+1 {
			node = c.NestNodes[p+1]
		} else {
			node = c.Node
		}
		i, ok := entIdx[node]
		if !ok {
			return 0, fmt.Errorf("schedule: clause %s is not under the current level", c.Label())
		}
		return i, nil
	}

	// Classify edges at this level.
	type levelEdge struct {
		src, dst int
		carried  deptest.Direction // DirLess/DirGreater for carried, DirEqual for ordering
		kind     depgraph.Kind
	}
	var lvl []levelEdge
	passDown := map[int][]clauseEdge{}

	var classify func(e clauseEdge, comp deptest.Direction) error
	classify = func(e clauseEdge, comp deptest.Direction) error {
		se, err := entityOf(e.src)
		if err != nil {
			return err
		}
		de, err := entityOf(e.dst)
		if err != nil {
			return err
		}
		switch comp {
		case deptest.DirLess, deptest.DirGreater:
			lvl = append(lvl, levelEdge{src: se, dst: de, carried: comp, kind: e.kind})
		case deptest.DirEqual:
			if se != de {
				lvl = append(lvl, levelEdge{src: se, dst: de, carried: deptest.DirEqual, kind: e.kind})
				return nil
			}
			ent := entities[se]
			if ent.IsLoop() {
				passDown[se] = append(passDown[se], e)
				return nil
			}
			// Terminal: both references in the same clause instance.
			switch e.kind {
			case depgraph.Flow:
				return &fallback{reason: fmt.Sprintf("%s: element may depend on itself within a single instance", e.src.Label())}
			case depgraph.Anti, depgraph.Output:
				// A clause instance reads its operands before writing;
				// same-instance anti/output self edges are satisfied by
				// construction.
			}
		case deptest.DirAny:
			// Pessimistic expansion: the dependence may be carried
			// either way or be loop-independent.
			if err := classify(e, deptest.DirLess); err != nil {
				return err
			}
			if err := classify(e, deptest.DirGreater); err != nil {
				return err
			}
			return classify(e, deptest.DirEqual)
		}
		return nil
	}

	for _, e := range edges {
		var comp deptest.Direction
		if p < 0 {
			// Root level has no surrounding loop: edges between
			// distinct entities are pure ordering constraints, edges
			// within one entity pass down whole.
			se, err := entityOf(e.src)
			if err != nil {
				return nil, err
			}
			de, err := entityOf(e.dst)
			if err != nil {
				return nil, err
			}
			if se == de {
				ent := entities[se]
				if ent.IsLoop() {
					passDown[se] = append(passDown[se], e)
					continue
				}
				if e.kind == depgraph.Flow {
					return nil, &fallback{reason: fmt.Sprintf("%s: element may depend on itself within a single instance", e.src.Label())}
				}
				continue
			}
			lvl = append(lvl, levelEdge{src: se, dst: de, carried: deptest.DirEqual, kind: e.kind})
			continue
		}
		if p >= len(e.dir) {
			return nil, fmt.Errorf("schedule: edge %s->%s vector %v too short for level %d", e.src.Label(), e.dst.Label(), e.dir, p)
		}
		comp = e.dir[p]
		if err := classify(e, comp); err != nil {
			return nil, err
		}
	}

	// Build the level graph and classify SCCs.
	g := depgraph.New(len(entities))
	for _, e := range lvl {
		g.AddEdge(e.src, e.dst, e.kind, deptest.Vector{e.carried})
	}
	comps, compOf := g.SCCs()
	forced := make([]Direction, len(comps)) // 0 = either
	for _, e := range lvl {
		if compOf[e.src] != compOf[e.dst] && e.src != e.dst {
			continue
		}
		if compOf[e.src] != compOf[e.dst] {
			continue
		}
		c := compOf[e.src]
		switch e.carried {
		case deptest.DirLess:
			if forced[c] == Backward {
				return nil, &fallback{reason: "a dependence cycle contains both (<) and (>) edges"}
			}
			forced[c] = Forward
		case deptest.DirGreater:
			if forced[c] == Forward {
				return nil, &fallback{reason: "a dependence cycle contains both (<) and (>) edges"}
			}
			forced[c] = Backward
		}
	}
	// A cycle of loop-independent edges alone defeats any schedule.
	orderingOnly := g.Filter(func(e depgraph.Edge) bool {
		return len(e.Dir) == 1 && e.Dir[0] == deptest.DirEqual
	})
	if orderingOnly.IsCyclic() {
		return nil, &fallback{reason: "a cycle of loop-independent (=) dependences defeats every clause order"}
	}

	quotient, qComps := g.Quotient()

	// Multi-pass static scheduling over the quotient DAG.
	remaining := map[int]bool{}
	for i := range qComps {
		remaining[i] = true
	}
	forcedOf := func(q int) Direction {
		// qComps[q] lists original vertices; forced was computed per
		// SCC index from SCCs() which Quotient() reuses, so indexes
		// match.
		return forced[q]
	}
	var out []*Node
	passesEmitted := 0
	for len(remaining) > 0 {
		// Candidate direction order: majority of carried edges among
		// remaining vertices.
		less, greater := 0, 0
		for _, e := range lvl {
			if remaining[compOf[e.src]] && remaining[compOf[e.dst]] {
				switch e.carried {
				case deptest.DirLess:
					less++
				case deptest.DirGreater:
					greater++
				}
			}
		}
		tryOrder := []Direction{Forward, Backward}
		if greater > less {
			tryOrder = []Direction{Backward, Forward}
		}
		var bestReady []int
		var bestDir Direction
		for _, dir := range tryOrder {
			ready := s.readySet(quotient, remaining, forcedOf, dir)
			if len(ready) > len(bestReady) {
				bestReady = ready
				bestDir = dir
			}
		}
		if len(bestReady) == 0 {
			return nil, fmt.Errorf("schedule: internal error: no ready vertices (remaining %d)", len(remaining))
		}
		// Order the pass: topological over all quotient edges among the
		// ready set.
		readySet := map[int]bool{}
		for _, q := range bestReady {
			readySet[q] = true
		}
		ordered, err := topoWithin(quotient, bestReady)
		if err != nil {
			return nil, err
		}
		// Expand: quotient vertices → SCC members (ordered by
		// loop-independent edges) → entities → nodes.
		var passEntities []int
		for _, q := range ordered {
			members, err := topoWithin(orderingOnly, qComps[q])
			if err != nil {
				return nil, err
			}
			passEntities = append(passEntities, members...)
		}
		// A pass with no dependence carried among its own entities may
		// run its instances in parallel (section 10). Carried edges
		// into earlier or later passes do not block: earlier passes
		// completed in full, later ones have not started.
		inPass := map[int]bool{}
		for _, e := range passEntities {
			inPass[e] = true
		}
		parallel := true
		doacross := true
		consistent := deptest.DirLess
		if bestDir == Backward {
			consistent = deptest.DirGreater
		}
		for _, e := range lvl {
			if e.carried != deptest.DirEqual && inPass[e.src] && inPass[e.dst] {
				parallel = false
				if e.carried != consistent {
					doacross = false
				}
			}
		}
		doacross = doacross && !parallel
		passNodes, err := s.expand(entities, passEntities, passDown, p, bestDir, parallel, doacross)
		if err != nil {
			return nil, err
		}
		if p >= 0 {
			passesEmitted++
		}
		out = append(out, passNodes...)
		for _, q := range bestReady {
			delete(remaining, q)
		}
	}
	if p >= 0 && passesEmitted > 1 {
		if loopNode := surroundingLoop(entities[0], p); loopNode != nil && loopNode.Loop != nil {
			s.diag("loop %s split into %d passes", loopNode.Loop.Var, passesEmitted)
		}
	}
	return out, nil
}

// readySet computes the quotient vertices schedulable in a pass of the
// given direction: remaining vertices not direction-incompatible and
// not reachable from a blocking seed (paper section 8.1.3).
func (s *scheduler) readySet(quotient *depgraph.Graph, remaining map[int]bool, forcedOf func(int) Direction, dir Direction) []int {
	keep := func(e depgraph.Edge) bool { return remaining[e.Src] && remaining[e.Dst] }
	var seeds []int
	for q := range remaining {
		if f := forcedOf(q); f != 0 && f != dir {
			seeds = append(seeds, q)
		}
	}
	blockLabel := deptest.DirGreater
	if dir == Backward {
		blockLabel = deptest.DirLess
	}
	for _, e := range quotient.Edges {
		if keep(e) && len(e.Dir) == 1 && e.Dir[0] == blockLabel {
			seeds = append(seeds, e.Dst)
		}
	}
	notReady := quotient.Reachable(seeds, keep)
	var ready []int
	for q := range remaining {
		if !notReady[q] {
			ready = append(ready, q)
		}
	}
	sort.Ints(ready)
	return ready
}

// topoWithin topologically orders the given vertices of g considering
// only edges between them, breaking ties by vertex number.
func topoWithin(g *depgraph.Graph, vertices []int) ([]int, error) {
	sub, orig := g.Subgraph(vertices)
	order, err := sub.TopoSort(nil)
	if err != nil {
		return nil, &fallback{reason: "a cycle of loop-independent (=) dependences defeats every clause order"}
	}
	out := make([]int, len(order))
	for i, v := range order {
		out[i] = orig[v]
	}
	return out, nil
}

// expand turns an ordered entity list into schedule nodes: clause
// leaves directly, loop entities via recursive scheduling of their
// children (which may split them into several consecutive nodes), all
// wrapped into a single pass of the surrounding loop when p ≥ 0.
func (s *scheduler) expand(entities []*analysis.TreeNode, ordered []int, passDown map[int][]clauseEdge, p int, dir Direction, parallel, doacross bool) ([]*Node, error) {
	var body []*Node
	for _, ei := range ordered {
		ent := entities[ei]
		if ent.IsLoop() {
			inner, err := s.level(ent.Children, passDown[ei], nestPosOf(ent))
			if err != nil {
				return nil, err
			}
			body = append(body, inner...)
			continue
		}
		body = append(body, &Node{Clause: ent.Clause})
	}
	if p < 0 {
		return body, nil
	}
	// One pass of the surrounding loop. The loop tree node is the
	// parent; every clause under these entities shares it at position
	// p — recover it from any entity.
	loopNode := surroundingLoop(entities[0], p)
	if loopNode == nil {
		return nil, fmt.Errorf("schedule: cannot recover surrounding loop at position %d", p)
	}
	s.out.LoopPasses++
	return []*Node{{Loop: loopNode, Dir: dir, Parallel: parallel, Doacross: doacross, Body: body}}, nil
}

// nestPosOf returns the nest position of a loop entity (how many loops
// enclose its children minus one).
func nestPosOf(loopEnt *analysis.TreeNode) int {
	// The loop's children clauses have the loop at position
	// len(nest)-1 of their prefix up to it; recover via any clause.
	cl := firstClause(loopEnt)
	for i, n := range cl.NestNodes {
		if n == loopEnt {
			return i
		}
	}
	return -1
}

// surroundingLoop returns the loop tree node at nest position p above
// the given entity.
func surroundingLoop(ent *analysis.TreeNode, p int) *analysis.TreeNode {
	cl := firstClause(ent)
	if cl == nil || p >= len(cl.NestNodes) {
		return nil
	}
	return cl.NestNodes[p]
}

// firstClause finds a clause leaf under the entity.
func firstClause(ent *analysis.TreeNode) *analysis.FlatClause {
	if ent.Clause != nil {
		return ent.Clause
	}
	for _, c := range ent.Children {
		if cl := firstClause(c); cl != nil {
			return cl
		}
	}
	return nil
}
