package schedule

import (
	"fmt"

	"arraycomp/internal/affine"
	"arraycomp/internal/analysis"
	"arraycomp/internal/certify"
	"arraycomp/internal/lang"
)

// Certification of a static schedule: thunkless legality means every
// dependence source precedes its sink under the emitted order. Rather
// than trusting the dependence edges the schedule was built from (they
// are certified separately by the analysis layer), the check here
// replays the emitted order over a clamped shadow domain and compares
// raw memory accesses:
//
//   - flow: every write of an element of the defined array executes
//     strictly before every read of that element (a read in the same
//     instance means the element depends on itself);
//   - anti (bigupd): every read of a source-array element executes no
//     later than the write that kills it (the same instance is fine —
//     a clause reads its operands before writing);
//   - output: when the definition's semantics are order-sensitive
//     (bigupd, or accumArray with a non-commutative combiner), writes
//     to one element execute in their source list order.
//
// Guards are ignored: they only shrink the instance sets the analysis
// and scheduler reasoned over, so a violation on the unguarded domain
// is a violation of the compiler's actual claim.

// certifyEventBudget caps the simulated instances per schedule.
const certifyEventBudget = 1 << 16

// instEvent is one simulated clause instance.
type instEvent struct {
	cl  *analysis.FlatClause
	pos []int64 // normalized positions, aligned with cl.NestNodes
	t   int     // execution timestamp
}

// Certify cross-validates a built schedule against the analysis it was
// derived from. antiRelaxed reports that the schedule was built with
// anti edges dropped (KeepFlowOutput) and the code generator preloads
// the affected reads (node splitting), so emitted-order anti legality
// is intentionally not claimed.
func Certify(res *analysis.Result, sched *Result, antiRelaxed bool) *certify.Report {
	rep := certify.NewReport()
	if sched == nil || sched.Thunked {
		return rep // the thunk fallback makes no static-order claims
	}
	c := &schedCertifier{res: res, rep: rep}
	c.prepare()
	c.simulate(sched)
	c.check(antiRelaxed)
	return rep
}

type schedCertifier struct {
	res *analysis.Result
	rep *certify.Report

	clamp   map[*analysis.TreeNode]int64
	clamped bool // some loop ran short of its real trip count
	sat     bool // some subscript evaluation saturated
	over    bool // the event budget aborted the simulation

	refs   map[*analysis.FlatClause][]affine.NormalizedRef // write subscripts
	rdRefs map[*analysis.FlatClause]map[*analysis.ReadRef][]affine.NormalizedRef

	events []instEvent
	cur    map[*analysis.TreeNode]int64
	time   int

	// listTime maps an instance key to its source list order.
	listTime map[string]int
}

// prepare clamps every loop of the comprehension tree and normalizes
// the subscript forms once per clause.
func (c *schedCertifier) prepare() {
	c.clamp = map[*analysis.TreeNode]int64{}
	c.cur = map[*analysis.TreeNode]int64{}
	c.refs = map[*analysis.FlatClause][]affine.NormalizedRef{}
	c.rdRefs = map[*analysis.FlatClause]map[*analysis.ReadRef][]affine.NormalizedRef{}
	var walk func(nodes []*analysis.TreeNode)
	walk = func(nodes []*analysis.TreeNode) {
		for _, n := range nodes {
			if n.IsLoop() {
				m := n.Loop.Trip()
				if m > certify.ShadowClamp {
					m = certify.ShadowClamp
					c.clamped = true
				}
				c.clamp[n] = m
				walk(n.Children)
			}
		}
	}
	walk(c.res.Roots)
	// Shrink further until the estimated instance count fits.
	for c.estimate() > certifyEventBudget {
		var maxN *analysis.TreeNode
		for n, m := range c.clamp {
			if maxN == nil || m > c.clamp[maxN] {
				maxN = n
			}
		}
		if maxN == nil || c.clamp[maxN] <= 1 {
			break
		}
		c.clamp[maxN] /= 2
		c.clamped = true
	}
	for _, cl := range c.res.Clauses {
		if cl.WriteAffine {
			c.refs[cl] = c.normalize(cl, cl.WriteForms)
		}
		for _, rd := range cl.Reads {
			if !rd.Affine {
				continue
			}
			if c.rdRefs[cl] == nil {
				c.rdRefs[cl] = map[*analysis.ReadRef][]affine.NormalizedRef{}
			}
			c.rdRefs[cl][rd] = c.normalize(cl, rd.Forms)
		}
	}
	// Canonical source order: all loops forward, clauses in tree order.
	c.listTime = map[string]int{}
	t := 0
	var src func(nodes []*analysis.TreeNode)
	src = func(nodes []*analysis.TreeNode) {
		for _, n := range nodes {
			if n.Clause != nil {
				c.listTime[c.instKey(n.Clause)] = t
				t++
				continue
			}
			for p := int64(1); p <= c.clamp[n]; p++ {
				c.cur[n] = p
				src(n.Children)
			}
			delete(c.cur, n)
		}
	}
	src(c.res.Roots)
}

func (c *schedCertifier) normalize(cl *analysis.FlatClause, forms []affine.Form) []affine.NormalizedRef {
	out := make([]affine.NormalizedRef, len(forms))
	for d, f := range forms {
		ref, err := cl.Nest.Normalize(f)
		if err != nil {
			return nil
		}
		out[d] = ref
	}
	return out
}

// estimate sums the clamped instance counts over all clauses.
func (c *schedCertifier) estimate() int64 {
	total := int64(0)
	for _, cl := range c.res.Clauses {
		n := int64(1)
		for _, tn := range cl.NestNodes {
			m := c.clamp[tn]
			if m < 1 {
				n = 0
				break
			}
			if n > certifyEventBudget/m {
				return certifyEventBudget + 1
			}
			n *= m
		}
		total += n
		if total > certifyEventBudget {
			return total
		}
	}
	return total
}

func (c *schedCertifier) instKey(cl *analysis.FlatClause) string {
	key := fmt.Sprintf("c%d", cl.ID)
	for _, tn := range cl.NestNodes {
		key += fmt.Sprintf("/%d", c.cur[tn])
	}
	return key
}

// simulate replays the schedule's emitted order, appending one event
// per clause instance.
func (c *schedCertifier) simulate(sched *Result) {
	c.runNodes(sched.Nodes)
}

func (c *schedCertifier) runNodes(nodes []*Node) {
	if c.over {
		return
	}
	for _, n := range nodes {
		if n.Clause != nil {
			if len(c.events) >= certifyEventBudget {
				c.over = true
				return
			}
			pos := make([]int64, len(n.Clause.NestNodes))
			for i, tn := range n.Clause.NestNodes {
				pos[i] = c.cur[tn]
			}
			c.events = append(c.events, instEvent{cl: n.Clause, pos: pos, t: c.time})
			c.time++
			continue
		}
		loopNode := n.Loop
		m := c.clamp[loopNode]
		if n.Dir == Backward {
			for p := m; p >= 1; p-- {
				c.cur[loopNode] = p
				c.runNodes(n.Body)
			}
		} else {
			for p := int64(1); p <= m; p++ {
				c.cur[loopNode] = p
				c.runNodes(n.Body)
			}
		}
		delete(c.cur, loopNode)
	}
}

// access is one element access with its timestamps.
type access struct {
	ev       instEvent
	listTime int
}

// check indexes the simulated accesses by element and validates the
// three order claims.
func (c *schedCertifier) check(antiRelaxed bool) {
	def := c.res.Def
	bigupd := def.Kind == lang.BigUpd
	orderMatters := bigupd || (def.Kind == lang.Accumulated && !def.Accum.Commutative())

	writes := map[string][]access{}
	flowReads := map[string][]access{}
	antiReads := map[string][]access{}
	elem := func(refs []affine.NormalizedRef, pos []int64) (string, bool) {
		if refs == nil {
			return "", false
		}
		key := ""
		for _, r := range refs {
			v, exact := r.EvalSat(pos)
			if !exact {
				c.sat = true
				return "", false
			}
			key += fmt.Sprintf("%d,", v)
		}
		return key, true
	}
	for _, ev := range c.events {
		lt := c.listTimeOf(ev)
		if refs, ok := c.refs[ev.cl]; ok {
			if key, ok := elem(refs, ev.pos); ok {
				writes[key] = append(writes[key], access{ev, lt})
			}
		}
		for rd, refs := range c.rdRefs[ev.cl] {
			var bucket map[string][]access
			switch {
			case !bigupd && rd.Ix.Array == def.Name:
				bucket = flowReads
			case bigupd && rd.Ix.Array == def.Name:
				bucket = flowReads
			case bigupd && rd.Ix.Array == def.Source:
				bucket = antiReads
			default:
				continue
			}
			if key, ok := elem(refs, ev.pos); ok {
				bucket[key] = append(bucket[key], access{ev, lt})
			}
		}
	}

	exhaustive := !c.clamped && !c.sat && !c.over
	name := def.Name
	record := func(claim string, bad *[2]access, detail string) {
		cert := certify.Certificate{Layer: "schedule", Claim: claim}
		if bad != nil {
			cert.Status = certify.Falsified
			cert.Witness = append(append([]int64(nil), bad[0].ev.pos...), bad[1].ev.pos...)
			cert.Detail = detail
		} else {
			cert.Status = certify.Certified
			cert.Exhaustive = exhaustive
		}
		c.rep.Record(cert)
	}

	// Flow: all writes of an element strictly precede all its reads.
	var flowBad *[2]access
	var flowDetail string
	for key, rds := range flowReads {
		for _, r := range rds {
			for _, w := range writes[key] {
				if w.ev.t >= r.ev.t && flowBad == nil {
					b := [2]access{w, r}
					flowBad = &b
					what := "write does not precede read"
					if w.ev.t == r.ev.t {
						what = "instance reads the element it writes"
					}
					flowDetail = fmt.Sprintf("%s: %s vs %s at element (%s)", what, w.ev.cl.Label(), r.ev.cl.Label(), key)
				}
			}
		}
	}
	if len(flowReads) > 0 || flowBad != nil {
		record(fmt.Sprintf("%s: emitted order preserves flow dependences", name), flowBad, flowDetail)
	}

	// Anti: reads of the old contents happen no later than the kill.
	if bigupd {
		if antiRelaxed {
			c.rep.Record(certify.Certificate{
				Layer:  "schedule",
				Claim:  fmt.Sprintf("%s: emitted order preserves anti dependences", name),
				Status: certify.Skipped,
				Detail: "anti edges relaxed; node splitting preloads the reads",
			})
		} else {
			var antiBad *[2]access
			var antiDetail string
			for key, rds := range antiReads {
				for _, r := range rds {
					for _, w := range writes[key] {
						if w.ev.t < r.ev.t && antiBad == nil {
							b := [2]access{r, w}
							antiBad = &b
							antiDetail = fmt.Sprintf("read of old value in %s after kill in %s at element (%s)", r.ev.cl.Label(), w.ev.cl.Label(), key)
						}
					}
				}
			}
			if len(antiReads) > 0 || antiBad != nil {
				record(fmt.Sprintf("%s: emitted order preserves anti dependences", name), antiBad, antiDetail)
			}
		}
	}

	// Output: order-sensitive colliding writes keep their list order.
	if orderMatters {
		var outBad *[2]access
		var outDetail string
		collides := false
		for _, ws := range writes {
			if len(ws) < 2 {
				continue
			}
			collides = true
			for i, a := range ws {
				for _, b := range ws[i+1:] {
					x, y := a, b
					if y.listTime < x.listTime {
						x, y = y, x
					}
					if x.ev.t >= y.ev.t && outBad == nil {
						bad := [2]access{x, y}
						outBad = &bad
						outDetail = fmt.Sprintf("writes of %s and %s out of list order", x.ev.cl.Label(), y.ev.cl.Label())
					}
				}
			}
		}
		if collides || outBad != nil {
			record(fmt.Sprintf("%s: emitted order preserves write order", name), outBad, outDetail)
		}
	}
}

// listTimeOf recovers the canonical list timestamp of an event.
func (c *schedCertifier) listTimeOf(ev instEvent) int {
	key := fmt.Sprintf("c%d", ev.cl.ID)
	for _, p := range ev.pos {
		key += fmt.Sprintf("/%d", p)
	}
	return c.listTime[key]
}
