package workloads

import (
	"testing"

	"arraycomp/internal/analysis"
	"arraycomp/internal/core"
	"arraycomp/internal/runtime"
)

func compileWorkload(t *testing.T, src string, params map[string]int64, inputs map[string]*runtime.Strict) *core.Program {
	t.Helper()
	opts := core.Options{InputBounds: map[string]analysis.ArrayBounds{}}
	for name, a := range inputs {
		opts.InputBounds[name] = analysis.ArrayBounds{Lo: a.B.Lo, Hi: a.B.Hi}
	}
	p, err := core.Compile(src, params, opts)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return p
}

// TestHandBaselinesMatchCompiled cross-validates every hand-written
// baseline against the compiled pipeline — if these drift, the
// benchmark comparisons are meaningless.
func TestHandBaselinesMatchCompiled(t *testing.T) {
	n := int64(24)

	t.Run("squares", func(t *testing.T) {
		p := compileWorkload(t, SquaresSrc, ParamsFor("squares", n), nil)
		got, err := p.Run(nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := CheckClose(got, HandSquares(n), 0); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("recurrence", func(t *testing.T) {
		p := compileWorkload(t, RecurrenceSrc, ParamsFor("recurrence", n), nil)
		got, err := p.Run(nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := CheckClose(got, HandRecurrence(n), 1e-12); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("wavefront", func(t *testing.T) {
		p := compileWorkload(t, WavefrontSrc, ParamsFor("wavefront", n), nil)
		got, err := p.Run(nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := CheckClose(got, HandWavefront(n), 1e-9); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("rowswap", func(t *testing.T) {
		params := ParamsFor("rowswap", n)
		in := Mesh(n, 7)
		p := compileWorkload(t, RowSwapSrc, params, map[string]*runtime.Strict{"a": in})
		got, err := p.Run(map[string]*runtime.Strict{"a": in})
		if err != nil {
			t.Fatal(err)
		}
		want := in.Clone()
		HandRowSwap(want, params["i0"], params["k0"])
		if err := CheckClose(got, want, 0); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("jacobi", func(t *testing.T) {
		in := Mesh(n, 8)
		p := compileWorkload(t, JacobiSrc, ParamsFor("jacobi", n), map[string]*runtime.Strict{"a": in})
		got, err := p.Run(map[string]*runtime.Strict{"a": in})
		if err != nil {
			t.Fatal(err)
		}
		want := in.Clone()
		HandJacobi(want)
		if err := CheckClose(got, want, 1e-12); err != nil {
			t.Fatal(err)
		}
		// The naive copying baseline must agree too.
		if err := CheckClose(got, NaiveJacobiCopying(in), 1e-12); err != nil {
			t.Fatalf("naive copying baseline: %v", err)
		}
		if err := CheckClose(got, TrailerJacobi(in), 1e-12); err != nil {
			t.Fatalf("trailer baseline: %v", err)
		}
	})

	t.Run("sor", func(t *testing.T) {
		in := Mesh(n, 9)
		p := compileWorkload(t, SORSrc, ParamsFor("sor", n), map[string]*runtime.Strict{"a": in})
		got, err := p.Run(map[string]*runtime.Strict{"a": in})
		if err != nil {
			t.Fatal(err)
		}
		want := in.Clone()
		HandSOR(want)
		if err := CheckClose(got, want, 1e-12); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("livermore23", func(t *testing.T) {
		inputs := Livermore23Inputs(n)
		p := compileWorkload(t, Livermore23Src, ParamsFor("livermore23", n), inputs)
		got, err := p.Run(inputs)
		if err != nil {
			t.Fatal(err)
		}
		want := inputs["za"].Clone()
		HandLivermore23(want, inputs["zr"], inputs["zb"], inputs["zu"], inputs["zv"])
		if err := CheckClose(got, want, 1e-12); err != nil {
			t.Fatal(err)
		}
	})
}

func TestWorkloadModes(t *testing.T) {
	n := int64(16)
	cases := []struct {
		name, src, def, wantMode string
		inputs                   map[string]*runtime.Strict
	}{
		{"squares", SquaresSrc, "sq", "thunkless", nil},
		{"wavefront", WavefrontSrc, "a", "thunkless", nil},
		{"example1", Example1Src, "a", "thunkless", nil},
		{"mixedpass", MixedPassSrc, "a", "thunkless", nil},
		{"cyclic", CyclicSrc, "a", "thunked", nil},
		{"rowswap", RowSwapSrc, "a2", "in-place", map[string]*runtime.Strict{"a": Mesh(n, 1)}},
		{"jacobi", JacobiSrc, "a2", "in-place", map[string]*runtime.Strict{"a": Mesh(n, 1)}},
		{"sor", SORSrc, "a2", "in-place", map[string]*runtime.Strict{"a": Mesh(n, 1)}},
		{"scalerow", ScaleRowSrc, "a2", "in-place", map[string]*runtime.Strict{"a": Mesh(n, 1)}},
		{"saxpy", SaxpyRowSrc, "a2", "in-place", map[string]*runtime.Strict{"a": Mesh(n, 1)}},
		{"livermore23", Livermore23Src, "za2", "in-place", Livermore23Inputs(n)},
		{"histogram", HistogramSrc, "h", "thunkless", nil},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p := compileWorkload(t, c.src, ParamsFor(c.name, n), c.inputs)
			if got := p.Defs[c.def].Mode(); got != c.wantMode {
				t.Errorf("mode = %s, want %s\n%s", got, c.wantMode, p.Report())
			}
		})
	}
}

func TestScaleAndSaxpyNoSplitting(t *testing.T) {
	n := int64(12)
	in := Mesh(n, 3)
	for _, src := range []string{ScaleRowSrc, SORSrc, Livermore23Src} {
		name := "a2"
		inputs := map[string]*runtime.Strict{"a": in}
		if src == Livermore23Src {
			name = "za2"
			inputs = Livermore23Inputs(n)
		}
		p := compileWorkload(t, src, ParamsFor("scalerow", n), inputs)
		cd := p.Defs[name]
		for _, note := range cd.Plan.Notes {
			if note != "" && (containsAny(note, "scalar", "pipelined", "row temporary", "whole-array")) {
				t.Errorf("%s must need no node splitting, note: %s", name, note)
			}
		}
	}
}

func containsAny(s string, subs ...string) bool {
	for _, sub := range subs {
		if len(sub) > 0 && len(s) >= len(sub) {
			for i := 0; i+len(sub) <= len(s); i++ {
				if s[i:i+len(sub)] == sub {
					return true
				}
			}
		}
	}
	return false
}

func TestDeforestationVariantsAgree(t *testing.T) {
	a, b := Vector(500, 1), Vector(500, 2)
	x := SumProductsFused(a, b)
	if y := SumProductsListComp(a, b); x != y {
		t.Errorf("list comp %v != fused %v", y, x)
	}
	if y := SumProductsConsList(a, b); x != y {
		t.Errorf("cons list %v != fused %v", y, x)
	}
}

func TestMeshDeterminism(t *testing.T) {
	if !Mesh(8, 42).EqualWithin(Mesh(8, 42), 0) {
		t.Error("Mesh must be deterministic per seed")
	}
	if Mesh(8, 1).EqualWithin(Mesh(8, 2), 0) {
		t.Error("Mesh seeds must differ")
	}
}
